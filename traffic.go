package selfstab

import (
	"fmt"

	"selfstab/internal/runtime"
	"selfstab/internal/snapshot"
	"selfstab/internal/traffic"
)

// QueueDiscipline selects what a full per-node queue does with arrivals.
type QueueDiscipline int

const (
	// DropTail rejects the arriving packet (FIFO tail drop). The default.
	DropTail QueueDiscipline = iota
	// DropHead evicts the oldest queued packet to admit the new one.
	DropHead
)

// Flow is one traffic workload. Build flows with CBRFlow, PoissonFlow or
// HotspotFlow and pass them in a TrafficConfig.
type Flow struct {
	kind       traffic.FlowKind
	srcID      int64
	dstID      int64
	rate       float64
	start      int
	stop       int
	hotSources int // > 0: many-to-one, expanded at attach time
}

// CBRFlow is a constant-bit-rate unicast flow: rate packets per Δ(τ) step
// from srcID to dstID (fractional rates average out exactly — 0.25 injects
// every fourth step).
func CBRFlow(srcID, dstID int64, rate float64) Flow {
	return Flow{kind: traffic.CBR, srcID: srcID, dstID: dstID, rate: rate}
}

// PoissonFlow is a memoryless unicast flow: a Poisson-distributed number
// of packets per step with mean rate, from srcID to dstID.
func PoissonFlow(srcID, dstID int64, rate float64) Flow {
	return Flow{kind: traffic.Poisson, srcID: srcID, dstID: dstID, rate: rate}
}

// HotspotFlow is a many-to-one workload: sources distinct nodes, drawn
// deterministically from the network's rng at attach time, each send a
// Poisson stream of mean rate packets per step to the single sink — the
// convergecast pattern that concentrates load on the sink's cluster-head
// and the gateways toward it.
func HotspotFlow(sinkID int64, sources int, rate float64) Flow {
	return Flow{kind: traffic.Poisson, dstID: sinkID, rate: rate, hotSources: sources}
}

// Between restricts the flow to inject only in steps [start, stop]
// (1-based, counted in completed protocol steps; stop 0 means forever).
func (f Flow) Between(start, stop int) Flow {
	f.start, f.stop = start, stop
	return f
}

// TrafficConfig parameterizes the packet data plane attached to a Network.
type TrafficConfig struct {
	// QueueCap bounds each node's forwarding queue. Default 64.
	QueueCap int
	// Discipline is the queue-overflow policy. Default DropTail.
	Discipline QueueDiscipline
	// Budget is how many packets a node forwards per step (the link
	// capacity abstraction). Default 1.
	Budget int
	// TTL drops packets exceeding this many hops. Default 64.
	TTL int
	// Flows is the workload; at least one flow is required.
	Flows []Flow
}

// AttachTraffic installs a packet-level data plane that runs as a
// post-guard phase of every subsequent Δ(τ) step (Step, Run and Stabilize
// all drive it): flows inject packets, every node forwards queued packets
// one hop per step along the cached hierarchical routing tables, and a
// metrics sink accounts for every packet. Call TrafficStats for the
// ledger.
//
// Forwarding follows the same epoch-cached tables as Route, so the data
// plane reacts to re-clustering (mobility, faults) exactly when the
// control plane does. All traffic randomness comes from a dedicated
// stream of the network's seed: runs are reproducible and, like the
// protocol itself, bit-identical at any parallelism.
//
// Attaching replaces any previously attached data plane and resets its
// statistics.
func (n *Network) AttachTraffic(cfg TrafficConfig) error {
	sc, err := trafficToSnapshot(cfg)
	if err != nil {
		return err
	}
	return n.applyOp(snapshot.Op{Kind: snapshot.OpAttachTraffic, Traffic: &sc})
}

// attachTrafficImpl is the journaled implementation behind AttachTraffic.
// Hotspot flows are journaled unexpanded: expansion draws from the
// "traffic-flows" split stream here, at apply time, and reproduces on
// replay.
func (n *Network) attachTrafficImpl(sc snapshot.TrafficConfig) error {
	cfg, err := trafficFromSnapshot(sc)
	if err != nil {
		return err
	}
	specs, err := n.expandFlows(cfg.Flows)
	if err != nil {
		return err
	}
	var disc traffic.Discipline
	switch cfg.Discipline {
	case DropTail:
		disc = traffic.DropTail
	case DropHead:
		disc = traffic.DropHead
	default:
		return fmt.Errorf("selfstab: invalid queue discipline %d", int(cfg.Discipline))
	}
	tc := traffic.Config{
		QueueCap:   cfg.QueueCap,
		Discipline: disc,
		Budget:     cfg.Budget,
		TTL:        cfg.TTL,
		Flows:      specs,
	}
	hooks := traffic.Hooks{
		NextHop: func(cur, dst int) (int, bool) {
			table, err := n.hierTable()
			if err != nil {
				return -1, false
			}
			next, err := table.NextHop(cur, dst)
			if err != nil {
				return -1, false
			}
			return next, true
		},
		// Dist serves the path-stretch baseline from per-source memoized
		// BFS rows (see flatDistRow): flows sharing a source share one BFS
		// per topology epoch instead of running one each.
		Dist: func(src, dst int) int {
			return n.flatDistRow(src)[dst]
		},
		TopoEpoch: func() uint64 { return n.topoEpoch },
		Alive: func(i int) bool {
			return n.engine.Status(i) == runtime.StatusAlive
		},
		// IsHead feeds the per-head admission defense (SetTrafficDefense);
		// it is only consulted while that defense is installed.
		IsHead: func(i int) bool {
			return n.engine.Status(i) == runtime.StatusAlive && n.engine.Node(i).IsHead()
		},
	}
	t, err := traffic.New(len(n.pts), tc, hooks, n.src.Split("traffic"))
	if err != nil {
		return err
	}
	// Pin each flow's endpoints by identifier: indices renumber under
	// Compact, so the per-flow ledger addresses flows by id instead.
	n.flowIDs = make([]flowEndpointIDs, len(specs))
	for i, s := range specs {
		n.flowIDs[i] = flowEndpointIDs{src: n.ids[s.Src], dst: n.ids[s.Dst]}
	}
	t.SetProbe(n.probe) // late attach inherits the network's probe
	n.traffic = t
	n.trafficOn = true
	cfgCopy := cfg
	cfgCopy.Flows = append([]Flow(nil), cfg.Flows...)
	n.lastTraffic = &cfgCopy
	n.installStepPhases()
	return nil
}

// DetachTraffic removes the data plane; subsequent steps run the protocol
// (and any attached energy model) only. The final statistics remain
// readable via TrafficStats until the next AttachTraffic.
func (n *Network) DetachTraffic() {
	_ = n.applyOp(snapshot.Op{Kind: snapshot.OpDetachTraffic})
}

// TrafficConfig returns a copy of the config of the last AttachTraffic
// call and whether traffic is currently attached and running. The serving
// layer uses it to spawn additional flows online: append to Flows and
// re-attach (which resets the traffic ledger — see the README's serving
// section).
func (n *Network) TrafficConfig() (TrafficConfig, bool) {
	if n.lastTraffic == nil {
		return TrafficConfig{}, false
	}
	out := *n.lastTraffic
	out.Flows = append([]Flow(nil), n.lastTraffic.Flows...)
	return out, n.trafficOn
}

// expandFlows resolves identifiers to indices and expands hotspot
// workloads into per-source specs using the deterministic "traffic-flows"
// rng stream.
func (n *Network) expandFlows(flows []Flow) ([]traffic.FlowSpec, error) {
	src := n.src.Split("traffic-flows")
	var specs []traffic.FlowSpec
	for i, f := range flows {
		if f.hotSources > 0 {
			sink, ok := n.indexOfID(f.dstID)
			if !ok {
				return nil, fmt.Errorf("selfstab: flow %d: unknown sink id %d", i, f.dstID)
			}
			if f.hotSources > len(n.pts)-1 {
				return nil, fmt.Errorf("selfstab: flow %d: %d hotspot sources for %d nodes", i, f.hotSources, len(n.pts))
			}
			// A deterministic sample of distinct non-sink sources: walk a
			// seeded permutation, skipping the sink.
			perm := src.Perm(len(n.pts))
			picked := 0
			for _, u := range perm {
				if u == sink {
					continue
				}
				specs = append(specs, traffic.FlowSpec{
					Kind: f.kind, Src: u, Dst: sink, Rate: f.rate,
					Start: f.start, Stop: f.stop,
				})
				if picked++; picked == f.hotSources {
					break
				}
			}
			continue
		}
		su, ok := n.indexOfID(f.srcID)
		if !ok {
			return nil, fmt.Errorf("selfstab: flow %d: unknown source id %d", i, f.srcID)
		}
		du, ok := n.indexOfID(f.dstID)
		if !ok {
			return nil, fmt.Errorf("selfstab: flow %d: unknown destination id %d", i, f.dstID)
		}
		specs = append(specs, traffic.FlowSpec{
			Kind: f.kind, Src: su, Dst: du, Rate: f.rate,
			Start: f.start, Stop: f.stop,
		})
	}
	return specs, nil
}

// FlowTrafficStats is the per-flow slice of the traffic ledger.
type FlowTrafficStats struct {
	SrcID, DstID int64
	Offered      int64
	Delivered    int64
	Dropped      int64
}

// TrafficStats is the data plane's ledger. The accounting identity
// Offered == Delivered + DropsQueue + DropsNoRoute + DropsTTL +
// DropsDeadEndpoint + DropsAdmission + DropsRateLimit + InFlight holds
// at every step boundary.
type TrafficStats struct {
	// Steps is how many steps the data plane itself has run (steps taken
	// since AttachTraffic, excluding any detached stretches) — the right
	// denominator for per-step rates regardless of how long stabilization
	// took before attach.
	Steps int

	Offered   int64
	Delivered int64
	InFlight  int64

	DropsQueue   int64 // queue overflow (either discipline)
	DropsNoRoute int64 // routing had no next hop (partition or transient assignment)
	DropsTTL     int64 // hop budget exceeded
	// DropsDeadEndpoint counts packets addressed to a dead or sleeping
	// node — at injection or discovered mid-flight — plus packets lost
	// with the queue of a crashed or removed node. Under churn the data
	// plane never errors on a vanished endpoint; it accounts it here.
	DropsDeadEndpoint int64
	// DropsAdmission and DropsRateLimit are the defense drops (see
	// SetTrafficDefense): packets a head's token bucket refused, and
	// packets the per-source injection cap refused. Kept separate from
	// the congestion reasons above so the attack-vs-defense delta is
	// directly measurable from the ledger.
	DropsAdmission int64
	DropsRateLimit int64

	// DeliveryRatio is Delivered over packets with a decided fate
	// (Offered - InFlight).
	DeliveryRatio float64

	// MeanHops is the mean hop count of delivered packets; MeanStretch is
	// the mean ratio of hierarchical hops to flat shortest-path hops — the
	// path-stretch cost of the hierarchy.
	MeanHops    float64
	MeanStretch float64

	// End-to-end latency percentiles in steps over delivered packets
	// (-1 when nothing was delivered).
	LatencyP50 int
	LatencyP90 int
	LatencyP99 int
	LatencyMax int

	// MeanLoad and MaxLoad summarize per-node forwarding events.
	// HeadLoadShare is the fraction of all forwarding done by current
	// cluster-heads against HeadFraction, the fraction of nodes that are
	// heads — their gap is the hotspot the hierarchy concentrates on
	// heads and gateways.
	MeanLoad      float64
	MaxLoad       int64
	HeadLoadShare float64
	HeadFraction  float64

	PerFlow []FlowTrafficStats
}

// TrafficStats snapshots the attached data plane's ledger. It fails if
// AttachTraffic was never called.
func (n *Network) TrafficStats() (TrafficStats, error) {
	if n.traffic == nil {
		return TrafficStats{}, fmt.Errorf("selfstab: no traffic attached")
	}
	ts := n.traffic.Stats()
	out := TrafficStats{
		Steps:             ts.Steps,
		Offered:           ts.Offered,
		Delivered:         ts.Delivered,
		InFlight:          ts.InFlight,
		DropsQueue:        ts.DropsQueue,
		DropsNoRoute:      ts.DropsNoRoute,
		DropsTTL:          ts.DropsTTL,
		DropsDeadEndpoint: ts.DropsDeadEndpoint,
		DropsAdmission:    ts.DropsAdmission,
		DropsRateLimit:    ts.DropsRateLimit,
		DeliveryRatio:     ts.DeliveryRatio,
		MeanHops:          ts.MeanHops,
		MeanStretch:       ts.MeanStretch,
		LatencyP50:        ts.LatencyP50,
		LatencyP90:        ts.LatencyP90,
		LatencyP99:        ts.LatencyP99,
		LatencyMax:        ts.LatencyMax,
		MeanLoad:          ts.MeanLoad,
		MaxLoad:           ts.MaxLoad,
	}
	// Head accounting over the operating population only: a dead slot's
	// state is reset to self-head and a sleeping node's is frozen, so
	// counting them would inflate the head fraction under churn. Slots
	// recycled by Compact contribute their history via the retired carry.
	load := n.traffic.Load()
	total := n.traffic.RetiredLoad()
	var headLoad int64
	heads, operating := 0, 0
	for i, l := range load {
		total += l
		if n.engine.Status(i) != runtime.StatusAlive {
			continue
		}
		operating++
		if n.engine.Node(i).IsHead() {
			heads++
			headLoad += l
		}
	}
	if total > 0 {
		out.HeadLoadShare = float64(headLoad) / float64(total)
	}
	if operating > 0 {
		out.HeadFraction = float64(heads) / float64(operating)
	}
	out.PerFlow = make([]FlowTrafficStats, len(ts.Flows))
	for i, f := range ts.Flows {
		out.PerFlow[i] = FlowTrafficStats{
			SrcID: n.flowIDs[i].src, DstID: n.flowIDs[i].dst,
			Offered: f.Offered, Delivered: f.Delivered, Dropped: f.Dropped,
		}
	}
	return out, nil
}

// TrafficLoad returns the per-node forwarding-event counts of the attached
// data plane, indexed like Positions — the raw material for load-hotspot
// analysis beyond the summary in TrafficStats.
func (n *Network) TrafficLoad() ([]int64, error) {
	if n.traffic == nil {
		return nil, fmt.Errorf("selfstab: no traffic attached")
	}
	return n.traffic.Load(), nil
}
