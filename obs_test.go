package selfstab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"selfstab/internal/obs"
)

// obsNet is the mixed churn + traffic + energy workload the observability
// oracles run: every phase of the step path fires, so a probe that
// perturbed anything would be caught.
func obsNet(t *testing.T, seed int64, tiles int) *Network {
	t.Helper()
	var opts []Option
	if tiles > 1 {
		opts = append(opts, WithTiles(tiles))
	}
	net := churnNet(t, 220, seed, opts...)
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 8,
		Flows:    mixedWorkload(net, 12),
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{Capacity: 5}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachChurn(ChurnConfig{
		ArrivalRate:   0.3,
		DepartureRate: 0.3,
		CrashRate:     0.1,
		SleepRate:     0.1,
		SleepSteps:    6,
	}); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestProbeDeterminism is the tracing-on-vs-off oracle: through a mixed
// churn + traffic + energy trace, a network with a Collector attached
// produces bit-identical clusters, stats and ledgers to a probe-free
// twin — at 1 and 4 workers, flat and tiled. Run under -race in CI, this
// also exercises the collector's tile-span slots from the tile workers.
func TestProbeDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, tiles := range []int{1, 4} {
			t.Run(fmt.Sprintf("workers=%d/tiles=%d", workers, tiles), func(t *testing.T) {
				run := func(probe bool) (compactObservables, *obs.Collector) {
					net := obsNet(t, 777, tiles)
					net.SetParallelism(workers)
					var c *obs.Collector
					if probe {
						c = NewCollector(256)
						net.AttachProbe(c)
					}
					if err := net.Run(140); err != nil {
						t.Fatal(err)
					}
					return observe(t, net), c
				}
				probed, c := run(true)
				bare, _ := run(false)
				compareObservables(t, "probe on vs off", probed, bare)

				// The probed twin must actually have observed the run:
				// every phase of the mixed workload appears in the stream.
				m := c.Metrics()
				if m.Steps != 140 {
					t.Fatalf("collector recorded %d steps, want 140", m.Steps)
				}
				for _, p := range []obs.Phase{obs.PhaseChurn, obs.PhaseFrame, obs.PhaseIngest, obs.PhaseTraffic, obs.PhaseEnergy} {
					if m.Phases[p].Count == 0 {
						t.Errorf("phase %v unobserved through the mixed trace", p)
					}
				}
				if m.Counters[obs.CtrTrafficForwarded] == 0 {
					t.Errorf("no forwarded packets counted under the mixed workload")
				}
				if tiles > 1 && m.Phases[obs.PhaseHalo].Count == 0 {
					t.Errorf("tiled run emitted no halo spans")
				}
			})
		}
	}
}

// TestProbeSurvivesAttachOrder: subsystems attached after the probe
// inherit it, and a detach silences every emitter at once.
func TestProbeSurvivesAttachOrder(t *testing.T) {
	net := churnNet(t, 220, 31, WithTiles(2))
	c := NewCollector(64)
	net.AttachProbe(c) // probe first, subsystems after
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 8,
		Flows:    mixedWorkload(net, 8),
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{Capacity: 5}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(30); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Phases[obs.PhaseTraffic].Count == 0 || m.Phases[obs.PhaseEnergy].Count == 0 {
		t.Fatalf("late-attached subsystems did not inherit the probe: %+v", m.Phases)
	}
	if !c.Recent(1)[0].CounterSeen[obs.CtrQueueOccupancy] {
		t.Errorf("traffic engine did not report queue occupancy")
	}

	net.DetachProbe()
	if net.Probe() != nil {
		t.Fatalf("Probe() non-nil after DetachProbe")
	}
	before := c.Metrics().Steps
	if err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Steps; got != before {
		t.Fatalf("detached collector still saw %d new steps", got-before)
	}
}

// TestNetworkWriteTrace: the network-level trace export renders the
// attached collector's records as valid Chrome trace JSON covering the
// post-guard phases too.
func TestNetworkWriteTrace(t *testing.T) {
	net := obsNet(t, 99, 2)
	c := NewCollector(128)
	net.AttachProbe(c)
	if err := net.Run(40); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.WriteTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	want := map[string]bool{"step": false, "traffic": false, "energy": false, "churn": false}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace has no %q span", name)
		}
	}

	// Without a collector attached, the export is a documented no-op.
	bare := churnNet(t, 5, 0)
	var empty bytes.Buffer
	if err := bare.WriteTrace(&empty, 0); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("probe-less WriteTrace wrote %d bytes", empty.Len())
	}
}
