package selfstab_test

import (
	"fmt"
	"log"

	"selfstab"
)

// ExampleNewNetwork demonstrates clustering a hand-placed topology.
func ExampleNewNetwork() {
	// Three nodes in a line. All three have density 1, so the identifier
	// tie-break decides: the smallest id (20, the middle node) wins the
	// election and the ends join it.
	net, err := selfstab.NewNetwork([]selfstab.Point{
		{X: 0.40, Y: 0.5},
		{X: 0.50, Y: 0.5},
		{X: 0.60, Y: 0.5},
	}, selfstab.WithSeed(1), selfstab.WithRange(0.12), selfstab.WithIDs([]int64{30, 20, 40}))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(100); err != nil {
		log.Fatal(err)
	}
	for _, c := range net.Clusters() {
		fmt.Printf("head %d has %d members\n", c.HeadID, len(c.Members))
	}
	// Output:
	// head 20 has 3 members
}

// ExampleNetwork_InjectFaults shows the self-stabilization property: a
// fully corrupted network heals back to the same legitimate clustering.
func ExampleNetwork_InjectFaults() {
	net, err := selfstab.NewRandomNetwork(100, selfstab.WithSeed(7), selfstab.WithRange(0.15))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		log.Fatal(err)
	}
	before := len(net.Clusters())

	net.InjectFaults(1.0) // corrupt every node's state and caches
	if _, err := net.Stabilize(500); err != nil {
		log.Fatal(err)
	}
	fmt.Println("healed:", net.Verify() == nil)
	fmt.Println("same cluster count:", len(net.Clusters()) == before)
	// Output:
	// healed: true
	// same cluster count: true
}

// ExampleNetwork_Route demonstrates hierarchical routing over the
// stabilized clusters.
func ExampleNetwork_Route() {
	net, err := selfstab.NewNetwork([]selfstab.Point{
		{X: 0.10, Y: 0.5}, // cluster A
		{X: 0.20, Y: 0.5},
		{X: 0.30, Y: 0.5}, // gateway side A
		{X: 0.40, Y: 0.5}, // gateway side B
		{X: 0.50, Y: 0.5},
		{X: 0.60, Y: 0.5}, // cluster B
	}, selfstab.WithSeed(3), selfstab.WithRange(0.11),
		selfstab.WithIDs([]int64{0, 1, 2, 3, 4, 5}))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(100); err != nil {
		log.Fatal(err)
	}
	path, err := net.Route(0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hops:", len(path)-1)
	// Output:
	// hops: 5
}
