#!/usr/bin/env bash
# bench.sh — the repo's performance trajectory harness.
#
# Runs go vet and the race-instrumented determinism and equivalence
# tests (the safety net for the parallel step engine, the frontier
# worklist engine, the traffic data plane, the churn subsystem and the
# energy subsystem), then benchmarks the core packages with -benchmem
# and records every sample in BENCH_step.json — including the
# BenchmarkPhaseBreakdown rows attributing the 1000-node step cost to
# its churn/frame/ingest phases via the instrumentation collector — plus
# the routing/traffic
# suite in BENCH_traffic.json, the churn suite in BENCH_churn.json, the
# energy suite in BENCH_energy.json and the scale suite (quiescent
# frontier stepping, perturbed 100k step with a tile-count sweep,
# saturated-frontier fallback, slot compaction, and — behind BENCH_1M=1 —
# the million-node tiled scenario) in BENCH_scale.json — so successive
# runs can be compared (benchstat on the raw text, or any tool on the
# JSON).
#
# After generating the fresh numbers, a regression gate compares the
# median ns/op of every step-time benchmark against the committed
# BENCH_*.json baselines captured at script start and fails the run on a
# >20% regression (scripts/benchgate). Set SKIP_BENCH_GATE=1 to record a
# new baseline through a known regression.
#
# Usage: scripts/bench.sh [count]
#   count        benchmark repetitions per benchmark (default 5)
#   SCALE_COUNT  repetitions for the expensive 100k suite (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-5}"
PKGS=(./internal/runtime ./internal/topology ./internal/cluster)
RAW="BENCH_step.txt"
JSON="BENCH_step.json"
TRAFFIC_RAW="BENCH_traffic.txt"
TRAFFIC_JSON="BENCH_traffic.json"
CHURN_RAW="BENCH_churn.txt"
CHURN_JSON="BENCH_churn.json"
ENERGY_RAW="BENCH_energy.txt"
ENERGY_JSON="BENCH_energy.json"
SCALE_RAW="BENCH_scale.txt"
SCALE_JSON="BENCH_scale.json"
SCALE_COUNT="${SCALE_COUNT:-3}"

# Capture the committed baselines before anything overwrites them: these
# are what the regression gate at the end compares against.
BASELINE_DIR="$(mktemp -d)"
trap 'rm -rf "$BASELINE_DIR"' EXIT
for f in "$JSON" "$TRAFFIC_JSON" "$CHURN_JSON" "$ENERGY_JSON" "$SCALE_JSON"; do
    [ -f "$f" ] && cp "$f" "$BASELINE_DIR/$f"
done

echo "== go vet" >&2
go vet ./...

echo "== race-instrumented determinism tests" >&2
go test -race -run 'TestParallelDeterminism|TestParallelMatchesSequentialStabilization|TestEngineChurnParallelDeterminism|TestSparseMatchesDenseMixedTrace|TestTiledMatchesFlatMixedTrace|TestSaturatedFallbackMatchesDense' ./internal/runtime
go test -race -run 'TestTrafficDeterminism|TestChurnDeterminism|TestEnergyDeterminism|TestNetworkSparseMatchesDense|TestCompactTwinEquivalence|TestTilesOracleMixedTrace|TestCompactUnderTiling' .

echo "== benchmarks (count=$COUNT)" >&2
go test -run '^$' -bench . -benchmem -count "$COUNT" "${PKGS[@]}" | tee "$RAW"

echo "== traffic + routing benchmarks (count=$COUNT)" >&2
go test -run '^$' -bench 'BenchmarkRouteCached|BenchmarkRouteRebuild|BenchmarkTrafficStep1000' \
    -benchmem -count "$COUNT" . | tee "$TRAFFIC_RAW"

echo "== churn benchmarks (count=$COUNT)" >&2
go test -run '^$' -bench 'BenchmarkChurnStep1000' \
    -benchmem -count "$COUNT" . | tee "$CHURN_RAW"

echo "== energy benchmarks (count=$COUNT)" >&2
go test -run '^$' -bench 'BenchmarkEnergyStep1000' \
    -benchmem -count "$COUNT" . | tee "$ENERGY_RAW"

echo "== scale benchmarks (count=$SCALE_COUNT)" >&2
SELFSTAB_SCALE_BENCH=1 go test -run '^$' -bench 'BenchmarkQuiescentStep|BenchmarkStep100k|BenchmarkStepSaturated|BenchmarkCompact' \
    -benchmem -benchtime 0.5s -count "$SCALE_COUNT" -timeout 60m ./internal/runtime | tee "$SCALE_RAW"

# The million-node tier is opt-in on top of the scale suite: setup alone
# costs minutes and ~2 GB of heap, so the CI smoke tier (and a default
# bench.sh run) never touches it. Set BENCH_1M=1 to append its rows.
if [ "${BENCH_1M:-0}" = "1" ]; then
    echo "== million-node benchmarks (count=1)" >&2
    SELFSTAB_SCALE_BENCH=1 SELFSTAB_SCALE_BENCH_1M=1 go test -run '^$' -bench 'BenchmarkStep1M' \
        -benchmem -benchtime 5x -count 1 -timeout 120m ./internal/runtime | tee -a "$SCALE_RAW"
fi

# bench_to_json converts benchmark lines into a JSON array. Lines look like:
#   BenchmarkStep1000   232   4536778 ns/op   64 B/op   2 allocs/op
# (memory columns are absent for benchmarks without -benchmem metrics).
bench_to_json() {
awk '
BEGIN { print "["; first = 1 }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s", pkg, name, iters
    if (ns != "")     printf ", \"ns_per_op\": %s", ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$1"
}

bench_to_json "$RAW" > "$JSON"
bench_to_json "$TRAFFIC_RAW" > "$TRAFFIC_JSON"
bench_to_json "$CHURN_RAW" > "$CHURN_JSON"
bench_to_json "$ENERGY_RAW" > "$ENERGY_JSON"
bench_to_json "$SCALE_RAW" > "$SCALE_JSON"

echo "== wrote $RAW, $JSON, $TRAFFIC_RAW, $TRAFFIC_JSON, $CHURN_RAW, $CHURN_JSON, $ENERGY_RAW, $ENERGY_JSON, $SCALE_RAW and $SCALE_JSON" >&2

if [ "${SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "== bench-regression gate skipped (SKIP_BENCH_GATE=1)" >&2
else
    echo "== bench-regression gate (fail on >20% step-time regression vs committed baselines)" >&2
    for f in "$JSON" "$TRAFFIC_JSON" "$CHURN_JSON" "$ENERGY_JSON" "$SCALE_JSON"; do
        if [ -f "$BASELINE_DIR/$f" ]; then
            go run ./scripts/benchgate -baseline "$BASELINE_DIR/$f" -fresh "$f" -threshold 1.2 -match Step
        else
            echo "benchgate: no committed baseline for $f; skipping" >&2
        fi
    done
fi
