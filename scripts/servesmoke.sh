#!/usr/bin/env bash
# Serving-mode smoke: boot `selfstab-sim serve`, poll /healthz until the
# world is live, scrape /metrics (including the step-phase histograms
# from the instrumentation collector), fetch a Chrome trace over POST
# /trace, take a 1-second CPU profile through the -pprof endpoints,
# inject a regional crash over HTTP, checkpoint to disk, and verify a
# clean SIGTERM drain (including the drain snapshot) within a timeout.
# This gates wiring, not timing.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18650
DIR="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/selfstab-sim" ./cmd/selfstab-sim
"$DIR/selfstab-sim" serve -nodes 300 -addr "$ADDR" -sps 50 -preload churn \
  -snapshot-dir "$DIR/snaps" -drain-snapshot -pprof &
PID=$!

# Boot can take a moment: the world cold-stabilizes before serving.
up=""
for _ in $(seq 1 120); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then up=1; break; fi
  if ! kill -0 "$PID" 2>/dev/null; then echo "server died during boot" >&2; exit 1; fi
  sleep 0.5
done
[ -n "$up" ] || { echo "server never became healthy" >&2; exit 1; }

curl -fsS "http://$ADDR/healthz" | grep -q '"ok": true'
curl -fsS "http://$ADDR/metrics" | grep -q '^selfstab_step_count'

# The instrumentation layer: phase histograms and engine counters from
# the attached collector, plus the convergence and SSE-pressure blocks.
METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '^selfstab_step_duration_seconds_bucket'
echo "$METRICS" | grep -q 'selfstab_phase_duration_seconds_bucket{phase="churn"'
echo "$METRICS" | grep -q '^selfstab_engine_frontier_len'
echo "$METRICS" | grep -q '^selfstab_convergence_episodes_total'
echo "$METRICS" | grep -q '^selfstab_sse_dropped_frames_total'

# A Chrome trace of recent steps over HTTP: well-formed JSON with spans.
curl -fsS -X POST "http://$ADDR/trace?last=50" -o "$DIR/trace.json"
grep -q '"traceEvents"' "$DIR/trace.json"
grep -q '"name":"step"' "$DIR/trace.json"
if command -v python3 >/dev/null; then
  python3 -m json.tool "$DIR/trace.json" >/dev/null
fi

# Live profiling behind -pprof: a 1-second CPU profile comes back non-empty.
curl -fsS "http://$ADDR/debug/pprof/profile?seconds=1" -o "$DIR/cpu.pprof"
[ -s "$DIR/cpu.pprof" ] || { echo "empty CPU profile from /debug/pprof" >&2; exit 1; }
curl -fsS -X POST -d '{"kind":"crash_region","x":0.5,"y":0.5,"radius":0.15}' \
  "http://$ADDR/inject" | grep -q '"kind": "crash_region"'
curl -fsS -X POST "http://$ADDR/snapshot" | grep -q '"path"'
ls "$DIR/snaps"/snapshot-step*.json >/dev/null

sleep 0.5 # let the world step past the explicit checkpoint before draining
kill -TERM "$PID"
drained=""
for _ in $(seq 1 40); do
  if ! kill -0 "$PID" 2>/dev/null; then drained=1; break; fi
  sleep 0.25
done
[ -n "$drained" ] || { echo "server did not drain on SIGTERM" >&2; exit 1; }
wait "$PID" || { echo "server exited non-zero" >&2; exit 1; }
PID=""
# The drain snapshot (beyond the explicit POST /snapshot one) landed too.
count=$(ls "$DIR/snaps"/snapshot-step*.json | wc -l)
[ "$count" -ge 2 ] || { echo "expected a drain snapshot, found $count file(s)" >&2; exit 1; }
echo "serve smoke OK"
