#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate, the same sweep CI runs.
#
# Order: the cheap universal checks first (gofmt, go vet), then the
# repo's own analyzer suite (cmd/selfstab-lint: detrand, maporder,
# journalchoke, hotpath, obspure — see internal/analyze), then the
# third-party
# scanners (staticcheck, govulncheck) when they are installed. The
# third-party tools are gated on availability rather than installed on
# the fly so the script works offline; CI installs pinned versions.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
# internal/analyze/testdata holds a separate fixture module with
# deliberate violations; everything else must be clean.
fmt=$(gofmt -l . | grep -v '/testdata/' || true)
if [[ -n "$fmt" ]]; then
  echo "gofmt: needs formatting:" >&2
  echo "$fmt" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== selfstab-lint"
go run ./cmd/selfstab-lint ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck"
  staticcheck ./...
else
  echo "== staticcheck (skipped: not installed)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck"
  govulncheck ./...
else
  echo "== govulncheck (skipped: not installed)"
fi

echo "lint: all gates passed"
