// Command benchgate is the bench-regression gate behind scripts/bench.sh:
// it compares a freshly generated BENCH_*.json against the committed
// baseline copy and fails (exit 1) when the median ns/op of any step-time
// benchmark regressed beyond the threshold factor.
//
//	go run ./scripts/benchgate -baseline old.json -fresh new.json [-threshold 1.2] [-match Step]
//
// Benchmarks present on only one side are skipped (new benchmarks are
// not regressions; retired ones are not failures), so the gate tracks
// the trajectory without blocking additions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type sample struct {
	Package string   `json:"package"`
	Name    string   `json:"name"`
	NsPerOp *float64 `json:"ns_per_op"`
}

func medians(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var samples []sample
	if err := json.Unmarshal(raw, &samples); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byKey := map[string][]float64{}
	for _, s := range samples {
		if s.NsPerOp == nil {
			continue
		}
		key := s.Package + " " + s.Name
		byKey[key] = append(byKey[key], *s.NsPerOp)
	}
	out := make(map[string]float64, len(byKey))
	for key, vals := range byKey {
		sort.Float64s(vals)
		out[key] = vals[len(vals)/2]
	}
	return out, nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed baseline BENCH_*.json")
		fresh     = flag.String("fresh", "", "freshly generated BENCH_*.json")
		threshold = flag.Float64("threshold", 1.2, "fail when fresh median exceeds baseline median by this factor")
		match     = flag.String("match", "Step", "regexp a benchmark name must match to be gated")
	)
	flag.Parse()
	if *baseline == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -fresh are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	base, err := medians(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := medians(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	keys := make([]string, 0, len(cur))
	for key := range cur {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	failed := false
	for _, key := range keys {
		if !re.MatchString(key) {
			continue
		}
		b, ok := base[key]
		if !ok || b <= 0 {
			continue // new benchmark: nothing to regress against
		}
		c := cur[key]
		ratio := c / b
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("benchgate: %-70s %12.0f -> %12.0f ns/op (%.2fx) %s\n", key, b, c, ratio, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: step-time regression beyond %.2fx against %s\n", *threshold, *baseline)
		os.Exit(1)
	}
}
