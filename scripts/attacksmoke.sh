#!/usr/bin/env bash
# Adversarial-workload smoke: run each attack scenario end to end from the
# CLI at the default (CI-sized) configuration and assert the defenses are
# measurably effective — the flood defense recovers legitimate delivery
# above a floor, plausibility eviction zeroes byzantine headship capture,
# and the sybil burst is removed. Everything is seeded and deterministic,
# so these are exact gates on defense efficacy, not timing.
set -euo pipefail
cd "$(dirname "$0")/.."

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/selfstab-sim" ./cmd/selfstab-sim

# Flood: the token-bucket + rate-limit defenses must beat the undefended
# world and hold the delivery floor.
FLOOD="$("$DIR/selfstab-sim" attack -scenario flood)"
echo "$FLOOD"
UNDEF=$(echo "$FLOOD" | awk '/legit delivery \(under attack\)/ {print $(NF-1)}')
DEF=$(echo "$FLOOD" | awk '/legit delivery \(under attack\)/ {print $NF}')
[ -n "$UNDEF" ] && [ -n "$DEF" ] || { echo "could not parse delivery ratios" >&2; exit 1; }
awk -v u="$UNDEF" -v d="$DEF" 'BEGIN { exit !(d > u) }' \
  || { echo "defense did not recover delivery: defended $DEF <= undefended $UNDEF" >&2; exit 1; }
awk -v d="$DEF" 'BEGIN { exit !(d >= 0.45) }' \
  || { echo "defended delivery $DEF under the 0.45 floor" >&2; exit 1; }
echo "$FLOOD" | grep -q 'defense recovered +' \
  || { echo "report does not state a positive recovery" >&2; exit 1; }

# Byzantine: inflated densities capture headship undefended; the
# plausibility sweep evicts the liars and capture falls.
BYZ="$("$DIR/selfstab-sim" attack -scenario byzantine)"
echo "$BYZ"
UCAP=$(echo "$BYZ" | awk '/headship capture rate/ {print $(NF-1)}')
DCAP=$(echo "$BYZ" | awk '/headship capture rate/ {print $NF}')
awk -v u="$UCAP" 'BEGIN { exit !(u > 0) }' \
  || { echo "byzantine attack captured no headship (capture $UCAP)" >&2; exit 1; }
awk -v u="$UCAP" -v d="$DCAP" 'BEGIN { exit !(d < u) }' \
  || { echo "eviction did not reduce capture: $DCAP >= $UCAP" >&2; exit 1; }
EVICTED=$(echo "$BYZ" | awk '/evictions/ {print $NF}')
[ "$EVICTED" -gt 0 ] || { echo "plausibility sweep evicted nobody" >&2; exit 1; }

# Sybil: the burst joins and the operator removal clears it.
SYB="$("$DIR/selfstab-sim" attack -scenario sybil)"
echo "$SYB"
REMOVED=$(echo "$SYB" | awk '/evictions/ {print $NF}')
[ "$REMOVED" -gt 0 ] || { echo "no sybils removed" >&2; exit 1; }

echo "attack smoke OK"
