package selfstab

import (
	"fmt"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
	"selfstab/internal/runtime"
	"selfstab/internal/snapshot"
)

// NodeStatus is a node's lifecycle state under churn.
type NodeStatus int

const (
	// NodeAlive is a normally operating node.
	NodeAlive NodeStatus = iota
	// NodeSleeping is a duty-cycled node: radio off, protocol state and
	// queued packets frozen until it wakes.
	NodeSleeping
	// NodeDead is a permanently departed (or never-recovered crashed)
	// node. Its index slot survives so Positions/State stay aligned, but
	// it takes no further part in the simulation.
	NodeDead
)

// String implements fmt.Stringer.
func (s NodeStatus) String() string {
	switch s {
	case NodeAlive:
		return "alive"
	case NodeSleeping:
		return "sleeping"
	case NodeDead:
		return "dead"
	}
	return fmt.Sprintf("NodeStatus(%d)", int(s))
}

func statusOf(s runtime.NodeStatus) NodeStatus {
	switch s {
	case runtime.StatusSleeping:
		return NodeSleeping
	case runtime.StatusDead:
		return NodeDead
	}
	return NodeAlive
}

// ChurnKind is a bitmask naming the disruption kinds folded into one
// convergence-ledger episode.
type ChurnKind uint8

const (
	// ChurnJoin is a node arrival (AddNodes).
	ChurnJoin = ChurnKind(runtime.ChurnJoin)
	// ChurnLeave is a permanent departure (RemoveNodes).
	ChurnLeave = ChurnKind(runtime.ChurnLeave)
	// ChurnCrash is a state-losing reboot (CrashNodes).
	ChurnCrash = ChurnKind(runtime.ChurnCrash)
	// ChurnSleep is a duty-cycle power-down (SleepNodes).
	ChurnSleep = ChurnKind(runtime.ChurnSleep)
	// ChurnWake is a duty-cycle power-up (WakeNodes).
	ChurnWake = ChurnKind(runtime.ChurnWake)
	// ChurnFault is transient state corruption (InjectFaults).
	ChurnFault = ChurnKind(runtime.ChurnFault)
	// ChurnAttack is an adversarial disruption: byzantine density
	// inflation (InflateDensity) or its plausibility eviction
	// (EvictNodes). Attack episodes land in the same convergence ledger
	// as organic churn, so steps-to-restabilize after an attack is
	// measured by the exact machinery the paper's claim is scored with.
	ChurnAttack = ChurnKind(runtime.ChurnAttack)
)

// String renders the set, e.g. "join|crash".
func (k ChurnKind) String() string { return runtime.ChurnKind(k).String() }

// DisruptionRecord is one closed episode of the convergence ledger: a
// burst of disruptions followed by the network re-stabilizing. It is the
// paper's self-stabilization claim made measurable per disruption —
// how long convergence took and how far it spread.
type DisruptionRecord struct {
	// Step is the completed-step count at which the episode opened.
	Step int
	// Kinds is the set of disruption kinds folded into the episode.
	Kinds ChurnKind
	// Ops counts the individual disruptions in the episode.
	Ops int
	// StepsToStabilize is the number of steps from the episode opening to
	// the last step that changed any shared protocol variable.
	StepsToStabilize int
	// AffectedNodes counts nodes whose shared state changed during the
	// episode.
	AffectedNodes int
	// AffectedRadius is the maximum hop distance from the disruption
	// sites to any affected node, measured on the topology at close time
	// — the paper's locality claim in hops. For departures and sleeps the
	// sites are the vanished node's former neighbors. -1 when no affected
	// node is reachable from a site (including "nothing changed").
	AffectedRadius int
}

// ConvergenceStats is the convergence ledger: every closed disruption
// episode plus aggregates. For a fixed seed it is bit-identical at any
// parallelism (pinned by TestChurnDeterminism).
type ConvergenceStats struct {
	// Disruptions lists the closed episodes in order.
	Disruptions []DisruptionRecord
	// Open reports whether a disruption episode is still converging (its
	// record will only appear once the network has been quiet for the
	// convergence window).
	Open bool

	// Aggregates over the closed episodes (zero values when none closed).
	MeanStepsToStabilize float64
	MaxStepsToStabilize  int
	MeanAffectedNodes    float64
	// MeanAffectedRadius averages over episodes with a non-negative
	// radius; MaxAffectedRadius is -1 when no episode had one.
	MeanAffectedRadius float64
	MaxAffectedRadius  int
}

// ConvergenceStats snapshots the convergence ledger. Episodes are
// recorded for every disruption source: the churn schedule, the manual
// churn calls (AddNodes, RemoveNodes, CrashNodes, SleepNodes, WakeNodes)
// and InjectFaults.
func (n *Network) ConvergenceStats() ConvergenceStats {
	recs := n.engine.DisruptionRecords()
	out := ConvergenceStats{
		Disruptions:       make([]DisruptionRecord, len(recs)),
		Open:              n.engine.DisruptionOpen(),
		MaxAffectedRadius: -1,
	}
	var steps, affected, radius, radiusN int
	for i, r := range recs {
		out.Disruptions[i] = DisruptionRecord{
			Step:             r.Step,
			Kinds:            ChurnKind(r.Kinds),
			Ops:              r.Ops,
			StepsToStabilize: r.StepsToStabilize,
			AffectedNodes:    r.AffectedNodes,
			AffectedRadius:   r.AffectedRadius,
		}
		steps += r.StepsToStabilize
		affected += r.AffectedNodes
		if r.StepsToStabilize > out.MaxStepsToStabilize {
			out.MaxStepsToStabilize = r.StepsToStabilize
		}
		if r.AffectedRadius >= 0 {
			radius += r.AffectedRadius
			radiusN++
			if r.AffectedRadius > out.MaxAffectedRadius {
				out.MaxAffectedRadius = r.AffectedRadius
			}
		}
	}
	if len(recs) > 0 {
		out.MeanStepsToStabilize = float64(steps) / float64(len(recs))
		out.MeanAffectedNodes = float64(affected) / float64(len(recs))
	}
	if radiusN > 0 {
		out.MeanAffectedRadius = float64(radius) / float64(radiusN)
	}
	return out
}

// Population counts the nodes in each lifecycle state. alive + sleeping +
// dead always equals N() — dead slots are retained. O(1): the engine
// maintains alive and dead counters across every lifecycle transition, so
// monitoring loops can poll this every step at any scale.
func (n *Network) Population() (alive, sleeping, dead int) {
	alive = n.engine.AliveCount()
	dead = n.engine.DeadCount()
	return alive, len(n.pts) - alive - dead, dead
}

// AddNodes powers up new nodes at the given positions. They receive fresh
// identifiers (returned in order), join the radio topology immediately,
// and integrate into the clustering over the following steps. Indices of
// existing nodes are unchanged; the new nodes take the next indices.
func (n *Network) AddNodes(positions []Point) ([]int64, error) {
	// Identifiers are sequential from nextID, so the journal only needs the
	// positions — replay hands out the same ids.
	first := n.nextID
	if err := n.applyOp(snapshot.Op{Kind: snapshot.OpAddNodes, Points: toSnapshotPoints(positions)}); err != nil {
		return nil, err
	}
	ids := make([]int64, len(positions))
	for i := range ids {
		ids[i] = first + int64(i)
	}
	return ids, nil
}

// addNodesImpl is the journaled implementation behind AddNodes. All
// positions are validated before any node is added, so a failed call
// mutates nothing.
func (n *Network) addNodesImpl(points []snapshot.Point) error {
	if len(points) == 0 {
		return fmt.Errorf("selfstab: no positions")
	}
	pts := make([]geom.Point, len(points))
	for i, p := range points {
		pts[i] = geom.Point{X: p.X, Y: p.Y}
		if !n.region.Contains(pts[i]) {
			return fmt.Errorf("selfstab: position %d (%v, %v) outside the region", i, p.X, p.Y)
		}
	}
	for _, p := range pts {
		if _, err := n.addNodeAt(p); err != nil {
			return err
		}
	}
	return nil
}

// addNodeAt appends one node at p: grid and graph first (so the engine
// sees the newcomer's edges), then the engine slot, then every dense
// structure that must stay aligned.
func (n *Network) addNodeAt(p geom.Point) (int64, error) {
	id := n.nextID
	idx := n.grid.Append(p)
	if _, err := n.engine.Append(id); err != nil {
		return 0, err
	}
	n.nextID++
	n.pts = append(n.pts, p)
	n.ids = append(n.ids, id)
	n.id2idx[id] = idx
	if n.traffic != nil {
		n.traffic.Resize(len(n.pts))
	}
	if n.energy != nil {
		n.energy.Resize(len(n.pts)) // arrivals power up with a full battery
	}
	if n.churn != nil {
		n.churn.sleepUntil = append(n.churn.sleepUntil, 0)
	}
	n.topoEpoch++
	return id, nil
}

// RemoveNodes powers the given nodes off permanently: radio silent,
// protocol state cleared, queued packets accounted as dead-endpoint
// drops. The nodes' index slots (and positions) survive so indices stay
// stable, but the nodes never return — model a temporary outage with
// SleepNodes/WakeNodes or a reboot with CrashNodes instead.
func (n *Network) RemoveNodes(ids ...int64) error {
	return n.applyOp(snapshot.Op{Kind: snapshot.OpRemoveNodes, IDs: append([]int64(nil), ids...)})
}

// CrashNodes power-cycles the given nodes: all protocol state, the
// neighbor cache and any queued packets are lost, and each node restarts
// cold at its current position (a sleeping node reboots awake). The
// protocol re-integrates it exactly like a fresh arrival.
func (n *Network) CrashNodes(ids ...int64) error {
	return n.applyOp(snapshot.Op{Kind: snapshot.OpCrashNodes, IDs: append([]int64(nil), ids...)})
}

// SleepNodes duty-cycles the given nodes off: radio silent, protocol
// state and queued packets frozen. Neighbors age them out of their caches
// (configure WithCacheTTL — without eviction a sleeping neighbor lingers
// in caches forever). Nodes slept by this call stay down until WakeNodes.
func (n *Network) SleepNodes(ids ...int64) error {
	return n.applyOp(snapshot.Op{Kind: snapshot.OpSleepNodes, IDs: append([]int64(nil), ids...)})
}

// WakeNodes brings sleeping nodes back at their current positions with
// their frozen — possibly stale — state; self-stabilization repairs the
// staleness over the following steps.
func (n *Network) WakeNodes(ids ...int64) error {
	return n.applyOp(snapshot.Op{Kind: snapshot.OpWakeNodes, IDs: append([]int64(nil), ids...)})
}

func (n *Network) removeNodeIdx(i int) error {
	if err := n.engine.Kill(i); err != nil { // before edge removal: captures spread sites
		return err
	}
	n.grid.Deactivate(i)
	if n.traffic != nil {
		n.traffic.FlushNode(i)
	}
	if n.churn != nil && i < len(n.churn.sleepUntil) {
		n.churn.sleepUntil[i] = 0 // a removed sleeper must never be schedule-woken
	}
	n.topoEpoch++
	return nil
}

func (n *Network) crashNodeIdx(i int) error {
	wasSleeping := n.engine.Status(i) == runtime.StatusSleeping
	if err := n.engine.Reboot(i); err != nil {
		return err
	}
	if wasSleeping {
		n.grid.Reactivate(i) // a crashed sleeper reboots awake
		n.topoEpoch++
	}
	if n.traffic != nil {
		n.traffic.FlushNode(i) // the queue is part of the lost state
	}
	if n.churn != nil && i < len(n.churn.sleepUntil) {
		n.churn.sleepUntil[i] = 0
	}
	return nil
}

func (n *Network) sleepNodeIdx(i int, until int) error {
	if err := n.engine.Sleep(i); err != nil { // before edge removal: captures spread sites
		return err
	}
	n.grid.Deactivate(i)
	if n.churn != nil && i < len(n.churn.sleepUntil) {
		n.churn.sleepUntil[i] = until
		if until != 0 {
			n.churn.sleepers = append(n.churn.sleepers, int32(i))
		}
	}
	n.topoEpoch++
	return nil
}

func (n *Network) wakeNodeIdx(i int) error {
	if n.engine.Status(i) != runtime.StatusSleeping {
		return fmt.Errorf("selfstab: node %d is %s, cannot wake", i, statusOf(n.engine.Status(i)))
	}
	n.grid.Reactivate(i) // before Wake: the join sites include current neighbors
	if err := n.engine.Wake(i); err != nil {
		return err
	}
	if n.churn != nil && i < len(n.churn.sleepUntil) {
		n.churn.sleepUntil[i] = 0
	}
	n.topoEpoch++
	return nil
}

// ChurnConfig parameterizes the seeded churn schedule AttachChurn drives
// as a pre-step phase: every step it draws Poisson-distributed counts of
// arrivals, departures, crashes and sleeps, applies them to uniformly
// chosen victims, and wakes nodes whose sleep duration expired. All
// randomness comes from a dedicated stream of the network's seed, so a
// fixed seed reproduces the same churn — and the same ConvergenceStats
// and TrafficStats — at any parallelism.
type ChurnConfig struct {
	// ArrivalRate is the mean number of new nodes per step, placed
	// uniformly in the deployment region.
	ArrivalRate float64
	// DepartureRate is the mean number of permanent departures per step.
	DepartureRate float64
	// CrashRate is the mean number of state-losing reboots per step.
	CrashRate float64
	// SleepRate is the mean number of nodes duty-cycled off per step.
	SleepRate float64
	// SleepSteps is how many steps a scheduled sleep lasts. Default 10.
	SleepSteps int
	// MinAlive pauses departures, crashes and sleeps while the alive
	// population is at or below this floor. Default 2.
	MinAlive int
}

func (c *ChurnConfig) fillDefaults() {
	if c.SleepSteps == 0 {
		c.SleepSteps = 10
	}
	if c.MinAlive == 0 {
		c.MinAlive = 2
	}
}

func (c *ChurnConfig) validate() error {
	if c.ArrivalRate < 0 || c.DepartureRate < 0 || c.CrashRate < 0 || c.SleepRate < 0 {
		return fmt.Errorf("selfstab: negative churn rate: %+v", *c)
	}
	if c.ArrivalRate == 0 && c.DepartureRate == 0 && c.CrashRate == 0 && c.SleepRate == 0 {
		return fmt.Errorf("selfstab: churn config with all rates zero")
	}
	if c.SleepSteps < 1 {
		return fmt.Errorf("selfstab: sleep duration %d < 1", c.SleepSteps)
	}
	if c.MinAlive < 1 {
		return fmt.Errorf("selfstab: MinAlive %d < 1", c.MinAlive)
	}
	return nil
}

// churnState is the attached schedule: config, dedicated rng stream, and
// the per-node wake deadlines (0 = no scheduled wake). sleepers is the
// deadline worklist — the slots with a scheduled wake — so the per-step
// wake check costs O(scheduled sleepers), not O(N); entries whose
// deadline was cleared out-of-band (wake, removal, crash) cull lazily.
type churnState struct {
	cfg        ChurnConfig
	src        *rng.Source
	sleepUntil []int
	sleepers   []int32
}

// compactSleepers applies a dead-slot recycling remap to the worklist
// (survivors keep their order; dropped slots leave it).
func (c *churnState) compactSleepers(remap []int32) {
	kept := c.sleepers[:0]
	for _, si := range c.sleepers {
		if nw := remap[si]; nw >= 0 {
			kept = append(kept, nw)
		}
	}
	c.sleepers = kept
}

// AttachChurn installs a node-lifecycle churn schedule that runs as a
// pre-step phase of every subsequent Δ(τ) step (Step, Run and Stabilize
// all drive it). Requires WithCacheTTL: without cache eviction a vanished
// neighbor would linger in caches forever and the clustering could never
// re-converge. Each disruption is tracked in the convergence ledger; call
// ConvergenceStats for per-episode stabilization time and affected
// radius. Attaching replaces any previously attached schedule; the
// ledger persists across attaches.
func (n *Network) AttachChurn(cfg ChurnConfig) error {
	sc := churnToSnapshot(cfg)
	return n.applyOp(snapshot.Op{Kind: snapshot.OpAttachChurn, Churn: &sc})
}

// attachChurnImpl is the journaled implementation behind AttachChurn. The
// journal records the config as given; defaults are refilled here, so a
// replayed attach resolves identically.
func (n *Network) attachChurnImpl(sc snapshot.ChurnConfig) error {
	cfg := churnFromSnapshot(sc)
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	if n.cfg.cacheTTL == 0 {
		return fmt.Errorf("selfstab: churn requires cache eviction — construct the network with WithCacheTTL")
	}
	if n.churn == nil {
		n.churn = &churnState{src: n.src.Split("churn")}
	}
	n.churn.cfg = cfg
	if len(n.churn.sleepUntil) < len(n.pts) {
		n.churn.sleepUntil = make([]int, len(n.pts))
	}
	n.engine.SetPreStep(n.churnPreStep)
	n.churnAttached = true
	return nil
}

// DetachChurn removes the schedule; subsequent steps run no churn. Nodes
// currently sleeping on a schedule will not be woken — call WakeNodes, or
// re-attach. The convergence ledger stays readable.
func (n *Network) DetachChurn() {
	_ = n.applyOp(snapshot.Op{Kind: snapshot.OpDetachChurn})
}

// churnPreStep is the engine pre-step hook: one step's worth of scheduled
// churn. Allocation-free at steady state for crash/sleep/wake churn
// (arrivals allocate: they grow the network).
func (n *Network) churnPreStep(step int) error {
	c := n.churn
	// Due wakes first: they free capacity before new sleeps are drawn.
	// Walk the deadline worklist, culling entries cleared out-of-band.
	w := 0
	for _, si := range c.sleepers {
		i := int(si)
		until := c.sleepUntil[i]
		if until == 0 {
			continue // woken, removed or crashed since scheduling
		}
		if step >= until {
			if err := n.wakeNodeIdx(i); err != nil {
				return err
			}
			continue // the wake cleared the deadline
		}
		c.sleepers[w] = si
		w++
	}
	c.sleepers = c.sleepers[:w]
	for k := c.src.Poisson(c.cfg.ArrivalRate); k > 0; k-- {
		p := geom.Point{
			X: n.region.MinX + c.src.Float64()*(n.region.MaxX-n.region.MinX),
			Y: n.region.MinY + c.src.Float64()*(n.region.MaxY-n.region.MinY),
		}
		if _, err := n.addNodeAt(p); err != nil {
			return err
		}
	}
	for k := c.src.Poisson(c.cfg.DepartureRate); k > 0; k-- {
		i, ok := n.pickAlive()
		if !ok {
			break
		}
		if err := n.removeNodeIdx(i); err != nil {
			return err
		}
	}
	for k := c.src.Poisson(c.cfg.CrashRate); k > 0; k-- {
		i, ok := n.pickAlive()
		if !ok {
			break
		}
		if err := n.crashNodeIdx(i); err != nil {
			return err
		}
	}
	for k := c.src.Poisson(c.cfg.SleepRate); k > 0; k-- {
		i, ok := n.pickAlive()
		if !ok {
			break
		}
		if err := n.sleepNodeIdx(i, step+c.cfg.SleepSteps); err != nil {
			return err
		}
	}
	return nil
}

// pickAlive draws a uniform victim among alive nodes, honoring the
// MinAlive floor. The draw is the same k-th-alive-in-index-order pick the
// original full scan produced — resolved through the engine's
// order-statistic index in O(log N) instead of O(N), which is what keeps
// churn steps cheap at million-node scale. Still allocation-free.
func (n *Network) pickAlive() (int, bool) {
	alive := n.engine.AliveCount()
	if alive <= n.churn.cfg.MinAlive {
		return -1, false
	}
	k := n.churn.src.Intn(alive)
	if i := n.engine.NthAlive(k); i >= 0 {
		return i, true
	}
	return -1, false // unreachable: k < alive
}
