package selfstab

import (
	"fmt"

	"selfstab/internal/energy"
	"selfstab/internal/obs"
	"selfstab/internal/runtime"
	"selfstab/internal/snapshot"
)

// EnergyConfig parameterizes the battery model attached to a Network.
//
// The five costs form one schedule: leave them ALL zero to use the
// reference schedule shared with the offline energy experiment
// (internal/energy.DefaultCosts — the per-field values noted below), or
// set any of them to specify the schedule yourself, in which case the
// fields you leave zero really cost zero (an explicit free term, e.g.
// RxCost 0 for a receive-free radio model, stays expressible).
type EnergyConfig struct {
	// Capacity is every node's initial battery in energy units. Default 1.
	Capacity float64

	// IdleHeadCost is the per-step drain of serving as a cluster-head
	// (beaconing, aggregation, staying receive-ready for the cluster).
	// Reference schedule: 0.002.
	IdleHeadCost float64
	// IdleMemberCost is the per-step drain of an ordinary awake node.
	// Reference schedule: 0.0002.
	IdleMemberCost float64
	// SleepCost is the per-step drain while duty-cycled off — what
	// SleepNodes and the churn schedule's duty-cycling actually save.
	// Reference schedule: 0.00002.
	SleepCost float64
	// TxCost is the drain per transmitted data packet (one forwarding
	// event of the attached traffic plane). Reference schedule: 0.0005.
	TxCost float64
	// RxCost is the drain per received data packet. Reference schedule:
	// 0.0002.
	RxCost float64

	// Rotation enables energy-aware head rotation: each node's shared
	// density is scaled by its quantized remaining-energy fraction, so a
	// draining head loses the ≺ election online and the burden rotates —
	// the paper's Section 6 future work running live.
	Rotation bool
	// RotationLevels quantizes the rotation scale: re-elections trigger
	// only when a battery crosses a 1/RotationLevels capacity boundary,
	// so the clustering is perturbed at level crossings, not every step.
	// Default 8.
	RotationLevels int
}

// AttachEnergy installs a per-node battery model that runs as a post-step
// phase of every subsequent Δ(τ) step (Step, Run and Stabilize all drive
// it), after the traffic phase of the same step. Every operating node
// pays a role-dependent idle cost (head vs member, read off the live
// clustering), per-packet tx/rx costs driven by the attached data plane's
// counters (idle-only when no traffic is attached), and a reduced sleep
// cost while duty-cycled. A battery that crosses zero kills its node
// through the churn machinery: the depletion becomes a disruption episode
// in ConvergenceStats with steps-to-restabilize and affected radius, its
// queued packets become dead-endpoint drops, and EnergyStats records the
// death. Requires WithCacheTTL, like churn: a depleted node must age out
// of its neighbors' caches.
//
// With Rotation set, the battery level also feeds back into head
// election (see EnergyConfig.Rotation); Verify remains exact — it checks
// the scaled densities against the correspondingly scaled oracle.
//
// Attaching replaces any previously attached model and resets its
// statistics; batteries restart full.
func (n *Network) AttachEnergy(cfg EnergyConfig) error {
	sc := energyToSnapshot(cfg)
	return n.applyOp(snapshot.Op{Kind: snapshot.OpAttachEnergy, Energy: &sc})
}

// attachEnergyImpl is the journaled implementation behind AttachEnergy.
func (n *Network) attachEnergyImpl(sc snapshot.EnergyConfig) error {
	cfg := energyFromSnapshot(sc)
	if n.cfg.cacheTTL == 0 {
		return fmt.Errorf("selfstab: energy requires cache eviction — construct the network with WithCacheTTL")
	}
	ec := energy.Config{
		Capacity: cfg.Capacity,
		Costs: energy.Costs{
			IdleHead:   cfg.IdleHeadCost,
			IdleMember: cfg.IdleMemberCost,
			Sleep:      cfg.SleepCost,
			Tx:         cfg.TxCost,
			Rx:         cfg.RxCost,
		},
		Rotation: cfg.Rotation,
		Levels:   cfg.RotationLevels,
	}
	hooks := energy.Hooks{
		Alive: func(i int) bool {
			return n.engine.Status(i) == runtime.StatusAlive
		},
		Sleeping: func(i int) bool {
			return n.engine.Status(i) == runtime.StatusSleeping
		},
		IsHead: func(i int) bool {
			return n.engine.Node(i).IsHead()
		},
		// The tx/rx hooks read whatever data plane is attached at charge
		// time, so traffic may be attached before or after the batteries.
		Tx: func(i int) int64 {
			if n.traffic == nil {
				return 0
			}
			return n.traffic.LoadAt(i)
		},
		Rx: func(i int) int64 {
			if n.traffic == nil {
				return 0
			}
			return n.traffic.RecvAt(i)
		},
		Kill: n.removeNodeIdx,
		Scale: func(i int, s float64) error {
			return n.engine.SetDensityScale(i, s)
		},
	}
	eng, err := energy.New(len(n.pts), ec, hooks)
	if err != nil {
		return err
	}
	if n.energy != nil && n.energy.Rotation() {
		// A replaced rotating model leaves its scales behind; reset them
		// so the fresh model (whose full batteries mean scale 1 on every
		// node) or the plain-density election starts from a clean slate.
		for i := range n.pts {
			if err := n.engine.SetDensityScale(i, 1); err != nil {
				return err
			}
		}
	}
	eng.SetParallelism(n.workers)
	eng.SetProbe(n.probe) // late attach inherits the network's probe
	n.energy = eng
	n.energyOn = true
	n.installStepPhases()
	return nil
}

// DetachEnergy removes the battery model; subsequent steps drain nothing.
// The final statistics remain readable via EnergyStats until the next
// AttachEnergy. Rotation scales currently applied stay in force (the
// frozen battery levels keep shaping the election); re-attach or use a
// non-rotating model to clear them.
func (n *Network) DetachEnergy() {
	_ = n.applyOp(snapshot.Op{Kind: snapshot.OpDetachEnergy})
}

// stepPhases is the engine post-step hook: the traffic data plane moves
// packets, then the battery model charges that same step's activity (and
// may kill depleted nodes through the churn machinery). Both run
// sequentially on the engine's goroutine, so their ledgers stay
// bit-identical at any parallelism.
func (n *Network) stepPhases(step int) error {
	p := n.probe
	if n.trafficOn {
		if p != nil {
			p.PhaseBegin(obs.PhaseTraffic)
		}
		err := n.traffic.Step(step)
		if p != nil {
			p.PhaseEnd(obs.PhaseTraffic)
		}
		if err != nil {
			return err
		}
	}
	if n.energyOn {
		if p != nil {
			p.PhaseBegin(obs.PhaseEnergy)
		}
		err := n.energy.Step(step)
		if p != nil {
			p.PhaseEnd(obs.PhaseEnergy)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// installStepPhases (re)installs the post-step dispatcher, or clears it
// when no phase is attached.
func (n *Network) installStepPhases() {
	if n.trafficOn || n.energyOn {
		n.engine.SetPostStep(n.stepPhases)
		return
	}
	n.engine.SetPostStep(nil)
}

// EnergyStats is the battery ledger of the attached energy model. The
// drain identity DrainHead + DrainMember + DrainSleep + DrainTx + DrainRx
// == TotalDrain holds at every step boundary. For a fixed seed it is
// bit-identical at any parallelism (pinned by TestEnergyDeterminism).
type EnergyStats struct {
	// Steps is how many steps the battery model itself has run.
	Steps int

	// FirstDeathStep is the completed-step count at which the first
	// battery depleted — the network-lifetime metric. -1 while every
	// battery is above zero.
	FirstDeathStep int
	// Depletions counts batteries that crossed zero; each one was killed
	// through the churn machinery and has a matching disruption episode.
	Depletions int

	// Per-cause drain breakdown in energy units, summed over all nodes.
	DrainHead   float64
	DrainMember float64
	DrainSleep  float64
	DrainTx     float64
	DrainRx     float64
	TotalDrain  float64

	// Role exposure in node-steps; HeadShare is HeadSteps over the awake
	// total — the burden concentration rotation spreads.
	HeadSteps   int64
	MemberSteps int64
	SleepSteps  int64
	HeadShare   float64

	// Remaining-energy summary over the operating population, as
	// fractions of capacity, plus the alive-energy decile histogram
	// (Histogram[k]: fractions in [k/10, (k+1)/10), full clamps to 9).
	MeanRemaining float64
	MinRemaining  float64
	Histogram     [10]int64

	// Rotation reports whether energy-aware head rotation was active.
	Rotation bool
}

// EnergyStats snapshots the attached battery model's ledger. It fails if
// AttachEnergy was never called.
func (n *Network) EnergyStats() (EnergyStats, error) {
	if n.energy == nil {
		return EnergyStats{}, fmt.Errorf("selfstab: no energy model attached")
	}
	s := n.energy.Stats()
	return EnergyStats{
		Steps:          s.Steps,
		FirstDeathStep: s.FirstDeathStep,
		Depletions:     s.Depletions,
		DrainHead:      s.DrainHead,
		DrainMember:    s.DrainMember,
		DrainSleep:     s.DrainSleep,
		DrainTx:        s.DrainTx,
		DrainRx:        s.DrainRx,
		TotalDrain:     s.TotalDrain,
		HeadSteps:      s.HeadSteps,
		MemberSteps:    s.MemberSteps,
		SleepSteps:     s.SleepSteps,
		HeadShare:      s.HeadShare,
		MeanRemaining:  s.MeanRemaining,
		MinRemaining:   s.MinRemaining,
		Histogram:      s.Histogram,
		Rotation:       s.Rotation,
	}, nil
}

// EnergyRemaining returns each node's remaining battery as a fraction of
// capacity, indexed like Positions (0 for depleted nodes) — the raw
// material for lifetime analysis beyond the summary in EnergyStats.
func (n *Network) EnergyRemaining() ([]float64, error) {
	if n.energy == nil {
		return nil, fmt.Errorf("selfstab: no energy model attached")
	}
	out := make([]float64, len(n.pts))
	cap := n.energy.Capacity()
	for i := range out {
		out[i] = n.energy.Remaining(i) / cap
	}
	return out, nil
}
