package selfstab

import (
	"testing"
)

func TestBuildHierarchyLevels(t *testing.T) {
	net, err := NewRandomNetwork(250, WithSeed(30), WithRange(0.08))
	if err != nil {
		t.Fatal(err)
	}
	levels, err := net.BuildHierarchy(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) < 1 {
		t.Fatal("no levels")
	}
	// Level 0 covers every node exactly once.
	seen := make(map[int64]bool)
	for _, c := range levels[0].Clusters {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("node %d in two clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != net.N() {
		t.Errorf("level 0 covers %d of %d nodes", len(seen), net.N())
	}
	// Each level's vertex set is the previous level's head set.
	for lvl := 1; lvl < len(levels); lvl++ {
		prevHeads := make(map[int64]bool)
		for _, c := range levels[lvl-1].Clusters {
			prevHeads[c.HeadID] = true
		}
		count := 0
		for _, c := range levels[lvl].Clusters {
			for _, m := range c.Members {
				if !prevHeads[m] {
					t.Errorf("level %d member %d was not a level %d head", lvl, m, lvl-1)
				}
				count++
			}
		}
		if count != len(prevHeads) {
			t.Errorf("level %d covers %d of %d lower heads", lvl, count, len(prevHeads))
		}
		if len(levels[lvl].Clusters) > len(prevHeads) {
			t.Errorf("level %d did not shrink", lvl)
		}
	}
}

func TestBuildHierarchyValidation(t *testing.T) {
	net, err := NewRandomNetwork(20, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.BuildHierarchy(0); err == nil {
		t.Error("0 levels accepted")
	}
}

func TestBuildHierarchyMatchesClustersAtLevel0(t *testing.T) {
	net, err := NewRandomNetwork(150, WithSeed(32), WithRange(0.12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	levels, err := net.BuildHierarchy(1)
	if err != nil {
		t.Fatal(err)
	}
	live := net.Clusters()
	if len(levels[0].Clusters) != len(live) {
		t.Fatalf("hierarchy level 0 has %d clusters, live protocol has %d",
			len(levels[0].Clusters), len(live))
	}
	for i := range live {
		if levels[0].Clusters[i].HeadID != live[i].HeadID {
			t.Errorf("cluster %d head: hierarchy %d, live %d",
				i, levels[0].Clusters[i].HeadID, live[i].HeadID)
		}
	}
}

func TestWithDaemonOption(t *testing.T) {
	if _, err := NewRandomNetwork(10, WithDaemon(0)); err == nil {
		t.Error("daemon prob 0 accepted")
	}
	if _, err := NewRandomNetwork(10, WithDaemon(1.5)); err == nil {
		t.Error("daemon prob > 1 accepted")
	}
	net, err := NewRandomNetwork(60, WithSeed(33), WithRange(0.2), WithDaemon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(5000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Errorf("randomized daemon network not legitimate: %v", err)
	}
}
