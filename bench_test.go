// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark runs
// the corresponding experiment driver at a tractable scale, reports the
// headline quantity via b.ReportMetric, and logs the paper-shaped table
// once (go test -bench=. -v shows it; EXPERIMENTS.md records the
// paper-vs-measured comparison at full scale).
package selfstab_test

import (
	"sync"
	"testing"

	"selfstab/internal/experiment"
)

// benchOpts returns experiment options sized for a benchmark iteration.
func benchOpts(runs int, intensity float64, ranges ...float64) experiment.Options {
	if len(ranges) == 0 {
		ranges = []float64{0.05, 0.08, 0.1}
	}
	return experiment.Options{Runs: runs, Seed: 1, Intensity: intensity, Ranges: ranges}
}

// logOnce logs a rendered table a single time per benchmark.
var logOnce sync.Map

func logTable(b *testing.B, key, table string) {
	b.Helper()
	if _, loaded := logOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + table)
	}
}

// BenchmarkTable1Example regenerates the worked example (Table 1 +
// Figure 1): densities and the two-cluster outcome on the 9-node fixture.
func BenchmarkTable1Example(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "table1", res.Render())
		}
	}
}

// BenchmarkTable2StepKnowledge regenerates Table 2 at protocol level: the
// fraction of nodes with exact neighbor/density/father/head knowledge
// after each Δ(τ) step (paper: neighbors after 1, density after 2, father
// after 3; heads after tree-depth more).
func BenchmarkTable2StepKnowledge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table2(benchOpts(3, 300, 0.1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "table2", res.Render())
			b.ReportMetric(float64(res.AllHeadsAtStep), "headsExactAtStep")
		}
	}
}

// BenchmarkTable3DAGSteps regenerates Table 3: mean steps to build the DAG
// on the grid and on random geometry (paper: ~2 everywhere).
func BenchmarkTable3DAGSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table3(benchOpts(3, 1000))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "table3", res.Render())
			b.ReportMetric(res.GridSteps[0], "gridSteps@0.05")
		}
	}
}

// BenchmarkTable4RandomGeometric regenerates Table 4: cluster features on
// the random geometric graph, with and without the DAG (paper: the DAG
// changes almost nothing when identifiers are well spread).
func BenchmarkTable4RandomGeometric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table4(benchOpts(3, 1000))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "table4", res.Render())
			b.ReportMetric(res.WithDag[0].Clusters, "clusters@0.05")
		}
	}
}

// BenchmarkTable5AdversarialGrid regenerates Table 5: the row-major grid
// (paper: without the DAG the network collapses into one cluster; with it,
// dozens of clusters and constant-time stabilization).
func BenchmarkTable5AdversarialGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table5(benchOpts(2, 1000))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "table5", res.Render())
			b.ReportMetric(res.NoDag[0].Clusters, "noDagClusters@0.05")
			b.ReportMetric(res.WithDag[0].Clusters, "dagClusters@0.05")
		}
	}
}

// BenchmarkFigure2GridNoDAG regenerates Figure 2: the grid without the DAG
// (one giant cluster), including the SVG rendering.
func BenchmarkFigure2GridNoDAG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.FigureGrid(false, 1, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "figure2", fig.Caption)
		}
	}
}

// BenchmarkFigure3GridDAG regenerates Figure 3: the grid with the DAG
// (many clusters), including the SVG rendering.
func BenchmarkFigure3GridDAG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.FigureGrid(true, 1, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "figure3", fig.Caption)
		}
	}
}

// BenchmarkMobilityReelection regenerates the Section 5 mobility study:
// cluster-head retention per 2-second sample at pedestrian and vehicle
// speeds, with and without the Section 4.3 improvements (paper: 82%/78%
// and 31%/25%).
func BenchmarkMobilityReelection(b *testing.B) {
	opts := experiment.MobilityDefaults()
	opts.Runs = 2
	opts.DurationSec = 60
	for i := 0; i < b.N; i++ {
		res, err := experiment.Mobility(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "mobility", res.Render())
			b.ReportMetric(res.Retention[0][0], "improvedPedestrian%")
			b.ReportMetric(res.Retention[0][1], "basicPedestrian%")
		}
	}
}

// BenchmarkConvergenceVsDAGHeight is the Lemma 2 / Theorem 1 measurement:
// distributed stabilization steps with and without the DAG, cold start and
// after total corruption (paper: constant with the DAG, diameter-bound
// without).
func BenchmarkConvergenceVsDAGHeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Stabilization(benchOpts(2, 400, 0.06))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "stabilization", res.Render())
			b.ReportMetric(res.ColdSteps[0], "gridDagSteps")
			b.ReportMetric(res.ColdSteps[1], "gridNoDagSteps")
		}
	}
}

// BenchmarkAblationGammaSize sweeps the color-space size (Section 4.1
// trade-off: larger gamma converges faster but yields a taller DAG).
func BenchmarkAblationGammaSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationGamma(benchOpts(3, 500, 0.08))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "gamma", res.Render())
		}
	}
}

// BenchmarkAblationMetrics compares density against the degree, lowest-id
// and max-min baselines on cluster count and mobility stability (the
// paper's Section 3 claim that density is the most stable).
func BenchmarkAblationMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationMetrics(benchOpts(2, 300, 0.1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "metrics", res.Render())
		}
	}
}

// BenchmarkAblationOrderVariants isolates the contribution of each
// Section 4.3 rule: basic vs sticky vs sticky+fusion head retention.
func BenchmarkAblationOrderVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationOrders(benchOpts(2, 300, 0.1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "orders", res.Render())
		}
	}
}

// BenchmarkAblationDaemons sweeps the randomized daemon's activation
// probability: stabilization must hold at any probability > 0, slowing
// roughly proportionally (the paper's weak execution assumption).
func BenchmarkAblationDaemons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationDaemons(benchOpts(2, 200, 0.12))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "daemons", res.Render())
		}
	}
}

// BenchmarkMotivationRoutingState regenerates the paper's Section 1-2
// motivation: at constant local density, flat routing state per node grows
// with the network while cluster-based hierarchical state stays near-flat,
// at a small path stretch.
func BenchmarkMotivationRoutingState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Scalability(benchOpts(2, 800, 0.08))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "scalability", res.Render())
			last := len(res.Intensities) - 1
			b.ReportMetric(res.FlatState[last], "flatEntries")
			b.ReportMetric(res.HierState[last], "hierEntries")
		}
	}
}

// BenchmarkExtensionEnergy runs the Section 6 future-work extension: the
// energy-aware metric rotates the head burden and extends the time to
// first battery depletion.
func BenchmarkExtensionEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Energy(benchOpts(2, 200, 0.12))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, "energy", res.Render())
			b.ReportMetric(res.EnergyLifetime, "energyLifetime")
			b.ReportMetric(res.PlainLifetime, "plainLifetime")
		}
	}
}
