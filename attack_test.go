package selfstab

import (
	"bytes"
	"testing"
)

// attackNet is churnNet with a data plane between the first alive nodes —
// the substrate every adversarial op needs.
func attackNet(t *testing.T, seed int64, opts ...Option) *Network {
	t.Helper()
	net := churnNet(t, 80, seed, opts...)
	ids := firstAliveIDs(t, net, 4)
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 8,
		Flows: []Flow{
			CBRFlow(ids[0], ids[1], 0.5),
			PoissonFlow(ids[2], ids[3], 0.3),
		},
	}); err != nil {
		t.Fatal(err)
	}
	return net
}

// runAttackTrace drives a world through every adversarial op the journal
// carries: defense installation, a head-targeted flood, byzantine density
// inflation, and a sybil burst. Deterministic for a fixed seed, so the
// same trace must reproduce bit-identically across worker counts, tile
// layouts, and snapshot restores.
func runAttackTrace(t *testing.T, net *Network) {
	t.Helper()
	if err := net.Run(6); err != nil {
		t.Fatal(err)
	}
	if err := net.SetTrafficDefense(DefenseConfig{
		HeadAdmission: true, HeadRate: 0.75, HeadBurst: 3, SourceCap: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.FloodHeads(6, 3); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(8); err != nil {
		t.Fatal(err)
	}
	liars := firstAliveIDs(t, net, 2)
	if err := net.InflateDensity(4, liars...); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(8); err != nil {
		t.Fatal(err)
	}
	if _, err := net.SybilJoin(liars[0], 5, 0.04); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(6); err != nil {
		t.Fatal(err)
	}
}

// continueAttackTrace applies identical post-snapshot mutations: the
// defense response (eviction of the given liars, computed once from the
// original world so both receive byte-identical calls) and defense
// removal.
func continueAttackTrace(t *testing.T, net *Network, evict []int64) {
	t.Helper()
	if err := net.EvictNodes(evict...); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(6); err != nil {
		t.Fatal(err)
	}
	if err := net.SetTrafficDefense(DefenseConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
}

// TestAttackDeterminism: the full adversarial trace — flood, byzantine
// inflation, sybil burst, defenses — produces bit-identical worlds at 1
// and 4 workers, flat and tiled. Attacks are ordinary journaled ops; the
// determinism contract does not bend for them.
func TestAttackDeterminism(t *testing.T) {
	build := func(workers, tiles int) worldFingerprint {
		var opts []Option
		if tiles > 1 {
			opts = append(opts, WithTiles(tiles))
		}
		net := attackNet(t, 20260810, opts...)
		net.SetParallelism(workers)
		runAttackTrace(t, net)
		return fingerprint(t, net)
	}
	baseline := build(1, 1)
	if baseline.Traffic == nil || baseline.Traffic.Offered == 0 {
		t.Fatal("degenerate trace: no traffic offered")
	}
	if baseline.Traffic.DropsAdmission+baseline.Traffic.DropsRateLimit == 0 {
		t.Fatal("degenerate trace: defenses never fired")
	}
	for _, v := range []struct {
		name           string
		workers, tiles int
	}{
		{"4workers_flat", 4, 1},
		{"1worker_4tiles", 1, 4},
		{"4workers_4tiles", 4, 4},
	} {
		requireSameWorld(t, v.name, baseline, build(v.workers, v.tiles))
	}
}

// TestAttackReplayOracle is the snapshot contract under adversarial load:
// snapshot a world mid-attack — flood flows live, densities inflated,
// defenses installed, sybils joined — restore it, and (a) the restored
// world is bit-identical, (b) its own snapshot is byte-identical (the
// replayed journal chains), and (c) continuing BOTH worlds with the same
// defense response keeps them bit-identical.
func TestAttackReplayOracle(t *testing.T) {
	net := attackNet(t, 20260811)
	runAttackTrace(t, net)

	var snap bytes.Buffer
	if err := net.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	requireSameWorld(t, "at snapshot step",
		fingerprint(t, net), fingerprint(t, restored))

	var resnap bytes.Buffer
	if err := restored.WriteSnapshot(&resnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), resnap.Bytes()) {
		t.Fatalf("restored world's snapshot differs from the original's:\noriginal:\n%s\nrestored:\n%s",
			snap.String(), resnap.String())
	}

	// The defense response: both worlds must agree on who is implausible,
	// and evicting them must keep the twins identical.
	evict := net.ImplausibleNodes(1.1)
	if len(evict) == 0 {
		t.Fatal("no implausible nodes detected after density inflation")
	}
	restoredEvict := restored.ImplausibleNodes(1.1)
	if len(restoredEvict) != len(evict) {
		t.Fatalf("twins disagree on detection: %v vs %v", evict, restoredEvict)
	}
	continueAttackTrace(t, net, evict)
	continueAttackTrace(t, restored, evict)
	requireSameWorld(t, "after continuing both worlds",
		fingerprint(t, net), fingerprint(t, restored))
}

// TestDefendedLedgerIdentity: under a flood with both defenses firing,
// the extended accounting identity — every offered packet has exactly one
// fate, defense drops included — holds at every step boundary.
func TestDefendedLedgerIdentity(t *testing.T) {
	net := attackNet(t, 5150)
	if err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	cfg := DefenseConfig{HeadAdmission: true, HeadRate: 0.5, HeadBurst: 1, SourceCap: 1}
	if err := net.SetTrafficDefense(cfg); err != nil {
		t.Fatal(err)
	}
	if got := net.TrafficDefense(); got != cfg {
		t.Fatalf("TrafficDefense() = %+v, want %+v", got, cfg)
	}
	if _, err := net.FloodHeads(8, 4); err != nil {
		t.Fatal(err)
	}
	for seg := 0; seg < 5; seg++ {
		if err := net.Run(10); err != nil {
			t.Fatal(err)
		}
		ts, err := net.TrafficStats()
		if err != nil {
			t.Fatal(err)
		}
		checkTrafficLedger(t, ts)
	}
	ts, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	if ts.DropsAdmission == 0 && ts.DropsRateLimit == 0 {
		t.Errorf("defenses never fired under an 8-bot flood: %+v", ts)
	}
}

// TestSpawnFlowsKeepsLedger: appending flows mid-run preserves the
// delivery history — the before/after delta a flood is scored by.
func TestSpawnFlowsKeepsLedger(t *testing.T) {
	net := attackNet(t, 99)
	if err := net.Run(20); err != nil {
		t.Fatal(err)
	}
	before, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	if before.Delivered == 0 {
		t.Fatal("degenerate run: nothing delivered before the spawn")
	}
	ids := firstAliveIDs(t, net, 2)
	if err := net.SpawnFlows(CBRFlow(ids[0], ids[1], 1)); err != nil {
		t.Fatal(err)
	}
	after, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Delivered != before.Delivered || after.Offered != before.Offered {
		t.Errorf("spawn reset the ledger: %+v -> %+v", before, after)
	}
	if len(after.PerFlow) != len(before.PerFlow)+1 {
		t.Errorf("per-flow ledger has %d entries, want %d", len(after.PerFlow), len(before.PerFlow)+1)
	}
	if err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	ts, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, ts)
}

// TestFailedAttackOpsAreNotJournaled: an adversarial op that errors
// mutates nothing and leaves no journal entry, so a snapshot after the
// failed call still replays cleanly.
func TestFailedAttackOpsAreNotJournaled(t *testing.T) {
	net := attackNet(t, 321)
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
	before := fingerprint(t, net)
	ids := firstAliveIDs(t, net, 1)
	if _, err := net.FloodHeads(0, 1); err == nil {
		t.Fatal("zero-bot flood accepted")
	}
	if _, err := net.FloodHeads(3, -1); err == nil {
		t.Fatal("negative flood rate accepted")
	}
	if err := net.InflateDensity(0, ids[0]); err == nil {
		t.Fatal("zero density scale accepted")
	}
	if err := net.InflateDensity(4, 987654); err == nil {
		t.Fatal("unknown liar id accepted")
	}
	if err := net.InflateDensity(4, ids[0], ids[0]); err == nil {
		t.Fatal("duplicate liar id accepted")
	}
	if err := net.EvictNodes(987654); err == nil {
		t.Fatal("unknown eviction id accepted")
	}
	if err := net.EvictNodes(); err == nil {
		t.Fatal("empty eviction accepted")
	}
	if _, err := net.SybilJoin(987654, 3, 0.05); err == nil {
		t.Fatal("unknown sybil target accepted")
	}
	if _, err := net.SybilJoin(ids[0], 3, 0); err == nil {
		t.Fatal("zero sybil spread accepted")
	}
	if err := net.SetTrafficDefense(DefenseConfig{HeadAdmission: true}); err == nil {
		t.Fatal("head admission without rate/burst accepted")
	}
	requireSameWorld(t, "after failed attack ops", before, fingerprint(t, net))
	var buf bytes.Buffer
	if err := net.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameWorld(t, "restored after failed attack ops", before, fingerprint(t, restored))
}

// TestAttackRequiresTraffic: the traffic-borne ops fail cleanly on a
// world with no data plane.
func TestAttackRequiresTraffic(t *testing.T) {
	net := churnNet(t, 30, 8)
	if _, err := net.FloodHeads(2, 1); err == nil {
		t.Fatal("flood without a data plane accepted")
	}
	if err := net.SetTrafficDefense(DefenseConfig{SourceCap: 1}); err == nil {
		t.Fatal("defense without a data plane accepted")
	}
	if err := net.SpawnFlows(CBRFlow(net.IDs()[0], net.IDs()[1], 1)); err == nil {
		t.Fatal("spawn without a data plane accepted")
	}
	if got := net.TrafficDefense(); got != (DefenseConfig{}) {
		t.Fatalf("TrafficDefense() = %+v on a plane-less world", got)
	}
}

// TestEvictionRestartsCold: an evicted byzantine node loses its inflated
// density and its headship; the honest protocol re-integrates it.
func TestEvictionRestartsCold(t *testing.T) {
	net := attackNet(t, 777)
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
	liars := firstAliveIDs(t, net, 2)
	if err := net.InflateDensity(6, liars...); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	detected := net.ImplausibleNodes(1.1)
	if len(detected) != len(liars) {
		t.Fatalf("detected %v, want the %d liars %v", detected, len(liars), liars)
	}
	if err := net.EvictNodes(detected...); err != nil {
		t.Fatal(err)
	}
	if left := net.ImplausibleNodes(1.1); len(left) != 0 {
		t.Fatalf("still implausible after eviction: %v", left)
	}
	if _, err := net.Stabilize(5000); err != nil {
		t.Fatal(err)
	}
	// The convergence ledger carries the attack episodes.
	found := false
	for _, d := range net.ConvergenceStats().Disruptions {
		if d.Kinds&ChurnAttack != 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no ChurnAttack episode in the convergence ledger")
	}
}
