package selfstab

import "testing"

// tiledCompactNet is compactNet with a forced tile count: churn + traffic
// + energy attached, so the oracle exercises every subsystem's interplay
// with the tiled step engine.
func tiledCompactNet(t *testing.T, seed int64, tiles int) *Network {
	t.Helper()
	net := churnNet(t, 220, seed, WithTiles(tiles))
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 8,
		Flows:    mixedWorkload(net, 12),
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{Capacity: 5}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachChurn(ChurnConfig{
		ArrivalRate:   0.3,
		DepartureRate: 0.3,
		CrashRate:     0.1,
		SleepRate:     0.1,
		SleepSteps:    6,
	}); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestTilesOracleMixedTrace is the public-layer tiling oracle: a full
// churn + traffic + energy run must produce identical ledgers untiled and
// at any tile count, at one and at four workers — tiling is purely a
// performance knob. Runs under -race in CI to also pin the halo
// exchange's synchronization discipline.
func TestTilesOracleMixedTrace(t *testing.T) {
	build := func(tiles, workers int) compactObservables {
		net := tiledCompactNet(t, 727, tiles)
		if got := net.Tiles(); got != tiles {
			t.Fatalf("Tiles() = %d, want %d", got, tiles)
		}
		net.SetParallelism(workers)
		if err := net.Run(130); err != nil {
			t.Fatal(err)
		}
		net.DetachChurn()
		if _, err := net.Stabilize(3000); err != nil {
			t.Fatal(err)
		}
		return observe(t, net)
	}
	baseline := build(1, 1)
	for _, tiles := range []int{4, 6} {
		for _, workers := range []int{1, 4} {
			compareObservables(t, "tiled vs untiled", baseline, build(tiles, workers))
		}
	}
}

// TestCompactUnderTiling: the compaction twin oracle on a tiled network —
// repeated mid-run compactions (which remap tile ownership along with
// every other per-slot array) must leave every identifier-keyed
// observable bit-identical to the uncompacted twin.
func TestCompactUnderTiling(t *testing.T) {
	plain := tiledCompactNet(t, 838, 6)
	compacted := tiledCompactNet(t, 838, 6)
	for seg := 0; seg < 4; seg++ {
		if err := plain.Run(45); err != nil {
			t.Fatal(err)
		}
		if err := compacted.Run(45); err != nil {
			t.Fatal(err)
		}
		if _, err := compacted.Compact(); err != nil {
			t.Fatal(err)
		}
		compareObservables(t, "mid-run segment", observe(t, plain), observe(t, compacted))
	}
	plain.DetachChurn()
	compacted.DetachChurn()
	plain.DetachEnergy()
	compacted.DetachEnergy()
	if _, err := plain.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	if _, err := compacted.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	compareObservables(t, "final", observe(t, plain), observe(t, compacted))
	if err := compacted.Verify(); err != nil {
		t.Fatalf("compacted tiled twin failed verification: %v", err)
	}
}

// TestWithTilesValidation: the option rejects nonsense and the accessor
// reports the resolved count.
func TestWithTilesValidation(t *testing.T) {
	if _, err := NewRandomNetwork(30, WithTiles(0)); err == nil {
		t.Error("WithTiles(0) accepted")
	}
	if _, err := NewRandomNetwork(30, WithTiles(-2)); err == nil {
		t.Error("WithTiles(-2) accepted")
	}
	net, err := NewRandomNetwork(30, WithSeed(5), WithTiles(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Tiles(); got != 3 {
		t.Fatalf("Tiles() = %d, want 3", got)
	}
	// The auto default never tiles a world this small (N/2048 < 1).
	small, err := NewRandomNetwork(30, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := small.Tiles(); got != 1 {
		t.Fatalf("auto tiling picked %d tiles for 30 nodes, want 1", got)
	}
}
