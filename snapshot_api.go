package selfstab

import (
	"fmt"
	"io"

	"selfstab/internal/snapshot"
)

// WriteSnapshot checkpoints the simulation as one versioned JSON
// document: the construction blueprint (deployment, options, seed), the
// complete journal of world mutations with the step each was applied at,
// and the current step count. The snapshot is deterministic — identical
// worlds encode to identical bytes — and self-contained: ReadSnapshot
// rebuilds a bit-identical world from it in a fresh process.
//
// Call between steps (never from a hook, and never concurrently with
// Step); the serving layer takes its world lock around this.
func (n *Network) WriteSnapshot(w io.Writer) error {
	ops := append([]snapshot.Op(nil), n.oplog...)
	return snapshot.New(n.bp, ops, n.engine.StepCount()).Encode(w)
}

// ReadSnapshot restores a simulation from a snapshot written by
// WriteSnapshot. The world is rebuilt through the same construction path
// as the original (consuming the master seed's split streams in the same
// order) and the journal is replayed through the same op-apply
// chokepoint the live calls went through, so every subsystem's private
// state — engine nodes, frontier and tiles, the unit-disk grid, traffic
// queues and ledgers, energy batteries, open churn episodes — comes back
// bit-identical to the original at the snapshot step. Continuing both
// worlds with the same subsequent ops yields bit-identical trajectories
// (the replay oracle test pins this at 1 and 4 workers, tiled and flat).
//
// Restore cost is proportional to the snapshot's step count: the journal
// replays the original execution rather than deserializing raw arrays.
// That trade keeps the format small, versionable and independent of
// every internal memory layout — and it is exactly the time-travel
// debugging primitive: replay to any step at or before the checkpoint.
//
// A snapshot with a mismatched format version is rejected with a clear
// error before any reconstruction happens.
func ReadSnapshot(r io.Reader) (*Network, error) {
	doc, err := snapshot.Decode(r)
	if err != nil {
		return nil, err
	}
	return restore(doc)
}

// restore rebuilds and replays one decoded snapshot document.
func restore(doc *snapshot.Snapshot) (*Network, error) {
	n, err := construct(doc.Blueprint.Deploy, configFromOptions(doc.Blueprint.Options))
	if err != nil {
		return nil, fmt.Errorf("selfstab: restore: %w", err)
	}
	advanceTo := func(step int) error {
		for n.engine.StepCount() < step {
			if err := n.Step(); err != nil {
				return fmt.Errorf("selfstab: restore: replay step %d: %w", n.engine.StepCount(), err)
			}
		}
		return nil
	}
	for k, op := range doc.Ops {
		if err := advanceTo(op.Step); err != nil {
			return nil, err
		}
		// applyOp re-journals the op at the same step, so the restored
		// world's own journal — and hence its next snapshot — is complete.
		if err := n.applyOp(op); err != nil {
			return nil, fmt.Errorf("selfstab: restore: replay op %d (%s at step %d): %w", k, op.Kind, op.Step, err)
		}
	}
	if err := advanceTo(doc.Header.Step); err != nil {
		return nil, err
	}
	return n, nil
}
