package selfstab

import (
	"math"
	"reflect"
	"testing"
)

// energyNet builds a stabilized network configured for the energy
// subsystem (cache TTL for depletion-driven departures).
func energyNet(t testing.TB, nodes int, seed int64, opts ...Option) *Network {
	t.Helper()
	opts = append([]Option{
		WithSeed(seed), WithRange(0.14), WithCacheTTL(4), WithStableWindow(6),
	}, opts...)
	net, err := NewRandomNetwork(nodes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		t.Fatal(err)
	}
	return net
}

// hotspotDrainConfig is the shared closed-loop scenario: a many-to-one
// convergecast concentrates forwarding on the relays toward the sink, and
// the cost schedule makes both relaying and headship expensive enough to
// kill batteries within a few hundred steps.
func attachHotspotDrain(t testing.TB, net *Network, rotation bool) {
	t.Helper()
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 16,
		Flows:    []Flow{HotspotFlow(ids[0], 25, 0.3)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{
		Capacity:       0.6,
		IdleHeadCost:   0.002,
		IdleMemberCost: 0.0002,
		SleepCost:      0.00002,
		TxCost:         0.001,
		RxCost:         0.0004,
		Rotation:       rotation,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEnergyClosedLoop is the acceptance contract of the energy
// subsystem: hotspot traffic drains the relay batteries, the first
// depletion is killed through the churn machinery and therefore shows up
// as a departure disruption episode in ConvergenceStats, and enabling the
// energy-aware rotation metric measurably extends the first-death step on
// the very same seed.
func TestEnergyClosedLoop(t *testing.T) {
	run := func(rotation bool) (EnergyStats, ConvergenceStats) {
		net := energyNet(t, 150, 99)
		attachHotspotDrain(t, net, rotation)
		if err := net.Run(600); err != nil {
			t.Fatal(err)
		}
		es, err := net.EnergyStats()
		if err != nil {
			t.Fatal(err)
		}
		return es, net.ConvergenceStats()
	}

	plain, cs := run(false)
	if plain.FirstDeathStep < 0 || plain.Depletions == 0 {
		t.Fatalf("hotspot drain killed nobody: %+v", plain)
	}
	if plain.DrainTx == 0 || plain.DrainRx == 0 {
		t.Fatalf("traffic did not couple into the drain: %+v", plain)
	}
	// Every depletion went through the churn machinery: the ledger holds
	// a departure episode that opened at (or folded in) the first death.
	found := false
	for _, d := range cs.Disruptions {
		if d.Kinds&ChurnLeave != 0 && d.Step <= plain.FirstDeathStep &&
			(d.StepsToStabilize > 0 || d.Ops > 0) {
			found = true
			break
		}
	}
	if !found && !cs.Open {
		t.Fatalf("first depletion (step %d) left no departure episode: %+v", plain.FirstDeathStep, cs)
	}

	rotated, _ := run(true)
	if rotated.FirstDeathStep >= 0 && rotated.FirstDeathStep <= plain.FirstDeathStep {
		t.Errorf("rotation did not extend lifetime: first death %d (rotated) vs %d (plain)",
			rotated.FirstDeathStep, plain.FirstDeathStep)
	}
	if rotated.Depletions >= plain.Depletions {
		t.Errorf("rotation did not reduce depletions: %d vs %d", rotated.Depletions, plain.Depletions)
	}
	if !rotated.Rotation || plain.Rotation {
		t.Errorf("rotation flag not reported: %v / %v", rotated.Rotation, plain.Rotation)
	}
}

// TestEnergyDeterminism mirrors the churn/traffic contracts: a fixed seed
// with traffic, duty-cycle churn and the battery model (rotation on)
// yields bit-identical EnergyStats, ConvergenceStats and per-node
// batteries at 1 and 4 workers.
func TestEnergyDeterminism(t *testing.T) {
	build := func(workers int) (EnergyStats, ConvergenceStats, []float64) {
		net := energyNet(t, 250, 424242)
		net.SetParallelism(workers)
		attachHotspotDrain(t, net, true)
		if err := net.AttachChurn(ChurnConfig{
			SleepRate:  0.5,
			SleepSteps: 10,
		}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(200); err != nil {
			t.Fatal(err)
		}
		es, err := net.EnergyStats()
		if err != nil {
			t.Fatal(err)
		}
		rem, err := net.EnergyRemaining()
		if err != nil {
			t.Fatal(err)
		}
		return es, net.ConvergenceStats(), rem
	}
	e1, c1, r1 := build(1)
	e4, c4, r4 := build(4)
	if !reflect.DeepEqual(e1, e4) {
		t.Fatalf("energy ledger diverged between 1 and 4 workers:\n1: %+v\n4: %+v", e1, e4)
	}
	if !reflect.DeepEqual(c1, c4) {
		t.Fatalf("convergence ledger diverged between 1 and 4 workers:\n1: %+v\n4: %+v", c1, c4)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("per-node batteries diverged between 1 and 4 workers")
	}
	if e1.Steps != 200 || e1.TotalDrain == 0 {
		t.Fatalf("degenerate energy run: %+v", e1)
	}
	if e1.SleepSteps == 0 {
		t.Fatalf("duty-cycle churn never slept anyone: %+v", e1)
	}
	if got := e1.DrainHead + e1.DrainMember + e1.DrainSleep + e1.DrainTx + e1.DrainRx; math.Abs(got-e1.TotalDrain) > 1e-9 {
		t.Fatalf("drain identity broken: parts %v, total %v", got, e1.TotalDrain)
	}
}

// TestEnergyVerifyUnderRotation: the legitimacy predicate stays exact
// while rotation scales the shared densities — Verify checks against the
// battery-weighted oracle, and a stabilized rotating network passes it.
func TestEnergyVerifyUnderRotation(t *testing.T) {
	net := energyNet(t, 120, 7)
	if err := net.AttachEnergy(EnergyConfig{
		Capacity:       1,
		IdleHeadCost:   0.004,
		IdleMemberCost: 0.0004,
		Rotation:       true,
		RotationLevels: 4,
	}); err != nil {
		t.Fatal(err)
	}
	// Run long enough for several level crossings (head level drops every
	// 1/(4*0.004) ≈ 62 steps), then let the re-election settle.
	if err := net.Run(150); err != nil {
		t.Fatal(err)
	}
	net.DetachEnergy() // freeze the batteries so the scales stop moving
	if _, err := net.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("rotating network not legitimate against the scaled oracle: %v", err)
	}
	es, err := net.EnergyStats()
	if err != nil {
		t.Fatal(err)
	}
	if es.DrainHead == 0 || es.HeadShare == 0 {
		t.Fatalf("no head drain recorded: %+v", es)
	}
}

// TestEnergySleepSaves: duty-cycling a third of the population for a
// stretch must leave the network with more remaining energy than the same
// run without sleep — SleepNodes finally saves battery.
func TestEnergySleepSaves(t *testing.T) {
	run := func(sleep bool) EnergyStats {
		net := energyNet(t, 120, 55)
		if err := net.AttachEnergy(EnergyConfig{
			IdleHeadCost:   0.002,
			IdleMemberCost: 0.0005,
			SleepCost:      0.00002,
		}); err != nil {
			t.Fatal(err)
		}
		ids := net.IDs()
		var down []int64
		for i := 0; i < len(ids); i += 3 {
			down = append(down, ids[i])
		}
		if sleep {
			if err := net.SleepNodes(down...); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.Run(300); err != nil {
			t.Fatal(err)
		}
		if sleep {
			if err := net.WakeNodes(down...); err != nil {
				t.Fatal(err)
			}
			if err := net.Run(20); err != nil {
				t.Fatal(err)
			}
		}
		es, err := net.EnergyStats()
		if err != nil {
			t.Fatal(err)
		}
		return es
	}
	awake := run(false)
	slept := run(true)
	if slept.SleepSteps == 0 || slept.DrainSleep == 0 {
		t.Fatalf("sleep run recorded no sleep exposure: %+v", slept)
	}
	if slept.TotalDrain >= awake.TotalDrain {
		t.Errorf("duty-cycling saved nothing: drain %v (slept) vs %v (awake)",
			slept.TotalDrain, awake.TotalDrain)
	}
	if slept.MeanRemaining <= awake.MeanRemaining {
		t.Errorf("duty-cycling left less energy: mean %v (slept) vs %v (awake)",
			slept.MeanRemaining, awake.MeanRemaining)
	}
}

// TestEnergyPhaseAllocationFree is the steady-state allocation contract
// of the energy phase: with traffic-coupled drain and rotation active
// (including at least one level crossing during warm-up, which installs
// the engine's scale array), the per-step battery pass allocates nothing.
func TestEnergyPhaseAllocationFree(t *testing.T) {
	net := energyNet(t, 400, 321, WithRange(0.1))
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 16,
		Flows:    []Flow{HotspotFlow(ids[0], 20, 0.2)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{
		Capacity:       100, // nobody depletes: kills are the allocating slow path
		IdleHeadCost:   0.8, // a level crossing every few steps keeps rotation hot
		IdleMemberCost: 0.4,
		TxCost:         0.01,
		RxCost:         0.01,
		Rotation:       true,
		RotationLevels: 50,
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(60); err != nil { // warm up: scale array installed, scratch grown
		t.Fatal(err)
	}
	step := net.StepCount()
	allocs := testing.AllocsPerRun(50, func() {
		step++
		if err := net.energy.Step(step); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("energy phase allocates %.2f/op at steady state, want 0", allocs)
	}
}

// TestEnergyAPIValidation covers the error surface of the public calls.
func TestEnergyAPIValidation(t *testing.T) {
	noTTL, err := NewRandomNetwork(20, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := noTTL.AttachEnergy(EnergyConfig{}); err == nil {
		t.Error("energy without WithCacheTTL accepted")
	}
	if _, err := noTTL.EnergyStats(); err == nil {
		t.Error("EnergyStats before attach accepted")
	}
	if _, err := noTTL.EnergyRemaining(); err == nil {
		t.Error("EnergyRemaining before attach accepted")
	}

	net := energyNet(t, 20, 2)
	if err := net.AttachEnergy(EnergyConfig{Capacity: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := net.AttachEnergy(EnergyConfig{TxCost: -1}); err == nil {
		t.Error("negative cost accepted")
	}
	if err := net.AttachEnergy(EnergyConfig{Rotation: true, RotationLevels: 1}); err == nil {
		t.Error("degenerate rotation quantization accepted")
	}
	if err := net.AttachEnergy(EnergyConfig{Rotation: true, RotationLevels: 2000}); err == nil {
		t.Error("rotation quantization beyond the level-array range accepted")
	}
	if err := net.AttachEnergy(EnergyConfig{}); err != nil {
		t.Errorf("all-default config rejected: %v", err)
	}
	if es, err := net.EnergyStats(); err != nil || es.Steps != 0 {
		t.Errorf("fresh ledger: %+v, %v", es, err)
	}
}

// TestEnergyArrivalsGetFullBatteries: churn arrivals join the battery
// model with a full charge and start draining immediately.
func TestEnergyArrivalsGetFullBatteries(t *testing.T) {
	net := energyNet(t, 60, 13)
	if err := net.AttachEnergy(EnergyConfig{IdleMemberCost: 0.01}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNodes([]Point{{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	rem, err := net.EnergyRemaining()
	if err != nil {
		t.Fatal(err)
	}
	if got := rem[len(rem)-1]; got != 1 {
		t.Fatalf("arrival battery %v, want 1", got)
	}
	if err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	rem, err = net.EnergyRemaining()
	if err != nil {
		t.Fatal(err)
	}
	if got := rem[len(rem)-1]; got >= 1 {
		t.Fatalf("arrival never drained: %v", got)
	}
}

// TestEnergyAttachBaselinesTrafficHistory: attaching batteries to a
// network whose data plane has already been forwarding for a while must
// not charge that history as one giant first-step drain — the counters
// are baselined at attach and only post-attach activity costs energy.
func TestEnergyAttachBaselinesTrafficHistory(t *testing.T) {
	net := energyNet(t, 120, 77)
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 16,
		Flows:    []Flow{HotspotFlow(ids[0], 15, 0.5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(200); err != nil { // plenty of pre-battery history
		t.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{TxCost: 0.001, RxCost: 0.0004, IdleMemberCost: 1e-6, IdleHeadCost: 1e-6}); err != nil {
		t.Fatal(err)
	}
	if err := net.Step(); err != nil {
		t.Fatal(err)
	}
	es, err := net.EnergyStats()
	if err != nil {
		t.Fatal(err)
	}
	if es.Depletions != 0 {
		t.Fatalf("pre-attach traffic history depleted %d nodes in one step", es.Depletions)
	}
	// One step of this workload moves at most a few hundred packets
	// network-wide; 200 steps of history would have charged ~100x that.
	if es.DrainTx > 0.5 {
		t.Fatalf("first step charged %.3f tx drain — traffic history was not baselined", es.DrainTx)
	}
}

// TestEnergyReattachResetsRotationScales: replacing a rotating model
// (fresh full batteries) must clear the previous model's density scales —
// a formerly drained head starts the new run unscaled.
func TestEnergyReattachResetsRotationScales(t *testing.T) {
	net := energyNet(t, 80, 31)
	if err := net.AttachEnergy(EnergyConfig{
		IdleHeadCost:   0.05, // fast level crossings
		IdleMemberCost: 0.02,
		Rotation:       true,
		RotationLevels: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(30); err != nil { // several crossings: scales < 1 exist
		t.Fatal(err)
	}
	scaled := 0
	for i := 0; i < net.N(); i++ {
		if net.engine.DensityScale(i) < 1 {
			scaled++
		}
	}
	if scaled == 0 {
		t.Fatal("warm-up produced no rotation scaling; test premise broken")
	}
	if err := net.AttachEnergy(EnergyConfig{
		IdleHeadCost:   0.05,
		IdleMemberCost: 0.02,
		Rotation:       true,
		RotationLevels: 4,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.N(); i++ {
		if got := net.engine.DensityScale(i); got != 1 {
			t.Fatalf("node %d kept stale scale %v after re-attach with full batteries", i, got)
		}
	}
}

// TestBuildHierarchyMatchesClustersUnderRotation: with energy-aware
// rotation active, the offline level-0 fixpoint must elect against the
// same battery-weighted densities as the live protocol — the two agree
// on a stabilized network even while scales are installed.
func TestBuildHierarchyMatchesClustersUnderRotation(t *testing.T) {
	net := energyNet(t, 150, 7)
	if err := net.AttachEnergy(EnergyConfig{
		IdleHeadCost:   0.05, // fast level crossings
		IdleMemberCost: 0.02,
		Rotation:       true,
		RotationLevels: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(30); err != nil {
		t.Fatal(err)
	}
	scaled := 0
	for i := 0; i < net.N(); i++ {
		if net.engine.DensityScale(i) < 1 {
			scaled++
		}
	}
	if scaled == 0 {
		t.Fatal("warm-up produced no rotation scaling; test premise broken")
	}
	net.DetachEnergy() // freeze the scales, then let the election settle
	if _, err := net.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	levels, err := net.BuildHierarchy(1)
	if err != nil {
		t.Fatal(err)
	}
	live := net.Clusters()
	if len(levels[0].Clusters) != len(live) {
		t.Fatalf("hierarchy level 0 has %d clusters, live rotating protocol has %d",
			len(levels[0].Clusters), len(live))
	}
	for i := range live {
		if levels[0].Clusters[i].HeadID != live[i].HeadID {
			t.Errorf("cluster %d head: hierarchy %d, live %d",
				i, levels[0].Clusters[i].HeadID, live[i].HeadID)
		}
	}
}
