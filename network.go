package selfstab

import (
	"fmt"
	"sort"

	"selfstab/internal/cluster"
	"selfstab/internal/geom"
	"selfstab/internal/metric"
	"selfstab/internal/runtime"
	"selfstab/internal/snapshot"
	"selfstab/internal/viz"
)

// N returns the number of nodes.
func (n *Network) N() int { return len(n.pts) }

// IDs returns a copy of the node identifiers, indexed like Positions.
func (n *Network) IDs() []int64 { return append([]int64(nil), n.ids...) }

// Positions returns a copy of the node positions.
func (n *Network) Positions() []Point {
	out := make([]Point, len(n.pts))
	for i, p := range n.pts {
		out[i] = Point{X: p.X, Y: p.Y}
	}
	return out
}

// Range returns the radio transmission range.
func (n *Network) Range() float64 { return n.cfg.radioRng }

// StepCount returns how many Δ(τ) steps have executed.
func (n *Network) StepCount() int { return n.engine.StepCount() }

// Step advances the protocol by one Δ(τ) step: every node broadcasts once
// and evaluates its guarded assignments. With frontier stepping active
// (the default on a lossless medium with a synchronous daemon) only the
// nodes whose inputs could have changed are examined, so a stabilized
// network steps in O(1) regardless of size. An auto-compaction threshold
// (SetAutoCompact) is checked before the step.
//
//selfstab:unjournaled stepping is deterministic; snapshots record the step count and replay re-steps instead of journaling ops
func (n *Network) Step() error {
	if err := n.maybeAutoCompact(); err != nil {
		return err
	}
	return n.engine.Step()
}

// Run advances the protocol by exactly steps steps.
func (n *Network) Run(steps int) error {
	for i := 0; i < steps; i++ {
		if err := n.Step(); err != nil {
			return err
		}
	}
	return nil
}

// SetSparseStepping toggles the frontier (worklist) step engine. It is
// on by default whenever the configuration supports it — a lossless
// medium (no WithTau / WithSlottedRadio) and a synchronous daemon (no
// WithDaemon below 1) — and produces bit-identical executions to the
// full scan; the toggle exists for the equivalence oracle tests and for
// benchmarking the dense baseline. Enabling it on an unsupported
// configuration returns an error.
func (n *Network) SetSparseStepping(on bool) error { return n.engine.SetSparse(on) }

// SparseStepping reports whether the frontier step engine is active.
func (n *Network) SparseStepping() bool { return n.engine.Sparse() }

// Stabilize steps the protocol until the shared state stops changing
// (stable for the configured window, default 5 steps — see
// WithStableWindow) and returns the step index at which the last change
// happened. It fails if maxSteps is exhausted first — with a lossy medium
// allow a generous budget.
//
// While a disruption episode is converging (churn, fault injection) — or
// a churn schedule is attached, so disruptions can open mid-run — the
// window is widened to the engine's convergence window (by default
// max(stable window, cache TTL + 2)): a vanished neighbor only leaves
// caches after TTL eviction, and declaring stability before that would be
// premature — and would leave the episode dangling open in
// ConvergenceStats.
func (n *Network) Stabilize(maxSteps int) (int, error) {
	win := n.cfg.stableWindow
	if n.engine.DisruptionOpen() || n.churnAttached {
		win = max(win, n.engine.ConvergenceWindow())
	}
	// The loop mirrors the engine's RunUntilStable but drives Network.Step
	// so the auto-compaction threshold applies mid-stabilization too.
	start := n.engine.StepCount()
	for s := 1; s <= maxSteps; s++ {
		if err := n.Step(); err != nil {
			return 0, err
		}
		if n.engine.StepCount()-n.engine.LastChange() >= win {
			if lc := n.engine.LastChange(); lc > start {
				return lc - start, nil
			}
			return 0, nil
		}
	}
	return 0, runtime.ErrNotStabilized
}

// InjectFaults corrupts each node's protocol state and neighbor caches
// with probability frac (1 = every node), simulating the arbitrary
// transient faults of the self-stabilization model. Call Stabilize
// afterwards and the network heals.
func (n *Network) InjectFaults(frac float64) {
	if frac <= 0 {
		return
	}
	// Journaled (the corruption draw comes from a split stream, so replay
	// reproduces it); the dispatch never fails for frac > 0.
	_ = n.applyOp(snapshot.Op{Kind: snapshot.OpFaults, Frac: frac})
}

// NodeState is the externally visible protocol state of one node.
type NodeState struct {
	ID       int64
	Position Point
	Density  float64
	HeadID   int64
	ParentID int64
	Color    int64 // DAG color (equals ID when the DAG is disabled)
	IsHead   bool
	// Status is the lifecycle state under churn. For sleeping nodes the
	// protocol fields are the frozen pre-sleep values; for dead nodes
	// they are cleared to the self-head cold state.
	Status NodeStatus
}

// State returns the current protocol state of node i (by index).
func (n *Network) State(i int) (NodeState, error) {
	if i < 0 || i >= len(n.pts) {
		return NodeState{}, fmt.Errorf("selfstab: node index %d out of range [0, %d)", i, len(n.pts))
	}
	node := n.engine.Node(i)
	return NodeState{
		ID:       node.ID(),
		Position: Point{X: n.pts[i].X, Y: n.pts[i].Y},
		Density:  node.Density(),
		HeadID:   node.HeadID(),
		ParentID: node.ParentID(),
		Color:    node.TieID(),
		IsHead:   node.IsHead(),
		Status:   statusOf(n.engine.Status(i)),
	}, nil
}

// Cluster is one cluster of the current configuration.
type Cluster struct {
	// HeadID is the cluster-head's identifier.
	HeadID int64
	// Members lists the identifiers of all cluster members (including the
	// head), ascending.
	Members []int64
}

// Clusters groups nodes by their current cluster-head choice, sorted by
// head identifier. In a stabilized network this is the legitimate
// clustering; mid-convergence it is whatever the nodes currently believe.
// Dead and sleeping nodes are not listed: only the operating population
// clusters.
func (n *Network) Clusters() []Cluster {
	byHead := make(map[int64][]int64, 8)
	for i := range n.pts {
		if n.engine.Status(i) != runtime.StatusAlive {
			continue
		}
		node := n.engine.Node(i)
		byHead[node.HeadID()] = append(byHead[node.HeadID()], node.ID())
	}
	out := make([]Cluster, 0, len(byHead))
	//selfstab:orderinvariant every cluster is emitted exactly once and the trailing sorts canonicalize the order
	for h, ms := range byHead {
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		out = append(out, Cluster{HeadID: h, Members: ms})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HeadID < out[j].HeadID })
	return out
}

// Stats summarizes the current clustering (see the paper's Tables 4-5).
type Stats struct {
	Clusters             int
	MeanHeadEccentricity float64
	MaxHeadEccentricity  int
	MeanTreeLength       float64
	MaxTreeLength        int
}

// Stats measures the current clustering against the true topology.
// Like Clusters and Verify it spans the operating population only: dead
// and sleeping nodes keep their dense index slots under churn but are not
// counted as singleton clusters.
func (n *Network) Stats() Stats {
	s := n.engine.Assignment().ComputeStatsOn(n.g, n.operatingMask())
	return Stats{
		Clusters:             s.NumClusters,
		MeanHeadEccentricity: s.MeanHeadEccentricity,
		MaxHeadEccentricity:  s.MaxHeadEccentricity,
		MeanTreeLength:       s.MeanTreeLength,
		MaxTreeLength:        s.MaxTreeLength,
	}
}

// Verify checks that the current configuration is legitimate: every node's
// density matches Definition 1 on the true topology, colors are locally
// unique, head/parent structure satisfies the paper's invariants, and the
// head assignment equals the static fixpoint oracle for the current
// colors. It returns nil for a stabilized network and a descriptive error
// otherwise — the executable version of the paper's correctness proofs.
//
// Under churn the predicate applies to the operating population: dead
// and sleeping nodes are isolated vertices of the topology, their frozen
// or cleared state is exempt, and the alive nodes must match the oracle
// for the surviving graph.
func (n *Network) Verify() error {
	snap := n.engine.Snapshot()
	alive := func(i int) bool { return n.engine.Status(i) == runtime.StatusAlive }
	// Densities (Lemma 1), scaled by the engine's per-node density
	// multipliers (1 unless energy-aware rotation installed them): guard
	// R1 computes scale * density, so the oracle must too — the legitimacy
	// predicate stays exact under rotation, it just elects against the
	// battery-weighted metric.
	want := metric.Density{}.Values(n.g)
	for i := range want {
		want[i] *= n.engine.DensityScale(i)
	}
	for i := range snap.Density {
		if !alive(i) {
			continue
		}
		if diff := snap.Density[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("selfstab: node %d density %v, want %v", i, snap.Density[i], want[i])
		}
	}
	// Locally unique colors (Theorem 1 legitimacy).
	if n.cfg.useDag && !n.engine.DagLocallyUnique() {
		return fmt.Errorf("selfstab: DAG colors not locally unique")
	}
	// Head fixpoint (Lemma 2): equals the oracle on the realized colors.
	order := cluster.OrderBasic
	if n.cfg.sticky {
		order = cluster.OrderSticky
	}
	oracle, err := cluster.Compute(n.g, cluster.Config{
		Values:   want,
		TieIDs:   snap.TieID,
		AppIDs:   n.ids,
		Order:    order,
		Fusion:   n.cfg.fusion,
		PrevHead: n.engine.Assignment().Head,
	})
	if err != nil {
		return fmt.Errorf("selfstab: oracle: %w", err)
	}
	got := n.engine.Assignment()
	for u := range got.Head {
		if !alive(u) {
			// Exempt from the oracle; sanitize to the self-head state an
			// isolated vertex legitimately holds so the structural
			// invariants below still apply to the whole assignment.
			got.Head[u], got.Parent[u] = u, u
			continue
		}
		if got.Head[u] != oracle.Head[u] {
			return fmt.Errorf("selfstab: node %d heads %d, oracle fixpoint %d", u, got.Head[u], oracle.Head[u])
		}
	}
	if err := cluster.CheckInvariants(n.g, got, n.cfg.fusion); err != nil {
		return fmt.Errorf("selfstab: %w", err)
	}
	return nil
}

// operatingMask returns the alive-nodes bitmap Stats and BuildHierarchy
// restrict themselves to, or nil when every slot is alive (the common
// churn-free case, where the mask would only cost allocations). The
// all-alive probe is an O(1) counter comparison, so observability calls
// on a quiescent churn-free world never walk the population.
func (n *Network) operatingMask() []bool {
	if n.engine.AliveCount() == len(n.pts) {
		return nil
	}
	mask := make([]bool, len(n.pts))
	for i := range n.pts {
		mask[i] = n.engine.Status(i) == runtime.StatusAlive
	}
	return mask
}

// SetPositions moves the nodes (mobility) and repairs the radio topology
// incrementally: the unit-disk grid index persists across calls and only
// nodes that actually moved have their edges recomputed, so a mobility
// step costs work proportional to the motion, not to the network size.
// The Network's graph is updated in place. Combine with WithCacheTTL so
// stale neighbors age out of caches.
func (n *Network) SetPositions(positions []Point) error {
	return n.applyOp(snapshot.Op{Kind: snapshot.OpSetPositions, Points: toSnapshotPoints(positions)})
}

// setPositionsImpl is the journaled implementation behind SetPositions.
func (n *Network) setPositionsImpl(positions []snapshot.Point) error {
	if len(positions) != len(n.pts) {
		return fmt.Errorf("selfstab: %d positions for %d nodes", len(positions), len(n.pts))
	}
	pts := make([]geom.Point, len(positions))
	for i, p := range positions {
		pts[i] = geom.Point{X: p.X, Y: p.Y}
		if !n.region.Contains(pts[i]) {
			return fmt.Errorf("selfstab: position %d outside the region", i)
		}
	}
	g, err := n.grid.Update(pts)
	if err != nil {
		return err
	}
	// Update repaired the engine's graph in place and — via the grid's
	// adjacency hook — activated exactly the nodes whose edge sets moved,
	// so the frontier re-examines the motion, not the network. Only the
	// epoch needs advancing (a SetGraph here would conservatively
	// re-examine all N nodes).
	n.engine.NoteTopologyChanged()
	n.pts = pts
	n.g = g
	n.topoEpoch++ // flat-routing and stretch baselines are stale now
	return nil
}

// SetParallelism fixes the worker count of the step engine's per-node
// phases (and, when an energy model is attached, of its drain pass). 0
// (the default) sizes the pool to GOMAXPROCS. Results — protocol state,
// traffic and energy statistics alike — are bit-identical for any value;
// the knob exists for benchmarking and the determinism tests.
//
//selfstab:unjournaled perf knob; results are bit-identical for any worker count
func (n *Network) SetParallelism(workers int) {
	n.workers = workers
	n.engine.SetParallelism(workers)
	if n.energy != nil {
		n.energy.SetParallelism(workers)
	}
}

// Tiles reports the step engine's spatial tile count (1 when untiled).
// See WithTiles.
func (n *Network) Tiles() int { return n.engine.Tiles() }

// Neighbors returns the identifiers of node i's current radio neighbors.
func (n *Network) Neighbors(i int) ([]int64, error) {
	if i < 0 || i >= len(n.pts) {
		return nil, fmt.Errorf("selfstab: node index %d out of range", i)
	}
	var out []int64
	for _, v := range n.g.Neighbors(i) {
		out = append(out, n.ids[v])
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// RenderSVG draws the current clustering as an SVG document of the given
// pixel size (heads outlined, members colored by cluster).
func (n *Network) RenderSVG(size int) (string, error) {
	return viz.SVG(n.g, n.pts, n.renderAssignment(), size)
}

// RenderASCII draws the current clustering as a rows x cols character map
// (uppercase letters are cluster-heads).
func (n *Network) RenderASCII(rows, cols int) (string, error) {
	return viz.ASCII(n.g, n.pts, n.renderAssignment(), rows, cols)
}

// renderAssignment sanitizes the live assignment for rendering: head
// references that do not resolve (transient states) fall back to self so
// the renderers always succeed.
func (n *Network) renderAssignment() *cluster.Assignment {
	a := n.engine.Assignment()
	for u := range a.Head {
		if a.Head[u] < 0 {
			a.Head[u] = u
		}
		if a.Parent[u] < 0 {
			a.Parent[u] = u
		}
	}
	return a
}
