package selfstab

import (
	"testing"

	"selfstab/internal/routing"
)

// benchStableNet builds and stabilizes a network once per benchmark.
func benchStableNet(b *testing.B, nodes int) *Network {
	b.Helper()
	net, err := NewRandomNetwork(nodes, WithSeed(1), WithRange(0.1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkRouteCached measures a Route query against the epoch-cached
// hierarchical table (the table is built once; every iteration is a pure
// table walk). Compare with BenchmarkRouteRebuild — the ratio is the win
// of the satellite caching work.
func BenchmarkRouteCached(b *testing.B) {
	net := benchStableNet(b, 500)
	ids := net.IDs()
	if _, err := net.Route(ids[0], ids[len(ids)-1]); err != nil && err != ErrUnreachable {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := ids[i%len(ids)]
		dst := ids[(i*31+len(ids)/2)%len(ids)]
		if _, err := net.Route(src, dst); err != nil && err != ErrUnreachable {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteRebuild is the seed behavior: BuildHierarchical from
// scratch on every query.
func BenchmarkRouteRebuild(b *testing.B) {
	net := benchStableNet(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := routing.BuildHierarchical(net.g, net.renderAssignment())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := table.Route(0, net.N()-1); err != nil && err != routing.ErrUnreachable {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrafficStep1000 is the traffic-phase headline: one Δ(τ) step of
// a stabilized 1000-node network carrying 100 concurrent flows. Steady-
// state allocations must stay O(1) amortized — watch allocs/op.
func BenchmarkTrafficStep1000(b *testing.B) {
	net := benchStableNet(b, 1000)
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 32,
		Flows:    benchFlows(net, 100),
	}); err != nil {
		b.Fatal(err)
	}
	// Warm up: fill pipelines and grow scratch buffers to steady state.
	if err := net.Run(50); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s, err := net.TrafficStats()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s.DeliveryRatio, "deliveryRatio")
}

// benchFlows builds a deterministic 100-flow mix: 90 unicast pairs plus a
// 10-source hotspot.
func benchFlows(net *Network, flows int) []Flow {
	ids := net.IDs()
	out := make([]Flow, 0, flows)
	for i := 0; i < flows-10; i++ {
		src := ids[(i*17)%len(ids)]
		dst := ids[(i*41+len(ids)/3)%len(ids)]
		if i%2 == 0 {
			out = append(out, CBRFlow(src, dst, 0.2))
		} else {
			out = append(out, PoissonFlow(src, dst, 0.2))
		}
	}
	out = append(out, HotspotFlow(ids[1], 10, 0.2))
	return out
}
