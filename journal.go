package selfstab

import (
	"fmt"

	"selfstab/internal/geom"
	"selfstab/internal/runtime"
	"selfstab/internal/snapshot"
	"selfstab/internal/traffic"
)

// This file is the world-mutation chokepoint. Every public mutator —
// InjectFaults, SetPositions, the lifecycle calls, the subsystem
// attach/detach pairs, Compact, SetAutoCompact — builds a snapshot.Op
// and hands it to applyOp, which performs the mutation and, on success,
// appends the op (stamped with the current step count) to the journal.
// The journal is therefore complete by construction: there is no code
// path that mutates the world without writing it down, which is what
// makes Network.WriteSnapshot / ReadSnapshot a faithful checkpoint and
// deterministic replay possible at all.
//
// Three mutation sources are deliberately NOT journaled, because replay
// reproduces them without help:
//
//   - Internal schedules. Churn arrivals, energy depletions and
//     auto-compactions are deterministic consequences of the seed and
//     the journaled attach ops; journaling them too would apply them
//     twice on replay.
//   - Performance knobs. SetParallelism, SetSparseStepping and the tile
//     layout are bit-identical by contract (the determinism tests pin
//     this), so they are not part of the world's trajectory.
//   - Failed calls. applyOp journals only after the mutation succeeded,
//     and the lifecycle ops validate every id and status transition
//     up front, so an op that errors has mutated nothing.

// applyOp performs one world mutation and journals it. It is the only
// entry point through which the world changes, shared by the public
// mutators and by snapshot replay (Restore feeds journaled ops back
// through the exact same switch).
func (n *Network) applyOp(op snapshot.Op) error {
	if err := n.dispatchOp(op); err != nil {
		return err
	}
	op.Step = n.engine.StepCount()
	n.oplog = append(n.oplog, op)
	return nil
}

// dispatchOp routes an op to its implementation.
func (n *Network) dispatchOp(op snapshot.Op) error {
	switch op.Kind {
	case snapshot.OpFaults:
		n.engine.Corrupt(op.Frac, runtime.CorruptAll, n.src.Split("faults"))
		return nil
	case snapshot.OpSetPositions:
		return n.setPositionsImpl(op.Points)
	case snapshot.OpAddNodes:
		return n.addNodesImpl(op.Points)
	case snapshot.OpRemoveNodes, snapshot.OpCrashNodes, snapshot.OpSleepNodes, snapshot.OpWakeNodes:
		return n.applyLifecycle(op.Kind, op.IDs)
	case snapshot.OpAttachTraffic:
		if op.Traffic == nil {
			return fmt.Errorf("selfstab: %s op without a traffic config", op.Kind)
		}
		return n.attachTrafficImpl(*op.Traffic)
	case snapshot.OpDetachTraffic:
		n.trafficOn = false
		n.installStepPhases()
		return nil
	case snapshot.OpAttachChurn:
		if op.Churn == nil {
			return fmt.Errorf("selfstab: %s op without a churn config", op.Kind)
		}
		return n.attachChurnImpl(*op.Churn)
	case snapshot.OpDetachChurn:
		n.engine.SetPreStep(nil)
		n.churnAttached = false
		return nil
	case snapshot.OpAttachEnergy:
		if op.Energy == nil {
			return fmt.Errorf("selfstab: %s op without an energy config", op.Kind)
		}
		return n.attachEnergyImpl(*op.Energy)
	case snapshot.OpDetachEnergy:
		n.energyOn = false
		n.installStepPhases()
		return nil
	case snapshot.OpCompact:
		_, err := n.compactImpl()
		return err
	case snapshot.OpSetAutoCompact:
		if op.Frac < 0 || op.Frac > 1 {
			return fmt.Errorf("selfstab: auto-compact fraction %v outside [0, 1]", op.Frac)
		}
		n.autoCompact = op.Frac
		return nil
	case snapshot.OpSpawnFlows:
		if op.Traffic == nil {
			return fmt.Errorf("selfstab: %s op without a traffic config", op.Kind)
		}
		return n.spawnFlowsImpl(*op.Traffic)
	case snapshot.OpScaleDensity:
		return n.scaleDensityImpl(op.IDs, op.Scale)
	case snapshot.OpEvictNodes:
		return n.evictNodesImpl(op.IDs)
	case snapshot.OpSetDefense:
		if op.Defense == nil {
			return fmt.Errorf("selfstab: %s op without a defense config", op.Kind)
		}
		return n.setDefenseImpl(*op.Defense)
	}
	return fmt.Errorf("selfstab: unknown op kind %q", op.Kind)
}

// applyLifecycle applies one journaled lifecycle op (remove, crash,
// sleep, wake) to a list of node identifiers. Indices are resolved and
// status transitions validated up front, so a bad id, a duplicate, or an
// illegal transition fails before ANY node mutates — the journal never
// records a half-applied op, and a half-mutated world never outlives an
// error return.
func (n *Network) applyLifecycle(kind string, ids []int64) error {
	if len(ids) == 0 {
		return fmt.Errorf("selfstab: no node ids")
	}
	idxs := make([]int, len(ids))
	seen := make(map[int64]bool, len(ids))
	for k, id := range ids {
		i, ok := n.indexOfID(id)
		if !ok {
			return fmt.Errorf("selfstab: unknown node id %d", id)
		}
		if seen[id] {
			return fmt.Errorf("selfstab: duplicate node id %d in one call", id)
		}
		seen[id] = true
		st := n.engine.Status(i)
		switch kind {
		case snapshot.OpRemoveNodes, snapshot.OpCrashNodes:
			if st == runtime.StatusDead {
				return fmt.Errorf("selfstab: node %d is already dead", id)
			}
		case snapshot.OpSleepNodes:
			if st != runtime.StatusAlive {
				return fmt.Errorf("selfstab: node %d is %s, cannot sleep", id, statusOf(st))
			}
		case snapshot.OpWakeNodes:
			if st != runtime.StatusSleeping {
				return fmt.Errorf("selfstab: node %d is %s, cannot wake", id, statusOf(st))
			}
		}
		idxs[k] = i
	}
	for _, i := range idxs {
		var err error
		switch kind {
		case snapshot.OpRemoveNodes:
			err = n.removeNodeIdx(i)
		case snapshot.OpCrashNodes:
			err = n.crashNodeIdx(i)
		case snapshot.OpSleepNodes:
			err = n.sleepNodeIdx(i, 0)
		case snapshot.OpWakeNodes:
			err = n.wakeNodeIdx(i)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// --- type conversions between the public option structs and their
// journal records. They are exact: attach ops are journaled exactly as
// given (defaults unfilled), and replay refills them identically.

func toSnapshotPoints(pts []Point) []snapshot.Point {
	out := make([]snapshot.Point, len(pts))
	for i, p := range pts {
		out[i] = snapshot.Point{X: p.X, Y: p.Y}
	}
	return out
}

func fromSnapshotPoints(pts []snapshot.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{X: p.X, Y: p.Y}
	}
	return out
}

func flowToSnapshot(f Flow) (snapshot.Flow, error) {
	var kind string
	switch f.kind {
	case traffic.CBR:
		kind = "cbr"
	case traffic.Poisson:
		kind = "poisson"
	default:
		return snapshot.Flow{}, fmt.Errorf("selfstab: flow with unknown kind %d (build flows with CBRFlow, PoissonFlow or HotspotFlow)", int(f.kind))
	}
	return snapshot.Flow{
		Kind: kind, SrcID: f.srcID, DstID: f.dstID, Rate: f.rate,
		Start: f.start, Stop: f.stop, HotspotSources: f.hotSources,
	}, nil
}

func flowFromSnapshot(sf snapshot.Flow) (Flow, error) {
	var kind traffic.FlowKind
	switch sf.Kind {
	case "cbr":
		kind = traffic.CBR
	case "poisson":
		kind = traffic.Poisson
	default:
		return Flow{}, fmt.Errorf("selfstab: journaled flow with unknown kind %q", sf.Kind)
	}
	return Flow{
		kind: kind, srcID: sf.SrcID, dstID: sf.DstID, rate: sf.Rate,
		start: sf.Start, stop: sf.Stop, hotSources: sf.HotspotSources,
	}, nil
}

func trafficToSnapshot(cfg TrafficConfig) (snapshot.TrafficConfig, error) {
	var disc string
	switch cfg.Discipline {
	case DropTail:
		disc = "droptail"
	case DropHead:
		disc = "drophead"
	default:
		return snapshot.TrafficConfig{}, fmt.Errorf("selfstab: invalid queue discipline %d", int(cfg.Discipline))
	}
	out := snapshot.TrafficConfig{
		QueueCap: cfg.QueueCap, Discipline: disc, Budget: cfg.Budget, TTL: cfg.TTL,
		Flows: make([]snapshot.Flow, len(cfg.Flows)),
	}
	for i, f := range cfg.Flows {
		sf, err := flowToSnapshot(f)
		if err != nil {
			return snapshot.TrafficConfig{}, fmt.Errorf("selfstab: flow %d: %w", i, err)
		}
		out.Flows[i] = sf
	}
	return out, nil
}

func trafficFromSnapshot(sc snapshot.TrafficConfig) (TrafficConfig, error) {
	out := TrafficConfig{QueueCap: sc.QueueCap, Budget: sc.Budget, TTL: sc.TTL,
		Flows: make([]Flow, len(sc.Flows))}
	switch sc.Discipline {
	case "droptail", "":
		out.Discipline = DropTail
	case "drophead":
		out.Discipline = DropHead
	default:
		return TrafficConfig{}, fmt.Errorf("selfstab: journaled traffic config with unknown discipline %q", sc.Discipline)
	}
	for i, sf := range sc.Flows {
		f, err := flowFromSnapshot(sf)
		if err != nil {
			return TrafficConfig{}, err
		}
		out.Flows[i] = f
	}
	return out, nil
}

func churnToSnapshot(cfg ChurnConfig) snapshot.ChurnConfig {
	return snapshot.ChurnConfig{
		ArrivalRate: cfg.ArrivalRate, DepartureRate: cfg.DepartureRate,
		CrashRate: cfg.CrashRate, SleepRate: cfg.SleepRate,
		SleepSteps: cfg.SleepSteps, MinAlive: cfg.MinAlive,
	}
}

func churnFromSnapshot(sc snapshot.ChurnConfig) ChurnConfig {
	return ChurnConfig{
		ArrivalRate: sc.ArrivalRate, DepartureRate: sc.DepartureRate,
		CrashRate: sc.CrashRate, SleepRate: sc.SleepRate,
		SleepSteps: sc.SleepSteps, MinAlive: sc.MinAlive,
	}
}

func energyToSnapshot(cfg EnergyConfig) snapshot.EnergyConfig {
	return snapshot.EnergyConfig{
		Capacity: cfg.Capacity, IdleHeadCost: cfg.IdleHeadCost,
		IdleMemberCost: cfg.IdleMemberCost, SleepCost: cfg.SleepCost,
		TxCost: cfg.TxCost, RxCost: cfg.RxCost,
		Rotation: cfg.Rotation, RotationLevels: cfg.RotationLevels,
	}
}

func energyFromSnapshot(sc snapshot.EnergyConfig) EnergyConfig {
	return EnergyConfig{
		Capacity: sc.Capacity, IdleHeadCost: sc.IdleHeadCost,
		IdleMemberCost: sc.IdleMemberCost, SleepCost: sc.SleepCost,
		TxCost: sc.TxCost, RxCost: sc.RxCost,
		Rotation: sc.Rotation, RotationLevels: sc.RotationLevels,
	}
}

func defenseToSnapshot(cfg DefenseConfig) snapshot.DefenseConfig {
	return snapshot.DefenseConfig{
		HeadTokens: cfg.HeadAdmission, HeadRate: cfg.HeadRate,
		HeadBurst: cfg.HeadBurst, SourceCap: cfg.SourceCap,
	}
}

func defenseFromSnapshot(sc snapshot.DefenseConfig) DefenseConfig {
	return DefenseConfig{
		HeadAdmission: sc.HeadTokens, HeadRate: sc.HeadRate,
		HeadBurst: sc.HeadBurst, SourceCap: sc.SourceCap,
	}
}
