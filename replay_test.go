package selfstab

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// worldFingerprint collects everything observable about a world that the
// snapshot contract promises to preserve: step count, population, every
// node's protocol state, the clustering, and all three ledgers. Two
// worlds with equal fingerprints are indistinguishable to any caller.
type worldFingerprint struct {
	StepCount   int
	N           int
	IDs         []int64
	Positions   []Point
	States      []NodeState
	Clusters    []Cluster
	Alive       int
	Sleeping    int
	Dead        int
	Convergence ConvergenceStats
	Traffic     *TrafficStats
	Energy      *EnergyStats
}

func fingerprint(t *testing.T, n *Network) worldFingerprint {
	t.Helper()
	fp := worldFingerprint{
		StepCount: n.StepCount(),
		N:         n.N(),
		IDs:       n.IDs(),
		Positions: n.Positions(),
		Clusters:  n.Clusters(),
	}
	fp.Alive, fp.Sleeping, fp.Dead = n.Population()
	fp.States = make([]NodeState, n.N())
	for i := range fp.States {
		st, err := n.State(i)
		if err != nil {
			t.Fatal(err)
		}
		fp.States[i] = st
	}
	fp.Convergence = n.ConvergenceStats()
	if ts, err := n.TrafficStats(); err == nil {
		fp.Traffic = &ts
	}
	if es, err := n.EnergyStats(); err == nil {
		fp.Energy = &es
	}
	return fp
}

func requireSameWorld(t *testing.T, label string, a, b worldFingerprint) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: worlds diverged\noriginal: %+v\nrestored: %+v", label, a, b)
	}
}

// firstAliveIDs returns the first k alive node ids in index order — a
// deterministic victim pick both worlds agree on.
func firstAliveIDs(t *testing.T, n *Network, k int) []int64 {
	t.Helper()
	var out []int64
	for i := 0; i < n.N() && len(out) < k; i++ {
		st, err := n.State(i)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == NodeAlive {
			out = append(out, st.ID)
		}
	}
	if len(out) < k {
		t.Fatalf("only %d alive nodes, need %d", len(out), k)
	}
	return out
}

// runMixedTrace drives a world through every mutation family the journal
// carries: churn schedule, traffic, energy with rotation, manual
// lifecycle calls, fault injection, mobility-free growth, and the
// compaction knobs. Deterministic for a fixed seed by the repo's
// determinism contract, so the same trace on a restored world must
// reproduce it exactly.
func runMixedTrace(t *testing.T, net *Network) {
	t.Helper()
	if err := net.AttachChurn(ChurnConfig{
		ArrivalRate:   0.2,
		DepartureRate: 0.15,
		CrashRate:     0.15,
		SleepRate:     0.1,
		SleepSteps:    6,
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(8); err != nil {
		t.Fatal(err)
	}
	ids := firstAliveIDs(t, net, 4)
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 8,
		Flows: []Flow{
			CBRFlow(ids[0], ids[1], 0.6),
			PoissonFlow(ids[1], ids[2], 0.4),
			HotspotFlow(ids[3], 5, 0.2),
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{Rotation: true}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(8); err != nil {
		t.Fatal(err)
	}
	net.InjectFaults(0.25)
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNodes([]Point{{X: 0.31, Y: 0.47}, {X: 0.72, Y: 0.18}}); err != nil {
		t.Fatal(err)
	}
	ids = firstAliveIDs(t, net, 3)
	if err := net.CrashNodes(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.SleepNodes(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := net.SetAutoCompact(0.3); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := net.WakeNodes(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
}

// continueTrace applies identical post-snapshot mutations to one world.
// The victim ids are passed in (computed once from the original) so both
// worlds receive byte-identical calls.
func continueTrace(t *testing.T, net *Network, victims []int64) {
	t.Helper()
	if err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := net.RemoveNodes(victims[0]); err != nil {
		t.Fatal(err)
	}
	net.InjectFaults(0.2)
	if err := net.Run(6); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Compact(); err != nil {
		t.Fatal(err)
	}
	net.DetachChurn()
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReplayOracle is the acceptance contract of the snapshot
// subsystem: snapshot a world mid-run through a mixed churn + traffic +
// energy + lifecycle trace, restore it, and (a) the restored world is
// bit-identical to the original at the snapshot step, (b) continuing
// BOTH worlds with the same op sequence keeps them bit-identical —
// protocol state, clustering, and all three ledgers — and (c) the
// restored world's own next snapshot is byte-identical to the
// original's, so checkpoints chain. Exercised at 1 and 4 workers, flat
// and tiled (results must also be identical across those variants per
// the repo's determinism contract, which restore leans on).
func TestSnapshotReplayOracle(t *testing.T) {
	variants := []struct {
		name    string
		workers int
		tiles   int
	}{
		{"1worker_flat", 1, 1},
		{"4workers_flat", 4, 1},
		{"1worker_4tiles", 1, 4},
		{"4workers_4tiles", 4, 4},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			net := churnNet(t, 80, 20260808, WithTiles(v.tiles))
			net.SetParallelism(v.workers)
			runMixedTrace(t, net)

			var snap bytes.Buffer
			if err := net.WriteSnapshot(&snap); err != nil {
				t.Fatal(err)
			}
			// WriteSnapshot is deterministic and read-only: a second write
			// must produce the same bytes.
			var again bytes.Buffer
			if err := net.WriteSnapshot(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap.Bytes(), again.Bytes()) {
				t.Fatal("two WriteSnapshot calls on an unchanged world differ")
			}

			restored, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			restored.SetParallelism(v.workers)
			requireSameWorld(t, "at snapshot step",
				fingerprint(t, net), fingerprint(t, restored))

			// The restored world re-journaled the replay, so its own
			// checkpoint must equal the original's byte for byte.
			var resnap bytes.Buffer
			if err := restored.WriteSnapshot(&resnap); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap.Bytes(), resnap.Bytes()) {
				t.Fatalf("restored world's snapshot differs from the original's:\noriginal:\n%s\nrestored:\n%s",
					snap.String(), resnap.String())
			}

			victims := firstAliveIDs(t, net, 2)
			continueTrace(t, net, victims)
			continueTrace(t, restored, victims)
			requireSameWorld(t, "after continuing both worlds",
				fingerprint(t, net), fingerprint(t, restored))
		})
	}
}

// TestSnapshotRoundTripEveryConstructor pins that each deployment kind's
// blueprint restores through the same construction path: a fresh
// snapshot of an unstepped world restores to the same positions, ids and
// states.
func TestSnapshotRoundTripEveryConstructor(t *testing.T) {
	builds := []struct {
		name  string
		build func() (*Network, error)
	}{
		{"explicit", func() (*Network, error) {
			return NewNetwork([]Point{{0.2, 0.2}, {0.25, 0.22}, {0.8, 0.8}}, WithSeed(5))
		}},
		{"random", func() (*Network, error) {
			return NewRandomNetwork(40, WithSeed(5), WithDAG(1<<16))
		}},
		{"poisson", func() (*Network, error) {
			return NewPoissonNetwork(60, WithSeed(5), WithStickyHeads())
		}},
		{"hotspot", func() (*Network, error) {
			return NewHotspotNetwork(40, 3, 0.05, WithSeed(5))
		}},
		{"grid", func() (*Network, error) {
			return NewGridNetwork(6, 6, WithSeed(5), WithRowMajorIDs())
		}},
	}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			net, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			if err := net.Run(12); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := net.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := ReadSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			requireSameWorld(t, b.name, fingerprint(t, net), fingerprint(t, restored))
		})
	}
}

// TestSnapshotRejectsGarbage: the public entry point surfaces the format
// layer's validation.
func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	net, err := NewRandomNetwork(10, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), `"version": 2`, `"version": 7`, 1)
	if _, err := ReadSnapshot(strings.NewReader(tampered)); err == nil {
		t.Fatal("version-tampered snapshot accepted")
	} else if !strings.Contains(err.Error(), "version 7") {
		t.Fatalf("error %q does not name the offending version", err)
	}
}

// TestFailedOpsAreNotJournaled: an op that errors mutates nothing and
// leaves no journal entry, so a snapshot after a failed call replays
// cleanly.
func TestFailedOpsAreNotJournaled(t *testing.T) {
	net := churnNet(t, 30, 99)
	before := fingerprint(t, net)
	if err := net.RemoveNodes(123456); err == nil {
		t.Fatal("unknown id accepted")
	}
	ids := firstAliveIDs(t, net, 2)
	// Second id is unknown: the whole call must fail before the first
	// node mutates.
	if err := net.CrashNodes(ids[0], 123456); err == nil {
		t.Fatal("half-applicable call accepted")
	}
	if err := net.WakeNodes(ids[1]); err == nil {
		t.Fatal("waking an alive node accepted")
	}
	requireSameWorld(t, "after failed ops", before, fingerprint(t, net))
	var buf bytes.Buffer
	if err := net.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameWorld(t, "restored after failed ops", before, fingerprint(t, restored))
}
