package selfstab

import (
	"fmt"
	"math"

	"selfstab/internal/geom"
	"selfstab/internal/obs"
	"selfstab/internal/runtime"
	"selfstab/internal/snapshot"
	"selfstab/internal/traffic"
)

// Adversarial workload plane. The paper's self-stabilization claim is a
// robustness claim, and this file makes it falsifiable under adversaries
// instead of just under benign churn: botnet CBR floods aimed at the
// current cluster-heads (FloodHeads), byzantine nodes advertising
// inflated densities to capture headship (InflateDensity), and sybil
// join bursts packed around a victim (SybilJoin) — plus the measurable
// defenses: traffic-plane admission control and rate limiting
// (SetTrafficDefense) and local density-plausibility detection and
// eviction (ImplausibleNodes, EvictNodes).
//
// Every attack and defense op routes through the applyOp journal
// chokepoint, so an attacked world snapshots and replays bit-identically
// like any other. Targets are resolved against the live hierarchy at
// call time and journaled as explicit identifiers (the crash-region
// pattern): replay applies the same flows to the same nodes even though
// the hierarchy it would resolve against no longer exists. Scoring needs
// no new machinery — floods land in the traffic ledger (delivery ratio,
// DropsAdmission/DropsRateLimit), byzantine inflation and eviction open
// ChurnAttack episodes in the convergence ledger (steps-to-restabilize,
// affected radius), and the energy ledger prices the drain.

// DefenseConfig parameterizes the traffic-plane defenses installed by
// SetTrafficDefense. The zero value disables every defense.
type DefenseConfig struct {
	// HeadAdmission turns on per-head token-bucket admission control:
	// each current cluster-head accepts at most HeadBurst queued arrivals
	// at once and refills at HeadRate tokens per step. Arrivals beyond
	// the bucket are dropped and accounted as DropsAdmission — a flood
	// aimed at a head exhausts the bucket and starves itself, while
	// steady legitimate traffic at or below HeadRate passes untouched.
	HeadAdmission bool
	// HeadRate is the bucket refill rate in packets per step (required
	// > 0 when HeadAdmission is set).
	HeadRate float64
	// HeadBurst is the bucket capacity in packets (required >= 1 when
	// HeadAdmission is set). Buckets start full.
	HeadBurst float64
	// SourceCap bounds how many packets any single node may inject per
	// step; injections beyond the cap are dropped and accounted as
	// DropsRateLimit. 0 disables the cap.
	SourceCap int
}

// SetTrafficDefense installs (or, with a zero config, removes) the
// traffic-plane defenses on the attached data plane. The call is
// journaled; installing resets the defense state (buckets start full),
// never the traffic ledger, so before/after deltas stay measurable
// across the call. Re-attaching the data plane clears any installed
// defense. It fails if no data plane is attached.
func (n *Network) SetTrafficDefense(cfg DefenseConfig) error {
	sc := defenseToSnapshot(cfg)
	return n.applyOp(snapshot.Op{Kind: snapshot.OpSetDefense, Defense: &sc})
}

// setDefenseImpl is the journaled implementation behind SetTrafficDefense.
func (n *Network) setDefenseImpl(sc snapshot.DefenseConfig) error {
	if !n.trafficOn {
		return fmt.Errorf("selfstab: no traffic attached — defenses guard the data plane")
	}
	cfg := defenseFromSnapshot(sc)
	return n.traffic.SetDefense(traffic.Defense{
		HeadTokens: cfg.HeadAdmission,
		HeadRate:   cfg.HeadRate,
		HeadBurst:  cfg.HeadBurst,
		SourceCap:  cfg.SourceCap,
	})
}

// TrafficDefense returns the currently installed traffic-plane defense
// (the zero value when none, or when no data plane is attached).
func (n *Network) TrafficDefense() DefenseConfig {
	if n.traffic == nil {
		return DefenseConfig{}
	}
	d := n.traffic.Defense()
	return DefenseConfig{
		HeadAdmission: d.HeadTokens, HeadRate: d.HeadRate,
		HeadBurst: d.HeadBurst, SourceCap: d.SourceCap,
	}
}

// SpawnFlows appends flows to the attached data plane without resetting
// its ledger or its queues — unlike re-attaching, delivery history stays
// continuous, which is what makes an attack's before/after delta
// measurable. Flows are built with the same constructors as
// TrafficConfig.Flows (CBRFlow, PoissonFlow, HotspotFlow). It fails if
// no data plane is attached.
func (n *Network) SpawnFlows(flows ...Flow) error {
	if len(flows) == 0 {
		return fmt.Errorf("selfstab: no flows")
	}
	sc := snapshot.TrafficConfig{Flows: make([]snapshot.Flow, len(flows))}
	for i, f := range flows {
		sf, err := flowToSnapshot(f)
		if err != nil {
			return fmt.Errorf("selfstab: flow %d: %w", i, err)
		}
		sc.Flows[i] = sf
	}
	return n.applyOp(snapshot.Op{Kind: snapshot.OpSpawnFlows, Traffic: &sc})
}

// spawnFlowsImpl is the journaled implementation behind SpawnFlows.
// Hotspot flows are journaled unexpanded and expanded here at apply
// time, exactly like attachTrafficImpl, so replay reproduces the same
// source picks.
func (n *Network) spawnFlowsImpl(sc snapshot.TrafficConfig) error {
	if !n.trafficOn {
		return fmt.Errorf("selfstab: no traffic attached — spawn flows after AttachTraffic")
	}
	flows := make([]Flow, len(sc.Flows))
	for i, sf := range sc.Flows {
		f, err := flowFromSnapshot(sf)
		if err != nil {
			return err
		}
		flows[i] = f
	}
	specs, err := n.expandFlows(flows)
	if err != nil {
		return err
	}
	if err := n.traffic.AddFlows(specs); err != nil {
		return err
	}
	for _, s := range specs {
		n.flowIDs = append(n.flowIDs, flowEndpointIDs{src: n.ids[s.Src], dst: n.ids[s.Dst]})
	}
	if n.lastTraffic != nil {
		n.lastTraffic.Flows = append(n.lastTraffic.Flows, flows...)
	}
	return nil
}

// FloodHeads launches a botnet flood against the current cluster
// hierarchy: bots compromised nodes — alive non-heads, lowest indices
// first — each start a CBR flow of rate packets per step aimed at a
// current cluster-head, assigned round-robin so every head takes fire.
// Targets are resolved against the live hierarchy at call time and the
// flows journaled with explicit endpoints, so replay reproduces the
// attack even after the hierarchy has re-formed. Returns the bot
// identifiers. The flood rides the normal data plane: score it with
// TrafficStats (delivery ratio, queue drops, and — with defenses on —
// DropsAdmission).
func (n *Network) FloodHeads(bots int, rate float64) ([]int64, error) {
	if bots < 1 {
		return nil, fmt.Errorf("selfstab: flood with %d bots", bots)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("selfstab: flood rate %v <= 0", rate)
	}
	if !n.trafficOn {
		return nil, fmt.Errorf("selfstab: no traffic attached — floods ride the data plane")
	}
	var heads, candidates []int
	for i := range n.pts {
		if n.engine.Status(i) != runtime.StatusAlive {
			continue
		}
		if n.engine.Node(i).IsHead() {
			heads = append(heads, i)
		} else {
			candidates = append(candidates, i)
		}
	}
	if len(heads) == 0 {
		return nil, fmt.Errorf("selfstab: no cluster-heads to flood (stabilize first)")
	}
	if bots > len(candidates) {
		return nil, fmt.Errorf("selfstab: %d bots requested but only %d alive non-head nodes", bots, len(candidates))
	}
	flows := make([]Flow, bots)
	ids := make([]int64, bots)
	for k := 0; k < bots; k++ {
		src, dst := candidates[k], heads[k%len(heads)]
		flows[k] = CBRFlow(n.ids[src], n.ids[dst], rate)
		ids[k] = n.ids[src]
	}
	if err := n.SpawnFlows(flows...); err != nil {
		return nil, err
	}
	if p := n.probe; p != nil {
		p.Counter(obs.CtrAttacksInjected, 1)
	}
	return ids, nil
}

// InflateDensity turns the given nodes byzantine: each advertises its
// computed density multiplied by scale (> 1 inflates), which the honest
// R1 guard — comparing advertised densities, ties by identifier —
// cannot distinguish from truth. A sufficiently inflated liar captures
// headship of its neighborhood and holds it. The inflation persists
// until the node is evicted (EvictNodes resets it) or crashes. The call
// opens a ChurnAttack episode in the convergence ledger per node, so the
// disruption's spread is measured like any churn. All ids are validated
// before any node mutates.
//
// Detection: an inflated density is locally implausible — see
// ImplausibleNodes for the bound and EvictNodes for the response.
func (n *Network) InflateDensity(scale float64, ids ...int64) error {
	if scale <= 0 {
		return fmt.Errorf("selfstab: density scale %v <= 0", scale)
	}
	if err := n.applyOp(snapshot.Op{Kind: snapshot.OpScaleDensity, IDs: append([]int64(nil), ids...), Scale: scale}); err != nil {
		return err
	}
	if p := n.probe; p != nil {
		p.Counter(obs.CtrAttacksInjected, 1)
	}
	return nil
}

// scaleDensityImpl is the journaled implementation behind InflateDensity.
func (n *Network) scaleDensityImpl(ids []int64, scale float64) error {
	if scale <= 0 {
		return fmt.Errorf("selfstab: density scale %v <= 0", scale)
	}
	idxs, err := n.resolveLive(ids)
	if err != nil {
		return err
	}
	for _, i := range idxs {
		if err := n.engine.MarkAttack(i); err != nil {
			return err
		}
		if err := n.engine.SetDensityScale(i, scale); err != nil {
			return err
		}
	}
	return nil
}

// ImplausibleNodes returns the identifiers of alive nodes whose
// advertised density exceeds factor times the local plausibility bound.
// The bound is structural: a degree-d node's true density (links among
// {v} ∪ N(v) over d) is at most (d+1)/2, because the cache can hold at
// most d + C(d,2) links — no honest node can exceed it, so any node
// above it is lying about its neighborhood. factor 1 detects exactly at
// the bound; a margin (e.g. 1.1) tolerates transiently stale caches
// during convergence. Read-only; pair with EvictNodes to respond.
func (n *Network) ImplausibleNodes(factor float64) []int64 {
	idxs := n.engine.Implausible(factor)
	ids := make([]int64, len(idxs))
	for k, i := range idxs {
		ids[k] = n.ids[i]
	}
	return ids
}

// EvictNodes expels the given nodes from the clustering as a defense
// response (typically to ImplausibleNodes): each node's density
// inflation is reset, its protocol state cleared, and it restarts cold
// exactly like a crashed node — the honest protocol re-integrates it
// and headship returns to truthful density order. A sleeping node is
// evicted awake. Each eviction opens a ChurnAttack episode in the
// convergence ledger, so the cost of the defense (steps-to-restabilize)
// is measured by the same machinery as the attack. All ids are
// validated before any node mutates.
func (n *Network) EvictNodes(ids ...int64) error {
	return n.applyOp(snapshot.Op{Kind: snapshot.OpEvictNodes, IDs: append([]int64(nil), ids...)})
}

// evictNodesImpl is the journaled implementation behind EvictNodes.
func (n *Network) evictNodesImpl(ids []int64) error {
	idxs, err := n.resolveLive(ids)
	if err != nil {
		return err
	}
	for _, i := range idxs {
		wasSleeping := n.engine.Status(i) == runtime.StatusSleeping
		if err := n.engine.Evict(i); err != nil {
			return err
		}
		if wasSleeping {
			n.grid.Reactivate(i) // an evicted sleeper restarts awake
			n.topoEpoch++
		}
		if n.traffic != nil {
			n.traffic.FlushNode(i) // the queue is part of the cleared state
		}
		if n.churn != nil && i < len(n.churn.sleepUntil) {
			n.churn.sleepUntil[i] = 0
		}
	}
	return nil
}

// resolveLive resolves identifiers to indices, rejecting unknown ids,
// duplicates and dead nodes before any caller mutates — the journal
// never records a half-applied attack op.
func (n *Network) resolveLive(ids []int64) ([]int, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("selfstab: no node ids")
	}
	idxs := make([]int, len(ids))
	seen := make(map[int64]bool, len(ids))
	for k, id := range ids {
		i, ok := n.indexOfID(id)
		if !ok {
			return nil, fmt.Errorf("selfstab: unknown node id %d", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("selfstab: duplicate node id %d in one call", id)
		}
		seen[id] = true
		if n.engine.Status(i) == runtime.StatusDead {
			return nil, fmt.Errorf("selfstab: node %d is dead", id)
		}
		idxs[k] = i
	}
	return idxs, nil
}

// SybilJoin floods the neighborhood of the target node with count sybil
// identities: new nodes placed deterministically on a ring of radius
// spread around the target (clamped to the deployment region), packing
// its radio range to distort local densities and force re-clustering.
// The sybils join through the normal arrival machinery — AddNodes
// journaling, fresh identifiers (returned in order), a ChurnJoin
// episode in the convergence ledger — so the clustering's response is
// scored like any churn burst. Evict sybils with RemoveNodes (they are
// ordinary nodes once joined; density plausibility does not flag them —
// their densities are honestly computed, which is what makes the attack
// interesting).
func (n *Network) SybilJoin(targetID int64, count int, spread float64) ([]int64, error) {
	if count < 1 {
		return nil, fmt.Errorf("selfstab: sybil burst of %d nodes", count)
	}
	if spread <= 0 {
		return nil, fmt.Errorf("selfstab: sybil spread %v <= 0", spread)
	}
	i, ok := n.indexOfID(targetID)
	if !ok {
		return nil, fmt.Errorf("selfstab: unknown node id %d", targetID)
	}
	center := n.pts[i]
	// Deterministic geometry, not an rng stream: a snapshot restored
	// mid-attack must produce the same placements for the same call on
	// both the original and the restored world.
	pts := make([]Point, count)
	for k := 0; k < count; k++ {
		a := 2 * math.Pi * float64(k) / float64(count)
		p := n.region.Clamp(geom.Point{
			X: center.X + spread*math.Cos(a),
			Y: center.Y + spread*math.Sin(a),
		})
		pts[k] = Point{X: p.X, Y: p.Y}
	}
	ids, err := n.AddNodes(pts)
	if err != nil {
		return nil, err
	}
	if p := n.probe; p != nil {
		p.Counter(obs.CtrAttacksInjected, 1)
	}
	return ids, nil
}
