package selfstab

import (
	"fmt"
	"sort"

	"selfstab/internal/cluster"
	"selfstab/internal/hierarchy"
	"selfstab/internal/topology"
)

// HierarchyLevel is one tier of a recursive clustering: level 0 clusters
// the physical nodes, level k+1 clusters the level-k cluster-heads over
// the overlay graph in which two heads are adjacent when their clusters
// touch.
type HierarchyLevel struct {
	// Clusters lists this level's clusters. Member identifiers refer to
	// physical nodes at level 0 and to lower-level cluster-heads above.
	Clusters []Cluster
}

// BuildHierarchy applies the clustering recursively (the paper's Section 6
// future work) up to maxLevels tiers, stopping early once each connected
// component has a single head. It is computed on the current topology with
// the network's identifiers and ≺ configuration; the per-level outcome is
// the fixpoint the distributed protocol would stabilize to when run level
// by level.
//
// Under churn the hierarchy spans the operating population only, like
// Clusters and Verify: dead and sleeping nodes keep their index slots but
// are not clustered, so they never surface as phantom singleton clusters
// at level 0.
func (n *Network) BuildHierarchy(maxLevels int) ([]HierarchyLevel, error) {
	if maxLevels < 1 {
		return nil, fmt.Errorf("selfstab: need at least one level, got %d", maxLevels)
	}
	order := cluster.OrderBasic
	if n.cfg.sticky {
		order = cluster.OrderSticky
	}
	g, ids := n.g, n.ids
	sub := []int(nil) // level-0 vertex → physical index (nil: identity)
	if mask := n.operatingMask(); mask != nil {
		// Induce the operating subgraph with compacted indices. Dead and
		// sleeping nodes are already isolated vertices of the live
		// topology, so this only drops vertices, never edges.
		sub = make([]int, 0, len(n.pts))
		subIdx := make([]int, len(n.pts))
		for i := range n.pts {
			subIdx[i] = -1
			if mask[i] {
				subIdx[i] = len(sub)
				sub = append(sub, i)
			}
		}
		if len(sub) == 0 {
			return nil, fmt.Errorf("selfstab: no operating nodes to cluster")
		}
		g = topology.New(len(sub))
		ids = make([]int64, len(sub))
		for k, u := range sub {
			ids[k] = n.ids[u]
			for _, v := range n.g.Neighbors(u) {
				if v > u && subIdx[v] >= 0 {
					if err := g.AddEdge(k, subIdx[v]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	// With energy-aware rotation active the live election runs on
	// scale * density; hand the same weights to the offline fixpoint so
	// level 0 matches what the protocol actually stabilizes to.
	var scales []float64
	for k := 0; k < g.N(); k++ {
		phys := k
		if sub != nil {
			phys = sub[k]
		}
		if s := n.engine.DensityScale(phys); s != 1 {
			if scales == nil {
				scales = make([]float64, g.N())
				for j := range scales {
					scales[j] = 1
				}
			}
			scales[k] = s
		}
	}
	h, err := hierarchy.Build(g, ids, hierarchy.Options{
		MaxLevels:   maxLevels,
		Order:       order,
		Fusion:      n.cfg.fusion,
		Level0Scale: scales,
	})
	if err != nil {
		return nil, err
	}
	out := make([]HierarchyLevel, 0, h.Depth())
	for _, l := range h.Levels {
		byHead := make(map[int64][]int64, 8)
		for vi, headVi := range l.Assignment.Head {
			hid := ids[l.NodeOf[headVi]]
			byHead[hid] = append(byHead[hid], ids[l.NodeOf[vi]])
		}
		var level HierarchyLevel
		//selfstab:orderinvariant every cluster is emitted exactly once and the trailing sorts canonicalize the order
		for hid, ms := range byHead {
			sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
			level.Clusters = append(level.Clusters, Cluster{HeadID: hid, Members: ms})
		}
		sort.Slice(level.Clusters, func(i, j int) bool {
			return level.Clusters[i].HeadID < level.Clusters[j].HeadID
		})
		out = append(out, level)
	}
	return out, nil
}
