package selfstab

import (
	"fmt"
	"sort"

	"selfstab/internal/cluster"
	"selfstab/internal/hierarchy"
)

// HierarchyLevel is one tier of a recursive clustering: level 0 clusters
// the physical nodes, level k+1 clusters the level-k cluster-heads over
// the overlay graph in which two heads are adjacent when their clusters
// touch.
type HierarchyLevel struct {
	// Clusters lists this level's clusters. Member identifiers refer to
	// physical nodes at level 0 and to lower-level cluster-heads above.
	Clusters []Cluster
}

// BuildHierarchy applies the clustering recursively (the paper's Section 6
// future work) up to maxLevels tiers, stopping early once each connected
// component has a single head. It is computed on the current topology with
// the network's identifiers and ≺ configuration; the per-level outcome is
// the fixpoint the distributed protocol would stabilize to when run level
// by level.
func (n *Network) BuildHierarchy(maxLevels int) ([]HierarchyLevel, error) {
	if maxLevels < 1 {
		return nil, fmt.Errorf("selfstab: need at least one level, got %d", maxLevels)
	}
	order := cluster.OrderBasic
	if n.cfg.sticky {
		order = cluster.OrderSticky
	}
	h, err := hierarchy.Build(n.g, n.ids, hierarchy.Options{
		MaxLevels: maxLevels,
		Order:     order,
		Fusion:    n.cfg.fusion,
	})
	if err != nil {
		return nil, err
	}
	out := make([]HierarchyLevel, 0, h.Depth())
	for _, l := range h.Levels {
		byHead := make(map[int64][]int64, 8)
		for vi, headVi := range l.Assignment.Head {
			hid := n.ids[l.NodeOf[headVi]]
			byHead[hid] = append(byHead[hid], n.ids[l.NodeOf[vi]])
		}
		var level HierarchyLevel
		for hid, ms := range byHead {
			sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
			level.Clusters = append(level.Clusters, Cluster{HeadID: hid, Members: ms})
		}
		sort.Slice(level.Clusters, func(i, j int) bool {
			return level.Clusters[i].HeadID < level.Clusters[j].HeadID
		})
		out = append(out, level)
	}
	return out, nil
}
