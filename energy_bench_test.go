package selfstab

import "testing"

// BenchmarkEnergyStep1000 is the energy headline: one Δ(τ) step of a
// 1000-node network carrying a convergecast workload while the battery
// model charges every node's role and radio activity, with energy-aware
// rotation enabled so level crossings keep perturbing the election. The
// battery pass itself must add zero steady-state allocations (see
// TestEnergyPhaseAllocationFree); compare against BenchmarkTrafficStep1000
// for the cost of the accounting itself.
func BenchmarkEnergyStep1000(b *testing.B) {
	net, err := NewRandomNetwork(1000,
		WithSeed(1),
		WithRange(0.1),
		WithCacheTTL(8),
		WithStableWindow(10),
	)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.Stabilize(5000); err != nil {
		b.Fatal(err)
	}
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 32,
		Budget:   2,
		Flows:    []Flow{HotspotFlow(ids[0], 80, 0.2)},
	}); err != nil {
		b.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{
		Capacity: 1000, // nobody depletes inside the measurement window
		Rotation: true,
	}); err != nil {
		b.Fatal(err)
	}
	// Warm up: grow every reusable scratch and install the scale array.
	if err := net.Run(60); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	es, err := net.EnergyStats()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(es.TotalDrain/float64(es.Steps), "drain/step")
}
