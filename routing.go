package selfstab

import (
	"errors"
	"fmt"

	"selfstab/internal/routing"
)

// ErrUnreachable is returned by Route when no path exists between the two
// nodes.
var ErrUnreachable = errors.New("selfstab: destination unreachable")

// Route computes a hierarchical route between two node identifiers over
// the current clustering: within a cluster along intra-cluster shortest
// paths, across clusters along the cluster overlay through gateway nodes.
// This is the hierarchical routing the paper's clustering exists to
// enable; each node's routing state is limited to its own cluster (plus
// overlay summaries at the heads) instead of the whole network.
//
// The returned path lists node identifiers from src to dst inclusive.
// Call after Stabilize: routes follow the current head assignment.
func (n *Network) Route(srcID, dstID int64) ([]int64, error) {
	src, ok := n.indexOfID(srcID)
	if !ok {
		return nil, fmt.Errorf("selfstab: unknown source id %d", srcID)
	}
	dst, ok := n.indexOfID(dstID)
	if !ok {
		return nil, fmt.Errorf("selfstab: unknown destination id %d", dstID)
	}
	table, err := routing.BuildHierarchical(n.g, n.renderAssignment())
	if err != nil {
		return nil, err
	}
	path, err := table.Route(src, dst)
	if err != nil {
		if errors.Is(err, routing.ErrUnreachable) {
			return nil, ErrUnreachable
		}
		return nil, err
	}
	out := make([]int64, len(path))
	for i, u := range path {
		out[i] = n.ids[u]
	}
	return out, nil
}

// RoutingState reports the mean number of routing-table entries per node
// for the two architectures on the current network: flat link-state
// routing (every node knows every destination) versus hierarchical routing
// over the current clusters. Their ratio is the scalability benefit the
// paper's clustering buys.
func (n *Network) RoutingState() (flat, hierarchical float64, err error) {
	ft := routing.BuildFlat(n.g)
	ht, err := routing.BuildHierarchical(n.g, n.renderAssignment())
	if err != nil {
		return 0, 0, err
	}
	return ft.StatePerNode(), ht.StatePerNode(), nil
}

func (n *Network) indexOfID(id int64) (int, bool) {
	for i, v := range n.ids {
		if v == id {
			return i, true
		}
	}
	return 0, false
}
