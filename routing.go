package selfstab

import (
	"errors"
	"fmt"

	"selfstab/internal/routing"
)

// ErrUnreachable is returned by Route when no path exists between the two
// nodes. It is returned consistently for cross-partition pairs: a pair in
// different connected components always fails with ErrUnreachable, never
// with a table-walk error, regardless of how scrambled a mid-convergence
// cluster assignment is.
var ErrUnreachable = errors.New("selfstab: destination unreachable")

// Route computes a hierarchical route between two node identifiers over
// the current clustering: within a cluster along intra-cluster shortest
// paths, across clusters along the cluster overlay through gateway nodes.
// This is the hierarchical routing the paper's clustering exists to
// enable; each node's routing state is limited to its own cluster (plus
// overlay summaries at the heads) instead of the whole network.
//
// The routing table is cached on the Network and rebuilt only when the
// cluster assignment or topology actually changed (epoch-based
// invalidation), so repeated queries on a quiescent network cost a table
// walk, not a rebuild.
//
// The returned path lists node identifiers from src to dst inclusive.
// Call after Stabilize: routes follow the current head assignment.
func (n *Network) Route(srcID, dstID int64) ([]int64, error) {
	src, ok := n.indexOfID(srcID)
	if !ok {
		return nil, fmt.Errorf("selfstab: unknown source id %d", srcID)
	}
	dst, ok := n.indexOfID(dstID)
	if !ok {
		return nil, fmt.Errorf("selfstab: unknown destination id %d", dstID)
	}
	table, err := n.hierTable()
	if err != nil {
		return nil, err
	}
	path, err := table.Route(src, dst)
	if err != nil {
		if errors.Is(err, routing.ErrUnreachable) {
			return nil, ErrUnreachable
		}
		return nil, err
	}
	out := make([]int64, len(path))
	for i, u := range path {
		out[i] = n.ids[u]
	}
	return out, nil
}

// RoutingState reports the mean number of routing-table entries per node
// for the two architectures on the current network: flat link-state
// routing (every node knows every destination) versus hierarchical routing
// over the current clusters. Their ratio is the scalability benefit the
// paper's clustering buys. Both tables are served from the epoch-keyed
// cache shared with Route and the traffic data plane.
func (n *Network) RoutingState() (flat, hierarchical float64, err error) {
	ht, err := n.hierTable()
	if err != nil {
		return 0, 0, err
	}
	return n.flatTable().StatePerNode(), ht.StatePerNode(), nil
}

// hierTable returns the cached hierarchical routing table, rebuilding it
// when the engine epoch moved (state-changing step, topology swap, fault
// injection) since the last build.
func (n *Network) hierTable() (*routing.Hierarchical, error) {
	ep := n.engine.Epoch()
	if n.routeTab == nil || n.routeTabEpoch != ep {
		t, err := routing.BuildHierarchical(n.g, n.renderAssignment())
		if err != nil {
			return nil, err
		}
		n.routeTab, n.routeTabEpoch = t, ep
	}
	return n.routeTab, nil
}

// flatTable returns the cached flat link-state table, rebuilding it only
// when the topology itself changed (flat routing is independent of the
// cluster assignment).
func (n *Network) flatTable() *routing.Flat {
	if n.flatTab == nil || n.flatTabEpoch != n.topoEpoch {
		n.flatTab = routing.BuildFlat(n.g)
		n.flatTabEpoch = n.topoEpoch
	}
	return n.flatTab
}

// flatDistRow returns the flat BFS hop-distance row of src on the current
// topology (-1: unreachable), memoized per source for one topology epoch.
// The traffic data plane's stretch baseline queries this once per flow per
// topology change; without the memo that was one allocating BFS per flow —
// O(flows × BFS) per mobility or churn event even when many flows share a
// source. Within an epoch repeated lookups are a map hit and allocate
// nothing (pinned by TestFlatDistRowMemoized).
func (n *Network) flatDistRow(src int) []int {
	if n.distRows == nil {
		n.distRows = make(map[int][]int)
		n.distRowsEpoch = n.topoEpoch
	} else if n.distRowsEpoch != n.topoEpoch {
		clear(n.distRows)
		n.distRowsEpoch = n.topoEpoch
	}
	row, ok := n.distRows[src]
	if !ok {
		row = n.g.Distances(src)
		n.distRows[src] = row
	}
	return row
}

func (n *Network) indexOfID(id int64) (int, bool) {
	i, ok := n.id2idx[id]
	return i, ok
}
