package selfstab

import (
	"io"

	"selfstab/internal/obs"
)

// Observability. The network's step path — protocol engine, tiled
// frontier machinery, traffic data plane, battery model — reports into a
// single attached obs.Probe: phase begin/end boundaries, per-tile
// halo-merge spans, and counter gauges (frontier length, dense
// fallbacks, halo crossings, compactions, queue occupancy, depletions).
// The probe contract is the obspure rule (see internal/obs): a probe is
// a pure observer, wall-clock reads live only inside the sink, and the
// simulation is bit-identical with the probe attached or detached. A
// detached probe costs the step path nothing but nil checks.

// AttachProbe attaches an instrumentation probe to the whole step path:
// the protocol engine and every currently attached subsystem report into
// it, and subsystems attached later inherit it. nil detaches. The probe
// must obey the obspure rule (pure observer, no engine mutation — see
// internal/obs); attached or not, execution is bit-identical, so the
// probe is deliberately not journaled: snapshots and replays ignore it.
// Call only between steps, like every other mutator.
//
//selfstab:unjournaled pure observation: the probe never feeds back into the simulation, so a replay without it is bit-identical
func (n *Network) AttachProbe(p obs.Probe) {
	n.probe = p
	n.engine.SetProbe(p)
	if n.traffic != nil {
		n.traffic.SetProbe(p)
	}
	if n.energy != nil {
		n.energy.SetProbe(p)
	}
}

// DetachProbe removes the attached probe from the whole step path.
//
//selfstab:unjournaled pure observation: detaching restores the exact nil-probe fast path
func (n *Network) DetachProbe() { n.AttachProbe(nil) }

// Probe returns the attached instrumentation probe (nil when detached).
func (n *Network) Probe() obs.Probe { return n.probe }

// NewCollector builds the default probe sink: a lock-free ring of the
// most recent ringSize per-step records (0: a 512-record default) with
// Prometheus-ready phase histograms and a Chrome trace-event exporter.
// Attach it with AttachProbe; read it concurrently while stepping.
func NewCollector(ringSize int) *obs.Collector {
	return obs.NewCollector(ringSize)
}

// WriteTrace exports the most recent max step records of the attached
// Collector (0: all retained) as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. It is a no-op (and returns nil) when the
// attached probe is not a Collector or no probe is attached.
func (n *Network) WriteTrace(w io.Writer, max int) error {
	if c, ok := n.probe.(*obs.Collector); ok {
		return c.WriteTrace(w, max)
	}
	return nil
}
