package selfstab

import (
	"errors"
	"testing"
)

func TestRouteSameCluster(t *testing.T) {
	net, err := NewRandomNetwork(100, WithSeed(40), WithRange(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	clusters := net.Clusters()
	var big Cluster
	for _, c := range clusters {
		if len(c.Members) > len(big.Members) {
			big = c
		}
	}
	if len(big.Members) < 2 {
		t.Skip("no multi-member cluster")
	}
	path, err := net.Route(big.Members[0], big.Members[len(big.Members)-1])
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != big.Members[0] || path[len(path)-1] != big.Members[len(big.Members)-1] {
		t.Errorf("path endpoints wrong: %v", path)
	}
	// Every hop is a radio neighbor of the previous one.
	for i := 1; i < len(path); i++ {
		prev, _ := net.indexOfID(path[i-1])
		cur, _ := net.indexOfID(path[i])
		if !net.g.HasEdge(prev, cur) {
			t.Fatalf("path uses non-edge %d-%d", path[i-1], path[i])
		}
	}
}

func TestRouteAcrossClusters(t *testing.T) {
	net, err := NewRandomNetwork(150, WithSeed(41), WithRange(0.13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	clusters := net.Clusters()
	if len(clusters) < 2 {
		t.Skip("single cluster network")
	}
	// Try head-to-head routes between several cluster pairs; connected
	// pairs must route, disconnected ones must return ErrUnreachable.
	routed := 0
	for i := 0; i < len(clusters)-1 && routed < 3; i++ {
		path, err := net.Route(clusters[i].HeadID, clusters[i+1].HeadID)
		if errors.Is(err, ErrUnreachable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(path) < 2 {
			t.Errorf("cross-cluster path too short: %v", path)
		}
		routed++
	}
	if routed == 0 {
		t.Skip("no connected cluster pairs sampled")
	}
}

func TestRouteUnknownIDs(t *testing.T) {
	net, err := NewRandomNetwork(20, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Route(99999, 0); err == nil {
		t.Error("unknown src accepted")
	}
	if _, err := net.Route(0, 99999); err == nil {
		t.Error("unknown dst accepted")
	}
}

func TestRoutingStateAdvantage(t *testing.T) {
	net, err := NewRandomNetwork(300, WithSeed(43), WithRange(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(1000); err != nil {
		t.Fatal(err)
	}
	flat, hier, err := net.RoutingState()
	if err != nil {
		t.Fatal(err)
	}
	if flat != float64(net.N()-1) {
		t.Errorf("flat state = %v, want %d", flat, net.N()-1)
	}
	if hier >= flat/2 {
		t.Errorf("hierarchical state %v not substantially below flat %v", hier, flat)
	}
}

// TestRoutePartitionedNetwork: Route between disconnected components
// returns ErrUnreachable for every pair orientation, and intra-component
// routing keeps working; RoutingState stays well-defined on a partitioned
// network.
func TestRoutePartitionedNetwork(t *testing.T) {
	pts := []Point{
		{0.1, 0.1}, {0.12, 0.1}, {0.1, 0.12},
		{0.9, 0.9}, {0.88, 0.9}, {0.9, 0.88},
	}
	net, err := NewNetwork(pts, WithSeed(8), WithRange(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	ids := net.IDs()
	for _, a := range []int{0, 1, 2} {
		for _, b := range []int{3, 4, 5} {
			if _, err := net.Route(ids[a], ids[b]); !errors.Is(err, ErrUnreachable) {
				t.Errorf("Route(%d,%d) = %v, want ErrUnreachable", ids[a], ids[b], err)
			}
			if _, err := net.Route(ids[b], ids[a]); !errors.Is(err, ErrUnreachable) {
				t.Errorf("Route(%d,%d) = %v, want ErrUnreachable", ids[b], ids[a], err)
			}
		}
	}
	if _, err := net.Route(ids[0], ids[2]); err != nil {
		t.Errorf("intra-component route failed: %v", err)
	}
	if _, _, err := net.RoutingState(); err != nil {
		t.Errorf("RoutingState on a partitioned network: %v", err)
	}
}

// TestRouteSingleNodeNetwork: the degenerate one-node network routes to
// itself and reports zero routing state.
func TestRouteSingleNodeNetwork(t *testing.T) {
	net, err := NewNetwork([]Point{{0.5, 0.5}}, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(100); err != nil {
		t.Fatal(err)
	}
	id := net.IDs()[0]
	path, err := net.Route(id, id)
	if err != nil || len(path) != 1 || path[0] != id {
		t.Errorf("Route(self, self) = (%v, %v), want ([%d], nil)", path, err, id)
	}
	flat, hier, err := net.RoutingState()
	if err != nil {
		t.Fatal(err)
	}
	if flat != 0 || hier != 0 {
		t.Errorf("routing state on 1 node = (%v, %v), want (0, 0)", flat, hier)
	}
}

// TestRoutingCacheInvalidation pins the epoch contract: repeated queries
// on a quiescent network reuse the same table, and anything that can
// change the clustering or topology (faults, mobility) forces a rebuild.
func TestRoutingCacheInvalidation(t *testing.T) {
	net, err := NewRandomNetwork(120, WithSeed(44), WithRange(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	t1, err := net.hierTable()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := net.hierTable()
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("quiescent network rebuilt the routing table between queries")
	}
	// Steps on a stabilized network change nothing: the table survives.
	if err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	t3, err := net.hierTable()
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t3 {
		t.Error("no-op steps invalidated the routing table")
	}
	// Fault injection must invalidate.
	net.InjectFaults(1)
	t4, err := net.hierTable()
	if err != nil {
		t.Fatal(err)
	}
	if t4 == t1 {
		t.Error("fault injection did not invalidate the routing table")
	}
	// Mobility must invalidate both tables.
	f1 := net.flatTable()
	if f2 := net.flatTable(); f1 != f2 {
		t.Error("static topology rebuilt the flat table between queries")
	}
	pos := net.Positions()
	for i := range pos {
		pos[i].X = clamp01(pos[i].X + 0.02)
	}
	if err := net.SetPositions(pos); err != nil {
		t.Fatal(err)
	}
	if f3 := net.flatTable(); f3 == f1 {
		t.Error("mobility did not invalidate the flat table")
	}
	t5, err := net.hierTable()
	if err != nil {
		t.Fatal(err)
	}
	if t5 == t4 {
		t.Error("mobility did not invalidate the hierarchical table")
	}
}
