package selfstab

import (
	"errors"
	"testing"
)

func TestRouteSameCluster(t *testing.T) {
	net, err := NewRandomNetwork(100, WithSeed(40), WithRange(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	clusters := net.Clusters()
	var big Cluster
	for _, c := range clusters {
		if len(c.Members) > len(big.Members) {
			big = c
		}
	}
	if len(big.Members) < 2 {
		t.Skip("no multi-member cluster")
	}
	path, err := net.Route(big.Members[0], big.Members[len(big.Members)-1])
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != big.Members[0] || path[len(path)-1] != big.Members[len(big.Members)-1] {
		t.Errorf("path endpoints wrong: %v", path)
	}
	// Every hop is a radio neighbor of the previous one.
	for i := 1; i < len(path); i++ {
		prev, _ := net.indexOfID(path[i-1])
		cur, _ := net.indexOfID(path[i])
		if !net.g.HasEdge(prev, cur) {
			t.Fatalf("path uses non-edge %d-%d", path[i-1], path[i])
		}
	}
}

func TestRouteAcrossClusters(t *testing.T) {
	net, err := NewRandomNetwork(150, WithSeed(41), WithRange(0.13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	clusters := net.Clusters()
	if len(clusters) < 2 {
		t.Skip("single cluster network")
	}
	// Try head-to-head routes between several cluster pairs; connected
	// pairs must route, disconnected ones must return ErrUnreachable.
	routed := 0
	for i := 0; i < len(clusters)-1 && routed < 3; i++ {
		path, err := net.Route(clusters[i].HeadID, clusters[i+1].HeadID)
		if errors.Is(err, ErrUnreachable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(path) < 2 {
			t.Errorf("cross-cluster path too short: %v", path)
		}
		routed++
	}
	if routed == 0 {
		t.Skip("no connected cluster pairs sampled")
	}
}

func TestRouteUnknownIDs(t *testing.T) {
	net, err := NewRandomNetwork(20, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Route(99999, 0); err == nil {
		t.Error("unknown src accepted")
	}
	if _, err := net.Route(0, 99999); err == nil {
		t.Error("unknown dst accepted")
	}
}

func TestRoutingStateAdvantage(t *testing.T) {
	net, err := NewRandomNetwork(300, WithSeed(43), WithRange(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(1000); err != nil {
		t.Fatal(err)
	}
	flat, hier, err := net.RoutingState()
	if err != nil {
		t.Fatal(err)
	}
	if flat != float64(net.N()-1) {
		t.Errorf("flat state = %v, want %d", flat, net.N()-1)
	}
	if hier >= flat/2 {
		t.Errorf("hierarchical state %v not substantially below flat %v", hier, flat)
	}
}
