package selfstab

import (
	"fmt"

	"selfstab/internal/snapshot"
)

// Compact recycles the index slots of permanently departed nodes. Slots
// are otherwise never reused — a removed or depleted node keeps its
// dense index so every per-node array across the stack stays aligned —
// which means that under sustained add/remove churn, memory tracks
// cumulative arrivals instead of the operating population. Compact
// closes that gap: dead slots are dropped and the survivors renumbered,
// under one index remap propagated atomically to every structure that
// caches indices — the spatial grid and unit-disk graph, the step
// engine, the traffic queues and flow endpoints, the energy arrays, the
// convergence ledger's open episode, and the cached routing tables
// (which rebuild on their epoch check).
//
// Compaction is invisible to everything keyed by node identifier: the
// protocol state, Clusters, Stats, TrafficStats, EnergyStats and
// ConvergenceStats are all bit-identical to a run that never compacted
// (survivors keep their relative order, so every index-ordered loop
// visits them in the same sequence). What does change is the meaning of
// node *indices*: Positions, State(i) and friends renumber, and N()
// shrinks by the returned count. Call between steps — never from a hook.
func (n *Network) Compact() (removed int, err error) {
	oldN := len(n.pts)
	if err := n.applyOp(snapshot.Op{Kind: snapshot.OpCompact}); err != nil {
		return 0, err
	}
	return oldN - len(n.pts), nil
}

// compactImpl is the journaled implementation behind Compact. It is also
// what the auto-compaction threshold calls directly: a triggered
// compaction is a deterministic consequence of the journaled
// SetAutoCompact op, so journaling it too would compact twice on replay.
//
//selfstab:unjournaled auto-compaction replays as a deterministic consequence of the SetAutoCompact op; journaling it too would compact twice
func (n *Network) compactImpl() (removed int, err error) {
	remap, newN := n.engine.CompactionRemap()
	if remap == nil {
		return 0, nil
	}
	// Order matters and mirrors construction: topology first (the engine
	// validates its graph against newN), then the engine, then the
	// attached subsystems, then the Network's own arrays.
	if err := n.grid.Compact(remap, newN); err != nil {
		return 0, fmt.Errorf("selfstab: compact: %w", err)
	}
	if err := n.engine.Compact(remap, newN); err != nil {
		return 0, fmt.Errorf("selfstab: compact: %w", err)
	}
	if n.traffic != nil {
		if err := n.traffic.Compact(remap, newN); err != nil {
			return 0, fmt.Errorf("selfstab: compact: %w", err)
		}
	}
	if n.energy != nil {
		if err := n.energy.Compact(remap, newN); err != nil {
			return 0, fmt.Errorf("selfstab: compact: %w", err)
		}
	}
	for old, nw := range remap {
		if nw < 0 {
			delete(n.id2idx, n.ids[old])
			continue
		}
		i := int(nw)
		n.pts[i] = n.pts[old]
		n.ids[i] = n.ids[old]
		n.id2idx[n.ids[i]] = i
		if n.churn != nil {
			n.churn.sleepUntil[i] = n.churn.sleepUntil[old]
		}
	}
	n.pts = n.pts[:newN]
	n.ids = n.ids[:newN]
	if n.churn != nil {
		n.churn.sleepUntil = n.churn.sleepUntil[:newN]
		n.churn.compactSleepers(remap)
	}
	n.topoEpoch++ // flat tables and distance rows are index-keyed
	return len(remap) - newN, nil
}

// SetAutoCompact installs a dead-slot threshold: before every step, if
// at least frac of the slots are dead (and at least one is), the network
// compacts itself. 0 disables auto-compaction (the default); values in
// (0, 1] bound live memory under sustained add/remove churn to
// operating-population × 1/(1-frac) slots. The caveat of Compact
// applies: each triggered compaction renumbers node indices.
func (n *Network) SetAutoCompact(frac float64) error {
	return n.applyOp(snapshot.Op{Kind: snapshot.OpSetAutoCompact, Frac: frac})
}

// maybeAutoCompact runs a compaction when the dead-slot fraction reached
// the configured threshold. O(1) when below it.
func (n *Network) maybeAutoCompact() error {
	if n.autoCompact <= 0 {
		return nil
	}
	dead := n.engine.DeadCount()
	if dead == 0 || float64(dead) < n.autoCompact*float64(len(n.pts)) {
		return nil
	}
	_, err := n.compactImpl()
	return err
}
