package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFigure1(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fig1.svg")
	if err := run([]string{"-figure", "1", "-out", out, "-quiet"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

func TestRunFigure3NoFile(t *testing.T) {
	if err := run([]string{"-figure", "3", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "9"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-figure", "x"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnwritableOutput(t *testing.T) {
	if err := run([]string{"-figure", "1", "-out", "/nonexistent-dir/f.svg", "-quiet"}); err == nil {
		t.Error("unwritable path accepted")
	}
}
