// Command selfstab-viz regenerates the paper's figures as SVG files (and
// prints an ASCII preview).
//
// Usage:
//
//	selfstab-viz -figure 2 -out figure2.svg     # grid without DAG
//	selfstab-viz -figure 3 -out figure3.svg     # grid with DAG
//	selfstab-viz -figure 1 -out figure1.svg     # the worked example
package main

import (
	"flag"
	"fmt"
	"os"

	"selfstab/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "selfstab-viz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("selfstab-viz", flag.ContinueOnError)
	var (
		figure = fs.Int("figure", 3, "paper figure to regenerate: 1, 2 or 3")
		out    = fs.String("out", "", "SVG output file (empty: skip SVG, print ASCII only)")
		seed   = fs.Int64("seed", 1, "random seed")
		r      = fs.Float64("r", 0.05, "transmission range (figures 2-3)")
		quiet  = fs.Bool("quiet", false, "suppress the ASCII preview")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var fig *experiment.FigureResult
	var err error
	switch *figure {
	case 1:
		fig, err = experiment.Figure1()
	case 2:
		fig, err = experiment.FigureGrid(false, *seed, *r)
	case 3:
		fig, err = experiment.FigureGrid(true, *seed, *r)
	default:
		return fmt.Errorf("unknown figure %d (want 1, 2 or 3)", *figure)
	}
	if err != nil {
		return err
	}

	fmt.Println(fig.Caption)
	if !*quiet {
		fmt.Println(fig.ASCII)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(fig.SVG), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}
	return nil
}
