package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	goruntime "runtime"
	"strings"
	"text/tabwriter"
	"time"

	"selfstab"
)

// runScale exercises the engine at production scale from the command
// line: build a large network (default 100k nodes at constant mean
// degree), cold-stabilize it, and measure what a step costs once the
// network is quiescent versus under sustained churn — with dead-slot
// auto-compaction keeping the slot count tied to the operating
// population. The quiescent scenario is the frontier engine's O(1)
// claim made visible; the churn scenario is the compaction story.
func runScale(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("selfstab-sim scale", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 100_000, "network size")
		degree   = fs.Float64("degree", 10, "target mean radio degree (sets the range)")
		steps    = fs.Int("steps", 200, "steps to measure per scenario")
		seed     = fs.Int64("seed", 1, "master random seed")
		scenario = fs.String("scenario", "quiescent", "scenario: quiescent, churn")
		compact  = fs.Float64("compact", 0.25, "dead-slot fraction triggering auto-compaction (churn scenario; 0 disables)")
		churnPct = fs.Float64("churnrate", 0.0005, "per-step arrival and departure rate as a fraction of the population (churn scenario)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch strings.ToLower(*scenario) {
	case "quiescent", "churn":
	default:
		return usageErrorf("unknown scale scenario %q (want quiescent or churn)", *scenario)
	}
	if *nodes < 10 {
		return usageErrorf("scale needs at least 10 nodes, got %d", *nodes)
	}
	if *degree <= 0 {
		return usageErrorf("degree %v must be positive", *degree)
	}
	if *steps < 1 {
		return usageErrorf("steps %d must be at least 1", *steps)
	}
	if *compact < 0 || *compact > 1 {
		return usageErrorf("compact fraction %v outside [0, 1]", *compact)
	}
	if *churnPct < 0 {
		return usageErrorf("churnrate %v must be non-negative", *churnPct)
	}

	radioRng := math.Sqrt(*degree / (math.Pi * float64(*nodes)))
	if radioRng > 1 {
		radioRng = 1
	}
	fmt.Fprintf(out, "scale: %d nodes, range %.4f (mean degree ~%.0f), %d measured steps, scenario %s\n",
		*nodes, radioRng, *degree, *steps, strings.ToLower(*scenario))

	buildStart := time.Now()
	net, err := selfstab.NewRandomNetwork(*nodes,
		selfstab.WithSeed(*seed),
		selfstab.WithRange(radioRng),
		selfstab.WithCacheTTL(8),
		selfstab.WithStableWindow(10),
	)
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)

	stabStart := time.Now()
	at, err := net.Stabilize(10_000)
	if err != nil {
		return err
	}
	stabTime := time.Since(stabStart)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "build\t%v\n", buildTime.Round(time.Millisecond))
	fmt.Fprintf(w, "cold stabilize\t%v\t(stable at step %d)\n", stabTime.Round(time.Millisecond), at)
	fmt.Fprintf(w, "frontier stepping\t%v\n", net.SparseStepping())

	switch strings.ToLower(*scenario) {
	case "quiescent":
		runStart := time.Now()
		if err := net.Run(*steps); err != nil {
			return err
		}
		perStep := time.Since(runStart) / time.Duration(*steps)
		fmt.Fprintf(w, "quiescent step\t%v\t(O(frontier): cost tracks activity, not size)\n", perStep)
	case "churn":
		if err := net.SetAutoCompact(*compact); err != nil {
			return err
		}
		rate := *churnPct * float64(*nodes)
		if err := net.AttachChurn(selfstab.ChurnConfig{
			ArrivalRate:   rate,
			DepartureRate: rate,
		}); err != nil {
			return err
		}
		slotsBefore := net.N()
		runStart := time.Now()
		if err := net.Run(*steps); err != nil {
			return err
		}
		perStep := time.Since(runStart) / time.Duration(*steps)
		alive, sleeping, dead := net.Population()
		fmt.Fprintf(w, "churn step\t%v\t(~%.0f arrivals + %.0f departures per step)\n", perStep, rate, rate)
		fmt.Fprintf(w, "slots\t%d -> %d\t(operating %d, dead %d; auto-compact at %.0f%%)\n",
			slotsBefore, net.N(), alive+sleeping, dead, *compact*100)
		cs := net.ConvergenceStats()
		fmt.Fprintf(w, "disruption episodes\t%d\t(mean %.1f steps to restabilize)\n",
			len(cs.Disruptions), cs.MeanStepsToStabilize)
	}
	var mem goruntime.MemStats
	goruntime.ReadMemStats(&mem)
	fmt.Fprintf(w, "heap in use\t%.1f MB\n", float64(mem.HeapInuse)/(1<<20))
	return w.Flush()
}
