package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"selfstab"
	"selfstab/internal/rng"
)

// runTraffic drives the packet-level traffic subsystem from the command
// line: build a network, attach a workload, run a scenario, report the
// delivery/latency/load ledger.
func runTraffic(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("selfstab-sim traffic", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 1000, "network size")
		steps    = fs.Int("steps", 500, "traffic steps to run after stabilization")
		flows    = fs.Int("flows", 100, "number of concurrent flows")
		workload = fs.String("workload", "mixed", "workload: cbr, poisson, hotspot, mixed")
		rate     = fs.Float64("rate", 0.2, "per-flow injection rate (packets per step)")
		seed     = fs.Int64("seed", 1, "master random seed")
		radioRng = fs.Float64("range", 0.1, "radio transmission range")
		queue    = fs.Int("queue", 32, "per-node queue capacity")
		budget   = fs.Int("budget", 1, "packets forwarded per node per step")
		scenario = fs.String("scenario", "static", "scenario: static, mobility, faults")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate names up front: a typo must fail fast with usage, not
	// after a full network build and stabilization.
	switch strings.ToLower(*scenario) {
	case "static", "mobility", "faults":
	default:
		return usageErrorf("unknown traffic scenario %q (want static, mobility or faults)", *scenario)
	}
	switch strings.ToLower(*workload) {
	case "cbr", "poisson", "hotspot", "mixed":
	default:
		return usageErrorf("unknown workload %q (want cbr, poisson, hotspot or mixed)", *workload)
	}

	net, err := selfstab.NewRandomNetwork(*nodes,
		selfstab.WithSeed(*seed),
		selfstab.WithRange(*radioRng),
		selfstab.WithCacheTTL(8),
	)
	if err != nil {
		return err
	}
	if _, err := net.Stabilize(5000); err != nil {
		return err
	}
	specs, err := buildWorkload(net, *workload, *flows, *rate, *seed)
	if err != nil {
		return err
	}
	if err := net.AttachTraffic(selfstab.TrafficConfig{
		QueueCap: *queue,
		Budget:   *budget,
		Flows:    specs,
	}); err != nil {
		return err
	}

	switch strings.ToLower(*scenario) {
	case "static":
		if err := net.Run(*steps); err != nil {
			return err
		}
	case "mobility":
		if err := runMobilityScenario(net, *steps, *seed); err != nil {
			return err
		}
	case "faults":
		if err := net.Run(*steps / 2); err != nil {
			return err
		}
		net.InjectFaults(0.5)
		if err := net.Run(*steps - *steps/2); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	s, err := net.TrafficStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "traffic %s/%s: %d nodes, %d flows, %d steps\n",
		*scenario, *workload, net.N(), len(specs), *steps)
	renderTrafficStats(out, s)
	return nil
}

// buildWorkload expands a named workload into flows over the network's
// identifiers, deterministically from the seed.
func buildWorkload(net *selfstab.Network, workload string, flows int, rate float64, seed int64) ([]selfstab.Flow, error) {
	ids := net.IDs()
	if len(ids) < 2 {
		return nil, fmt.Errorf("need at least 2 nodes for traffic")
	}
	// One labeled stream off the master seed: adding draws to another
	// subsystem (say, the mobility walk below) can never perturb the
	// workload, which keeps every scenario reproducible from -seed alone.
	r := rng.New(seed).Split("workload")
	pair := func() (int64, int64) {
		src := ids[r.Intn(len(ids))]
		dst := ids[r.Intn(len(ids))]
		for dst == src {
			dst = ids[r.Intn(len(ids))]
		}
		return src, dst
	}
	var out []selfstab.Flow
	switch strings.ToLower(workload) {
	case "cbr":
		for i := 0; i < flows; i++ {
			src, dst := pair()
			out = append(out, selfstab.CBRFlow(src, dst, rate))
		}
	case "poisson":
		for i := 0; i < flows; i++ {
			src, dst := pair()
			out = append(out, selfstab.PoissonFlow(src, dst, rate))
		}
	case "hotspot":
		sources := flows
		if max := len(ids) - 1; sources > max {
			sources = max
		}
		out = append(out, selfstab.HotspotFlow(ids[r.Intn(len(ids))], sources, rate))
	case "mixed":
		unicast := flows * 9 / 10
		for i := 0; i < unicast; i++ {
			src, dst := pair()
			if i%2 == 0 {
				out = append(out, selfstab.CBRFlow(src, dst, rate))
			} else {
				out = append(out, selfstab.PoissonFlow(src, dst, rate))
			}
		}
		if hot := flows - unicast; hot > 0 {
			out = append(out, selfstab.HotspotFlow(ids[r.Intn(len(ids))], hot, rate))
		}
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
	return out, nil
}

// runMobilityScenario moves every node on a random walk between bursts of
// protocol+traffic steps, the cmd-line twin of the mobility experiments.
func runMobilityScenario(net *selfstab.Network, steps int, seed int64) error {
	const (
		burst    = 10    // protocol steps between motion samples
		stepSize = 0.004 // region units moved per sample
	)
	r := rng.New(seed).Split("mobility-walk")
	pos := net.Positions()
	dir := make([]float64, len(pos))
	for i := range dir {
		dir[i] = r.Float64() * 2 * math.Pi
	}
	for done := 0; done < steps; {
		n := burst
		if rem := steps - done; n > rem {
			n = rem
		}
		if err := net.Run(n); err != nil {
			return err
		}
		done += n
		for i := range pos {
			if r.Float64() < 0.1 {
				dir[i] = r.Float64() * 2 * math.Pi
			}
			pos[i].X = reflect01(pos[i].X + stepSize*math.Cos(dir[i]))
			pos[i].Y = reflect01(pos[i].Y + stepSize*math.Sin(dir[i]))
		}
		if err := net.SetPositions(pos); err != nil {
			return err
		}
	}
	return nil
}

func reflect01(v float64) float64 {
	if v < 0 {
		return -v
	}
	if v > 1 {
		return 2 - v
	}
	return v
}

// renderTrafficStats prints the ledger as an aligned table.
func renderTrafficStats(out io.Writer, s selfstab.TrafficStats) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  offered\t%d\n", s.Offered)
	fmt.Fprintf(w, "  delivered\t%d\t(ratio %.3f)\n", s.Delivered, s.DeliveryRatio)
	fmt.Fprintf(w, "  in flight\t%d\n", s.InFlight)
	fmt.Fprintf(w, "  drops\t%d\tqueue %d, no-route %d, ttl %d, dead-endpoint %d\n",
		s.DropsQueue+s.DropsNoRoute+s.DropsTTL+s.DropsDeadEndpoint,
		s.DropsQueue, s.DropsNoRoute, s.DropsTTL, s.DropsDeadEndpoint)
	fmt.Fprintf(w, "  hops (mean)\t%.2f\tstretch vs flat %.3f\n", s.MeanHops, s.MeanStretch)
	fmt.Fprintf(w, "  latency steps\tp50 %d\tp90 %d, p99 %d, max %d\n",
		s.LatencyP50, s.LatencyP90, s.LatencyP99, s.LatencyMax)
	fmt.Fprintf(w, "  node load\tmean %.1f\tmax %d\n", s.MeanLoad, s.MaxLoad)
	fmt.Fprintf(w, "  head load share\t%.1f%%\t(heads are %.1f%% of nodes)\n",
		100*s.HeadLoadShare, 100*s.HeadFraction)
	w.Flush()
}
