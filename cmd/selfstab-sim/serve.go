package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selfstab"
	"selfstab/internal/serve"
)

// runServe boots the live serving mode: a long-running world stepping in
// scaled real time behind the internal/serve HTTP API, with graceful
// drain on SIGINT/SIGTERM (the in-flight step completes; with
// -snapshot-dir a final checkpoint is written).
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 500, "network size (uniform random deployment)")
		seed     = fs.Int64("seed", 1, "master random seed")
		radioRng = fs.Float64("range", 0.1, "radio transmission range")
		cachettl = fs.Int("cachettl", 8, "neighbor cache TTL in steps (needed for churn and energy)")
		addr     = fs.String("addr", "127.0.0.1:8650", "HTTP listen address")
		sps      = fs.Float64("sps", 10, "simulation steps per second")
		preload  = fs.String("preload", "none", "scenario preloaded before serving: none, traffic, churn or mixed")
		snapDir  = fs.String("snapshot-dir", "", "directory for POST /snapshot checkpoints (empty: stream-only)")
		restore  = fs.String("restore", "", "snapshot file to restore the world from instead of building one")
		drain    = fs.Bool("drain-snapshot", false, "write a final checkpoint to -snapshot-dir on shutdown")
		pprofOn  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the service address")
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageErrorf("serve: unexpected argument %q", fs.Arg(0))
	}
	// Strict validation, all before any network is built or port bound.
	if *restore != "" {
		for _, conflicting := range []string{"nodes", "seed", "range", "cachettl"} {
			if flagPassed(fs, conflicting) {
				return usageErrorf("serve: -restore rebuilds the world from the snapshot's blueprint; -%s conflicts", conflicting)
			}
		}
		if *preload != "none" {
			return usageErrorf("serve: -restore replays the snapshot's own journal; -preload conflicts")
		}
	} else if *nodes < 2 {
		return usageErrorf("serve: need at least 2 nodes, got %d", *nodes)
	}
	if *sps <= 0 {
		return usageErrorf("serve: -sps %v must be positive", *sps)
	}
	if *radioRng <= 0 || *radioRng > 1 {
		return usageErrorf("serve: -range %v outside (0, 1]", *radioRng)
	}
	if *cachettl < 1 {
		return usageErrorf("serve: -cachettl %d must be at least 1", *cachettl)
	}
	switch *preload {
	case "none", "traffic", "churn", "mixed":
	default:
		return usageErrorf("serve: unknown preload scenario %q (want none, traffic, churn or mixed)", *preload)
	}
	if *addr == "" {
		return usageErrorf("serve: -addr must not be empty")
	}
	if *drain && *snapDir == "" {
		return usageErrorf("serve: -drain-snapshot requires -snapshot-dir")
	}

	world, err := serveWorld(*restore, *nodes, *seed, *radioRng, *cachettl, *preload, out)
	if err != nil {
		return err
	}
	srv, err := serve.New(world, serve.Config{
		StepsPerSecond: *sps,
		SnapshotDir:    *snapDir,
		DrainSnapshot:  *drain,
		EnablePprof:    *pprofOn,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			httpErr <- err
		}
		close(httpErr)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(out, "serving %d nodes at step %d on http://%s (%g steps/s)\n",
		world.N(), world.StepCount(), ln.Addr(), *sps)

	runErr := srv.Run(ctx) // blocks until signal or step error
	stop()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	if err, ok := <-httpErr; ok && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		return runErr
	}
	fmt.Fprintf(out, "drained at step %d\n", world.StepCount())
	return nil
}

// serveWorld builds (or restores) and prepares the served world.
func serveWorld(restore string, nodes int, seed int64, radioRng float64, cachettl int, preload string, out io.Writer) (*selfstab.Network, error) {
	if restore != "" {
		f, err := os.Open(restore)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		defer f.Close()
		world, err := selfstab.ReadSnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("serve: restore %s: %w", restore, err)
		}
		fmt.Fprintf(out, "restored %s\n", restore)
		return world, nil
	}
	world, err := selfstab.NewRandomNetwork(nodes,
		selfstab.WithSeed(seed), selfstab.WithRange(radioRng), selfstab.WithCacheTTL(cachettl))
	if err != nil {
		return nil, err
	}
	if _, err := world.Stabilize(5000); err != nil {
		return nil, fmt.Errorf("serve: cold stabilization: %w", err)
	}
	if preload == "traffic" || preload == "mixed" {
		ids := world.IDs()
		if err := world.AttachTraffic(selfstab.TrafficConfig{
			Flows: []selfstab.Flow{
				selfstab.CBRFlow(ids[0], ids[len(ids)-1], 0.5),
				selfstab.HotspotFlow(ids[len(ids)/2], min(10, nodes-1), 0.2),
			},
		}); err != nil {
			return nil, err
		}
	}
	if preload == "churn" || preload == "mixed" {
		if err := world.AttachChurn(selfstab.ChurnConfig{
			ArrivalRate:   0.1,
			DepartureRate: 0.05,
			CrashRate:     0.05,
			SleepRate:     0.05,
		}); err != nil {
			return nil, err
		}
	}
	return world, nil
}
