package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRanges(t *testing.T) {
	tests := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"0.05,0.08,0.1", 3, false},
		{"0.05", 1, false},
		{" 0.05 , 0.1 ", 2, false},
		{"", 0, true},
		{"abc", 0, true},
		{",,", 0, true},
	}
	for _, tt := range tests {
		got, err := parseRanges(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseRanges(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && len(got) != tt.want {
			t.Errorf("parseRanges(%q) = %v, want %d values", tt.in, got, tt.want)
		}
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1-density") || !strings.Contains(out, "1.25") {
		t.Errorf("table1 output missing expected cells:\n%s", out)
	}
}

func TestRunTable3Small(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "table3", "-runs", "2", "-lambda", "200", "-ranges", "0.1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Grid") {
		t.Errorf("table3 output:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-runs", "abc"}, &buf); err == nil {
		t.Error("bad flag value accepted")
	}
	if err := run([]string{"-exp", "table3", "-ranges", "zzz"}, &buf); err == nil {
		t.Error("bad ranges accepted")
	}
}

func TestRunInvalidOptions(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table3", "-runs", "0"}, &buf); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestRunTrafficStatic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"traffic", "-nodes", "120", "-steps", "60", "-flows", "10", "-scenario", "static", "-budget", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"delivered", "head load share", "stretch", "latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("traffic output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTrafficScenariosAndWorkloads(t *testing.T) {
	for _, args := range [][]string{
		{"traffic", "-nodes", "100", "-steps", "40", "-flows", "8", "-scenario", "mobility"},
		{"traffic", "-nodes", "100", "-steps", "40", "-flows", "8", "-scenario", "faults"},
		{"traffic", "-nodes", "100", "-steps", "40", "-flows", "8", "-workload", "hotspot"},
		{"traffic", "-nodes", "100", "-steps", "40", "-flows", "8", "-workload", "cbr"},
		{"traffic", "-nodes", "100", "-steps", "40", "-flows", "8", "-workload", "poisson"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestRunTrafficBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"traffic", "-scenario", "nope", "-nodes", "50", "-steps", "5"}, &buf); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"traffic", "-workload", "nope", "-nodes", "50", "-steps", "5"}, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"traffic", "-steps", "abc"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunUnknownNamesExitNonZero is the CLI error-surface contract,
// table-driven: an unknown subcommand, experiment, traffic/churn scenario
// or workload must come back as an error (main prints it on stderr and
// exits 1) whose message carries the usage line — and must fail fast,
// before any network is built.
func TestRunUnknownNamesExitNonZero(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring the error must carry
	}{
		{"unknown subcommand", []string{"bogus"}, "unknown subcommand"},
		{"unknown experiment", []string{"-exp", "nope"}, "unknown experiment"},
		{"unknown traffic scenario", []string{"traffic", "-scenario", "nope"}, "unknown traffic scenario"},
		{"unknown traffic workload", []string{"traffic", "-workload", "nope"}, "unknown workload"},
		{"unknown churn scenario", []string{"churn", "-scenario", "nope"}, "unknown churn scenario"},
		{"unknown energy scenario", []string{"energy", "-scenario", "nope"}, "unknown energy scenario"},
		{"unknown scale scenario", []string{"scale", "-scenario", "nope"}, "unknown scale scenario"},
		{"scale too few nodes", []string{"scale", "-nodes", "3"}, "at least 10 nodes"},
		{"scale bad compact fraction", []string{"scale", "-compact", "1.5"}, "outside [0, 1]"},
		{"unknown serve preload", []string{"serve", "-preload", "nope"}, "unknown preload scenario"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tt.args, &buf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want usage error", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("run(%v) error %q, want it to mention %q", tt.args, err, tt.want)
			}
			if !strings.Contains(err.Error(), "usage: selfstab-sim") {
				t.Errorf("run(%v) error %q lacks the usage line", tt.args, err)
			}
			if buf.Len() != 0 {
				t.Errorf("run(%v) wrote %q to stdout on a usage error", tt.args, buf.String())
			}
		})
	}
}

// TestRunChurnScenarios drives the churn subcommand end to end on small
// networks.
func TestRunChurnScenarios(t *testing.T) {
	for _, args := range [][]string{
		{"churn", "-nodes", "80", "-steps", "40", "-arrival", "0.2", "-departure", "0.2",
			"-crash", "0.3", "-sleep", "0.3", "-sleepsteps", "6", "-scenario", "steady"},
		{"churn", "-nodes", "80", "-steps", "40", "-crash", "0.5", "-scenario", "burst"},
		{"churn", "-nodes", "80", "-steps", "40", "-scenario", "blackout", "-flows", "4"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Errorf("%v: %v", args, err)
			continue
		}
		out := buf.String()
		for _, want := range []string{"episodes", "alive", "clusters"} {
			if !strings.Contains(out, want) {
				t.Errorf("%v output missing %q:\n%s", args, want, out)
			}
		}
	}
}

// TestRunChurnBadFlags: malformed flag values exit non-zero.
func TestRunChurnBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"churn", "-steps", "abc"}, &buf); err == nil {
		t.Error("bad churn flag accepted")
	}
	if err := run([]string{"churn", "-nodes", "50", "-steps", "5", "-crash", "-2"}, &buf); err == nil {
		t.Error("negative churn rate accepted")
	}
}

// TestRunScaleScenarios drives the scale subcommand end to end on small
// networks (this gates wiring, not timing).
func TestRunScaleScenarios(t *testing.T) {
	for _, tt := range []struct {
		args []string
		want []string
	}{
		{[]string{"scale", "-nodes", "400", "-steps", "30", "-scenario", "quiescent"},
			[]string{"cold stabilize", "quiescent step", "frontier stepping"}},
		{[]string{"scale", "-nodes", "400", "-steps", "60", "-scenario", "churn",
			"-churnrate", "0.005", "-compact", "0.2"},
			[]string{"churn step", "slots", "auto-compact"}},
	} {
		var buf bytes.Buffer
		if err := run(tt.args, &buf); err != nil {
			t.Errorf("%v: %v", tt.args, err)
			continue
		}
		out := buf.String()
		for _, want := range tt.want {
			if !strings.Contains(out, want) {
				t.Errorf("%v output lacks %q:\n%s", tt.args, want, out)
			}
		}
	}
}

// TestRunChurnBadRatesFailFast: invalid rates are rejected before any
// network is built, in every scenario — including blackout, which never
// attaches the schedule.
func TestRunChurnBadRatesFailFast(t *testing.T) {
	for _, args := range [][]string{
		{"churn", "-scenario", "blackout", "-crash", "-1"},
		{"churn", "-scenario", "blackout", "-sleepsteps", "-5"},
		{"churn", "-scenario", "burst", "-departure", "-0.5"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted an invalid churn config", args)
		}
	}
}

// TestRunServeBadArgs is the serve subcommand's validation contract,
// table-driven: every malformed flag combination fails fast with the
// usage line — before any world is built or port bound — and writes
// nothing to stdout.
func TestRunServeBadArgs(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"too few nodes", []string{"serve", "-nodes", "1"}, "at least 2 nodes"},
		{"zero sps", []string{"serve", "-sps", "0"}, "must be positive"},
		{"negative sps", []string{"serve", "-sps", "-3"}, "must be positive"},
		{"bad range", []string{"serve", "-range", "0"}, "outside (0, 1]"},
		{"range above one", []string{"serve", "-range", "1.5"}, "outside (0, 1]"},
		{"zero cachettl", []string{"serve", "-cachettl", "0"}, "at least 1"},
		{"unknown preload", []string{"serve", "-preload", "storm"}, "unknown preload scenario"},
		{"empty addr", []string{"serve", "-addr", ""}, "must not be empty"},
		{"drain without dir", []string{"serve", "-drain-snapshot"}, "requires -snapshot-dir"},
		{"restore plus nodes", []string{"serve", "-restore", "x.json", "-nodes", "100"}, "conflicts"},
		{"restore plus seed", []string{"serve", "-restore", "x.json", "-seed", "2"}, "conflicts"},
		{"restore plus preload", []string{"serve", "-restore", "x.json", "-preload", "churn"}, "conflicts"},
		{"positional argument", []string{"serve", "leftover"}, "unexpected argument"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tt.args, &buf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want usage error", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("run(%v) error %q, want it to mention %q", tt.args, err, tt.want)
			}
			if !strings.Contains(err.Error(), "usage: selfstab-sim") {
				t.Errorf("run(%v) error %q lacks the usage line", tt.args, err)
			}
			if buf.Len() != 0 {
				t.Errorf("run(%v) wrote %q to stdout on a usage error", tt.args, buf.String())
			}
		})
	}
	// Malformed flag values come back from the flag package itself.
	var buf bytes.Buffer
	if err := run([]string{"serve", "-sps", "abc"}, &buf); err == nil {
		t.Error("bad serve flag accepted")
	}
	// A missing restore file fails after validation, at open time.
	if err := run([]string{"serve", "-restore", "/nonexistent/snap.json"}, &buf); err == nil {
		t.Error("missing restore file accepted")
	}
}

// TestRunEnergyScenarios drives the energy subcommand end to end on small
// networks.
func TestRunEnergyScenarios(t *testing.T) {
	for _, args := range [][]string{
		{"energy", "-nodes", "100", "-steps", "60", "-sources", "10", "-scenario", "lifetime", "-capacity", "0.2"},
		{"energy", "-nodes", "100", "-steps", "60", "-sources", "10", "-scenario", "rotation", "-capacity", "0.2"},
		{"energy", "-nodes", "100", "-steps", "60", "-sources", "0", "-scenario", "sleep-savings"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Errorf("%v: %v", args, err)
			continue
		}
		out := buf.String()
		scenario := ""
		for i, a := range args {
			if a == "-scenario" {
				scenario = args[i+1]
			}
		}
		var wants []string
		switch scenario {
		case "lifetime":
			wants = []string{"first death", "drained", "episodes"}
		case "rotation":
			wants = []string{"plain density", "energy x density", "first death"}
		case "sleep-savings":
			wants = []string{"always awake", "duty-cycled", "remaining"}
		}
		for _, want := range wants {
			if !strings.Contains(out, want) {
				t.Errorf("%v output missing %q:\n%s", args, want, out)
			}
		}
	}
}

// TestRunEnergyBadArgs: malformed names and magnitudes fail fast with the
// usage line, before any network is built.
func TestRunEnergyBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"energy", "-scenario", "nope"},
		{"energy", "-capacity", "-1"},
		{"energy", "-capacity", "0"},
		{"energy", "-sources", "-3"},
		{"energy", "-levels", "1"},
		{"energy", "-levels", "2000"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted an invalid energy config", args)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"energy", "-steps", "abc"}, &buf); err == nil {
		t.Error("bad energy flag accepted")
	}
}

// TestRunTraceValidation: every bad trace flag exits with a usage error
// before any world is built.
func TestRunTraceValidation(t *testing.T) {
	for _, args := range [][]string{
		{"trace", "-nodes", "1"},
		{"trace", "-steps", "0"},
		{"trace", "-range", "0"},
		{"trace", "-range", "1.5"},
		{"trace", "-cachettl", "0"},
		{"trace", "-scenario", "bogus"},
		{"trace", "extra-arg"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestRunTraceStdout records a small mixed run and checks the trace is
// valid Chrome trace JSON with one span per recorded step.
func TestRunTraceStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"trace", "-nodes", "60", "-range", "0.2", "-steps", "25", "-scenario", "mixed"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	steps := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Name == "step" {
			steps++
		}
	}
	if steps != 25 {
		t.Errorf("trace has %d step spans, want 25", steps)
	}
}

// TestRunTraceFile writes the trace to -o and prints a summary line.
func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"trace", "-nodes", "60", "-range", "0.2", "-steps", "10", "-scenario", "none", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 10 step records") {
		t.Errorf("missing summary line: %q", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Errorf("trace file is not valid JSON")
	}
}
