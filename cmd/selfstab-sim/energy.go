package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"selfstab"
)

// runEnergy drives the live energy subsystem from the command line: build
// and stabilize a network, attach a convergecast workload and the battery
// model, run a lifetime, rotation or sleep-savings scenario, and report
// the energy ledger (plus the convergence ledger the depletions feed).
func runEnergy(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("selfstab-sim energy", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 500, "network size")
		steps    = fs.Int("steps", 500, "steps to run with batteries draining")
		seed     = fs.Int64("seed", 1, "master random seed")
		radioRng = fs.Float64("range", 0.1, "radio transmission range")
		scenario = fs.String("scenario", "lifetime", "scenario: lifetime, rotation, sleep-savings")
		sources  = fs.Int("sources", 40, "hotspot sources converging on one sink (0: no traffic)")
		rate     = fs.Float64("rate", 0.25, "per-source injection rate (packets per step)")
		capacity = fs.Float64("capacity", 1, "initial battery per node (energy units)")
		levels   = fs.Int("levels", 8, "rotation quantization levels")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate names and magnitudes up front: a typo must fail fast with
	// usage, not after a full network build and stabilization.
	switch strings.ToLower(*scenario) {
	case "lifetime", "rotation", "sleep-savings":
	default:
		return usageErrorf("unknown energy scenario %q (want lifetime, rotation or sleep-savings)", *scenario)
	}
	if *capacity <= 0 {
		return usageErrorf("capacity %v must be positive", *capacity)
	}
	if *sources < 0 || *rate < 0 {
		return usageErrorf("sources %d and rate %v must be non-negative", *sources, *rate)
	}
	if *levels < 2 || *levels > 1024 {
		return usageErrorf("levels %d outside [2, 1024]", *levels)
	}

	run := func(rotation, sleep bool) (*selfstab.Network, selfstab.EnergyStats, error) {
		net, err := selfstab.NewRandomNetwork(*nodes,
			selfstab.WithSeed(*seed),
			selfstab.WithRange(*radioRng),
			selfstab.WithCacheTTL(8),
			selfstab.WithStableWindow(10),
		)
		if err != nil {
			return nil, selfstab.EnergyStats{}, err
		}
		if _, err := net.Stabilize(5000); err != nil {
			return nil, selfstab.EnergyStats{}, err
		}
		if *sources > 0 {
			ids := net.IDs()
			srcs := *sources
			if max := len(ids) - 1; srcs > max {
				srcs = max
			}
			if err := net.AttachTraffic(selfstab.TrafficConfig{
				QueueCap: 32,
				Flows:    []selfstab.Flow{selfstab.HotspotFlow(ids[0], srcs, *rate)},
			}); err != nil {
				return nil, selfstab.EnergyStats{}, err
			}
		}
		if err := net.AttachEnergy(selfstab.EnergyConfig{
			Capacity:       *capacity,
			Rotation:       rotation,
			RotationLevels: *levels,
		}); err != nil {
			return nil, selfstab.EnergyStats{}, err
		}
		if sleep {
			// Duty-cycle a third of the population through the run, the
			// schedule the sleep cost rewards.
			if err := net.AttachChurn(selfstab.ChurnConfig{
				SleepRate:  float64(*nodes) / 100,
				SleepSteps: 25,
			}); err != nil {
				return nil, selfstab.EnergyStats{}, err
			}
		}
		if err := net.Run(*steps); err != nil {
			return nil, selfstab.EnergyStats{}, err
		}
		es, err := net.EnergyStats()
		return net, es, err
	}

	switch strings.ToLower(*scenario) {
	case "lifetime":
		net, es, err := run(false, false)
		if err != nil {
			return err
		}
		// Stop the drain and let the survivors re-stabilize so the final
		// depletion episode closes into the ledger.
		net.DetachEnergy()
		if _, err := net.Stabilize(20000); err != nil {
			return err
		}
		alive, sleeping, dead := net.Population()
		fmt.Fprintf(out, "energy lifetime: %d nodes, %d steps, %d sources -> 1 sink\n",
			*nodes, *steps, *sources)
		fmt.Fprintf(out, "  population: %d alive, %d sleeping, %d dead\n", alive, sleeping, dead)
		renderEnergyStats(out, es)
		renderConvergence(out, net.ConvergenceStats())
	case "rotation":
		_, plain, err := run(false, false)
		if err != nil {
			return err
		}
		_, rotated, err := run(true, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "energy rotation: %d nodes, %d steps, same seed with and without energy-aware heads\n",
			*nodes, *steps)
		fmt.Fprintf(out, "  plain density:   first death %s, %d depletions, head share %.3f\n",
			deathStep(plain), plain.Depletions, plain.HeadShare)
		fmt.Fprintf(out, "  energy x density: first death %s, %d depletions, head share %.3f\n",
			deathStep(rotated), rotated.Depletions, rotated.HeadShare)
	case "sleep-savings":
		_, awake, err := run(false, false)
		if err != nil {
			return err
		}
		_, slept, err := run(false, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "energy sleep-savings: %d nodes, %d steps, same seed with and without duty-cycling\n",
			*nodes, *steps)
		fmt.Fprintf(out, "  always awake: drained %.2f, mean remaining %.3f\n",
			awake.TotalDrain, awake.MeanRemaining)
		fmt.Fprintf(out, "  duty-cycled:  drained %.2f, mean remaining %.3f (%d node-steps asleep)\n",
			slept.TotalDrain, slept.MeanRemaining, slept.SleepSteps)
	}
	return nil
}

func deathStep(es selfstab.EnergyStats) string {
	if es.FirstDeathStep < 0 {
		return "never"
	}
	return fmt.Sprintf("step %d", es.FirstDeathStep)
}

// renderEnergyStats prints the battery ledger as an aligned table.
func renderEnergyStats(out io.Writer, es selfstab.EnergyStats) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  first death\t%s\t(%d depletions)\n", deathStep(es), es.Depletions)
	fmt.Fprintf(w, "  drained\t%.2f\thead %.2f, member %.2f, sleep %.3f, tx %.2f, rx %.2f\n",
		es.TotalDrain, es.DrainHead, es.DrainMember, es.DrainSleep, es.DrainTx, es.DrainRx)
	fmt.Fprintf(w, "  remaining\tmean %.3f\tmin %.3f\n", es.MeanRemaining, es.MinRemaining)
	fmt.Fprintf(w, "  head share\t%.1f%%\tof awake node-steps\n", 100*es.HeadShare)
	fmt.Fprintf(w, "  energy deciles\t%v\t(operating nodes by remaining fraction)\n", es.Histogram)
	w.Flush()
}
