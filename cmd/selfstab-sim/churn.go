package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"selfstab"
)

// runChurn drives the node-lifecycle churn subsystem from the command
// line: build and stabilize a network, optionally attach a traffic
// workload, run a churn scenario, and report the convergence ledger
// (plus the traffic ledger when flows are attached).
func runChurn(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("selfstab-sim churn", flag.ContinueOnError)
	var (
		nodes      = fs.Int("nodes", 1000, "network size")
		steps      = fs.Int("steps", 500, "steps to run under churn")
		seed       = fs.Int64("seed", 1, "master random seed")
		radioRng   = fs.Float64("range", 0.1, "radio transmission range")
		scenario   = fs.String("scenario", "steady", "scenario: steady, burst, blackout")
		arrival    = fs.Float64("arrival", 1, "mean node arrivals per step")
		departure  = fs.Float64("departure", 1, "mean permanent departures per step")
		crash      = fs.Float64("crash", 2, "mean state-losing reboots per step")
		sleep      = fs.Float64("sleep", 2, "mean duty-cycle sleeps per step")
		sleepSteps = fs.Int("sleepsteps", 15, "steps a scheduled sleep lasts")
		flows      = fs.Int("flows", 0, "unicast flows to carry through the churn (0: protocol only)")
		rate       = fs.Float64("rate", 0.2, "per-flow injection rate (packets per step)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate the scenario name and churn rates up front: a typo must
	// fail fast with usage, not after a full network build and
	// stabilization (and the blackout scenario never attaches the
	// schedule, so its config would otherwise escape validation).
	switch strings.ToLower(*scenario) {
	case "steady", "burst", "blackout":
	default:
		return usageErrorf("unknown churn scenario %q (want steady, burst or blackout)", *scenario)
	}
	if *arrival < 0 || *departure < 0 || *crash < 0 || *sleep < 0 {
		return usageErrorf("churn rates must be non-negative (arrival %v, departure %v, crash %v, sleep %v)",
			*arrival, *departure, *crash, *sleep)
	}
	if *sleepSteps < 1 {
		return usageErrorf("sleepsteps %d must be at least 1", *sleepSteps)
	}

	net, err := selfstab.NewRandomNetwork(*nodes,
		selfstab.WithSeed(*seed),
		selfstab.WithRange(*radioRng),
		selfstab.WithCacheTTL(8),
		selfstab.WithStableWindow(10),
	)
	if err != nil {
		return err
	}
	if _, err := net.Stabilize(5000); err != nil {
		return err
	}
	if *flows > 0 {
		ids := net.IDs()
		specs := make([]selfstab.Flow, 0, *flows)
		for i := 0; i < *flows; i++ {
			src := ids[(i*7)%len(ids)]
			dst := ids[(i*13+len(ids)/2)%len(ids)]
			specs = append(specs, selfstab.CBRFlow(src, dst, *rate))
		}
		if err := net.AttachTraffic(selfstab.TrafficConfig{QueueCap: 32, Flows: specs}); err != nil {
			return err
		}
	}

	cfg := selfstab.ChurnConfig{
		ArrivalRate:   *arrival,
		DepartureRate: *departure,
		CrashRate:     *crash,
		SleepRate:     *sleep,
		SleepSteps:    *sleepSteps,
	}
	switch strings.ToLower(*scenario) {
	case "steady":
		// Continuous churn for the whole run, then recovery.
		if err := net.AttachChurn(cfg); err != nil {
			return err
		}
		if err := net.Run(*steps); err != nil {
			return err
		}
		net.DetachChurn()
	case "burst":
		// A quiet third, one third of triple-rate churn, recovery.
		if err := net.Run(*steps / 3); err != nil {
			return err
		}
		burst := cfg
		burst.ArrivalRate *= 3
		burst.DepartureRate *= 3
		burst.CrashRate *= 3
		burst.SleepRate *= 3
		if err := net.AttachChurn(burst); err != nil {
			return err
		}
		if err := net.Run(*steps / 3); err != nil {
			return err
		}
		net.DetachChurn()
		if err := net.Run(*steps - 2*(*steps/3)); err != nil {
			return err
		}
	case "blackout":
		// A third of the population duty-cycles off at once, half the run
		// passes, everyone wakes — the mass-disruption stress case.
		ids := net.IDs()
		down := make([]int64, 0, len(ids)/3)
		for i := 0; i < len(ids); i += 3 {
			down = append(down, ids[i])
		}
		if err := net.Run(*steps / 4); err != nil {
			return err
		}
		if err := net.SleepNodes(down...); err != nil {
			return err
		}
		if err := net.Run(*steps / 2); err != nil {
			return err
		}
		if err := net.WakeNodes(down...); err != nil {
			return err
		}
		if err := net.Run(*steps - *steps/4 - *steps/2); err != nil {
			return err
		}
	}
	// Let the survivors re-stabilize so the final episode closes.
	if _, err := net.Stabilize(20000); err != nil {
		return err
	}

	alive, sleeping, dead := net.Population()
	fmt.Fprintf(out, "churn %s: %d slots (%d alive, %d sleeping, %d dead), %d steps, %d clusters\n",
		strings.ToLower(*scenario), net.N(), alive, sleeping, dead, net.StepCount(), len(net.Clusters()))
	renderConvergence(out, net.ConvergenceStats())
	if *flows > 0 {
		s, err := net.TrafficStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "traffic through the churn (%d flows):\n", *flows)
		renderTrafficStats(out, s)
	}
	return nil
}

// renderConvergence prints the convergence ledger summary.
func renderConvergence(out io.Writer, cs selfstab.ConvergenceStats) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	open := 0
	if cs.Open {
		open = 1
	}
	fmt.Fprintf(w, "  episodes\t%d\t(%d still converging)\n", len(cs.Disruptions), open)
	if len(cs.Disruptions) > 0 {
		var ops int
		for _, d := range cs.Disruptions {
			ops += d.Ops
		}
		fmt.Fprintf(w, "  disruptions\t%d\tfolded into the episodes\n", ops)
		fmt.Fprintf(w, "  steps to restabilize\tmean %.1f\tmax %d\n",
			cs.MeanStepsToStabilize, cs.MaxStepsToStabilize)
		fmt.Fprintf(w, "  affected radius (hops)\tmean %.1f\tmax %d\n",
			cs.MeanAffectedRadius, cs.MaxAffectedRadius)
		fmt.Fprintf(w, "  affected nodes\tmean %.1f\n", cs.MeanAffectedNodes)
	}
	w.Flush()
}
