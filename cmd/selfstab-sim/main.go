// Command selfstab-sim regenerates the paper's evaluation tables and the
// ablation studies from DESIGN.md, and drives the packet-level traffic
// and node-churn subsystems.
//
// Usage:
//
//	selfstab-sim -exp table3 -runs 1000 -lambda 1000
//	selfstab-sim -exp all -runs 30
//	selfstab-sim traffic -nodes 1000 -steps 500 -flows 100 -scenario static
//	selfstab-sim churn -nodes 1000 -steps 500 -scenario steady
//	selfstab-sim energy -nodes 1000 -steps 500 -scenario rotation
//	selfstab-sim scale -nodes 100000 -scenario quiescent
//	selfstab-sim serve -nodes 500 -sps 10 -preload churn -snapshot-dir /tmp/snaps
//	selfstab-sim trace -nodes 500 -steps 200 -scenario mixed -o trace.json
//	selfstab-sim attack -scenario flood -bots 12 -floodrate 4
//
// Experiments: table1, table2, table3, table4, table5, mobility,
// stabilization, gamma, metrics, orders, energy, daemons, scalability,
// all.
//
// The traffic subcommand attaches a packet data plane (CBR / Poisson /
// hotspot workloads) to a stabilized network, runs a static, mobility or
// fault-recovery scenario, and reports delivery ratio, path stretch,
// latency percentiles and per-node forwarding load.
//
// The churn subcommand runs node-lifecycle churn — arrivals, departures,
// crashes, duty-cycling — under a steady, burst or blackout scenario and
// reports the convergence ledger (per-disruption steps-to-restabilize and
// affected radius) plus the traffic ledger when flows are attached.
//
// The energy subcommand attaches per-node batteries drained by role and
// traffic and runs a lifetime (time to first depletion, with depletions
// feeding the convergence ledger), rotation (plain vs energy-aware head
// election on the same seed) or sleep-savings (duty-cycled vs always-on
// drain) scenario.
//
// The scale subcommand builds a production-scale network (default 100k
// nodes at constant mean degree), cold-stabilizes it, and measures the
// per-step cost once quiescent (the frontier engine's O(1) claim) or
// under sustained churn with dead-slot auto-compaction bounding the
// slot count.
//
// The serve subcommand runs the simulation as a long-lived service: the
// world steps in scaled real time while an HTTP/JSON API (internal/serve)
// serves live cluster maps and ledgers, accepts scenario injection,
// streams step frames over SSE, exposes Prometheus-style metrics, and
// checkpoints to versioned snapshots that restore and replay
// bit-identically (-restore). -pprof mounts net/http/pprof under
// /debug/pprof/ for live profiling. SIGTERM drains gracefully.
//
// The trace subcommand records a step-phase profile of a run — per-step
// and per-phase wall-time spans, per-tile halo merges, engine counters —
// and writes it as Chrome trace-event JSON (chrome://tracing,
// https://ui.perfetto.dev) to a file or stdout.
//
// The attack subcommand runs one adversarial scenario — a botnet flood
// aimed at the cluster-heads, byzantine density inflation capturing
// headship, or a sybil join burst — against an undefended and a defended
// world built from the same seed, and reports the attack-vs-defense
// deltas: legitimate delivery ratio, defense drop counters, headship
// capture rate, evictions and steps-to-restabilize.
//
// An unknown subcommand, experiment, scenario or workload name exits
// non-zero with a usage line on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"selfstab/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "selfstab-sim:", err)
		os.Exit(1)
	}
}

type renderer interface{ Render() string }

// usage is the one-line surface summary attached to every bad-name error,
// so a typo exits non-zero with actionable help on stderr.
const usage = "usage: selfstab-sim [-exp <experiment>] [flags] | selfstab-sim traffic [flags] | selfstab-sim churn [flags] | selfstab-sim energy [flags] | selfstab-sim scale [flags] | selfstab-sim serve [flags] | selfstab-sim trace [flags] | selfstab-sim attack [flags]"

func usageErrorf(format string, a ...any) error {
	return fmt.Errorf(format+"\n"+usage, a...)
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "traffic":
			return runTraffic(args[1:], out)
		case "churn":
			return runChurn(args[1:], out)
		case "energy":
			return runEnergy(args[1:], out)
		case "scale":
			return runScale(args[1:], out)
		case "serve":
			return runServe(args[1:], out)
		case "trace":
			return runTrace(args[1:], out)
		case "attack":
			return runAttack(args[1:], out)
		default:
			return usageErrorf("unknown subcommand %q (want traffic, churn, energy, scale, serve, trace or attack)", args[0])
		}
	}
	fs := flag.NewFlagSet("selfstab-sim", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "all", "experiment: table1, table2, table3, table4, table5, mobility, stabilization, gamma, metrics, orders, energy, daemons, scalability, all")
		runs   = fs.Int("runs", 30, "independent runs per cell (paper: 1000)")
		seed   = fs.Int64("seed", 1, "master random seed")
		lambda = fs.Float64("lambda", 1000, "Poisson deployment intensity")
		ranges = fs.String("ranges", "0.05,0.08,0.1", "comma-separated transmission ranges")
		mins   = fs.Float64("minutes", 3, "mobility experiment duration in minutes (paper: 15)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rs, err := parseRanges(*ranges)
	if err != nil {
		return err
	}
	opts := experiment.Options{Runs: *runs, Seed: *seed, Intensity: *lambda, Ranges: rs}

	type entry struct {
		name string
		run  func() (renderer, error)
	}
	entries := []entry{
		{"table1", func() (renderer, error) { return experiment.Table1() }},
		{"table2", func() (renderer, error) {
			o := opts
			if o.Intensity > 500 && !flagPassed(fs, "lambda") {
				o.Intensity = 300 // runtime-level measurement; keep tractable
			}
			return experiment.Table2(o)
		}},
		{"table3", func() (renderer, error) { return experiment.Table3(opts) }},
		{"table4", func() (renderer, error) { return experiment.Table4(opts) }},
		{"table5", func() (renderer, error) { return experiment.Table5(opts) }},
		{"mobility", func() (renderer, error) {
			m := experiment.MobilityDefaults()
			m.Runs = *runs
			m.Seed = *seed
			m.Intensity = *lambda
			m.DurationSec = *mins * 60
			return experiment.Mobility(m)
		}},
		{"stabilization", func() (renderer, error) {
			o := opts
			// The runtime experiment is heavier; keep lambda tractable
			// unless the user insisted.
			if o.Intensity > 500 && !flagPassed(fs, "lambda") {
				o.Intensity = 500
			}
			return experiment.Stabilization(o)
		}},
		{"gamma", func() (renderer, error) { return experiment.AblationGamma(opts) }},
		{"metrics", func() (renderer, error) { return experiment.AblationMetrics(opts) }},
		{"orders", func() (renderer, error) { return experiment.AblationOrders(opts) }},
		{"energy", func() (renderer, error) {
			o := opts
			if o.Intensity > 400 && !flagPassed(fs, "lambda") {
				o.Intensity = 300 // many epochs per run; keep tractable by default
			}
			return experiment.Energy(o)
		}},
		{"daemons", func() (renderer, error) {
			o := opts
			if o.Intensity > 400 && !flagPassed(fs, "lambda") {
				o.Intensity = 300
			}
			return experiment.AblationDaemons(o)
		}},
		{"scalability", func() (renderer, error) { return experiment.Scalability(opts) }},
	}

	selected := strings.ToLower(*exp)
	found := false
	for _, e := range entries {
		if selected != "all" && selected != e.name {
			continue
		}
		found = true
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintln(out, res.Render())
	}
	if !found {
		return usageErrorf("unknown experiment %q", *exp)
	}
	return nil
}

func parseRanges(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad range %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no ranges in %q", s)
	}
	return out, nil
}

func flagPassed(fs *flag.FlagSet, name string) bool {
	passed := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}
