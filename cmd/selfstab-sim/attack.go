package main

import (
	"flag"
	"io"
	"strings"

	"selfstab/internal/attack"
)

// runAttack drives the adversarial workload plane from the command
// line: the same attack scenario runs against an undefended and a
// defended world built from one seed, and the report shows the deltas —
// legitimate delivery ratio under a botnet flood, headship-capture rate
// under byzantine density inflation, steps-to-restabilize after the
// plausibility eviction — that make the defenses measurable.
func runAttack(args []string, out io.Writer) error {
	def := attack.DefaultConfig()
	fs := flag.NewFlagSet("selfstab-sim attack", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", def.Nodes, "network size")
		seed     = fs.Int64("seed", def.Seed, "master random seed (shared by both worlds)")
		radioRng = fs.Float64("range", def.Range, "radio transmission range")
		tiles    = fs.Int("tiles", 0, "spatial tiles (0: untiled)")
		workers  = fs.Int("workers", 0, "step parallelism (0: single-threaded)")
		scenario = fs.String("scenario", def.Scenario, "scenario: flood, byzantine, sybil")
		warmup   = fs.Int("warmup", def.Warmup, "steps of legitimate traffic before the attack")
		steps    = fs.Int("steps", def.AttackSteps, "steps under attack")
		flows    = fs.Int("flows", def.Flows, "legitimate unicast flows")
		rate     = fs.Float64("rate", def.FlowRate, "per-flow injection rate (packets per step)")
		bots     = fs.Int("bots", def.Bots, "flood: compromised nodes")
		flood    = fs.Float64("floodrate", def.FloodRate, "flood: per-bot injection rate")
		byz      = fs.Int("byzantine", def.Byzantine, "byzantine: lying nodes")
		scale    = fs.Float64("scale", def.Scale, "byzantine: density inflation factor")
		sybils   = fs.Int("sybils", def.Sybils, "sybil: fake identities per burst")
		spread   = fs.Float64("spread", def.SybilSpread, "sybil: ring radius around the target")
		headRate = fs.Float64("headrate", def.HeadRate, "defense: head token-bucket refill per step")
		burst    = fs.Float64("headburst", def.HeadBurst, "defense: head token-bucket capacity")
		cap_     = fs.Int("sourcecap", def.SourceCap, "defense: max injections per source per step")
		factor   = fs.Float64("plausfactor", def.PlausFactor, "defense: density-plausibility detection margin")
		every    = fs.Int("evictevery", def.EvictEvery, "defense: steps between detection sweeps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := attack.Config{
		Nodes: *nodes, Seed: *seed, Range: *radioRng, Tiles: *tiles, Workers: *workers,
		Scenario: strings.ToLower(*scenario), Warmup: *warmup, AttackSteps: *steps,
		Flows: *flows, FlowRate: *rate,
		Bots: *bots, FloodRate: *flood,
		Byzantine: *byz, Scale: *scale,
		Sybils: *sybils, SybilSpread: *spread,
		HeadRate: *headRate, HeadBurst: *burst, SourceCap: *cap_,
		PlausFactor: *factor, EvictEvery: *every,
	}
	report, err := attack.Run(cfg)
	if err != nil {
		return err
	}
	report.Render(out)
	return nil
}
