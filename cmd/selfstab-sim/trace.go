package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"selfstab"
)

// runTrace records a Chrome trace-event profile of a simulation run: it
// builds a world, optionally preloads a scenario (same names as serve's
// -preload), attaches an instrumentation collector, runs the requested
// steps, and writes the trace JSON — loadable at chrome://tracing or
// https://ui.perfetto.dev — to -o or stdout.
func runTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 500, "network size (uniform random deployment)")
		seed     = fs.Int64("seed", 1, "master random seed")
		radioRng = fs.Float64("range", 0.1, "radio transmission range")
		cachettl = fs.Int("cachettl", 8, "neighbor cache TTL in steps (needed for churn and energy)")
		steps    = fs.Int("steps", 200, "steps to run and record after cold stabilization")
		scenario = fs.String("scenario", "mixed", "workload during the recording: none, traffic, churn or mixed")
		outFile  = fs.String("o", "", "trace output file (empty: stdout)")
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageErrorf("trace: unexpected argument %q", fs.Arg(0))
	}
	if *nodes < 2 {
		return usageErrorf("trace: need at least 2 nodes, got %d", *nodes)
	}
	if *steps < 1 {
		return usageErrorf("trace: -steps %d must be at least 1", *steps)
	}
	if *radioRng <= 0 || *radioRng > 1 {
		return usageErrorf("trace: -range %v outside (0, 1]", *radioRng)
	}
	if *cachettl < 1 {
		return usageErrorf("trace: -cachettl %d must be at least 1", *cachettl)
	}
	switch *scenario {
	case "none", "traffic", "churn", "mixed":
	default:
		return usageErrorf("trace: unknown scenario %q (want none, traffic, churn or mixed)", *scenario)
	}

	world, err := serveWorld("", *nodes, *seed, *radioRng, *cachettl, *scenario, out)
	if err != nil {
		return err
	}
	// Ring sized to the run so the export covers every recorded step.
	collector := selfstab.NewCollector(*steps)
	world.AttachProbe(collector)
	if err := world.Run(*steps); err != nil {
		return fmt.Errorf("trace: %w", err)
	}

	if *outFile == "" {
		return world.WriteTrace(out, 0)
	}
	f, err := os.Create(*outFile)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := world.WriteTrace(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Fprintf(out, "wrote %d step records to %s\n", *steps, *outFile)
	return nil
}
