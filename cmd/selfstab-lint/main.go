// Command selfstab-lint is the repo's static-analysis gate: a
// multichecker over the internal/analyze suite (detrand, maporder,
// journalchoke, hotpath, obspure) that encodes the engine's standing
// invariants — deterministic stepping, journal completeness, zero-alloc
// hot paths, pure-observer instrumentation — as build-time checks. CI runs it over ./... and fails on any
// finding; scripts/lint.sh runs the same gate locally.
//
// Usage:
//
//	selfstab-lint [-list] [packages]
//
// With no packages, ./... is checked. Diagnostics print as
// file:line:col: message (analyzer), one per line; the exit status is 1
// if anything was reported, 2 on operational errors (unparseable
// source, missing export data).
package main

import (
	"flag"
	"fmt"
	"os"

	"selfstab/internal/analyze"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: selfstab-lint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Static-analysis gate for the selfstab engine invariants.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analyze.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyze.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfstab-lint:", err)
		os.Exit(2)
	}
	diags, err := analyze.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfstab-lint:", err)
		os.Exit(2)
	}
	if len(diags) == 0 {
		return
	}
	var fset = pkgs[0].Fset
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	fmt.Fprintf(os.Stderr, "selfstab-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
	os.Exit(1)
}
