package selfstab

import (
	"reflect"
	"testing"
)

// churnNet builds a stabilized network configured for churn (cache TTL +
// a stable window wide enough to outlast TTL eviction).
func churnNet(t testing.TB, nodes int, seed int64, opts ...Option) *Network {
	t.Helper()
	opts = append([]Option{
		WithSeed(seed), WithRange(0.14), WithCacheTTL(4), WithStableWindow(6),
	}, opts...)
	net, err := NewRandomNetwork(nodes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestChurnDeterminism is the acceptance contract of the churn subsystem:
// a fixed seed under a churn schedule plus live traffic yields
// bit-identical ConvergenceStats AND TrafficStats at 1 and 4 workers.
func TestChurnDeterminism(t *testing.T) {
	build := func(workers int) (ConvergenceStats, TrafficStats, []Cluster) {
		net := churnNet(t, 250, 424242)
		net.SetParallelism(workers)
		if err := net.AttachTraffic(TrafficConfig{
			QueueCap: 8,
			Flows:    mixedWorkload(net, 10),
		}); err != nil {
			t.Fatal(err)
		}
		if err := net.AttachChurn(ChurnConfig{
			ArrivalRate:   0.15,
			DepartureRate: 0.1,
			CrashRate:     0.2,
			SleepRate:     0.2,
			SleepSteps:    8,
		}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(120); err != nil {
			t.Fatal(err)
		}
		// Stop churning and let the survivors re-stabilize so the final
		// episode closes into the ledger.
		net.DetachChurn()
		if _, err := net.Stabilize(2000); err != nil {
			t.Fatal(err)
		}
		cs := net.ConvergenceStats()
		ts, err := net.TrafficStats()
		if err != nil {
			t.Fatal(err)
		}
		return cs, ts, net.Clusters()
	}
	c1, t1, cl1 := build(1)
	c4, t4, cl4 := build(4)
	if !reflect.DeepEqual(c1, c4) {
		t.Fatalf("convergence ledger diverged between 1 and 4 workers:\n1: %+v\n4: %+v", c1, c4)
	}
	if !reflect.DeepEqual(t1, t4) {
		t.Fatalf("traffic stats diverged between 1 and 4 workers:\n1: %+v\n4: %+v", t1, t4)
	}
	if !reflect.DeepEqual(cl1, cl4) {
		t.Fatalf("clusterings diverged between 1 and 4 workers")
	}
	if len(c1.Disruptions) == 0 {
		t.Fatal("churn run closed no disruption episodes")
	}
	if c1.Open {
		t.Error("episode still open after detach + stabilize")
	}
	if t1.Offered == 0 {
		t.Fatalf("degenerate traffic run: %+v", t1)
	}
	checkTrafficLedger(t, t1)
}

// TestChurnRestabilizesToOracle: after a battery of manual churn — add,
// remove, crash, sleep, wake — the network re-stabilizes and Verify's
// oracle comparison holds for the operating population.
func TestChurnRestabilizesToOracle(t *testing.T) {
	net := churnNet(t, 120, 31)
	ids := net.IDs()

	newIDs, err := net.AddNodes([]Point{{0.5, 0.5}, {0.52, 0.5}, {0.9, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(newIDs) != 3 || net.N() != 123 {
		t.Fatalf("AddNodes gave %v, N = %d", newIDs, net.N())
	}
	if err := net.RemoveNodes(ids[3], ids[17]); err != nil {
		t.Fatal(err)
	}
	if err := net.CrashNodes(ids[5], newIDs[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.SleepNodes(ids[8], ids[9]); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("after churn battery: %v", err)
	}
	alive, sleeping, dead := net.Population()
	if alive != 119 || sleeping != 2 || dead != 2 {
		t.Fatalf("population = %d/%d/%d, want 119 alive, 2 sleeping, 2 dead", alive, sleeping, dead)
	}

	// Sleeping nodes are hidden from the clustering and their state is
	// frozen.
	st, err := net.State(net.id2idx[ids[8]])
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != NodeSleeping {
		t.Fatalf("status = %v, want sleeping", st.Status)
	}
	for _, c := range net.Clusters() {
		for _, m := range c.Members {
			if m == ids[8] || m == ids[3] {
				t.Fatalf("dead/sleeping node %d listed in a cluster", m)
			}
		}
	}

	if err := net.WakeNodes(ids[8], ids[9]); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("after wake: %v", err)
	}
	cs := net.ConvergenceStats()
	if len(cs.Disruptions) == 0 {
		t.Fatal("manual churn left no ledger records")
	}
}

// TestChurnAPIValidation covers the error surface of the lifecycle calls.
func TestChurnAPIValidation(t *testing.T) {
	net := churnNet(t, 30, 7)
	ids := net.IDs()
	if _, err := net.AddNodes(nil); err == nil {
		t.Error("empty AddNodes accepted")
	}
	if _, err := net.AddNodes([]Point{{2, 2}}); err == nil {
		t.Error("out-of-region position accepted")
	}
	if err := net.RemoveNodes(); err == nil {
		t.Error("empty RemoveNodes accepted")
	}
	if err := net.RemoveNodes(99999); err == nil {
		t.Error("unknown id accepted")
	}
	if err := net.WakeNodes(ids[0]); err == nil {
		t.Error("waking an awake node accepted")
	}
	if err := net.RemoveNodes(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.RemoveNodes(ids[0]); err == nil {
		t.Error("double remove accepted")
	}
	if err := net.CrashNodes(ids[0]); err == nil {
		t.Error("crashing a dead node accepted")
	}
	if err := net.SleepNodes(ids[0]); err == nil {
		t.Error("sleeping a dead node accepted")
	}

	// AttachChurn validation.
	if err := net.AttachChurn(ChurnConfig{}); err == nil {
		t.Error("all-zero churn config accepted")
	}
	if err := net.AttachChurn(ChurnConfig{CrashRate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	noTTL, err := NewRandomNetwork(20, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := noTTL.AttachChurn(ChurnConfig{CrashRate: 0.1}); err == nil {
		t.Error("churn without WithCacheTTL accepted")
	}
}

// TestTrafficSurvivesChurn: flows whose endpoints die or sleep become
// accounted dead-endpoint drops — never a panic or an index error — and
// delivery to a slept endpoint resumes after it wakes.
func TestTrafficSurvivesChurn(t *testing.T) {
	net := churnNet(t, 150, 91)
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		Flows: []Flow{
			CBRFlow(ids[0], ids[1], 1),
			CBRFlow(ids[2], ids[3], 1),
			CBRFlow(ids[4], ids[5], 1),
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(30); err != nil {
		t.Fatal(err)
	}
	if err := net.RemoveNodes(ids[1]); err != nil { // flow 0's sink dies
		t.Fatal(err)
	}
	if err := net.SleepNodes(ids[3]); err != nil { // flow 1's sink sleeps
		t.Fatal(err)
	}
	if err := net.Run(30); err != nil {
		t.Fatal(err)
	}
	s, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s)
	if s.DropsDeadEndpoint == 0 {
		t.Fatalf("no dead-endpoint drops after killing a sink: %+v", s)
	}
	deliveredAsleep := s.PerFlow[1].Delivered

	if err := net.WakeNodes(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(60); err != nil {
		t.Fatal(err)
	}
	s2, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s2)
	if s2.PerFlow[1].Delivered <= deliveredAsleep {
		t.Errorf("delivery to the woken sink did not resume: %+v", s2.PerFlow[1])
	}
	if s2.PerFlow[0].Delivered != s.PerFlow[0].Delivered {
		t.Errorf("packets delivered to a dead node: %+v", s2.PerFlow[0])
	}
}

// TestSelfFlowAPI is the API-level Src == Dst regression: a self-flow is
// accepted, every packet is delivered at injection with zero hops, and
// the ledger counts it.
func TestSelfFlowAPI(t *testing.T) {
	net := trafficNet(t, 40, 3)
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		Flows: []Flow{CBRFlow(ids[7], ids[7], 1)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(25); err != nil {
		t.Fatal(err)
	}
	s, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s)
	if s.Offered != 25 || s.Delivered != 25 || s.InFlight != 0 {
		t.Fatalf("self-flow ledger: %+v", s)
	}
	if s.MeanHops != 0 || s.LatencyMax != 0 {
		t.Fatalf("self-flow hops/latency: %+v", s)
	}
	if s.PerFlow[0].SrcID != ids[7] || s.PerFlow[0].DstID != ids[7] || s.PerFlow[0].Delivered != 25 {
		t.Fatalf("per-flow self-flow ledger: %+v", s.PerFlow[0])
	}
}

// TestFlatDistRowMemoized pins the Dist-hook fix: within one topology
// epoch, distance lookups are served from memoized per-source rows and
// allocate nothing; a topology change invalidates exactly once per
// source.
func TestFlatDistRowMemoized(t *testing.T) {
	net := trafficNet(t, 80, 11)
	// First call per source computes the BFS row...
	row := net.flatDistRow(3)
	if len(row) != net.N() {
		t.Fatalf("row has %d entries for %d nodes", len(row), net.N())
	}
	// ...and repeated lookups, same source or not, allocate zero.
	net.flatDistRow(5)
	allocs := testing.AllocsPerRun(200, func() {
		_ = net.flatDistRow(3)[7]
		_ = net.flatDistRow(5)[9]
	})
	if allocs != 0 {
		t.Fatalf("memoized distance lookup allocates %.1f/op, want 0", allocs)
	}
	// A topology change invalidates the memo: the row pointer must be
	// rebuilt (positions swap keeps lengths identical).
	pos := net.Positions()
	pos[0].X = 1 - pos[0].X
	if err := net.SetPositions(pos); err != nil {
		t.Fatal(err)
	}
	fresh := net.flatDistRow(3)
	if &fresh[0] == &row[0] {
		t.Fatal("stale distance row served after a topology change")
	}
}

// TestInjectFaultsClampedAtNetworkLevel: frac outside [0, 1] is safe at
// the public surface — negative is a no-op, > 1 corrupts everything and
// heals.
func TestInjectFaultsClampedAtNetworkLevel(t *testing.T) {
	net := churnNet(t, 60, 17)
	before := net.Clusters()
	net.InjectFaults(-3)
	if !reflect.DeepEqual(before, net.Clusters()) {
		t.Fatal("negative fault fraction corrupted state")
	}
	net.InjectFaults(7.5)
	if _, err := net.Stabilize(2000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("did not heal from frac > 1: %v", err)
	}
	cs := net.ConvergenceStats()
	found := false
	for _, d := range cs.Disruptions {
		if d.Kinds&ChurnFault != 0 {
			found = true
		}
	}
	if !found {
		t.Error("fault injection left no ledger episode")
	}
}

// TestChurnPreStepAllocationFree is the steady-state allocation contract
// of the churn pre-step phase: at 1000 nodes under ~1%/step crash +
// duty-cycle churn, the scheduled phase itself (Poisson draws, victim
// selection, status flips, incremental topology repair, disruption
// tracking) allocates nothing once warm.
func TestChurnPreStepAllocationFree(t *testing.T) {
	net := churnNet(t, 1000, 555, WithRange(0.1))
	if err := net.AttachChurn(ChurnConfig{
		CrashRate:  4,
		SleepRate:  3,
		SleepSteps: 12,
	}); err != nil {
		t.Fatal(err)
	}
	// Warm: grow every reusable scratch (disruption sites, ledger BFS is
	// never hit while churn keeps the episode open) and let sleeps/wakes
	// cycle.
	if err := net.Run(60); err != nil {
		t.Fatal(err)
	}
	step := net.StepCount()
	allocs := testing.AllocsPerRun(50, func() {
		step++
		if err := net.churnPreStep(step); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("churn pre-step allocates %.2f/op at steady state, want 0", allocs)
	}
}

// TestStabilizeClosesEpisodeWithDefaultWindow: with the default stable
// window (5) and a wider cache TTL, Stabilize must widen its quiet
// window to the convergence window, so reading the ledger right after
// Stabilize always includes the final episode.
func TestStabilizeClosesEpisodeWithDefaultWindow(t *testing.T) {
	net, err := NewRandomNetwork(80, WithSeed(77), WithRange(0.14), WithCacheTTL(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		t.Fatal(err)
	}
	ids := net.IDs()
	if err := net.RemoveNodes(ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		t.Fatal(err)
	}
	cs := net.ConvergenceStats()
	if cs.Open || len(cs.Disruptions) != 1 {
		t.Fatalf("episode not closed by Stabilize: open=%v, %d records", cs.Open, len(cs.Disruptions))
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveScheduledSleeperNeverWoken: removing a node the churn
// schedule put to sleep must disarm its wake deadline — the schedule
// must not try to wake a dead node at the deadline and abort every
// subsequent step.
func TestRemoveScheduledSleeperNeverWoken(t *testing.T) {
	net := churnNet(t, 60, 19)
	if err := net.AttachChurn(ChurnConfig{CrashRate: 0.01, SleepSteps: 5}); err != nil {
		t.Fatal(err)
	}
	// Simulate the schedule sleeping node 0 with a due wake, then the
	// user removing it before the deadline.
	if err := net.sleepNodeIdx(0, net.StepCount()+5); err != nil {
		t.Fatal(err)
	}
	if err := net.RemoveNodes(net.ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(20); err != nil {
		t.Fatalf("schedule tried to wake the removed sleeper: %v", err)
	}
}

// TestStabilizeWidensWindowWhileChurnAttached: with a schedule attached,
// disruptions can open mid-run, so Stabilize must use the convergence
// window even when no episode is open at entry — otherwise a departure
// followed by a short quiet stretch (< cache TTL) is declared stable
// before eviction and the episode dangles open.
func TestStabilizeWidensWindowWhileChurnAttached(t *testing.T) {
	net, err := NewRandomNetwork(60,
		WithSeed(6), WithRange(0.14), WithCacheTTL(8), WithStableWindow(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachChurn(ChurnConfig{DepartureRate: 0.05}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(20000); err != nil {
		t.Fatal(err)
	}
	if cs := net.ConvergenceStats(); cs.Open {
		t.Fatalf("Stabilize returned with the episode still converging: %+v", cs)
	}
	net.DetachChurn()
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsOperatingPopulationUnderChurn is the ROADMAP regression: Stats
// and BuildHierarchy must restrict themselves to the operating population
// — a removed or sleeping node keeps its dense index slot but must not
// surface as a phantom singleton cluster.
func TestStatsOperatingPopulationUnderChurn(t *testing.T) {
	net := churnNet(t, 100, 47)
	base := net.Stats()
	baseClusters := len(net.Clusters())
	if base.Clusters != baseClusters {
		t.Fatalf("pre-churn Stats.Clusters %d != len(Clusters()) %d", base.Clusters, baseClusters)
	}

	ids := net.IDs()
	if err := net.RemoveNodes(ids[0], ids[1], ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := net.SleepNodes(ids[3], ids[4]); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(3000); err != nil {
		t.Fatal(err)
	}

	s := net.Stats()
	live := len(net.Clusters())
	if s.Clusters != live {
		t.Errorf("Stats.Clusters %d counts dead/sleeping slots (live clustering has %d)", s.Clusters, live)
	}

	levels, err := net.BuildHierarchy(3)
	if err != nil {
		t.Fatal(err)
	}
	gone := map[int64]bool{ids[0]: true, ids[1]: true, ids[2]: true, ids[3]: true, ids[4]: true}
	covered := 0
	for _, c := range levels[0].Clusters {
		for _, m := range c.Members {
			if gone[m] {
				t.Errorf("dead/sleeping node %d clustered at hierarchy level 0", m)
			}
			covered++
		}
	}
	alive, _, _ := net.Population()
	if covered != alive {
		t.Errorf("hierarchy level 0 covers %d nodes, operating population is %d", covered, alive)
	}
	if len(levels[0].Clusters) != live {
		t.Errorf("hierarchy level 0 has %d clusters, live clustering has %d", len(levels[0].Clusters), live)
	}
}
