// Hierarchy: recursive clustering (the paper's Section 6 future work).
// Level 0 clusters the physical radio network; each further level clusters
// the cluster-heads of the level below over the "clusters touch" overlay,
// producing the multi-tier backbone hierarchical routing wants.
package main

import (
	"fmt"
	"log"

	"selfstab"
)

func main() {
	net, err := selfstab.NewPoissonNetwork(600,
		selfstab.WithSeed(11),
		selfstab.WithRange(0.07),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		log.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}

	levels, err := net.BuildHierarchy(6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d physical nodes\n", net.N())
	prev := net.N()
	for lvl, l := range levels {
		biggest := 0
		for _, c := range l.Clusters {
			if len(c.Members) > biggest {
				biggest = len(c.Members)
			}
		}
		fmt.Printf("level %d: %4d vertices -> %4d clusters (largest %d members)\n",
			lvl, prev, len(l.Clusters), biggest)
		prev = len(l.Clusters)
	}

	top := levels[len(levels)-1].Clusters
	fmt.Printf("\nbackbone roots (%d):", len(top))
	for _, c := range top {
		fmt.Printf(" %d", c.HeadID)
	}
	fmt.Println()
	fmt.Println("every node reaches a root through at most", len(levels), "tiers of heads")
}
