// Mobilecampus: the paper's mobility study in miniature. Devices walk
// around a campus at pedestrian speeds while the protocol keeps
// re-stabilizing; the Section 4.3 improvements (incumbent-head stickiness
// and 2-hop cluster fusion) keep cluster-heads in place noticeably longer
// than the basic rule.
package main

import (
	"fmt"
	"log"
	"math"

	"selfstab"
	"selfstab/internal/rng"
)

const (
	nodes       = 150
	samples     = 40  // 40 x 2 s = 80 simulated seconds
	dtSeconds   = 2.0 // the paper samples every 2 s
	speedMS     = 1.6 // pedestrian, m/s
	metersPerU  = 1000.0
	stepsPerDt  = 8 // protocol steps executed between samples
	radioRange  = 0.12
	walkSeed    = 99
	protocolTTL = 4 // cache entries expire after 4 silent steps
)

func main() {
	improved := headRetention(true)
	basic := headRetention(false)
	fmt.Printf("\nmean cluster-head retention per 2s sample over %d samples:\n", samples)
	fmt.Printf("  improved (sticky + fusion): %.1f%%\n", improved)
	fmt.Printf("  basic:                      %.1f%%\n", basic)
	if improved >= basic {
		fmt.Println("the Section 4.3 rules kept heads in place at least as well — as the paper reports")
	} else {
		fmt.Println("unexpected: basic outperformed the improved rules on this trace")
	}
}

// headRetention replays the same random walk under one protocol variant
// and returns the mean percentage of heads surviving each sample.
func headRetention(improvements bool) float64 {
	opts := []selfstab.Option{
		selfstab.WithSeed(walkSeed),
		selfstab.WithRange(radioRange),
		selfstab.WithCacheTTL(protocolTTL),
	}
	if improvements {
		opts = append(opts, selfstab.WithStickyHeads(), selfstab.WithFusion())
	}
	net, err := selfstab.NewRandomNetwork(nodes, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		log.Fatal(err)
	}

	// A tiny random-walk model over the public API: one labeled stream
	// off the shared seed, so both protocol variants see the same motion
	// and the walk never perturbs the network's own draws.
	walk := rng.New(walkSeed).Split("campus-walk")
	pos := net.Positions()
	dir := make([]float64, nodes)
	for i := range dir {
		dir[i] = walk.Float64() * 2 * math.Pi
	}

	retention := 0.0
	counted := 0
	prevHeads := headSet(net)
	for s := 0; s < samples; s++ {
		// Move everyone for dtSeconds.
		step := speedMS / metersPerU * dtSeconds
		for i := range pos {
			if walk.Float64() < 0.1 {
				dir[i] = walk.Float64() * 2 * math.Pi
			}
			pos[i].X = reflect01(pos[i].X + step*math.Cos(dir[i]))
			pos[i].Y = reflect01(pos[i].Y + step*math.Sin(dir[i]))
		}
		if err := net.SetPositions(pos); err != nil {
			log.Fatal(err)
		}
		if err := net.Run(stepsPerDt); err != nil {
			log.Fatal(err)
		}
		heads := headSet(net)
		if len(prevHeads) > 0 {
			kept := 0
			//selfstab:orderinvariant counting set intersection; kept is order-independent
			for h := range prevHeads {
				if heads[h] {
					kept++
				}
			}
			retention += 100 * float64(kept) / float64(len(prevHeads))
			counted++
		}
		prevHeads = heads
	}
	return retention / float64(counted)
}

func headSet(net *selfstab.Network) map[int64]bool {
	heads := make(map[int64]bool, 16)
	for _, c := range net.Clusters() {
		for _, m := range c.Members {
			if m == c.HeadID {
				heads[c.HeadID] = true
			}
		}
	}
	return heads
}

func reflect01(v float64) float64 {
	if v < 0 {
		return -v
	}
	if v > 1 {
		return 2 - v
	}
	return v
}
