// Faultinjection: the self-stabilization demo. A converged network has its
// entire state — every shared variable and every neighbor cache on every
// node — overwritten with garbage; the protocol then heals back to exactly
// the same legitimate clustering, without any coordinator or reset.
package main

import (
	"fmt"
	"log"

	"selfstab"
)

func main() {
	net, err := selfstab.NewRandomNetwork(200,
		selfstab.WithSeed(2025),
		selfstab.WithRange(0.12),
		selfstab.WithDAG(0),
	)
	if err != nil {
		log.Fatal(err)
	}

	at, err := net.Stabilize(2000)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
	before := net.Clusters()
	fmt.Printf("converged at step %d: %d clusters, legitimate ✓\n", at, len(before))

	// Total state corruption: every node's density, head, color, parent
	// and all of its cached neighbor information become garbage.
	net.InjectFaults(1.0)
	fmt.Println("injected faults into 100% of nodes")
	if err := net.Verify(); err != nil {
		fmt.Println("  network is now illegitimate:", firstLine(err))
	}

	// Watch the recovery happen.
	for step := 1; ; step++ {
		if err := net.Step(); err != nil {
			log.Fatal(err)
		}
		err := net.Verify()
		if err == nil {
			fmt.Printf("healed: legitimate again after %d steps\n", step)
			break
		}
		if step%2 == 0 {
			fmt.Printf("  step %2d: still recovering (%s)\n", step, firstLine(err))
		}
		if step > 200 {
			log.Fatal("did not recover — this would falsify the theorem")
		}
	}

	after := net.Clusters()
	same := len(before) == len(after)
	for i := 0; same && i < len(before); i++ {
		same = before[i].HeadID == after[i].HeadID
	}
	if same {
		fmt.Println("recovered clustering is identical to the pre-fault one ✓")
	} else {
		fmt.Println("recovered to a different (but legitimate) clustering")
	}
}

func firstLine(err error) string {
	s := err.Error()
	if len(s) > 70 {
		s = s[:70] + "..."
	}
	return s
}
