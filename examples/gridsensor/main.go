// Gridsensor: the paper's adversarial scenario (Section 5, Tables 3/5,
// Figures 2-3). A sensor field deployed as a regular grid with
// spatially-correlated identifiers defeats identifier tie-breaking: every
// interior node has the same density, so without the DAG the whole field
// collapses into a single cluster whose diameter is the network's. The
// constant-height DAG color space restores many small clusters and
// constant-time stabilization.
package main

import (
	"fmt"
	"log"

	"selfstab"
)

func main() {
	run := func(label string, opts ...selfstab.Option) {
		base := []selfstab.Option{
			selfstab.WithSeed(7),
			selfstab.WithRange(0.08),
			selfstab.WithRowMajorIDs(), // the adversarial id distribution
		}
		net, err := selfstab.NewGridNetwork(24, 24, append(base, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		at, err := net.Stabilize(20000)
		if err != nil {
			log.Fatal(label, ": ", err)
		}
		if err := net.Verify(); err != nil {
			log.Fatal(label, ": ", err)
		}
		s := net.Stats()
		fmt.Printf("%-12s stabilized at step %3d: %3d clusters, head ecc %.1f, max tree %d\n",
			label, at, s.Clusters, s.MeanHeadEccentricity, s.MaxTreeLength)

		ascii, err := net.RenderASCII(12, 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ascii)
	}

	fmt.Println("24x24 sensor grid, row-major ids, R=0.08")
	fmt.Println()
	run("without DAG")                   // Figure 2: one giant cluster
	run("with DAG", selfstab.WithDAG(0)) // Figure 3: many clusters
}
