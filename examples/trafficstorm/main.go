// Trafficstorm: the packet-level traffic subsystem at the paper's scale.
// A 1000-node network carries 100+ concurrent flows — CBR and Poisson
// unicast pairs plus a many-to-one hotspot — for 500 Δ(τ) steps under
// three scenarios:
//
//  1. static: the converged clustering routes a steady workload;
//  2. mobility: every node random-walks while the protocol re-stabilizes
//     and the data plane keeps forwarding over the live clustering;
//  3. faults: half the nodes are corrupted mid-run and traffic rides
//     through the self-stabilizing recovery.
//
// Each scenario reports delivery ratio, hop count, path stretch against
// flat shortest paths, end-to-end latency percentiles, and the per-node
// forwarding-load concentration the hierarchy creates on heads and
// gateways.
package main

import (
	"fmt"
	"log"
	"math"

	"selfstab"
	"selfstab/internal/rng"
)

const (
	nodes      = 1000
	steps      = 500
	unicast    = 90 // CBR + Poisson point-to-point flows
	hotSources = 20 // many-to-one hotspot sources (>= 110 flows total)
	rate       = 0.1
	radioRange = 0.1
	budget     = 4 // per-node forwarding budget per step
	seed       = 2025
)

func main() {
	fmt.Printf("trafficstorm: %d nodes x %d steps, %d flows (%d unicast + %d hotspot sources)\n\n",
		nodes, steps, unicast+hotSources, unicast, hotSources)
	runScenario("static Poisson network", func(net *selfstab.Network) error {
		return net.Run(steps)
	})
	runScenario("mobility trace", func(net *selfstab.Network) error {
		return randomWalk(net, steps)
	})
	runScenario("post-fault recovery", func(net *selfstab.Network) error {
		if err := net.Run(steps / 2); err != nil {
			return err
		}
		net.InjectFaults(0.5) // corrupt half the network mid-run
		return net.Run(steps - steps/2)
	})
}

// runScenario builds a fresh network, attaches the standard workload and
// hands the stepping policy to drive.
func runScenario(name string, drive func(*selfstab.Network) error) {
	net, err := selfstab.NewPoissonNetwork(nodes,
		selfstab.WithSeed(seed),
		selfstab.WithRange(radioRange),
		selfstab.WithCacheTTL(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(5000); err != nil {
		log.Fatal(err)
	}
	if err := net.AttachTraffic(selfstab.TrafficConfig{
		QueueCap: 32,
		Budget:   budget,
		Flows:    workload(net),
	}); err != nil {
		log.Fatal(err)
	}
	if err := drive(net); err != nil {
		log.Fatal(err)
	}
	s, err := net.TrafficStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  delivery ratio %.3f  (%d/%d decided; drops: queue %d, no-route %d, ttl %d)\n",
		s.DeliveryRatio, s.Delivered, s.Offered-s.InFlight, s.DropsQueue, s.DropsNoRoute, s.DropsTTL)
	fmt.Printf("  mean hops %.2f, stretch vs flat %.3f\n", s.MeanHops, s.MeanStretch)
	fmt.Printf("  latency steps: p50 %d, p90 %d, p99 %d, max %d\n",
		s.LatencyP50, s.LatencyP90, s.LatencyP99, s.LatencyMax)
	fmt.Printf("  forwarding load: mean %.1f, max %d; heads carry %.1f%% of traffic (%.1f%% of nodes)\n\n",
		s.MeanLoad, s.MaxLoad, 100*s.HeadLoadShare, 100*s.HeadFraction)
}

// workload is the standard 110-flow mix, deterministic given the seed.
func workload(net *selfstab.Network) []selfstab.Flow {
	ids := net.IDs()
	r := rng.New(seed).Split("workload")
	pair := func() (int64, int64) {
		src := ids[r.Intn(len(ids))]
		dst := ids[r.Intn(len(ids))]
		for dst == src {
			dst = ids[r.Intn(len(ids))]
		}
		return src, dst
	}
	flows := make([]selfstab.Flow, 0, unicast+1)
	for i := 0; i < unicast; i++ {
		src, dst := pair()
		if i%2 == 0 {
			flows = append(flows, selfstab.CBRFlow(src, dst, rate))
		} else {
			flows = append(flows, selfstab.PoissonFlow(src, dst, rate))
		}
	}
	flows = append(flows, selfstab.HotspotFlow(ids[r.Intn(len(ids))], hotSources, rate))
	return flows
}

// randomWalk moves every node at pedestrian pace, re-sampling directions
// occasionally, with a burst of protocol+traffic steps between samples.
func randomWalk(net *selfstab.Network, total int) error {
	const (
		burst    = 10
		stepSize = 0.003
	)
	r := rng.New(seed).Split("storm-walk")
	pos := net.Positions()
	dir := make([]float64, len(pos))
	for i := range dir {
		dir[i] = r.Float64() * 2 * math.Pi
	}
	for done := 0; done < total; {
		n := burst
		if rem := total - done; n > rem {
			n = rem
		}
		if err := net.Run(n); err != nil {
			return err
		}
		done += n
		for i := range pos {
			if r.Float64() < 0.1 {
				dir[i] = r.Float64() * 2 * math.Pi
			}
			pos[i].X = reflect01(pos[i].X + stepSize*math.Cos(dir[i]))
			pos[i].Y = reflect01(pos[i].Y + stepSize*math.Sin(dir[i]))
		}
		if err := net.SetPositions(pos); err != nil {
			return err
		}
	}
	return nil
}

func reflect01(v float64) float64 {
	if v < 0 {
		return -v
	}
	if v > 1 {
		return 2 - v
	}
	return v
}
