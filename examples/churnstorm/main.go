// Churnstorm: node-lifecycle churn at the paper's scale, with the
// convergence ledger measuring the self-stabilization claim disruption by
// disruption. A 1000-node network carries a CBR workload while nodes
// appear, depart, crash and duty-cycle:
//
//  1. steady churn: ~1% of the population is disrupted every step for 300
//     steps while the clustering continuously re-converges around the
//     churn and the data plane keeps forwarding;
//  2. flash crowd: 150 nodes power up in one step inside a small disc —
//     the disaster-area scenario of the paper's introduction, arriving
//     mid-run;
//  3. blackout: a third of the network duty-cycles off at once, runs
//     dark, then wakes with stale state that self-stabilization repairs.
//
// Each scenario reports the convergence ledger — episodes, mean/max
// steps-to-restabilize, affected radius in hops (the paper's locality
// claim, measured) — and the traffic ledger including the dead-endpoint
// drops churn inflicts.
package main

import (
	"fmt"
	"log"

	"selfstab"
)

const (
	nodes      = 1000
	steps      = 300
	flows      = 60
	rate       = 0.1
	radioRange = 0.1
	seed       = 2026
)

func main() {
	fmt.Printf("churnstorm: %d nodes x %d steps, %d CBR flows riding through the churn\n\n",
		nodes, steps, flows)

	runScenario("steady churn (~1%/step)", func(net *selfstab.Network) error {
		if err := net.AttachChurn(selfstab.ChurnConfig{
			ArrivalRate:   1,
			DepartureRate: 1,
			CrashRate:     4,
			SleepRate:     2,
			SleepSteps:    20,
		}); err != nil {
			return err
		}
		if err := net.Run(steps); err != nil {
			return err
		}
		net.DetachChurn()
		return nil
	})

	runScenario("flash crowd (150 joins at once)", func(net *selfstab.Network) error {
		if err := net.Run(steps / 3); err != nil {
			return err
		}
		pts := make([]selfstab.Point, 150)
		for i := range pts {
			// A tight disc around (0.3, 0.7): the arriving incident-response
			// team of the paper's motivating scenario.
			pts[i] = selfstab.Point{
				X: 0.3 + 0.08*float64(i%15)/15,
				Y: 0.7 + 0.08*float64(i/15)/10,
			}
		}
		if _, err := net.AddNodes(pts); err != nil {
			return err
		}
		return net.Run(steps - steps/3)
	})

	runScenario("blackout (1/3 sleeps, then wakes)", func(net *selfstab.Network) error {
		ids := net.IDs()
		var down []int64
		for i := 0; i < len(ids); i += 3 {
			down = append(down, ids[i])
		}
		if err := net.Run(steps / 4); err != nil {
			return err
		}
		if err := net.SleepNodes(down...); err != nil {
			return err
		}
		if err := net.Run(steps / 2); err != nil {
			return err
		}
		if err := net.WakeNodes(down...); err != nil {
			return err
		}
		return net.Run(steps - steps/4 - steps/2)
	})
}

// runScenario builds a fresh stabilized network carrying the standard
// workload, hands the churn policy to drive, then lets the survivors
// re-stabilize and prints both ledgers.
func runScenario(name string, drive func(*selfstab.Network) error) {
	net, err := selfstab.NewPoissonNetwork(nodes,
		selfstab.WithSeed(seed),
		selfstab.WithRange(radioRange),
		selfstab.WithCacheTTL(8),
		selfstab.WithStableWindow(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(5000); err != nil {
		log.Fatal(err)
	}
	ids := net.IDs()
	specs := make([]selfstab.Flow, 0, flows)
	for i := 0; i < flows; i++ {
		specs = append(specs, selfstab.CBRFlow(
			ids[(i*7)%len(ids)], ids[(i*13+len(ids)/2)%len(ids)], rate))
	}
	if err := net.AttachTraffic(selfstab.TrafficConfig{QueueCap: 32, Budget: 2, Flows: specs}); err != nil {
		log.Fatal(err)
	}
	if err := drive(net); err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(20000); err != nil {
		log.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		log.Fatalf("%s: network did not re-stabilize legitimately: %v", name, err)
	}

	alive, sleeping, dead := net.Population()
	cs := net.ConvergenceStats()
	ts, err := net.TrafficStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  population: %d slots — %d alive, %d sleeping, %d dead; %d clusters, Verify ok\n",
		net.N(), alive, sleeping, dead, len(net.Clusters()))
	var ops int
	for _, d := range cs.Disruptions {
		ops += d.Ops
	}
	fmt.Printf("  convergence: %d episodes (%d disruptions), restabilize mean %.1f / max %d steps, radius mean %.1f / max %d hops\n",
		len(cs.Disruptions), ops, cs.MeanStepsToStabilize, cs.MaxStepsToStabilize,
		cs.MeanAffectedRadius, cs.MaxAffectedRadius)
	fmt.Printf("  traffic: delivery %.3f (%d/%d decided), drops: queue %d, no-route %d, ttl %d, dead-endpoint %d\n\n",
		ts.DeliveryRatio, ts.Delivered, ts.Offered-ts.InFlight,
		ts.DropsQueue, ts.DropsNoRoute, ts.DropsTTL, ts.DropsDeadEndpoint)
}
