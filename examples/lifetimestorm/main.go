// Lifetimestorm: the energy subsystem at the paper's scale — batteries,
// traffic-coupled drain, depletion-driven churn and energy-aware head
// rotation, closed into one loop. A 1000-node network carries a
// many-to-one convergecast (the classic sensor-field workload) while
// every node pays for its role and its radio:
//
//  1. burn-down: plain density heads, batteries drain until relays around
//     the sink start dying — each depletion is a real departure that the
//     clustering must re-stabilize around, measured by the convergence
//     ledger;
//  2. rotation: the identical seed with energy-aware head election — the
//     shared density is scaled by the quantized remaining battery, so
//     draining heads lose the ≺ election online and the first death moves
//     out;
//  3. duty-cycle: a seeded sleep schedule powers nodes down and back up
//     mid-run, and the sleep cost shows up as saved battery.
//
// Each scenario reports the energy ledger (first-death step, per-cause
// drain, alive-energy deciles) next to the convergence and traffic
// ledgers the drain feeds.
package main

import (
	"fmt"
	"log"

	"selfstab"
)

const (
	nodes      = 1000
	steps      = 500
	sources    = 80
	rate       = 0.2
	radioRange = 0.1
	capacity   = 0.8
	seed       = 2026
)

func main() {
	fmt.Printf("lifetimestorm: %d nodes x %d steps, %d-source convergecast, %.1f-unit batteries\n\n",
		nodes, steps, sources, capacity)

	runScenario("burn-down (plain density heads)", false, func(net *selfstab.Network) error {
		return net.Run(steps)
	})

	runScenario("rotation (energy-aware heads, same seed)", true, func(net *selfstab.Network) error {
		return net.Run(steps)
	})

	runScenario("duty-cycle (seeded sleep schedule)", false, func(net *selfstab.Network) error {
		if err := net.AttachChurn(selfstab.ChurnConfig{
			SleepRate:  8,
			SleepSteps: 25,
		}); err != nil {
			return err
		}
		if err := net.Run(steps); err != nil {
			return err
		}
		net.DetachChurn()
		return nil
	})
}

// runScenario builds a fresh stabilized network carrying the convergecast
// workload with batteries attached, hands the policy to drive, then lets
// the survivors re-stabilize and prints all three ledgers.
func runScenario(name string, rotation bool, drive func(*selfstab.Network) error) {
	net, err := selfstab.NewPoissonNetwork(nodes,
		selfstab.WithSeed(seed),
		selfstab.WithRange(radioRange),
		selfstab.WithCacheTTL(8),
		selfstab.WithStableWindow(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Stabilize(5000); err != nil {
		log.Fatal(err)
	}
	ids := net.IDs()
	if err := net.AttachTraffic(selfstab.TrafficConfig{
		QueueCap: 32,
		Budget:   2,
		Flows:    []selfstab.Flow{selfstab.HotspotFlow(ids[0], sources, rate)},
	}); err != nil {
		log.Fatal(err)
	}
	if err := net.AttachEnergy(selfstab.EnergyConfig{
		Capacity: capacity,
		Rotation: rotation,
	}); err != nil {
		log.Fatal(err)
	}
	if err := drive(net); err != nil {
		log.Fatal(err)
	}
	// Freeze the drain, then let the survivors settle so the final
	// depletion episode closes into the convergence ledger.
	net.DetachEnergy()
	if _, err := net.Stabilize(20000); err != nil {
		log.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		log.Fatalf("%s: network did not re-stabilize legitimately: %v", name, err)
	}

	es, err := net.EnergyStats()
	if err != nil {
		log.Fatal(err)
	}
	ts, err := net.TrafficStats()
	if err != nil {
		log.Fatal(err)
	}
	cs := net.ConvergenceStats()
	alive, sleeping, dead := net.Population()

	fmt.Printf("%s:\n", name)
	fmt.Printf("  population: %d slots — %d alive, %d sleeping, %d dead; %d clusters, Verify ok\n",
		net.N(), alive, sleeping, dead, len(net.Clusters()))
	first := "no battery depleted"
	if es.FirstDeathStep >= 0 {
		first = fmt.Sprintf("first death at step %d", es.FirstDeathStep)
	}
	fmt.Printf("  energy: %s, %d depletions; drained %.1f (head %.1f, member %.1f, sleep %.2f, tx %.1f, rx %.1f); mean remaining %.3f\n",
		first, es.Depletions, es.TotalDrain, es.DrainHead, es.DrainMember,
		es.DrainSleep, es.DrainTx, es.DrainRx, es.MeanRemaining)
	fmt.Printf("  energy deciles: %v\n", es.Histogram)
	var ops int
	for _, d := range cs.Disruptions {
		ops += d.Ops
	}
	fmt.Printf("  convergence: %d episodes (%d disruptions), restabilize mean %.1f / max %d steps\n",
		len(cs.Disruptions), ops, cs.MeanStepsToStabilize, cs.MaxStepsToStabilize)
	fmt.Printf("  traffic: delivery %.3f (%d/%d decided), drops: queue %d, no-route %d, ttl %d, dead-endpoint %d\n\n",
		ts.DeliveryRatio, ts.Delivered, ts.Offered-ts.InFlight,
		ts.DropsQueue, ts.DropsNoRoute, ts.DropsTTL, ts.DropsDeadEndpoint)
}
