// Quickstart: deploy a Poisson network, run the self-stabilizing
// density-driven clustering protocol to convergence, and inspect the
// resulting clusters — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"selfstab"
)

func main() {
	// A ~300-node network in the unit square (1 km x 1 km at the paper's
	// scale), 100 m radio range, reproducible seed.
	net, err := selfstab.NewPoissonNetwork(300,
		selfstab.WithSeed(42),
		selfstab.WithRange(0.1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d nodes, radio range %.2f\n", net.N(), net.Range())

	// Run the protocol until the shared state stops changing. Each step is
	// one Δ(τ) round: every node broadcasts once and re-evaluates its
	// guarded assignments (density, cluster-head choice).
	stabilizedAt, err := net.Stabilize(1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stabilized after %d steps\n", stabilizedAt)

	// Verify executes the paper's legitimacy predicate: exact densities,
	// head fixpoint, structural invariants.
	if err := net.Verify(); err != nil {
		log.Fatal("illegitimate configuration: ", err)
	}

	clusters := net.Clusters()
	stats := net.Stats()
	fmt.Printf("clusters: %d (mean head eccentricity %.1f, max tree length %d)\n",
		stats.Clusters, stats.MeanHeadEccentricity, stats.MaxTreeLength)
	for i, c := range clusters {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(clusters)-5)
			break
		}
		fmt.Printf("  head %4d: %d members\n", c.HeadID, len(c.Members))
	}

	// ASCII map: uppercase letters are cluster-heads.
	ascii, err := net.RenderASCII(20, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncluster map (uppercase = cluster-head):")
	fmt.Print(ascii)
}
