package selfstab

import (
	"reflect"
	"testing"
)

// trafficNet builds a stabilized random network ready to carry traffic.
func trafficNet(t testing.TB, nodes int, seed int64, opts ...Option) *Network {
	t.Helper()
	opts = append([]Option{WithSeed(seed), WithRange(0.14)}, opts...)
	net, err := NewRandomNetwork(nodes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(1000); err != nil {
		t.Fatal(err)
	}
	return net
}

// mixedWorkload is a representative flow mix: CBR and Poisson unicast
// pairs plus a many-to-one hotspot.
func mixedWorkload(net *Network, flows int) []Flow {
	ids := net.IDs()
	out := make([]Flow, 0, flows+1)
	for i := 0; i < flows; i++ {
		src := ids[(i*7)%len(ids)]
		dst := ids[(i*13+len(ids)/2)%len(ids)]
		if i%2 == 0 {
			out = append(out, CBRFlow(src, dst, 0.5))
		} else {
			out = append(out, PoissonFlow(src, dst, 0.5))
		}
	}
	out = append(out, HotspotFlow(ids[0], 8, 0.25))
	return out
}

// TestTrafficDeterminism is the traffic twin of the engine's parallel
// determinism contract: same seed, different worker counts, identical
// TrafficStats — packet trajectories included.
func TestTrafficDeterminism(t *testing.T) {
	build := func(workers int) TrafficStats {
		net := trafficNet(t, 250, 99)
		net.SetParallelism(workers)
		if err := net.AttachTraffic(TrafficConfig{
			QueueCap: 8,
			Flows:    mixedWorkload(net, 12),
		}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(120); err != nil {
			t.Fatal(err)
		}
		ts, err := net.TrafficStats()
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	s1, s4 := build(1), build(4)
	if !reflect.DeepEqual(s1, s4) {
		t.Fatalf("traffic diverged between 1 and 4 workers:\n1: %+v\n4: %+v", s1, s4)
	}
	if s1.Offered == 0 || s1.Delivered == 0 {
		t.Fatalf("degenerate run: %+v", s1)
	}
}

// checkTrafficLedger asserts that every offered packet has exactly one
// fate.
func checkTrafficLedger(t *testing.T, s TrafficStats) {
	t.Helper()
	if got := s.Delivered + s.DropsQueue + s.DropsNoRoute + s.DropsTTL + s.DropsDeadEndpoint + s.DropsAdmission + s.DropsRateLimit + s.InFlight; got != s.Offered {
		t.Fatalf("ledger broken: %+v", s)
	}
}

// TestTrafficDeliveryOnStableNetwork: on a converged static network,
// lightly loaded flows between connected nodes deliver nearly everything
// at stretch >= 1.
func TestTrafficDeliveryOnStableNetwork(t *testing.T) {
	net := trafficNet(t, 200, 7)
	// Pick endpoints inside the largest cluster's component: route must
	// exist.
	var flows []Flow
	clusters := net.Clusters()
	for i := 0; i < len(clusters) && len(flows) < 6; i++ {
		ms := clusters[i].Members
		if len(ms) >= 2 {
			flows = append(flows, CBRFlow(ms[0], ms[len(ms)-1], 0.5))
		}
	}
	if len(flows) == 0 {
		t.Skip("no multi-member clusters")
	}
	if err := net.AttachTraffic(TrafficConfig{Flows: flows}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(200); err != nil {
		t.Fatal(err)
	}
	s, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s)
	if s.DeliveryRatio < 0.99 {
		t.Errorf("delivery ratio %v on an idle stable network, want ~1: %+v", s.DeliveryRatio, s)
	}
	if s.Delivered > 0 && s.MeanStretch < 1 {
		t.Errorf("mean stretch %v < 1: hierarchical routes can't beat shortest paths", s.MeanStretch)
	}
	if s.LatencyP50 < 1 {
		t.Errorf("latency p50 %d, want >= 1 for multi-hop flows", s.LatencyP50)
	}
}

// TestTrafficQueueOverflowAccounting floods one sink through tiny queues
// and checks the drop ledger stays exact under congestion collapse.
func TestTrafficQueueOverflowAccounting(t *testing.T) {
	net := trafficNet(t, 150, 21)
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 2,
		Flows:    []Flow{HotspotFlow(ids[0], 40, 1.5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(150); err != nil {
		t.Fatal(err)
	}
	s, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s)
	if s.DropsQueue == 0 {
		t.Errorf("40 sources x 1.5 pkt/step into 2-slot queues dropped nothing: %+v", s)
	}
	// Per-flow accounting must add up to the engine totals.
	var offered, delivered, dropped int64
	for _, f := range s.PerFlow {
		offered += f.Offered
		delivered += f.Delivered
		dropped += f.Dropped
	}
	if offered != s.Offered || delivered != s.Delivered {
		t.Errorf("per-flow sums (%d, %d) != totals (%d, %d)", offered, delivered, s.Offered, s.Delivered)
	}
	if wantDropped := s.DropsQueue + s.DropsNoRoute + s.DropsTTL; dropped != wantDropped {
		t.Errorf("per-flow dropped %d != engine drops %d", dropped, wantDropped)
	}
	// DropHead under the same load also keeps the ledger exact.
	net2 := trafficNet(t, 150, 21)
	ids2 := net2.IDs()
	if err := net2.AttachTraffic(TrafficConfig{
		QueueCap:   2,
		Discipline: DropHead,
		Flows:      []Flow{HotspotFlow(ids2[0], 40, 1.5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net2.Run(150); err != nil {
		t.Fatal(err)
	}
	s2, err := net2.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s2)
	if s2.DropsQueue == 0 {
		t.Errorf("DropHead dropped nothing under overload: %+v", s2)
	}
}

// TestTrafficAcrossPartition: flows between disconnected components must
// show up as no-route drops, not silent loss.
func TestTrafficAcrossPartition(t *testing.T) {
	// Two clumps far outside radio range of each other.
	pts := []Point{
		{0.1, 0.1}, {0.12, 0.1}, {0.1, 0.12},
		{0.9, 0.9}, {0.88, 0.9}, {0.9, 0.88},
	}
	net, err := NewNetwork(pts, WithSeed(3), WithRange(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		Flows: []Flow{CBRFlow(ids[0], ids[3], 1)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(20); err != nil {
		t.Fatal(err)
	}
	s, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s)
	if s.Delivered != 0 {
		t.Errorf("delivered %d packets across a partition", s.Delivered)
	}
	if s.DropsNoRoute == 0 {
		t.Errorf("cross-partition flow produced no no-route drops: %+v", s)
	}
	// No-route drops are not transmissions: nothing was ever forwarded,
	// so the load ledger must stay empty.
	load, err := net.TrafficLoad()
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range load {
		if l != 0 {
			t.Errorf("node %d shows load %d on a network that only dropped", i, l)
		}
	}
	if s.MaxLoad != 0 {
		t.Errorf("max load %d, want 0 when every packet dropped at the source", s.MaxLoad)
	}
}

// TestTrafficSurvivesFaultsAndHeals: the data plane keeps accounting
// through total corruption and recovers its delivery ratio after the
// protocol re-stabilizes.
func TestTrafficSurvivesFaultsAndHeals(t *testing.T) {
	net := trafficNet(t, 200, 5, WithDAG(0))
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		Flows: []Flow{CBRFlow(ids[1], ids[2], 1), PoissonFlow(ids[3], ids[4], 0.5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(50); err != nil {
		t.Fatal(err)
	}
	net.InjectFaults(1)
	if _, err := net.Stabilize(2000); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(100); err != nil {
		t.Fatal(err)
	}
	s, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s)
	if s.Delivered == 0 {
		t.Errorf("nothing delivered across fault injection and recovery: %+v", s)
	}
}

// TestTrafficAttachValidation covers the error surface.
func TestTrafficAttachValidation(t *testing.T) {
	net := trafficNet(t, 30, 1)
	if _, err := net.TrafficStats(); err == nil {
		t.Error("TrafficStats before AttachTraffic succeeded")
	}
	if _, err := net.TrafficLoad(); err == nil {
		t.Error("TrafficLoad before AttachTraffic succeeded")
	}
	cases := []TrafficConfig{
		{},                                    // no flows
		{Flows: []Flow{CBRFlow(99999, 0, 1)}}, // unknown src
		{Flows: []Flow{CBRFlow(0, 99999, 1)}}, // unknown dst
		{Flows: []Flow{HotspotFlow(99999, 3, 1)}}, // unknown sink
		{Flows: []Flow{HotspotFlow(0, 30, 1)}},    // too many sources
		{Flows: []Flow{CBRFlow(0, 1, -1)}},        // bad rate
		{Discipline: QueueDiscipline(9), Flows: []Flow{CBRFlow(0, 1, 1)}},
	}
	for i, cfg := range cases {
		if err := net.AttachTraffic(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestDetachTraffic: after detaching, steps no longer move packets but the
// final ledger stays readable.
func TestDetachTraffic(t *testing.T) {
	net := trafficNet(t, 50, 13)
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{Flows: []Flow{CBRFlow(ids[0], ids[1], 1)}}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(20); err != nil {
		t.Fatal(err)
	}
	before, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	// Steps counts data-plane steps only, not the stabilization that ran
	// before AttachTraffic.
	if before.Steps != 20 {
		t.Errorf("traffic Steps = %d after 20 attached steps, want 20", before.Steps)
	}
	net.DetachTraffic()
	if err := net.Run(20); err != nil {
		t.Fatal(err)
	}
	after, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	if before.Offered != after.Offered {
		t.Errorf("detached data plane kept injecting: %d -> %d", before.Offered, after.Offered)
	}
}

// TestHotspotConcentratesLoadOnHeads: the convergecast workload must show
// the hierarchy's load concentration — cluster-heads carry a share of
// forwarding well above their population share.
func TestHotspotConcentratesLoadOnHeads(t *testing.T) {
	net := trafficNet(t, 300, 17)
	ids := net.IDs()
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 32,
		Flows:    []Flow{HotspotFlow(ids[0], 60, 0.5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(200); err != nil {
		t.Fatal(err)
	}
	s, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	checkTrafficLedger(t, s)
	if s.Delivered == 0 {
		t.Fatalf("hotspot delivered nothing: %+v", s)
	}
	if s.HeadLoadShare <= s.HeadFraction {
		t.Errorf("head load share %.3f <= head population share %.3f — hierarchy should concentrate load on heads",
			s.HeadLoadShare, s.HeadFraction)
	}
	load, err := net.TrafficLoad()
	if err != nil {
		t.Fatal(err)
	}
	if len(load) != net.N() {
		t.Errorf("load vector has %d entries for %d nodes", len(load), net.N())
	}
}
