module selfstab

go 1.24.0
