// Package routing implements the two routing architectures whose contrast
// motivates the paper (Sections 1-2): flat proactive routing, whose
// per-node state and control traffic grow with the whole network, and
// cluster-based hierarchical routing over the self-stabilizing clustering,
// where a node keeps routes only within its cluster plus a summary of the
// cluster overlay. The experiment layer uses both to regenerate the
// scalability argument: state per node O(n) flat vs O(cluster) + O(degree
// of the cluster overlay) hierarchical, at a small path-stretch cost.
package routing

import (
	"errors"
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/topology"
)

// ErrUnreachable is returned when no route exists between two nodes.
var ErrUnreachable = errors.New("routing: destination unreachable")

// Flat is a link-state routing table: every node knows a next hop toward
// every other node (computed from all-pairs BFS).
type Flat struct {
	g    *topology.Graph
	next [][]int // next[src][dst] = neighbor of src toward dst, -1 unreachable
}

// BuildFlat computes the flat table. O(V*E) time, O(V^2) state — the
// scalability problem the paper opens with.
func BuildFlat(g *topology.Graph) *Flat {
	n := g.N()
	f := &Flat{g: g, next: make([][]int, n)}
	for src := 0; src < n; src++ {
		f.next[src] = make([]int, n)
		for i := range f.next[src] {
			f.next[src][i] = -1
		}
	}
	// One BFS per destination, recording each node's parent toward dst.
	for dst := 0; dst < n; dst++ {
		parent := bfsParents(g, dst)
		for src := 0; src < n; src++ {
			if src == dst {
				f.next[src][dst] = src
			} else if parent[src] >= 0 {
				f.next[src][dst] = parent[src]
			}
		}
	}
	return f
}

// bfsParents returns, for each node, its BFS parent toward root (-1 if
// unreachable; root's parent is itself).
func bfsParents(g *topology.Graph, root int) []int {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if parent[w] < 0 {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return parent
}

// Route returns the hop sequence from src to dst (inclusive of both).
func (f *Flat) Route(src, dst int) ([]int, error) {
	n := f.g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("routing: endpoints (%d, %d) out of range", src, dst)
	}
	path := []int{src}
	for cur := src; cur != dst; {
		nxt := f.next[cur][dst]
		if nxt < 0 {
			return nil, ErrUnreachable
		}
		cur = nxt
		path = append(path, cur)
		if len(path) > n {
			return nil, fmt.Errorf("routing: flat table loop between %d and %d", src, dst)
		}
	}
	return path, nil
}

// StatePerNode returns the mean number of routing entries per node: n-1
// for every node in flat routing (unreachable entries still occupy state
// in a proactive protocol's table).
func (f *Flat) StatePerNode() float64 {
	return float64(f.g.N() - 1)
}

// Hierarchical routes over a clustering: each node keeps an intra-cluster
// table (next hop toward every same-cluster member) plus one default
// route; cluster-heads additionally keep one gateway entry per adjacent
// cluster of the overlay.
type Hierarchical struct {
	g    *topology.Graph
	head []int
	// comp labels connected components of the true topology: routing
	// between different components fails with ErrUnreachable immediately,
	// regardless of how scrambled a mid-convergence assignment is (a
	// transient head choice must never turn "unreachable" into a loop
	// error).
	comp []int
	// intra[u] maps same-cluster destinations to u's next hop.
	intra []map[int]int
	// overlayNext[h] maps a destination head to the next head on the
	// overlay path.
	overlayNext map[int]map[int]int
	// gateway[h1][h2] is the border edge (u in h1's cluster, v in h2's)
	// used to cross between adjacent clusters.
	gateway map[int]map[int][2]int
}

// BuildHierarchical computes hierarchical routing state from a converged
// assignment.
func BuildHierarchical(g *topology.Graph, a *cluster.Assignment) (*Hierarchical, error) {
	n := g.N()
	if len(a.Head) != n {
		return nil, fmt.Errorf("routing: assignment for %d nodes, graph has %d", len(a.Head), n)
	}
	comp, _ := g.Components()
	h := &Hierarchical{
		g:           g,
		head:        append([]int(nil), a.Head...),
		comp:        comp,
		intra:       make([]map[int]int, n),
		overlayNext: make(map[int]map[int]int),
		gateway:     make(map[int]map[int][2]int),
	}

	// Intra-cluster tables: BFS restricted to the cluster, per member.
	members := make(map[int][]int)
	for u := 0; u < n; u++ {
		members[a.Head[u]] = append(members[a.Head[u]], u)
		h.intra[u] = make(map[int]int)
	}
	inCluster := make([]bool, n)
	for head, ms := range members {
		for _, u := range ms {
			inCluster[u] = true
		}
		for _, dst := range ms {
			parent := bfsParentsWithin(g, dst, inCluster)
			for _, src := range ms {
				if src != dst && parent[src] >= 0 {
					h.intra[src][dst] = parent[src]
				}
			}
		}
		for _, u := range ms {
			inCluster[u] = false
		}
		_ = head
	}

	// Cluster overlay: heads adjacent when their clusters share a border
	// edge; remember one deterministic gateway edge per cluster pair.
	heads := a.Heads()
	overlay := topology.New(n) // sparse use: only head indices get edges
	for u := 0; u < n; u++ {
		hu := a.Head[u]
		for _, v := range g.Neighbors(u) {
			hv := a.Head[v]
			if hu == hv {
				continue
			}
			if h.gateway[hu] == nil {
				h.gateway[hu] = make(map[int][2]int)
			}
			gw, exists := h.gateway[hu][hv]
			// Keep the lexicographically smallest border edge so the
			// table is deterministic.
			if !exists || u < gw[0] || (u == gw[0] && v < gw[1]) {
				h.gateway[hu][hv] = [2]int{u, v}
			}
			if !overlay.HasEdge(hu, hv) {
				if err := overlay.AddEdge(hu, hv); err != nil {
					return nil, err
				}
			}
		}
	}

	// Overlay next-hop tables (BFS per head over the overlay).
	for _, dstHead := range heads {
		parent := bfsParents(overlay, dstHead)
		for _, srcHead := range heads {
			if srcHead == dstHead || parent[srcHead] < 0 {
				continue
			}
			if h.overlayNext[srcHead] == nil {
				h.overlayNext[srcHead] = make(map[int]int)
			}
			h.overlayNext[srcHead][dstHead] = parent[srcHead]
		}
	}
	return h, nil
}

// bfsParentsWithin is bfsParents restricted to the member set.
func bfsParentsWithin(g *topology.Graph, root int, member []bool) []int {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	if !member[root] {
		return parent
	}
	parent[root] = root
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if member[w] && parent[w] < 0 {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return parent
}

// Route returns the hop sequence from src to dst: intra-cluster directly,
// otherwise along the cluster overlay crossing one gateway edge per
// cluster boundary.
func (h *Hierarchical) Route(src, dst int) ([]int, error) {
	n := h.g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("routing: endpoints (%d, %d) out of range", src, dst)
	}
	if h.comp[src] != h.comp[dst] {
		return nil, ErrUnreachable
	}
	if h.head[src] == h.head[dst] {
		return h.intraRoute(src, dst)
	}
	path := []int{src}
	cur := src
	for h.head[cur] != h.head[dst] {
		curHead := h.head[cur]
		nextHead, ok := h.overlayNext[curHead][h.head[dst]]
		if !ok {
			return nil, ErrUnreachable
		}
		gw, ok := h.gateway[curHead][nextHead]
		if !ok {
			return nil, ErrUnreachable
		}
		// Walk inside the current cluster to the gateway's near end, then
		// cross the border edge.
		leg, err := h.intraRoute(cur, gw[0])
		if err != nil {
			return nil, err
		}
		path = append(path, leg[1:]...)
		path = append(path, gw[1])
		cur = gw[1]
		if len(path) > 4*n {
			return nil, fmt.Errorf("routing: hierarchical loop between %d and %d", src, dst)
		}
	}
	leg, err := h.intraRoute(cur, dst)
	if err != nil {
		return nil, err
	}
	return append(path, leg[1:]...), nil
}

// NextHop returns the single next hop a packet at cur takes toward dst —
// the per-packet primitive the traffic data plane forwards with. It is
// allocation-free: a handful of map lookups against the prebuilt tables.
// dst == cur returns cur. ErrUnreachable follows the same rules as Route:
// always for cross-partition pairs, and whenever the hierarchy has no
// entry (possible mid-convergence).
func (h *Hierarchical) NextHop(cur, dst int) (int, error) {
	n := h.g.N()
	if cur < 0 || cur >= n || dst < 0 || dst >= n {
		return -1, fmt.Errorf("routing: endpoints (%d, %d) out of range", cur, dst)
	}
	if cur == dst {
		return cur, nil
	}
	if h.comp[cur] != h.comp[dst] {
		return -1, ErrUnreachable
	}
	if h.head[cur] == h.head[dst] {
		nxt, ok := h.intra[cur][dst]
		if !ok {
			return -1, ErrUnreachable
		}
		return nxt, nil
	}
	curHead := h.head[cur]
	nextHead, ok := h.overlayNext[curHead][h.head[dst]]
	if !ok {
		return -1, ErrUnreachable
	}
	gw, ok := h.gateway[curHead][nextHead]
	if !ok {
		return -1, ErrUnreachable
	}
	if cur == gw[0] {
		return gw[1], nil // cross the border edge
	}
	nxt, ok := h.intra[cur][gw[0]]
	if !ok {
		return -1, ErrUnreachable
	}
	return nxt, nil
}

// intraRoute walks the intra-cluster table.
func (h *Hierarchical) intraRoute(src, dst int) ([]int, error) {
	path := []int{src}
	for cur := src; cur != dst; {
		nxt, ok := h.intra[cur][dst]
		if !ok {
			return nil, ErrUnreachable
		}
		cur = nxt
		path = append(path, cur)
		if len(path) > h.g.N() {
			return nil, fmt.Errorf("routing: intra-cluster loop between %d and %d", src, dst)
		}
	}
	return path, nil
}

// StatePerNode returns the mean number of routing entries per node:
// the intra-cluster table plus, for heads, the overlay and gateway
// entries. This is the quantity the paper's scalability argument is about.
func (h *Hierarchical) StatePerNode() float64 {
	total := 0
	for u := range h.intra {
		total += len(h.intra[u])
	}
	for head := range h.overlayNext {
		total += len(h.overlayNext[head])
	}
	for head := range h.gateway {
		total += len(h.gateway[head])
	}
	return float64(total) / float64(h.g.N())
}
