package routing

import (
	"errors"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/deploy"
	"selfstab/internal/geom"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

func clusteredNetwork(t *testing.T, seed int64, n int, r float64) (*topology.Graph, *cluster.Assignment) {
	t.Helper()
	src := rng.New(seed)
	dep := deploy.Uniform(n, geom.UnitSquare(), deploy.IDRandom, src)
	g := topology.FromPoints(dep.Points, r)
	a, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: dep.IDs,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

func validatePath(t *testing.T, g *topology.Graph, path []int, src, dst int) {
	t.Helper()
	if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("path endpoints wrong: %v (want %d..%d)", path, src, dst)
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Fatalf("path uses non-edge (%d, %d): %v", path[i-1], path[i], path)
		}
	}
}

func TestFlatRoutesAreShortest(t *testing.T) {
	g, _ := clusteredNetwork(t, 1, 60, 0.25)
	f := BuildFlat(g)
	for src := 0; src < g.N(); src += 7 {
		dist := g.Distances(src)
		for dst := 0; dst < g.N(); dst += 5 {
			if dist[dst] < 0 {
				if _, err := f.Route(src, dst); !errors.Is(err, ErrUnreachable) {
					t.Errorf("unreachable pair (%d,%d) routed", src, dst)
				}
				continue
			}
			path, err := f.Route(src, dst)
			if err != nil {
				t.Fatalf("(%d,%d): %v", src, dst, err)
			}
			validatePath(t, g, path, src, dst)
			if len(path)-1 != dist[dst] {
				t.Errorf("(%d,%d): flat path %d hops, shortest %d", src, dst, len(path)-1, dist[dst])
			}
		}
	}
}

func TestFlatSelfRoute(t *testing.T) {
	g, _ := clusteredNetwork(t, 2, 20, 0.3)
	f := BuildFlat(g)
	path, err := f.Route(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != 3 {
		t.Errorf("self route = %v", path)
	}
}

func TestFlatValidation(t *testing.T) {
	g, _ := clusteredNetwork(t, 3, 10, 0.3)
	f := BuildFlat(g)
	if _, err := f.Route(-1, 0); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := f.Route(0, 99); err == nil {
		t.Error("out-of-range dst accepted")
	}
}

func TestHierarchicalRoutesValid(t *testing.T) {
	g, a := clusteredNetwork(t, 4, 120, 0.15)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	routed, unreachable := 0, 0
	for src := 0; src < g.N(); src += 11 {
		dist := g.Distances(src)
		for dst := 0; dst < g.N(); dst += 7 {
			path, err := h.Route(src, dst)
			if err != nil {
				if dist[dst] >= 0 && errors.Is(err, ErrUnreachable) {
					// Hierarchical routing can only fail for physically
					// unreachable pairs: connected clusters always have
					// overlay routes.
					t.Errorf("(%d,%d): physically reachable but hierarchically unreachable", src, dst)
				}
				unreachable++
				continue
			}
			validatePath(t, g, path, src, dst)
			routed++
		}
	}
	if routed == 0 {
		t.Fatal("no pairs routed")
	}
	_ = unreachable
}

func TestHierarchicalIntraClusterDirect(t *testing.T) {
	g, a := clusteredNetwork(t, 5, 80, 0.2)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	// Same-cluster pairs route without leaving the cluster.
	for src := 0; src < g.N(); src++ {
		for _, dst := range a.Members(a.Head[src]) {
			path, err := h.Route(src, dst)
			if err != nil {
				t.Fatalf("(%d,%d) same cluster: %v", src, dst, err)
			}
			for _, hop := range path {
				if a.Head[hop] != a.Head[src] {
					t.Fatalf("intra route left the cluster: %v", path)
				}
			}
		}
		if src > 20 {
			break // a sample suffices
		}
	}
}

func TestHierarchicalStretchBounded(t *testing.T) {
	g, a := clusteredNetwork(t, 6, 150, 0.15)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	var totalHier, totalShort int
	for src := 0; src < g.N(); src += 13 {
		dist := g.Distances(src)
		for dst := 0; dst < g.N(); dst += 9 {
			if src == dst || dist[dst] < 0 {
				continue
			}
			path, err := h.Route(src, dst)
			if err != nil {
				continue
			}
			totalHier += len(path) - 1
			totalShort += dist[dst]
		}
	}
	if totalShort == 0 {
		t.Skip("no connected sample pairs")
	}
	stretch := float64(totalHier) / float64(totalShort)
	if stretch < 1 {
		t.Errorf("stretch %v < 1: hierarchical routes shorter than shortest paths", stretch)
	}
	if stretch > 3 {
		t.Errorf("stretch %v > 3: implausibly long detours", stretch)
	}
}

func TestHierarchicalStateSmallerThanFlat(t *testing.T) {
	g, a := clusteredNetwork(t, 7, 400, 0.1)
	f := BuildFlat(g)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if h.StatePerNode() >= f.StatePerNode()/2 {
		t.Errorf("hierarchical state %v not substantially below flat %v",
			h.StatePerNode(), f.StatePerNode())
	}
}

func TestHierarchicalValidation(t *testing.T) {
	g, a := clusteredNetwork(t, 8, 20, 0.3)
	short := &cluster.Assignment{Parent: a.Parent[:2], Head: a.Head[:2]}
	if _, err := BuildHierarchical(g, short); err == nil {
		t.Error("short assignment accepted")
	}
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Route(-1, 0); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := h.Route(0, 999); err == nil {
		t.Error("out-of-range dst accepted")
	}
}

func TestHierarchicalDisconnected(t *testing.T) {
	// Two separate triangles.
	g := topology.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int64{0, 1, 2, 3, 4, 5}
	a, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Route(0, 4); !errors.Is(err, ErrUnreachable) {
		t.Errorf("cross-component route: %v", err)
	}
	path, err := h.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	validatePath(t, g, path, 0, 2)
}

// TestNextHopWalksMatchRoute: repeatedly taking NextHop must retrace the
// exact path Route returns — the per-packet primitive and the path oracle
// may never disagree.
func TestNextHopWalksMatchRoute(t *testing.T) {
	g, a := clusteredNetwork(t, 11, 150, 0.14)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.N(); src += 13 {
		for dst := 0; dst < g.N(); dst += 17 {
			path, err := h.Route(src, dst)
			if errors.Is(err, ErrUnreachable) {
				if _, err := h.NextHop(src, dst); !errors.Is(err, ErrUnreachable) {
					t.Errorf("(%d,%d): Route unreachable but NextHop said %v", src, dst, err)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			cur := src
			for i := 1; i < len(path); i++ {
				next, err := h.NextHop(cur, dst)
				if err != nil {
					t.Fatalf("(%d,%d) at %d: %v", src, dst, cur, err)
				}
				if next != path[i] {
					t.Fatalf("(%d,%d): NextHop at %d gave %d, Route path has %d", src, dst, cur, next, path[i])
				}
				cur = next
			}
			if cur != dst {
				t.Fatalf("(%d,%d): walk ended at %d", src, dst, cur)
			}
		}
	}
}

// TestNextHopSelfAndValidation: dst == cur returns cur; out-of-range
// endpoints error.
func TestNextHopSelfAndValidation(t *testing.T) {
	g, a := clusteredNetwork(t, 2, 40, 0.25)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if next, err := h.NextHop(3, 3); err != nil || next != 3 {
		t.Errorf("self next-hop = (%d, %v), want (3, nil)", next, err)
	}
	if _, err := h.NextHop(-1, 0); err == nil {
		t.Error("negative cur accepted")
	}
	if _, err := h.NextHop(0, g.N()); err == nil {
		t.Error("out-of-range dst accepted")
	}
}

// TestCrossPartitionAlwaysUnreachable: even under an adversarial
// assignment whose head pointers cross partition boundaries (a transient,
// mid-convergence state), routing between components must fail with
// ErrUnreachable — never a loop error or a bogus path.
func TestCrossPartitionAlwaysUnreachable(t *testing.T) {
	// Two separate triangles, but the assignment claims node 3's head is
	// node 0 (in the other component) and groups everyone under it.
	g := topology.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	adversarial := &cluster.Assignment{
		Head:   []int{0, 0, 0, 0, 0, 0},
		Parent: []int{0, 0, 0, 0, 3, 3},
	}
	h, err := BuildHierarchical(g, adversarial)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{0, 1, 2} {
		for _, v := range []int{3, 4, 5} {
			if _, err := h.Route(u, v); !errors.Is(err, ErrUnreachable) {
				t.Errorf("Route(%d,%d) under adversarial assignment: %v, want ErrUnreachable", u, v, err)
			}
			if _, err := h.Route(v, u); !errors.Is(err, ErrUnreachable) {
				t.Errorf("Route(%d,%d) under adversarial assignment: %v, want ErrUnreachable", v, u, err)
			}
			if _, err := h.NextHop(u, v); !errors.Is(err, ErrUnreachable) {
				t.Errorf("NextHop(%d,%d) under adversarial assignment: %v, want ErrUnreachable", u, v, err)
			}
		}
	}
	// Same-component pairs sharing the (cross-partition) cluster id still
	// route inside their own component.
	path, err := h.Route(3, 5)
	if err != nil {
		t.Fatalf("same-component route under adversarial assignment: %v", err)
	}
	validatePath(t, g, path, 3, 5)
}

// TestSingleNodeGraph: routing on a one-node network is trivial but must
// not panic or error.
func TestSingleNodeGraph(t *testing.T) {
	g := topology.New(1)
	a := &cluster.Assignment{Head: []int{0}, Parent: []int{0}}
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	path, err := h.Route(0, 0)
	if err != nil || len(path) != 1 || path[0] != 0 {
		t.Errorf("Route(0,0) = (%v, %v), want ([0], nil)", path, err)
	}
	f := BuildFlat(g)
	if got := f.StatePerNode(); got != 0 {
		t.Errorf("flat state per node = %v on a single node, want 0", got)
	}
	if got := h.StatePerNode(); got != 0 {
		t.Errorf("hierarchical state per node = %v on a single node, want 0", got)
	}
}
