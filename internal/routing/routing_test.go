package routing

import (
	"errors"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/deploy"
	"selfstab/internal/geom"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

func clusteredNetwork(t *testing.T, seed int64, n int, r float64) (*topology.Graph, *cluster.Assignment) {
	t.Helper()
	src := rng.New(seed)
	dep := deploy.Uniform(n, geom.UnitSquare(), deploy.IDRandom, src)
	g := topology.FromPoints(dep.Points, r)
	a, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: dep.IDs,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

func validatePath(t *testing.T, g *topology.Graph, path []int, src, dst int) {
	t.Helper()
	if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("path endpoints wrong: %v (want %d..%d)", path, src, dst)
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Fatalf("path uses non-edge (%d, %d): %v", path[i-1], path[i], path)
		}
	}
}

func TestFlatRoutesAreShortest(t *testing.T) {
	g, _ := clusteredNetwork(t, 1, 60, 0.25)
	f := BuildFlat(g)
	for src := 0; src < g.N(); src += 7 {
		dist := g.Distances(src)
		for dst := 0; dst < g.N(); dst += 5 {
			if dist[dst] < 0 {
				if _, err := f.Route(src, dst); !errors.Is(err, ErrUnreachable) {
					t.Errorf("unreachable pair (%d,%d) routed", src, dst)
				}
				continue
			}
			path, err := f.Route(src, dst)
			if err != nil {
				t.Fatalf("(%d,%d): %v", src, dst, err)
			}
			validatePath(t, g, path, src, dst)
			if len(path)-1 != dist[dst] {
				t.Errorf("(%d,%d): flat path %d hops, shortest %d", src, dst, len(path)-1, dist[dst])
			}
		}
	}
}

func TestFlatSelfRoute(t *testing.T) {
	g, _ := clusteredNetwork(t, 2, 20, 0.3)
	f := BuildFlat(g)
	path, err := f.Route(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != 3 {
		t.Errorf("self route = %v", path)
	}
}

func TestFlatValidation(t *testing.T) {
	g, _ := clusteredNetwork(t, 3, 10, 0.3)
	f := BuildFlat(g)
	if _, err := f.Route(-1, 0); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := f.Route(0, 99); err == nil {
		t.Error("out-of-range dst accepted")
	}
}

func TestHierarchicalRoutesValid(t *testing.T) {
	g, a := clusteredNetwork(t, 4, 120, 0.15)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	routed, unreachable := 0, 0
	for src := 0; src < g.N(); src += 11 {
		dist := g.Distances(src)
		for dst := 0; dst < g.N(); dst += 7 {
			path, err := h.Route(src, dst)
			if err != nil {
				if dist[dst] >= 0 && errors.Is(err, ErrUnreachable) {
					// Hierarchical routing can only fail for physically
					// unreachable pairs: connected clusters always have
					// overlay routes.
					t.Errorf("(%d,%d): physically reachable but hierarchically unreachable", src, dst)
				}
				unreachable++
				continue
			}
			validatePath(t, g, path, src, dst)
			routed++
		}
	}
	if routed == 0 {
		t.Fatal("no pairs routed")
	}
	_ = unreachable
}

func TestHierarchicalIntraClusterDirect(t *testing.T) {
	g, a := clusteredNetwork(t, 5, 80, 0.2)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	// Same-cluster pairs route without leaving the cluster.
	for src := 0; src < g.N(); src++ {
		for _, dst := range a.Members(a.Head[src]) {
			path, err := h.Route(src, dst)
			if err != nil {
				t.Fatalf("(%d,%d) same cluster: %v", src, dst, err)
			}
			for _, hop := range path {
				if a.Head[hop] != a.Head[src] {
					t.Fatalf("intra route left the cluster: %v", path)
				}
			}
		}
		if src > 20 {
			break // a sample suffices
		}
	}
}

func TestHierarchicalStretchBounded(t *testing.T) {
	g, a := clusteredNetwork(t, 6, 150, 0.15)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	var totalHier, totalShort int
	for src := 0; src < g.N(); src += 13 {
		dist := g.Distances(src)
		for dst := 0; dst < g.N(); dst += 9 {
			if src == dst || dist[dst] < 0 {
				continue
			}
			path, err := h.Route(src, dst)
			if err != nil {
				continue
			}
			totalHier += len(path) - 1
			totalShort += dist[dst]
		}
	}
	if totalShort == 0 {
		t.Skip("no connected sample pairs")
	}
	stretch := float64(totalHier) / float64(totalShort)
	if stretch < 1 {
		t.Errorf("stretch %v < 1: hierarchical routes shorter than shortest paths", stretch)
	}
	if stretch > 3 {
		t.Errorf("stretch %v > 3: implausibly long detours", stretch)
	}
}

func TestHierarchicalStateSmallerThanFlat(t *testing.T) {
	g, a := clusteredNetwork(t, 7, 400, 0.1)
	f := BuildFlat(g)
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if h.StatePerNode() >= f.StatePerNode()/2 {
		t.Errorf("hierarchical state %v not substantially below flat %v",
			h.StatePerNode(), f.StatePerNode())
	}
}

func TestHierarchicalValidation(t *testing.T) {
	g, a := clusteredNetwork(t, 8, 20, 0.3)
	short := &cluster.Assignment{Parent: a.Parent[:2], Head: a.Head[:2]}
	if _, err := BuildHierarchical(g, short); err == nil {
		t.Error("short assignment accepted")
	}
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Route(-1, 0); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := h.Route(0, 999); err == nil {
		t.Error("out-of-range dst accepted")
	}
}

func TestHierarchicalDisconnected(t *testing.T) {
	// Two separate triangles.
	g := topology.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int64{0, 1, 2, 3, 4, 5}
	a, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildHierarchical(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Route(0, 4); !errors.Is(err, ErrUnreachable) {
		t.Errorf("cross-component route: %v", err)
	}
	path, err := h.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	validatePath(t, g, path, 0, 2)
}
