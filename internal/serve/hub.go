package serve

import (
	"sync"
	"sync/atomic"
)

// hub fans step frames out to SSE subscribers. Publishing never blocks:
// a subscriber whose buffer is full misses that frame (the next one
// carries fresher state anyway), so a stalled client can never stall the
// step loop or other subscribers. Dropped frames are counted (exported
// through /metrics) so slow-consumer pressure is visible.
type hub struct {
	mu      sync.Mutex
	subs    map[chan []byte]struct{}
	closed  bool
	dropped atomic.Int64
}

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]struct{})}
}

func (h *hub) subscribe() chan []byte {
	ch := make(chan []byte, 8)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(ch)
		return ch
	}
	h.subs[ch] = struct{}{}
	return ch
}

func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, ch)
}

func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *hub) publish(frame []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- frame:
		default: // slow consumer: drop
			h.dropped.Add(1)
		}
	}
}

// droppedFrames returns how many frames were dropped on full subscriber
// buffers since the hub was built.
func (h *hub) droppedFrames() int64 { return h.dropped.Load() }

// closeAll ends every subscription (server drain). Subscribed channels
// are closed so handlers return; late subscribers get a closed channel.
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}
