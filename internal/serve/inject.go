package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"selfstab"
)

// injectRequest is the POST /inject body. Kind selects the scenario;
// the other fields parameterize it:
//
//	{"kind":"faults","frac":0.3}
//	{"kind":"crash","ids":[4,17]}            also sleep, wake, remove
//	{"kind":"crash_region","x":0.5,"y":0.5,"radius":0.1}   also sleep_region
//	{"kind":"churn_burst","count":10,"op":"crash"}         op: crash|sleep|remove
//	{"kind":"add_nodes","points":[{"x":0.2,"y":0.8}]}
//	{"kind":"spawn_flow","flow":{"kind":"cbr","src":1,"dst":2,"rate":0.5}}
//	{"kind":"compact"}
//
// Adversarial kinds (the attack plane):
//
//	{"kind":"flood","count":5,"rate":2}            count bots flood the heads
//	{"kind":"byzantine","ids":[4,17],"scale":4}    inflate advertised densities
//	{"kind":"evict","ids":[4]}                     expel byzantine nodes
//	{"kind":"evict","factor":1.1}                  ...or auto-detect implausible ones
//	{"kind":"sybil","target":9,"count":8,"spread":0.05}
//	{"kind":"defense","defense":{"head_admission":true,"head_rate":1,"head_burst":4,"source_cap":3}}
//
// Region and burst injections resolve their victims server-side into an
// explicit id list before journaling, so a restored snapshot replays the
// exact same casualties without the server in the loop; flood and the
// id-less evict resolve against the live hierarchy the same way.
type injectRequest struct {
	Kind    string          `json:"kind"`
	Frac    float64         `json:"frac,omitempty"`
	IDs     []int64         `json:"ids,omitempty"`
	X       float64         `json:"x,omitempty"`
	Y       float64         `json:"y,omitempty"`
	Radius  float64         `json:"radius,omitempty"`
	Count   int             `json:"count,omitempty"`
	Op      string          `json:"op,omitempty"`
	Points  []pointJSON     `json:"points,omitempty"`
	Flow    *flowRequest    `json:"flow,omitempty"`
	Rate    float64         `json:"rate,omitempty"`    // flood
	Scale   float64         `json:"scale,omitempty"`   // byzantine
	Factor  float64         `json:"factor,omitempty"`  // evict (auto-detect)
	Target  int64           `json:"target,omitempty"`  // sybil
	Spread  float64         `json:"spread,omitempty"`  // sybil
	Defense *defenseRequest `json:"defense,omitempty"` // defense
}

// defenseRequest mirrors selfstab.DefenseConfig for the defense kind. A
// zero-valued (or empty) object removes every installed defense.
type defenseRequest struct {
	HeadAdmission bool    `json:"head_admission,omitempty"`
	HeadRate      float64 `json:"head_rate,omitempty"`
	HeadBurst     float64 `json:"head_burst,omitempty"`
	SourceCap     int     `json:"source_cap,omitempty"`
}

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// flowRequest describes one flow for spawn_flow. Kind "hotspot" uses Dst
// as the sink and Sources as the fan-in.
type flowRequest struct {
	Kind    string  `json:"kind"` // "cbr", "poisson" or "hotspot"
	Src     int64   `json:"src,omitempty"`
	Dst     int64   `json:"dst"`
	Rate    float64 `json:"rate"`
	Sources int     `json:"sources,omitempty"`
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	var req injectRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad inject body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	affected, err := s.applyInjectLocked(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":     req.Kind,
		"step":     s.net.StepCount(),
		"affected": affected,
	})
}

// applyInjectLocked performs one injection under the write lock and
// returns how many nodes it touched.
func (s *Server) applyInjectLocked(req injectRequest) (int, error) {
	switch req.Kind {
	case "faults":
		if req.Frac <= 0 || req.Frac > 1 {
			return 0, errf("faults frac %v outside (0, 1]", req.Frac)
		}
		s.net.InjectFaults(req.Frac)
		return s.net.N(), nil
	case "crash":
		return len(req.IDs), s.net.CrashNodes(req.IDs...)
	case "sleep":
		return len(req.IDs), s.net.SleepNodes(req.IDs...)
	case "wake":
		return len(req.IDs), s.net.WakeNodes(req.IDs...)
	case "remove":
		return len(req.IDs), s.net.RemoveNodes(req.IDs...)
	case "crash_region":
		ids, err := s.aliveInRegionLocked(req.X, req.Y, req.Radius)
		if err != nil || len(ids) == 0 {
			return 0, err
		}
		return len(ids), s.net.CrashNodes(ids...)
	case "sleep_region":
		ids, err := s.aliveInRegionLocked(req.X, req.Y, req.Radius)
		if err != nil || len(ids) == 0 {
			return 0, err
		}
		return len(ids), s.net.SleepNodes(ids...)
	case "churn_burst":
		return s.churnBurstLocked(req.Count, req.Op)
	case "add_nodes":
		pts := make([]selfstab.Point, len(req.Points))
		for i, p := range req.Points {
			pts[i] = selfstab.Point{X: p.X, Y: p.Y}
		}
		_, err := s.net.AddNodes(pts)
		return len(pts), err
	case "spawn_flow":
		return s.spawnFlowLocked(req.Flow)
	case "compact":
		removed, err := s.net.Compact()
		return removed, err
	case "flood":
		bots, err := s.net.FloodHeads(req.Count, req.Rate)
		return len(bots), err
	case "byzantine":
		if req.Scale == 0 {
			return 0, errf("byzantine inject needs a scale")
		}
		return len(req.IDs), s.net.InflateDensity(req.Scale, req.IDs...)
	case "evict":
		ids := req.IDs
		if len(ids) == 0 {
			if req.Factor <= 0 {
				return 0, errf("evict needs ids or a detection factor > 0")
			}
			if ids = s.net.ImplausibleNodes(req.Factor); len(ids) == 0 {
				return 0, nil // nothing implausible: a clean bill, not an error
			}
		}
		return len(ids), s.net.EvictNodes(ids...)
	case "sybil":
		ids, err := s.net.SybilJoin(req.Target, req.Count, req.Spread)
		return len(ids), err
	case "defense":
		if req.Defense == nil {
			return 0, errf("defense inject without a defense object")
		}
		return 0, s.net.SetTrafficDefense(selfstab.DefenseConfig{
			HeadAdmission: req.Defense.HeadAdmission,
			HeadRate:      req.Defense.HeadRate,
			HeadBurst:     req.Defense.HeadBurst,
			SourceCap:     req.Defense.SourceCap,
		})
	}
	return 0, errf("unknown inject kind %q", req.Kind)
}

// aliveInRegionLocked resolves the alive nodes within radius of (x, y)
// into an id list — the explicit form that gets journaled.
func (s *Server) aliveInRegionLocked(x, y, radius float64) ([]int64, error) {
	if radius <= 0 {
		return nil, errf("region radius %v must be positive", radius)
	}
	var ids []int64
	r2 := radius * radius
	for i := 0; i < s.net.N(); i++ {
		st, err := s.net.State(i)
		if err != nil {
			return nil, err
		}
		if st.Status != selfstab.NodeAlive {
			continue
		}
		dx, dy := st.Position.X-x, st.Position.Y-y
		if dx*dx+dy*dy <= r2 {
			ids = append(ids, st.ID)
		}
	}
	return ids, nil
}

// churnBurstLocked applies op to the first count alive nodes in index
// order — deterministic, so the journaled id list is reproducible from
// the request alone.
func (s *Server) churnBurstLocked(count int, op string) (int, error) {
	if count <= 0 {
		return 0, errf("churn burst count %d must be positive", count)
	}
	var ids []int64
	for i := 0; i < s.net.N() && len(ids) < count; i++ {
		st, err := s.net.State(i)
		if err != nil {
			return 0, err
		}
		if st.Status == selfstab.NodeAlive {
			ids = append(ids, st.ID)
		}
	}
	if len(ids) == 0 {
		return 0, errf("no alive nodes for a churn burst")
	}
	switch op {
	case "crash":
		return len(ids), s.net.CrashNodes(ids...)
	case "sleep":
		return len(ids), s.net.SleepNodes(ids...)
	case "remove":
		return len(ids), s.net.RemoveNodes(ids...)
	}
	return 0, errf("unknown churn burst op %q (want crash, sleep or remove)", op)
}

// spawnFlowLocked appends one flow to the attached data plane via
// Network.SpawnFlows: the traffic ledger and queues carry over, so
// scraped counters stay continuous across the spawn (until the attack
// plane landed, this re-attached and reset the ledger).
func (s *Server) spawnFlowLocked(fr *flowRequest) (int, error) {
	if fr == nil {
		return 0, errf("spawn_flow without a flow")
	}
	var flow selfstab.Flow
	switch fr.Kind {
	case "cbr":
		flow = selfstab.CBRFlow(fr.Src, fr.Dst, fr.Rate)
	case "poisson":
		flow = selfstab.PoissonFlow(fr.Src, fr.Dst, fr.Rate)
	case "hotspot":
		if fr.Sources <= 0 {
			return 0, errf("hotspot flow needs sources > 0")
		}
		flow = selfstab.HotspotFlow(fr.Dst, fr.Sources, fr.Rate)
	default:
		return 0, errf("unknown flow kind %q (want cbr, poisson or hotspot)", fr.Kind)
	}
	if err := s.net.SpawnFlows(flow); err != nil {
		return 0, err
	}
	return 1, nil
}

func errf(format string, a ...any) error {
	return fmt.Errorf("serve: "+format, a...)
}
