// Package serve runs a live selfstab simulation as a long-lived service:
// the world steps continuously in scaled real time on its own goroutine
// while an HTTP/JSON API serves cluster maps, per-node state and the
// convergence, traffic and energy ledgers, accepts online scenario
// injection (faults, regional crashes and sleeps, churn bursts, flow
// spawning, forced compaction), streams step frames over SSE, and
// exposes Prometheus-style text metrics.
//
// Consistency model: every read and every mutation happens at a step
// boundary. The stepper holds the world's write lock for the duration of
// each Δ(τ) step; query handlers take the read lock (so they observe a
// fully settled step, never a torn one, and scale with concurrent
// readers), while injections and ledger reads that may close a
// disruption episode take the write lock and serialize with stepping.
// Injections route through the same journaled op chokepoint as the
// embedding API, so a snapshot taken over HTTP replays bit-identically —
// the service is checkpoint/restore/replay-complete by construction.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"selfstab"
	"selfstab/internal/obs"
)

// Config parameterizes a Server.
type Config struct {
	// StepsPerSecond is the real-time stepping rate. Default 10.
	StepsPerSecond float64
	// SnapshotDir is where POST /snapshot (and the drain snapshot) write
	// checkpoint files. Empty: /snapshot streams the document instead.
	SnapshotDir string
	// DrainSnapshot writes a final checkpoint to SnapshotDir when Run
	// drains (context canceled, e.g. on SIGTERM).
	DrainSnapshot bool
	// TraceRing is how many recent per-step records the attached
	// instrumentation collector retains for /trace exports and the
	// /metrics phase histograms. Default 512.
	TraceRing int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// service mux (the selfstab-sim serve -pprof flag). Off by default:
	// profiling endpoints expose process internals and cost CPU while
	// sampling, so they are opt-in.
	EnablePprof bool
}

// Server owns a stepping world and its HTTP surface.
type Server struct {
	cfg Config

	// mu is the step-boundary lock: Lock for stepping and world
	// mutation, RLock for pure reads. ConvergenceStats is NOT a pure
	// read (reading the ledger may close an open episode), so handlers
	// touching it take the write lock too.
	mu  sync.RWMutex
	net *selfstab.Network

	hub *hub

	// collector is the instrumentation probe New attaches to the world.
	// It is a pure observer with its own lock-free ring, so /trace and
	// the /metrics phase histograms read it without touching mu.
	collector *obs.Collector
}

// New wraps an already-constructed (typically stabilized or restored)
// world.
func New(net *selfstab.Network, cfg Config) (*Server, error) {
	if net == nil {
		return nil, fmt.Errorf("serve: nil network")
	}
	if cfg.StepsPerSecond == 0 {
		cfg.StepsPerSecond = 10
	}
	if cfg.StepsPerSecond <= 0 {
		return nil, fmt.Errorf("serve: steps per second %v must be positive", cfg.StepsPerSecond)
	}
	if cfg.DrainSnapshot && cfg.SnapshotDir == "" {
		return nil, fmt.Errorf("serve: drain snapshot requires a snapshot directory")
	}
	collector := selfstab.NewCollector(cfg.TraceRing)
	net.AttachProbe(collector)
	return &Server{cfg: cfg, net: net, hub: newHub(), collector: collector}, nil
}

// Run steps the world at the configured rate until ctx is canceled, then
// drains: the in-flight step completes (the lock guarantees it), an
// optional final checkpoint is written, and every SSE subscriber is
// closed. A step error stops the service and is returned.
func (s *Server) Run(ctx context.Context) error {
	interval := time.Duration(float64(time.Second) / s.cfg.StepsPerSecond)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	defer s.hub.closeAll()
	var lastFrame time.Time
	for {
		select {
		case <-ctx.Done():
			return s.drain()
		case <-ticker.C:
			s.mu.Lock()
			err := s.net.Step()
			frame := s.frameLocked()
			s.mu.Unlock()
			if err != nil {
				return fmt.Errorf("serve: step: %w", err)
			}
			// Throttle frames to ~20/s regardless of stepping rate, and
			// skip the work entirely when nobody is listening.
			if s.hub.subscribers() > 0 && time.Since(lastFrame) >= 50*time.Millisecond {
				s.hub.publish(frame)
				lastFrame = time.Now()
			}
		}
	}
}

// drain writes the final checkpoint when configured.
func (s *Server) drain() error {
	if !s.cfg.DrainSnapshot {
		return nil
	}
	_, err := s.writeSnapshotFile()
	return err
}

// frameLocked builds one SSE step frame. Caller holds mu (read or
// write). O(1): population counters only, so framing never slows a
// large world's step loop.
func (s *Server) frameLocked() []byte {
	alive, sleeping, dead := s.net.Population()
	b, _ := json.Marshal(map[string]any{
		"step":     s.net.StepCount(),
		"alive":    alive,
		"sleeping": sleeping,
		"dead":     dead,
	})
	return b
}

// Handler returns the HTTP surface. Routes:
//
//	GET  /healthz            liveness + step/population counters
//	GET  /state              every node's protocol state
//	GET  /state/node?id=N    one node, addressed by identifier
//	GET  /clusters           the current cluster map
//	GET  /stats/clustering   head counts, eccentricity, tree length
//	GET  /stats/convergence  the disruption ledger (write-locked read)
//	GET  /stats/traffic      the data-plane ledger (404 if not attached)
//	GET  /stats/energy       the battery ledger (404 if not attached)
//	GET  /metrics            Prometheus text format (incl. phase histograms)
//	GET  /events             SSE step frames
//	POST /inject             online scenario injection (see inject.go)
//	POST /snapshot           checkpoint to SnapshotDir, or stream
//	POST /trace              Chrome trace-event JSON of recent steps
//	/debug/pprof/*           net/http/pprof (only with EnablePprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.get(s.handleHealthz))
	mux.HandleFunc("/state", s.get(s.handleState))
	mux.HandleFunc("/state/node", s.get(s.handleNode))
	mux.HandleFunc("/clusters", s.get(s.handleClusters))
	mux.HandleFunc("/stats/clustering", s.get(s.handleClusteringStats))
	mux.HandleFunc("/stats/convergence", s.get(s.handleConvergence))
	mux.HandleFunc("/stats/traffic", s.get(s.handleTrafficStats))
	mux.HandleFunc("/stats/energy", s.get(s.handleEnergyStats))
	mux.HandleFunc("/metrics", s.get(s.handleMetrics))
	mux.HandleFunc("/events", s.get(s.handleEvents))
	mux.HandleFunc("/inject", s.post(s.handleInject))
	mux.HandleFunc("/snapshot", s.post(s.handleSnapshot))
	mux.HandleFunc("/trace", s.post(s.handleTrace))
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleTrace streams a Chrome trace-event JSON document (load it at
// chrome://tracing or https://ui.perfetto.dev) covering the most recent
// steps — all retained records by default, ?last=N for a bound. The
// collector's ring is lock-free, so the export never blocks stepping.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	last := 0
	if q := r.URL.Query().Get("last"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad last=%q: want a non-negative integer", q)
			return
		}
		last = n
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.collector.WriteTrace(w, last)
}

func (s *Server) get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h(w, r)
	}
}

func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, a ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, a...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	alive, sleeping, dead := s.net.Population()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"step":     s.net.StepCount(),
		"nodes":    s.net.N(),
		"alive":    alive,
		"sleeping": sleeping,
		"dead":     dead,
	})
}

// nodeJSON is the wire form of one node's state.
type nodeJSON struct {
	ID      int64   `json:"id"`
	Index   int     `json:"index"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Density float64 `json:"density"`
	Head    int64   `json:"head"`
	Parent  int64   `json:"parent"`
	Color   int64   `json:"color"`
	IsHead  bool    `json:"is_head"`
	Status  string  `json:"status"`
}

func nodeToJSON(i int, st selfstab.NodeState) nodeJSON {
	return nodeJSON{
		ID: st.ID, Index: i, X: st.Position.X, Y: st.Position.Y,
		Density: st.Density, Head: st.HeadID, Parent: st.ParentID,
		Color: st.Color, IsHead: st.IsHead, Status: st.Status.String(),
	}
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	nodes := make([]nodeJSON, s.net.N())
	for i := range nodes {
		st, err := s.net.State(i)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		nodes[i] = nodeToJSON(i, st)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"step":  s.net.StepCount(),
		"nodes": nodes,
	})
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad or missing id: %v", err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, nid := range s.net.IDs() {
		if nid != id {
			continue
		}
		st, err := s.net.State(i)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, nodeToJSON(i, st))
		return
	}
	writeError(w, http.StatusNotFound, "unknown node id %d", id)
}

func (s *Server) handleClusters(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"step":     s.net.StepCount(),
		"clusters": s.net.Clusters(),
	})
}

func (s *Server) handleClusteringStats(w http.ResponseWriter, _ *http.Request) {
	// Stats computes on the live assignment; take the write lock so the
	// computation never overlaps a mutation of the cached tables.
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"step":  s.net.StepCount(),
		"stats": s.net.Stats(),
	})
}

func (s *Server) handleConvergence(w http.ResponseWriter, _ *http.Request) {
	// Reading the ledger may close an open disruption episode — a
	// mutation — so this is a write-locked read.
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"step":        s.net.StepCount(),
		"convergence": s.net.ConvergenceStats(),
	})
}

func (s *Server) handleTrafficStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts, err := s.net.TrafficStats()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"step":    s.net.StepCount(),
		"traffic": ts,
	})
}

func (s *Server) handleEnergyStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	es, err := s.net.EnergyStats()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"step":   s.net.StepCount(),
		"energy": es,
	})
}

// handleEvents streams step frames as server-sent events until the
// client disconnects. Subscribers never touch the world: frames are
// pushed by the step loop, so a slow consumer drops frames instead of
// stalling the simulation.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// An immediate frame so clients see state before the next step.
	s.mu.RLock()
	first := s.frameLocked()
	s.mu.RUnlock()
	fmt.Fprintf(w, "data: %s\n\n", first)
	flusher.Flush()
	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return // server draining
			}
			fmt.Fprintf(w, "data: %s\n\n", frame)
			flusher.Flush()
		}
	}
}

// handleSnapshot checkpoints the world. With a snapshot directory
// configured the document is written there and its path returned; with
// ?stream=1 (or no directory) the document itself is the response.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotDir == "" || r.URL.Query().Get("stream") == "1" {
		s.mu.RLock()
		defer s.mu.RUnlock()
		w.Header().Set("Content-Type", "application/json")
		if err := s.net.WriteSnapshot(w); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	path, err := s.writeSnapshotFile()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.mu.RLock()
	step := s.net.StepCount()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"path": path, "step": step})
}

// writeSnapshotFile checkpoints to SnapshotDir under a step-stamped name.
func (s *Server) writeSnapshotFile() (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := os.MkdirAll(s.cfg.SnapshotDir, 0o755); err != nil {
		return "", fmt.Errorf("serve: snapshot dir: %w", err)
	}
	path := filepath.Join(s.cfg.SnapshotDir, fmt.Sprintf("snapshot-step%08d.json", s.net.StepCount()))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := s.net.WriteSnapshot(f); err != nil {
		f.Close()
		return "", fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("serve: snapshot: %w", err)
	}
	return path, nil
}
