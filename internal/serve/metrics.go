package serve

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics renders the world's counters in Prometheus text
// exposition format. Population and step counters are O(1); the traffic
// and energy blocks appear only when the subsystem is attached.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	alive, sleeping, dead := s.net.Population()
	fmt.Fprintf(&b, "# HELP selfstab_step_count Completed protocol steps.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_step_count counter\n")
	fmt.Fprintf(&b, "selfstab_step_count %d\n", s.net.StepCount())
	fmt.Fprintf(&b, "# HELP selfstab_nodes Node slots by lifecycle status.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_nodes gauge\n")
	fmt.Fprintf(&b, "selfstab_nodes{status=\"alive\"} %d\n", alive)
	fmt.Fprintf(&b, "selfstab_nodes{status=\"sleeping\"} %d\n", sleeping)
	fmt.Fprintf(&b, "selfstab_nodes{status=\"dead\"} %d\n", dead)

	if ts, err := s.net.TrafficStats(); err == nil {
		fmt.Fprintf(&b, "# HELP selfstab_traffic_packets_total Data-plane packet counters by fate.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_traffic_packets_total counter\n")
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"offered\"} %d\n", ts.Offered)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"delivered\"} %d\n", ts.Delivered)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_queue\"} %d\n", ts.DropsQueue)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_noroute\"} %d\n", ts.DropsNoRoute)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_ttl\"} %d\n", ts.DropsTTL)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_dead_endpoint\"} %d\n", ts.DropsDeadEndpoint)
		fmt.Fprintf(&b, "# HELP selfstab_traffic_in_flight Packets currently queued.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_traffic_in_flight gauge\n")
		fmt.Fprintf(&b, "selfstab_traffic_in_flight %d\n", ts.InFlight)
		fmt.Fprintf(&b, "# HELP selfstab_traffic_delivery_ratio Delivered over decided-fate packets.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_traffic_delivery_ratio gauge\n")
		fmt.Fprintf(&b, "selfstab_traffic_delivery_ratio %g\n", ts.DeliveryRatio)
	}

	if es, err := s.net.EnergyStats(); err == nil {
		fmt.Fprintf(&b, "# HELP selfstab_energy_drain_total Energy drained by cause.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_energy_drain_total counter\n")
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"head\"} %g\n", es.DrainHead)
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"member\"} %g\n", es.DrainMember)
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"sleep\"} %g\n", es.DrainSleep)
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"tx\"} %g\n", es.DrainTx)
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"rx\"} %g\n", es.DrainRx)
		fmt.Fprintf(&b, "# HELP selfstab_energy_depletions_total Batteries that crossed zero.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_energy_depletions_total counter\n")
		fmt.Fprintf(&b, "selfstab_energy_depletions_total %d\n", es.Depletions)
		fmt.Fprintf(&b, "# HELP selfstab_energy_mean_remaining Mean remaining battery fraction.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_energy_mean_remaining gauge\n")
		fmt.Fprintf(&b, "selfstab_energy_mean_remaining %g\n", es.MeanRemaining)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
