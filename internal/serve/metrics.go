package serve

import (
	"fmt"
	"net/http"
	"strings"

	"selfstab/internal/obs"
)

// handleMetrics renders the world's counters in Prometheus text
// exposition format. Population and step counters are O(1); the traffic
// and energy blocks appear only when the subsystem is attached; the
// phase histograms and probe counters come from the attached collector's
// atomic totals, never the world. This takes the write lock (not the
// read lock) because the convergence block reads the disruption ledger,
// which may close an open episode — a mutation.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	alive, sleeping, dead := s.net.Population()
	fmt.Fprintf(&b, "# HELP selfstab_step_count Completed protocol steps.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_step_count counter\n")
	fmt.Fprintf(&b, "selfstab_step_count %d\n", s.net.StepCount())
	fmt.Fprintf(&b, "# HELP selfstab_nodes Node slots by lifecycle status.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_nodes gauge\n")
	fmt.Fprintf(&b, "selfstab_nodes{status=\"alive\"} %d\n", alive)
	fmt.Fprintf(&b, "selfstab_nodes{status=\"sleeping\"} %d\n", sleeping)
	fmt.Fprintf(&b, "selfstab_nodes{status=\"dead\"} %d\n", dead)

	cs := s.net.ConvergenceStats()
	fmt.Fprintf(&b, "# HELP selfstab_convergence_episodes_total Disruption episodes recorded in the ledger.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_convergence_episodes_total counter\n")
	fmt.Fprintf(&b, "selfstab_convergence_episodes_total %d\n", len(cs.Disruptions))
	open := 0
	if cs.Open {
		open = 1
	}
	fmt.Fprintf(&b, "# HELP selfstab_convergence_open Whether a disruption episode is currently open.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_convergence_open gauge\n")
	fmt.Fprintf(&b, "selfstab_convergence_open %d\n", open)
	fmt.Fprintf(&b, "# HELP selfstab_convergence_steps_to_restabilize Steps from disruption to restabilization over closed episodes.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_convergence_steps_to_restabilize gauge\n")
	fmt.Fprintf(&b, "selfstab_convergence_steps_to_restabilize{stat=\"mean\"} %g\n", cs.MeanStepsToStabilize)
	fmt.Fprintf(&b, "selfstab_convergence_steps_to_restabilize{stat=\"max\"} %d\n", cs.MaxStepsToStabilize)
	fmt.Fprintf(&b, "# HELP selfstab_convergence_affected_nodes_mean Mean nodes whose state churned per episode.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_convergence_affected_nodes_mean gauge\n")
	fmt.Fprintf(&b, "selfstab_convergence_affected_nodes_mean %g\n", cs.MeanAffectedNodes)
	fmt.Fprintf(&b, "# HELP selfstab_convergence_affected_radius Hop radius of the perturbation around each disruption.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_convergence_affected_radius gauge\n")
	fmt.Fprintf(&b, "selfstab_convergence_affected_radius{stat=\"mean\"} %g\n", cs.MeanAffectedRadius)
	fmt.Fprintf(&b, "selfstab_convergence_affected_radius{stat=\"max\"} %d\n", cs.MaxAffectedRadius)

	if ts, err := s.net.TrafficStats(); err == nil {
		fmt.Fprintf(&b, "# HELP selfstab_traffic_packets_total Data-plane packet counters by fate.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_traffic_packets_total counter\n")
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"offered\"} %d\n", ts.Offered)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"delivered\"} %d\n", ts.Delivered)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_queue\"} %d\n", ts.DropsQueue)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_noroute\"} %d\n", ts.DropsNoRoute)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_ttl\"} %d\n", ts.DropsTTL)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_dead_endpoint\"} %d\n", ts.DropsDeadEndpoint)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_admission\"} %d\n", ts.DropsAdmission)
		fmt.Fprintf(&b, "selfstab_traffic_packets_total{fate=\"dropped_ratelimit\"} %d\n", ts.DropsRateLimit)
		fmt.Fprintf(&b, "# HELP selfstab_traffic_in_flight Packets currently queued.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_traffic_in_flight gauge\n")
		fmt.Fprintf(&b, "selfstab_traffic_in_flight %d\n", ts.InFlight)
		fmt.Fprintf(&b, "# HELP selfstab_traffic_delivery_ratio Delivered over decided-fate packets.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_traffic_delivery_ratio gauge\n")
		fmt.Fprintf(&b, "selfstab_traffic_delivery_ratio %g\n", ts.DeliveryRatio)
	}

	if es, err := s.net.EnergyStats(); err == nil {
		fmt.Fprintf(&b, "# HELP selfstab_energy_drain_total Energy drained by cause.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_energy_drain_total counter\n")
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"head\"} %g\n", es.DrainHead)
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"member\"} %g\n", es.DrainMember)
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"sleep\"} %g\n", es.DrainSleep)
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"tx\"} %g\n", es.DrainTx)
		fmt.Fprintf(&b, "selfstab_energy_drain_total{cause=\"rx\"} %g\n", es.DrainRx)
		fmt.Fprintf(&b, "# HELP selfstab_energy_depletions_total Batteries that crossed zero.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_energy_depletions_total counter\n")
		fmt.Fprintf(&b, "selfstab_energy_depletions_total %d\n", es.Depletions)
		fmt.Fprintf(&b, "# HELP selfstab_energy_mean_remaining Mean remaining battery fraction.\n")
		fmt.Fprintf(&b, "# TYPE selfstab_energy_mean_remaining gauge\n")
		fmt.Fprintf(&b, "selfstab_energy_mean_remaining %g\n", es.MeanRemaining)
	}

	fmt.Fprintf(&b, "# HELP selfstab_sse_dropped_frames_total Step frames dropped on full SSE subscriber buffers.\n")
	fmt.Fprintf(&b, "# TYPE selfstab_sse_dropped_frames_total counter\n")
	fmt.Fprintf(&b, "selfstab_sse_dropped_frames_total %d\n", s.hub.droppedFrames())

	writeProbeMetrics(&b, s.collector.Metrics())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// writeProbeMetrics renders the collector's step/phase duration
// histograms and engine counters. All values come from the collector's
// atomic totals, so this block is world-lock-free by construction.
func writeProbeMetrics(b *strings.Builder, m obs.Metrics) {
	fmt.Fprintf(b, "# HELP selfstab_step_duration_seconds Wall time per engine step.\n")
	fmt.Fprintf(b, "# TYPE selfstab_step_duration_seconds histogram\n")
	writeHistogram(b, "selfstab_step_duration_seconds", "", m.Step)
	fmt.Fprintf(b, "# HELP selfstab_phase_duration_seconds Wall time per step phase.\n")
	fmt.Fprintf(b, "# TYPE selfstab_phase_duration_seconds histogram\n")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if m.Phases[p].Count == 0 {
			continue // phase never ran (e.g. no tiling → no halo)
		}
		writeHistogram(b, "selfstab_phase_duration_seconds",
			fmt.Sprintf("phase=%q", p.String()), m.Phases[p])
	}
	for c := obs.Counter(0); c < obs.NumCounters; c++ {
		name, typ := "selfstab_engine_"+c.String(), "gauge"
		if c.Cumulative() {
			name, typ = name+"_total", "counter"
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
		fmt.Fprintf(b, "%s %d\n", name, m.Counters[c])
	}
}

// writeHistogram renders one Prometheus histogram (cumulative buckets,
// seconds) from the collector's nanosecond bucket counts. labels is
// either empty or a single rendered pair like `phase="halo"`.
func writeHistogram(b *strings.Builder, name, labels string, h obs.Histogram) {
	sep := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	cum := int64(0)
	for i, bound := range h.BoundsNs {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			sep(fmt.Sprintf("le=%q", formatSeconds(bound))), cum)
	}
	cum += h.Counts[len(h.BoundsNs)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, sep(`le="+Inf"`), cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, sep(""), float64(h.SumNs)/1e9)
	fmt.Fprintf(b, "%s_count%s %d\n", name, sep(""), h.Count)
}

// formatSeconds renders a nanosecond bound as a seconds string without
// float artifacts (25000 → "0.000025").
func formatSeconds(ns int64) string {
	return fmt.Sprintf("%g", float64(ns)/1e9)
}
