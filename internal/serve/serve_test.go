package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"selfstab"
)

func testWorld(t testing.TB, nodes int) *selfstab.Network {
	t.Helper()
	net, err := selfstab.NewRandomNetwork(nodes,
		selfstab.WithSeed(7), selfstab.WithRange(0.14), selfstab.WithCacheTTL(4),
		selfstab.WithStableWindow(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(2000); err != nil {
		t.Fatal(err)
	}
	return net
}

func testServer(t testing.TB, nodes int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(testWorld(t, nodes), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, v any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
	return resp
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil network accepted")
	}
	net := testWorld(t, 20)
	if _, err := New(net, Config{StepsPerSecond: -1}); err == nil {
		t.Error("negative sps accepted")
	}
	if _, err := New(net, Config{DrainSnapshot: true}); err == nil {
		t.Error("drain snapshot without a directory accepted")
	}
}

func TestEndpoints(t *testing.T) {
	_, ts := testServer(t, 40, Config{})

	var health struct {
		OK    bool `json:"ok"`
		Nodes int  `json:"nodes"`
		Alive int  `json:"alive"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.OK || health.Nodes != 40 || health.Alive != 40 {
		t.Errorf("healthz = %+v", health)
	}

	var state struct {
		Nodes []nodeJSON `json:"nodes"`
	}
	getJSON(t, ts.URL+"/state", &state)
	if len(state.Nodes) != 40 {
		t.Fatalf("state has %d nodes, want 40", len(state.Nodes))
	}
	for _, n := range state.Nodes {
		if n.Status != "alive" {
			t.Errorf("node %d status %q", n.ID, n.Status)
		}
	}

	var node nodeJSON
	getJSON(t, fmt.Sprintf("%s/state/node?id=%d", ts.URL, state.Nodes[3].ID), &node)
	if node != state.Nodes[3] {
		t.Errorf("node lookup %+v != state entry %+v", node, state.Nodes[3])
	}
	if resp := getJSON(t, ts.URL+"/state/node?id=999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/state/node?id=abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", resp.StatusCode)
	}

	var clusters struct {
		Clusters []selfstab.Cluster `json:"clusters"`
	}
	getJSON(t, ts.URL+"/clusters", &clusters)
	if len(clusters.Clusters) == 0 {
		t.Error("no clusters reported")
	}
	total := 0
	for _, c := range clusters.Clusters {
		total += len(c.Members)
	}
	if total != 40 {
		t.Errorf("cluster members sum to %d, want 40", total)
	}

	var cstats struct {
		Stats selfstab.Stats `json:"stats"`
	}
	getJSON(t, ts.URL+"/stats/clustering", &cstats)
	if cstats.Stats.Clusters != len(clusters.Clusters) {
		t.Errorf("stats report %d clusters, map has %d", cstats.Stats.Clusters, len(clusters.Clusters))
	}

	getJSON(t, ts.URL+"/stats/convergence", &struct{}{})

	// No traffic or energy attached: 404s with a JSON error.
	if resp := getJSON(t, ts.URL+"/stats/traffic", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("traffic stats without traffic: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/stats/energy", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("energy stats without energy: status %d, want 404", resp.StatusCode)
	}

	// Method checks.
	if resp := postJSON(t, ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: status %d, want 405", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/inject")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /inject: status %d, want 405", resp.StatusCode)
	}
}

func TestMetrics(t *testing.T) {
	_, ts := testServer(t, 30, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"selfstab_step_count",
		`selfstab_nodes{status="alive"} 30`,
		`selfstab_nodes{status="dead"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "selfstab_traffic") {
		t.Error("traffic metrics present without traffic attached")
	}
}

func TestInject(t *testing.T) {
	srv, ts := testServer(t, 40, Config{})

	var state struct {
		Nodes []nodeJSON `json:"nodes"`
	}
	getJSON(t, ts.URL+"/state", &state)
	victim := state.Nodes[5].ID

	var result struct {
		Affected int    `json:"affected"`
		Kind     string `json:"kind"`
	}
	resp := postJSON(t, ts.URL+"/inject",
		map[string]any{"kind": "remove", "ids": []int64{victim}}, &result)
	if resp.StatusCode != http.StatusOK || result.Affected != 1 {
		t.Fatalf("remove inject: status %d, result %+v", resp.StatusCode, result)
	}
	var node nodeJSON
	getJSON(t, fmt.Sprintf("%s/state/node?id=%d", ts.URL, victim), &node)
	if node.Status != "dead" {
		t.Errorf("removed node status %q, want dead", node.Status)
	}

	// Regional sleep around a known node: at least that node sleeps.
	target := state.Nodes[10]
	postJSON(t, ts.URL+"/inject", map[string]any{
		"kind": "sleep_region", "x": target.X, "y": target.Y, "radius": 0.03,
	}, &result)
	if result.Affected < 1 {
		t.Fatalf("sleep_region affected %d nodes", result.Affected)
	}
	getJSON(t, fmt.Sprintf("%s/state/node?id=%d", ts.URL, target.ID), &node)
	if node.Status != "sleeping" {
		t.Errorf("regional sleep left node %d %q", target.ID, node.Status)
	}

	// Churn burst.
	postJSON(t, ts.URL+"/inject", map[string]any{
		"kind": "churn_burst", "count": 3, "op": "crash",
	}, &result)
	if result.Affected != 3 {
		t.Errorf("churn_burst affected %d, want 3", result.Affected)
	}

	// add_nodes grows the world.
	postJSON(t, ts.URL+"/inject", map[string]any{
		"kind": "add_nodes", "points": []map[string]float64{{"x": 0.5, "y": 0.5}},
	}, &result)
	var health struct {
		Nodes int `json:"nodes"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Nodes != 41 {
		t.Errorf("after add_nodes: %d nodes, want 41", health.Nodes)
	}

	// Bad requests are 400s and mutate nothing.
	for _, body := range []any{
		map[string]any{"kind": "nope"},
		map[string]any{"kind": "faults", "frac": 2.0},
		map[string]any{"kind": "crash", "ids": []int64{999999}},
		map[string]any{"kind": "crash_region", "x": 0.5, "y": 0.5, "radius": -1},
		map[string]any{"kind": "churn_burst", "count": 0, "op": "crash"},
		map[string]any{"kind": "spawn_flow", "flow": map[string]any{"kind": "cbr", "src": 1, "dst": 2, "rate": 0.5}},
		map[string]any{"bogus_field": 1},
	} {
		if resp := postJSON(t, ts.URL+"/inject", body, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("inject %v: status %d, want 400", body, resp.StatusCode)
		}
	}

	// The injections were journaled: a snapshot restores to this world.
	var snap bytes.Buffer
	srv.mu.RLock()
	err := srv.net.WriteSnapshot(&snap)
	srv.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := selfstab.ReadSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != 41 {
		t.Errorf("restored world has %d nodes, want 41", restored.N())
	}
	ra, _, _ := restored.Population()
	oa, _, _ := srv.net.Population()
	if ra != oa {
		t.Errorf("restored alive %d, original %d", ra, oa)
	}
}

func TestSpawnFlow(t *testing.T) {
	srv, ts := testServer(t, 40, Config{})
	ids := srv.net.IDs()
	if err := srv.net.AttachTraffic(selfstab.TrafficConfig{
		Flows: []selfstab.Flow{selfstab.CBRFlow(ids[0], ids[1], 0.5)},
	}); err != nil {
		t.Fatal(err)
	}
	var result struct {
		Affected int `json:"affected"`
	}
	resp := postJSON(t, ts.URL+"/inject", map[string]any{
		"kind": "spawn_flow",
		"flow": map[string]any{"kind": "poisson", "src": ids[2], "dst": ids[3], "rate": 0.4},
	}, &result)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spawn_flow: status %d", resp.StatusCode)
	}
	var stats struct {
		Traffic selfstab.TrafficStats `json:"traffic"`
	}
	getJSON(t, ts.URL+"/stats/traffic", &stats)
	if len(stats.Traffic.PerFlow) != 2 {
		t.Errorf("after spawn_flow: %d flows, want 2", len(stats.Traffic.PerFlow))
	}
}

func TestSnapshotEndpointAndRestore(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testServer(t, 30, Config{SnapshotDir: dir})

	var result struct {
		Path string `json:"path"`
		Step int    `json:"step"`
	}
	resp := postJSON(t, ts.URL+"/snapshot", nil, &result)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	if filepath.Dir(result.Path) != dir {
		t.Errorf("snapshot path %q not under %q", result.Path, dir)
	}
	raw, err := os.ReadFile(result.Path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := selfstab.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != srv.net.N() || restored.StepCount() != srv.net.StepCount() {
		t.Errorf("restored world N=%d step=%d, original N=%d step=%d",
			restored.N(), restored.StepCount(), srv.net.N(), srv.net.StepCount())
	}

	// Streaming variant returns the document itself.
	respStream, err := http.Post(ts.URL+"/snapshot?stream=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer respStream.Body.Close()
	if _, err := selfstab.ReadSnapshot(respStream.Body); err != nil {
		t.Errorf("streamed snapshot does not restore: %v", err)
	}
}

// TestRunStepsAndSSE boots the stepper, watches the world advance via
// /events frames, and checks graceful drain (including the drain
// snapshot).
func TestRunStepsAndSSE(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testServer(t, 30, Config{
		StepsPerSecond: 200,
		SnapshotDir:    dir,
		DrainSnapshot:  true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	scanner := bufio.NewScanner(resp.Body)
	deadline := time.After(10 * time.Second)
	var first, last int
	frames := 0
	for frames < 3 {
		lineCh := make(chan string, 1)
		go func() {
			if scanner.Scan() {
				lineCh <- scanner.Text()
			} else {
				lineCh <- ""
			}
		}()
		var line string
		select {
		case line = <-lineCh:
		case <-deadline:
			t.Fatal("timed out waiting for SSE frames")
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var frame struct {
			Step int `json:"step"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &frame); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		if frames == 0 {
			first = frame.Step
		}
		last = frame.Step
		frames++
	}
	if last <= first {
		t.Errorf("world did not advance: first frame step %d, last %d", first, last)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not drain")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no drain snapshot written")
	}
	f, err := os.Open(filepath.Join(dir, entries[len(entries)-1].Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := selfstab.ReadSnapshot(f); err != nil {
		t.Errorf("drain snapshot does not restore: %v", err)
	}
}

// TestConcurrentReadersWhileStepping is the serving layer's race
// contract: a stepping world serves concurrent /state, /clusters,
// /metrics and SSE readers plus injections without torn reads (run under
// -race). The world size scales up when not in -short mode to cover the
// 10k-node acceptance scenario.
func TestConcurrentReadersWhileStepping(t *testing.T) {
	nodes := 500
	if !testing.Short() {
		nodes = 10000
	}
	// No cold stabilization: the service stabilizes the world live, and
	// pre-stabilizing 10k nodes under -race would dominate the test.
	world, err := selfstab.NewRandomNetwork(nodes,
		selfstab.WithSeed(7), selfstab.WithRange(0.02), selfstab.WithCacheTTL(4))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(world, Config{StepsPerSecond: 500})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readLoop := func(path string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				return // server shutting down
			}
			var sink bytes.Buffer
			_, _ = sink.ReadFrom(resp.Body)
			resp.Body.Close()
		}
	}
	for _, path := range []string{"/state", "/state", "/clusters", "/metrics", "/healthz", "/stats/convergence"} {
		wg.Add(1)
		go readLoop(path)
	}
	// One SSE consumer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				return
			}
		}
	}()
	// Injections race the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b, _ := json.Marshal(map[string]any{"kind": "churn_burst", "count": 2, "op": "crash"})
			resp, err := http.Post(ts.URL+"/inject", "application/json", bytes.NewReader(b))
			if err == nil {
				resp.Body.Close()
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	cancel()
	wg.Wait()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not drain")
	}
	if srv.net.StepCount() == 0 {
		t.Error("world never stepped")
	}
}

// TestObservabilityEndpoints covers the instrumentation surface: the
// phase histograms, engine counters, convergence and SSE-drop blocks in
// /metrics, and the Chrome trace export.
func TestObservabilityEndpoints(t *testing.T) {
	srv, ts := testServer(t, 30, Config{TraceRing: 64})
	// The collector attaches in New, after stabilization. A quiescent
	// world skips the frame/ingest phases entirely, so perturb it first,
	// then step so the ring and histograms have real content.
	postJSON(t, ts.URL+"/inject", map[string]any{"kind": "churn_burst", "count": 2, "op": "crash"}, nil)
	srv.mu.Lock()
	for i := 0; i < 20; i++ {
		if err := srv.net.Step(); err != nil {
			srv.mu.Unlock()
			t.Fatal(err)
		}
	}
	srv.mu.Unlock()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE selfstab_step_duration_seconds histogram",
		`selfstab_step_duration_seconds_bucket{le="+Inf"} 20`,
		"selfstab_step_duration_seconds_count 20",
		`selfstab_phase_duration_seconds_bucket{phase="frame",le="+Inf"}`,
		`selfstab_phase_duration_seconds_count{phase="ingest"}`,
		`selfstab_phase_duration_seconds_count{phase="churn"} 20`,
		"selfstab_engine_frontier_len",
		"selfstab_engine_dense_fallbacks_total",
		"selfstab_convergence_episodes_total",
		"selfstab_convergence_steps_to_restabilize{stat=\"mean\"}",
		"selfstab_convergence_affected_radius{stat=\"max\"}",
		"selfstab_sse_dropped_frames_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", out)
	}

	// The trace export is valid Chrome trace JSON with step spans.
	traceResp, err := http.Post(ts.URL+"/trace?last=10", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("POST /trace: status %d", traceResp.StatusCode)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(traceResp.Body).Decode(&tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	steps := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Name == "step" {
			steps++
		}
	}
	if steps != 10 {
		t.Errorf("trace has %d step spans, want 10", steps)
	}

	// Bad bounds and wrong methods are rejected.
	badResp, err := http.Post(ts.URL+"/trace?last=-1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST /trace?last=-1: status %d, want 400", badResp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /trace: status %d, want 405", getResp.StatusCode)
	}
}

// TestPprofGating: the profiling endpoints exist only behind the opt-in
// config knob.
func TestPprofGating(t *testing.T) {
	_, off := testServer(t, 20, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: status %d, want 404", resp.StatusCode)
	}

	_, on := testServer(t, 20, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index with EnablePprof: status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(on.URL + "/debug/pprof/symbol")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof symbol: status %d, want 200", resp.StatusCode)
	}
}
