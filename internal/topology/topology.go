// Package topology provides the graph substrate of the simulator: unit-disk
// graphs built from node positions, k-hop neighborhoods, BFS distances,
// connected components and eccentricities. All node references are dense
// indices 0..N-1; application-level identifiers live one layer up.
package topology

import (
	"fmt"
	"sort"

	"selfstab/internal/geom"
)

// Graph is an undirected graph over nodes 0..N-1 with sorted adjacency
// lists. The zero value is an empty graph; use New to size one.
type Graph struct {
	adj [][]int
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]int, n)}
}

// FromPoints builds the unit-disk graph over pts: nodes u != v are adjacent
// iff their Euclidean distance is at most r. This is the paper's radio
// model — communication is bidirectional by construction (q in Np iff
// p in Nq). Construction uses the dense uniform grid of GridIndex, so the
// paper's lambda = 1000 deployments build in O(n) expected time; callers
// that rebuild the topology every mobility step should keep the GridIndex
// itself and use its incremental Update instead.
func FromPoints(pts []geom.Point, r float64) *Graph {
	if r <= 0 || len(pts) < 2 {
		return New(len(pts))
	}
	return NewGridIndex(pts, r).Graph()
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// resetTo empties the graph and resizes it to n nodes, keeping each
// adjacency row's backing array for reuse (the Builder's rebuild path).
func (g *Graph) resetTo(n int) {
	if cap(g.adj) < n {
		old := g.adj
		g.adj = make([][]int, n)
		copy(g.adj, old) // keep the old rows' capacity
	} else {
		g.adj = g.adj[:n]
	}
	for i := range g.adj {
		if g.adj[i] != nil {
			g.adj[i] = g.adj[i][:0]
		}
	}
}

// AddNode appends a new isolated vertex and returns its index. Indices of
// existing nodes are unaffected — the graph only ever grows at the end, so
// dense per-node arrays elsewhere stay aligned under churn.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicates are
// rejected with an error so test fixtures fail loudly on typos.
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("self-loop on node %d", u)
	}
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("edge (%d, %d) out of range [0, %d)", u, v, len(g.adj))
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("duplicate edge (%d, %d)", u, v)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	return nil
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	xs := g.adj[u]
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

// Neighbors returns the sorted adjacency list of u. The returned slice is
// shared with the graph: callers must not modify it.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns |N(u)|.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns delta, the maximum degree over all nodes (0 for an
// empty graph). The paper assumes a known constant bound delta on degree;
// experiments use the realized maximum.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	sum := 0
	for _, a := range g.adj {
		sum += len(a)
	}
	return sum / 2
}

// KNeighborhood returns N^k(u): every node within graph distance 1..k of u,
// excluding u itself, in sorted order. k <= 0 yields an empty slice.
func (g *Graph) KNeighborhood(u, k int) []int {
	if k <= 0 || u < 0 || u >= len(g.adj) {
		return nil
	}
	dist := map[int]int{u: 0}
	frontier := []int{u}
	var out []int
	for d := 1; d <= k && len(frontier) > 0; d++ {
		var next []int
		for _, v := range frontier {
			for _, w := range g.adj[v] {
				if _, seen := dist[w]; !seen {
					dist[w] = d
					next = append(next, w)
					out = append(out, w)
				}
			}
		}
		frontier = next
	}
	sort.Ints(out)
	return out
}

// Distances returns the BFS hop distance from u to every node; unreachable
// nodes get -1.
func (g *Graph) Distances(u int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if u < 0 || u >= len(g.adj) {
		return dist
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// DistancesWithin returns BFS distances from u restricted to the node set
// `member` (nodes where member[v] is true). Used for cluster-head
// eccentricity inside a cluster. Nodes outside the set, or unreachable
// through it, get -1.
func (g *Graph) DistancesWithin(u int, member []bool) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if u < 0 || u >= len(g.adj) || !member[u] {
		return dist
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if member[w] && dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from u, i.e. the
// eccentricity of u within its connected component.
func (g *Graph) Eccentricity(u int) int {
	max := 0
	for _, d := range g.Distances(u) {
		if d > max {
			max = d
		}
	}
	return max
}

// Components returns a component label per node (labels are 0-based and
// dense) and the number of components.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, len(g.adj))
	for i := range comp {
		comp[i] = -1
	}
	n := 0
	for s := range g.adj {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = n
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if comp[w] < 0 {
					comp[w] = n
					queue = append(queue, w)
				}
			}
		}
		n++
	}
	return comp, n
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph is considered connected).
func (g *Graph) IsConnected() bool {
	if len(g.adj) == 0 {
		return true
	}
	_, n := g.Components()
	return n == 1
}

// Diameter returns the largest eccentricity within any component
// (ignoring unreachable pairs). It is O(V*E); fine at experiment scale.
func (g *Graph) Diameter() int {
	max := 0
	for u := range g.adj {
		if e := g.Eccentricity(u); e > max {
			max = e
		}
	}
	return max
}

// ClosedNeighborhoodLinks returns, for node u, the number of edges
// e = (v, w) with w in {u} ∪ N(u) and v in N(u) — the numerator of the
// paper's density metric (Definition 1). Equivalently: deg(u) plus the
// number of edges between two neighbors of u.
//
// The neighbor-neighbor count is a sorted-list intersection: for each
// v in N(u), |adj(v) ∩ {w in N(u) : w > v}| by merge scan over the two
// sorted lists — O(deg(u) × (deg(u) + deg(v))) total instead of the
// O(deg(u)² × log deg) of a per-pair binary-search membership probe.
func (g *Graph) ClosedNeighborhoodLinks(u int) int {
	nbrs := g.adj[u]
	count := len(nbrs) // edges from u to each neighbor
	for i, v := range nbrs {
		above := nbrs[i+1:] // only w > v: each neighbor edge counted once
		va := g.adj[v]
		// Skip adj(v) entries <= v fast; both lists ascend from here.
		ai := sort.SearchInts(va, v+1)
		bi := 0
		for ai < len(va) && bi < len(above) {
			switch {
			case va[ai] == above[bi]:
				count++
				ai++
				bi++
			case va[ai] < above[bi]:
				ai++
			default:
				bi++
			}
		}
	}
	return count
}

// Compact drops the slots remap marks as removed (remap[old] < 0) and
// renumbers the survivors to remap[old], truncating the graph to newN
// nodes. remap must be monotone on survivors (slot order preserved) and
// every removed slot must already be isolated — both hold by construction
// for dead-node recycling, where departed nodes had their edges detached
// at death. Adjacency rows keep their backing arrays; sorted order is
// preserved because the remap is monotone.
func (g *Graph) Compact(remap []int32, newN int) error {
	if len(remap) != len(g.adj) {
		return fmt.Errorf("topology: remap of %d entries for %d nodes", len(remap), len(g.adj))
	}
	for old, nw := range remap {
		if nw < 0 {
			if len(g.adj[old]) != 0 {
				return fmt.Errorf("topology: compacting node %d with %d live edges", old, len(g.adj[old]))
			}
			continue
		}
		row := g.adj[old]
		for k, v := range row {
			row[k] = int(remap[v])
		}
		g.adj[nw] = row
	}
	g.adj = g.adj[:newN]
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	for i, a := range g.adj {
		c.adj[i] = append([]int(nil), a...)
	}
	return c
}

// RemoveNode detaches u from all its neighbors (u stays as an isolated
// vertex so indices remain stable). Used by churn experiments.
func (g *Graph) RemoveNode(u int) {
	if u < 0 || u >= len(g.adj) {
		return
	}
	for _, v := range g.adj[u] {
		g.adj[v] = removeSorted(g.adj[v], u)
	}
	g.adj[u] = nil
}

func removeSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return append(xs[:i], xs[i+1:]...)
	}
	return xs
}
