package topology

import (
	"testing"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
)

// TestBuilderMatchesFromPoints: repeated Builds over varying point sets
// and ranges must equal from-scratch construction.
func TestBuilderMatchesFromPoints(t *testing.T) {
	b := NewBuilder()
	src := rng.New(11)
	for iter := 0; iter < 8; iter++ {
		n := 20 + src.Intn(300)
		r := 0.05 + src.Float64()*0.15
		pts := randPoints(n, src)
		graphsEqual(t, b.Build(pts, r), FromPoints(pts, r), "builder rebuild")
	}
	// Shrinking and zero-range builds reuse buffers correctly too.
	pts := randPoints(10, src)
	graphsEqual(t, b.Build(pts, 0), FromPoints(pts, 0), "zero range")
	graphsEqual(t, b.Build(pts, 0.3), FromPoints(pts, 0.3), "small after large")
}

// TestBuilderSteadyStateAllocs: after warmup, rebuilding the same-sized
// deployment reuses every buffer.
func TestBuilderSteadyStateAllocs(t *testing.T) {
	b := NewBuilder()
	src := rng.New(12)
	pts := randPoints(500, src)
	b.Build(pts, 0.1) // warm the buffers
	allocs := testing.AllocsPerRun(10, func() {
		for j := range pts {
			pts[j].X += (src.Float64() - 0.5) * 0.002
			pts[j].Y += (src.Float64() - 0.5) * 0.002
		}
		b.Build(pts, 0.1)
	})
	// A handful of adjacency rows may still grow as the jitter shifts
	// local density; the 6k-allocation from-scratch build must be gone.
	if allocs > 20 {
		t.Fatalf("steady-state Build allocates %.0f times", allocs)
	}
}

// TestGridIndexCompactMatchesOracle: deactivate (kill) a subset, compact
// under the monotone remap, and compare the surviving graph against the
// brute-force unit-disk oracle over the surviving points.
func TestGridIndexCompactMatchesOracle(t *testing.T) {
	const r = 0.15
	for seed := int64(0); seed < 3; seed++ {
		src := rng.New(900 + seed)
		pts := randPoints(80, src)
		idx := NewGridIndexInRegion(pts, r, geom.UnitSquare())
		dead := make([]bool, len(pts))
		for k := 0; k < 25; k++ {
			i := src.Intn(len(pts))
			if !dead[i] {
				dead[i] = true
				idx.Deactivate(i)
			}
		}
		remap := make([]int32, len(pts))
		var survivors []geom.Point
		next := int32(0)
		for i := range pts {
			if dead[i] {
				remap[i] = -1
				continue
			}
			remap[i] = next
			next++
			survivors = append(survivors, pts[i])
		}
		if err := idx.Compact(remap, int(next)); err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, idx.Graph(), FromPoints(survivors, r), "compacted graph")
		// The compacted index must keep working incrementally: move a
		// node, append one, and still match the oracle.
		survivors[0].X = 1 - survivors[0].X
		if _, err := idx.Update(survivors); err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, idx.Graph(), FromPoints(survivors, r), "post-compact update")
		p := geom.Point{X: src.Float64(), Y: src.Float64()}
		idx.Append(p)
		survivors = append(survivors, p)
		graphsEqual(t, idx.Graph(), FromPoints(survivors, r), "post-compact append")
	}
}

// TestCompactRejectsActiveSlot: the remap may only drop deactivated
// (edge-free) slots.
func TestCompactRejectsActiveSlot(t *testing.T) {
	pts := randPoints(10, rng.New(5))
	idx := NewGridIndex(pts, 0.3)
	remap := make([]int32, 10)
	for i := range remap {
		remap[i] = int32(i) - 1 // drop slot 0, which is still active
	}
	if err := idx.Compact(remap, 9); err == nil {
		t.Fatal("compacting an active slot succeeded")
	}
}

// TestAdjacencyChangeHook: every incremental operation must notify every
// node whose adjacency list it changed (over-notification is allowed,
// silence is not — the frontier engine depends on it).
func TestAdjacencyChangeHook(t *testing.T) {
	src := rng.New(31)
	pts := randPoints(60, src)
	const r = 0.2
	idx := NewGridIndexInRegion(pts, r, geom.UnitSquare())
	notified := map[int]bool{}
	idx.SetOnAdjacencyChange(func(i int) { notified[i] = true })

	adjCopy := func() [][]int {
		g := idx.Graph()
		out := make([][]int, g.N())
		for i := range out {
			out[i] = append([]int(nil), g.Neighbors(i)...)
		}
		return out
	}
	check := func(ctx string, before [][]int) {
		t.Helper()
		g := idx.Graph()
		for i := 0; i < g.N() && i < len(before); i++ {
			cur := g.Neighbors(i)
			same := len(cur) == len(before[i])
			if same {
				for k := range cur {
					if cur[k] != before[i][k] {
						same = false
						break
					}
				}
			}
			if !same && !notified[i] {
				t.Fatalf("%s: node %d's adjacency changed without notification", ctx, i)
			}
		}
	}

	for iter := 0; iter < 60; iter++ {
		before := adjCopy()
		clear(notified)
		switch src.Intn(4) {
		case 0:
			for j := 0; j < 1+src.Intn(4); j++ {
				i := src.Intn(len(pts))
				pts[i].X = src.Float64()
				pts[i].Y = src.Float64()
			}
			if _, err := idx.Update(pts); err != nil {
				t.Fatal(err)
			}
			check("update", before)
		case 1:
			p := geom.Point{X: src.Float64(), Y: src.Float64()}
			idx.Append(p)
			pts = append(pts, p)
			check("append", before)
		case 2:
			idx.Deactivate(src.Intn(len(pts)))
			check("deactivate", before)
		case 3:
			idx.Reactivate(src.Intn(len(pts)))
			check("reactivate", before)
		}
	}
}
