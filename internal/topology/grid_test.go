package topology

import (
	"testing"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
)

// graphsEqual compares full sorted adjacency.
func graphsEqual(t *testing.T, got, want *Graph, ctx string) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: %d nodes, want %d", ctx, got.N(), want.N())
	}
	for u := 0; u < want.N(); u++ {
		g, w := got.Neighbors(u), want.Neighbors(u)
		if len(g) != len(w) {
			t.Fatalf("%s: node %d has %d neighbors, want %d (%v vs %v)", ctx, u, len(g), len(w), g, w)
		}
		for k := range w {
			if g[k] != w[k] {
				t.Fatalf("%s: node %d adjacency %v, want %v", ctx, u, g, w)
			}
		}
	}
}

func randPoints(n int, src *rng.Source) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
	}
	return pts
}

// TestGridIndexMatchesFromPoints: construction parity on random instances.
func TestGridIndexMatchesFromPoints(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		src := rng.New(seed)
		pts := randPoints(200, src)
		idx := NewGridIndex(pts, 0.12)
		graphsEqual(t, idx.Graph(), FromPoints(pts, 0.12), "construction")
	}
}

// TestGridIndexIncrementalMatchesRebuild is the property test for the
// incremental maintenance: after arbitrary random moves — small jitters,
// teleports across the region, points wandering outside the original
// bounding box, and no-op updates — Update must produce exactly the
// adjacency a fresh FromPoints rebuild produces.
func TestGridIndexIncrementalMatchesRebuild(t *testing.T) {
	const n = 150
	const r = 0.15
	for seed := int64(0); seed < 3; seed++ {
		src := rng.New(100 + seed)
		pts := randPoints(n, src)
		idx := NewGridIndex(pts, r)
		for iter := 0; iter < 25; iter++ {
			// Move a random subset: 0 nodes (no-op), a few, or everyone.
			frac := []float64{0, 0.05, 0.3, 1}[iter%4]
			for i := range pts {
				if src.Float64() >= frac {
					continue
				}
				switch src.Intn(3) {
				case 0: // jitter in place (cell rarely changes)
					pts[i].X += (src.Float64() - 0.5) * 0.02
					pts[i].Y += (src.Float64() - 0.5) * 0.02
				case 1: // teleport across the region
					pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
				case 2: // escape the original bounding box
					pts[i] = geom.Point{X: src.Float64()*3 - 1, Y: src.Float64()*3 - 1}
				}
			}
			got, err := idx.Update(pts)
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, got, FromPoints(pts, r), "after update")
		}
	}
}

// TestGridIndexInRegionHotspotDispersal: anchoring on the region keeps
// incremental updates exact (and the cells meaningful) when a clustered
// deployment later spreads across the whole region.
func TestGridIndexInRegionHotspotDispersal(t *testing.T) {
	src := rng.New(42)
	const r = 0.1
	// Everyone starts inside a 0.05-wide hotspot.
	pts := make([]geom.Point, 120)
	for i := range pts {
		pts[i] = geom.Point{X: 0.4 + src.Float64()*0.05, Y: 0.4 + src.Float64()*0.05}
	}
	idx := NewGridIndexInRegion(pts, r, geom.UnitSquare())
	graphsEqual(t, idx.Graph(), FromPoints(pts, r), "hotspot construction")
	// Disperse across the full unit square and keep moving.
	for iter := 0; iter < 10; iter++ {
		for i := range pts {
			pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
		}
		got, err := idx.Update(pts)
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, got, FromPoints(pts, r), "after dispersal")
	}
}

// TestGridIndexUpdateValidation: a wrong-length position slice errors.
func TestGridIndexUpdateValidation(t *testing.T) {
	idx := NewGridIndex(randPoints(10, rng.New(1)), 0.1)
	if _, err := idx.Update(make([]geom.Point, 9)); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestGridIndexZeroRange: r <= 0 yields and maintains an edgeless graph.
func TestGridIndexZeroRange(t *testing.T) {
	src := rng.New(2)
	pts := randPoints(20, src)
	idx := NewGridIndex(pts, 0)
	if idx.Graph().Edges() != 0 {
		t.Fatal("zero range produced edges")
	}
	g, err := idx.Update(randPoints(20, src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 0 {
		t.Fatal("zero range update produced edges")
	}
}

// TestGridIndexTinyRangeBoundsCells: a minuscule range over a wide spread
// must not allocate an unbounded dense grid.
func TestGridIndexTinyRangeBoundsCells(t *testing.T) {
	src := rng.New(3)
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64() * 1000, Y: src.Float64() * 1000}
	}
	idx := NewGridIndex(pts, 1e-6)
	if got := len(idx.buckets); got > 4*len(pts)+64 {
		t.Fatalf("dense grid has %d cells for %d points", got, len(pts))
	}
	graphsEqual(t, idx.Graph(), FromPoints(pts, 1e-6), "tiny range")
}

// BenchmarkGridIndexUpdateMobility measures the incremental maintenance
// under a mobility-like workload: every node jitters a little each step.
func BenchmarkGridIndexUpdateMobility(b *testing.B) {
	src := rng.New(7)
	pts := randPoints(1000, src)
	idx := NewGridIndex(pts, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pts {
			pts[j].X += (src.Float64() - 0.5) * 0.004
			pts[j].Y += (src.Float64() - 0.5) * 0.004
		}
		if _, err := idx.Update(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFromPointsMobility is the rebuild-from-scratch baseline for the
// same workload.
func BenchmarkFromPointsMobility(b *testing.B) {
	src := rng.New(7)
	pts := randPoints(1000, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pts {
			pts[j].X += (src.Float64() - 0.5) * 0.004
			pts[j].Y += (src.Float64() - 0.5) * 0.004
		}
		FromPoints(pts, 0.1)
	}
}

// BenchmarkBuilderMobility is the same rebuild-every-step workload
// through the reusable Builder: construction buffers (cells, buckets,
// adjacency rows) survive across builds, so the per-step allocation
// bill of BenchmarkFromPointsMobility (~674 KB / 6.5k allocs) collapses
// to whatever the jitter actually grew.
func BenchmarkBuilderMobility(b *testing.B) {
	src := rng.New(7)
	pts := randPoints(1000, src)
	builder := NewBuilder()
	builder.Build(pts, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pts {
			pts[j].X += (src.Float64() - 0.5) * 0.004
			pts[j].Y += (src.Float64() - 0.5) * 0.004
		}
		builder.Build(pts, 0.1)
	}
}

// churnOracle builds the expected unit-disk graph over the active subset
// by brute force: active pairs within range are adjacent, inactive slots
// are isolated vertices.
func churnOracle(pts []geom.Point, inactive []bool, r float64) *Graph {
	g := New(len(pts))
	for u := range pts {
		if inactive[u] {
			continue
		}
		for v := u + 1; v < len(pts); v++ {
			if !inactive[v] && pts[u].Dist2(pts[v]) <= r*r {
				if err := g.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// TestGridIndexChurnMatchesOracle drives random interleavings of Append,
// Deactivate, Reactivate, and Update (moves, including moves of inactive
// slots) and checks the incrementally maintained adjacency against the
// brute-force oracle after every operation.
func TestGridIndexChurnMatchesOracle(t *testing.T) {
	const r = 0.15
	for seed := int64(0); seed < 3; seed++ {
		src := rng.New(500 + seed)
		pts := randPoints(60, src)
		idx := NewGridIndexInRegion(pts, r, geom.UnitSquare())
		inactive := make([]bool, len(pts))
		for iter := 0; iter < 120; iter++ {
			switch src.Intn(4) {
			case 0: // append a fresh node
				p := geom.Point{X: src.Float64(), Y: src.Float64()}
				got := idx.Append(p)
				pts = append(pts, p)
				inactive = append(inactive, false)
				if got != len(pts)-1 {
					t.Fatalf("Append returned index %d, want %d", got, len(pts)-1)
				}
			case 1: // radio off
				i := src.Intn(len(pts))
				idx.Deactivate(i)
				inactive[i] = true
				if idx.Active(i) {
					t.Fatalf("node %d active after Deactivate", i)
				}
			case 2: // radio on
				i := src.Intn(len(pts))
				idx.Reactivate(i)
				inactive[i] = false
			default: // move a random subset (inactive slots included)
				next := append([]geom.Point(nil), pts...)
				for k := src.Intn(8); k > 0; k-- {
					i := src.Intn(len(pts))
					next[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
				}
				if _, err := idx.Update(next); err != nil {
					t.Fatal(err)
				}
				pts = next
			}
			graphsEqual(t, idx.Graph(), churnOracle(pts, inactive, r), "churn")
		}
	}
}

// TestGridIndexDeactivateIdempotent: double deactivate/reactivate and
// out-of-range indices are safe no-ops.
func TestGridIndexDeactivateIdempotent(t *testing.T) {
	src := rng.New(9)
	pts := randPoints(20, src)
	idx := NewGridIndex(pts, 0.3)
	want := idx.Graph().Clone()
	idx.Deactivate(-1)
	idx.Reactivate(99)
	idx.Reactivate(3) // already active
	graphsEqual(t, idx.Graph(), want, "no-op churn")
	idx.Deactivate(3)
	idx.Deactivate(3) // already inactive
	idx.Reactivate(3)
	graphsEqual(t, idx.Graph(), want, "deactivate/reactivate round trip")
}
