package topology

import (
	"fmt"
	"math"

	"selfstab/internal/geom"
)

// Tiling partitions a deployment region into a kx × ky grid of equal
// rectangular tiles. It is the spatial-ownership map behind the engine's
// tiled stepping: every node belongs to exactly the tile containing its
// position, each tile steps its own slice of the frontier, and — because
// radio reach is bounded by the unit-disk radius — a tile's nodes can only
// influence nodes in tiles adjacent to it. Cross-tile (halo) traffic is
// therefore O(perimeter), not O(area), which is what makes the partition
// shard-friendly.
//
// The tiling is purely geometric and immutable: it never inspects the node
// set, so every consumer (grid index, engine, tests) derives the same
// assignment from the same positions.
type Tiling struct {
	region geom.Rect
	kx, ky int
	invW   float64 // tiles per unit x-extent
	invH   float64 // tiles per unit y-extent
}

// NewTiling splits region into k tiles, factoring k as near-square kx × ky
// with the larger factor along the region's longer axis (so tiles stay as
// close to square as the factorization allows — square tiles minimize the
// halo perimeter per owned area). k < 1 is clamped to 1.
func NewTiling(region geom.Rect, k int) *Tiling {
	if k < 1 {
		k = 1
	}
	// Largest factor pair: a = the biggest divisor of k not exceeding
	// sqrt(k), b = k/a. For prime k this degenerates to 1 × k, which is
	// still a valid (strip) tiling.
	a := int(math.Sqrt(float64(k)))
	for a > 1 && k%a != 0 {
		a--
	}
	if a < 1 {
		a = 1
	}
	b := k / a
	kx, ky := b, a
	if region.MaxY-region.MinY > region.MaxX-region.MinX {
		kx, ky = a, b
	}
	t := &Tiling{region: region, kx: kx, ky: ky}
	if w := region.MaxX - region.MinX; w > 0 {
		t.invW = float64(kx) / w
	}
	if h := region.MaxY - region.MinY; h > 0 {
		t.invH = float64(ky) / h
	}
	return t
}

// Tiles returns the tile count kx × ky.
func (t *Tiling) Tiles() int { return t.kx * t.ky }

// Dims returns the tile grid dimensions (kx columns, ky rows).
func (t *Tiling) Dims() (kx, ky int) { return t.kx, t.ky }

// TileOf maps a point to its tile index in [0, Tiles()). Points outside
// the region clamp to the border tiles (clamping is monotone, mirroring
// GridIndex.cellOf: wanderers stay owned by the nearest edge tile).
func (t *Tiling) TileOf(p geom.Point) int {
	cx := int((p.X - t.region.MinX) * t.invW)
	cy := int((p.Y - t.region.MinY) * t.invH)
	if cx < 0 {
		cx = 0
	} else if cx >= t.kx {
		cx = t.kx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= t.ky {
		cy = t.ky - 1
	}
	return cy*t.kx + cx
}

// String renders the tile grid, e.g. "4 tiles (2x2)".
func (t *Tiling) String() string {
	return fmt.Sprintf("%d tiles (%dx%d)", t.Tiles(), t.kx, t.ky)
}
