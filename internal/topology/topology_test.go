package topology

import (
	"sort"
	"testing"
	"testing/quick"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
)

// path returns the path graph 0-1-2-...-(n-1).
func path(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.Edges() != 0 || !g.IsConnected() {
		t.Error("empty graph invariants violated")
	}
	if New(-3).N() != 0 {
		t.Error("negative size should clamp to 0")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative index accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestAdjacencySortedAndSymmetric(t *testing.T) {
	g := New(5)
	for _, e := range [][2]int{{3, 1}, {3, 0}, {3, 4}, {1, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{0, 1, 4}
	got := g.Neighbors(3)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(3) = %v, want %v", got, want)
		}
	}
	for u := 0; u < 5; u++ {
		for _, v := range g.Neighbors(u) {
			if !g.HasEdge(v, u) {
				t.Errorf("asymmetric edge (%d,%d)", u, v)
			}
		}
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if g.HasEdge(-1, 0) || g.HasEdge(5, 0) {
		t.Error("HasEdge out of range should be false")
	}
}

func TestDegreeAndMaxDegree(t *testing.T) {
	g := New(4) // star centered on 0
	for v := 1; v < 4; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Errorf("degrees: %d, %d", g.Degree(0), g.Degree(1))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if g.Edges() != 3 {
		t.Errorf("Edges = %d", g.Edges())
	}
}

func TestFromPointsUnitDisk(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.04, Y: 0}, {X: 0.2, Y: 0}, {X: 0.2, Y: 0.04},
	}
	g := FromPoints(pts, 0.05)
	if !g.HasEdge(0, 1) {
		t.Error("nodes at distance 0.04 should be adjacent at r=0.05")
	}
	if g.HasEdge(1, 2) {
		t.Error("nodes at distance 0.16 should not be adjacent at r=0.05")
	}
	if !g.HasEdge(2, 3) {
		t.Error("nodes at distance 0.04 should be adjacent")
	}
	if g.HasEdge(0, 2) {
		t.Error("far nodes adjacent")
	}
}

func TestFromPointsBoundaryExactlyR(t *testing.T) {
	g := FromPoints([]geom.Point{{X: 0, Y: 0}, {X: 0.05, Y: 0}}, 0.05)
	if !g.HasEdge(0, 1) {
		t.Error("distance exactly r should be adjacent (closed disk)")
	}
}

func TestFromPointsDegenerate(t *testing.T) {
	if g := FromPoints(nil, 0.1); g.N() != 0 {
		t.Error("nil points")
	}
	if g := FromPoints([]geom.Point{{X: 0, Y: 0}}, 0.1); g.N() != 1 || g.Edges() != 0 {
		t.Error("single point")
	}
	if g := FromPoints([]geom.Point{{X: 0, Y: 0}, {X: 0, Y: 0}}, 0); g.Edges() != 0 {
		t.Error("r=0 should produce no edges")
	}
}

// TestFromPointsMatchesBruteForce cross-checks the spatial-index
// construction against the O(n^2) definition on random instances.
func TestFromPointsMatchesBruteForce(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 30 + src.Intn(70)
		r := 0.05 + src.Float64()*0.2
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
		}
		g := FromPoints(pts, r)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				want := pts[u].Dist(pts[v]) <= r
				if got := g.HasEdge(u, v); got != want {
					t.Fatalf("trial %d: edge (%d,%d) = %v, want %v (dist %v, r %v)",
						trial, u, v, got, want, pts[u].Dist(pts[v]), r)
				}
			}
		}
	}
}

func TestKNeighborhoodPath(t *testing.T) {
	g := path(t, 7) // 0-1-2-3-4-5-6
	tests := []struct {
		u, k int
		want []int
	}{
		{3, 1, []int{2, 4}},
		{3, 2, []int{1, 2, 4, 5}},
		{3, 3, []int{0, 1, 2, 4, 5, 6}},
		{0, 2, []int{1, 2}},
		{3, 0, nil},
		{3, 10, []int{0, 1, 2, 4, 5, 6}},
	}
	for _, tt := range tests {
		got := g.KNeighborhood(tt.u, tt.k)
		if len(got) != len(tt.want) {
			t.Errorf("K(%d,%d) = %v, want %v", tt.u, tt.k, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("K(%d,%d) = %v, want %v", tt.u, tt.k, got, tt.want)
				break
			}
		}
	}
}

func TestKNeighborhoodExcludesSelf(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		for _, v := range g.KNeighborhood(0, k) {
			if v == 0 {
				t.Errorf("k=%d: neighborhood contains the node itself", k)
			}
		}
	}
}

func TestDistancesPath(t *testing.T) {
	g := path(t, 5)
	d := g.Distances(0)
	for i := 0; i < 5; i++ {
		if d[i] != i {
			t.Errorf("dist(0,%d) = %d, want %d", i, d[i], i)
		}
	}
}

func TestDistancesUnreachable(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d := g.Distances(0)
	if d[2] != -1 || d[3] != -1 {
		t.Errorf("unreachable nodes should be -1: %v", d)
	}
}

func TestDistancesWithin(t *testing.T) {
	g := path(t, 5)
	member := []bool{true, true, false, true, true}
	d := g.DistancesWithin(0, member)
	if d[0] != 0 || d[1] != 1 {
		t.Errorf("in-set distances wrong: %v", d)
	}
	if d[2] != -1 {
		t.Errorf("non-member got distance %d", d[2])
	}
	if d[3] != -1 || d[4] != -1 {
		t.Errorf("nodes cut off by non-member should be -1: %v", d)
	}
	// Starting at a non-member yields all -1.
	d = g.DistancesWithin(2, member)
	for i, v := range d {
		if v != -1 {
			t.Errorf("start at non-member: d[%d]=%d", i, v)
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := path(t, 6)
	if e := g.Eccentricity(0); e != 5 {
		t.Errorf("ecc(0) = %d, want 5", e)
	}
	if e := g.Eccentricity(2); e != 3 {
		t.Errorf("ecc(2) = %d, want 3", e)
	}
	if d := g.Diameter(); d != 5 {
		t.Errorf("diameter = %d, want 5", d)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	comp, n := g.Components()
	if n != 4 { // {0,1}, {2,3}, {4}, {5}
		t.Fatalf("components = %d, want 4 (%v)", n, comp)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] {
		t.Errorf("component labels wrong: %v", comp)
	}
	if comp[0] == comp[2] || comp[4] == comp[5] {
		t.Errorf("distinct components merged: %v", comp)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestClosedNeighborhoodLinksTriangle(t *testing.T) {
	g := New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Each node: 2 incident edges + 1 edge between its two neighbors.
	for u := 0; u < 3; u++ {
		if got := g.ClosedNeighborhoodLinks(u); got != 3 {
			t.Errorf("links(%d) = %d, want 3", u, got)
		}
	}
}

func TestClosedNeighborhoodLinksStar(t *testing.T) {
	g := New(5)
	for v := 1; v < 5; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.ClosedNeighborhoodLinks(0); got != 4 {
		t.Errorf("center links = %d, want 4 (no edges among leaves)", got)
	}
	if got := g.ClosedNeighborhoodLinks(1); got != 1 {
		t.Errorf("leaf links = %d, want 1", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := path(t, 3)
	c := g.Clone()
	if err := c.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Error("mutating clone affected original")
	}
}

func TestRemoveNode(t *testing.T) {
	g := path(t, 4) // 0-1-2-3
	g.RemoveNode(1)
	if g.Degree(1) != 0 {
		t.Error("removed node kept neighbors")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Error("stale edges after RemoveNode")
	}
	if !g.HasEdge(2, 3) {
		t.Error("unrelated edge lost")
	}
	g.RemoveNode(-1) // must not panic
	g.RemoveNode(99)
}

// Property: in any unit-disk graph, KNeighborhood(u, diameter) spans u's
// whole component.
func TestKNeighborhoodSpansComponent(t *testing.T) {
	src := rng.New(5)
	f := func(seed int64) bool {
		local := rng.New(seed)
		n := 10 + local.Intn(40)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: local.Float64(), Y: local.Float64()}
		}
		g := FromPoints(pts, 0.3)
		u := local.Intn(n)
		nbh := g.KNeighborhood(u, n) // n >= any diameter
		dist := g.Distances(u)
		reachable := 0
		for v, d := range dist {
			if v != u && d > 0 {
				reachable++
				if !contains(nbh, v) {
					return false
				}
			}
		}
		return reachable == len(nbh)
	}
	cfg := &quick.Config{MaxCount: 30, Values: nil}
	_ = src
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func contains(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
