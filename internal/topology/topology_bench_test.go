package topology

import (
	"testing"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
)

func benchPoints(n int, seed int64) []geom.Point {
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
	}
	return pts
}

// BenchmarkFromPoints1000 is the paper-scale unit-disk construction
// (lambda = 1000, R = 0.1): the per-run setup cost of every experiment.
func BenchmarkFromPoints1000(b *testing.B) {
	pts := benchPoints(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromPoints(pts, 0.1)
	}
}

// BenchmarkFromPointsBruteForceComparison shows why the grid index
// matters: the quadratic construction at the same scale.
func BenchmarkFromPointsBruteForceComparison(b *testing.B) {
	pts := benchPoints(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(len(pts))
		for u := range pts {
			for v := u + 1; v < len(pts); v++ {
				if pts[u].Dist2(pts[v]) <= 0.01 {
					g.adj[u] = append(g.adj[u], v)
					g.adj[v] = append(g.adj[v], u)
				}
			}
		}
	}
}

// BenchmarkClosedNeighborhoodLinks is the density numerator, evaluated for
// every node — the metric layer's hot loop.
func BenchmarkClosedNeighborhoodLinks(b *testing.B) {
	g := FromPoints(benchPoints(1000, 2), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for u := 0; u < g.N(); u++ {
			g.ClosedNeighborhoodLinks(u)
		}
	}
}

// BenchmarkKNeighborhood2 is the fusion rule's 2-hop scan.
func BenchmarkKNeighborhood2(b *testing.B) {
	g := FromPoints(benchPoints(1000, 3), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KNeighborhood(i%g.N(), 2)
	}
}

// BenchmarkDistances is one BFS at paper scale (eccentricity inner loop).
func BenchmarkDistances(b *testing.B) {
	g := FromPoints(benchPoints(1000, 4), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Distances(i % g.N())
	}
}
