package topology

import (
	"testing"

	"selfstab/internal/geom"
)

// TestTilingDims: near-square factorization, larger factor on the longer
// axis, primes degenerate to strips, k < 1 clamps.
func TestTilingDims(t *testing.T) {
	sq := geom.UnitSquare()
	cases := []struct {
		k      int
		kx, ky int
	}{
		{1, 1, 1},
		{2, 2, 1},
		{4, 2, 2},
		{6, 3, 2},
		{7, 7, 1},
		{12, 4, 3},
		{0, 1, 1},
		{-3, 1, 1},
	}
	for _, c := range cases {
		ti := NewTiling(sq, c.k)
		kx, ky := ti.Dims()
		if kx != c.kx || ky != c.ky {
			t.Errorf("NewTiling(square, %d) = %dx%d, want %dx%d", c.k, kx, ky, c.kx, c.ky)
		}
		if want := c.kx * c.ky; ti.Tiles() != want {
			t.Errorf("Tiles() = %d, want %d", ti.Tiles(), want)
		}
	}
	// A tall region puts the larger factor on y.
	tall := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 3}
	if kx, ky := NewTiling(tall, 6).Dims(); kx != 2 || ky != 3 {
		t.Errorf("tall region: %dx%d, want 2x3", kx, ky)
	}
}

// TestTileOf: interior points map to the enclosing tile, borders and
// out-of-region wanderers clamp, and every tile index is reachable.
func TestTileOf(t *testing.T) {
	ti := NewTiling(geom.UnitSquare(), 4) // 2x2
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Point{X: 0.25, Y: 0.25}, 0},
		{geom.Point{X: 0.75, Y: 0.25}, 1},
		{geom.Point{X: 0.25, Y: 0.75}, 2},
		{geom.Point{X: 0.75, Y: 0.75}, 3},
		{geom.Point{X: 0, Y: 0}, 0},
		{geom.Point{X: 1, Y: 1}, 3}, // the far corner clamps into the last tile
		{geom.Point{X: -5, Y: 0.6}, 2},
		{geom.Point{X: 7, Y: -7}, 1},
	}
	for _, c := range cases {
		if got := ti.TileOf(c.p); got != c.want {
			t.Errorf("TileOf(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if s := ti.String(); s != "4 tiles (2x2)" {
		t.Errorf("String() = %q", s)
	}
}
