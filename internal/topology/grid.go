package topology

import (
	"fmt"
	"math"
	"sort"

	"selfstab/internal/geom"
)

// GridIndex is a persistent unit-disk spatial index: a dense uniform grid
// of cells at least the radio range wide, plus the unit-disk graph it
// implies. Unlike FromPoints — which rebuilds buckets, adjacency and sort
// order from scratch — a GridIndex survives across mobility steps and
// Update only recomputes the edges of nodes that actually moved, reusing
// every backing array. Under a mobility trace this turns the per-sample
// topology cost from "rebuild the world" into work proportional to how
// much the world changed.
//
// The grid is anchored at the bounding box of the initial positions; later
// positions may wander outside it — cell coordinates clamp to the border,
// which preserves correctness (clamping is monotone, so two points within
// range still land in adjacent cells) at the cost of fatter border cells.
type GridIndex struct {
	r    float64 // radio range
	r2   float64
	side float64 // cell side, >= r (grown to bound the cell count)
	minX float64
	minY float64
	cols int
	rows int

	pts      []geom.Point // current positions (owned copy)
	cell     []int32      // cell index per node
	buckets  [][]int32    // node indices per cell (unordered)
	inactive []bool       // radio off (dead or sleeping): no bucket entry, no edges
	g        *Graph

	// Reusable Update scratch.
	movedFlag []bool
	moved     []int32
	newNbrs   []int
	added     []int
	removed   []int

	// onAdjChange, when set, is invoked once per node whose adjacency
	// list was changed by an incremental operation (Update, Append,
	// Deactivate, Reactivate) — both endpoints of every created or
	// vanished edge. It is the topology-delta feed the frontier step
	// engine activates its worklist from, and — under tiled stepping —
	// the halo feed: a cross-tile edge delta lands both owning tiles'
	// nodes on their respective frontiers. Duplicate notifications are
	// allowed; missing ones are not.
	onAdjChange func(i int)

	// onMove, when set, is invoked once per node whose position Update
	// changed (including inactive nodes, whose recorded position moves
	// even while they own no edges). The tiled step engine wires this to
	// its re-tiling hook: tile ownership is a pure function of position,
	// so a move — even one that changes no adjacency — may hand the node
	// to another tile.
	onMove func(i int)
}

// NewGridIndex builds the index and its unit-disk graph over pts: nodes
// u != v are adjacent iff their Euclidean distance is at most r (the
// paper's radio model; communication is bidirectional by construction).
// The grid anchors on the bounding box of pts; when nodes are expected to
// roam a known region wider than the initial deployment (e.g. a hotspot
// deployment dispersing across the unit square), use NewGridIndexInRegion
// so later positions keep falling into proper cells instead of clamping.
func NewGridIndex(pts []geom.Point, r float64) *GridIndex {
	return newGridIndex(pts, r, nil)
}

// NewGridIndexInRegion is NewGridIndex with the grid anchored on region's
// bounding box rather than the initial point spread.
func NewGridIndexInRegion(pts []geom.Point, r float64, region geom.Rect) *GridIndex {
	return newGridIndex(pts, r, &region)
}

func newGridIndex(pts []geom.Point, r float64, region *geom.Rect) *GridIndex {
	gi := &GridIndex{
		r:        r,
		r2:       r * r,
		pts:      append([]geom.Point(nil), pts...),
		g:        New(len(pts)),
		cell:     make([]int32, len(pts)),
		inactive: make([]bool, len(pts)),
	}
	gi.sizeGrid(region)
	gi.buckets = make([][]int32, gi.cols*gi.rows)
	for i, p := range gi.pts {
		c := gi.cellOf(p)
		gi.cell[i] = c
		gi.buckets[c] = append(gi.buckets[c], int32(i))
	}
	if r > 0 {
		for i := range gi.pts {
			gi.g.adj[i] = gi.collectNeighbors(i, gi.g.adj[i])
		}
	}
	return gi
}

// sizeGrid anchors the grid on the given region (or, when nil, on the
// bounding box of the current points) and picks a cell side >= r that
// keeps the cell count within a constant factor of the node count (a
// dense slice of empty cells must not dominate memory when the range is
// tiny relative to the spread).
func (gi *GridIndex) sizeGrid(region *geom.Rect) {
	var minX, minY, maxX, maxY float64
	if region != nil {
		minX, minY, maxX, maxY = region.MinX, region.MinY, region.MaxX, region.MaxY
	} else {
		minX, minY = math.Inf(1), math.Inf(1)
		maxX, maxY = math.Inf(-1), math.Inf(-1)
		for _, p := range gi.pts {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
		if len(gi.pts) == 0 {
			minX, minY, maxX, maxY = 0, 0, 0, 0
		}
	}
	gi.minX, gi.minY = minX, minY
	side := gi.r
	if side <= 0 {
		// No edges are possible; one cell suffices.
		gi.side, gi.cols, gi.rows = 1, 1, 1
		return
	}
	maxCells := 4*len(gi.pts) + 64
	for {
		cols := int((maxX-minX)/side) + 1
		rows := int((maxY-minY)/side) + 1
		if cols*rows <= maxCells {
			gi.side, gi.cols, gi.rows = side, cols, rows
			return
		}
		side *= 2
	}
}

// cellOf maps a point to its (clamped) dense cell index.
func (gi *GridIndex) cellOf(p geom.Point) int32 {
	cx := int((p.X - gi.minX) / gi.side)
	cy := int((p.Y - gi.minY) / gi.side)
	if cx < 0 {
		cx = 0
	} else if cx >= gi.cols {
		cx = gi.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= gi.rows {
		cy = gi.rows - 1
	}
	return int32(cy*gi.cols + cx)
}

// collectNeighbors gathers the sorted unit-disk neighbors of node i from
// the 3x3 cell block around its cell, into dst (reused, returned resliced).
func (gi *GridIndex) collectNeighbors(i int, dst []int) []int {
	dst = dst[:0]
	p := gi.pts[i]
	c := int(gi.cell[i])
	cx, cy := c%gi.cols, c/gi.cols
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= gi.rows {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= gi.cols {
				continue
			}
			for _, j := range gi.buckets[y*gi.cols+x] {
				if int(j) != i && p.Dist2(gi.pts[j]) <= gi.r2 {
					dst = append(dst, int(j))
				}
			}
		}
	}
	sort.Ints(dst)
	return dst
}

// SetOnAdjacencyChange installs fn as the adjacency-delta hook: every
// incremental operation calls it for each node whose edge set changed
// (both endpoints of every created or vanished edge), before the
// operation returns. nil disables it. The step engine wires this to its
// frontier activation so a mobility or churn delta re-examines exactly
// the affected radio neighborhoods.
func (gi *GridIndex) SetOnAdjacencyChange(fn func(i int)) { gi.onAdjChange = fn }

// SetOnMove installs fn as the position-delta hook: Update calls it for
// every node whose position changed, active or not, before recomputing any
// adjacency. nil disables it. The tiled step engine uses this to keep its
// tile-ownership map current under mobility.
func (gi *GridIndex) SetOnMove(fn func(i int)) { gi.onMove = fn }

// noteAdj fires the adjacency hook for node i.
func (gi *GridIndex) noteAdj(i int) {
	if gi.onAdjChange != nil {
		gi.onAdjChange(i)
	}
}

// Graph returns the maintained unit-disk graph. The graph is updated in
// place by Update; callers that need a frozen snapshot must Clone it.
func (gi *GridIndex) Graph() *Graph { return gi.g }

// Positions returns the current positions (owned by the index).
func (gi *GridIndex) Positions() []geom.Point { return gi.pts }

// Update moves the indexed nodes to pts and incrementally repairs cells
// and adjacency: only nodes whose position changed have their edge sets
// recomputed (and their vanished/created edges patched into unmoved
// neighbors' lists). The returned graph is the same object Graph returns,
// mutated in place. Cost is O(moved × local density); a no-op move list
// costs O(n) comparisons and touches nothing.
func (gi *GridIndex) Update(pts []geom.Point) (*Graph, error) {
	n := len(gi.pts)
	if len(pts) != n {
		return nil, fmt.Errorf("topology: update with %d positions for %d indexed nodes", len(pts), n)
	}
	if cap(gi.movedFlag) < n {
		gi.movedFlag = make([]bool, n)
	} else {
		gi.movedFlag = gi.movedFlag[:n]
		for i := range gi.movedFlag {
			gi.movedFlag[i] = false
		}
	}
	gi.moved = gi.moved[:0]

	// Pass 1: install new positions and repair cell membership. Inactive
	// slots (Deactivate) just record the position — they sit in no bucket
	// and own no edges, so there is nothing to repair until Reactivate.
	for i, p := range pts {
		if p == gi.pts[i] {
			continue
		}
		gi.pts[i] = p
		if gi.onMove != nil {
			gi.onMove(i)
		}
		if gi.inactive[i] {
			continue
		}
		gi.movedFlag[i] = true
		gi.moved = append(gi.moved, int32(i))
		if c := gi.cellOf(p); c != gi.cell[i] {
			gi.bucketRemove(gi.cell[i], int32(i))
			gi.buckets[c] = append(gi.buckets[c], int32(i))
			gi.cell[i] = c
		}
	}
	if gi.r <= 0 || len(gi.moved) == 0 {
		return gi.g, nil
	}

	// Pass 2: recompute each moved node's edge set against the updated
	// positions. Moved–moved pairs are decided identically by both
	// endpoints' recomputations (the distance test is symmetric), so only
	// unmoved endpoints need explicit patching.
	for _, mi := range gi.moved {
		i := int(mi)
		gi.newNbrs = gi.collectNeighbors(i, gi.newNbrs)
		gi.added, gi.removed = diffSorted(gi.g.adj[i], gi.newNbrs, gi.added, gi.removed)
		// Both endpoints of every changed edge are notified: unmoved ones
		// here as they are patched, moved ones when their own diff comes
		// up non-empty (the symmetric distance test guarantees it does).
		for _, j := range gi.removed {
			if !gi.movedFlag[j] {
				gi.g.adj[j] = removeSorted(gi.g.adj[j], i)
				gi.noteAdj(j)
			}
		}
		for _, j := range gi.added {
			if !gi.movedFlag[j] {
				gi.g.adj[j] = insertSorted(gi.g.adj[j], i)
				gi.noteAdj(j)
			}
		}
		if len(gi.added)+len(gi.removed) > 0 {
			gi.noteAdj(i)
		}
		gi.g.adj[i] = append(gi.g.adj[i][:0], gi.newNbrs...)
	}
	return gi.g, nil
}

// Append adds one new node at p to the index and its graph, wiring its
// unit-disk edges incrementally into existing neighbors' adjacency lists.
// It returns the new node's dense index (always the current node count —
// churn only ever grows the index at the end, keeping existing indices
// stable). Cost is O(local density).
func (gi *GridIndex) Append(p geom.Point) int {
	i := len(gi.pts)
	gi.pts = append(gi.pts, p)
	c := gi.cellOf(p)
	gi.cell = append(gi.cell, c)
	gi.buckets[c] = append(gi.buckets[c], int32(i))
	gi.inactive = append(gi.inactive, false)
	gi.g.AddNode()
	if gi.r > 0 {
		gi.newNbrs = gi.collectNeighbors(i, gi.newNbrs)
		for _, j := range gi.newNbrs {
			gi.g.adj[j] = insertSorted(gi.g.adj[j], i)
			gi.noteAdj(j)
		}
		gi.g.adj[i] = append(gi.g.adj[i][:0], gi.newNbrs...)
		if len(gi.newNbrs) > 0 {
			gi.noteAdj(i)
		}
	}
	return i
}

// Deactivate switches node i's radio off: it leaves its cell bucket and
// every incident edge is removed from both endpoints. The slot (and its
// position) survives, so indices stay dense and stable; use Reactivate to
// bring the node back. Deactivating an already-inactive node is a no-op.
// Edge-list capacity is retained so a deactivate/reactivate cycle is
// allocation-free at steady state.
func (gi *GridIndex) Deactivate(i int) {
	if i < 0 || i >= len(gi.pts) || gi.inactive[i] {
		return
	}
	gi.bucketRemove(gi.cell[i], int32(i))
	gi.inactive[i] = true
	for _, j := range gi.g.adj[i] {
		gi.g.adj[j] = removeSorted(gi.g.adj[j], i)
		gi.noteAdj(j)
	}
	if len(gi.g.adj[i]) > 0 {
		gi.noteAdj(i)
	}
	gi.g.adj[i] = gi.g.adj[i][:0]
}

// Reactivate switches node i's radio back on at its current position:
// it rejoins its cell bucket and its unit-disk edges are recomputed and
// patched into neighbors' lists. Reactivating an active node is a no-op.
func (gi *GridIndex) Reactivate(i int) {
	if i < 0 || i >= len(gi.pts) || !gi.inactive[i] {
		return
	}
	c := gi.cellOf(gi.pts[i])
	gi.cell[i] = c
	gi.buckets[c] = append(gi.buckets[c], int32(i))
	gi.inactive[i] = false
	if gi.r > 0 {
		gi.newNbrs = gi.collectNeighbors(i, gi.newNbrs)
		for _, j := range gi.newNbrs {
			gi.g.adj[j] = insertSorted(gi.g.adj[j], i)
			gi.noteAdj(j)
		}
		gi.g.adj[i] = append(gi.g.adj[i][:0], gi.newNbrs...)
		if len(gi.newNbrs) > 0 {
			gi.noteAdj(i)
		}
	}
}

// Active reports whether node i currently has its radio on (i.e. it has
// not been Deactivated).
func (gi *GridIndex) Active(i int) bool {
	return i >= 0 && i < len(gi.pts) && !gi.inactive[i]
}

// Compact drops the slots remap marks as removed (remap[old] < 0) and
// renumbers survivors, truncating the index to newN nodes — the
// dead-slot recycling half of the engine's Compact. Removed slots must
// be inactive (Deactivated), which holds for every dead node. Cell
// buckets are rebuilt from the surviving active population; positions,
// cells and the activity flags move in place; the maintained graph is
// compacted with the same remap. The adjacency hook does not fire: no
// survivor's neighbor set changes, only its numbering.
func (gi *GridIndex) Compact(remap []int32, newN int) error {
	if len(remap) != len(gi.pts) {
		return fmt.Errorf("topology: remap of %d entries for %d indexed nodes", len(remap), len(gi.pts))
	}
	for old, nw := range remap {
		if nw < 0 {
			if !gi.inactive[old] {
				return fmt.Errorf("topology: compacting active node %d", old)
			}
			continue
		}
		gi.pts[nw] = gi.pts[old]
		gi.cell[nw] = gi.cell[old]
		gi.inactive[nw] = gi.inactive[old]
	}
	gi.pts = gi.pts[:newN]
	gi.cell = gi.cell[:newN]
	gi.inactive = gi.inactive[:newN]
	for c := range gi.buckets {
		gi.buckets[c] = gi.buckets[c][:0]
	}
	for i := range gi.pts {
		if !gi.inactive[i] {
			gi.buckets[gi.cell[i]] = append(gi.buckets[gi.cell[i]], int32(i))
		}
	}
	if len(gi.movedFlag) > newN {
		gi.movedFlag = gi.movedFlag[:newN]
	}
	return gi.g.Compact(remap, newN)
}

// bucketRemove drops node id from cell c's bucket (swap-remove).
func (gi *GridIndex) bucketRemove(c, id int32) {
	b := gi.buckets[c]
	for k, v := range b {
		if v == id {
			b[k] = b[len(b)-1]
			gi.buckets[c] = b[:len(b)-1]
			return
		}
	}
}

// Builder amortizes repeated from-scratch unit-disk constructions — a
// mobility trace resampling FromPoints every step, or an experiment
// deploying thousands of instances — by reusing every internal buffer
// (cells, buckets, adjacency rows) across Build calls. The returned
// graph is owned by the builder and valid only until the next Build;
// Clone it to retain. For incremental maintenance of one persistent
// topology use GridIndex.Update instead; the builder is for workloads
// that genuinely rebuild.
type Builder struct {
	gi *GridIndex
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Build is FromPoints into the builder's reused buffers: nodes u != v are
// adjacent iff their Euclidean distance is at most r.
func (b *Builder) Build(pts []geom.Point, r float64) *Graph {
	if b.gi == nil {
		b.gi = NewGridIndex(pts, r)
		return b.gi.g
	}
	return b.gi.rebuild(pts, r)
}

// rebuild re-anchors the index on pts and reconstructs cells, buckets and
// adjacency from scratch into the retained buffers.
func (gi *GridIndex) rebuild(pts []geom.Point, r float64) *Graph {
	n := len(pts)
	gi.r, gi.r2 = r, r*r
	if cap(gi.pts) < n {
		gi.pts = make([]geom.Point, n)
	} else {
		gi.pts = gi.pts[:n]
	}
	copy(gi.pts, pts)
	if cap(gi.cell) < n {
		gi.cell = make([]int32, n)
	} else {
		gi.cell = gi.cell[:n]
	}
	if cap(gi.inactive) < n {
		gi.inactive = make([]bool, n)
	} else {
		gi.inactive = gi.inactive[:n]
		for i := range gi.inactive {
			gi.inactive[i] = false
		}
	}
	gi.sizeGrid(nil)
	cells := gi.cols * gi.rows
	if cap(gi.buckets) < cells {
		old := gi.buckets
		gi.buckets = make([][]int32, cells)
		copy(gi.buckets, old) // keep the old inner buckets' capacity
	} else {
		gi.buckets = gi.buckets[:cells]
	}
	for c := range gi.buckets {
		gi.buckets[c] = gi.buckets[c][:0]
	}
	for i, p := range gi.pts {
		c := gi.cellOf(p)
		gi.cell[i] = c
		gi.buckets[c] = append(gi.buckets[c], int32(i))
	}
	gi.g.resetTo(n)
	if r > 0 {
		for i := range gi.pts {
			gi.g.adj[i] = gi.collectNeighbors(i, gi.g.adj[i])
		}
	}
	return gi.g
}

// diffSorted computes newList minus oldList (added) and oldList minus
// newList (removed) for sorted int slices, into reused scratch.
func diffSorted(oldList, newList, added, removed []int) (a, r []int) {
	added, removed = added[:0], removed[:0]
	i, j := 0, 0
	for i < len(oldList) && j < len(newList) {
		switch {
		case oldList[i] == newList[j]:
			i++
			j++
		case oldList[i] < newList[j]:
			removed = append(removed, oldList[i])
			i++
		default:
			added = append(added, newList[j])
			j++
		}
	}
	removed = append(removed, oldList[i:]...)
	added = append(added, newList[j:]...)
	return added, removed
}
