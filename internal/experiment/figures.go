package experiment

import (
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/paperex"
	"selfstab/internal/rng"
	"selfstab/internal/viz"
)

// FigureResult is a rendered figure plus the summary line the paper's
// caption states.
type FigureResult struct {
	SVG     string
	ASCII   string
	Caption string
}

// FigureGrid regenerates Figures 2 and 3: the 32x32 adversarial grid at
// R = 0.05, clustered without the DAG (Figure 2: one giant cluster whose
// diameter is the network's) or with it (Figure 3: many small clusters).
func FigureGrid(useDag bool, seed int64, r float64) (*FigureResult, error) {
	if r <= 0 || r > 1 {
		return nil, fmt.Errorf("figure: invalid range %v", r)
	}
	src := rng.New(seed)
	inst := deployGrid(1000, r, src)
	a, err := clusterOnce(inst, useDag, src)
	if err != nil {
		return nil, err
	}
	svg, err := viz.SVG(inst.g, inst.dep.Points, a, 800)
	if err != nil {
		return nil, err
	}
	txt, err := viz.ASCII(inst.g, inst.dep.Points, a, 32, 64)
	if err != nil {
		return nil, err
	}
	s := a.ComputeStats(inst.g)
	caption := fmt.Sprintf(
		"grid %d nodes, R=%.2f, DAG=%v: %d clusters, mean head eccentricity %.1f, max tree length %d",
		inst.g.N(), r, useDag, s.NumClusters, s.MeanHeadEccentricity, s.MaxTreeLength)
	return &FigureResult{SVG: svg, ASCII: txt, Caption: caption}, nil
}

// Figure1 renders the paper's worked example with its two clusters.
func Figure1() (*FigureResult, error) {
	g := paperex.Graph()
	a, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: paperex.IDs(),
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		return nil, err
	}
	pts := paperex.Layout()
	svg, err := viz.SVG(g, pts, a, 400)
	if err != nil {
		return nil, err
	}
	txt, err := viz.ASCII(g, pts, a, 12, 24)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		SVG:     svg,
		ASCII:   txt,
		Caption: "Figure 1 example: two clusters around heads h and j",
	}, nil
}
