package experiment

import (
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/geom"
	"selfstab/internal/metric"
	"selfstab/internal/mobility"
	"selfstab/internal/rng"
	"selfstab/internal/stats"
	"selfstab/internal/topology"
)

// MobilityOptions configures the Section 5 mobility study.
type MobilityOptions struct {
	// Runs averages over independent deployments/trajectories.
	Runs int
	// Seed is the master seed.
	Seed int64
	// Intensity is the deployment intensity λ.
	Intensity float64
	// Range is the transmission range.
	Range float64
	// DurationSec is the simulated time (the paper uses 15 minutes).
	DurationSec float64
	// SampleEverySec is the sampling period (the paper uses 2 s).
	SampleEverySec float64
	// SpeedBands lists the (min, max) speed bands in m/s; the paper uses
	// 0-1.6 (pedestrians) and 0-10 (cars).
	SpeedBands [][2]float64
}

// MobilityDefaults mirrors the paper's setup with a shorter duration and
// fewer runs; the CLI can restore the full 15-minute, many-run protocol.
func MobilityDefaults() MobilityOptions {
	return MobilityOptions{
		Runs:           5,
		Seed:           1,
		Intensity:      600,
		Range:          0.1,
		DurationSec:    180,
		SampleEverySec: 2,
		SpeedBands:     [][2]float64{{0, 1.6}, {0, 10}},
	}
}

func (o *MobilityOptions) validate() error {
	if o.Runs < 1 {
		return fmt.Errorf("mobility experiment: runs must be >= 1")
	}
	if o.Intensity <= 0 || o.Range <= 0 || o.Range > 1 {
		return fmt.Errorf("mobility experiment: bad intensity/range %v/%v", o.Intensity, o.Range)
	}
	if o.DurationSec <= 0 || o.SampleEverySec <= 0 || o.SampleEverySec > o.DurationSec {
		return fmt.Errorf("mobility experiment: bad duration/sample %v/%v", o.DurationSec, o.SampleEverySec)
	}
	if len(o.SpeedBands) == 0 {
		return fmt.Errorf("mobility experiment: no speed bands")
	}
	return nil
}

// MobilityVariant identifies a protocol variant in the comparison.
type MobilityVariant struct {
	Name   string
	Order  cluster.Order
	Fusion bool
}

// MobilityResult holds, per speed band and variant, the mean percentage of
// cluster-heads still heads at the next 2-second sample.
type MobilityResult struct {
	Bands    [][2]float64
	Variants []MobilityVariant
	// Retention[band][variant] is the mean retention percentage.
	Retention [][]float64
}

// Mobility runs the paper's head-stability study: nodes move randomly at
// random speeds; every sample period the clustering is recomputed (seeded
// with the previous configuration) and we record which heads survived.
// The Section 4.3 rules (sticky order + fusion) are compared against the
// plain algorithm; the paper reports ~82% vs ~78% at pedestrian speeds and
// ~31% vs ~25% at vehicle speeds.
func Mobility(opts MobilityOptions) (*MobilityResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	variants := []MobilityVariant{
		{Name: "improved (sticky+fusion)", Order: cluster.OrderSticky, Fusion: true},
		{Name: "basic", Order: cluster.OrderBasic, Fusion: false},
	}
	master := rng.New(opts.Seed)
	res := &MobilityResult{Bands: opts.SpeedBands, Variants: variants}
	for _, band := range opts.SpeedBands {
		retention := make([]stats.Welford, len(variants))
		for run := 0; run < opts.Runs; run++ {
			src := master.SplitN(fmt.Sprintf("mob-%v-%v", band[0], band[1]), run)
			trace, ids, err := recordTrace(band, opts, src)
			if err != nil {
				return nil, err
			}
			for vi, v := range variants {
				w, err := replayTrace(trace, ids, v)
				if err != nil {
					return nil, fmt.Errorf("mobility %s: %w", v.Name, err)
				}
				retention[vi].Merge(w)
			}
		}
		row := make([]float64, len(variants))
		for vi := range variants {
			row[vi] = retention[vi].Mean()
		}
		res.Retention = append(res.Retention, row)
	}
	return res, nil
}

// sample is one precomputed snapshot of a mobility trace: the topology and
// the density values at a sampling instant. Precomputing the trace lets
// every protocol variant replay the exact same motion, which is what makes
// the with/without-improvements comparison paired (and fast: topology and
// densities are variant-independent).
type sample struct {
	g      *topology.Graph
	values []float64
}

// recordTrace deploys one network, walks it for the configured duration and
// captures a snapshot every sampling period (index 0 is the initial state).
func recordTrace(band [2]float64, opts MobilityOptions, src *rng.Source) ([]sample, []int64, error) {
	inst := deployRandom(opts.Intensity, opts.Range, src)
	walker, err := mobility.NewRandomWalk(
		inst.dep.Points, geom.UnitSquare(),
		mobility.SpeedToUnits(band[0]), mobility.SpeedToUnits(band[1]),
		30, src.Split("walk"))
	if err != nil {
		return nil, nil, err
	}
	samples := int(opts.DurationSec / opts.SampleEverySec)
	trace := make([]sample, 0, samples+1)
	// The grid index persists across samples: each mobility step only
	// repairs the edges of nodes that moved instead of rebuilding the
	// unit-disk graph. Samples retain a frozen Clone because Update
	// mutates the index's graph in place.
	idx := topology.NewGridIndexInRegion(walker.Positions(), opts.Range, geom.UnitSquare())
	snap := func() error {
		if _, err := idx.Update(walker.Positions()); err != nil {
			return err
		}
		g := idx.Graph().Clone()
		trace = append(trace, sample{g: g, values: metric.Density{}.Values(g)})
		return nil
	}
	if err := snap(); err != nil {
		return nil, nil, err
	}
	for s := 0; s < samples; s++ {
		walker.Step(opts.SampleEverySec)
		if err := snap(); err != nil {
			return nil, nil, err
		}
	}
	return trace, inst.ids, nil
}

// replayTrace runs one protocol variant over a recorded trace and
// accumulates per-sample head retention percentages.
func replayTrace(trace []sample, ids []int64, v MobilityVariant) (stats.Welford, error) {
	var ret stats.Welford
	a, err := cluster.Compute(trace[0].g, cluster.Config{
		Values: trace[0].values,
		TieIDs: ids,
		Order:  v.Order,
		Fusion: v.Fusion,
	})
	if err != nil {
		return ret, err
	}
	for _, s := range trace[1:] {
		next, err := cluster.Compute(s.g, cluster.Config{
			Values:   s.values,
			TieIDs:   ids,
			Order:    v.Order,
			Fusion:   v.Fusion,
			PrevHead: a.Head,
		})
		if err != nil {
			return ret, err
		}
		prevHeads := a.Heads()
		if len(prevHeads) > 0 {
			kept := 0
			for _, h := range prevHeads {
				if next.Head[h] == h {
					kept++
				}
			}
			ret.Add(100 * float64(kept) / float64(len(prevHeads)))
		}
		a = next
	}
	return ret, nil
}

// Render formats the result like the paper's prose summary.
func (r *MobilityResult) Render() string {
	header := []string{"speed band (m/s)"}
	for _, v := range r.Variants {
		header = append(header, v.Name)
	}
	t := stats.NewTable("Mobility: % cluster-heads re-elected at each 2s sample", header...)
	for bi, band := range r.Bands {
		cells := []string{fmt.Sprintf("%.1f-%.1f", band[0], band[1])}
		for vi := range r.Variants {
			cells = append(cells, fmt.Sprintf("%.1f%%", r.Retention[bi][vi]))
		}
		t.AddRow(cells...)
	}
	return t.String()
}
