package experiment

import (
	"fmt"

	"selfstab/internal/dag"
	"selfstab/internal/metric"
	"selfstab/internal/paperex"
	"selfstab/internal/rng"
	"selfstab/internal/stats"
)

// Table1Result is the illustrative example (Table 1 + Figure 1): per-node
// neighbor counts, link counts, densities and the final clustering.
type Table1Result struct {
	Names     []string
	Neighbors []int
	Links     []int
	Density   []float64
	Parent    []string
	Head      []string
}

// Table1 recomputes the paper's worked example.
func Table1() (*Table1Result, error) {
	g := paperex.Graph()
	a, err := clusterOnce(instance{g: g, ids: paperex.IDs()}, false, nil)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{}
	for u := 0; u < g.N(); u++ {
		res.Names = append(res.Names, paperex.Names[u])
		res.Neighbors = append(res.Neighbors, g.Degree(u))
		res.Links = append(res.Links, g.ClosedNeighborhoodLinks(u))
		res.Density = append(res.Density, (metric.Density{}).ValueOf(g, u))
		res.Parent = append(res.Parent, paperex.Names[a.Parent[u]])
		res.Head = append(res.Head, paperex.Names[a.Head[u]])
	}
	return res, nil
}

// Render formats the result like the paper's Table 1 (plus the derived
// parent/head rows of the worked narrative).
func (r *Table1Result) Render() string {
	header := append([]string{"Nodes"}, r.Names...)
	t := stats.NewTable("Table 1: illustrative example (Figure 1 topology)", header...)
	row := func(label string, cell func(i int) string) {
		cells := make([]string, 0, len(r.Names)+1)
		cells = append(cells, label)
		for i := range r.Names {
			cells = append(cells, cell(i))
		}
		t.AddRow(cells...)
	}
	row("# Neighbors", func(i int) string { return fmt.Sprintf("%d", r.Neighbors[i]) })
	row("# Links", func(i int) string { return fmt.Sprintf("%d", r.Links[i]) })
	row("1-density", func(i int) string { return trimFloat(r.Density[i]) })
	row("F(p)", func(i int) string { return r.Parent[i] })
	row("H(p)", func(i int) string { return r.Head[i] })
	return t.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Table3Result holds the mean number of steps to build the DAG per
// transmission range, on the grid and on random geometry (paper Table 3).
type Table3Result struct {
	Ranges      []float64
	GridSteps   []float64
	RandomSteps []float64
}

// Table3 measures DAG construction cost: the paper reports ~2 steps across
// the board, i.e. building the DAG is cheap.
func Table3(opts Options) (*Table3Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	master := rng.New(opts.Seed)
	res := &Table3Result{Ranges: opts.Ranges}
	for _, r := range opts.Ranges {
		var grid, random stats.Welford
		for run := 0; run < opts.Runs; run++ {
			src := master.SplitN(fmt.Sprintf("t3-%v", r), run)

			gi := deployGrid(opts.Intensity, r, src)
			gres, err := dag.Build(gi.g, gi.ids, gammaFor(gi.g), 10_000, src)
			if err != nil {
				return nil, fmt.Errorf("table3 grid r=%v: %w", r, err)
			}
			grid.Add(float64(gres.Steps))

			ri := deployRandom(opts.Intensity, r, src)
			rres, err := dag.Build(ri.g, ri.ids, gammaFor(ri.g), 10_000, src)
			if err != nil {
				return nil, fmt.Errorf("table3 random r=%v: %w", r, err)
			}
			random.Add(float64(rres.Steps))
		}
		res.GridSteps = append(res.GridSteps, grid.Mean())
		res.RandomSteps = append(res.RandomSteps, random.Mean())
	}
	return res, nil
}

// Render formats the result like the paper's Table 3.
func (r *Table3Result) Render() string {
	header := []string{"R"}
	for _, rr := range r.Ranges {
		header = append(header, fmt.Sprintf("%.2f", rr))
	}
	t := stats.NewTable("Table 3: mean steps to build the DAG (lambda=1000)", header...)
	grid := []string{"Grid"}
	random := []string{"Random geometry"}
	for i := range r.Ranges {
		grid = append(grid, fmt.Sprintf("%.2f", r.GridSteps[i]))
		random = append(random, fmt.Sprintf("%.2f", r.RandomSteps[i]))
	}
	t.AddRow(grid...)
	t.AddRow(random...)
	return t.String()
}

// ClusterRow is one (deployment, DAG on/off) cell of Tables 4 and 5.
type ClusterRow struct {
	Clusters     float64 // mean number of clusters
	Eccentricity float64 // mean cluster-head eccentricity e(H(u)/C)
	TreeLength   float64 // mean clusterization-tree length
	Rounds       float64 // mean synchronous rounds to the fixpoint
}

// TableClustersResult holds per-range with/without-DAG cluster features
// (the shape of the paper's Tables 4 and 5).
type TableClustersResult struct {
	Title   string
	Ranges  []float64
	WithDag []ClusterRow
	NoDag   []ClusterRow
}

// Table4 measures cluster features on the random geometric deployment
// (paper Table 4): with well-spread identifiers the DAG changes little.
func Table4(opts Options) (*TableClustersResult, error) {
	return tableClusters(opts, "Table 4: clusters features on a random geometric graph", deployRandom)
}

// Table5 measures cluster features on the adversarial grid (paper Table 5):
// without the DAG all nodes collapse into one network-diameter cluster;
// the DAG restores many small clusters and constant-time stabilization.
func Table5(opts Options) (*TableClustersResult, error) {
	return tableClusters(opts, "Table 5: clusters characteristics on a grid (row-major ids)", deployGrid)
}

func tableClusters(opts Options, title string, deployer func(float64, float64, *rng.Source) instance) (*TableClustersResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	master := rng.New(opts.Seed)
	res := &TableClustersResult{Title: title, Ranges: opts.Ranges}
	for _, r := range opts.Ranges {
		var acc [2][4]stats.Welford // [dag][clusters, ecc, tree, rounds]
		for run := 0; run < opts.Runs; run++ {
			src := master.SplitN(fmt.Sprintf("tc-%v", r), run)
			inst := deployer(opts.Intensity, r, src)
			for di, useDag := range []bool{true, false} {
				a, err := clusterOnce(inst, useDag, src)
				if err != nil {
					return nil, fmt.Errorf("%s r=%v dag=%v: %w", title, r, useDag, err)
				}
				s := a.ComputeStats(inst.g)
				acc[di][0].Add(float64(s.NumClusters))
				acc[di][1].Add(s.MeanHeadEccentricity)
				acc[di][2].Add(s.MeanTreeLength)
				acc[di][3].Add(float64(a.Rounds))
			}
		}
		res.WithDag = append(res.WithDag, ClusterRow{
			Clusters:     acc[0][0].Mean(),
			Eccentricity: acc[0][1].Mean(),
			TreeLength:   acc[0][2].Mean(),
			Rounds:       acc[0][3].Mean(),
		})
		res.NoDag = append(res.NoDag, ClusterRow{
			Clusters:     acc[1][0].Mean(),
			Eccentricity: acc[1][1].Mean(),
			TreeLength:   acc[1][2].Mean(),
			Rounds:       acc[1][3].Mean(),
		})
	}
	return res, nil
}

// Render formats the result like the paper's Tables 4/5: one column pair
// (with/without DAG) per range.
func (r *TableClustersResult) Render() string {
	header := []string{""}
	for _, rr := range r.Ranges {
		header = append(header,
			fmt.Sprintf("R=%.2f DAG", rr),
			fmt.Sprintf("R=%.2f noDAG", rr))
	}
	t := stats.NewTable(r.Title, header...)
	row := func(label string, pick func(ClusterRow) float64) {
		cells := []string{label}
		for i := range r.Ranges {
			cells = append(cells,
				fmt.Sprintf("%.1f", pick(r.WithDag[i])),
				fmt.Sprintf("%.1f", pick(r.NoDag[i])))
		}
		t.AddRow(cells...)
	}
	row("# clusters", func(c ClusterRow) float64 { return c.Clusters })
	row("e(H(u)/C(u))", func(c ClusterRow) float64 { return c.Eccentricity })
	row("avg tree length", func(c ClusterRow) float64 { return c.TreeLength })
	row("fixpoint rounds", func(c ClusterRow) float64 { return c.Rounds })
	return t.String()
}
