// Package experiment contains one driver per table and figure of the
// paper's evaluation (Section 5), plus the ablations DESIGN.md calls out.
// Each driver is deterministic given its options and returns a structured
// result that renders to a plain-text table shaped like the paper's.
// The CLI (cmd/selfstab-sim), the benchmark suite (bench_test.go) and
// EXPERIMENTS.md all run through these drivers.
package experiment

import (
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/dag"
	"selfstab/internal/deploy"
	"selfstab/internal/geom"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// Options are the shared experiment knobs. The zero value is not valid;
// start from Defaults.
type Options struct {
	// Runs is the number of independent repetitions averaged per cell
	// (the paper uses 1000).
	Runs int
	// Seed is the master seed; every run derives its own stream.
	Seed int64
	// Intensity is the Poisson deployment intensity λ (nodes per unit
	// area; the paper's tables use 1000).
	Intensity float64
	// Ranges is the transmission-range sweep.
	Ranges []float64
}

// Defaults mirrors the paper's setup with a tractable number of runs;
// pass Runs: 1000 to replicate the paper's averaging exactly.
func Defaults() Options {
	return Options{
		Runs:      30,
		Seed:      1,
		Intensity: 1000,
		Ranges:    []float64{0.05, 0.08, 0.1},
	}
}

func (o *Options) validate() error {
	if o.Runs < 1 {
		return fmt.Errorf("experiment: runs must be >= 1, got %d", o.Runs)
	}
	if o.Intensity <= 0 {
		return fmt.Errorf("experiment: intensity must be positive, got %v", o.Intensity)
	}
	if len(o.Ranges) == 0 {
		return fmt.Errorf("experiment: empty range sweep")
	}
	for _, r := range o.Ranges {
		if r <= 0 || r > 1 {
			return fmt.Errorf("experiment: invalid range %v", r)
		}
	}
	return nil
}

// instance is one deployed topology with identifiers.
type instance struct {
	dep *deploy.Deployment
	g   *topology.Graph
	ids []int64
}

// deployRandom draws a Poisson deployment with random identifiers.
func deployRandom(intensity, r float64, src *rng.Source) instance {
	dep := deploy.Poisson(intensity, geom.UnitSquare(), deploy.IDRandom, src)
	// An empty Poisson draw is theoretically possible at tiny intensities;
	// redraw until non-empty so downstream code has nodes to work with.
	for dep.N() == 0 {
		dep = deploy.Poisson(intensity, geom.UnitSquare(), deploy.IDRandom, src)
	}
	return instance{dep: dep, g: topology.FromPoints(dep.Points, r), ids: dep.IDs}
}

// deployGrid builds the adversarial grid: ~intensity nodes, row-major
// identifiers (increasing left to right, bottom to top).
func deployGrid(intensity, r float64, src *rng.Source) instance {
	dep := deploy.GridForIntensity(intensity, geom.UnitSquare(), deploy.IDRowMajor, src)
	return instance{dep: dep, g: topology.FromPoints(dep.Points, r), ids: dep.IDs}
}

// gammaFor returns the paper's simulation name-space: |γ| = δ² (with a
// floor of δ+1 so a fresh color always exists).
func gammaFor(g *topology.Graph) int64 {
	d := g.MaxDegree()
	gamma := int64(d) * int64(d)
	if gamma <= int64(d) {
		gamma = int64(d) + 1
	}
	return gamma
}

// tieIDs returns the tie-break identifiers for an instance: DAG colors when
// useDag is set (built with the paper's γ = δ²), else the application ids.
// It also reports the number of steps the DAG construction used (0 when
// disabled).
func tieIDs(inst instance, useDag bool, src *rng.Source) ([]int64, int, error) {
	if !useDag {
		return inst.ids, 0, nil
	}
	res, err := dag.Build(inst.g, inst.ids, gammaFor(inst.g), 10_000, src)
	if err != nil {
		return nil, 0, err
	}
	return res.Colors, res.Steps, nil
}

// clusterOnce computes the density-driven clustering for an instance.
func clusterOnce(inst instance, useDag bool, src *rng.Source) (*cluster.Assignment, error) {
	ties, _, err := tieIDs(inst, useDag, src)
	if err != nil {
		return nil, err
	}
	return cluster.Compute(inst.g, cluster.Config{
		Values: metric.Density{}.Values(inst.g),
		TieIDs: ties,
		AppIDs: inst.ids,
		Order:  cluster.OrderBasic,
	})
}
