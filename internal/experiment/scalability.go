package experiment

import (
	"fmt"
	"math"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
	"selfstab/internal/routing"
	"selfstab/internal/stats"
)

// ScalabilityResult quantifies the paper's motivation (Sections 1-2): flat
// proactive routing keeps O(n) state per node, while routing over the
// density clusters keeps per-cluster state, at a bounded path-stretch
// cost.
type ScalabilityResult struct {
	Intensities []float64
	FlatState   []float64 // mean routing entries per node, flat
	HierState   []float64 // mean routing entries per node, hierarchical
	Stretch     []float64 // mean hop stretch of hierarchical routes
}

// Scalability grows the network while holding the local density constant
// (λR² fixed — the paper's "network gets larger", not "denser"): cluster
// sizes then stay constant, cluster count grows with n, so flat state per
// node grows linearly while hierarchical state stays near-flat. Sweeping
// intensity at fixed range would instead grow cluster sizes (the paper
// notes head count is intensity-invariant), which is not the scalability
// question.
func Scalability(opts Options) (*ScalabilityResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	intensities := []float64{opts.Intensity / 4, opts.Intensity / 2, opts.Intensity}
	baseR := opts.Ranges[0]
	master := rng.New(opts.Seed)
	res := &ScalabilityResult{Intensities: intensities}
	for _, lambda := range intensities {
		// Constant λr²: smaller networks get proportionally longer reach.
		r := baseR * math.Sqrt(opts.Intensity/lambda)
		if r > 1 {
			r = 1
		}
		var flat, hier, stretch stats.Welford
		for run := 0; run < opts.Runs; run++ {
			src := master.SplitN(fmt.Sprintf("scal-%v", lambda), run)
			inst := deployRandom(lambda, r, src)
			a, err := cluster.Compute(inst.g, cluster.Config{
				Values: metric.Density{}.Values(inst.g),
				TieIDs: inst.ids,
				Order:  cluster.OrderBasic,
			})
			if err != nil {
				return nil, err
			}
			ft := routing.BuildFlat(inst.g)
			ht, err := routing.BuildHierarchical(inst.g, a)
			if err != nil {
				return nil, err
			}
			flat.Add(ft.StatePerNode())
			hier.Add(ht.StatePerNode())
			if s, ok := sampleStretch(inst, ft, ht); ok {
				stretch.Add(s)
			}
		}
		res.FlatState = append(res.FlatState, flat.Mean())
		res.HierState = append(res.HierState, hier.Mean())
		res.Stretch = append(res.Stretch, stretch.Mean())
	}
	return res, nil
}

// sampleStretch averages hop stretch over a systematic sample of pairs.
func sampleStretch(inst instance, ft *routing.Flat, ht *routing.Hierarchical) (float64, bool) {
	n := inst.g.N()
	var hierHops, flatHops int
	step := n/20 + 1
	for src := 0; src < n; src += step {
		for dst := step / 2; dst < n; dst += step {
			if src == dst {
				continue
			}
			fp, err := ft.Route(src, dst)
			if err != nil {
				continue
			}
			hp, err := ht.Route(src, dst)
			if err != nil {
				continue
			}
			flatHops += len(fp) - 1
			hierHops += len(hp) - 1
		}
	}
	if flatHops == 0 {
		return 0, false
	}
	return float64(hierHops) / float64(flatHops), true
}

// Render formats the scalability comparison.
func (r *ScalabilityResult) Render() string {
	t := stats.NewTable("Motivation: routing state per node, flat vs hierarchical",
		"lambda", "flat entries/node", "hierarchical entries/node", "path stretch")
	for i := range r.Intensities {
		t.AddRow(fmt.Sprintf("%.0f", r.Intensities[i]),
			fmt.Sprintf("%.0f", r.FlatState[i]),
			fmt.Sprintf("%.1f", r.HierState[i]),
			fmt.Sprintf("%.2fx", r.Stretch[i]))
	}
	return t.String()
}
