package experiment

import (
	"fmt"
	"math"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/runtime"
	"selfstab/internal/stats"
	"selfstab/internal/topology"
)

// Table2Result measures the paper's Table 2 at protocol level: after each
// Δ(τ) step, the fraction of nodes whose neighborhood table, density and
// father are already exact.
type Table2Result struct {
	Steps          []int
	NeighborsOK    []float64 // % of nodes with an exact 1-neighbor view
	DensityOK      []float64 // % with the exact Definition 1 density
	FatherOK       []float64 // % with the oracle parent
	HeadOK         []float64 // % with the oracle cluster-head
	AllHeadsAtStep int       // first step at which every head is correct
}

// Table2 runs the knowledge-schedule measurement on a random deployment
// over a perfect medium, averaged over runs.
func Table2(opts Options) (*Table2Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	const horizon = 12
	master := rng.New(opts.Seed)
	acc := make([][4]stats.Welford, horizon)
	allHeads := stats.Welford{}
	for run := 0; run < opts.Runs; run++ {
		src := master.SplitN("t2", run)
		inst := deployRandom(opts.Intensity, opts.Ranges[0], src)
		want, err := cluster.Compute(inst.g, cluster.Config{
			Values: metric.Density{}.Values(inst.g),
			TieIDs: inst.ids,
			Order:  cluster.OrderBasic,
		})
		if err != nil {
			return nil, err
		}
		eng, err := runtime.New(inst.g, inst.ids, runtime.Protocol{Order: cluster.OrderBasic},
			radio.Perfect{}, src.Split("engine"))
		if err != nil {
			return nil, err
		}
		dens := metric.Density{}.Values(inst.g)
		headsDone := 0
		for step := 0; step < horizon; step++ {
			if err := eng.Step(); err != nil {
				return nil, err
			}
			nOK, dOK, fOK, hOK := knowledge(inst.g, inst.ids, eng, dens, want)
			acc[step][0].Add(nOK)
			acc[step][1].Add(dOK)
			acc[step][2].Add(fOK)
			acc[step][3].Add(hOK)
			if headsDone == 0 && hOK >= 100 {
				headsDone = step + 1
			}
		}
		if headsDone == 0 {
			headsDone = horizon
		}
		allHeads.Add(float64(headsDone))
	}
	res := &Table2Result{AllHeadsAtStep: int(math.Round(allHeads.Mean()))}
	for step := 0; step < horizon; step++ {
		res.Steps = append(res.Steps, step+1)
		res.NeighborsOK = append(res.NeighborsOK, acc[step][0].Mean())
		res.DensityOK = append(res.DensityOK, acc[step][1].Mean())
		res.FatherOK = append(res.FatherOK, acc[step][2].Mean())
		res.HeadOK = append(res.HeadOK, acc[step][3].Mean())
	}
	return res, nil
}

// knowledge returns the percentage of nodes whose neighbor view, density,
// father and head are exact.
func knowledge(g *topology.Graph, ids []int64, eng *runtime.Engine, dens []float64, want *cluster.Assignment) (nOK, dOK, fOK, hOK float64) {
	n := g.N()
	var cn, cd, cf, ch int
	got := eng.Assignment()
	for u := 0; u < n; u++ {
		node := eng.Node(u)
		if math.Abs(node.Density()-dens[u]) < 1e-12 {
			cd++
		}
		if got.Parent[u] == want.Parent[u] {
			cf++
		}
		if got.Head[u] == want.Head[u] {
			ch++
		}
	}
	// Neighbor views: every node heard every neighbor (perfect medium
	// guarantees this after step 1; we verify rather than assume).
	for u := 0; u < n; u++ {
		nbrs, err := eng.NeighborView(u)
		if err != nil {
			continue
		}
		if sameIDSet(nbrs, g.Neighbors(u), ids) {
			cn++
		}
	}
	pct := func(c int) float64 { return 100 * float64(c) / float64(n) }
	return pct(cn), pct(cd), pct(cf), pct(ch)
}

func sameIDSet(view []int64, nbrs []int, ids []int64) bool {
	if len(view) != len(nbrs) {
		return false
	}
	set := make(map[int64]bool, len(view))
	for _, id := range view {
		set[id] = true
	}
	for _, v := range nbrs {
		if !set[ids[v]] {
			return false
		}
	}
	return true
}

// Render formats the knowledge schedule like the paper's Table 2.
func (r *Table2Result) Render() string {
	t := stats.NewTable("Table 2: % of nodes with exact knowledge after each step",
		"step", "neighbors", "density", "father", "cluster-head")
	for i, s := range r.Steps {
		t.AddRow(fmt.Sprintf("%d", s),
			fmt.Sprintf("%.0f%%", r.NeighborsOK[i]),
			fmt.Sprintf("%.0f%%", r.DensityOK[i]),
			fmt.Sprintf("%.0f%%", r.FatherOK[i]),
			fmt.Sprintf("%.0f%%", r.HeadOK[i]))
		if r.HeadOK[i] >= 100 && i >= 3 {
			break // the schedule has fully completed
		}
	}
	return t.String()
}
