package experiment

import (
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/runtime"
	"selfstab/internal/stats"
)

// StabilizationResult holds, per scenario, the mean number of Δ(τ) steps
// the full message-passing protocol needed to stabilize from a cold start
// and after total state corruption. It is the protocol-level counterpart
// of Table 5's stabilization claim: with the DAG the step count is a small
// constant; without it, on the adversarial grid, it grows with the network
// diameter.
type StabilizationResult struct {
	Scenarios    []string
	ColdSteps    []float64
	RecoverSteps []float64
}

// Stabilization measures distributed stabilization times over a perfect
// medium (τ = 1, so steps are exactly the paper's Δ(τ) units).
func Stabilization(opts Options) (*StabilizationResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r := opts.Ranges[0]
	type scenario struct {
		name   string
		grid   bool
		useDag bool
	}
	scenarios := []scenario{
		{"grid + DAG", true, true},
		{"grid, no DAG", true, false},
		{"random + DAG", false, true},
		{"random, no DAG", false, false},
	}
	master := rng.New(opts.Seed)
	res := &StabilizationResult{}
	for _, sc := range scenarios {
		var cold, recover stats.Welford
		for run := 0; run < opts.Runs; run++ {
			src := master.SplitN("stab-"+sc.name, run)
			var inst instance
			if sc.grid {
				inst = deployGrid(opts.Intensity, r, src)
			} else {
				inst = deployRandom(opts.Intensity, r, src)
			}
			proto := runtime.Protocol{Order: cluster.OrderBasic}
			if sc.useDag {
				proto.UseDag = true
				proto.Gamma = gammaFor(inst.g)
			}
			eng, err := runtime.New(inst.g, inst.ids, proto, radio.Perfect{}, src.Split("engine"))
			if err != nil {
				return nil, fmt.Errorf("stabilization %s: %w", sc.name, err)
			}
			maxSteps := 20*inst.g.N() + 100
			at, err := eng.RunUntilStable(maxSteps, 5)
			if err != nil {
				return nil, fmt.Errorf("stabilization %s cold: %w", sc.name, err)
			}
			cold.Add(float64(at))

			eng.Corrupt(1.0, runtime.CorruptAll, src.Split("faults"))
			at, err = eng.RunUntilStable(maxSteps, 5)
			if err != nil {
				return nil, fmt.Errorf("stabilization %s recover: %w", sc.name, err)
			}
			recover.Add(float64(at))
		}
		res.Scenarios = append(res.Scenarios, sc.name)
		res.ColdSteps = append(res.ColdSteps, cold.Mean())
		res.RecoverSteps = append(res.RecoverSteps, recover.Mean())
	}
	return res, nil
}

// Render formats the stabilization experiment.
func (r *StabilizationResult) Render() string {
	t := stats.NewTable("Stabilization: steps to converge (perfect medium)",
		"scenario", "cold start", "after corruption")
	for i := range r.Scenarios {
		t.AddRow(r.Scenarios[i],
			fmt.Sprintf("%.1f", r.ColdSteps[i]),
			fmt.Sprintf("%.1f", r.RecoverSteps[i]))
	}
	return t.String()
}
