package experiment

import (
	"strings"
	"testing"
)

// TestTable2Schedule asserts the paper's Table 2 at experiment level: on a
// perfect medium, neighbors are exact after step 1, densities after step
// 2, fathers after step 3, and heads shortly after (tree depth).
func TestTable2Schedule(t *testing.T) {
	opts := Options{Runs: 3, Seed: 2, Intensity: 250, Ranges: []float64{0.1}}
	res, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NeighborsOK[0] < 100 {
		t.Errorf("step 1: neighbors %.0f%%, want 100%%", res.NeighborsOK[0])
	}
	if res.DensityOK[0] >= 100 {
		t.Errorf("step 1: density already exact — schedule too fast to be honest")
	}
	if res.DensityOK[1] < 100 {
		t.Errorf("step 2: density %.0f%%, want 100%%", res.DensityOK[1])
	}
	if res.FatherOK[2] < 100 {
		t.Errorf("step 3: father %.0f%%, want 100%%", res.FatherOK[2])
	}
	if res.HeadOK[2] >= 100 {
		t.Logf("note: heads complete at step 3 (very shallow trees this run)")
	}
	if res.AllHeadsAtStep < 3 || res.AllHeadsAtStep > 11 {
		t.Errorf("heads complete at step %d, expected a small tree-depth bound", res.AllHeadsAtStep)
	}
	out := res.Render()
	if !strings.Contains(out, "father") || !strings.Contains(out, "100%") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable2Validation(t *testing.T) {
	if _, err := Table2(Options{}); err == nil {
		t.Error("invalid options accepted")
	}
}
