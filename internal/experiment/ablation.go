package experiment

import (
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/dag"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
	"selfstab/internal/stats"
)

// GammaAblationResult quantifies the Section 4.1 trade-off: a larger color
// space converges faster but allows a taller DAG (and hence slower
// downstream stabilization).
type GammaAblationResult struct {
	// Labels names the gamma choices (delta, delta^2, delta^6-ish).
	Labels []string
	// BuildSteps is the mean number of steps of Algorithm N1.
	BuildSteps []float64
	// Height is the mean height of the color DAG.
	Height []float64
	// ClusterRounds is the mean number of fixpoint rounds of the cluster
	// layer when ties break on these colors.
	ClusterRounds []float64
}

// AblationGamma sweeps the color-space size on the adversarial grid (where
// ties actually matter).
func AblationGamma(opts Options) (*GammaAblationResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r := opts.Ranges[0]
	master := rng.New(opts.Seed)
	gammas := []struct {
		label string
		of    func(delta int) int64
	}{
		{"delta+1", func(d int) int64 { return int64(d) + 1 }},
		{"delta^2", func(d int) int64 { return maxI64(int64(d)*int64(d), int64(d)+1) }},
		{"delta^3", func(d int) int64 { return maxI64(int64(d)*int64(d)*int64(d), int64(d)+1) }},
	}
	res := &GammaAblationResult{}
	for _, gm := range gammas {
		var steps, height, rounds stats.Welford
		for run := 0; run < opts.Runs; run++ {
			src := master.SplitN("gamma-"+gm.label, run)
			inst := deployGrid(opts.Intensity, r, src)
			gamma := gm.of(inst.g.MaxDegree())
			dres, err := dag.Build(inst.g, inst.ids, gamma, 100_000, src)
			if err != nil {
				return nil, fmt.Errorf("gamma ablation %s: %w", gm.label, err)
			}
			steps.Add(float64(dres.Steps))
			height.Add(float64(dag.Height(inst.g, dag.ColorLess(dres.Colors, inst.ids))))
			a, err := cluster.Compute(inst.g, cluster.Config{
				Values: metric.Density{}.Values(inst.g),
				TieIDs: dres.Colors,
				AppIDs: inst.ids,
				Order:  cluster.OrderBasic,
			})
			if err != nil {
				return nil, err
			}
			rounds.Add(float64(a.Rounds))
		}
		res.Labels = append(res.Labels, gm.label)
		res.BuildSteps = append(res.BuildSteps, steps.Mean())
		res.Height = append(res.Height, height.Mean())
		res.ClusterRounds = append(res.ClusterRounds, rounds.Mean())
	}
	return res, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Render formats the gamma ablation.
func (r *GammaAblationResult) Render() string {
	t := stats.NewTable("Ablation: color-space size |gamma| (adversarial grid)",
		"gamma", "N1 steps", "DAG height", "cluster rounds")
	for i := range r.Labels {
		t.AddRow(r.Labels[i],
			fmt.Sprintf("%.2f", r.BuildSteps[i]),
			fmt.Sprintf("%.1f", r.Height[i]),
			fmt.Sprintf("%.1f", r.ClusterRounds[i]))
	}
	return t.String()
}

// MetricAblationResult compares clustering metrics (density vs degree vs
// lowest-id vs max-min) on cluster count and head stability under mobility
// — the paper's Section 3 "features" claim.
type MetricAblationResult struct {
	Names     []string
	Clusters  []float64 // mean cluster count on a static deployment
	Retention []float64 // mean head retention % under pedestrian mobility
}

// AblationMetrics runs the metric comparison. Max-min d-cluster (d=2) is
// included as the structurally different baseline.
func AblationMetrics(opts Options) (*MetricAblationResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r := opts.Ranges[0]
	master := rng.New(opts.Seed)
	metrics := []metric.Metric{metric.Density{}, metric.Degree{}, metric.Constant{}}
	res := &MetricAblationResult{Names: []string{"density", "degree", "lowest-id", "max-min(d=2)"}}
	counts := make([]stats.Welford, 4)
	keeps := make([]stats.Welford, 4)
	const (
		mobilitySamples = 20
		sampleDt        = 2.0
	)
	for run := 0; run < opts.Runs; run++ {
		src := master.SplitN("metrics", run)
		trace, ids, err := recordTrace([2]float64{0, 1.6},
			MobilityOptions{
				Runs: 1, Seed: opts.Seed, Intensity: opts.Intensity, Range: r,
				DurationSec: mobilitySamples * sampleDt, SampleEverySec: sampleDt,
				SpeedBands: [][2]float64{{0, 1.6}},
			}, src)
		if err != nil {
			return nil, err
		}
		// Metric-driven variants share the clustering machinery.
		for mi, m := range metrics {
			a, err := cluster.Compute(trace[0].g, cluster.Config{
				Values: m.Values(trace[0].g),
				TieIDs: ids,
				Order:  cluster.OrderBasic,
			})
			if err != nil {
				return nil, err
			}
			counts[mi].Add(float64(len(a.Heads())))
			w, err := replayMetricTrace(trace, ids, m)
			if err != nil {
				return nil, err
			}
			keeps[mi].Merge(w)
		}
		// Max-min baseline.
		mm, err := cluster.MaxMin(trace[0].g, ids, 2)
		if err != nil {
			return nil, err
		}
		counts[3].Add(float64(mm.NumClusters()))
		w, err := replayMaxMinTrace(trace, ids)
		if err != nil {
			return nil, err
		}
		keeps[3].Merge(w)
	}
	for i := range res.Names {
		res.Clusters = append(res.Clusters, counts[i].Mean())
		res.Retention = append(res.Retention, keeps[i].Mean())
	}
	return res, nil
}

// replayMetricTrace mirrors replayTrace but recomputes the metric at every
// sample (degree and density are topology-dependent).
func replayMetricTrace(trace []sample, ids []int64, m metric.Metric) (stats.Welford, error) {
	var ret stats.Welford
	a, err := cluster.Compute(trace[0].g, cluster.Config{
		Values: m.Values(trace[0].g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		return ret, err
	}
	for _, s := range trace[1:] {
		next, err := cluster.Compute(s.g, cluster.Config{
			Values:   m.Values(s.g),
			TieIDs:   ids,
			Order:    cluster.OrderBasic,
			PrevHead: a.Head,
		})
		if err != nil {
			return ret, err
		}
		ret.Add(retentionPct(a, next))
		a = next
	}
	return ret, nil
}

func retentionPct(prev, next *cluster.Assignment) float64 {
	heads := prev.Heads()
	if len(heads) == 0 {
		return 100
	}
	kept := 0
	for _, h := range heads {
		if next.Head[h] == h {
			kept++
		}
	}
	return 100 * float64(kept) / float64(len(heads))
}

// replayMaxMinTrace measures head retention for the max-min baseline.
func replayMaxMinTrace(trace []sample, ids []int64) (stats.Welford, error) {
	var ret stats.Welford
	prev, err := cluster.MaxMin(trace[0].g, ids, 2)
	if err != nil {
		return ret, err
	}
	for _, s := range trace[1:] {
		next, err := cluster.MaxMin(s.g, ids, 2)
		if err != nil {
			return ret, err
		}
		heads := 0
		kept := 0
		for u := range prev.Head {
			if prev.IsHead(u) {
				heads++
				if next.IsHead(u) {
					kept++
				}
			}
		}
		if heads > 0 {
			ret.Add(100 * float64(kept) / float64(heads))
		}
		prev = next
	}
	return ret, nil
}

// Render formats the metric ablation.
func (r *MetricAblationResult) Render() string {
	t := stats.NewTable("Ablation: cluster-head selection metrics",
		"metric", "# clusters", "head retention %")
	for i := range r.Names {
		t.AddRow(r.Names[i],
			fmt.Sprintf("%.1f", r.Clusters[i]),
			fmt.Sprintf("%.1f", r.Retention[i]))
	}
	return t.String()
}

// OrderAblationResult compares the ≺ variants on head stability.
type OrderAblationResult struct {
	Names     []string
	Retention []float64
}

// AblationOrders compares basic, sticky, and sticky+fusion under pedestrian
// mobility — isolating how much each Section 4.3 rule contributes.
func AblationOrders(opts Options) (*OrderAblationResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	variants := []MobilityVariant{
		{Name: "basic", Order: cluster.OrderBasic},
		{Name: "sticky", Order: cluster.OrderSticky},
		{Name: "sticky+fusion", Order: cluster.OrderSticky, Fusion: true},
	}
	master := rng.New(opts.Seed)
	keeps := make([]stats.Welford, len(variants))
	for run := 0; run < opts.Runs; run++ {
		src := master.SplitN("orders", run)
		trace, ids, err := recordTrace([2]float64{0, 1.6}, MobilityOptions{
			Runs: 1, Seed: opts.Seed, Intensity: opts.Intensity, Range: opts.Ranges[0],
			DurationSec: 60, SampleEverySec: 2,
			SpeedBands: [][2]float64{{0, 1.6}},
		}, src)
		if err != nil {
			return nil, err
		}
		for vi, v := range variants {
			w, err := replayTrace(trace, ids, v)
			if err != nil {
				return nil, err
			}
			keeps[vi].Merge(w)
		}
	}
	res := &OrderAblationResult{}
	for vi, v := range variants {
		res.Names = append(res.Names, v.Name)
		res.Retention = append(res.Retention, keeps[vi].Mean())
	}
	return res, nil
}

// Render formats the order ablation.
func (r *OrderAblationResult) Render() string {
	t := stats.NewTable("Ablation: ≺ variants under pedestrian mobility",
		"variant", "head retention %")
	for i := range r.Names {
		t.AddRow(r.Names[i], fmt.Sprintf("%.1f", r.Retention[i]))
	}
	return t.String()
}
