package experiment

import (
	"math"
	"strings"
	"testing"
)

// small returns cheap options for unit tests (benches use bigger ones).
func small() Options {
	return Options{Runs: 3, Seed: 7, Intensity: 300, Ranges: []float64{0.08}}
}

func TestOptionsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero runs", func(o *Options) { o.Runs = 0 }},
		{"bad intensity", func(o *Options) { o.Intensity = 0 }},
		{"empty ranges", func(o *Options) { o.Ranges = nil }},
		{"range too big", func(o *Options) { o.Ranges = []float64{1.5} }},
		{"range negative", func(o *Options) { o.Ranges = []float64{-0.1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := Defaults()
			tt.mutate(&o)
			if _, err := Table3(o); err == nil {
				t.Error("invalid options accepted")
			}
		})
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Spot checks against the published row (full checks live in the
	// metric and cluster packages).
	byName := make(map[string]int, len(r.Names))
	for i, n := range r.Names {
		byName[n] = i
	}
	if got := r.Density[byName["b"]]; got != 1.25 {
		t.Errorf("density(b) = %v", got)
	}
	if got := r.Head[byName["c"]]; got != "h" {
		t.Errorf("H(c) = %v", got)
	}
	if got := r.Head[byName["f"]]; got != "j" {
		t.Errorf("H(f) = %v", got)
	}
	out := r.Render()
	if !strings.Contains(out, "1-density") || !strings.Contains(out, "1.25") {
		t.Errorf("render missing expected content:\n%s", out)
	}
}

func TestTable3StepsAreSmallConstant(t *testing.T) {
	res, err := Table3(small())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Ranges {
		if res.GridSteps[i] < 1 || res.GridSteps[i] > 5 {
			t.Errorf("grid steps at R=%v: %v, want ~2", res.Ranges[i], res.GridSteps[i])
		}
		if res.RandomSteps[i] < 1 || res.RandomSteps[i] > 5 {
			t.Errorf("random steps at R=%v: %v, want ~2", res.Ranges[i], res.RandomSteps[i])
		}
	}
	if !strings.Contains(res.Render(), "Grid") {
		t.Error("render missing Grid row")
	}
}

func TestTable4DagChangesLittle(t *testing.T) {
	res, err := Table4(small())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Ranges {
		with, without := res.WithDag[i], res.NoDag[i]
		if with.Clusters <= 0 || without.Clusters <= 0 {
			t.Fatalf("no clusters found")
		}
		// Paper Table 4: on random geometry the DAG barely changes the
		// outcome (61.0 vs 61.4 clusters etc.). Allow 25% slack at our
		// smaller scale.
		rel := math.Abs(with.Clusters-without.Clusters) / without.Clusters
		if rel > 0.25 {
			t.Errorf("R=%v: cluster counts diverge with DAG: %v vs %v",
				res.Ranges[i], with.Clusters, without.Clusters)
		}
	}
}

func TestTable5DagRescuesGrid(t *testing.T) {
	opts := small()
	opts.Intensity = 1000 // the adversarial effect needs the real grid
	opts.Runs = 2
	res, err := Table5(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Ranges {
		with, without := res.WithDag[i], res.NoDag[i]
		// Paper Table 5: without the DAG the grid collapses to ONE cluster.
		if without.Clusters > 2 {
			t.Errorf("R=%v: expected collapse without DAG, got %v clusters",
				res.Ranges[i], without.Clusters)
		}
		// With the DAG, many clusters appear.
		if with.Clusters < 5*without.Clusters {
			t.Errorf("R=%v: DAG should multiply clusters: %v vs %v",
				res.Ranges[i], with.Clusters, without.Clusters)
		}
		// Tree length (stabilization proxy) collapses with the DAG.
		if with.TreeLength >= without.TreeLength {
			t.Errorf("R=%v: DAG should shrink tree length: %v vs %v",
				res.Ranges[i], with.TreeLength, without.TreeLength)
		}
		// The head of the giant cluster is far off-center.
		if without.Eccentricity < 3*with.Eccentricity {
			t.Errorf("R=%v: eccentricity shape off: %v vs %v",
				res.Ranges[i], without.Eccentricity, with.Eccentricity)
		}
	}
}

func TestMobilityImprovementHelps(t *testing.T) {
	opts := MobilityDefaults()
	opts.Runs = 2
	opts.Intensity = 300
	opts.DurationSec = 60
	res, err := Mobility(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retention) != len(opts.SpeedBands) {
		t.Fatalf("got %d bands", len(res.Retention))
	}
	for bi := range res.Bands {
		improved, basic := res.Retention[bi][0], res.Retention[bi][1]
		if improved < basic-3 { // allow small-sample noise but not a reversal
			t.Errorf("band %v: improved %.1f%% worse than basic %.1f%%",
				res.Bands[bi], improved, basic)
		}
		if improved <= 0 || improved > 100 || basic <= 0 || basic > 100 {
			t.Errorf("band %v: retention out of range: %v / %v", res.Bands[bi], improved, basic)
		}
	}
	// Faster movement must hurt stability (pedestrian vs vehicle).
	if res.Retention[0][1] < res.Retention[1][1] {
		t.Errorf("vehicle band should be less stable: %v vs %v",
			res.Retention[0][1], res.Retention[1][1])
	}
	if !strings.Contains(res.Render(), "%") {
		t.Error("render missing percentages")
	}
}

func TestMobilityValidation(t *testing.T) {
	opts := MobilityDefaults()
	opts.SampleEverySec = 0
	if _, err := Mobility(opts); err == nil {
		t.Error("bad sampling accepted")
	}
	opts = MobilityDefaults()
	opts.SpeedBands = nil
	if _, err := Mobility(opts); err == nil {
		t.Error("no bands accepted")
	}
}

func TestAblationGammaTradeoff(t *testing.T) {
	opts := small()
	opts.Intensity = 500
	res, err := AblationGamma(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 3 {
		t.Fatalf("labels: %v", res.Labels)
	}
	// delta+1 must not converge faster than delta^3.
	if res.BuildSteps[0]+0.5 < res.BuildSteps[2] {
		t.Errorf("tiny gamma built faster than huge gamma: %v vs %v",
			res.BuildSteps[0], res.BuildSteps[2])
	}
	if !strings.Contains(res.Render(), "delta^2") {
		t.Error("render missing gamma labels")
	}
}

func TestAblationMetricsRuns(t *testing.T) {
	opts := small()
	opts.Runs = 2
	res, err := AblationMetrics(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 4 || len(res.Clusters) != 4 || len(res.Retention) != 4 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	for i, c := range res.Clusters {
		if c <= 0 {
			t.Errorf("%s produced %v clusters", res.Names[i], c)
		}
	}
	if !strings.Contains(res.Render(), "max-min") {
		t.Error("render missing baseline")
	}
}

func TestAblationOrdersMonotone(t *testing.T) {
	opts := small()
	opts.Runs = 2
	res, err := AblationOrders(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 3 {
		t.Fatalf("names: %v", res.Names)
	}
	for _, v := range res.Retention {
		if v <= 0 || v > 100 {
			t.Errorf("retention out of range: %v", v)
		}
	}
}

func TestStabilizationShape(t *testing.T) {
	opts := Options{Runs: 2, Seed: 3, Intensity: 400, Ranges: []float64{0.06}}
	res, err := Stabilization(opts)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]int, len(res.Scenarios))
	for i, s := range res.Scenarios {
		byName[s] = i
	}
	gridDag := res.ColdSteps[byName["grid + DAG"]]
	gridNo := res.ColdSteps[byName["grid, no DAG"]]
	// The headline claim: the DAG drastically reduces stabilization steps
	// on the adversarial grid.
	if gridDag >= gridNo {
		t.Errorf("grid: DAG %.1f steps not faster than no-DAG %.1f", gridDag, gridNo)
	}
	for i := range res.Scenarios {
		if res.RecoverSteps[i] <= 0 {
			t.Errorf("%s: corruption recovery reported %.1f steps", res.Scenarios[i], res.RecoverSteps[i])
		}
	}
	if !strings.Contains(res.Render(), "cold start") {
		t.Error("render missing columns")
	}
}

func TestFigureGrid(t *testing.T) {
	fig, err := FigureGrid(false, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.SVG, "<svg") {
		t.Error("figure 2 svg malformed")
	}
	if !strings.Contains(fig.Caption, "DAG=false") {
		t.Errorf("caption: %s", fig.Caption)
	}
	fig3, err := FigureGrid(true, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig3.Caption, "DAG=true") {
		t.Errorf("caption: %s", fig3.Caption)
	}
	if _, err := FigureGrid(true, 1, 0); err == nil {
		t.Error("invalid range accepted")
	}
}

func TestFigure1(t *testing.T) {
	fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.SVG, "<svg") || fig.ASCII == "" {
		t.Error("figure 1 rendering incomplete")
	}
	if !strings.Contains(fig.Caption, "two clusters") {
		t.Errorf("caption: %s", fig.Caption)
	}
}
