package experiment

import (
	"strings"
	"testing"
)

func TestEnergyAwareExtendsLifetime(t *testing.T) {
	opts := Options{Runs: 3, Seed: 5, Intensity: 200, Ranges: []float64{0.12}}
	res, err := Energy(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The rotation must strictly help: energy-aware outlives plain density
	// and spreads the head burden.
	if res.EnergyLifetime <= res.PlainLifetime {
		t.Errorf("energy-aware lifetime %.1f not better than plain %.1f",
			res.EnergyLifetime, res.PlainLifetime)
	}
	if res.EnergyMaxBurden >= res.PlainMaxBurden {
		t.Errorf("energy-aware max burden %.1f not lower than plain %.1f",
			res.EnergyMaxBurden, res.PlainMaxBurden)
	}
	if !strings.Contains(res.Render(), "energy x density") {
		t.Error("render missing rows")
	}
}

func TestEnergyValidation(t *testing.T) {
	if _, err := Energy(Options{}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestAblationDaemonsMonotone(t *testing.T) {
	opts := Options{Runs: 2, Seed: 9, Intensity: 150, Ranges: []float64{0.15}}
	res, err := AblationDaemons(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probs) != 3 || len(res.Steps) != 3 {
		t.Fatalf("shape: %+v", res)
	}
	// Sparser daemons must not stabilize faster.
	if res.Steps[0] > res.Steps[1] || res.Steps[1] > res.Steps[2] {
		t.Errorf("steps not monotone in sparsity: %v", res.Steps)
	}
	if !strings.Contains(res.Render(), "activation") {
		t.Error("render missing header")
	}
}

func TestScalabilityShape(t *testing.T) {
	opts := Options{Runs: 2, Seed: 11, Intensity: 400, Ranges: []float64{0.12}}
	res, err := Scalability(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intensities) != 3 {
		t.Fatalf("shape: %+v", res)
	}
	for i := range res.Intensities {
		if res.HierState[i] >= res.FlatState[i] {
			t.Errorf("lambda=%v: hierarchical state %v not below flat %v",
				res.Intensities[i], res.HierState[i], res.FlatState[i])
		}
		if res.Stretch[i] < 1 || res.Stretch[i] > 3 {
			t.Errorf("lambda=%v: stretch %v implausible", res.Intensities[i], res.Stretch[i])
		}
	}
	// The hierarchical advantage must WIDEN with scale: the flat/hier state
	// ratio grows with lambda (the paper's scalability argument).
	first := res.FlatState[0] / res.HierState[0]
	last := res.FlatState[2] / res.HierState[2]
	if last <= first {
		t.Errorf("state advantage did not grow with scale: %v -> %v", first, last)
	}
	if !strings.Contains(res.Render(), "stretch") {
		t.Error("render missing column")
	}
}
