package experiment

import (
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/energy"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
	"selfstab/internal/stats"
)

// EnergyResult compares plain density against the energy-aware variant
// (Section 6 future work) on network lifetime and head-burden spread.
type EnergyResult struct {
	// Lifetime is the mean number of epochs until the first node depletes.
	PlainLifetime  float64
	EnergyLifetime float64
	// MaxBurden is the mean (over runs) of the maximum number of epochs
	// any single node spent as a cluster-head.
	PlainMaxBurden  float64
	EnergyMaxBurden float64
	Epochs          int
}

// Per-epoch battery cost, derived from the live subsystem's reference
// schedule (internal/energy.DefaultCosts) at EpochSteps Δ(τ) steps per
// re-clustering epoch — the offline experiment and the live battery model
// drain from one source of truth and cannot drift. Heads pay the head
// idle rate (they aggregate and forward their members' traffic), members
// the member rate. A head with no members does no forwarding and pays
// memberCost — otherwise isolated nodes, which are trivially their own
// heads under every metric, would dominate the time-to-first-depletion
// and mask the rotation effect.
var (
	headCost   = energy.DefaultCosts().IdleHead * energy.EpochSteps
	memberCost = energy.DefaultCosts().IdleMember * energy.EpochSteps
)

// Energy runs the head-rotation experiment: a static network re-clusters
// every epoch while batteries drain; the energy-aware metric demotes
// depleted heads so the burden rotates, extending the time until the
// first node dies.
func Energy(opts Options) (*EnergyResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	master := rng.New(opts.Seed)
	const maxEpochs = 400
	var plainLife, energyLife, plainBurden, energyBurden stats.Welford
	for run := 0; run < opts.Runs; run++ {
		src := master.SplitN("energy", run)
		inst := deployRandom(opts.Intensity, opts.Ranges[0], src)
		for _, aware := range []bool{false, true} {
			life, burden, err := runEnergyTrace(inst, aware, maxEpochs)
			if err != nil {
				return nil, err
			}
			if aware {
				energyLife.Add(float64(life))
				energyBurden.Add(float64(burden))
			} else {
				plainLife.Add(float64(life))
				plainBurden.Add(float64(burden))
			}
		}
	}
	return &EnergyResult{
		PlainLifetime:   plainLife.Mean(),
		EnergyLifetime:  energyLife.Mean(),
		PlainMaxBurden:  plainBurden.Mean(),
		EnergyMaxBurden: energyBurden.Mean(),
		Epochs:          maxEpochs,
	}, nil
}

// runEnergyTrace returns (epochs until first depletion, max head epochs of
// any node).
func runEnergyTrace(inst instance, aware bool, maxEpochs int) (int, int, error) {
	n := inst.g.N()
	energy := make([]float64, n)
	for i := range energy {
		energy[i] = 1
	}
	headEpochs := make([]int, n)
	var prev []int
	baseValues := metric.Density{}.Values(inst.g)
	for epoch := 1; epoch <= maxEpochs; epoch++ {
		values := baseValues
		if aware {
			values = make([]float64, n)
			for u := range values {
				e := energy[u]
				if e < 0 {
					e = 0
				}
				values[u] = baseValues[u] * e
			}
		}
		a, err := cluster.Compute(inst.g, cluster.Config{
			Values:   values,
			TieIDs:   inst.ids,
			Order:    cluster.OrderSticky,
			PrevHead: prev,
		})
		if err != nil {
			return 0, 0, fmt.Errorf("energy epoch %d: %w", epoch, err)
		}
		prev = a.Head
		members := make(map[int]int, 8)
		for u := 0; u < n; u++ {
			if a.Head[u] != u {
				members[a.Head[u]]++
			}
		}
		depleted := false
		for u := 0; u < n; u++ {
			if a.IsHead(u) && members[u] > 0 {
				energy[u] -= headCost
				headEpochs[u]++
			} else {
				energy[u] -= memberCost
			}
			if energy[u] <= 0 {
				depleted = true
			}
		}
		if depleted {
			return epoch, maxIntSlice(headEpochs), nil
		}
	}
	return maxEpochs, maxIntSlice(headEpochs), nil
}

func maxIntSlice(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Render formats the energy experiment.
func (r *EnergyResult) Render() string {
	t := stats.NewTable("Extension: energy-aware head rotation (Section 6 future work)",
		"metric", "epochs to first depletion", "max head burden (epochs)")
	t.AddRow("density", fmt.Sprintf("%.1f", r.PlainLifetime), fmt.Sprintf("%.1f", r.PlainMaxBurden))
	t.AddRow("energy x density", fmt.Sprintf("%.1f", r.EnergyLifetime), fmt.Sprintf("%.1f", r.EnergyMaxBurden))
	return t.String()
}

// DaemonResult measures distributed stabilization steps under randomized
// daemons of decreasing activation probability.
type DaemonResult struct {
	Probs []float64
	Steps []float64
}

// Render formats the daemon ablation.
func (r *DaemonResult) Render() string {
	t := stats.NewTable("Ablation: randomized daemon activation probability",
		"activation prob", "mean stabilization steps")
	for i := range r.Probs {
		t.AddRow(fmt.Sprintf("%.2f", r.Probs[i]), fmt.Sprintf("%.1f", r.Steps[i]))
	}
	return t.String()
}
