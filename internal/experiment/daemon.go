package experiment

import (
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/runtime"
	"selfstab/internal/stats"
)

// AblationDaemons measures how the daemon's activation probability scales
// stabilization time: the paper's execution semantics only assume enabled
// guards are eventually executed, so the protocol must stabilize for any
// probability > 0 — just proportionally slower.
func AblationDaemons(opts Options) (*DaemonResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	probs := []float64{1.0, 0.5, 0.25}
	master := rng.New(opts.Seed)
	res := &DaemonResult{Probs: probs}
	for _, p := range probs {
		var acc stats.Welford
		for run := 0; run < opts.Runs; run++ {
			src := master.SplitN(fmt.Sprintf("daemon-%.2f", p), run)
			inst := deployRandom(opts.Intensity, opts.Ranges[0], src)
			proto := runtime.Protocol{Order: cluster.OrderBasic, ActivationProb: p}
			eng, err := runtime.New(inst.g, inst.ids, proto, radio.Perfect{}, src.Split("engine"))
			if err != nil {
				return nil, err
			}
			at, err := eng.RunUntilStable(50*inst.g.N()+1000, 10)
			if err != nil {
				return nil, fmt.Errorf("daemon p=%.2f: %w", p, err)
			}
			acc.Add(float64(at))
		}
		res.Steps = append(res.Steps, acc.Mean())
	}
	return res, nil
}
