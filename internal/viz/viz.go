// Package viz renders clustered networks the way the paper's figures do:
// nodes in the unit square, edges of the unit-disk graph, cluster-heads
// highlighted, and cluster membership shown by color (SVG) or by letter
// (ASCII). It regenerates Figures 2 and 3 (the grid scenario with and
// without the DAG) and the Figure 1 style example rendering.
package viz

import (
	"fmt"
	"strings"

	"selfstab/internal/cluster"
	"selfstab/internal/geom"
	"selfstab/internal/topology"
)

// palette holds visually distinct fill colors; cluster i uses palette[i %
// len(palette)].
var palette = []string{
	"#e6194b", "#3cb44b", "#ffe119", "#4363d8", "#f58231",
	"#911eb4", "#46f0f0", "#f032e6", "#bcf60c", "#fabebe",
	"#008080", "#e6beff", "#9a6324", "#fffac8", "#800000",
	"#aaffc3", "#808000", "#ffd8b1", "#000075", "#808080",
}

// SVG renders the clustered network as a standalone SVG document of the
// given pixel size. Cluster-heads are drawn larger with a black outline;
// member nodes inherit their cluster's color; intra-cluster edges are
// tinted, inter-cluster edges are light gray.
func SVG(g *topology.Graph, pts []geom.Point, a *cluster.Assignment, size int) (string, error) {
	if g.N() != len(pts) {
		return "", fmt.Errorf("viz: %d points for %d nodes", len(pts), g.N())
	}
	if len(a.Head) != g.N() {
		return "", fmt.Errorf("viz: assignment for %d nodes, graph has %d", len(a.Head), g.N())
	}
	if size < 64 {
		size = 64
	}

	colorOf := clusterColors(a)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", size, size)

	px := func(p geom.Point) (float64, float64) {
		// SVG y grows downward; flip so the figure matches the paper's
		// bottom-left origin.
		return p.X * float64(size), (1 - p.Y) * float64(size)
	}

	// Edges first so nodes draw on top.
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			x1, y1 := px(pts[u])
			x2, y2 := px(pts[v])
			stroke, width := "#dddddd", 0.5
			if a.Head[u] == a.Head[v] {
				stroke, width = colorOf[a.Head[u]], 0.8
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f" stroke-opacity="0.6"/>`+"\n",
				x1, y1, x2, y2, stroke, width)
		}
	}
	r := float64(size) / 220
	if r < 2 {
		r = 2
	}
	for u := 0; u < g.N(); u++ {
		x, y := px(pts[u])
		c := colorOf[a.Head[u]]
		if a.Head[u] == u {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="black" stroke-width="1.5"/>`+"\n",
				x, y, 1.8*r, c)
		} else {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, c)
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// clusterColors assigns a stable palette color to each head.
func clusterColors(a *cluster.Assignment) map[int]string {
	colors := make(map[int]string, 8)
	i := 0
	for _, h := range a.Heads() {
		colors[h] = palette[i%len(palette)]
		i++
	}
	// Defensive: nodes whose head is not a fixpoint (transient states)
	// still render.
	for _, h := range a.Head {
		if _, ok := colors[h]; !ok {
			colors[h] = "#cccccc"
		}
	}
	return colors
}

// ASCII renders the clustered network as a rows x cols character map:
// each cell shows the cluster letter of the nearest node in it (uppercase
// if that node is the cluster-head, '.' for empty cells). It is the quick
// terminal view used by the examples.
func ASCII(g *topology.Graph, pts []geom.Point, a *cluster.Assignment, rows, cols int) (string, error) {
	if g.N() != len(pts) {
		return "", fmt.Errorf("viz: %d points for %d nodes", len(pts), g.N())
	}
	if len(a.Head) != g.N() {
		return "", fmt.Errorf("viz: assignment for %d nodes, graph has %d", len(a.Head), g.N())
	}
	if rows < 1 || cols < 1 {
		return "", fmt.Errorf("viz: invalid grid %dx%d", rows, cols)
	}

	letters := "abcdefghijklmnopqrstuvwxyz"
	letterOf := make(map[int]byte, 8)
	i := 0
	for _, h := range a.Heads() {
		letterOf[h] = letters[i%len(letters)]
		i++
	}
	for _, h := range a.Head {
		if _, ok := letterOf[h]; !ok {
			letterOf[h] = '?'
		}
	}

	type cellInfo struct {
		node int
		head bool
		used bool
	}
	cells := make([]cellInfo, rows*cols)
	for u, p := range pts {
		c := int(p.X * float64(cols))
		r := int((1 - p.Y) * float64(rows))
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		idx := r*cols + c
		isHead := a.Head[u] == u
		// Heads win the cell; otherwise first node claims it.
		if !cells[idx].used || (isHead && !cells[idx].head) {
			cells[idx] = cellInfo{node: u, head: isHead, used: true}
		}
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cell := cells[r*cols+c]
			if !cell.used {
				b.WriteByte('.')
				continue
			}
			ch := letterOf[a.Head[cell.node]]
			if cell.head {
				ch = ch - 'a' + 'A'
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
