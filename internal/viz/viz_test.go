package viz

import (
	"strings"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/geom"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

func demoNetwork(t *testing.T) (*topology.Graph, []geom.Point, *cluster.Assignment) {
	t.Helper()
	src := rng.New(1)
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
	}
	g := topology.FromPoints(pts, 0.25)
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	a, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, pts, a
}

func TestSVGWellFormed(t *testing.T) {
	g, pts, a := demoNetwork(t)
	svg, err := SVG(g, pts, a, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if got := strings.Count(svg, "<circle"); got != g.N() {
		t.Errorf("drew %d circles for %d nodes", got, g.N())
	}
	if got := strings.Count(svg, "<line"); got != g.Edges() {
		t.Errorf("drew %d lines for %d edges", got, g.Edges())
	}
	// Heads are outlined.
	if got := strings.Count(svg, `stroke="black"`); got != len(a.Heads()) {
		t.Errorf("drew %d outlined heads, want %d", got, len(a.Heads()))
	}
}

func TestSVGValidation(t *testing.T) {
	g, pts, a := demoNetwork(t)
	if _, err := SVG(g, pts[:3], a, 400); err == nil {
		t.Error("point mismatch accepted")
	}
	short := &cluster.Assignment{Parent: a.Parent[:2], Head: a.Head[:2]}
	if _, err := SVG(g, pts, short, 400); err == nil {
		t.Error("assignment mismatch accepted")
	}
}

func TestSVGMinimumSize(t *testing.T) {
	g, pts, a := demoNetwork(t)
	svg, err := SVG(g, pts, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, `width="64"`) {
		t.Error("size not clamped to minimum")
	}
}

func TestASCIIShape(t *testing.T) {
	g, pts, a := demoNetwork(t)
	out, err := ASCII(g, pts, a, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d rows, want 10", len(lines))
	}
	for i, l := range lines {
		if len(l) != 20 {
			t.Errorf("row %d has %d cols, want 20", i, len(l))
		}
	}
}

func TestASCIIMarksHeads(t *testing.T) {
	g, pts, a := demoNetwork(t)
	out, err := ASCII(g, pts, a, 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	upper := 0
	for _, ch := range out {
		if ch >= 'A' && ch <= 'Z' {
			upper++
		}
	}
	// Every head should land in some cell; collisions can only merge two
	// heads into one cell, so at least one uppercase letter must appear.
	if upper == 0 {
		t.Error("no cluster-heads rendered uppercase")
	}
	if upper > len(a.Heads()) {
		t.Errorf("%d uppercase cells but only %d heads", upper, len(a.Heads()))
	}
}

func TestASCIIValidation(t *testing.T) {
	g, pts, a := demoNetwork(t)
	if _, err := ASCII(g, pts, a, 0, 10); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := ASCII(g, pts[:2], a, 5, 5); err == nil {
		t.Error("point mismatch accepted")
	}
	short := &cluster.Assignment{Parent: a.Parent[:2], Head: a.Head[:2]}
	if _, err := ASCII(g, pts, short, 5, 5); err == nil {
		t.Error("assignment mismatch accepted")
	}
}

func TestSingleNodeRenders(t *testing.T) {
	g := topology.New(1)
	pts := []geom.Point{{X: 0.5, Y: 0.5}}
	a := &cluster.Assignment{Parent: []int{0}, Head: []int{0}}
	svg, err := SVG(g, pts, a, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<circle") {
		t.Error("node not drawn")
	}
	txt, err := ASCII(g, pts, a, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "A") {
		t.Errorf("head not uppercase:\n%s", txt)
	}
}

func TestManyClustersPaletteCycles(t *testing.T) {
	// More clusters than palette entries (the Table 5 with-DAG case has
	// ~110): rendering must still succeed with colors reused.
	n := 60
	g := topology.New(n) // no edges: every node is its own cluster
	pts := make([]geom.Point, n)
	parent := make([]int, n)
	head := make([]int, n)
	src := rng.New(31)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
		parent[i] = i
		head[i] = i
	}
	a := &cluster.Assignment{Parent: parent, Head: head}
	svg, err := SVG(g, pts, a, 300)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<circle") != n {
		t.Error("not all singleton clusters drawn")
	}
	txt, err := ASCII(g, pts, a, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	// All rendered letters must be uppercase (every node is a head).
	for _, ch := range txt {
		if ch >= 'a' && ch <= 'z' {
			t.Fatalf("head rendered lowercase:\n%s", txt)
		}
	}
}

func TestSVGUnresolvedHeadFallback(t *testing.T) {
	// Transient states can reference heads that are not fixpoints; the
	// renderer paints them gray instead of failing.
	g := topology.New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{{X: 0.2, Y: 0.2}, {X: 0.8, Y: 0.8}}
	// Crossed parents: no node is a parent fixpoint, so Heads() is empty
	// and every Head reference is unresolved.
	a := &cluster.Assignment{Parent: []int{1, 0}, Head: []int{1, 0}}
	svg, err := SVG(g, pts, a, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "#cccccc") {
		t.Error("unresolved heads should render gray")
	}
}
