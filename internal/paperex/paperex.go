// Package paperex encodes the illustrative example of the paper's Figure 1
// and Table 1: a nine-node topology (nodes a, b, c, d, e, f, h, i, j) whose
// densities, parent choices and final two-cluster structure are spelled out
// in the text. It is the ground-truth fixture used by metric, cluster and
// example tests.
//
// The edge set is reconstructed from the paper's stated neighbor/link
// counts; it is the unique graph consistent with Table 1 and the worked
// narrative ("c joins b, b joins h, h is a head; f joins j, j is a head"):
//
//	a-d a-i b-c b-d b-h b-i h-i i-e d-f d-j f-j
//
// Identifiers: the paper assumes node j has the smallest identifier (that is
// how the f/j density tie resolves toward j), so we number j first.
package paperex

import (
	"selfstab/internal/geom"
	"selfstab/internal/topology"
)

// Node indices of the fixture. Values are dense graph indices.
const (
	J = iota // smallest identifier, per the paper's tie-break assumption
	A
	B
	C
	D
	E
	F
	H
	I
	NumNodes
)

// Names maps fixture indices to the paper's node letters.
var Names = [NumNodes]string{"j", "a", "b", "c", "d", "e", "f", "h", "i"}

// Graph returns a fresh copy of the Figure 1 topology.
func Graph() *topology.Graph {
	g := topology.New(NumNodes)
	edges := [][2]int{
		{A, D}, {A, I},
		{B, C}, {B, D}, {B, H}, {B, I},
		{H, I},
		{I, E},
		{D, F}, {D, J},
		{F, J},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			// The fixture is a compile-time constant; an error here is a
			// programming bug, not a runtime condition.
			panic(err)
		}
	}
	return g
}

// IDs returns the node identifiers: the fixture index doubles as the
// identifier, which makes j (index 0) the smallest, as the paper assumes.
func IDs() []int64 {
	ids := make([]int64, NumNodes)
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}

// WantNeighbors is Table 1's "# Neighbors" row.
var WantNeighbors = map[int]int{
	A: 2, B: 4, C: 1, D: 4, E: 1, F: 2, H: 2, I: 4, J: 2,
}

// WantLinks is Table 1's "# Links" row (the density numerator).
var WantLinks = map[int]int{
	A: 2, B: 5, C: 1, D: 5, E: 1, F: 3, H: 3, I: 5, J: 3,
}

// WantDensity is Table 1's "1-density" row.
var WantDensity = map[int]float64{
	A: 1, B: 1.25, C: 1, D: 1.25, E: 1, F: 1.5, H: 1.5, I: 1.25, J: 1.5,
}

// WantParent is the parent relation F(p) from the worked example. Nodes that
// are their own parent are cluster-heads.
var WantParent = map[int]int{
	C: B, // "node c joins its neighbor node b"
	B: H, // "F(b) = h"
	H: H, // "node h ... becomes its own cluster-head"
	F: J, // "F(f) = j"
	J: J, // "F(j) = j"
	// The remaining nodes are not spelled out in the text but follow from
	// the rule (join the ≺-maximal neighbor):
	A: D, // d and i tie at 1.25; d has the smaller identifier
	D: J, // f and j tie at 1.5; j has the smaller identifier
	E: I, // i is e's only neighbor
	I: H, // h has i's highest neighbor density
}

// WantHead is the final cluster-head H(p) of every node: two clusters,
// one around h and one around j.
var WantHead = map[int]int{
	A: J, B: H, C: H, D: J, E: H, F: J, H: H, I: H, J: J,
}

// Layout returns plotting positions for the fixture in the unit square,
// arranged like the paper's Figure 1 (purely cosmetic; the topology is
// defined by Graph, not by distances).
func Layout() []geom.Point {
	pts := make([]geom.Point, NumNodes)
	pts[A] = geom.Point{X: 0.18, Y: 0.48}
	pts[B] = geom.Point{X: 0.48, Y: 0.58}
	pts[C] = geom.Point{X: 0.64, Y: 0.50}
	pts[D] = geom.Point{X: 0.36, Y: 0.36}
	pts[E] = geom.Point{X: 0.24, Y: 0.72}
	pts[F] = geom.Point{X: 0.56, Y: 0.20}
	pts[H] = geom.Point{X: 0.44, Y: 0.76}
	pts[I] = geom.Point{X: 0.32, Y: 0.58}
	pts[J] = geom.Point{X: 0.42, Y: 0.10}
	return pts
}
