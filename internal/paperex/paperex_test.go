package paperex

import (
	"testing"
)

// TestFixtureSelfConsistent verifies the reconstructed Figure 1 graph
// against every published constraint at once — if any edge were wrong, at
// least one of these counts would be off.
func TestFixtureSelfConsistent(t *testing.T) {
	g := Graph()
	if g.N() != NumNodes {
		t.Fatalf("N = %d", g.N())
	}
	if g.Edges() != 11 {
		t.Errorf("edges = %d, want 11", g.Edges())
	}
	for u, want := range WantNeighbors {
		if got := g.Degree(u); got != want {
			t.Errorf("deg(%s) = %d, want %d", Names[u], got, want)
		}
	}
	for u, want := range WantLinks {
		if got := g.ClosedNeighborhoodLinks(u); got != want {
			t.Errorf("links(%s) = %d, want %d", Names[u], got, want)
		}
	}
}

// TestNarrativeEdges checks the edges the paper states explicitly.
func TestNarrativeEdges(t *testing.T) {
	g := Graph()
	explicit := [][2]int{
		{A, D}, {A, I}, // "two links ({(a, d), (a, i)})"
		{B, C}, {B, D}, {B, H}, {B, I}, {H, I}, // b's five links
	}
	for _, e := range explicit {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing stated edge %s-%s", Names[e[0]], Names[e[1]])
		}
	}
	if g.HasEdge(D, I) {
		t.Error("d-i edge would break Table 1's link counts")
	}
}

func TestIDsUniqueAndJSmallest(t *testing.T) {
	ids := IDs()
	seen := make(map[int64]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
	for u, id := range ids {
		if u != J && id <= ids[J] {
			t.Errorf("node %s has id %d <= j's %d (paper: j is smallest)", Names[u], id, ids[J])
		}
	}
}

func TestParentMapConsistency(t *testing.T) {
	// Heads are exactly the self-parents, and WantHead follows WantParent
	// chains.
	for u, p := range WantParent {
		// Follow the chain to its fixpoint.
		cur := u
		for steps := 0; WantParent[cur] != cur; steps++ {
			if steps > NumNodes {
				t.Fatalf("parent chain from %s does not terminate", Names[u])
			}
			cur = WantParent[cur]
		}
		if WantHead[u] != cur {
			t.Errorf("H(%s) = %s, but chain ends at %s", Names[u], Names[WantHead[u]], Names[cur])
		}
		_ = p
	}
}

func TestLayoutMatchesNodeCount(t *testing.T) {
	pts := Layout()
	if len(pts) != NumNodes {
		t.Fatalf("layout has %d points", len(pts))
	}
	for i, p := range pts {
		if p.X <= 0 || p.X >= 1 || p.Y <= 0 || p.Y >= 1 {
			t.Errorf("node %s at %v outside the unit square interior", Names[i], p)
		}
	}
}
