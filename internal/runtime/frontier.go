package runtime

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"selfstab/internal/obs"
	"selfstab/internal/radio"
)

// Frontier (worklist) stepping.
//
// After stabilization the protocol is locally quiescent: a node's guards
// can only produce new output when its inputs — its own shared variables
// or its neighbor cache — changed, and its cache can only change when a
// neighbor broadcast new content, appeared, or vanished. The frontier
// engine exploits that: it keeps a worklist of nodes whose inputs may
// have changed (seeded by guard firings, churn transitions, corruption,
// density-scale changes and topology deltas) and re-examines only those
// nodes plus the radio neighborhoods of nodes about to broadcast changed
// frames. A fully stabilized network steps in O(1); a locally perturbed
// one in O(frontier × density) — never O(N).
//
// The result is bit-identical to the full scan, but only when nothing in
// the skipped work consumes randomness or can change spontaneously:
//
//   - the medium must be lossless (radio.Perfect) — a lossy medium draws
//     per-edge randomness every step and can silently start aging any
//     cache entry, so no node ever provably quiesces;
//   - the daemon must be synchronous (ActivationProb 0 or 1) — a
//     randomized daemon draws one value per node per step.
//
// New auto-enables frontier stepping exactly when both hold; SetSparse
// provides an explicit override (the equivalence tests force the dense
// path on one twin). TTL aging stays exact because a node whose ingest
// left any entry unrefreshed re-enters the worklist every step until the
// entry is refreshed or evicted (Node.stale).

// ErrSparseIneligible is returned by SetSparse(true) when the engine's
// medium or daemon cannot support frontier stepping.
var ErrSparseIneligible = errors.New("runtime: frontier stepping needs a lossless medium and a synchronous daemon")

// sparseEligible reports whether frontier stepping is bit-identical to
// the full scan for this engine configuration.
func sparseEligible(medium radio.Medium, proto Protocol) bool {
	if _, lossless := medium.(radio.Perfect); !lossless {
		return false
	}
	return proto.ActivationProb == 0 || proto.ActivationProb == 1
}

// Sparse reports whether frontier (worklist) stepping is active.
func (e *Engine) Sparse() bool { return e.sparse }

// SetSparse toggles frontier stepping. Enabling it on an ineligible
// engine (lossy medium, randomized daemon) returns ErrSparseIneligible.
// Both settings produce bit-identical executions; the toggle exists for
// the equivalence oracle tests and for benchmarking the dense baseline.
// Call only between steps.
func (e *Engine) SetSparse(on bool) error {
	if on && !e.sparseOK {
		return ErrSparseIneligible
	}
	if on && !e.sparse {
		// The dense path kept no worklist; conservatively re-examine
		// everything once.
		e.ActivateAll()
	}
	e.sparse = on
	return nil
}

// Activate queues node i for re-examination on the next step. Call it for
// every node whose guard inputs may have changed behind the engine's back
// — in practice, every node whose radio adjacency was changed by an
// incremental topology update (topology.GridIndex fires its adjacency
// hook for exactly that set). Out-of-range indices are ignored (an
// incremental Append notifies the not-yet-registered newcomer, which
// Engine.Append then activates itself). A no-op on the dense path.
// Sequential only: call between steps or from a pre-step hook.
func (e *Engine) Activate(i int) {
	if !e.sparse || i < 0 || i >= len(e.pendFlag) || e.pendFlag[i] {
		return
	}
	e.pendFlag[i] = true
	e.pend = append(e.pend, int32(i))
}

// ActivateAll queues every node — the conservative response to a
// wholesale topology swap.
func (e *Engine) ActivateAll() {
	if !e.sparse {
		return
	}
	for i := range e.pendFlag {
		if !e.pendFlag[i] {
			e.pendFlag[i] = true
			e.pend = append(e.pend, int32(i))
		}
	}
}

// activateSpread activates a node and a set of co-disrupted sites (the
// former neighbors of a vanished node, which must start aging its cache
// entries this very step).
func (e *Engine) activateSpread(i int, spread []int) {
	e.Activate(i)
	for _, s := range spread {
		e.Activate(s)
	}
}

// FrontierLen returns how many nodes are currently queued for
// re-examination (0 on a stabilized network; always 0 on the dense path).
// Diagnostic: the scale CLI and the quiescence tests read it.
func (e *Engine) FrontierLen() int { return len(e.pend) }

// stepSparse is Step on the frontier path. It must mirror the dense path
// of Step exactly — same phase order, same guard sequence, same epoch and
// ledger bookkeeping — with the single difference that only worklist
// nodes are touched.
func (e *Engine) stepSparse() error {
	probe := e.probe
	if probe != nil {
		probe.PhaseBegin(obs.PhaseChurn)
	}
	e.maybeCloseDisruption()
	if e.preStep != nil {
		if err := e.preStep(e.step); err != nil {
			return fmt.Errorf("step %d: pre-step: %w", e.step, err)
		}
	}
	if probe != nil {
		probe.PhaseEnd(obs.PhaseChurn)
	}

	// Saturated frontier: once half the living population is pending, the
	// worklist's expansion pass plus list indirection costs more than a
	// straight scan — fall back to dense-shaped execution for this step
	// (same per-node work, so still bit-identical; see stepSparseSaturated).
	if len(e.pend) > 0 && 2*len(e.pend) >= e.aliveN {
		return e.stepSparseSaturated()
	}
	if e.tiles > 1 {
		return e.stepTiled()
	}

	// Build this step's worklist: every pending node, plus — for pending
	// nodes about to broadcast changed content — their alive radio
	// neighborhood, which is exactly the set of nodes whose ingest can
	// observe anything new this step.
	e.exec = e.exec[:0]
	for _, v := range e.pend {
		e.execFlag[v] = true
		e.exec = append(e.exec, v)
	}
	for _, v := range e.pend {
		if e.status[v] != StatusAlive || !e.nodes[v].frameDirty {
			continue
		}
		for _, w := range e.g.Neighbors(int(v)) {
			if e.status[w] == StatusAlive && !e.execFlag[w] {
				e.execFlag[w] = true
				e.exec = append(e.exec, int32(w))
			}
		}
	}
	for _, v := range e.pend {
		e.pendFlag[v] = false
	}
	e.pend = e.pend[:0]

	if probe != nil {
		probe.Counter(obs.CtrExec, int64(len(e.exec)))
	}
	if len(e.exec) == 0 {
		// Fully quiescent: no broadcast content changed, no cache is
		// aging, no guard is armed. The step is a no-op on protocol
		// state, exactly like a full scan over clean nodes.
		e.stepChanged = false
		e.step++
		if e.postStep != nil {
			return e.postStep(e.step)
		}
		return nil
	}

	if probe != nil {
		probe.PhaseBegin(obs.PhaseFrame)
	}
	// Phase 1 (parallel): refresh the outgoing frames of worklist nodes.
	// Every frameDirty node is on the worklist (the step invariant all
	// mutators maintain), so after this pass the whole frame arena is
	// current, exactly as after the dense phase 1.
	e.forEachListed(e.exec, func(i int) bool {
		if e.status[i] != StatusAlive {
			return false
		}
		if n := e.nodes[i]; n.frameDirty {
			n.fillFrame(&e.out[i])
			n.frameDirty = false
		}
		return false
	})
	if probe != nil {
		probe.PhaseEnd(obs.PhaseFrame)
		probe.PhaseBegin(obs.PhaseIngest)
	}

	// Phase 2+3 (parallel): ingest + guards for worklist nodes. The
	// lossless medium delivers each alive neighbor's frame verbatim, so
	// ingest reads adjacency directly — no Deliver call, no inbox.
	ttl := e.proto.CacheTTL
	tracking := e.disrupt.active
	e.stepChanged = e.forEachListed(e.exec, func(i int) bool {
		if e.status[i] != StatusAlive {
			return false
		}
		n := e.nodes[i]
		n.ingestAdj(e.out, e.g.Neighbors(i), e.sendMask, ttl)
		if !n.dirty {
			return false
		}
		n.dirty = false
		changed := n.guardN1(e.proto)
		changed = n.guardR1(e.densityScaleOf(i)) || changed
		changed = n.guardR2(e.proto) || changed
		if changed {
			n.dirty = true
			n.frameDirty = true
			if tracking {
				e.disrupt.changed[i] = true
			}
		}
		return changed
	})
	if probe != nil {
		probe.PhaseEnd(obs.PhaseIngest)
	}

	// Post-pass (sequential): re-arm next step's worklist. A node stays
	// on the frontier while its guards are armed, its broadcast content
	// changed (next step its neighbors join via the phase-0 expansion),
	// or any cache entry is aging toward eviction.
	for _, v := range e.exec {
		e.execFlag[v] = false
		if e.status[v] != StatusAlive {
			continue
		}
		n := e.nodes[v]
		if (n.dirty || n.frameDirty || n.stale) && !e.pendFlag[v] {
			e.pendFlag[v] = true
			e.pend = append(e.pend, v)
		}
	}

	if e.stepChanged {
		e.epoch++
		e.lastChange = e.step + 1
	}
	e.step++
	if e.postStep != nil {
		return e.postStep(e.step)
	}
	return nil
}

// stepSparseSaturated is stepSparse's body when the frontier has grown to
// a constant fraction of the living population (mass churn, corruption
// storms, cold start): it drops the worklist machinery for one step and
// scans every node, dense-style, paying O(N) once instead of O(N) plus
// worklist bookkeeping. The per-node work is the same as the frontier
// path's, and running it on extra (clean, off-worklist) nodes is a no-op:
// a clean node's cached neighbors are all alive and sending (anything
// else would have pended it via activateSpread or stale), so its ingest
// refreshes every entry with identical content and its guards never see
// changed inputs. The execution therefore stays bit-identical to the
// frontier path. The worklist is rebuilt by a full index-order scan at
// the end, so the next step resumes sparse stepping seamlessly.
func (e *Engine) stepSparseSaturated() error {
	probe := e.probe
	if probe != nil {
		probe.Counter(obs.CtrDenseFallback, 1)
		probe.Counter(obs.CtrExec, int64(e.aliveN))
		probe.PhaseBegin(obs.PhaseFrame)
	}
	for _, v := range e.pend {
		e.pendFlag[v] = false
	}
	e.pend = e.pend[:0]

	// Phase 1 (parallel): refresh every dirty outgoing frame. All
	// frameDirty nodes were pending (the step invariant), and the full
	// scan is a superset of the worklist.
	e.forEachNode(func(i int) bool {
		if e.status[i] != StatusAlive {
			return false
		}
		if n := e.nodes[i]; n.frameDirty {
			n.fillFrame(&e.out[i])
			n.frameDirty = false
		}
		return false
	})
	if probe != nil {
		probe.PhaseEnd(obs.PhaseFrame)
		probe.PhaseBegin(obs.PhaseIngest)
	}

	// Phase 2+3 (parallel): ingest + guards for every alive node —
	// identical per-node work to the frontier path.
	ttl := e.proto.CacheTTL
	tracking := e.disrupt.active
	e.stepChanged = e.forEachNode(func(i int) bool {
		if e.status[i] != StatusAlive {
			return false
		}
		n := e.nodes[i]
		n.ingestAdj(e.out, e.g.Neighbors(i), e.sendMask, ttl)
		if !n.dirty {
			return false
		}
		n.dirty = false
		changed := n.guardN1(e.proto)
		changed = n.guardR1(e.densityScaleOf(i)) || changed
		changed = n.guardR2(e.proto) || changed
		if changed {
			n.dirty = true
			n.frameDirty = true
			if tracking {
				e.disrupt.changed[i] = true
			}
		}
		return changed
	})
	if probe != nil {
		probe.PhaseEnd(obs.PhaseIngest)
	}

	// Post-pass (sequential): rebuild the worklist by a full index-order
	// scan. Worklist order is unobservable (per-node phases are
	// independent), so index order here vs. activation order on the
	// frontier path changes nothing downstream.
	for i, n := range e.nodes {
		if e.status[i] != StatusAlive {
			continue
		}
		if n.dirty || n.frameDirty || n.stale {
			e.pendFlag[i] = true
			e.pend = append(e.pend, int32(i))
		}
	}

	if e.stepChanged {
		e.epoch++
		e.lastChange = e.step + 1
	}
	e.step++
	if e.postStep != nil {
		return e.postStep(e.step)
	}
	return nil
}

// forEachListed is forEachNode over an explicit index list: fn(i) runs for
// every listed node, in parallel chunks when the list is large enough,
// and the call reports whether any fn returned true. fn must only touch
// node i's private state (plus read-only shared data).
func (e *Engine) forEachListed(list []int32, fn func(i int) bool) bool {
	n := len(list)
	workers := e.workers
	if workers == 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelThreshold {
		changed := false
		for _, v := range list {
			if fn(int(v)) {
				changed = true
			}
		}
		return changed
	}
	var wg sync.WaitGroup
	var changed atomic.Bool
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(part []int32) {
			defer wg.Done()
			c := false
			for _, v := range part {
				if fn(int(v)) {
					c = true
				}
			}
			if c {
				changed.Store(true)
			}
		}(list[lo:hi])
	}
	wg.Wait()
	return changed.Load()
}
