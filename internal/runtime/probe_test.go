package runtime

import (
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/obs"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
)

// TestStepProbeDisabledZeroAlloc is the zero-overhead pin at the
// allocation level: with no probe attached — including after an
// attach/detach cycle — a steady-state step performs zero allocations,
// exactly as before the instrumentation layer existed. The time half of
// the pin is the benchgate: BenchmarkStep1000/BenchmarkQuiescentStep
// medians are compared against the committed baselines by
// scripts/bench.sh.
func TestStepProbeDisabledZeroAlloc(t *testing.T) {
	g, ids := randomNetwork(1, 1000, 0.1)
	e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(5000, 5); err != nil {
		t.Fatal(err)
	}

	measure := func(label string) {
		t.Helper()
		allocs := testing.AllocsPerRun(100, func() {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: quiescent step allocates %.2f/op, want 0", label, allocs)
		}
	}
	measure("never attached")

	// An attach/detach cycle must restore the exact nil-probe fast path.
	c := obs.NewCollector(16)
	e.SetProbe(c)
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	e.SetProbe(nil)
	measure("after detach")

	if got := c.Metrics().Steps; got != 3 {
		t.Fatalf("collector saw %d steps while attached, want 3", got)
	}
}

// TestProbePhaseEmission drives both step paths and checks the probe
// stream they emit: records pair Begin/End, the expected phases appear,
// and the saturation fallback announces itself.
func TestProbePhaseEmission(t *testing.T) {
	g, ids := randomNetwork(7, 300, 0.12)
	e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCollector(64)
	e.SetProbe(c)

	// Cold start: the whole population pends, so the first steps hit the
	// saturated dense fallback.
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Counters[obs.CtrDenseFallback] == 0 {
		t.Errorf("cold start did not report a dense fallback")
	}
	if m.Phases[obs.PhaseFrame].Count == 0 || m.Phases[obs.PhaseIngest].Count == 0 {
		t.Errorf("frame/ingest phases unobserved: %+v", m.Phases)
	}

	if _, err := e.RunUntilStable(5000, 5); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Steps
	if err := e.Run(4); err != nil {
		t.Fatal(err)
	}
	recs := c.Recent(4)
	if len(recs) != 4 || c.Metrics().Steps != before+4 {
		t.Fatalf("want 4 fresh records, got %d (steps %d→%d)", len(recs), before, c.Metrics().Steps)
	}
	for _, r := range recs {
		if r.Changed {
			t.Errorf("step %d: quiescent step reported a change", r.Step)
		}
		if !r.CounterSeen[obs.CtrFrontier] || r.Counters[obs.CtrFrontier] != 0 {
			t.Errorf("step %d: frontier gauge %v/%d, want seen/0", r.Step, r.CounterSeen[obs.CtrFrontier], r.Counters[obs.CtrFrontier])
		}
	}

	// The dense path brackets churn, frame (incl. delivery) and ingest.
	if err := e.SetSparse(false); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	rec := c.Recent(1)[0]
	for _, p := range []obs.Phase{obs.PhaseChurn, obs.PhaseFrame, obs.PhaseIngest} {
		if !rec.Phases[p].Ok {
			t.Errorf("dense step: phase %v unobserved", p)
		}
	}
	if !rec.CounterSeen[obs.CtrExec] {
		t.Errorf("dense step: exec gauge unobserved")
	}
}

// TestProbeTiledSpans pins the tiled path's halo instrumentation: halo
// phase spans, per-tile merge spans and the crossing counter all appear,
// and the execution stays bit-identical to an unprobed twin.
func TestProbeTiledSpans(t *testing.T) {
	build := func(probe bool) (*Engine, *obs.Collector) {
		g, ids := randomNetwork(11, 600, 0.1)
		e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		// A crude 4-way tiling by index stripes: ownership just has to be
		// a stable function of the node for the engine's contract.
		if err := e.SetTiles(4, func(i int) int { return i % 4 }); err != nil {
			t.Fatal(err)
		}
		var c *obs.Collector
		if probe {
			c = obs.NewCollector(0)
			e.SetProbe(c)
		}
		if _, err := e.RunUntilStable(5000, 5); err != nil {
			t.Fatal(err)
		}
		return e, c
	}

	probed, c := build(true)
	bare, _ := build(false)
	a, b := probed.Snapshot(), bare.Snapshot()
	for i := range a.IDs {
		if a.TieID[i] != b.TieID[i] || a.Density[i] != b.Density[i] ||
			a.HeadID[i] != b.HeadID[i] || a.Parent[i] != b.Parent[i] {
			t.Fatalf("probed and bare tiled runs diverged at node %d", i)
		}
	}

	m := c.Metrics()
	if m.Phases[obs.PhaseHalo].Count == 0 {
		t.Errorf("tiled stabilization emitted no halo phase spans")
	}
	if m.Counters[obs.CtrHaloCross] == 0 {
		t.Errorf("index-striped tiling reported zero halo crossings")
	}
	found := false
	for _, r := range c.Recent(0) {
		if len(r.Tiles) > 0 {
			found = true
			for _, ts := range r.Tiles {
				if ts.Phase != obs.PhaseHalo || ts.Tile < 0 || ts.Tile >= 4 {
					t.Fatalf("bad tile span %+v", ts)
				}
			}
		}
	}
	if !found {
		t.Errorf("no per-tile merge spans recorded")
	}
}
