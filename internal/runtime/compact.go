package runtime

import (
	"fmt"

	"selfstab/internal/obs"
)

// Slot compaction. Dead slots are inert — no radio, no edges, cleared
// state — but they pin a dense index in every per-node array across the
// stack, so under sustained add/remove churn memory tracks cumulative
// arrivals instead of the operating population. Compact recycles them
// under an explicit index remap: survivors keep their relative order
// (the remap is monotone), which is what makes the compacted execution
// bit-identical to the uncompacted one — every index-ordered loop in the
// stack (guards, forwarding, battery charging, victim picks) visits the
// survivors in the same sequence either way.
//
// The engine owns the remap; every subsystem that caches node indices
// (the topology index, the traffic queues and flow endpoints, the energy
// arrays, the routing tables, the caller's own position/id arrays) must
// be compacted with the same remap in the same quiet instant between
// steps. The selfstab.Network layer orchestrates that; raw engine users
// follow the same contract Append established: topology first, then the
// engine, then everything downstream.

// CompactionRemap builds the dead-slot recycling plan: remap[old] is the
// survivor's new index, or -1 for a dead slot; newN is the surviving
// slot count. It returns (nil, N()) when no slot is dead.
func (e *Engine) CompactionRemap() ([]int32, int) {
	if e.deadN == 0 {
		return nil, len(e.nodes)
	}
	remap := make([]int32, len(e.nodes))
	next := int32(0)
	for i, s := range e.status {
		if s == StatusDead {
			remap[i] = -1
			continue
		}
		remap[i] = next
		next++
	}
	return remap, int(next)
}

// Compact applies a CompactionRemap: dead slots are dropped, survivors
// are renumbered in place, and the epoch advances so every index-keyed
// derived structure (routing tables, renderings) rebuilds. The caller
// must already have compacted the engine's graph with the same remap
// (topology.GridIndex.Compact / Graph.Compact); protocol state is
// untouched — node caches key on application identifiers, which never
// change — so the step after a Compact computes exactly what it would
// have computed without one. Call only between steps.
//
//selfstab:mutator
func (e *Engine) Compact(remap []int32, newN int) error {
	if len(remap) != len(e.nodes) {
		return fmt.Errorf("runtime: remap of %d entries for %d nodes", len(remap), len(e.nodes))
	}
	if e.g.N() != newN {
		return fmt.Errorf("runtime: graph has %d nodes, want %d (compact the graph before the engine)", e.g.N(), newN)
	}
	// Compaction runs between steps: the collector attributes its span to
	// the following step's record.
	probe := e.probe
	if probe != nil {
		probe.PhaseBegin(obs.PhaseCompact)
		defer func() {
			probe.PhaseEnd(obs.PhaseCompact)
			probe.Counter(obs.CtrCompactions, 1)
		}()
	}
	for old, nw := range remap {
		if nw < 0 {
			if e.status[old] != StatusDead {
				return fmt.Errorf("runtime: remap drops node %d which is %s", old, e.status[old])
			}
			delete(e.idx, e.ids[old])
			continue
		}
		i := int(nw)
		e.nodes[i] = e.nodes[old]
		e.ids[i] = e.ids[old]
		e.idx[e.ids[i]] = i
		e.out[i] = e.out[old]
		e.active[i] = e.active[old]
		e.status[i] = e.status[old]
		e.sendMask[i] = e.sendMask[old]
		if e.densityScale != nil {
			e.densityScale[i] = e.densityScale[old]
		}
	}
	e.nodes = e.nodes[:newN]
	e.ids = e.ids[:newN]
	e.out = e.out[:newN]
	e.active = e.active[:newN]
	e.status = e.status[:newN]
	e.sendMask = e.sendMask[:newN]
	if e.densityScale != nil {
		e.densityScale = e.densityScale[:newN]
	}
	e.compactDisruption(remap, newN)
	e.compactFrontier(remap, newN)
	e.compactTiles(remap, newN)
	// Rebuild the alive order-statistic index from the compacted statuses
	// (dead slots are gone, so the surviving membership is dense anyway).
	e.aliveIdx.init(newN)
	for i, s := range e.status {
		if s == StatusAlive {
			e.aliveIdx.set(i)
		}
	}
	e.deadN = 0
	e.epoch++
	return nil
}

// compactFrontier remaps the worklist: pending survivors keep their
// queue order, dead slots leave it (they were inert anyway).
func (e *Engine) compactFrontier(remap []int32, newN int) {
	kept := e.pend[:0]
	for _, v := range e.pend {
		if nw := remap[v]; nw >= 0 {
			kept = append(kept, nw)
		}
	}
	e.pend = kept
	for i := range e.pendFlag {
		e.pendFlag[i] = false
	}
	e.pendFlag = e.pendFlag[:newN]
	for _, v := range e.pend {
		e.pendFlag[v] = true
	}
	e.execFlag = e.execFlag[:newN]
}

// compactDisruption remaps the open-episode tracker so a Compact in the
// middle of a converging disruption leaves the eventual ledger record
// exactly what it would have been: per-slot changed/site flags move with
// their survivors, and the contribution of dropped dead slots — they
// count as affected nodes, and as radius-0 witnesses when they were
// disruption sites — is folded into carry counters that affectedSpread
// adds back at close time.
func (e *Engine) compactDisruption(remap []int32, newN int) {
	d := &e.disrupt
	if d.active {
		for old, nw := range remap {
			if nw >= 0 {
				continue
			}
			if d.changed[old] {
				d.droppedChanged++
				// A dead slot is isolated, so its BFS distance from the
				// episode's sites is 0 if it is itself a site and
				// unreachable otherwise — exactly the carry below.
				if d.siteSet[old] {
					d.droppedChangedSite = true
				}
			}
		}
	}
	for old, nw := range remap {
		if nw < 0 {
			continue
		}
		d.changed[nw] = d.changed[old]
		d.siteSet[nw] = d.siteSet[old]
	}
	d.changed = d.changed[:newN]
	d.siteSet = d.siteSet[:newN]
	kept := d.sites[:0]
	for _, s := range d.sites {
		if nw := remap[s]; nw >= 0 {
			kept = append(kept, int(nw))
		}
	}
	d.sites = kept
}
