package runtime

import (
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
)

func TestDaemonValidation(t *testing.T) {
	g, ids := randomNetwork(1, 20, 0.3)
	for _, p := range []float64{-0.1, 1.5} {
		proto := Protocol{Order: cluster.OrderBasic, ActivationProb: p}
		if _, err := New(g, ids, proto, radio.Perfect{}, rng.New(1)); err == nil {
			t.Errorf("activation prob %v accepted", p)
		}
	}
}

// TestRandomizedDaemonConverges: under a daemon that schedules each node
// with probability 0.5 per step, the protocol still converges to the same
// fixpoint as the synchronous oracle (the paper's execution semantics only
// require weak fairness).
func TestRandomizedDaemonConverges(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, ids := randomNetwork(seed, 70, 0.18)
		proto := Protocol{Order: cluster.OrderBasic, ActivationProb: 0.5}
		e := mustEngine(t, g, ids, proto, radio.Perfect{}, seed+2000)
		if _, err := e.RunUntilStable(3000, 20); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := cluster.Compute(g, cluster.Config{
			Values: metric.Density{}.Values(g),
			TieIDs: ids,
			Order:  cluster.OrderBasic,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := e.Assignment()
		for u := 0; u < g.N(); u++ {
			if got.Head[u] != want.Head[u] {
				t.Errorf("seed %d: node %d head = %d, oracle %d", seed, u, got.Head[u], want.Head[u])
			}
		}
	}
}

// TestRandomizedDaemonSelfStabilizes: corruption recovery must also hold
// under the randomized daemon.
func TestRandomizedDaemonSelfStabilizes(t *testing.T) {
	g, ids := randomNetwork(5, 60, 0.2)
	proto := Protocol{Order: cluster.OrderBasic, ActivationProb: 0.3}
	e := mustEngine(t, g, ids, proto, radio.Perfect{}, 2100)
	if _, err := e.RunUntilStable(5000, 20); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	e.Corrupt(1.0, CorruptAll, rng.New(2101))
	if _, err := e.RunUntilStable(5000, 20); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d head not healed under randomized daemon", u)
		}
	}
}

// TestSlowDaemonSlowerThanSynchronous: a sparse daemon takes (weakly) more
// steps to stabilize than the synchronous one on the same instance.
func TestSlowDaemonSlowerThanSynchronous(t *testing.T) {
	g, ids := randomNetwork(9, 80, 0.15)
	stepsFor := func(p float64) int {
		proto := Protocol{Order: cluster.OrderBasic, ActivationProb: p}
		e := mustEngine(t, g, ids, proto, radio.Perfect{}, 2200)
		at, err := e.RunUntilStable(5000, 20)
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	sync := stepsFor(1)
	sparse := stepsFor(0.2)
	if sparse < sync {
		t.Errorf("sparse daemon stabilized faster (%d) than synchronous (%d)", sparse, sync)
	}
}

// TestActivationZeroIsSynchronous: 0 is documented to mean "synchronous"
// (the zero value must be useful).
func TestActivationZeroIsSynchronous(t *testing.T) {
	g, ids := randomNetwork(11, 40, 0.25)
	a := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 2300)
	b := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic, ActivationProb: 1}, radio.Perfect{}, 2300)
	if err := a.Run(20); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(20); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	for u := range sa.HeadID {
		if sa.HeadID[u] != sb.HeadID[u] {
			t.Fatal("ActivationProb 0 and 1 diverged")
		}
	}
}
