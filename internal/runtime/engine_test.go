package runtime

import (
	"errors"
	"math"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/deploy"
	"selfstab/internal/geom"
	"selfstab/internal/metric"
	"selfstab/internal/paperex"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

func basicProtocol() Protocol {
	return Protocol{Order: cluster.OrderBasic}
}

func mustEngine(t *testing.T, g *topology.Graph, ids []int64, proto Protocol, m radio.Medium, seed int64) *Engine {
	t.Helper()
	e, err := New(g, ids, proto, m, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomNetwork(seed int64, n int, r float64) (*topology.Graph, []int64) {
	src := rng.New(seed)
	d := deploy.Uniform(n, geom.UnitSquare(), deploy.IDRandom, src)
	return topology.FromPoints(d.Points, r), d.IDs
}

func TestNewValidation(t *testing.T) {
	g, ids := randomNetwork(1, 20, 0.3)
	src := rng.New(1)
	if _, err := New(topology.New(0), nil, basicProtocol(), radio.Perfect{}, src); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := New(g, ids[:5], basicProtocol(), radio.Perfect{}, src); err == nil {
		t.Error("short ids accepted")
	}
	if _, err := New(g, ids, basicProtocol(), nil, src); err == nil {
		t.Error("nil medium accepted")
	}
	if _, err := New(g, ids, basicProtocol(), radio.Perfect{}, nil); err == nil {
		t.Error("nil source accepted")
	}
	dup := append([]int64(nil), ids...)
	dup[1] = dup[0]
	if _, err := New(g, dup, basicProtocol(), radio.Perfect{}, src); err == nil {
		t.Error("duplicate ids accepted")
	}
	bad := basicProtocol()
	bad.Order = 0
	if _, err := New(g, ids, bad, radio.Perfect{}, src); err == nil {
		t.Error("invalid order accepted")
	}
	dag := Protocol{Order: cluster.OrderBasic, UseDag: true, Gamma: 1}
	if _, err := New(g, ids, dag, radio.Perfect{}, src); err == nil {
		t.Error("gamma <= max degree accepted")
	}
	neg := basicProtocol()
	neg.CacheTTL = -1
	if _, err := New(g, ids, neg, radio.Perfect{}, src); err == nil {
		t.Error("negative ttl accepted")
	}
}

// TestStepKnowledgeSchedule is the paper's Table 2: what a node can compute
// after each step under the perfect medium.
func TestStepKnowledgeSchedule(t *testing.T) {
	g := paperex.Graph()
	ids := paperex.IDs()
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 1)

	// Step 1: every node knows exactly its 1-neighbors.
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		nbrs := g.Neighbors(u)
		cache := e.Node(u).cache
		if len(cache) != len(nbrs) {
			t.Fatalf("step 1: node %s knows %d neighbors, want %d",
				paperex.Names[u], len(cache), len(nbrs))
		}
		for _, v := range nbrs {
			if !cache.has(ids[v]) {
				t.Errorf("step 1: node %s missing neighbor %s", paperex.Names[u], paperex.Names[v])
			}
		}
	}

	// Step 2: densities are exact (2-neighborhood known).
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	oracle := metric.Density{}.Values(g)
	for u := 0; u < g.N(); u++ {
		if math.Abs(e.Node(u).Density()-oracle[u]) > 1e-12 {
			t.Errorf("step 2: node %s density = %v, want %v",
				paperex.Names[u], e.Node(u).Density(), oracle[u])
		}
	}

	// Step 3: parents (fathers) are exact.
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	for u, want := range paperex.WantParent {
		if got := e.Node(u).ParentID(); got != ids[want] {
			t.Errorf("step 3: F(%s) = id %d, want %s", paperex.Names[u], got, paperex.Names[want])
		}
	}
}

// TestConvergesToOracleOnPaperExample runs the full protocol to stability
// and compares heads with the worked example.
func TestConvergesToOracleOnPaperExample(t *testing.T) {
	g := paperex.Graph()
	ids := paperex.IDs()
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 1)
	stabilized, err := e.RunUntilStable(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stabilized > 10 {
		t.Errorf("stabilized at step %d; expected a handful of steps on a 9-node graph", stabilized)
	}
	for u, want := range paperex.WantHead {
		if got := e.Node(u).HeadID(); got != ids[want] {
			t.Errorf("H(%s) = id %d, want %s", paperex.Names[u], got, paperex.Names[want])
		}
	}
}

// TestConvergesToOracleRandom cross-checks the full message-passing stack
// against the static fixpoint oracle on random geometric graphs, including
// parents.
func TestConvergesToOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, ids := randomNetwork(seed, 80, 0.18)
		e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, seed+100)
		if _, err := e.RunUntilStable(500, 5); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := cluster.Compute(g, cluster.Config{
			Values: metric.Density{}.Values(g),
			TieIDs: ids,
			Order:  cluster.OrderBasic,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := e.Assignment()
		for u := 0; u < g.N(); u++ {
			if got.Head[u] != want.Head[u] {
				t.Errorf("seed %d: node %d head = %d, oracle %d", seed, u, got.Head[u], want.Head[u])
			}
			if got.Parent[u] != want.Parent[u] {
				t.Errorf("seed %d: node %d parent = %d, oracle %d", seed, u, got.Parent[u], want.Parent[u])
			}
		}
	}
}

// TestConvergesToOracleWithFusion checks the fusion rule end to end.
func TestConvergesToOracleWithFusion(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g, ids := randomNetwork(seed, 70, 0.14)
		proto := Protocol{Order: cluster.OrderBasic, Fusion: true}
		e := mustEngine(t, g, ids, proto, radio.Perfect{}, seed+200)
		if _, err := e.RunUntilStable(500, 8); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := cluster.Compute(g, cluster.Config{
			Values: metric.Density{}.Values(g),
			TieIDs: ids,
			Order:  cluster.OrderBasic,
			Fusion: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := e.Assignment()
		for u := 0; u < g.N(); u++ {
			if got.Head[u] != want.Head[u] {
				t.Errorf("seed %d: node %d head = %d, oracle %d", seed, u, got.Head[u], want.Head[u])
			}
		}
		if err := cluster.CheckInvariants(g, got, true); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestFusionRuntimePathExample is the 4.3 scenario at protocol level.
func TestFusionRuntimePathExample(t *testing.T) {
	g := topology.New(5)
	for _, edge := range [][2]int{{0, 1}, {1, 2}, {0, 3}, {2, 4}} {
		if err := g.AddEdge(edge[0], edge[1]); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int64{5, 9, 1, 7, 8}
	proto := Protocol{Order: cluster.OrderBasic, Fusion: true}
	e := mustEngine(t, g, ids, proto, radio.Perfect{}, 3)
	if _, err := e.RunUntilStable(100, 5); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		if got := e.Node(u).HeadID(); got != 1 {
			t.Errorf("node %d head id = %d, want 1 (node 2)", u, got)
		}
	}
	if !e.Node(2).IsHead() {
		t.Error("node 2 should claim headship")
	}
	if e.Node(0).IsHead() {
		t.Error("node 0 should have fused into node 2's cluster")
	}
}

// TestSelfStabilizationFromCorruption is the headline theorem: from an
// arbitrarily corrupted configuration the protocol re-converges to the
// legitimate one.
func TestSelfStabilizationFromCorruption(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, ids := randomNetwork(seed, 80, 0.18)
		e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, seed+300)
		if _, err := e.RunUntilStable(500, 5); err != nil {
			t.Fatal(err)
		}
		legit := e.Snapshot()

		e.Corrupt(1.0, CorruptAll, rng.New(seed+400))
		if _, err := e.RunUntilStable(500, 5); err != nil {
			t.Fatalf("seed %d: did not re-stabilize: %v", seed, err)
		}
		healed := e.Snapshot()
		for u := range legit.HeadID {
			if healed.HeadID[u] != legit.HeadID[u] {
				t.Errorf("seed %d: node %d head %d != legit %d",
					seed, u, healed.HeadID[u], legit.HeadID[u])
			}
			if math.Abs(healed.Density[u]-legit.Density[u]) > 1e-12 {
				t.Errorf("seed %d: node %d density not healed", seed, u)
			}
		}
	}
}

// TestSelfStabilizationPartialCorruption: corrupting half the nodes must
// also heal (faults need not be global).
func TestSelfStabilizationPartialCorruption(t *testing.T) {
	g, ids := randomNetwork(11, 100, 0.15)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 500)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	e.Corrupt(0.5, CorruptAll, rng.New(42))
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d head not healed", u)
		}
	}
}

// TestN1SelfStabilizes: with the DAG enabled, colors become locally unique
// from a cold start and again after corruption (Theorem 1).
func TestN1SelfStabilizes(t *testing.T) {
	g, ids := randomNetwork(5, 100, 0.15)
	delta := g.MaxDegree()
	proto := Protocol{
		Order:  cluster.OrderBasic,
		UseDag: true,
		Gamma:  int64(delta*delta + 1),
	}
	e := mustEngine(t, g, ids, proto, radio.Perfect{}, 600)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	if !e.DagLocallyUnique() {
		t.Fatal("colors not locally unique after stabilization")
	}

	e.Corrupt(1.0, CorruptAll, rng.New(601))
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	if !e.DagLocallyUnique() {
		t.Error("colors not locally unique after corruption recovery")
	}
	// The cluster layer must also be legitimate w.r.t. the realized colors.
	snap := e.Snapshot()
	want, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: snap.TieID,
		AppIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Assignment()
	for u := 0; u < g.N(); u++ {
		if got.Head[u] != want.Head[u] {
			t.Errorf("node %d head = %d, oracle (with realized colors) %d",
				u, got.Head[u], want.Head[u])
		}
	}
}

// TestConvergenceUnderLossyMedium: with tau < 1 stabilization still happens
// (with probability 1), just later.
func TestConvergenceUnderLossyMedium(t *testing.T) {
	g, ids := randomNetwork(9, 60, 0.2)
	m, err := radio.NewBernoulli(0.5, rng.New(700))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, g, ids, basicProtocol(), m, 701)
	if _, err := e.RunUntilStable(2000, 20); err != nil {
		t.Fatal(err)
	}
	want, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Assignment()
	for u := 0; u < g.N(); u++ {
		if got.Head[u] != want.Head[u] {
			t.Errorf("node %d head = %d, oracle %d", u, got.Head[u], want.Head[u])
		}
	}
}

// TestConvergenceUnderSlottedMedium: same, with emergent tau.
func TestConvergenceUnderSlottedMedium(t *testing.T) {
	g, ids := randomNetwork(13, 50, 0.2)
	slots := 4 * (g.MaxDegree() + 1)
	m, err := radio.NewSlotted(slots, rng.New(800))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, g, ids, basicProtocol(), m, 801)
	if _, err := e.RunUntilStable(3000, 20); err != nil {
		t.Fatal(err)
	}
	got := e.Assignment()
	want, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	mismatches := 0
	for u := 0; u < g.N(); u++ {
		if got.Head[u] != want.Head[u] {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Errorf("%d/%d heads differ from oracle under slotted medium", mismatches, g.N())
	}
}

func TestEngineDeterminism(t *testing.T) {
	g, ids := randomNetwork(21, 60, 0.18)
	proto := Protocol{Order: cluster.OrderBasic, UseDag: true, Gamma: int64(g.MaxDegree()*g.MaxDegree() + 1)}
	m1, err := radio.NewBernoulli(0.7, rng.New(900))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := radio.NewBernoulli(0.7, rng.New(900))
	if err != nil {
		t.Fatal(err)
	}
	e1 := mustEngine(t, g, ids, proto, m1, 901)
	e2 := mustEngine(t, g, ids, proto, m2, 901)
	if err := e1.Run(50); err != nil {
		t.Fatal(err)
	}
	if err := e2.Run(50); err != nil {
		t.Fatal(err)
	}
	s1, s2 := e1.Snapshot(), e2.Snapshot()
	for u := range s1.HeadID {
		if s1.HeadID[u] != s2.HeadID[u] || s1.TieID[u] != s2.TieID[u] || s1.Density[u] != s2.Density[u] {
			t.Fatalf("node %d diverged between identical runs", u)
		}
	}
}

func TestRunUntilStableBudget(t *testing.T) {
	// A two-node network under an always-lossy... we cannot make tau 0, so
	// instead use a tiny budget that cannot possibly suffice.
	g, ids := randomNetwork(31, 40, 0.2)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 1000)
	if _, err := e.RunUntilStable(1, 10); !errors.Is(err, ErrNotStabilized) {
		t.Errorf("want ErrNotStabilized, got %v", err)
	}
}

func TestSetGraphValidation(t *testing.T) {
	g, ids := randomNetwork(41, 30, 0.2)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 1100)
	if err := e.SetGraph(topology.New(5)); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if err := e.SetGraph(g.Clone()); err != nil {
		t.Errorf("legitimate swap rejected: %v", err)
	}
}

// TestTopologyChangeHeals: moving to a new topology with TTL-based eviction
// re-stabilizes to the new oracle.
func TestTopologyChangeHeals(t *testing.T) {
	g1, ids := randomNetwork(51, 60, 0.2)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 3}
	e := mustEngine(t, g1, ids, proto, radio.Perfect{}, 1200)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	g2, _ := randomNetwork(52, 60, 0.2) // different positions, same size
	if err := e.SetGraph(g2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	want, err := cluster.Compute(g2, cluster.Config{
		Values: metric.Density{}.Values(g2),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Assignment()
	for u := 0; u < g2.N(); u++ {
		if got.Head[u] != want.Head[u] {
			t.Errorf("node %d head = %d, oracle %d after topology change", u, got.Head[u], want.Head[u])
		}
	}
}

// TestStickyHysteresis: under the sticky order an incumbent head with a
// density tie survives a challenger with a smaller id; under the basic
// order it does not.
func TestStickyHysteresis(t *testing.T) {
	// Two nodes, equal density (1 each), ids 9 and 2.
	g := topology.New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	ids := []int64{9, 2}

	run := func(order cluster.Order) *Engine {
		e := mustEngine(t, g, ids, Protocol{Order: order}, radio.Perfect{}, 1300)
		// Pre-seed a converged incumbent configuration: node 0 (id 9) is
		// head, node 1 has joined it, and both caches already hold the
		// correct view (otherwise the cold-cache race re-runs the initial
		// election and incumbency is moot).
		e.nodes[0].density, e.nodes[1].density = 1, 1
		e.nodes[0].headID, e.nodes[0].parent = 9, 9
		e.nodes[1].headID, e.nodes[1].parent = 9, 9
		e.nodes[0].cache.put(cacheEntry{frame: Frame{
			ID: 2, TieID: 2, Density: 1, HeadID: 9, Nbrs: []NbrSummary{{ID: 9, TieID: 9, Density: 1, HeadID: 9}},
		}})
		e.nodes[1].cache.put(cacheEntry{frame: Frame{
			ID: 9, TieID: 9, Density: 1, HeadID: 9, Nbrs: []NbrSummary{{ID: 2, TieID: 2, Density: 1, HeadID: 9}},
		}})
		if _, err := e.RunUntilStable(100, 5); err != nil {
			t.Fatal(err)
		}
		return e
	}

	sticky := run(cluster.OrderSticky)
	if !sticky.Node(0).IsHead() {
		t.Errorf("sticky: incumbent lost headship (head of node 1 = %d)", sticky.Node(1).HeadID())
	}
	basic := run(cluster.OrderBasic)
	if !basic.Node(1).IsHead() {
		t.Error("basic: smaller id should take headship")
	}
}

func TestSnapshotIndependentOfEngine(t *testing.T) {
	g, ids := randomNetwork(61, 20, 0.3)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 1400)
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	before := snap.HeadID[0]
	snap.HeadID[0] = -999
	if e.Node(0).HeadID() == -999 {
		t.Error("snapshot aliases engine state")
	}
	snap.HeadID[0] = before
}

func TestAssignmentUnknownIDs(t *testing.T) {
	g, ids := randomNetwork(71, 20, 0.3)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 1500)
	e.nodes[0].headID = 123456 // garbage id
	a := e.Assignment()
	if a.Head[0] != -1 {
		t.Errorf("unknown head id mapped to %d, want -1", a.Head[0])
	}
}

// TestChurnNodeDisappears: removing a node's links (crash) lets the rest
// re-stabilize; the crashed node's entries age out of caches.
func TestChurnNodeDisappears(t *testing.T) {
	g, ids := randomNetwork(81, 60, 0.2)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 3}
	e := mustEngine(t, g, ids, proto, radio.Perfect{}, 1600)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	// Crash the node with the most neighbors (likely a head).
	victim := 0
	for u := 1; u < g.N(); u++ {
		if g.Degree(u) > g.Degree(victim) {
			victim = u
		}
	}
	g2 := g.Clone()
	g2.RemoveNode(victim)
	if err := e.SetGraph(g2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	// No surviving node may reference the victim as head or parent.
	vid := ids[victim]
	for u := 0; u < g2.N(); u++ {
		if u == victim {
			continue
		}
		if e.Node(u).HeadID() == vid && g2.Degree(u) > 0 {
			t.Errorf("node %d still heads to crashed node", u)
		}
	}
}
