package runtime

import (
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
)

// BenchmarkStep1000 measures one Δ(τ) protocol step at paper scale
// (1000 nodes, perfect medium): broadcast, ingest, three guards per node.
func BenchmarkStep1000(b *testing.B) {
	g, ids := randomNetwork(1, 1000, 0.1)
	e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	// Warm the caches so the steady-state cost is measured.
	if err := e.Run(5); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStep1000Fusion adds the 2-hop fusion scan per step.
func BenchmarkStep1000Fusion(b *testing.B) {
	g, ids := randomNetwork(2, 1000, 0.1)
	proto := Protocol{Order: cluster.OrderBasic, Fusion: true}
	e, err := New(g, ids, proto, radio.Perfect{}, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStabilize measures a full cold-start stabilization of a
// 300-node network.
func BenchmarkColdStabilize(b *testing.B) {
	g, ids := randomNetwork(3, 300, 0.12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(3))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.RunUntilStable(5000, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery measures corruption-to-legitimacy healing time cost.
func BenchmarkRecovery(b *testing.B) {
	g, ids := randomNetwork(4, 300, 0.12)
	e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(4))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.RunUntilStable(5000, 5); err != nil {
		b.Fatal(err)
	}
	faults := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Corrupt(1.0, CorruptAll, faults)
		if _, err := e.RunUntilStable(5000, 5); err != nil {
			b.Fatal(err)
		}
	}
}
