package runtime

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"selfstab/internal/obs"
)

// Tiled (sharded) frontier stepping.
//
// The protocol is local: a node's guards read only its own cache, and its
// cache can only change when a radio neighbor broadcast new content — so a
// spatial partition of the deployment region into tiles bounds cross-tile
// influence by the unit-disk radius. The tiled step engine exploits that:
// every node is owned by exactly one tile (tileOf, a pure function of
// position), each tile owns its slice of the frontier worklist, and the
// step's phases run tile-parallel with barriers between them:
//
//  1. split     (sequential) — the global pend worklist is dealt out to
//     per-tile exec lists, preserving activation order within each tile;
//  2. expansion (tile-parallel) — each tile walks its seeds and queues the
//     alive radio neighborhoods of nodes about to broadcast changed
//     content: same-tile neighbors append to the tile's own exec list,
//     cross-tile neighbors go into a per-(source, dest) halo outbox —
//     never touching another tile's flags, so there are no data races and
//     no locks;
//  3. halo merge (tile-parallel over destinations) — each tile drains the
//     outboxes addressed to it in source-tile order, deduplicating against
//     its own exec flags. Because radio reach is one unit-disk radius,
//     only boundary nodes ever cross, so halo traffic is O(perimeter);
//  4. frame fill, then ingest+guards (tile-parallel, barriered) — the
//     same per-node work as the flat frontier path; the barrier between
//     the two phases is what lets a node read any neighbor's freshly
//     filled frame, including across tiles;
//  5. re-arm    (sequential, tile order) — survivors rejoin the global
//     pend worklist.
//
// Determinism contract: per-node work is independent and writes only the
// node's own state; nothing on this path consumes rng (frontier stepping
// already requires a lossless medium and a synchronous daemon); and every
// cross-tile merge drains in fixed tile order. The execution is therefore
// bit-identical to the flat frontier path — and hence to the dense scan —
// at any tile count and any worker count, pinned by the mixed-trace
// oracles in tile_test.go.

// SetTiles installs a spatial tiling: tiles is the tile count, assign maps
// a node index to its owning tile (typically topology.Tiling.TileOf of the
// node's position; results outside [0, tiles) are clamped). tiles <= 1
// removes the tiling and returns the engine to flat frontier stepping.
// The assignment function is retained: Append uses it to place arrivals
// and Retile to re-place movers. Call only between steps.
func (e *Engine) SetTiles(tiles int, assign func(i int) int) error {
	if tiles <= 1 {
		e.tiles = 1
		e.tileOf = nil
		e.tileAssign = nil
		e.tileExec = nil
		e.tileSeeds = nil
		e.tileOutbox = nil
		e.tileChanged = nil
		return nil
	}
	if assign == nil {
		return fmt.Errorf("runtime: %d tiles need an assignment function", tiles)
	}
	e.tiles = tiles
	e.tileAssign = assign
	e.tileOf = make([]int32, len(e.nodes))
	for i := range e.nodes {
		e.tileOf[i] = e.clampTile(assign(i))
	}
	e.tileExec = make([][]int32, tiles)
	e.tileSeeds = make([]int, tiles)
	e.tileOutbox = make([][]int32, tiles*tiles)
	e.tileChanged = make([]bool, tiles)
	return nil
}

// Tiles returns the current tile count (1 when untiled).
func (e *Engine) Tiles() int { return e.tiles }

// Retile recomputes node i's tile ownership from the assignment function —
// call it whenever the node's position changed (topology.GridIndex fires
// its move hook for exactly that set). Out-of-range indices are ignored, a
// no-op without a tiling. Sequential only: call between steps or from a
// pre-step hook, like Activate.
func (e *Engine) Retile(i int) {
	if e.tiles <= 1 || i < 0 || i >= len(e.tileOf) {
		return
	}
	e.tileOf[i] = e.clampTile(e.tileAssign(i))
}

func (e *Engine) clampTile(t int) int32 {
	if t < 0 {
		return 0
	}
	if t >= e.tiles {
		return int32(e.tiles - 1)
	}
	return int32(t)
}

// appendTile grows the tile-ownership map for a node just appended at
// index i (no-op without a tiling).
func (e *Engine) appendTile(i int) {
	if e.tiles <= 1 {
		return
	}
	e.tileOf = append(e.tileOf, e.clampTile(e.tileAssign(i)))
}

// compactTiles applies the dead-slot recycling remap to the ownership map
// (no-op without a tiling). Survivors keep their tile: ownership is a
// function of position, and Compact moves positions with their slots.
func (e *Engine) compactTiles(remap []int32, newN int) {
	if e.tiles <= 1 {
		return
	}
	for old, nw := range remap {
		if nw >= 0 {
			e.tileOf[nw] = e.tileOf[old]
		}
	}
	e.tileOf = e.tileOf[:newN]
}

// forEachTile runs fn(t) for every tile, on up to workers goroutines (one
// tile is never split across workers — tile state is single-writer by
// construction). With one worker, or a single tile, it runs inline.
func (e *Engine) forEachTile(fn func(t int)) {
	T := e.tiles
	workers := e.workers
	if workers == 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > T {
		workers = T
	}
	if workers <= 1 {
		for t := 0; t < T; t++ {
			fn(t)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= T {
					return
				}
				fn(t)
			}
		}()
	}
	wg.Wait()
}

// mergeHalos drains every halo outbox addressed to destination tile d in
// source-tile order — fixed order, so the resulting exec lists are
// reproducible run to run — deduplicating against d's own flags (a
// boundary node may be queued by several source tiles, or already be on
// its own tile's list). Tile-parallel over destinations: each tile
// writes only its own execFlag entries, so the phase is race-free.
//
//selfstab:hotpath
func (e *Engine) mergeHalos(d int) {
	probe := e.probe
	if probe != nil {
		probe.TileSpanBegin(obs.PhaseHalo, d)
	}
	T := e.tiles
	for s := 0; s < T; s++ {
		for _, w := range e.tileOutbox[s*T+d] {
			if !e.execFlag[w] {
				e.execFlag[w] = true
				e.tileExec[d] = append(e.tileExec[d], w)
			}
		}
	}
	if probe != nil {
		probe.TileSpanEnd(obs.PhaseHalo, d)
	}
}

// stepTiled is stepSparse's body under a tiling: identical semantics and
// bookkeeping, with the worklist sharded by tile ownership and every phase
// tile-parallel. The caller (stepSparse) has already run the disruption
// close and the pre-step hook.
func (e *Engine) stepTiled() error {
	T := e.tiles
	probe := e.probe

	// Split (sequential): deal the global worklist out to the owning
	// tiles' exec lists. pend is deduplicated (pendFlag), so execFlag can
	// be set unconditionally.
	for t := 0; t < T; t++ {
		e.tileExec[t] = e.tileExec[t][:0]
	}
	for i := range e.tileOutbox {
		e.tileOutbox[i] = e.tileOutbox[i][:0]
	}
	for _, v := range e.pend {
		t := e.tileOf[v]
		e.execFlag[v] = true
		e.tileExec[t] = append(e.tileExec[t], v)
	}
	for t := 0; t < T; t++ {
		e.tileSeeds[t] = len(e.tileExec[t])
	}
	for _, v := range e.pend {
		e.pendFlag[v] = false
	}
	e.pend = e.pend[:0]

	if probe != nil {
		probe.PhaseBegin(obs.PhaseHalo)
	}
	// Expansion (tile-parallel): each tile pulls in the alive radio
	// neighborhoods of its seeds about to broadcast changed content.
	// Same-tile neighbors join the tile's own exec list; cross-tile
	// neighbors are staged in the per-(source, dest) halo outbox — a
	// tile's execFlag entries are written only by the tile that owns the
	// node, so the phase is race-free without locks.
	e.forEachTile(func(t int) {
		for k := 0; k < e.tileSeeds[t]; k++ {
			v := e.tileExec[t][k]
			if e.status[v] != StatusAlive || !e.nodes[v].frameDirty {
				continue
			}
			for _, w := range e.g.Neighbors(int(v)) {
				if e.status[w] != StatusAlive {
					continue
				}
				if wt := int(e.tileOf[w]); wt != t {
					e.tileOutbox[t*T+wt] = append(e.tileOutbox[t*T+wt], int32(w))
				} else if !e.execFlag[w] {
					e.execFlag[w] = true
					e.tileExec[t] = append(e.tileExec[t], int32(w))
				}
			}
		}
	})

	// Halo merge (tile-parallel over destinations): see mergeHalos.
	e.forEachTile(e.mergeHalos)
	if probe != nil {
		probe.PhaseEnd(obs.PhaseHalo)
		crossings := 0
		for i := range e.tileOutbox {
			crossings += len(e.tileOutbox[i])
		}
		probe.Counter(obs.CtrHaloCross, int64(crossings))
	}

	total := 0
	for t := 0; t < T; t++ {
		total += len(e.tileExec[t])
	}
	if probe != nil {
		probe.Counter(obs.CtrExec, int64(total))
	}
	if total == 0 {
		// Fully quiescent: identical no-op to the flat frontier path.
		e.stepChanged = false
		e.step++
		if e.postStep != nil {
			return e.postStep(e.step)
		}
		return nil
	}

	if probe != nil {
		probe.PhaseBegin(obs.PhaseFrame)
	}
	// Phase 1 (tile-parallel): refresh outgoing frames. Every frameDirty
	// node is on some tile's exec list (the global step invariant), so
	// after the barrier the whole frame arena is current — which is what
	// lets phase 2 read frames across tile boundaries.
	e.forEachTile(func(t int) {
		for _, v := range e.tileExec[t] {
			if e.status[v] != StatusAlive {
				continue
			}
			if n := e.nodes[v]; n.frameDirty {
				n.fillFrame(&e.out[v])
				n.frameDirty = false
			}
		}
	})
	if probe != nil {
		probe.PhaseEnd(obs.PhaseFrame)
		probe.PhaseBegin(obs.PhaseIngest)
	}

	// Phase 2+3 (tile-parallel): ingest + guards. Reads: the (now frozen)
	// frame arena, adjacency, statuses. Writes: only the node's own cache
	// and shared variables, plus its own disrupt.changed slot — per-node
	// disjoint, so tile boundaries need no synchronization beyond the
	// phase barrier.
	ttl := e.proto.CacheTTL
	tracking := e.disrupt.active
	e.forEachTile(func(t int) {
		changed := false
		for _, v := range e.tileExec[t] {
			i := int(v)
			if e.status[i] != StatusAlive {
				continue
			}
			n := e.nodes[i]
			n.ingestAdj(e.out, e.g.Neighbors(i), e.sendMask, ttl)
			if !n.dirty {
				continue
			}
			n.dirty = false
			c := n.guardN1(e.proto)
			c = n.guardR1(e.densityScaleOf(i)) || c
			c = n.guardR2(e.proto) || c
			if c {
				n.dirty = true
				n.frameDirty = true
				if tracking {
					e.disrupt.changed[i] = true
				}
				changed = true
			}
		}
		e.tileChanged[t] = changed
	})
	if probe != nil {
		probe.PhaseEnd(obs.PhaseIngest)
	}
	e.stepChanged = false
	for t := 0; t < T; t++ {
		if e.tileChanged[t] {
			e.stepChanged = true
		}
	}

	// Re-arm (sequential, tile order): survivors rejoin the global pend
	// worklist — the between-step representation stays tile-agnostic, so
	// Activate, Compact and the churn mutators need no tile awareness.
	for t := 0; t < T; t++ {
		for _, v := range e.tileExec[t] {
			e.execFlag[v] = false
			if e.status[v] != StatusAlive {
				continue
			}
			n := e.nodes[v]
			if (n.dirty || n.frameDirty || n.stale) && !e.pendFlag[v] {
				e.pendFlag[v] = true
				e.pend = append(e.pend, v)
			}
		}
	}

	if e.stepChanged {
		e.epoch++
		e.lastChange = e.step + 1
	}
	e.step++
	if e.postStep != nil {
		return e.postStep(e.step)
	}
	return nil
}
