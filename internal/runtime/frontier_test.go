package runtime

import (
	"fmt"
	"reflect"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/geom"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// TestSparseEligibility: frontier stepping auto-enables exactly for a
// lossless medium with a synchronous daemon, and SetSparse enforces it.
func TestSparseEligibility(t *testing.T) {
	g, ids := randomNetwork(41, 40, 0.2)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 41)
	if !e.Sparse() {
		t.Fatal("perfect medium + synchronous daemon did not enable frontier stepping")
	}
	if err := e.SetSparse(false); err != nil {
		t.Fatal(err)
	}
	if e.Sparse() {
		t.Fatal("SetSparse(false) did not disable")
	}
	if err := e.SetSparse(true); err != nil {
		t.Fatal(err)
	}

	lossy, err := radio.NewBernoulli(0.9, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	e2 := mustEngine(t, g, ids, basicProtocol(), lossy, 42)
	if e2.Sparse() {
		t.Fatal("lossy medium enabled frontier stepping")
	}
	if err := e2.SetSparse(true); err == nil {
		t.Fatal("SetSparse(true) accepted a lossy medium")
	}
	if got := e2.FrontierLen(); got != 0 {
		t.Fatalf("dense-only engine carries a %d-entry worklist", got)
	}

	daemon := basicProtocol()
	daemon.ActivationProb = 0.5
	e3 := mustEngine(t, g, ids, daemon, radio.Perfect{}, 43)
	if e3.Sparse() {
		t.Fatal("randomized daemon enabled frontier stepping")
	}
}

// TestFrontierQuiescence: once stabilized the worklist drains to empty
// and further steps are O(1) no-ops on protocol state.
func TestFrontierQuiescence(t *testing.T) {
	g, ids := randomNetwork(44, 300, 0.1)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 44)
	if _, err := e.RunUntilStable(2000, 5); err != nil {
		t.Fatal(err)
	}
	if got := e.FrontierLen(); got != 0 {
		t.Fatalf("stabilized network keeps %d nodes on the frontier", got)
	}
	before := e.Snapshot()
	if err := e.Run(25); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, e.Snapshot()) {
		t.Fatal("quiescent steps changed protocol state")
	}
	if e.FrontierLen() != 0 {
		t.Fatal("quiescent steps re-populated the frontier")
	}
}

// twin is one half of the sparse-vs-dense equivalence harness: a
// GridIndex-maintained topology plus an engine over it, driven by a
// recorded operation trace so both twins see byte-identical inputs.
type twin struct {
	gi      *topology.GridIndex
	e       *Engine
	pts     []geom.Point
	corrupt *rng.Source
	nextID  int64
}

func newTwin(t *testing.T, seed int64, n int, r float64, proto Protocol, sparse bool, workers int) *twin {
	t.Helper()
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	ids := make([]int64, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
		ids[i] = int64(i)
	}
	gi := topology.NewGridIndexInRegion(pts, r, geom.UnitSquare())
	e, err := New(gi.Graph(), ids, proto, radio.Perfect{}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetSparse(sparse); err != nil {
		t.Fatal(err)
	}
	if sparse {
		gi.SetOnAdjacencyChange(e.Activate)
	}
	e.SetParallelism(workers)
	return &twin{gi: gi, e: e, pts: pts, corrupt: rng.New(seed + 2), nextID: int64(n)}
}

// traceOp is one resolved operation of the mixed trace.
type traceOp struct {
	kind  string
	node  int
	point geom.Point
	moves []int
	jits  []geom.Point
	frac  float64
	steps int
}

// apply drives one operation into the twin, mirroring the grid/engine
// ordering contracts of the public churn layer.
func (tw *twin) apply(t *testing.T, op traceOp) {
	t.Helper()
	switch op.kind {
	case "move":
		for k, i := range op.moves {
			tw.pts[i] = op.jits[k]
		}
		if _, err := tw.gi.Update(tw.pts); err != nil {
			t.Fatal(err)
		}
		tw.e.NoteTopologyChanged()
	case "append":
		tw.gi.Append(op.point)
		tw.pts = append(tw.pts, op.point)
		if _, err := tw.e.Append(tw.nextID); err != nil {
			t.Fatal(err)
		}
		tw.nextID++
	case "kill":
		if err := tw.e.Kill(op.node); err != nil {
			t.Fatal(err)
		}
		tw.gi.Deactivate(op.node)
	case "reboot":
		wasSleeping := tw.e.Status(op.node) == StatusSleeping
		if err := tw.e.Reboot(op.node); err != nil {
			t.Fatal(err)
		}
		if wasSleeping {
			tw.gi.Reactivate(op.node)
		}
	case "sleep":
		if err := tw.e.Sleep(op.node); err != nil {
			t.Fatal(err)
		}
		tw.gi.Deactivate(op.node)
	case "wake":
		tw.gi.Reactivate(op.node)
		if err := tw.e.Wake(op.node); err != nil {
			t.Fatal(err)
		}
	case "corrupt":
		tw.e.Corrupt(op.frac, CorruptAll, tw.corrupt)
	case "step":
		if err := tw.e.Run(op.steps); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown trace op %q", op.kind)
	}
}

// pickStatus returns a uniformly chosen node in the wanted status, or -1.
func pickStatus(e *Engine, src *rng.Source, want NodeStatus) int {
	count := 0
	for i := 0; i < e.N(); i++ {
		if e.Status(i) == want {
			count++
		}
	}
	if count == 0 {
		return -1
	}
	k := src.Intn(count)
	for i := 0; i < e.N(); i++ {
		if e.Status(i) != want {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return -1
}

// buildTrace generates a mixed mobility + churn + corruption trace by
// resolving random operations against a scratch twin (so victim picks
// stay valid), recording every op for replay against the other twins.
func buildTrace(t *testing.T, seed int64, n int, r float64, proto Protocol, ops int) []traceOp {
	t.Helper()
	scratch := newTwin(t, seed, n, r, proto, true, 1)
	script := rng.New(seed + 99)
	var trace []traceOp
	emit := func(op traceOp) {
		scratch.apply(t, op)
		trace = append(trace, op)
	}
	emit(traceOp{kind: "step", steps: 30}) // partial convergence first
	for k := 0; k < ops; k++ {
		switch script.Intn(7) {
		case 0: // jitter a handful of nodes
			m := 1 + script.Intn(5)
			op := traceOp{kind: "move"}
			for j := 0; j < m; j++ {
				i := script.Intn(len(scratch.pts))
				p := scratch.pts[i]
				p.X += (script.Float64() - 0.5) * 0.1
				p.Y += (script.Float64() - 0.5) * 0.1
				if p.X < 0 {
					p.X = 0
				} else if p.X > 1 {
					p.X = 1
				}
				if p.Y < 0 {
					p.Y = 0
				} else if p.Y > 1 {
					p.Y = 1
				}
				op.moves = append(op.moves, i)
				op.jits = append(op.jits, p)
			}
			emit(op)
		case 1:
			emit(traceOp{kind: "append", point: geom.Point{X: script.Float64(), Y: script.Float64()}})
		case 2:
			if i := pickStatus(scratch.e, script, StatusAlive); i >= 0 && scratch.e.AliveCount() > 3 {
				emit(traceOp{kind: "kill", node: i})
			}
		case 3:
			if i := pickStatus(scratch.e, script, StatusAlive); i >= 0 {
				emit(traceOp{kind: "reboot", node: i})
			}
		case 4:
			if i := pickStatus(scratch.e, script, StatusAlive); i >= 0 && scratch.e.AliveCount() > 3 {
				emit(traceOp{kind: "sleep", node: i})
			}
		case 5:
			if i := pickStatus(scratch.e, script, StatusSleeping); i >= 0 {
				emit(traceOp{kind: "wake", node: i})
			}
		case 6:
			emit(traceOp{kind: "corrupt", frac: 0.15})
		}
		emit(traceOp{kind: "step", steps: 1 + script.Intn(4)})
	}
	emit(traceOp{kind: "step", steps: 120}) // settle
	return trace
}

func compareTwins(t *testing.T, label string, a, b *twin) {
	t.Helper()
	sa, sb := a.e.Snapshot(), b.e.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		for i := range sa.IDs {
			if sa.TieID[i] != sb.TieID[i] || sa.Density[i] != sb.Density[i] ||
				sa.HeadID[i] != sb.HeadID[i] || sa.Parent[i] != sb.Parent[i] {
				t.Fatalf("%s: node %d diverged: dense (%d %v %d %d) vs sparse (%d %v %d %d)",
					label, i, sa.TieID[i], sa.Density[i], sa.HeadID[i], sa.Parent[i],
					sb.TieID[i], sb.Density[i], sb.HeadID[i], sb.Parent[i])
			}
		}
		t.Fatalf("%s: snapshots diverged", label)
	}
	for i := 0; i < a.e.N(); i++ {
		if a.e.Status(i) != b.e.Status(i) {
			t.Fatalf("%s: node %d status %s vs %s", label, i, a.e.Status(i), b.e.Status(i))
		}
	}
	if a.e.Epoch() != b.e.Epoch() {
		t.Fatalf("%s: epochs diverged: %d vs %d", label, a.e.Epoch(), b.e.Epoch())
	}
	ra, rb := a.e.DisruptionRecords(), b.e.DisruptionRecords()
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("%s: ledgers diverged:\n dense: %+v\nsparse: %+v", label, ra, rb)
	}
}

// TestSparseMatchesDenseMixedTrace is the frontier engine's equivalence
// oracle: over randomized mixed traces — mobility jitter through the
// incremental grid, node churn, corruption, interleaved stepping — the
// frontier execution must be bit-identical to the full scan, at one and
// at four workers, with and without the DAG/fusion/TTL layers.
func TestSparseMatchesDenseMixedTrace(t *testing.T) {
	protos := map[string]Protocol{
		"basic-ttl4": {Order: cluster.OrderBasic, CacheTTL: 4},
		"dag-fusion": {Order: cluster.OrderSticky, CacheTTL: 3, UseDag: true, Gamma: 1 << 14, Fusion: true},
	}
	for name, proto := range protos {
		for _, seed := range []int64{1, 2, 3} {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/seed%d/w%d", name, seed, workers), func(t *testing.T) {
					const n, r = 120, 0.14
					trace := buildTrace(t, seed*1000, n, r, proto, 40)
					dense := newTwin(t, seed*1000, n, r, proto, false, workers)
					sparse := newTwin(t, seed*1000, n, r, proto, true, workers)
					for k, op := range trace {
						dense.apply(t, op)
						sparse.apply(t, op)
						if op.kind == "step" {
							compareTwins(t, fmt.Sprintf("op %d (%s)", k, op.kind), dense, sparse)
						}
					}
					// The settled sparse twin must also have drained its
					// worklist (quiescence is what makes it O(1)).
					if _, err := sparse.e.RunUntilStable(3000, 5); err != nil {
						t.Fatal(err)
					}
					if _, err := dense.e.RunUntilStable(3000, 5); err != nil {
						t.Fatal(err)
					}
					compareTwins(t, "final", dense, sparse)
					if got := sparse.e.FrontierLen(); got != 0 {
						t.Fatalf("stabilized sparse twin keeps %d nodes on the frontier", got)
					}
				})
			}
		}
	}
}

// TestEngineCompactRemap: the remap plan drops exactly the dead slots
// and preserves survivor order.
func TestEngineCompactRemap(t *testing.T) {
	g, ids := randomNetwork(77, 30, 0.2)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 77)
	if remap, n := e.CompactionRemap(); remap != nil || n != 30 {
		t.Fatalf("remap on a fully-alive engine: %v, %d", remap, n)
	}
	for _, i := range []int{3, 7, 20} {
		if err := e.Kill(i); err != nil {
			t.Fatal(err)
		}
		e.Graph().RemoveNode(i)
	}
	remap, n := e.CompactionRemap()
	if n != 27 {
		t.Fatalf("newN = %d, want 27", n)
	}
	next := int32(0)
	for old, nw := range remap {
		switch old {
		case 3, 7, 20:
			if nw != -1 {
				t.Fatalf("dead slot %d kept index %d", old, nw)
			}
		default:
			if nw != next {
				t.Fatalf("survivor %d remapped to %d, want %d", old, nw, next)
			}
			next++
		}
	}
	if e.DeadCount() != 3 {
		t.Fatalf("DeadCount = %d, want 3", e.DeadCount())
	}
}
