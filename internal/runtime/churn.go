package runtime

import (
	"fmt"

	"selfstab/internal/obs"
)

// NodeStatus is a node slot's lifecycle state. Slots are never recycled:
// a dead node keeps its dense index forever so per-node arrays across the
// whole stack stay aligned under churn.
type NodeStatus int8

const (
	// StatusAlive is a normally operating node.
	StatusAlive NodeStatus = iota
	// StatusSleeping is a duty-cycled node: radio off, state frozen. Wake
	// resumes it with whatever (possibly stale) cache it had — the
	// self-stabilization property is what makes that safe.
	StatusSleeping
	// StatusDead is a departed node: radio off, state cleared, never
	// coming back (a rebooting node is a Reboot of a live slot, a new
	// arrival is an Append).
	StatusDead
)

// String implements fmt.Stringer.
func (s NodeStatus) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSleeping:
		return "sleeping"
	case StatusDead:
		return "dead"
	}
	return fmt.Sprintf("NodeStatus(%d)", int8(s))
}

// ChurnKind is a bitmask of the disruption kinds folded into one
// convergence-ledger episode.
type ChurnKind uint8

const (
	// ChurnJoin is a node arrival (Append).
	ChurnJoin ChurnKind = 1 << iota
	// ChurnLeave is a permanent departure (Kill).
	ChurnLeave
	// ChurnCrash is a state-losing reboot (Reboot).
	ChurnCrash
	// ChurnSleep is a duty-cycle power-down (Sleep).
	ChurnSleep
	// ChurnWake is a duty-cycle power-up (Wake).
	ChurnWake
	// ChurnFault is transient state corruption (Corrupt).
	ChurnFault
	// ChurnAttack is an adversarial disruption: a byzantine density
	// inflation (MarkAttack) or its plausibility eviction (Evict). Kept
	// distinct from the benign kinds so the convergence ledger can score
	// steps-to-restabilize for attack episodes separately.
	ChurnAttack
)

// String renders the set, e.g. "join|crash".
func (k ChurnKind) String() string {
	names := []struct {
		bit  ChurnKind
		name string
	}{
		{ChurnJoin, "join"}, {ChurnLeave, "leave"}, {ChurnCrash, "crash"},
		{ChurnSleep, "sleep"}, {ChurnWake, "wake"}, {ChurnFault, "fault"},
		{ChurnAttack, "attack"},
	}
	out := ""
	for _, n := range names {
		if k&n.bit == 0 {
			continue
		}
		if out != "" {
			out += "|"
		}
		out += n.name
	}
	if out == "" {
		return "none"
	}
	return out
}

// DisruptionRecord is one closed episode of the convergence ledger: a
// burst of disruptions (possibly a single one) followed by the network
// re-stabilizing. It makes the paper's self-stabilization claim
// measurable per disruption instead of per run.
type DisruptionRecord struct {
	// Step is the completed-step count at which the episode opened.
	Step int
	// Kinds is the set of disruption kinds folded into the episode.
	Kinds ChurnKind
	// Ops counts the individual disruptions (node joins, crashes, ...).
	Ops int
	// StepsToStabilize is the number of steps from the episode opening to
	// the last step that changed any shared variable (0: the disruption
	// changed nothing the protocol had to react to).
	StepsToStabilize int
	// AffectedNodes counts nodes whose shared state changed during the
	// episode — the paper's locality claim measured in population.
	AffectedNodes int
	// AffectedRadius is the maximum hop distance (on the topology at close
	// time) from the disruption sites to any affected node — the locality
	// claim measured in hops. For departures and sleeps the sites are the
	// vanished node's former neighbors, since the node itself is no longer
	// reachable. -1 when no affected node is reachable from any site
	// (including the no-affected-nodes case).
	AffectedRadius int
}

// disruption is the open-episode tracker. sites and changed are reused
// across episodes so steady-state churn tracking allocates nothing.
type disruption struct {
	active  bool
	kinds   ChurnKind
	ops     int
	start   int    // e.step when the episode opened
	sites   []int  // deduplicated disruption sites
	siteSet []bool // per-node "already a site" flag (bounds sites)
	changed []bool // per-node "shared state changed this episode"

	// Carry counters for slots a mid-episode Compact dropped: each was a
	// changed (dead, isolated) node, counted as affected at close time;
	// droppedChangedSite records whether any of them was also a site,
	// i.e. a radius-0 witness. See Engine.compactDisruption.
	droppedChanged     int
	droppedChangedSite bool
}

// markDisruption opens (or extends) the current episode with one
// disruption of the given kind at site, optionally spreading to extra
// sites (e.g. the former neighbors of a departed node). It is
// allocation-free at steady state.
func (e *Engine) markDisruption(kind ChurnKind, site int, spread []int) {
	d := &e.disrupt
	if !d.active {
		d.active = true
		d.kinds = 0
		d.ops = 0
		d.start = e.step
		d.sites = d.sites[:0]
		for i := range d.siteSet {
			d.siteSet[i] = false
		}
		for i := range d.changed {
			d.changed[i] = false
		}
		d.droppedChanged = 0
		d.droppedChangedSite = false
	}
	d.kinds |= kind
	d.ops++
	e.addSite(site)
	for _, s := range spread {
		e.addSite(s)
	}
	if e.step > e.lastChange {
		e.lastChange = e.step
	}
}

func (e *Engine) addSite(i int) {
	if i < 0 || i >= len(e.disrupt.siteSet) || e.disrupt.siteSet[i] {
		return
	}
	e.disrupt.siteSet[i] = true
	e.disrupt.sites = append(e.disrupt.sites, i)
}

// markChanged records that node i's state changed out-of-band (crash,
// corruption) while an episode is open.
func (e *Engine) markChanged(i int) {
	if e.disrupt.active && i >= 0 && i < len(e.disrupt.changed) {
		e.disrupt.changed[i] = true
	}
}

// maybeCloseDisruption closes the open episode once the network has been
// quiet for the convergence window, appending the finished record to the
// ledger. Called at the top of every Step.
func (e *Engine) maybeCloseDisruption() {
	d := &e.disrupt
	if !d.active || e.step-e.lastChange < e.convWindow {
		return
	}
	rec := DisruptionRecord{
		Step:             d.start,
		Kinds:            d.kinds,
		Ops:              d.ops,
		StepsToStabilize: e.lastChange - d.start,
	}
	rec.AffectedNodes, rec.AffectedRadius = e.affectedSpread()
	e.ledger = append(e.ledger, rec)
	d.active = false
}

// affectedSpread runs one multi-source BFS from the episode's sites over
// the current topology and reports how many nodes changed state and the
// maximum hop distance of any of them from a site. Scratch is reused.
func (e *Engine) affectedSpread() (affected, radius int) {
	n := e.g.N()
	if cap(e.bfsDist) < n {
		e.bfsDist = make([]int32, n)
		e.bfsQueue = make([]int32, 0, n)
	}
	dist := e.bfsDist[:n]
	for i := range dist {
		dist[i] = -1
	}
	queue := e.bfsQueue[:0]
	for _, s := range e.disrupt.sites {
		if dist[s] < 0 {
			dist[s] = 0
			queue = append(queue, int32(s))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		for _, w := range e.g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, int32(w))
			}
		}
	}
	e.bfsQueue = queue[:0]
	radius = -1
	for i, c := range e.disrupt.changed {
		if !c {
			continue
		}
		affected++
		if int(dist[i]) > radius {
			radius = int(dist[i])
		}
	}
	// Slots a mid-episode Compact dropped: each was a changed dead node
	// (affected), and a dropped site is its own radius-0 witness.
	affected += e.disrupt.droppedChanged
	if e.disrupt.droppedChangedSite && radius < 0 {
		radius = 0
	}
	return affected, radius
}

// SetConvergenceWindow sets how many consecutive quiet steps close a
// disruption episode. The constructor default is max(5, CacheTTL+2) —
// under churn the window must exceed the cache TTL, or an episode would
// close before stale entries of a vanished neighbor even expired.
func (e *Engine) SetConvergenceWindow(k int) {
	if k < 1 {
		k = 1
	}
	e.convWindow = k
}

// ConvergenceWindow returns the episode-close window. Callers that wait
// for quiescence and then read the ledger (Network.Stabilize) must use a
// window at least this wide, or the final episode stays open.
func (e *Engine) ConvergenceWindow() int { return e.convWindow }

// DisruptionOpen reports whether a disruption episode is still
// converging. Like DisruptionRecords it first closes an episode whose
// quiet window has already elapsed.
func (e *Engine) DisruptionOpen() bool {
	e.maybeCloseDisruption()
	return e.disrupt.active
}

// DisruptionRecords returns a copy of the closed-episode ledger. An open
// episode whose quiet window has already elapsed — typically right after
// RunUntilStable returned — is closed first, so reading the ledger after
// stabilization always includes the final episode.
func (e *Engine) DisruptionRecords() []DisruptionRecord {
	e.maybeCloseDisruption()
	return append([]DisruptionRecord(nil), e.ledger...)
}

// Status returns node i's lifecycle state.
func (e *Engine) Status(i int) NodeStatus { return e.status[i] }

// AliveCount returns the number of StatusAlive nodes. O(1): the count is
// maintained incrementally by the churn mutators (churn schedules query
// it per victim draw, which at 100k+ nodes must not rescan the statuses).
func (e *Engine) AliveCount() int { return e.aliveN }

// DeadCount returns the number of StatusDead slots — the recyclable
// population an explicit Compact (or an auto-compaction threshold)
// reclaims. O(1).
func (e *Engine) DeadCount() int { return e.deadN }

// Append adds one new live node with the given identifier. The caller
// must have grown the engine's graph first (topology.Graph.AddNode or
// GridIndex.Append), so the new node's edges are already in place and the
// join's disruption sites include its radio neighbors. The node's rng
// stream is derived from the engine's master source exactly as at
// construction, so surviving nodes' streams are untouched and a fixed
// seed plus a fixed churn schedule reproduces bit-identical runs.
//
//selfstab:mutator
func (e *Engine) Append(id int64) (int, error) {
	i := len(e.nodes)
	if e.g.N() != i+1 {
		return -1, fmt.Errorf("runtime: graph has %d nodes, want %d (grow the graph before Append)", e.g.N(), i+1)
	}
	if j, dup := e.idx[id]; dup {
		return -1, fmt.Errorf("runtime: duplicate id %d on node %d", id, j)
	}
	e.nodes = append(e.nodes, newNode(id, e.proto, e.nodeStream(i)))
	e.ids = append(e.ids, id)
	e.idx[id] = i
	e.out = append(e.out, Frame{})
	e.active = append(e.active, false)
	e.status = append(e.status, StatusAlive)
	e.sendMask = append(e.sendMask, true)
	e.disrupt.changed = append(e.disrupt.changed, false)
	e.disrupt.siteSet = append(e.disrupt.siteSet, false)
	e.pendFlag = append(e.pendFlag, false)
	e.execFlag = append(e.execFlag, false)
	if e.densityScale != nil {
		e.densityScale = append(e.densityScale, 1) // arrivals start unscaled (full battery)
	}
	e.appendTile(i)
	e.aliveIdx.grow()
	e.aliveIdx.set(i)
	e.aliveN++
	// The newcomer broadcasts a fresh frame, so the frontier expansion
	// pulls its neighbors in by itself; only the node needs activating.
	e.Activate(i)
	e.markDisruption(ChurnJoin, i, e.g.Neighbors(i))
	e.markChanged(i)
	e.epoch++
	return i, nil
}

// Kill permanently removes node i: its state and cache are cleared and it
// never participates again. The disruption sites are the node plus its
// current neighbors — capture runs before the caller detaches the node's
// edges, so call Kill first, then remove the edges from the topology.
//
//selfstab:mutator
func (e *Engine) Kill(i int) error {
	if err := e.checkIndex(i); err != nil {
		return err
	}
	if e.status[i] == StatusDead {
		return fmt.Errorf("runtime: node %d is already dead", i)
	}
	e.markDisruption(ChurnLeave, i, e.g.Neighbors(i))
	e.markChanged(i)
	// The survivors stop hearing the departed node this very step: its
	// former neighbors must start aging their cache entries now.
	e.activateSpread(i, e.g.Neighbors(i))
	if e.status[i] == StatusAlive {
		e.aliveN--
	}
	e.aliveIdx.clear(i)
	e.deadN++
	e.nodes[i].reset(e.proto)
	e.status[i] = StatusDead
	e.sendMask[i] = false
	e.epoch++
	return nil
}

// Reboot crashes node i: all protocol state and the neighbor cache are
// lost and the node restarts cold, exactly like a fresh arrival at the
// same position (its rng stream continues, keeping runs reproducible).
// A sleeping node reboots awake.
//
//selfstab:mutator
func (e *Engine) Reboot(i int) error {
	if err := e.checkIndex(i); err != nil {
		return err
	}
	if e.status[i] == StatusDead {
		return fmt.Errorf("runtime: node %d is dead", i)
	}
	e.markDisruption(ChurnCrash, i, nil)
	e.markChanged(i)
	e.Activate(i) // reset state re-broadcasts; the expansion covers neighbors
	if e.status[i] != StatusAlive {
		e.aliveN++
	}
	e.aliveIdx.set(i)
	e.nodes[i].reset(e.proto)
	e.status[i] = StatusAlive
	e.sendMask[i] = true
	e.epoch++
	return nil
}

// Sleep duty-cycles node i off: radio silent, state frozen. The
// disruption sites are the node plus its current neighbors — call Sleep
// before detaching its edges from the topology.
//
//selfstab:mutator
func (e *Engine) Sleep(i int) error {
	if err := e.checkIndex(i); err != nil {
		return err
	}
	if e.status[i] != StatusAlive {
		return fmt.Errorf("runtime: node %d is %s, cannot sleep", i, e.status[i])
	}
	e.markDisruption(ChurnSleep, i, e.g.Neighbors(i))
	// The sleeper falls silent: its neighbors' cache entries for it start
	// aging this very step.
	e.activateSpread(i, e.g.Neighbors(i))
	e.aliveN--
	e.aliveIdx.clear(i)
	e.status[i] = StatusSleeping
	e.sendMask[i] = false
	e.epoch++
	return nil
}

// Wake brings a sleeping node back: radio on, frozen (possibly stale)
// state resumed — self-stabilization repairs whatever went stale. Call
// Wake after reattaching the node's edges so the join sites include its
// current neighbors.
//
//selfstab:mutator
func (e *Engine) Wake(i int) error {
	if err := e.checkIndex(i); err != nil {
		return err
	}
	if e.status[i] != StatusSleeping {
		return fmt.Errorf("runtime: node %d is %s, cannot wake", i, e.status[i])
	}
	e.markDisruption(ChurnWake, i, e.g.Neighbors(i))
	e.Activate(i) // frameDirty below pulls the neighbors in via the expansion
	e.aliveN++
	e.aliveIdx.set(i)
	e.status[i] = StatusAlive
	e.sendMask[i] = true
	n := e.nodes[i]
	n.dirty = true      // the stale cache must be re-evaluated
	n.frameDirty = true // and the frozen state re-broadcast
	e.epoch++
	return nil
}

func (e *Engine) checkIndex(i int) error {
	if i < 0 || i >= len(e.nodes) {
		return fmt.Errorf("runtime: node index %d out of range [0, %d)", i, len(e.nodes))
	}
	return nil
}

// MarkAttack opens (or extends) an attack-kind disruption episode at node
// i and its current neighbors — the convergence-ledger entry for a
// byzantine injection, so steps-to-restabilize is scored per attack the
// same way it is per benign churn event. The node's state itself is
// mutated by the accompanying SetDensityScale call.
//
//selfstab:mutator
func (e *Engine) MarkAttack(i int) error {
	if err := e.checkIndex(i); err != nil {
		return err
	}
	e.markDisruption(ChurnAttack, i, e.g.Neighbors(i))
	e.markChanged(i)
	return nil
}

// Evict expels a byzantine node: its density scale resets to the honest
// 1, all protocol state and the neighbor cache are cleared, and the node
// restarts cold at its position — a Reboot whose disruption episode is
// recorded as an attack response (ChurnAttack) rather than a benign
// crash, so the ledger can score recovery from evictions separately. A
// sleeping node evicts awake. Emits one byzantine-eviction counter tick.
//
//selfstab:mutator
func (e *Engine) Evict(i int) error {
	if err := e.checkIndex(i); err != nil {
		return err
	}
	if e.status[i] == StatusDead {
		return fmt.Errorf("runtime: node %d is dead", i)
	}
	if e.densityScale != nil {
		e.densityScale[i] = 1
	}
	e.markDisruption(ChurnAttack, i, e.g.Neighbors(i))
	e.markChanged(i)
	e.Activate(i) // reset state re-broadcasts; the expansion covers neighbors
	if e.status[i] != StatusAlive {
		e.aliveN++
	}
	e.aliveIdx.set(i)
	e.nodes[i].reset(e.proto)
	e.status[i] = StatusAlive
	e.sendMask[i] = true
	e.epoch++
	if p := e.probe; p != nil {
		p.Counter(obs.CtrByzantineEvictions, 1)
	}
	return nil
}

// Implausible returns, in ascending index order, the alive nodes whose
// advertised density exceeds factor times the local plausibility bound
// (deg+1)/2, where deg is the node's current topology degree. The bound
// is exact for honest nodes: guard R1 computes density = links/deg with
// links ≤ deg + C(deg, 2), so an unscaled density can never exceed
// (deg+1)/2 — any node above it (factor 1) is advertising a density its
// observed neighborhood cannot support. Callers pass factor > 1 for
// slack against transiently stale caches under churn (a cached vanished
// neighbor briefly inflates links relative to the live degree).
// Degree-zero nodes are never reported. Read-only.
func (e *Engine) Implausible(factor float64) []int {
	var out []int
	for i := range e.nodes {
		if e.status[i] != StatusAlive {
			continue
		}
		deg := len(e.g.Neighbors(i))
		if deg == 0 {
			continue
		}
		bound := factor * float64(deg+1) / 2
		if e.nodes[i].Density() > bound {
			out = append(out, i)
		}
	}
	return out
}
