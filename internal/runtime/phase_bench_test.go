package runtime

import (
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/obs"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
)

// BenchmarkPhaseBreakdown attributes the paper-scale step cost to its
// phases: each sub-benchmark steps a 1000-node dense-path engine with a
// collector attached and reports that phase's mean wall time per step as
// its ns/op. The rows land in BENCH_step.json next to the whole-step
// benchmarks, so the per-phase trajectory is recorded alongside the
// total. The names deliberately avoid "Step": these are attribution
// rows, not step-time medians for the regression gate.
func BenchmarkPhaseBreakdown(b *testing.B) {
	for _, p := range []obs.Phase{obs.PhaseChurn, obs.PhaseFrame, obs.PhaseIngest} {
		b.Run("phase="+p.String(), func(b *testing.B) {
			g, ids := randomNetwork(1, 1000, 0.1)
			e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			// The dense path runs every phase every step, so each sample
			// attributes the same work BenchmarkStep1000 measures whole.
			if err := e.SetSparse(false); err != nil {
				b.Fatal(err)
			}
			if err := e.Run(5); err != nil {
				b.Fatal(err)
			}
			c := obs.NewCollector(1)
			e.SetProbe(c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			m := c.Metrics()
			if got := m.Phases[p].Count; got != int64(b.N) {
				b.Fatalf("phase %v observed %d times over %d steps", p, got, b.N)
			}
			b.ReportMetric(float64(m.Phases[p].SumNs)/float64(b.N), "ns/op")
		})
	}
}
