package runtime

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"selfstab/internal/cluster"
	"selfstab/internal/obs"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// Protocol configures which layers of the stack run and how.
type Protocol struct {
	// UseDag enables Algorithm N1: metric ties break on locally-unique DAG
	// colors instead of application identifiers.
	UseDag bool
	// Gamma is the DAG color space size |γ| (required with UseDag; must
	// exceed the maximum degree).
	Gamma int64
	// Order selects the ≺ variant.
	Order cluster.Order
	// Fusion enables the Section 4.3 two-hop head fusion rule.
	Fusion bool
	// CacheTTL evicts neighbor cache entries not refreshed for this many
	// steps. 0 disables eviction (appropriate for static topologies); under
	// mobility or a lossy medium use a few multiples of 1/τ.
	CacheTTL int
	// ActivationProb models the daemon: each step, each node evaluates its
	// guarded assignments with this probability (it still broadcasts and
	// listens — the daemon schedules computation, not communication).
	// 0 or 1 is the synchronous daemon of the oracle; values in (0, 1)
	// give a randomized daemon under which self-stabilization must still
	// hold (the paper's execution semantics only assume each enabled guard
	// is eventually executed).
	ActivationProb float64
}

func (p Protocol) validate(g *topology.Graph) error {
	if p.Order != cluster.OrderBasic && p.Order != cluster.OrderSticky {
		return fmt.Errorf("runtime: invalid order %d", int(p.Order))
	}
	if p.UseDag && p.Gamma <= int64(g.MaxDegree()) {
		return fmt.Errorf("runtime: gamma %d must exceed max degree %d", p.Gamma, g.MaxDegree())
	}
	if p.CacheTTL < 0 {
		return fmt.Errorf("runtime: negative cache ttl %d", p.CacheTTL)
	}
	if p.ActivationProb < 0 || p.ActivationProb > 1 {
		return fmt.Errorf("runtime: activation probability %v outside [0, 1]", p.ActivationProb)
	}
	return nil
}

// Engine drives a set of protocol nodes over a radio medium, one Δ(τ) step
// at a time.
//
// The step path is engineered for throughput: outgoing frames, the CSR
// delivery inbox and daemon activation draws live in per-engine scratch
// buffers that are reused every step, so a steady-state Step performs O(1)
// amortized allocations; the frame-assembly and ingest+guard phases run on
// a GOMAXPROCS-sized worker pool. Results are bit-identical for a fixed
// seed regardless of worker count: the medium and the daemon consume their
// rng streams sequentially between the parallel phases, per-node draws
// (DAG colors) come from per-node streams, and a node's guards read only
// that node's own cache.
type Engine struct {
	g       *topology.Graph
	ids     []int64
	idx     map[int64]int
	proto   Protocol
	medium  radio.Medium
	nodes   []*Node
	daemon  *rng.Source
	src     *rng.Source // retained master source: Append derives per-node streams from it
	step    int
	workers int // 0 = GOMAXPROCS

	// Node lifecycle (churn). status holds each slot's lifecycle state;
	// sendMask mirrors status == StatusAlive in the []bool shape the radio
	// medium consumes. Slot indices are stable between Compact calls: a
	// dead node keeps its dense index so every per-node array across the
	// stack stays aligned, until an explicit Compact recycles dead slots
	// under an index remap. aliveN and deadN are maintained incrementally
	// so population queries are O(1) at any scale.
	status   []NodeStatus
	sendMask []bool
	aliveN   int
	deadN    int

	// Frontier (worklist) stepping — see frontier.go. sparseOK records
	// whether this configuration supports it at all; sparse whether it is
	// currently active. pend is next step's deduplicated worklist, exec
	// the current step's (pend plus the neighborhoods of nodes about to
	// broadcast changed content).
	sparse   bool
	sparseOK bool
	pendFlag []bool
	pend     []int32
	execFlag []bool
	exec     []int32

	// Spatial tiling (tile.go). tiles > 1 shards frontier stepping by
	// tile ownership: tileOf maps each slot to its owning tile (kept
	// current by tileAssign via Retile/Append/Compact), and the remaining
	// slices are per-tile step scratch — exec worklists, seed counts, the
	// T×T halo outbox, and per-tile changed flags.
	tiles       int // 1 = untiled
	tileOf      []int32
	tileAssign  func(i int) int
	tileExec    [][]int32
	tileSeeds   []int
	tileOutbox  [][]int32
	tileChanged []bool

	// aliveIdx is a Fenwick tree over alive bits (aliveindex.go): NthAlive
	// answers order-statistic queries ("the k-th living slot") in O(log N)
	// for churn victim picks. Maintained by every lifecycle transition.
	aliveIdx fenwick

	// densityScale holds the per-node multiplier applied to the shared
	// density by guard R1 (nil until the first SetDensityScale: every
	// node at 1). The energy subsystem drives it with quantized remaining-
	// battery fractions, turning head election energy-aware online. The
	// slice is written only between steps (sequentially) and read by the
	// parallel guard phase, mirroring the status array's discipline.
	densityScale []float64

	// Reusable step scratch.
	out         []Frame // one outgoing frame per sender
	inbox       radio.Inbox
	active      []bool // daemon pre-draws (only populated when 0 < p < 1)
	stepChanged bool   // any shared variable changed during the last Step
	lastChange  int    // most recent step (or disruption) that changed shared state

	// Disruption tracking for the convergence ledger (see churn.go).
	convWindow int
	disrupt    disruption
	ledger     []DisruptionRecord
	bfsDist    []int32
	bfsQueue   []int32

	// epoch increments whenever anything a derived structure (routing
	// tables, cluster renderings) could depend on changes: a step that
	// altered shared state, a topology swap, or fault injection. Callers
	// cache derived state keyed by Epoch and rebuild only on a mismatch.
	epoch uint64

	// probe, when set, receives the instrumentation stream (phase spans,
	// per-tile halo spans, counters). Every emission site is behind a nil
	// check, so a detached probe costs nothing; an attached probe must be a
	// pure observer (the obspure rule — see internal/obs) so the execution
	// stays bit-identical either way.
	probe obs.Probe

	// postStep, when set, runs at the end of every Step after the guards —
	// the hook the traffic data plane uses to move packets inside the same
	// Δ(τ) step loop. preStep runs at the start of every Step, before any
	// broadcast — the hook churn schedules use to add, remove, crash and
	// duty-cycle nodes inside the same loop.
	postStep func(step int) error
	preStep  func(step int) error
}

// ErrNotStabilized is returned by RunUntilStable when the state kept
// changing through the step budget.
var ErrNotStabilized = errors.New("runtime: did not stabilize within the step budget")

// New builds an engine over graph g with the given unique application
// identifiers. The master rng source is split per node (DAG color draws)
// so runs are reproducible.
func New(g *topology.Graph, ids []int64, proto Protocol, medium radio.Medium, src *rng.Source) (*Engine, error) {
	if g.N() == 0 {
		return nil, errors.New("runtime: empty graph")
	}
	if len(ids) != g.N() {
		return nil, fmt.Errorf("runtime: %d ids for %d nodes", len(ids), g.N())
	}
	if medium == nil {
		return nil, errors.New("runtime: nil medium")
	}
	if src == nil {
		return nil, errors.New("runtime: nil rng source")
	}
	if err := proto.validate(g); err != nil {
		return nil, err
	}
	idx := make(map[int64]int, len(ids))
	for i, id := range ids {
		if j, dup := idx[id]; dup {
			return nil, fmt.Errorf("runtime: duplicate id %d on nodes %d and %d", id, j, i)
		}
		idx[id] = i
	}
	e := &Engine{
		g:        g,
		ids:      append([]int64(nil), ids...),
		idx:      idx,
		proto:    proto,
		medium:   medium,
		nodes:    make([]*Node, g.N()),
		daemon:   src.Split("daemon"),
		src:      src,
		out:      make([]Frame, g.N()),
		active:   make([]bool, g.N()),
		status:   make([]NodeStatus, g.N()),
		sendMask: make([]bool, g.N()),
		aliveN:   g.N(),
		tiles:    1,
	}
	e.aliveIdx.initAll(g.N())
	// One contiguous node arena for the initial population: cold-start
	// construction is part of every experiment's per-run cost, and n
	// individual Node allocations dominated it. Append still allocates
	// per node — growing the arena would move it under existing pointers.
	// Per-node rng streams exist only to draw DAG colors; without the DAG
	// nothing ever reads them, and skipping the splits saves a ~5 KB
	// math/rand state per node (almost half the construction bytes).
	arena := make([]Node, g.N())
	for i := range e.nodes {
		initNode(&arena[i], ids[i], proto, e.nodeStream(i))
		e.nodes[i] = &arena[i]
		e.sendMask[i] = true
	}
	// Frontier stepping is on whenever the configuration supports it; the
	// whole population starts on the worklist (cold start: every guard is
	// armed).
	e.sparseOK = sparseEligible(medium, proto)
	e.sparse = e.sparseOK
	e.pendFlag = make([]bool, g.N())
	e.execFlag = make([]bool, g.N())
	e.pend = make([]int32, 0, g.N())
	if e.sparse {
		for i := range e.nodes {
			e.pendFlag[i] = true
			e.pend = append(e.pend, int32(i))
		}
	}
	// Close disruption episodes only after a quiet stretch long enough for
	// TTL eviction to have flushed a vanished neighbor — otherwise a
	// departure would be declared "converged" before its cache entries even
	// expired.
	e.convWindow = 5
	if proto.CacheTTL+2 > e.convWindow {
		e.convWindow = proto.CacheTTL + 2
	}
	e.disrupt.changed = make([]bool, g.N())
	e.disrupt.siteSet = make([]bool, g.N())
	return e, nil
}

// nodeStream derives node i's private rng stream from the master source.
// Only the DAG draws per-node randomness (initial color, redraws after a
// collision or a crash); without it the stream is nil and the split is
// skipped entirely. Note each SplitN advances the master source by one
// draw, so the master's position differs between UseDag settings — safe
// today because node splits (construction and Append) are the master's
// only consumers and are skipped uniformly, but a new e.src consumer
// must not assume a UseDag-independent master position.
func (e *Engine) nodeStream(i int) *rng.Source {
	if !e.proto.UseDag {
		return nil
	}
	return e.src.SplitN("node", i)
}

// N returns the number of nodes.
func (e *Engine) N() int { return len(e.nodes) }

// StepCount returns how many steps have executed.
func (e *Engine) StepCount() int { return e.step }

// LastChange returns the most recent step (or disruption) that changed
// shared state — the quiescence marker RunUntilStable polls. Callers
// implementing their own stabilization loop compare it against StepCount.
func (e *Engine) LastChange() int { return e.lastChange }

// Node returns the i-th node (read-only access for assertions).
func (e *Engine) Node(i int) *Node { return e.nodes[i] }

// Graph returns the current topology.
func (e *Engine) Graph() *topology.Graph { return e.g }

// SetGraph swaps the topology (mobility/churn). Node caches are kept; stale
// neighbors age out via the protocol's TTL, exactly as in a real network.
// The swap is opaque — the engine cannot know which adjacencies moved —
// so on the frontier path every node is conservatively re-examined.
// Callers that maintain the engine's graph in place incrementally (the
// GridIndex path) should instead Activate the changed nodes and call
// NoteTopologyChanged, keeping the re-examination proportional to the
// change.
//
//selfstab:mutator
func (e *Engine) SetGraph(g *topology.Graph) error {
	if g.N() != len(e.nodes) {
		return fmt.Errorf("runtime: new graph has %d nodes, engine has %d", g.N(), len(e.nodes))
	}
	e.g = g
	e.epoch++
	e.ActivateAll()
	return nil
}

// NoteTopologyChanged advances the epoch after the engine's graph was
// mutated in place by an incremental index (no pointer swap). The caller
// must have Activated every node whose adjacency changed — typically by
// wiring topology.GridIndex's adjacency hook to Activate — or frontier
// stepping would silently miss the delta.
//
//selfstab:mutator
func (e *Engine) NoteTopologyChanged() { e.epoch++ }

// Epoch returns a counter that advances whenever the shared state or the
// topology changed (a state-changing step, SetGraph, Corrupt). Derived
// structures cached against an Epoch value are valid exactly while it is
// unchanged.
func (e *Engine) Epoch() uint64 { return e.epoch }

// SetPostStep installs a hook that runs at the end of every Step, after the
// guarded assignments (nil disables it). The hook receives the number of
// completed steps. A hook error is propagated by Step, but only after the
// protocol step itself has fully committed (guards applied, step counted,
// epoch advanced) — retrying Step runs a new step, it does not replay the
// failed one.
//
//selfstab:mutator
func (e *Engine) SetPostStep(fn func(step int) error) { e.postStep = fn }

// SetPreStep installs a hook that runs at the start of every Step, before
// any broadcast (nil disables it). The hook receives the number of
// completed steps; churn schedules use it to mutate the population inside
// the step loop, so a step always observes a consistent topology.
//
//selfstab:mutator
func (e *Engine) SetPreStep(fn func(step int) error) { e.preStep = fn }

// SetProbe attaches an instrumentation probe to the step path (nil
// detaches it). The probe must be a pure observer — it may time and
// count, never mutate engine state or feed values back (the obspure
// rule, statically enforced by internal/analyze). Attached or not, the
// execution is bit-identical; detached, the step path pays only a nil
// check per emission site. Call only between steps.
func (e *Engine) SetProbe(p obs.Probe) { e.probe = p }

// Probe returns the attached instrumentation probe (nil when detached).
func (e *Engine) Probe() obs.Probe { return e.probe }

// SetParallelism fixes the number of workers used for the per-node step
// phases. 0 (the default) sizes the pool to GOMAXPROCS. Results are
// identical for any value; the knob exists for benchmarking and for the
// determinism tests.
func (e *Engine) SetParallelism(workers int) {
	if workers < 0 {
		workers = 0
	}
	e.workers = workers
}

// SetDensityScale sets the multiplier guard R1 applies to node i's shared
// density (negative values clamp to 0). The default is 1 for every node;
// the first non-trivial call materializes the scale array. A changed scale
// re-arms the node's guards and re-broadcast, so the new value propagates
// like any other shared-variable change — the energy subsystem uses this
// to demote draining cluster-heads online. Call only between steps (it
// races with the parallel guard phase otherwise), exactly like the churn
// mutators.
//
//selfstab:mutator
func (e *Engine) SetDensityScale(i int, s float64) error {
	if err := e.checkIndex(i); err != nil {
		return err
	}
	if s < 0 {
		s = 0
	}
	if e.densityScale == nil {
		if s == 1 {
			return nil
		}
		e.densityScale = make([]float64, len(e.nodes))
		for j := range e.densityScale {
			e.densityScale[j] = 1
		}
	}
	if e.densityScale[i] == s {
		return nil
	}
	e.densityScale[i] = s
	if e.status[i] == StatusDead {
		return nil // inert slot; keep the stored scale for bookkeeping only
	}
	n := e.nodes[i]
	n.dirty = true      // the scaled density must be recomputed...
	n.frameDirty = true // ...and re-broadcast
	e.Activate(i)
	return nil
}

// DensityScale returns the multiplier guard R1 currently applies to node
// i's shared density (1 when no scale was ever set).
func (e *Engine) DensityScale(i int) float64 { return e.densityScaleOf(i) }

func (e *Engine) densityScaleOf(i int) float64 {
	if e.densityScale == nil {
		return 1
	}
	return e.densityScale[i]
}

// parallelThreshold is the node count below which the per-node phases run
// inline: goroutine fan-out costs more than it saves on tiny networks.
const parallelThreshold = 128

// forEachNode runs fn(i) for every node index, in parallel chunks when the
// network is large enough, and reports whether any call returned true.
// fn must only touch node i's private state (plus read-only shared data).
func (e *Engine) forEachNode(fn func(i int) bool) bool {
	n := len(e.nodes)
	workers := e.workers
	if workers == 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelThreshold {
		changed := false
		for i := 0; i < n; i++ {
			if fn(i) {
				changed = true
			}
		}
		return changed
	}
	var wg sync.WaitGroup
	var changed atomic.Bool
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c := false
			for i := lo; i < hi; i++ {
				if fn(i) {
					c = true
				}
			}
			if c {
				changed.Store(true)
			}
		}(lo, hi)
	}
	wg.Wait()
	return changed.Load()
}

// Step executes one Δ(τ) step: every live node broadcasts its frame, the
// medium delivers, every live node ingests and runs its guarded
// assignments (N1, R1, R2) once, in that order. Sleeping and dead nodes
// neither transmit nor listen, and their state is frozen (sleeping) or
// cleared (dead).
//
// With frontier stepping active (see frontier.go) the same semantics are
// produced by examining only the worklist of potentially-changed nodes;
// a stabilized network steps in O(1) instead of O(N).
//
//selfstab:mutator
func (e *Engine) Step() error {
	if p := e.probe; p != nil {
		p.BeginStep(e.step)
		p.Counter(obs.CtrFrontier, int64(len(e.pend)))
		var err error
		if e.sparse {
			err = e.stepSparse()
		} else {
			err = e.stepDense()
		}
		p.EndStep(e.step, e.stepChanged)
		return err
	}
	if e.sparse {
		return e.stepSparse()
	}
	return e.stepDense()
}

// stepDense is the full-scan step path: every node is visited every
// step. It is the reference semantics frontier stepping must reproduce
// bit-for-bit, and the only path able to drive lossy media and
// randomized daemons (whose per-step randomness touches every node).
func (e *Engine) stepDense() error {
	probe := e.probe

	// Close a converged disruption episode before new churn can extend it,
	// then run the churn pre-step (node add/remove/crash/sleep/wake).
	if probe != nil {
		probe.PhaseBegin(obs.PhaseChurn)
	}
	e.maybeCloseDisruption()
	if e.preStep != nil {
		if err := e.preStep(e.step); err != nil {
			return fmt.Errorf("step %d: pre-step: %w", e.step, err)
		}
	}
	if probe != nil {
		probe.PhaseEnd(obs.PhaseChurn)
		probe.PhaseBegin(obs.PhaseFrame)
	}

	// Phase 1 (parallel): assemble every live node's outgoing frame into
	// the engine's scratch. All frames must exist before delivery resolves
	// sender indices against them. When neither the node's shared
	// variables nor its cached summaries changed, the scratch copy from
	// the previous step is still valid.
	e.forEachNode(func(i int) bool {
		if e.status[i] != StatusAlive {
			return false
		}
		if n := e.nodes[i]; n.frameDirty {
			n.fillFrame(&e.out[i])
			n.frameDirty = false
		}
		return false
	})

	// Phase 2 (sequential): the medium owns its rng stream, so delivery
	// decisions are drawn on one goroutine regardless of worker count.
	// Sleeping and dead nodes stay silent via the send mask (their edges
	// are gone too when the topology layer maintains churn, but the mask
	// keeps the engine correct on a manually mutated graph).
	if err := e.medium.Deliver(e.g, e.sendMask, &e.inbox); err != nil {
		return fmt.Errorf("step %d: %w", e.step, err)
	}
	if e.inbox.N() != len(e.nodes) {
		return fmt.Errorf("step %d: medium delivered %d rows for %d nodes", e.step, e.inbox.N(), len(e.nodes))
	}
	if probe != nil {
		probe.PhaseEnd(obs.PhaseFrame)
		probe.PhaseBegin(obs.PhaseIngest)
		probe.Counter(obs.CtrExec, int64(e.aliveN))
	}

	// Daemon pre-draw (sequential, node order): scheduling decisions come
	// off the daemon stream exactly as in the sequential engine, so a
	// fixed seed activates the same nodes for any parallelism.
	var act []bool
	if e.proto.ActivationProb > 0 && e.proto.ActivationProb < 1 {
		act = e.active
		for i := range act {
			act[i] = e.daemon.Float64() < e.proto.ActivationProb
		}
	}

	// Phase 3 (parallel): ingest + guards. Each node writes only its own
	// cache and shared variables and reads only the immutable frame
	// scratch, so the loop is embarrassingly parallel. Guards run only on
	// dirty nodes: they are deterministic functions of the cache and the
	// node's own shared variables, so unchanged inputs mean unchanged
	// outputs and a stabilized network steps in O(delivered frames).
	ttl := e.proto.CacheTTL
	tracking := e.disrupt.active
	e.stepChanged = e.forEachNode(func(i int) bool {
		if e.status[i] != StatusAlive {
			return false // sleeping/dead: radio off, state frozen, no aging
		}
		n := e.nodes[i]
		n.ingest(e.out, e.inbox.Senders(i), ttl)
		if act != nil && !act[i] {
			return false // the daemon did not schedule this node this step
		}
		if !n.dirty {
			return false
		}
		n.dirty = false
		changed := n.guardN1(e.proto)
		changed = n.guardR1(e.densityScaleOf(i)) || changed
		changed = n.guardR2(e.proto) || changed
		if changed {
			// Own shared variables are guard inputs too, and they are
			// broadcast next step.
			n.dirty = true
			n.frameDirty = true
			if tracking {
				// Distinct indices: race-free under the worker pool.
				e.disrupt.changed[i] = true
			}
		}
		return changed
	})
	if probe != nil {
		probe.PhaseEnd(obs.PhaseIngest)
	}
	if e.stepChanged {
		e.epoch++
		e.lastChange = e.step + 1 // the step about to be counted below
	}
	e.step++
	if e.postStep != nil {
		return e.postStep(e.step)
	}
	return nil
}

// Run executes exactly steps steps.
//
//selfstab:mutator
func (e *Engine) Run(steps int) error {
	for i := 0; i < steps; i++ {
		if err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilStable steps the engine until the shared variables (color,
// density, head) of every node stay unchanged for window consecutive steps,
// or until maxSteps have run. It returns the stabilization step relative
// to the call: the last step at which anything changed (0 if already
// stable).
//
// Stability is tracked by the guards themselves: every guarded assignment
// reports whether it wrote a new value, so detecting quiescence costs no
// per-step state snapshot or comparison. A disruption occurring mid-run
// (a churn pre-step op, a corruption) counts as a change even before any
// shared variable moves — its protocol consequences may lag by up to the
// cache TTL, and declaring stability inside that lag would be premature.
//
//selfstab:mutator
func (e *Engine) RunUntilStable(maxSteps, window int) (int, error) {
	if window < 1 {
		window = 1
	}
	start := e.step
	for s := 1; s <= maxSteps; s++ {
		if err := e.Step(); err != nil {
			return 0, err
		}
		if e.step-e.lastChange >= window {
			if e.lastChange <= start {
				return 0, nil
			}
			return e.lastChange - start, nil
		}
	}
	return 0, ErrNotStabilized
}

// sharedVars is the per-node shared variable tuple used for stability
// detection in tests and debugging (the step path tracks changes in the
// guards instead of snapshotting).
type sharedVars struct {
	tieID   int64
	density float64
	headID  int64
	parent  int64
}

func (e *Engine) sharedState() []sharedVars {
	s := make([]sharedVars, len(e.nodes))
	for i, n := range e.nodes {
		s[i] = sharedVars{tieID: n.tieID, density: n.density, headID: n.headID, parent: n.parent}
	}
	return s
}

func statesEqual(a, b []sharedVars) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot is a consistent copy of the network's shared state, indexed like
// the engine's graph.
type Snapshot struct {
	IDs     []int64
	TieID   []int64
	Density []float64
	HeadID  []int64
	Parent  []int64
}

// Snapshot captures the current shared state of all nodes.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		IDs:     append([]int64(nil), e.ids...),
		TieID:   make([]int64, len(e.nodes)),
		Density: make([]float64, len(e.nodes)),
		HeadID:  make([]int64, len(e.nodes)),
		Parent:  make([]int64, len(e.nodes)),
	}
	for i, n := range e.nodes {
		s.TieID[i] = n.tieID
		s.Density[i] = n.density
		s.HeadID[i] = n.headID
		s.Parent[i] = n.parent
	}
	return s
}

// Assignment converts the current head/parent choices into index form for
// comparison against the cluster oracle. Identifiers that do not resolve to
// a node (possible only in corrupted, not-yet-stabilized states) map to -1.
func (e *Engine) Assignment() *cluster.Assignment {
	a := &cluster.Assignment{
		Parent: make([]int, len(e.nodes)),
		Head:   make([]int, len(e.nodes)),
	}
	for i, n := range e.nodes {
		a.Parent[i] = e.indexOf(n.parent)
		a.Head[i] = e.indexOf(n.headID)
	}
	return a
}

func (e *Engine) indexOf(id int64) int {
	if i, ok := e.idx[id]; ok {
		return i
	}
	return -1
}

// NeighborView returns the identifiers currently in node i's neighbor
// cache — its protocol-level view of Np, which may lag the true topology
// under loss, mobility or corruption.
func (e *Engine) NeighborView(i int) ([]int64, error) {
	if i < 0 || i >= len(e.nodes) {
		return nil, fmt.Errorf("runtime: node index %d out of range", i)
	}
	n := e.nodes[i]
	out := make([]int64, 0, len(n.cache))
	for j := range n.cache {
		out = append(out, n.cache[j].frame.ID) // cache is id-sorted
	}
	return out, nil
}

// DagLocallyUnique reports whether the current colors are locally unique on
// the current graph — the legitimacy predicate of Algorithm N1.
func (e *Engine) DagLocallyUnique() bool {
	for u := 0; u < e.g.N(); u++ {
		for _, v := range e.g.Neighbors(u) {
			if v > u && e.nodes[u].tieID == e.nodes[v].tieID {
				return false
			}
		}
	}
	return true
}

// CorruptionKind selects the fault model for Corrupt.
type CorruptionKind int

const (
	// CorruptState randomizes the node's own shared variables.
	CorruptState CorruptionKind = 1 << iota
	// CorruptCache randomizes cached neighbor entries (stale/garbage
	// caches are the transient faults of the shared-variable scheme).
	CorruptCache
	// CorruptAll is both.
	CorruptAll = CorruptState | CorruptCache
)

// Corrupt injects transient faults: each node is independently hit with
// probability frac; a hit node has the selected parts of its state replaced
// with arbitrary garbage (including identifiers that do not exist in the
// network). This is the "arbitrary initial state" of the self-stabilization
// model.
//
// frac is clamped to [0, 1]: values above 1 hit every node, values at or
// below 0 are a guaranteed no-op (no epoch bump, no rng draws). Hit nodes
// are recorded as a ChurnFault disruption in the convergence ledger.
//
//selfstab:mutator
func (e *Engine) Corrupt(frac float64, kind CorruptionKind, src *rng.Source) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	e.epoch++
	garbageID := func() int64 { return src.Int63()%2000 - 1000 }
	for i, n := range e.nodes {
		if src.Float64() >= frac {
			continue
		}
		if e.status[i] == StatusDead {
			continue // nothing left to corrupt; the slot is inert
		}
		e.markDisruption(ChurnFault, i, nil)
		e.markChanged(i)
		n.dirty = true      // corrupted inputs must be re-evaluated...
		n.frameDirty = true // ...and re-broadcast
		e.Activate(i)
		if kind&CorruptState != 0 {
			n.tieID = garbageID()
			n.density = src.Float64() * 100
			n.headID = garbageID()
			n.parent = garbageID()
		}
		if kind&CorruptCache != 0 {
			// The cache is id-sorted, so iteration consumes the rng stream
			// deterministically (ascending neighbor id).
			for j := range n.cache {
				entry := &n.cache[j]
				entry.frame.TieID = garbageID()
				entry.frame.Density = src.Float64() * 100
				entry.frame.HeadID = garbageID()
				if len(entry.frame.Nbrs) > 0 {
					// Cached lists alias the sender's shared published slice;
					// privatize before scribbling so one node's corruption
					// cannot leak into other receivers' caches (or the
					// sender's own outgoing frame).
					entry.frame.Nbrs = append([]NbrSummary(nil), entry.frame.Nbrs...)
					i := src.Intn(len(entry.frame.Nbrs))
					entry.frame.Nbrs[i].ID = garbageID()
					entry.frame.Nbrs[i].HeadID = entry.frame.Nbrs[i].ID
					entry.frame.Nbrs[i].Density = src.Float64() * 100
				}
			}
		}
	}
}
