package runtime

import (
	"fmt"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/geom"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// newTiledTwin is newTwin with a k-tile spatial sharding installed: tile
// ownership follows the grid's positions, and the grid's move hook keeps
// it current under mobility — the same wiring selfstab.WithTiles uses.
func newTiledTwin(t *testing.T, seed int64, n int, r float64, proto Protocol, tiles, workers int) *twin {
	t.Helper()
	tw := newTwin(t, seed, n, r, proto, true, workers)
	tiling := topology.NewTiling(geom.UnitSquare(), tiles)
	if err := tw.e.SetTiles(tiling.Tiles(), func(i int) int {
		return tiling.TileOf(tw.gi.Positions()[i])
	}); err != nil {
		t.Fatal(err)
	}
	tw.gi.SetOnMove(tw.e.Retile)
	return tw
}

// TestTiledMatchesFlatMixedTrace is the tiled engine's equivalence
// oracle: over randomized mixed traces — mobility jitter (which migrates
// nodes across tile boundaries), churn, corruption, interleaved stepping
// — the tiled execution must be bit-identical to the flat frontier path
// at every tile count and worker count. Run it under -race to also pin
// the halo exchange's no-locks discipline.
func TestTiledMatchesFlatMixedTrace(t *testing.T) {
	protos := map[string]Protocol{
		"basic-ttl4": {Order: cluster.OrderBasic, CacheTTL: 4},
		"dag-fusion": {Order: cluster.OrderSticky, CacheTTL: 3, UseDag: true, Gamma: 1 << 14, Fusion: true},
	}
	for name, proto := range protos {
		for _, seed := range []int64{1, 2} {
			for _, workers := range []int{1, 4} {
				for _, tiles := range []int{4, 7} { // 2x2, and a prime (1x7 strip)
					t.Run(fmt.Sprintf("%s/seed%d/w%d/t%d", name, seed, workers, tiles), func(t *testing.T) {
						const n, r = 120, 0.14
						trace := buildTrace(t, seed*1000, n, r, proto, 40)
						flat := newTwin(t, seed*1000, n, r, proto, true, workers)
						tiled := newTiledTwin(t, seed*1000, n, r, proto, tiles, workers)
						if got := tiled.e.Tiles(); got != tiles {
							t.Fatalf("Tiles() = %d, want %d", got, tiles)
						}
						for k, op := range trace {
							flat.apply(t, op)
							tiled.apply(t, op)
							if op.kind == "step" {
								compareTwins(t, fmt.Sprintf("op %d (%s)", k, op.kind), flat, tiled)
							}
						}
						if _, err := flat.e.RunUntilStable(3000, 5); err != nil {
							t.Fatal(err)
						}
						if _, err := tiled.e.RunUntilStable(3000, 5); err != nil {
							t.Fatal(err)
						}
						compareTwins(t, "final", flat, tiled)
						if got := tiled.e.FrontierLen(); got != 0 {
							t.Fatalf("stabilized tiled twin keeps %d nodes on the frontier", got)
						}
					})
				}
			}
		}
	}
}

// TestSaturatedFallbackMatchesDense drives the frontier to full
// saturation (whole-population corruption pends every alive node, so
// 2·|pend| ≥ alive trips the dense-scan fallback on the next step) and
// checks the execution stays bit-identical to the dense engine — on the
// flat path and under a tiling (the fallback check precedes the tiled
// dispatch, so both take it).
func TestSaturatedFallbackMatchesDense(t *testing.T) {
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 4}
	const n, r = 150, 0.13
	const seed = 9000
	dense := newTwin(t, seed, n, r, proto, false, 2)
	flat := newTwin(t, seed, n, r, proto, true, 2)
	tiled := newTiledTwin(t, seed, n, r, proto, 4, 2)
	twins := []*twin{dense, flat, tiled}
	step := func(k int) {
		for _, tw := range twins {
			if err := tw.e.Run(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(30)
	for round := 0; round < 5; round++ {
		for _, tw := range twins {
			tw.e.Corrupt(1.0, CorruptAll, tw.corrupt)
		}
		if got, alive := flat.e.FrontierLen(), flat.e.AliveCount(); 2*got < alive {
			t.Fatalf("round %d: corruption pended only %d of %d alive nodes — fallback not exercised", round, got, alive)
		}
		step(3)
		compareTwins(t, fmt.Sprintf("round %d flat", round), dense, flat)
		compareTwins(t, fmt.Sprintf("round %d tiled", round), dense, tiled)
	}
	step(120)
	compareTwins(t, "final flat", dense, flat)
	compareTwins(t, "final tiled", dense, tiled)
}

// TestNthAliveMatchesScan drives random lifecycle transitions and checks
// the order-statistic index against a reference status scan after each.
func TestNthAliveMatchesScan(t *testing.T) {
	g, ids := randomNetwork(61, 80, 0.2)
	e := mustEngine(t, g, ids, basicProtocol(), radio.Perfect{}, 61)
	src := rng.New(517)
	check := func(when string) {
		t.Helper()
		k := 0
		for i := 0; i < e.N(); i++ {
			if e.Status(i) != StatusAlive {
				continue
			}
			if got := e.NthAlive(k); got != i {
				t.Fatalf("%s: NthAlive(%d) = %d, want %d", when, k, got, i)
			}
			k++
		}
		if k != e.AliveCount() {
			t.Fatalf("%s: scanned %d alive, counter says %d", when, k, e.AliveCount())
		}
		if got := e.NthAlive(k); got != -1 {
			t.Fatalf("%s: NthAlive(%d) = %d beyond the population, want -1", when, k, got)
		}
		if got := e.NthAlive(-1); got != -1 {
			t.Fatalf("%s: NthAlive(-1) = %d, want -1", when, got)
		}
	}
	check("initial")
	for op := 0; op < 200; op++ {
		i := src.Intn(e.N())
		switch src.Intn(4) {
		case 0:
			if e.Status(i) != StatusDead && e.AliveCount() > 2 {
				if err := e.Kill(i); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			if e.Status(i) == StatusAlive && e.AliveCount() > 2 {
				if err := e.Sleep(i); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			if e.Status(i) == StatusSleeping {
				if err := e.Wake(i); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			if e.Status(i) != StatusDead {
				if err := e.Reboot(i); err != nil {
					t.Fatal(err)
				}
			}
		}
		check(fmt.Sprintf("op %d", op))
	}
}

// TestNthAliveAfterAppendAndCompact: the index tracks growth and survives
// a dead-slot compaction (rebuilt from the compacted statuses).
func TestNthAliveAfterAppendAndCompact(t *testing.T) {
	tw := newTwin(t, 733, 40, 0.2, basicProtocol(), true, 1)
	e := tw.e
	src := rng.New(733)
	for k := 0; k < 10; k++ {
		tw.apply(t, traceOp{kind: "append", point: geom.Point{X: src.Float64(), Y: src.Float64()}})
	}
	for k := 0; k < 12; k++ {
		i := src.Intn(e.N())
		if e.Status(i) != StatusDead && e.AliveCount() > 2 {
			tw.apply(t, traceOp{kind: "kill", node: i})
		}
	}
	remap, newN := e.CompactionRemap()
	if remap == nil {
		t.Fatal("no dead slots to compact")
	}
	if err := tw.gi.Compact(remap, newN); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(remap, newN); err != nil {
		t.Fatal(err)
	}
	k := 0
	for i := 0; i < e.N(); i++ {
		if e.Status(i) != StatusAlive {
			continue
		}
		if got := e.NthAlive(k); got != i {
			t.Fatalf("after compact: NthAlive(%d) = %d, want %d", k, got, i)
		}
		k++
	}
	if got := e.NthAlive(k); got != -1 {
		t.Fatalf("after compact: NthAlive(%d) = %d, want -1", k, got)
	}
}
