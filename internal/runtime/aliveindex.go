package runtime

// Order-statistic index over the alive population.
//
// Churn victim picks need "the k-th living slot in index order" for a
// uniform draw k — the natural implementation scans the status array,
// O(N) per pick, which at million-node scale turns every churn step into
// a full-population walk. fenwick is a binary indexed tree over the
// alive bits: set/clear are O(log N) and bolted onto the lifecycle
// transitions (New, Append, Kill, Reboot, Sleep, Wake, Compact), and
// select-k descends the implicit tree in O(log N) without a prefix-sum
// search. The tree stores 0/1 membership only; StatusAlive remains the
// source of truth and Compact rebuilds from it.

type fenwick struct {
	tree []int32 // 1-based; tree[i] sums the lowbit(i)-wide range ending at i
	bit  []bool  // current membership, so set/clear are idempotent
	high int     // largest power of two ≤ len(tree)-1, for the select descent
}

// init sizes the tree for n slots, all absent.
func (f *fenwick) init(n int) {
	f.tree = make([]int32, n+1)
	f.bit = make([]bool, n)
	f.high = 1
	for f.high*2 <= n {
		f.high *= 2
	}
	if n == 0 {
		f.high = 0
	}
}

// initAll sizes the tree for n slots, all present — O(n): an all-ones
// tree is just tree[i] = lowbit(i).
func (f *fenwick) initAll(n int) {
	f.init(n)
	for i := 1; i <= n; i++ {
		f.tree[i] = int32(i & -i)
	}
	for i := range f.bit {
		f.bit[i] = true
	}
}

// grow appends one absent slot.
func (f *fenwick) grow() {
	n := len(f.bit) + 1
	f.bit = append(f.bit, false)
	// Position n's tree node sums the lowbit(n)-wide range ending at n;
	// seed it from the sub-ranges it covers, which all already exist.
	s := int32(0)
	for step := 1; step < n&-n; step *= 2 {
		s += f.tree[n-step]
	}
	f.tree = append(f.tree, s)
	if f.high == 0 {
		f.high = 1
	}
	for f.high*2 <= n {
		f.high *= 2
	}
}

// set marks slot i (0-based) present; no-op if it already is.
func (f *fenwick) set(i int) {
	if f.bit[i] {
		return
	}
	f.bit[i] = true
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j]++
	}
}

// clear marks slot i (0-based) absent; no-op if it already is.
func (f *fenwick) clear(i int) {
	if !f.bit[i] {
		return
	}
	f.bit[i] = false
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j]--
	}
}

// selectK returns the 0-based slot holding the k-th (0-based) present
// member in index order, or -1 when fewer than k+1 members exist.
func (f *fenwick) selectK(k int) int {
	if k < 0 {
		return -1
	}
	want := int32(k) + 1
	pos := 0
	for step := f.high; step > 0; step /= 2 {
		if next := pos + step; next < len(f.tree) && f.tree[next] < want {
			want -= f.tree[next]
			pos = next
		}
	}
	if pos >= len(f.bit) || !f.bit[pos] || want != 1 {
		return -1
	}
	return pos
}

// NthAlive returns the index of the k-th (0-based, in slot order) alive
// node, or -1 when fewer than k+1 nodes are alive. O(log N) — the churn
// subsystem draws k uniformly from [0, AliveCount()) and resolves the
// victim here instead of scanning the population.
func (e *Engine) NthAlive(k int) int { return e.aliveIdx.selectK(k) }
