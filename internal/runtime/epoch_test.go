package runtime

import (
	"errors"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
)

// TestEpochAdvancesExactlyWithChanges pins the cache-invalidation
// contract: the epoch moves iff shared state could have changed — on
// state-changing steps, Corrupt, and SetGraph — and stays put across
// quiescent steps, so epoch-keyed caches are never stale and never
// rebuilt needlessly.
func TestEpochAdvancesExactlyWithChanges(t *testing.T) {
	g, ids := randomNetwork(3, 100, 0.15)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 30)
	if e.Epoch() != 0 {
		t.Fatalf("fresh engine epoch %d, want 0", e.Epoch())
	}
	if _, err := e.RunUntilStable(1000, 5); err != nil {
		t.Fatal(err)
	}
	stable := e.Epoch()
	if stable == 0 {
		t.Fatal("stabilization advanced no epochs")
	}
	// Quiescent steps must not move the epoch.
	for i := 0; i < 10; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Epoch() != stable {
		t.Errorf("quiescent steps moved the epoch %d -> %d", stable, e.Epoch())
	}
	e.Corrupt(1, CorruptAll, rng.New(31))
	if e.Epoch() == stable {
		t.Error("Corrupt did not move the epoch")
	}
	after := e.Epoch()
	if err := e.SetGraph(g.Clone()); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() == after {
		t.Error("SetGraph did not move the epoch")
	}
}

// TestPostStepHook: the hook runs once per step with the completed-step
// count, during Step and RunUntilStable alike; its error aborts the step,
// and nil uninstalls it.
func TestPostStepHook(t *testing.T) {
	g, ids := randomNetwork(4, 60, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 40)
	var calls []int
	e.SetPostStep(func(step int) error {
		calls = append(calls, step)
		return nil
	})
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 || calls[0] != 1 || calls[2] != 3 {
		t.Fatalf("post-step calls = %v, want [1 2 3]", calls)
	}
	if _, err := e.RunUntilStable(500, 3); err != nil {
		t.Fatal(err)
	}
	if len(calls) <= 3 {
		t.Error("RunUntilStable did not drive the post-step hook")
	}
	boom := errors.New("boom")
	e.SetPostStep(func(int) error { return boom })
	if err := e.Step(); !errors.Is(err, boom) {
		t.Errorf("post-step error not propagated: %v", err)
	}
	e.SetPostStep(nil)
	if err := e.Step(); err != nil {
		t.Errorf("nil hook: %v", err)
	}
}
