package runtime

import (
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// TestChurnNodeAppears: a node that was isolated (just powered on) gets
// radio links and integrates into the clustering without disturbing
// legitimacy.
func TestChurnNodeAppears(t *testing.T) {
	g, ids := randomNetwork(91, 60, 0.2)
	// Power the last node off: remove its links.
	victim := 59
	isolated := g.Clone()
	isolated.RemoveNode(victim)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 3}
	e := mustEngine(t, isolated, ids, proto, radio.Perfect{}, 1700)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	if !e.Node(victim).IsHead() {
		t.Fatal("isolated node should head itself")
	}
	// Power it on: restore the full topology.
	if err := e.SetGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	want, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Assignment()
	for u := 0; u < g.N(); u++ {
		if got.Head[u] != want.Head[u] {
			t.Errorf("node %d head = %d, oracle %d after join", u, got.Head[u], want.Head[u])
		}
	}
}

// TestCorruptStateOnly: state-only corruption heals (caches are intact and
// immediately re-teach the node).
func TestCorruptStateOnly(t *testing.T) {
	g, ids := randomNetwork(92, 60, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 1800)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	e.Corrupt(1.0, CorruptState, rng.New(1801))
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d not healed from state corruption", u)
		}
	}
}

// TestCorruptCacheOnly: cache-only corruption heals (fresh frames replace
// the garbage on the next step).
func TestCorruptCacheOnly(t *testing.T) {
	g, ids := randomNetwork(93, 60, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 1900)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	e.Corrupt(1.0, CorruptCache, rng.New(1901))
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d not healed from cache corruption", u)
		}
	}
}

// TestAdversarialHeadHijack: a targeted attack — every node is convinced
// that a non-existent node with maximal density is its head and that the
// phantom sits in every cache. The protocol must flush the phantom.
func TestAdversarialHeadHijack(t *testing.T) {
	g, ids := randomNetwork(94, 50, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 2000)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()

	const phantom = int64(999999)
	for _, n := range e.nodes {
		n.headID = phantom
		n.parent = phantom
		for i := range n.cache {
			n.cache[i].frame.HeadID = phantom
		}
		n.dirty = true // out-of-band mutation: re-arm the guards
		n.frameDirty = true
	}
	e.ActivateAll() // out-of-band mutations must also re-queue the nodes
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] == phantom {
			t.Fatalf("node %d still heads to the phantom", u)
		}
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d head = %d, legit %d", u, healed.HeadID[u], legit.HeadID[u])
		}
	}
}

// TestDensityInflationAttack: every cached density is inflated to look
// attractive; the protocol recomputes from neighbor lists and recovers.
func TestDensityInflationAttack(t *testing.T) {
	g, ids := randomNetwork(95, 50, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 2100)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	for _, n := range e.nodes {
		n.density = 1e9
		for i := range n.cache {
			n.cache[i].frame.Density = 1e9
		}
		n.dirty = true // out-of-band mutation: re-arm the guards
		n.frameDirty = true
	}
	e.ActivateAll() // out-of-band mutations must also re-queue the nodes
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	want := metric.Density{}.Values(g)
	for u := range legit.HeadID {
		if healed.Density[u] != want[u] {
			t.Errorf("node %d density %v, want %v", u, healed.Density[u], want[u])
		}
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d head not restored", u)
		}
	}
}

// TestPartitionAndMerge: splitting the network into two halves and merging
// them back always re-reaches the oracle for the current topology.
func TestPartitionAndMerge(t *testing.T) {
	g, ids := randomNetwork(96, 80, 0.2)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 3}
	e := mustEngine(t, g, ids, proto, radio.Perfect{}, 2200)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}

	// Partition: delete every edge crossing x = 0.5... we don't have
	// positions here, so split by node index parity instead (an arbitrary
	// but valid partition).
	split := topology.New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v > u && (u%2 == v%2) {
				if err := split.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := e.SetGraph(split); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(1000, 5); err != nil {
		t.Fatal(err)
	}

	// Merge back.
	if err := e.SetGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(1000, 5); err != nil {
		t.Fatal(err)
	}
	want, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Assignment()
	for u := 0; u < g.N(); u++ {
		if got.Head[u] != want.Head[u] {
			t.Errorf("node %d head = %d, oracle %d after merge", u, got.Head[u], want.Head[u])
		}
	}
}

// oracleHeads computes the static fixpoint clustering for the current
// graph (identifier tie-break, no fusion).
func oracleHeads(t *testing.T, g *topology.Graph, ids []int64) []int {
	t.Helper()
	want, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	return want.Head
}

// TestEngineAppendIntegratesNewNode: a node added at runtime joins the
// clustering and the whole network matches the oracle for the grown
// topology.
func TestEngineAppendIntegratesNewNode(t *testing.T) {
	g, ids := randomNetwork(131, 60, 0.2)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 3}
	e := mustEngine(t, g, ids, proto, radio.Perfect{}, 3100)
	e.SetConvergenceWindow(6)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	// Grow the graph first (the Append contract), wiring the newcomer to
	// a handful of existing nodes.
	u := g.AddNode()
	for _, v := range []int{0, 1, 2, 3} {
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	newID := int64(100000)
	idx, err := e.Append(newID)
	if err != nil {
		t.Fatal(err)
	}
	if idx != u {
		t.Fatalf("Append gave index %d, graph node is %d", idx, u)
	}
	if _, err := e.Append(newID); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := e.RunUntilStable(500, 8); err != nil {
		t.Fatal(err)
	}
	ids = append(ids, newID)
	want := oracleHeads(t, g, ids)
	got := e.Assignment()
	for v := 0; v < g.N(); v++ {
		if got.Head[v] != want[v] {
			t.Errorf("node %d head = %d, oracle %d after join", v, got.Head[v], want[v])
		}
	}
	recs := e.DisruptionRecords()
	if len(recs) == 0 {
		t.Fatal("join left no convergence-ledger record")
	}
	last := recs[len(recs)-1]
	if last.Kinds&ChurnJoin == 0 {
		t.Errorf("ledger kinds %v missing join", last.Kinds)
	}
	if last.AffectedNodes == 0 || last.AffectedRadius < 0 {
		t.Errorf("join affected nothing: %+v", last)
	}
}

// TestEngineKillAndSleepHeal: killing and sleeping nodes (with their
// edges detached, as the topology layer does) re-converges the survivors
// to the oracle of the shrunken graph; dead and sleeping slots are self-
// heads and do not disturb it. Waking the sleeper re-converges again.
func TestEngineKillAndSleepHeal(t *testing.T) {
	g, ids := randomNetwork(132, 70, 0.2)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 3}
	e := mustEngine(t, g, ids, proto, radio.Perfect{}, 3200)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}

	dead, sleeper := 5, 9
	sleeperNbrs := append([]int(nil), g.Neighbors(sleeper)...)
	if err := e.Kill(dead); err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(dead)
	if err := e.Sleep(sleeper); err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(sleeper)
	if err := e.Kill(dead); err == nil {
		t.Error("double kill accepted")
	}
	if err := e.Sleep(sleeper); err == nil {
		t.Error("sleeping a sleeper accepted")
	}
	if err := e.Wake(dead); err == nil {
		t.Error("waking a dead node accepted")
	}
	if got := e.Status(dead); got != StatusDead {
		t.Fatalf("status(dead) = %v", got)
	}
	if got := e.Status(sleeper); got != StatusSleeping {
		t.Fatalf("status(sleeper) = %v", got)
	}
	if got, want := e.AliveCount(), g.N()-2; got != want {
		t.Fatalf("AliveCount = %d, want %d", got, want)
	}

	if _, err := e.RunUntilStable(1000, 8); err != nil {
		t.Fatal(err)
	}
	frozen := e.nodes[sleeper].headID
	want := oracleHeads(t, g, ids)
	got := e.Assignment()
	for v := 0; v < g.N(); v++ {
		if v == sleeper {
			continue // frozen state is exempt until wake
		}
		if got.Head[v] != want[v] {
			t.Errorf("node %d head = %d, oracle %d after kill+sleep", v, got.Head[v], want[v])
		}
	}
	if e.nodes[sleeper].headID != frozen {
		t.Error("sleeping node's state moved")
	}

	// Wake: restore the sleeper's edges (minus any to the dead node),
	// then bring it back.
	for _, v := range sleeperNbrs {
		if v != dead {
			if err := g.AddEdge(sleeper, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Wake(sleeper); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(1000, 8); err != nil {
		t.Fatal(err)
	}
	want = oracleHeads(t, g, ids)
	got = e.Assignment()
	for v := 0; v < g.N(); v++ {
		if got.Head[v] != want[v] {
			t.Errorf("node %d head = %d, oracle %d after wake", v, got.Head[v], want[v])
		}
	}
}

// TestEngineChurnParallelDeterminism: a scripted churn schedule (joins,
// kills, crashes, sleep/wake) must yield bit-identical snapshots AND a
// bit-identical convergence ledger at 1 and 4 workers.
func TestEngineChurnParallelDeterminism(t *testing.T) {
	run := func(workers int) (Snapshot, []DisruptionRecord) {
		g, ids := randomNetwork(133, 200, 0.12)
		proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 4}
		e := mustEngine(t, g, ids, proto, radio.Perfect{}, 3300)
		e.SetParallelism(workers)
		nextID := int64(90000)
		e.SetPreStep(func(step int) error {
			switch step {
			case 10, 40:
				if err := e.Reboot(step % 7); err != nil {
					return err
				}
			case 20:
				if err := e.Sleep(3); err != nil {
					return err
				}
				g.RemoveNode(3)
			case 30:
				for _, v := range []int{0, 10, 20} {
					if err := g.AddEdge(3, v); err != nil {
						return err
					}
				}
				if err := e.Wake(3); err != nil {
					return err
				}
			case 50:
				u := g.AddNode()
				for _, v := range []int{u - 1, u - 2} {
					if err := g.AddEdge(u, v); err != nil {
						return err
					}
				}
				nextID++
				if _, err := e.Append(nextID); err != nil {
					return err
				}
			case 60:
				if err := e.Kill(11); err != nil {
					return err
				}
				g.RemoveNode(11)
			}
			return nil
		})
		if err := e.Run(120); err != nil {
			t.Fatal(err)
		}
		return e.Snapshot(), e.DisruptionRecords()
	}
	s1, l1 := run(1)
	s4, l4 := run(4)
	for u := range s1.HeadID {
		if s1.TieID[u] != s4.TieID[u] || s1.Density[u] != s4.Density[u] ||
			s1.HeadID[u] != s4.HeadID[u] || s1.Parent[u] != s4.Parent[u] {
			t.Fatalf("node %d diverged between 1 and 4 workers under churn", u)
		}
	}
	if len(l1) == 0 {
		t.Fatal("churn schedule produced no ledger records")
	}
	if len(l1) != len(l4) {
		t.Fatalf("ledger length diverged: %d vs %d", len(l1), len(l4))
	}
	for i := range l1 {
		if l1[i] != l4[i] {
			t.Fatalf("ledger record %d diverged:\n1: %+v\n4: %+v", i, l1[i], l4[i])
		}
	}
}

// TestCorruptFracClamped pins the Corrupt contract at the edges: frac <= 0
// is a guaranteed no-op (state, epoch and rng untouched), frac > 1 hits
// every node.
func TestCorruptFracClamped(t *testing.T) {
	g, ids := randomNetwork(134, 40, 0.25)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 3400)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	epoch := e.Epoch()

	src := rng.New(3401)
	before := src.Int63()
	src = rng.New(3401)
	e.Corrupt(-0.5, CorruptAll, src)
	if got := e.Epoch(); got != epoch {
		t.Errorf("negative frac bumped epoch %d -> %d", epoch, got)
	}
	if got := src.Int63(); got != before {
		t.Error("negative frac consumed rng draws")
	}
	after := e.Snapshot()
	for u := range legit.HeadID {
		if after.HeadID[u] != legit.HeadID[u] || after.Density[u] != legit.Density[u] {
			t.Fatalf("negative frac corrupted node %d", u)
		}
	}

	e.Corrupt(2.5, CorruptState, rng.New(3402))
	if e.Epoch() == epoch {
		t.Error("frac > 1 did not bump the epoch")
	}
	for i, n := range e.nodes {
		if !n.dirty {
			t.Fatalf("frac > 1 skipped node %d", i)
		}
	}
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d not healed after frac > 1 corruption", u)
		}
	}
}

// TestDensityScaleDrivesReelection: scaling down a head's density makes
// it lose the ≺ election once the scaled value propagates — the online
// head-rotation primitive the energy subsystem drives — and scales stay
// aligned across churn arrivals.
func TestDensityScaleDrivesReelection(t *testing.T) {
	// A 5-node star: the hub has the dominant density and heads everyone.
	g := topology.New(5)
	for leaf := 1; leaf < 5; leaf++ {
		if err := g.AddEdge(0, leaf); err != nil {
			t.Fatal(err)
		}
	}
	e, err := New(g, []int64{10, 20, 30, 40, 50}, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(200, 5); err != nil {
		t.Fatal(err)
	}
	if !e.Node(0).IsHead() {
		t.Fatalf("hub did not head the star: head=%d", e.Node(0).HeadID())
	}
	hubDensity := e.Node(0).Density()

	// Drain the hub: its shared density drops to a tenth and a leaf takes
	// over headship of itself (leaves see no dominating neighbor anymore).
	if err := e.SetDensityScale(0, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(200, 5); err != nil {
		t.Fatal(err)
	}
	if got := e.Node(0).Density(); got >= hubDensity {
		t.Fatalf("scaled density %v not below %v", got, hubDensity)
	}
	if e.Node(0).IsHead() && e.Node(0).Density() > e.Node(1).Density() {
		t.Fatalf("drained hub still dominates: hub %v vs leaf %v", e.Node(0).Density(), e.Node(1).Density())
	}
	if got := e.DensityScale(0); got != 0.1 {
		t.Fatalf("DensityScale(0) = %v, want 0.1", got)
	}

	// Churn arrival: the scale array grows in lockstep, newcomer at 1.
	g.AddNode()
	if err := g.AddEdge(5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(60); err != nil {
		t.Fatal(err)
	}
	if got := e.DensityScale(5); got != 1 {
		t.Fatalf("arrival scale %v, want 1", got)
	}
	if err := e.SetDensityScale(99, 1); err == nil {
		t.Fatal("out-of-range scale index accepted")
	}
}
