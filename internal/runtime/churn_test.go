package runtime

import (
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// TestChurnNodeAppears: a node that was isolated (just powered on) gets
// radio links and integrates into the clustering without disturbing
// legitimacy.
func TestChurnNodeAppears(t *testing.T) {
	g, ids := randomNetwork(91, 60, 0.2)
	// Power the last node off: remove its links.
	victim := 59
	isolated := g.Clone()
	isolated.RemoveNode(victim)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 3}
	e := mustEngine(t, isolated, ids, proto, radio.Perfect{}, 1700)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	if !e.Node(victim).IsHead() {
		t.Fatal("isolated node should head itself")
	}
	// Power it on: restore the full topology.
	if err := e.SetGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	want, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Assignment()
	for u := 0; u < g.N(); u++ {
		if got.Head[u] != want.Head[u] {
			t.Errorf("node %d head = %d, oracle %d after join", u, got.Head[u], want.Head[u])
		}
	}
}

// TestCorruptStateOnly: state-only corruption heals (caches are intact and
// immediately re-teach the node).
func TestCorruptStateOnly(t *testing.T) {
	g, ids := randomNetwork(92, 60, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 1800)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	e.Corrupt(1.0, CorruptState, rng.New(1801))
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d not healed from state corruption", u)
		}
	}
}

// TestCorruptCacheOnly: cache-only corruption heals (fresh frames replace
// the garbage on the next step).
func TestCorruptCacheOnly(t *testing.T) {
	g, ids := randomNetwork(93, 60, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 1900)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	e.Corrupt(1.0, CorruptCache, rng.New(1901))
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d not healed from cache corruption", u)
		}
	}
}

// TestAdversarialHeadHijack: a targeted attack — every node is convinced
// that a non-existent node with maximal density is its head and that the
// phantom sits in every cache. The protocol must flush the phantom.
func TestAdversarialHeadHijack(t *testing.T) {
	g, ids := randomNetwork(94, 50, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 2000)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()

	const phantom = int64(999999)
	for _, n := range e.nodes {
		n.headID = phantom
		n.parent = phantom
		for i := range n.cache {
			n.cache[i].frame.HeadID = phantom
		}
		n.dirty = true // out-of-band mutation: re-arm the guards
		n.frameDirty = true
	}
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	for u := range legit.HeadID {
		if healed.HeadID[u] == phantom {
			t.Fatalf("node %d still heads to the phantom", u)
		}
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d head = %d, legit %d", u, healed.HeadID[u], legit.HeadID[u])
		}
	}
}

// TestDensityInflationAttack: every cached density is inflated to look
// attractive; the protocol recomputes from neighbor lists and recovers.
func TestDensityInflationAttack(t *testing.T) {
	g, ids := randomNetwork(95, 50, 0.2)
	e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, 2100)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	legit := e.Snapshot()
	for _, n := range e.nodes {
		n.density = 1e9
		for i := range n.cache {
			n.cache[i].frame.Density = 1e9
		}
		n.dirty = true // out-of-band mutation: re-arm the guards
		n.frameDirty = true
	}
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}
	healed := e.Snapshot()
	want := metric.Density{}.Values(g)
	for u := range legit.HeadID {
		if healed.Density[u] != want[u] {
			t.Errorf("node %d density %v, want %v", u, healed.Density[u], want[u])
		}
		if healed.HeadID[u] != legit.HeadID[u] {
			t.Errorf("node %d head not restored", u)
		}
	}
}

// TestPartitionAndMerge: splitting the network into two halves and merging
// them back always re-reaches the oracle for the current topology.
func TestPartitionAndMerge(t *testing.T) {
	g, ids := randomNetwork(96, 80, 0.2)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 3}
	e := mustEngine(t, g, ids, proto, radio.Perfect{}, 2200)
	if _, err := e.RunUntilStable(500, 5); err != nil {
		t.Fatal(err)
	}

	// Partition: delete every edge crossing x = 0.5... we don't have
	// positions here, so split by node index parity instead (an arbitrary
	// but valid partition).
	split := topology.New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v > u && (u%2 == v%2) {
				if err := split.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := e.SetGraph(split); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(1000, 5); err != nil {
		t.Fatal(err)
	}

	// Merge back.
	if err := e.SetGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilStable(1000, 5); err != nil {
		t.Fatal(err)
	}
	want, err := cluster.Compute(g, cluster.Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  cluster.OrderBasic,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Assignment()
	for u := 0; u < g.N(); u++ {
		if got.Head[u] != want.Head[u] {
			t.Errorf("node %d head = %d, oracle %d after merge", u, got.Head[u], want.Head[u])
		}
	}
}
