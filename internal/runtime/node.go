package runtime

import (
	"sort"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
)

// cacheEntry is the cached copy of a neighbor's last heard frame, plus its
// age in steps (for eviction under mobility and churn).
type cacheEntry struct {
	frame Frame
	age   int
}

// Node is one protocol participant. Its exported-shape state is exactly the
// paper's shared variables; everything else is the cache described by the
// shared-variable propagation scheme.
type Node struct {
	id      int64
	tieID   int64 // DAG color when the DAG is enabled, else the id itself
	density float64
	headID  int64
	parent  int64 // F(p): last chosen parent (own id when head)

	cache map[int64]*cacheEntry
	src   *rng.Source
}

// newNode boots a node in the protocol's cold-start state: it claims
// headship of itself and, with the DAG enabled, draws an initial color.
func newNode(id int64, proto Protocol, src *rng.Source) *Node {
	n := &Node{
		id:     id,
		tieID:  id,
		headID: id,
		parent: id,
		cache:  make(map[int64]*cacheEntry, 8),
		src:    src,
	}
	if proto.UseDag {
		n.tieID = src.Int63() % proto.Gamma
	}
	return n
}

// ID returns the node's application identifier.
func (n *Node) ID() int64 { return n.id }

// TieID returns the current tie-break identifier (DAG color or id).
func (n *Node) TieID() int64 { return n.tieID }

// Density returns the current shared density value.
func (n *Node) Density() float64 { return n.density }

// HeadID returns the current cluster-head choice.
func (n *Node) HeadID() int64 { return n.headID }

// ParentID returns the current parent choice F(p).
func (n *Node) ParentID() int64 { return n.parent }

// IsHead reports whether the node currently claims headship.
func (n *Node) IsHead() bool { return n.headID == n.id }

// makeFrame assembles the node's broadcast for this step.
func (n *Node) makeFrame() Frame {
	f := Frame{
		ID:      n.id,
		TieID:   n.tieID,
		Density: n.density,
		HeadID:  n.headID,
		Nbrs:    make([]NbrSummary, 0, len(n.cache)),
	}
	for _, e := range n.cache {
		f.Nbrs = append(f.Nbrs, NbrSummary{
			ID:      e.frame.ID,
			TieID:   e.frame.TieID,
			Density: e.frame.Density,
			HeadID:  e.frame.HeadID,
		})
	}
	// Deterministic frame layout (map iteration order is randomized).
	sort.Slice(f.Nbrs, func(i, j int) bool { return f.Nbrs[i].ID < f.Nbrs[j].ID })
	return f
}

// ingest ages the cache, installs newly heard frames, and evicts entries
// not refreshed within ttl steps (ttl 0 disables eviction; appropriate for
// static topologies).
func (n *Node) ingest(frames []Frame, ttl int) {
	for _, e := range n.cache {
		e.age++
	}
	for _, f := range frames {
		if f.ID == n.id {
			continue // own echo; cannot happen with honest media, but cheap to guard
		}
		// Deep-copy the summary list: the broadcast frame is shared between
		// every receiver of the same transmission, and cached state must be
		// private (fault injection corrupts one cache, not all of them).
		f.Nbrs = append([]NbrSummary(nil), f.Nbrs...)
		n.cache[f.ID] = &cacheEntry{frame: f}
	}
	if ttl > 0 {
		for id, e := range n.cache {
			if e.age > ttl {
				delete(n.cache, id)
			}
		}
	}
}

// guardN1 is Algorithm N1: redraw the color when it collides with a
// neighbor's cached color and this node loses the tie (smaller application
// identifier redraws). The fresh color avoids every cached neighbor color;
// if the cached occupancy leaves nothing free (transient, e.g. after
// corruption with a tiny gamma), the node keeps its color and retries next
// step rather than spinning.
func (n *Node) guardN1(proto Protocol) {
	if !proto.UseDag {
		// Without the DAG the tie identifier IS the application id; a
		// corrupted value would silently reorder ≺ forever, so pinning it
		// is the correction action here.
		n.tieID = n.id
		return
	}
	// Self-stabilization: a corrupted color outside the name space is
	// always illegitimate; normalize it first.
	if n.tieID < 0 || n.tieID >= proto.Gamma {
		n.tieID = n.src.Int63() % proto.Gamma
	}
	conflict := false
	for _, e := range n.cache {
		if e.frame.TieID == n.tieID && n.id < e.frame.ID {
			conflict = true
			break
		}
	}
	if !conflict {
		return
	}
	taken := make(map[int64]bool, len(n.cache))
	for _, e := range n.cache {
		taken[e.frame.TieID] = true
	}
	for attempt := 0; attempt < 64; attempt++ {
		c := n.src.Int63() % proto.Gamma
		if !taken[c] {
			n.tieID = c
			return
		}
	}
}

// guardR1 recomputes the shared density from cached neighbor lists
// (Definition 1 evaluated on 2-hop knowledge).
func (n *Node) guardR1() {
	own := make([]int64, 0, len(n.cache))
	lists := make(map[int64][]int64, len(n.cache))
	for id, e := range n.cache {
		own = append(own, id)
		l := make([]int64, 0, len(e.frame.Nbrs))
		for _, s := range e.frame.Nbrs {
			l = append(l, s.ID)
		}
		lists[id] = l
	}
	n.density = metric.DensityFromTables(n.id, own, lists)
}

// guardR2 is the cluster-head selection rule, including the Section 4.3
// fusion variant when enabled.
func (n *Node) guardR2(proto Protocol) {
	myRank := cluster.Rank{Value: n.density, TieID: n.tieID, IsHead: n.IsHead(), AppID: n.id}

	// Find the ≺-maximal cached neighbor.
	bestID := int64(-1)
	var bestRank cluster.Rank
	var bestHead int64
	dominated := false
	for id, e := range n.cache {
		r := rankOf(e.frame)
		if proto.Order.Less(myRank, r) {
			dominated = true
		}
		if bestID < 0 || proto.Order.Less(bestRank, r) {
			bestID, bestRank, bestHead = id, r, e.frame.HeadID
		}
	}

	if dominated {
		// Join the ≺-maximal neighbor and adopt its head.
		n.parent = bestID
		n.headID = bestHead
		return
	}

	if proto.Fusion {
		// 2-hop guard: adopt the ≺-greatest head claimant two hops away
		// that beats this node, if any (the fusion: this node's cluster
		// merges into that head's).
		adoptID := int64(-1)
		var adoptRank cluster.Rank
		adoptVia := int64(-1)
		var adoptViaRank cluster.Rank
		for via, e := range n.cache {
			viaRank := rankOf(e.frame)
			for _, s := range e.frame.Nbrs {
				if s.ID == n.id || s.HeadID != s.ID {
					continue
				}
				if _, oneHop := n.cache[s.ID]; oneHop {
					continue // 1-hop claimants are covered by the ≺ scan
				}
				r := cluster.Rank{Value: s.Density, TieID: s.TieID, IsHead: true, AppID: s.ID}
				if !proto.Order.Less(myRank, r) {
					continue
				}
				// Adopt a strictly greater head; when the same head is
				// relayed by several neighbors, relay through the
				// ≺-maximal one (deterministic regardless of cache
				// iteration order).
				switch {
				case adoptID < 0 || proto.Order.Less(adoptRank, r):
					adoptID, adoptRank = s.ID, r
					adoptVia, adoptViaRank = via, viaRank
				case s.ID == adoptID && proto.Order.Less(adoptViaRank, viaRank):
					adoptVia, adoptViaRank = via, viaRank
				}
			}
		}
		if adoptID >= 0 {
			n.headID = adoptID
			n.parent = adoptVia
			return
		}
	}

	// Locally maximal (and unchallenged within two hops): claim headship.
	n.headID = n.id
	n.parent = n.id
}

// rankOf extracts the comparison rank from a cached frame.
func rankOf(f Frame) cluster.Rank {
	return cluster.Rank{Value: f.Density, TieID: f.TieID, IsHead: f.HeadID == f.ID, AppID: f.ID}
}
