package runtime

import (
	"slices"

	"selfstab/internal/cluster"
	"selfstab/internal/rng"
)

// cacheEntry is the cached copy of a neighbor's last heard frame, plus its
// age in steps (for eviction under mobility and churn). The entry's Nbrs
// slice ALIASES the sender's published summary list — published lists are
// immutable (fillFrame builds a fresh one only when the content changed),
// so receivers share one allocation per sender instead of keeping a deep
// copy each, and a whole cached neighborhood costs O(deg) summaries per
// node instead of O(deg²). Anything that wants to scribble on a cached
// list (fault injection) must privatize it first.
type cacheEntry struct {
	frame Frame
	age   int
}

// neighborCache is a node's neighbor table: one entry per cached neighbor,
// kept sorted by neighbor identifier in a flat slice. The protocol's hot
// loops (frame assembly, density counting, head election) iterate and
// intersect neighbor sets every step, and a sorted slice turns those into
// cache-friendly linear walks and merge scans instead of hash lookups —
// the map-based cache spent almost half of every step hashing.
type neighborCache []cacheEntry

// find returns the index of id, or -1.
func (c neighborCache) find(id int64) int {
	lo, hi := 0, len(c)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c[mid].frame.ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c) && c[lo].frame.ID == id {
		return lo
	}
	return -1
}

// has reports whether id is cached.
func (c neighborCache) has(id int64) bool { return c.find(id) >= 0 }

// upsert returns the entry for id, inserting a zero entry at the sorted
// position when absent, and reports whether it inserted. The pointer is
// valid only until the next mutation.
func (c *neighborCache) upsert(id int64) (*cacheEntry, bool) {
	s := *c
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].frame.ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo].frame.ID == id {
		return &s[lo], false
	}
	if len(s) == cap(s) {
		// Grow straight to a useful capacity: the cache starts nil (most
		// cold constructions would outgrow any prealloc immediately) and
		// unit-disk degrees make 1-2-4 growth steps pure churn.
		ncap := 2 * cap(s)
		if ncap < 8 {
			ncap = 8
		}
		t := make(neighborCache, len(s), ncap)
		copy(t, s)
		s = t
	}
	s = append(s, cacheEntry{})
	copy(s[lo+1:], s[lo:])
	s[lo] = cacheEntry{frame: Frame{ID: id}}
	*c = s
	return &s[lo], true
}

// sameNbrs reports whether two summary lists carry identical content.
// Published lists are immutable and shared, so in steady state a cached
// list and a re-heard one are usually the SAME allocation — the pointer
// check turns the per-refresh comparison from an O(deg) element walk into
// O(1). The element walk remains as the fallback for lists that are equal
// by value but not by identity (e.g. hand-built test frames).
func sameNbrs(a, b []NbrSummary) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	return slices.Equal(a, b)
}

// put installs a full entry (test fixture helper).
func (c *neighborCache) put(e cacheEntry) {
	slot, _ := c.upsert(e.frame.ID)
	*slot = e
}

// Node is one protocol participant. Its exported-shape state is exactly the
// paper's shared variables; everything else is the cache described by the
// shared-variable propagation scheme.
type Node struct {
	id      int64
	tieID   int64 // DAG color when the DAG is enabled, else the id itself
	density float64
	headID  int64
	parent  int64 // F(p): last chosen parent (own id when head)

	cache neighborCache
	src   *rng.Source

	// dirty records that the node's guard inputs (cache contents or own
	// shared variables) may have changed since the guards last ran. The
	// guards are deterministic functions of those inputs, so a clean node
	// can skip evaluation entirely — in a stabilized network a step then
	// costs only delivery and cache-refresh comparisons.
	//
	// frameDirty records that the node's broadcast content (own shared
	// variables or cached summaries) may have changed since the outgoing
	// frame was last assembled. It is cleared when the frame scratch is
	// refilled, while dirty is cleared when the guards run — the two
	// must stay separate: a cache change that leaves every guard output
	// unchanged still changes the relayed neighbor summaries.
	//
	// Anything that mutates node state outside ingest/guards (corruption,
	// test fixtures) must set both — and, under frontier stepping, also
	// Activate the node so the worklist re-examines it.
	dirty      bool
	frameDirty bool

	// stale records that the last (sparse-path) ingest left at least one
	// cache entry aging toward TTL eviction — the node must stay on the
	// frontier so the entry keeps aging exactly as the full scan would
	// age it. Only meaningful with a positive TTL; see ingestAdj.
	stale bool
}

// newNode boots a node in the protocol's cold-start state: it claims
// headship of itself and, with the DAG enabled, draws an initial color.
func newNode(id int64, proto Protocol, src *rng.Source) *Node {
	n := &Node{}
	initNode(n, id, proto, src)
	return n
}

// initNode is newNode into caller-provided storage, so the engine can
// lay the initial population out in one contiguous arena. The neighbor
// cache starts nil and materializes on the first heard frame — most of a
// cold construction's nodes would otherwise pre-allocate capacity they
// immediately outgrow.
func initNode(n *Node, id int64, proto Protocol, src *rng.Source) {
	*n = Node{
		id:         id,
		tieID:      id,
		headID:     id,
		parent:     id,
		src:        src,
		dirty:      true,
		frameDirty: true,
	}
	if proto.UseDag {
		n.tieID = src.Int63() % proto.Gamma
	}
}

// reset returns the node to the cold-start state of newNode: self-head,
// empty cache, and (with the DAG) a fresh color drawn from the node's own
// stream — the stream continues rather than restarting, so a crash at a
// fixed step stays reproducible. Cache entries are zeroed so evicted
// frames do not pin their Nbrs arrays; the entry slice keeps its capacity.
func (n *Node) reset(proto Protocol) {
	n.tieID = n.id
	if proto.UseDag {
		n.tieID = n.src.Int63() % proto.Gamma
	}
	n.density = 0
	n.headID = n.id
	n.parent = n.id
	for i := range n.cache {
		n.cache[i] = cacheEntry{}
	}
	n.cache = n.cache[:0]
	n.dirty = true
	n.frameDirty = true
	n.stale = false
}

// ID returns the node's application identifier.
func (n *Node) ID() int64 { return n.id }

// TieID returns the current tie-break identifier (DAG color or id).
func (n *Node) TieID() int64 { return n.tieID }

// Density returns the current shared density value.
func (n *Node) Density() float64 { return n.density }

// HeadID returns the current cluster-head choice.
func (n *Node) HeadID() int64 { return n.headID }

// ParentID returns the current parent choice F(p).
func (n *Node) ParentID() int64 { return n.parent }

// IsHead reports whether the node currently claims headship.
func (n *Node) IsHead() bool { return n.headID == n.id }

// fillFrame assembles the node's broadcast for this step into f. The
// cache is id-sorted, so the summary list comes out deterministic without
// a sort. Publish-on-change: a published Nbrs slice is immutable —
// receivers alias it instead of deep-copying (see cacheEntry) — so the
// list is rebuilt into a fresh allocation only when its content actually
// changed, and kept verbatim otherwise. The content depends only on the
// neighbor cache, not on the node's own shared variables, so the frequent
// frameDirty causes (own density/head updates, energy rescaling) refresh
// the scalar header fields and reuse the list untouched.
//
//selfstab:hotpath
func (n *Node) fillFrame(f *Frame) {
	f.ID = n.id
	f.TieID = n.tieID
	f.Density = n.density
	f.HeadID = n.headID
	if len(f.Nbrs) == len(n.cache) {
		same := true
		for i := range n.cache {
			e := &n.cache[i].frame
			s := &f.Nbrs[i]
			if s.ID != e.ID || s.TieID != e.TieID || s.Density != e.Density || s.HeadID != e.HeadID {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	nbrs := make([]NbrSummary, len(n.cache))
	for i := range n.cache {
		e := &n.cache[i].frame
		nbrs[i] = NbrSummary{ID: e.ID, TieID: e.TieID, Density: e.Density, HeadID: e.HeadID}
	}
	f.Nbrs = nbrs
}

// ingest ages the cache, installs the frames heard this step (frames[s]
// for each sender index s), and evicts entries not refreshed within ttl
// steps (ttl 0 disables eviction; appropriate for static topologies).
// The cached scalar fields are private copies; the Nbrs list is a shared
// alias of the sender's immutable published slice (see cacheEntry), so a
// content change costs one slice-header store, not a deep copy.
func (n *Node) ingest(frames []Frame, senders []int32, ttl int) {
	for i := range n.cache {
		n.cache[i].age++
	}
	for _, s := range senders {
		f := &frames[s]
		if f.ID == n.id {
			continue // own echo; cannot happen with honest media, but cheap to guard
		}
		e, added := n.cache.upsert(f.ID)
		// Only an appearing neighbor or a content change re-arms the
		// guards; the common steady-state refresh (identical frame) costs
		// one comparison — O(1) when the list aliases match.
		if added || e.frame.TieID != f.TieID || e.frame.Density != f.Density ||
			e.frame.HeadID != f.HeadID || !sameNbrs(e.frame.Nbrs, f.Nbrs) {
			e.frame = Frame{ID: f.ID, TieID: f.TieID, Density: f.Density, HeadID: f.HeadID, Nbrs: f.Nbrs}
			n.dirty = true
			n.frameDirty = true
		}
		e.age = 0
	}
	if ttl > 0 {
		kept := n.cache[:0]
		for i := range n.cache {
			if n.cache[i].age <= ttl {
				kept = append(kept, n.cache[i])
			}
		}
		if len(kept) != len(n.cache) {
			// Zero the tail so evicted frames don't pin their Nbrs arrays.
			for i := len(kept); i < len(n.cache); i++ {
				n.cache[i] = cacheEntry{}
			}
			n.cache = kept
			n.dirty = true
			n.frameDirty = true
		}
	}
}

// ingestAdj is the sparse-path twin of ingest: identical cache semantics
// (aging, upsert-and-compare, TTL eviction — keep the two in lockstep),
// but the heard senders come straight from the node's adjacency list
// filtered by the engine's send mask, which is exactly what a lossless
// medium delivers. It additionally records in n.stale whether any entry
// survived the pass unrefreshed, so the frontier engine knows the node
// must be re-examined next step for its aging to stay bit-identical to
// the full scan. With ttl 0 eviction never fires, aging is unobservable,
// and stale stays false so fully-refreshed nodes can leave the frontier.
//
//selfstab:hotpath
func (n *Node) ingestAdj(frames []Frame, nbrs []int, sending []bool, ttl int) {
	for i := range n.cache {
		n.cache[i].age++
	}
	for _, s := range nbrs {
		if !sending[s] {
			continue
		}
		f := &frames[s]
		if f.ID == n.id {
			continue // own echo; cannot happen with honest media, but cheap to guard
		}
		e, added := n.cache.upsert(f.ID)
		if added || e.frame.TieID != f.TieID || e.frame.Density != f.Density ||
			e.frame.HeadID != f.HeadID || !sameNbrs(e.frame.Nbrs, f.Nbrs) {
			e.frame = Frame{ID: f.ID, TieID: f.TieID, Density: f.Density, HeadID: f.HeadID, Nbrs: f.Nbrs}
			n.dirty = true
			n.frameDirty = true
		}
		e.age = 0
	}
	n.stale = false
	if ttl > 0 {
		kept := n.cache[:0]
		for i := range n.cache {
			if n.cache[i].age <= ttl {
				kept = append(kept, n.cache[i])
			}
		}
		if len(kept) != len(n.cache) {
			for i := len(kept); i < len(n.cache); i++ {
				n.cache[i] = cacheEntry{}
			}
			n.cache = kept
			n.dirty = true
			n.frameDirty = true
		}
		for i := range n.cache {
			if n.cache[i].age > 0 {
				n.stale = true
				break
			}
		}
	}
}

// guardN1 is Algorithm N1: redraw the color when it collides with a
// neighbor's cached color and this node loses the tie (smaller application
// identifier redraws). The fresh color avoids every cached neighbor color;
// if the cached occupancy leaves nothing free (transient, e.g. after
// corruption with a tiny gamma), the node keeps its color and retries next
// step rather than spinning. Reports whether the shared color changed.
//
//selfstab:hotpath
func (n *Node) guardN1(proto Protocol) bool {
	old := n.tieID
	if !proto.UseDag {
		// Without the DAG the tie identifier IS the application id; a
		// corrupted value would silently reorder ≺ forever, so pinning it
		// is the correction action here.
		n.tieID = n.id
		return n.tieID != old
	}
	// Self-stabilization: a corrupted color outside the name space is
	// always illegitimate; normalize it first.
	if n.tieID < 0 || n.tieID >= proto.Gamma {
		n.tieID = n.src.Int63() % proto.Gamma
	}
	conflict := false
	for i := range n.cache {
		if n.cache[i].frame.TieID == n.tieID && n.id < n.cache[i].frame.ID {
			conflict = true
			break
		}
	}
	if !conflict {
		return n.tieID != old
	}
	taken := make(map[int64]bool, len(n.cache))
	for i := range n.cache {
		taken[n.cache[i].frame.TieID] = true
	}
	for attempt := 0; attempt < 64; attempt++ {
		c := n.src.Int63() % proto.Gamma
		if !taken[c] {
			n.tieID = c
			return true
		}
	}
	// Redraw failed: keep the color but stay dirty so the retry happens
	// next step. The out-of-range normalization above may still have
	// changed the shared color, so report against the entry value.
	n.dirty = true
	return n.tieID != old
}

// guardR1 recomputes the shared density from cached neighbor lists
// (Definition 1 evaluated on 2-hop knowledge), scaled by the engine's
// per-node density multiplier (1 unless an energy policy installed one).
// The cache key set IS the node's view of N(p), and both it and every
// advertised neighbor list are id-sorted, so the membership test is a
// merge scan — no hashing, no allocation. Reports whether the shared
// density changed.
//
//selfstab:hotpath
func (n *Node) guardR1(scale float64) bool {
	old := n.density
	deg := len(n.cache)
	if deg == 0 {
		n.density = 0
		return n.density != old
	}
	links := deg // the |Np| edges p-q
	// Count edges among neighbors once: v < w, both in N(p), adjacent
	// according to v's advertised list.
	for i := range n.cache {
		v := n.cache[i].frame.ID
		nbrs := n.cache[i].frame.Nbrs
		// Advance j over the cache (sorted) in lockstep with the summary
		// list, starting past v (only w > v counts). Honest frames carry
		// id-sorted summaries, making this a merge scan; a corrupted
		// cache can hold a scrambled list, and from the first
		// out-of-order element on we fall back to binary search so the
		// count stays exactly Definition 1 even on garbage.
		j := i + 1
		sorted := true
		prev := int64(-1) << 62
		for k := range nbrs {
			w := nbrs[k].ID
			if w < prev {
				sorted = false
			}
			prev = w
			if w <= v {
				continue
			}
			if !sorted {
				if n.cache.has(w) {
					links++
				}
				continue
			}
			for j < deg && n.cache[j].frame.ID < w {
				j++
			}
			if j < deg && n.cache[j].frame.ID == w {
				links++
			}
		}
	}
	n.density = scale * (float64(links) / float64(deg))
	return n.density != old
}

// guardR2 is the cluster-head selection rule, including the Section 4.3
// fusion variant when enabled. Reports whether head or parent changed.
//
//selfstab:hotpath
func (n *Node) guardR2(proto Protocol) bool {
	oldHead, oldParent := n.headID, n.parent
	myRank := cluster.Rank{Value: n.density, TieID: n.tieID, IsHead: n.IsHead(), AppID: n.id}

	// Find the ≺-maximal cached neighbor.
	bestID := int64(-1)
	var bestRank cluster.Rank
	var bestHead int64
	dominated := false
	for i := range n.cache {
		e := &n.cache[i]
		r := rankOf(e.frame)
		if proto.Order.Less(myRank, r) {
			dominated = true
		}
		if bestID < 0 || proto.Order.Less(bestRank, r) {
			bestID, bestRank, bestHead = e.frame.ID, r, e.frame.HeadID
		}
	}

	if dominated {
		// Join the ≺-maximal neighbor and adopt its head.
		n.parent = bestID
		n.headID = bestHead
		return n.headID != oldHead || n.parent != oldParent
	}

	if proto.Fusion {
		// 2-hop guard: adopt the ≺-greatest head claimant two hops away
		// that beats this node, if any (the fusion: this node's cluster
		// merges into that head's).
		adoptID := int64(-1)
		var adoptRank cluster.Rank
		adoptVia := int64(-1)
		var adoptViaRank cluster.Rank
		for i := range n.cache {
			e := &n.cache[i]
			via := e.frame.ID
			viaRank := rankOf(e.frame)
			for _, s := range e.frame.Nbrs {
				if s.ID == n.id || s.HeadID != s.ID {
					continue
				}
				if n.cache.has(s.ID) {
					continue // 1-hop claimants are covered by the ≺ scan
				}
				r := cluster.Rank{Value: s.Density, TieID: s.TieID, IsHead: true, AppID: s.ID}
				if !proto.Order.Less(myRank, r) {
					continue
				}
				// Adopt a strictly greater head; when the same head is
				// relayed by several neighbors, relay through the
				// ≺-maximal one (deterministic regardless of cache
				// iteration order).
				switch {
				case adoptID < 0 || proto.Order.Less(adoptRank, r):
					adoptID, adoptRank = s.ID, r
					adoptVia, adoptViaRank = via, viaRank
				case s.ID == adoptID && proto.Order.Less(adoptViaRank, viaRank):
					adoptVia, adoptViaRank = via, viaRank
				}
			}
		}
		if adoptID >= 0 {
			n.headID = adoptID
			n.parent = adoptVia
			return n.headID != oldHead || n.parent != oldParent
		}
	}

	// Locally maximal (and unchallenged within two hops): claim headship.
	n.headID = n.id
	n.parent = n.id
	return n.headID != oldHead || n.parent != oldParent
}

// rankOf extracts the comparison rank from a cached frame.
func rankOf(f Frame) cluster.Rank {
	return cluster.Rank{Value: f.Density, TieID: f.TieID, IsHead: f.HeadID == f.ID, AppID: f.ID}
}
