package runtime

import (
	"fmt"
	"math"
	"os"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/geom"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// requireScaleBench gates the expensive scale suite (100k-node setups)
// behind SELFSTAB_SCALE_BENCH=1 so a plain `go test -bench .` over the
// package stays minutes, not tens of minutes. scripts/bench.sh sets it
// for the BENCH_scale.json section, as does the CI scale smoke.
func requireScaleBench(b *testing.B) {
	b.Helper()
	if os.Getenv("SELFSTAB_SCALE_BENCH") == "" {
		b.Skip("set SELFSTAB_SCALE_BENCH=1 to run the scale suite (see scripts/bench.sh)")
	}
}

// scalePoints deploys n uniform nodes with the radio range chosen for a
// mean degree of ~10, so per-node local work is constant across scales
// and the benchmarks isolate the engine's N-dependence.
func scalePoints(seed int64, n int) ([]geom.Point, []int64, float64) {
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	ids := make([]int64, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
		ids[i] = int64(i)
	}
	r := math.Sqrt(10 / (math.Pi * float64(n)))
	return pts, ids, r
}

func stableScaleEngine(b *testing.B, n int, sparse bool) *Engine {
	b.Helper()
	pts, ids, r := scalePoints(int64(n), n)
	g := topology.FromPoints(pts, r)
	e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(int64(n)))
	if err != nil {
		b.Fatal(err)
	}
	if err := e.SetSparse(sparse); err != nil {
		b.Fatal(err)
	}
	if _, err := e.RunUntilStable(5000, 5); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkQuiescentStep measures a stabilized network's step at 1k,
// 10k and 100k nodes under frontier stepping. The acceptance criterion
// of the scale work is that these stay roughly flat in N (O(frontier),
// and the frontier is empty) with steady-state allocs/op ≤ 2; compare
// BenchmarkQuiescentStepDense1k for the O(N) full-scan baseline the
// 100k cost would otherwise extrapolate from.
func BenchmarkQuiescentStep(b *testing.B) {
	requireScaleBench(b)
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := stableScaleEngine(b, n, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuiescentStepDense1k is the full-scan cost of the same
// quiescent step at 1k nodes — multiply by N/1000 for the extrapolated
// dense cost the frontier engine is measured against.
func BenchmarkQuiescentStepDense1k(b *testing.B) {
	requireScaleBench(b)
	e := stableScaleEngine(b, 1_000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStep100k measures a locally perturbed step at 100k nodes:
// each step, 100 spread-out nodes change their density scale (the
// energy-rotation write path), so the frontier holds those nodes plus
// their radio neighborhoods while the other ~99.9% of the network is
// skipped.
func BenchmarkStep100k(b *testing.B) {
	requireScaleBench(b)
	const n = 100_000
	e := stableScaleEngine(b, n, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := 0.875
		if i%2 == 1 {
			s = 1.0
		}
		for k := 0; k < 100; k++ {
			if err := e.SetDensityScale((k*997+13)%n, s); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompact measures dead-slot recycling at 10k nodes with 20%
// dead: the grid/graph compaction plus the engine's remap. Setup (a
// fresh engine with freshly killed slots per iteration) is untimed.
func BenchmarkCompact(b *testing.B) {
	requireScaleBench(b)
	const n = 10_000
	pts, ids, r := scalePoints(n, n)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gi := topology.NewGridIndexInRegion(pts, r, geom.UnitSquare())
		e, err := New(gi.Graph(), ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(n))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(3); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < n/5; k++ {
			v := (k*4999 + 7) % n
			if e.Status(v) != StatusAlive {
				continue
			}
			if err := e.Kill(v); err != nil {
				b.Fatal(err)
			}
			gi.Deactivate(v)
		}
		b.StartTimer()
		remap, newN := e.CompactionRemap()
		if remap == nil {
			b.Fatal("nothing to compact")
		}
		if err := gi.Compact(remap, newN); err != nil {
			b.Fatal(err)
		}
		if err := e.Compact(remap, newN); err != nil {
			b.Fatal(err)
		}
	}
}
