package runtime

import (
	"fmt"
	"math"
	"os"
	goruntime "runtime"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/geom"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// requireScaleBench gates the expensive scale suite (100k-node setups)
// behind SELFSTAB_SCALE_BENCH=1 so a plain `go test -bench .` over the
// package stays minutes, not tens of minutes. scripts/bench.sh sets it
// for the BENCH_scale.json section, as does the CI scale smoke.
func requireScaleBench(b *testing.B) {
	b.Helper()
	if os.Getenv("SELFSTAB_SCALE_BENCH") == "" {
		b.Skip("set SELFSTAB_SCALE_BENCH=1 to run the scale suite (see scripts/bench.sh)")
	}
}

// scalePoints deploys n uniform nodes with the radio range chosen for a
// mean degree of ~10, so per-node local work is constant across scales
// and the benchmarks isolate the engine's N-dependence.
func scalePoints(seed int64, n int) ([]geom.Point, []int64, float64) {
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	ids := make([]int64, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
		ids[i] = int64(i)
	}
	r := math.Sqrt(10 / (math.Pi * float64(n)))
	return pts, ids, r
}

func stableScaleEngine(b *testing.B, n int, sparse bool) *Engine {
	b.Helper()
	pts, ids, r := scalePoints(int64(n), n)
	g := topology.FromPoints(pts, r)
	e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(int64(n)))
	if err != nil {
		b.Fatal(err)
	}
	if err := e.SetSparse(sparse); err != nil {
		b.Fatal(err)
	}
	if _, err := e.RunUntilStable(5000, 5); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkQuiescentStep measures a stabilized network's step at 1k,
// 10k and 100k nodes under frontier stepping. The acceptance criterion
// of the scale work is that these stay roughly flat in N (O(frontier),
// and the frontier is empty) with steady-state allocs/op ≤ 2; compare
// BenchmarkQuiescentStepDense1k for the O(N) full-scan baseline the
// 100k cost would otherwise extrapolate from.
func BenchmarkQuiescentStep(b *testing.B) {
	requireScaleBench(b)
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := stableScaleEngine(b, n, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuiescentStepDense1k is the full-scan cost of the same
// quiescent step at 1k nodes — multiply by N/1000 for the extrapolated
// dense cost the frontier engine is measured against.
func BenchmarkQuiescentStepDense1k(b *testing.B) {
	requireScaleBench(b)
	e := stableScaleEngine(b, 1_000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStep100k measures a locally perturbed step at 100k nodes:
// each step, 100 spread-out nodes change their density scale (the
// energy-rotation write path), so the frontier holds those nodes plus
// their radio neighborhoods while the other ~99.9% of the network is
// skipped.
func BenchmarkStep100k(b *testing.B) {
	requireScaleBench(b)
	const n = 100_000
	e := stableScaleEngine(b, n, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perturbedStep(b, e, n, i)
	}
	b.StopTimer()
	// Live heap for the whole stabilized world — the 1M scenario's
	// memory budget is quoted relative to this footprint.
	var ms goruntime.MemStats
	goruntime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heapMB")
}

// stableTiledScaleEngine is stableScaleEngine plus a k-tile spatial
// sharding (tiles <= 1 leaves the engine untiled).
func stableTiledScaleEngine(b *testing.B, n, tiles int) *Engine {
	b.Helper()
	pts, ids, r := scalePoints(int64(n), n)
	g := topology.FromPoints(pts, r)
	e, err := New(g, ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(int64(n)))
	if err != nil {
		b.Fatal(err)
	}
	if err := e.SetSparse(true); err != nil {
		b.Fatal(err)
	}
	if tiles > 1 {
		tiling := topology.NewTiling(geom.UnitSquare(), tiles)
		if err := e.SetTiles(tiling.Tiles(), func(i int) int {
			return tiling.TileOf(pts[i])
		}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := e.RunUntilStable(5000, 5); err != nil {
		b.Fatal(err)
	}
	return e
}

// perturbedStep is the BenchmarkStep100k workload body: 100 spread-out
// density-scale writes followed by one step, alternating the scale so
// every iteration does real guard work.
func perturbedStep(b *testing.B, e *Engine, n, i int) {
	s := 0.875
	if i%2 == 1 {
		s = 1.0
	}
	for k := 0; k < 100; k++ {
		if err := e.SetDensityScale((k*997+13)%n, s); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Step(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStep100kTiles is BenchmarkStep100k across a tile-count sweep:
// the same locally perturbed workload with the region sharded 1, 2, 4 and
// 8 ways. With one worker the tiled path's overhead (halo routing, outbox
// merge) should be noise; on a multicore host the per-tile phases run in
// parallel and the step should scale with min(tiles, cores).
func BenchmarkStep100kTiles(b *testing.B) {
	requireScaleBench(b)
	const n = 100_000
	for _, tiles := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tiles=%d", tiles), func(b *testing.B) {
			e := stableTiledScaleEngine(b, n, tiles)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				perturbedStep(b, e, n, i)
			}
		})
	}
}

// BenchmarkStepSaturated pins the dense-scan fallback: ActivateAll pends
// the whole population before every step, so 2·|frontier| ≥ alive routes
// the step through the saturated path — a flat index-order scan instead
// of worklist bookkeeping for nearly every node. This is the regime where
// naive frontier stepping is strictly worse than the dense engine.
func BenchmarkStepSaturated(b *testing.B) {
	requireScaleBench(b)
	const n = 10_000
	e := stableScaleEngine(b, n, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ActivateAll()
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStep1M is the million-node tentpole scenario: the perturbed
// step at n=1,000,000 under an 8-way tiling, with the post-setup heap
// reported so the memory diet (interned neighbor summaries: O(deg) per
// node instead of O(deg²)) shows up next to the step time. Gated twice —
// SELFSTAB_SCALE_BENCH_1M on top of the scale gate — because setup alone
// costs minutes and ~2 GB; the CI smoke tier never runs it.
func BenchmarkStep1M(b *testing.B) {
	requireScaleBench(b)
	if os.Getenv("SELFSTAB_SCALE_BENCH_1M") == "" {
		b.Skip("set SELFSTAB_SCALE_BENCH_1M=1 to run the million-node scenario")
	}
	const n = 1_000_000
	e := stableTiledScaleEngine(b, n, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perturbedStep(b, e, n, i)
	}
	b.StopTimer()
	// After ResetTimer (which clears custom metrics), report the live
	// heap holding the whole stabilized world — the memory-budget number.
	var ms goruntime.MemStats
	goruntime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heapMB")
}

// BenchmarkCompact measures dead-slot recycling at 10k nodes with 20%
// dead: the grid/graph compaction plus the engine's remap. Setup (a
// fresh engine with freshly killed slots per iteration) is untimed.
func BenchmarkCompact(b *testing.B) {
	requireScaleBench(b)
	const n = 10_000
	pts, ids, r := scalePoints(n, n)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gi := topology.NewGridIndexInRegion(pts, r, geom.UnitSquare())
		e, err := New(gi.Graph(), ids, Protocol{Order: cluster.OrderBasic}, radio.Perfect{}, rng.New(n))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(3); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < n/5; k++ {
			v := (k*4999 + 7) % n
			if e.Status(v) != StatusAlive {
				continue
			}
			if err := e.Kill(v); err != nil {
				b.Fatal(err)
			}
			gi.Deactivate(v)
		}
		b.StartTimer()
		remap, newN := e.CompactionRemap()
		if remap == nil {
			b.Fatal("nothing to compact")
		}
		if err := gi.Compact(remap, newN); err != nil {
			b.Fatal(err)
		}
		if err := e.Compact(remap, newN); err != nil {
			b.Fatal(err)
		}
	}
}
