// Package runtime executes the paper's protocol stack as an actual
// message-passing system: nodes repeatedly broadcast their shared variables
// (DAG color, density, cluster-head) over a lossy radio medium, cache what
// they hear from neighbors, and evaluate the guarded assignments N1
// (constant-height DAG construction), R1 (density computation) and R2
// (cluster-head selection) against those caches. Time advances in the
// paper's Δ(τ) steps: one local broadcast per node per step.
//
// The package is the testbed for the self-stabilization claims: state and
// caches can be corrupted arbitrarily (transient faults) and the system
// must return to a legitimate configuration — matching the static oracle in
// package cluster — within a bounded expected number of steps.
package runtime

// NbrSummary is what a node relays about one of its cached neighbors.
// Relaying it gives receivers 2-hop knowledge: neighbor lists (for the
// density computation) and 2-hop head claims (for the fusion rule).
type NbrSummary struct {
	ID      int64
	TieID   int64
	Density float64
	HeadID  int64
}

// Frame is one broadcast: the sender's shared variables plus a summary of
// its current neighbor cache, Nbrs, sorted by neighbor identifier.
//
// The scalar header fields live in a reusable arena (one outgoing frame
// per sender, rewritten in place between steps), but a published Nbrs
// slice is IMMUTABLE: fillFrame allocates a fresh list only when the
// summary content changed, and never writes into an already-published
// one. Receivers rely on that to cache the list by reference — one shared
// allocation per sender generation instead of a deep copy per receiver —
// so an old alias stays valid forever, and anything that wants to mutate
// a summary list it did not just allocate (fault injection, tests) must
// copy it first.
type Frame struct {
	ID      int64
	TieID   int64
	Density float64
	HeadID  int64
	Nbrs    []NbrSummary
}

// IsHeadClaim reports whether the frame's sender currently claims to be a
// cluster-head.
func (f *Frame) IsHeadClaim() bool { return f.HeadID == f.ID }
