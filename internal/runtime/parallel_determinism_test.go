package runtime

import (
	"slices"
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
)

// TestParallelDeterminism is the contract the parallel step engine must
// honor: for a fixed seed, Snapshot trajectories are bit-identical
// regardless of worker count — under the perfect and the Bernoulli medium,
// with the DAG's per-node color draws, and with a randomized daemon
// (ActivationProb < 1) whose scheduling draws must stay ordered.
func TestParallelDeterminism(t *testing.T) {
	type scenario struct {
		name       string
		bernoulli  bool
		activation float64
	}
	scenarios := []scenario{
		{"perfect/sync", false, 1},
		{"perfect/daemon0.6", false, 0.6},
		{"bernoulli0.7/sync", true, 1},
		{"bernoulli0.7/daemon0.6", true, 0.6},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			g, ids := randomNetwork(33, 300, 0.12)
			proto := Protocol{
				Order:          cluster.OrderBasic,
				UseDag:         true,
				Gamma:          int64(g.MaxDegree()*g.MaxDegree() + 1),
				ActivationProb: sc.activation,
				CacheTTL:       4,
			}
			build := func(workers int) *Engine {
				var m radio.Medium = radio.Perfect{}
				if sc.bernoulli {
					var err error
					m, err = radio.NewBernoulli(0.7, rng.New(42))
					if err != nil {
						t.Fatal(err)
					}
				}
				e := mustEngine(t, g, ids, proto, m, 4242)
				e.SetParallelism(workers)
				return e
			}
			// GOMAXPROCS-shaped worker counts: forced sequential vs a
			// 4-worker pool (forEachNode honors the explicit setting even
			// on a single-core host, so the concurrent path really runs).
			e1 := build(1)
			e4 := build(4)
			for phase := 0; phase < 3; phase++ {
				if err := e1.Run(15); err != nil {
					t.Fatal(err)
				}
				if err := e4.Run(15); err != nil {
					t.Fatal(err)
				}
				s1, s4 := e1.Snapshot(), e4.Snapshot()
				for u := range s1.HeadID {
					if s1.TieID[u] != s4.TieID[u] || s1.Density[u] != s4.Density[u] ||
						s1.HeadID[u] != s4.HeadID[u] || s1.Parent[u] != s4.Parent[u] {
						t.Fatalf("phase %d: node %d diverged between 1 and 4 workers", phase, u)
					}
				}
			}
		})
	}
}

// TestDirtyTrackingMatchesSnapshotCompare cross-checks the guards'
// change-reporting (which RunUntilStable trusts) against the brute-force
// method: snapshotting the shared state around every step and comparing.
func TestDirtyTrackingMatchesSnapshotCompare(t *testing.T) {
	g, ids := randomNetwork(77, 120, 0.15)
	protos := map[string]Protocol{
		"no-dag": {Order: cluster.OrderBasic, ActivationProb: 0.7, CacheTTL: 3},
		// A barely-legal gamma makes N1 color conflicts (and occasional
		// failed redraws, which must not be miscounted) common.
		"dag-tight-gamma": {Order: cluster.OrderBasic, ActivationProb: 0.7, CacheTTL: 3,
			UseDag: true, Gamma: int64(g.MaxDegree() + 2)},
	}
	for name, proto := range protos {
		t.Run(name, func(t *testing.T) {
			m, err := radio.NewBernoulli(0.8, rng.New(5))
			if err != nil {
				t.Fatal(err)
			}
			e := mustEngine(t, g, ids, proto, m, 505)
			sawQuiet := false
			for s := 0; s < 120; s++ {
				if s%40 == 20 {
					// Mid-run corruption: the flag must pick the churn
					// back up (and, with the DAG, drive out-of-range
					// color normalizations through guardN1).
					e.Corrupt(0.3, CorruptAll, rng.New(506+int64(s)))
				}
				before := e.sharedState()
				if err := e.Step(); err != nil {
					t.Fatal(err)
				}
				after := e.sharedState()
				if got, want := e.stepChanged, !statesEqual(before, after); got != want {
					t.Fatalf("step %d: stepChanged = %v, snapshot compare says %v", s, got, want)
				}
				if !e.stepChanged {
					sawQuiet = true
				}
			}
			if !sawQuiet {
				t.Log("warning: no quiescent step observed; dirty-path not exercised")
			}
		})
	}
}

// TestGuardSkippingIsOutputEquivalent: the dirty-flag machinery must be
// invisible — an engine that is forced to rebuild every frame and evaluate
// every guard each step (the seed engine's behavior) must produce a
// bit-identical trajectory. Fusion + loss + TTL + daemon maximizes the
// 2-hop propagation paths where a stale relayed summary would show.
func TestGuardSkippingIsOutputEquivalent(t *testing.T) {
	g, ids := randomNetwork(55, 150, 0.14)
	proto := Protocol{Order: cluster.OrderSticky, Fusion: true, CacheTTL: 5, ActivationProb: 0.8}
	build := func() *Engine {
		m, err := radio.NewBernoulli(0.85, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return mustEngine(t, g, ids, proto, m, 777)
	}
	fast := build()
	ref := build()
	// Partial corruption every few steps keeps shared densities churning,
	// so relayed 2-hop summaries keep changing inside otherwise-quiet
	// neighborhoods — exactly the traffic a stale frame cache would get
	// wrong. Both engines consume identical corruption streams.
	cf, cr := rng.New(99), rng.New(99)
	want := make([]Frame, fast.N())
	for s := 0; s < 80; s++ {
		if s%7 == 3 {
			fast.Corrupt(0.15, CorruptState, cf)
			ref.Corrupt(0.15, CorruptState, cr)
		}
		// What each node must broadcast this step: a frame assembled fresh
		// from its current state, the way the seed engine built one every
		// step unconditionally.
		for i, n := range fast.nodes {
			n.fillFrame(&want[i])
		}
		if err := fast.Step(); err != nil {
			t.Fatal(err)
		}
		// The scratch the engine actually broadcast from must match — a
		// skipped refill is only legal when the content is identical.
		for i := range want {
			got := &fast.out[i]
			if got.ID != want[i].ID || got.TieID != want[i].TieID ||
				got.Density != want[i].Density || got.HeadID != want[i].HeadID ||
				!slices.Equal(got.Nbrs, want[i].Nbrs) {
				t.Fatalf("step %d: node %d broadcast a stale frame", s, i)
			}
		}
		for _, n := range ref.nodes {
			n.dirty, n.frameDirty = true, true // disable all skipping
		}
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
		sf, sr := fast.Snapshot(), ref.Snapshot()
		for u := range sf.HeadID {
			if sf.TieID[u] != sr.TieID[u] || sf.Density[u] != sr.Density[u] ||
				sf.HeadID[u] != sr.HeadID[u] || sf.Parent[u] != sr.Parent[u] {
				t.Fatalf("step %d: node %d diverged from the never-skip reference", s, u)
			}
		}
	}
}

// TestGuardR1MatchesDensityOracle pins guardR1's merge-scan edge counting
// to metric.DensityFromTables, the Definition 1 oracle it replaced on the
// hot path — if either side's handling of advertised neighbor lists ever
// changes, this is the test that catches the drift. Loss, TTL eviction
// and corruption keep the caches messy (stale, asymmetric, garbage ids).
func TestGuardR1MatchesDensityOracle(t *testing.T) {
	g, ids := randomNetwork(88, 100, 0.16)
	proto := Protocol{Order: cluster.OrderBasic, CacheTTL: 2}
	m, err := radio.NewBernoulli(0.6, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, g, ids, proto, m, 808)
	for s := 0; s < 40; s++ {
		if s%11 == 5 {
			e.Corrupt(0.4, CorruptAll, rng.New(809+int64(s)))
		}
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		for i, n := range e.nodes {
			own := make([]int64, 0, len(n.cache))
			lists := make(map[int64][]int64, len(n.cache))
			for j := range n.cache {
				f := &n.cache[j].frame
				own = append(own, f.ID)
				l := make([]int64, 0, len(f.Nbrs))
				for _, s := range f.Nbrs {
					l = append(l, s.ID)
				}
				lists[f.ID] = l
			}
			// The daemon is synchronous here, so guardR1 ran this step on
			// every dirty node; force one evaluation on the current cache
			// to compare against the oracle regardless of skipping.
			n.guardR1(1)
			if want := metric.DensityFromTables(n.id, own, lists); n.density != want {
				t.Fatalf("step %d: node %d guardR1 density %v, oracle %v", s, i, n.density, want)
			}
			n.dirty, n.frameDirty = true, true // undo the forced evaluation's bookkeeping
		}
	}
}

// TestStatesEqualLengthGuard: a length mismatch must compare unequal, not
// panic (node counts can change under future churn support).
func TestStatesEqualLengthGuard(t *testing.T) {
	a := []sharedVars{{tieID: 1}}
	b := []sharedVars{{tieID: 1}, {tieID: 2}}
	if statesEqual(a, b) {
		t.Error("length mismatch reported equal")
	}
	if statesEqual(b, a) {
		t.Error("length mismatch reported equal (swapped)")
	}
	if !statesEqual(a, a) {
		t.Error("identical state reported unequal")
	}
}

// TestParallelMatchesSequentialStabilization: the stabilization step index
// — not just the final state — must agree across worker counts.
func TestParallelMatchesSequentialStabilization(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g, ids := randomNetwork(200+seed, 200, 0.12)
		run := func(workers int) (int, Snapshot) {
			e := mustEngine(t, g, ids, Protocol{Order: cluster.OrderSticky, Fusion: true}, radio.Perfect{}, 900+seed)
			e.SetParallelism(workers)
			at, err := e.RunUntilStable(1000, 5)
			if err != nil {
				t.Fatal(err)
			}
			return at, e.Snapshot()
		}
		at1, s1 := run(1)
		at4, s4 := run(4)
		if at1 != at4 {
			t.Fatalf("seed %d: stabilized at step %d with 1 worker, %d with 4", seed, at1, at4)
		}
		for u := range s1.HeadID {
			if s1.HeadID[u] != s4.HeadID[u] {
				t.Fatalf("seed %d: node %d head diverged", seed, u)
			}
		}
	}
}
