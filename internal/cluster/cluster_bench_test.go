package cluster

import (
	"testing"
)

// BenchmarkCompute1000 is the fixpoint oracle at paper scale.
func BenchmarkCompute1000(b *testing.B) {
	g, cfg := randomInstance(1, 1000, 0.1, OrderBasic, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompute1000Fusion adds the 2-hop fusion guard.
func BenchmarkCompute1000Fusion(b *testing.B) {
	g, cfg := randomInstance(2, 1000, 0.1, OrderBasic, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeStats measures the Tables 4/5 statistics extraction.
func BenchmarkComputeStats(b *testing.B) {
	g, cfg := randomInstance(3, 1000, 0.1, OrderBasic, false)
	a, err := Compute(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ComputeStats(g)
	}
}

// BenchmarkMaxMin is the baseline clusterer at paper scale.
func BenchmarkMaxMin(b *testing.B) {
	g, cfg := randomInstance(4, 1000, 0.1, OrderBasic, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxMin(g, cfg.TieIDs, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckInvariants measures the legitimacy predicate.
func BenchmarkCheckInvariants(b *testing.B) {
	g, cfg := randomInstance(5, 1000, 0.1, OrderBasic, false)
	a, err := Compute(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckInvariants(g, a, false); err != nil {
			b.Fatal(err)
		}
	}
}
