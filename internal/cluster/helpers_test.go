package cluster

import (
	"selfstab/internal/geom"
	"selfstab/internal/metric"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// randomInstance builds a random geometric graph with n nodes, radio range
// r, random unique tie ids, and densities as metric values.
func randomInstance(seed int64, n int, r float64, order Order, fusion bool) (*topology.Graph, Config) {
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
	}
	g := topology.FromPoints(pts, r)
	ids := make([]int64, n)
	for i, p := range src.Perm(n) {
		ids[i] = int64(p)
	}
	return g, Config{
		Values: metric.Density{}.Values(g),
		TieIDs: ids,
		Order:  order,
		Fusion: fusion,
	}
}
