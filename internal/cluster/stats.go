package cluster

import (
	"sort"

	"selfstab/internal/topology"
)

// Stats summarizes a clustering the way the paper's Tables 4 and 5 do:
// number of clusters, cluster-head eccentricity inside each cluster
// (e(H(u)/C)), and clusterization-tree length (the number of parent hops a
// node's cluster-head identity travels to reach it).
type Stats struct {
	// NumClusters is the number of distinct cluster-heads.
	NumClusters int
	// MeanHeadEccentricity averages, over clusters, the maximum in-cluster
	// hop distance from the head to a member.
	MeanHeadEccentricity float64
	// MaxHeadEccentricity is the worst in-cluster head eccentricity.
	MaxHeadEccentricity int
	// MeanTreeLength averages, over non-head nodes, the length of the
	// parent chain to the head. Heads contribute 0 through MaxTreeLength
	// only.
	MeanTreeLength float64
	// MaxTreeLength is the deepest parent chain, which bounds the number
	// of steps the head identity needs to propagate (the stabilization
	// time proxy of Section 5).
	MaxTreeLength int
	// Sizes lists the cluster sizes in descending order.
	Sizes []int
}

// ComputeStats measures a on g.
func (a *Assignment) ComputeStats(g *topology.Graph) Stats {
	n := g.N()
	var s Stats
	if n == 0 {
		return s
	}

	members := make(map[int][]int, 8)
	for u := 0; u < n; u++ {
		h := a.Head[u]
		members[h] = append(members[h], u)
	}
	s.NumClusters = len(members)

	// Head eccentricities within each cluster.
	member := make([]bool, n)
	eccSum := 0
	for h, us := range members {
		for _, u := range us {
			member[u] = true
		}
		ecc := 0
		for _, d := range g.DistancesWithin(h, member) {
			if d > ecc {
				ecc = d
			}
		}
		eccSum += ecc
		if ecc > s.MaxHeadEccentricity {
			s.MaxHeadEccentricity = ecc
		}
		for _, u := range us {
			member[u] = false
		}
		s.Sizes = append(s.Sizes, len(us))
	}
	s.MeanHeadEccentricity = float64(eccSum) / float64(len(members))
	sort.Sort(sort.Reverse(sort.IntSlice(s.Sizes)))

	// Parent-chain lengths.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	var chainLen func(u int) int
	chainLen = func(u int) int {
		if depth[u] >= 0 {
			return depth[u]
		}
		if a.Parent[u] == u {
			depth[u] = 0
			return 0
		}
		// Mark to guard against accidental cycles (must not happen for a
		// valid assignment; a cycle would recurse forever otherwise).
		depth[u] = 0
		depth[u] = chainLen(a.Parent[u]) + 1
		return depth[u]
	}
	sum, count := 0, 0
	for u := 0; u < n; u++ {
		d := chainLen(u)
		if d > s.MaxTreeLength {
			s.MaxTreeLength = d
		}
		if a.Parent[u] != u {
			sum += d
			count++
		}
	}
	if count > 0 {
		s.MeanTreeLength = float64(sum) / float64(count)
	}
	return s
}

// Heads returns the sorted list of cluster-head indices.
func (a *Assignment) Heads() []int {
	var hs []int
	for u, p := range a.Parent {
		if p == u {
			hs = append(hs, u)
		}
	}
	return hs
}

// IsHead reports whether u is a cluster-head.
func (a *Assignment) IsHead(u int) bool { return a.Parent[u] == u }

// Members returns the node indices whose head is h, in ascending order.
func (a *Assignment) Members(h int) []int {
	var ms []int
	for u, hu := range a.Head {
		if hu == h {
			ms = append(ms, u)
		}
	}
	return ms
}
