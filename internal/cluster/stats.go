package cluster

import (
	"sort"

	"selfstab/internal/topology"
)

// Stats summarizes a clustering the way the paper's Tables 4 and 5 do:
// number of clusters, cluster-head eccentricity inside each cluster
// (e(H(u)/C)), and clusterization-tree length (the number of parent hops a
// node's cluster-head identity travels to reach it).
type Stats struct {
	// NumClusters is the number of distinct cluster-heads.
	NumClusters int
	// MeanHeadEccentricity averages, over clusters, the maximum in-cluster
	// hop distance from the head to a member.
	MeanHeadEccentricity float64
	// MaxHeadEccentricity is the worst in-cluster head eccentricity.
	MaxHeadEccentricity int
	// MeanTreeLength averages, over non-head nodes, the length of the
	// parent chain to the head. Heads contribute 0 through MaxTreeLength
	// only.
	MeanTreeLength float64
	// MaxTreeLength is the deepest parent chain, which bounds the number
	// of steps the head identity needs to propagate (the stabilization
	// time proxy of Section 5).
	MaxTreeLength int
	// Sizes lists the cluster sizes in descending order.
	Sizes []int
}

// ComputeStats measures a on g over every node.
func (a *Assignment) ComputeStats(g *topology.Graph) Stats {
	return a.ComputeStatsOn(g, nil)
}

// ComputeStatsOn measures a on g restricted to the operating nodes
// (operating == nil means every node). Non-operating slots — dead or
// sleeping nodes under churn, which hold their dense indices forever —
// are excluded entirely: they form no singleton clusters, anchor no
// parent chains and never count as members. A head or parent reference
// that does not resolve to an operating node (transient states, a head
// that just died) degrades to self, exactly like the render sanitizer.
func (a *Assignment) ComputeStatsOn(g *topology.Graph, operating []bool) Stats {
	n := g.N()
	var s Stats
	if n == 0 {
		return s
	}
	on := func(u int) bool { return operating == nil || operating[u] }

	members := make(map[int][]int, 8)
	for u := 0; u < n; u++ {
		if !on(u) {
			continue
		}
		h := a.Head[u]
		if h < 0 || h >= n || !on(h) {
			h = u
		}
		members[h] = append(members[h], u)
	}
	s.NumClusters = len(members)

	// Head eccentricities within each cluster.
	member := make([]bool, n)
	eccSum := 0
	for h, us := range members {
		for _, u := range us {
			member[u] = true
		}
		ecc := 0
		for _, d := range g.DistancesWithin(h, member) {
			if d > ecc {
				ecc = d
			}
		}
		eccSum += ecc
		if ecc > s.MaxHeadEccentricity {
			s.MaxHeadEccentricity = ecc
		}
		for _, u := range us {
			member[u] = false
		}
		s.Sizes = append(s.Sizes, len(us))
	}
	if len(members) == 0 {
		return s // no operating node: nothing to measure
	}
	s.MeanHeadEccentricity = float64(eccSum) / float64(len(members))
	sort.Sort(sort.Reverse(sort.IntSlice(s.Sizes)))

	// Parent-chain lengths. A chain ends at a self-parent — or at a
	// reference that leaves the operating population, which a surviving
	// node treats as being its own root.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	var chainLen func(u int) int
	chainLen = func(u int) int {
		if depth[u] >= 0 {
			return depth[u]
		}
		p := a.Parent[u]
		if p == u || p < 0 || p >= n || !on(p) {
			depth[u] = 0
			return 0
		}
		// Mark to guard against accidental cycles (must not happen for a
		// valid assignment; a cycle would recurse forever otherwise).
		depth[u] = 0
		depth[u] = chainLen(p) + 1
		return depth[u]
	}
	sum, count := 0, 0
	for u := 0; u < n; u++ {
		if !on(u) {
			continue
		}
		d := chainLen(u)
		if d > s.MaxTreeLength {
			s.MaxTreeLength = d
		}
		if a.Parent[u] != u {
			sum += d
			count++
		}
	}
	if count > 0 {
		s.MeanTreeLength = float64(sum) / float64(count)
	}
	return s
}

// Heads returns the sorted list of cluster-head indices.
func (a *Assignment) Heads() []int {
	var hs []int
	for u, p := range a.Parent {
		if p == u {
			hs = append(hs, u)
		}
	}
	return hs
}

// IsHead reports whether u is a cluster-head.
func (a *Assignment) IsHead(u int) bool { return a.Parent[u] == u }

// Members returns the node indices whose head is h, in ascending order.
func (a *Assignment) Members(h int) []int {
	var ms []int
	for u, hu := range a.Head {
		if hu == h {
			ms = append(ms, u)
		}
	}
	return ms
}
