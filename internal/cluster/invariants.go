package cluster

import (
	"fmt"

	"selfstab/internal/topology"
)

// CheckInvariants verifies the structural properties a legitimate
// assignment must satisfy. It returns nil when all hold:
//
//  1. Parent and Head have one entry per node and reference valid nodes.
//  2. F(p) is p itself or a neighbor of p.
//  3. The parent relation is acyclic; its fixpoints are exactly the nodes
//     with Head[p] == p.
//  4. Heads are fixpoints of H: H(H(p)) = H(p).
//  5. No two cluster-heads are adjacent (Section 3: "two neighbors can not
//     be both cluster-heads").
//
// Without fusion, additionally:
//
//  6. H(p) = H(F(p)): the parent chain from p ends exactly at p's head.
//  7. Every cluster is connected (it grows by joining neighbors).
//
// With fusion instead:
//
//  8. Any two cluster-heads are at graph distance >= 3 (Section 4.3).
//     (Chains of fusion-demoted heads relay through a neighbor of the
//     adopted head, so 6 and 7 are deliberately not required — the merged
//     cluster's identity is adopted directly, not learned along the parent
//     chain; see DESIGN.md.)
func CheckInvariants(g *topology.Graph, a *Assignment, fusion bool) error {
	n := g.N()
	if len(a.Parent) != n || len(a.Head) != n {
		return fmt.Errorf("assignment sized %d/%d for %d nodes", len(a.Parent), len(a.Head), n)
	}
	for u := 0; u < n; u++ {
		p := a.Parent[u]
		if p < 0 || p >= n {
			return fmt.Errorf("node %d: parent %d out of range", u, p)
		}
		if h := a.Head[u]; h < 0 || h >= n {
			return fmt.Errorf("node %d: head %d out of range", u, h)
		}
		if p != u && !g.HasEdge(u, p) {
			return fmt.Errorf("node %d: parent %d is not a neighbor", u, p)
		}
		if (p == u) != (a.Head[u] == u) {
			return fmt.Errorf("node %d: parent fixpoint %v but head fixpoint %v",
				u, p == u, a.Head[u] == u)
		}
		if a.Head[a.Head[u]] != a.Head[u] {
			return fmt.Errorf("node %d: head %d is not its own head", u, a.Head[u])
		}
	}
	// Chain termination (and, without fusion, head consistency).
	for u := 0; u < n; u++ {
		v := u
		for hops := 0; a.Parent[v] != v; hops++ {
			if hops > n {
				return fmt.Errorf("node %d: parent chain does not terminate", u)
			}
			v = a.Parent[v]
		}
		if !fusion && v != a.Head[u] {
			return fmt.Errorf("node %d: chain ends at %d but Head is %d", u, v, a.Head[u])
		}
	}
	// No two adjacent heads.
	for u := 0; u < n; u++ {
		if a.Parent[u] != u {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if a.Parent[v] == v {
				return fmt.Errorf("adjacent cluster-heads %d and %d", u, v)
			}
		}
	}
	if !fusion {
		// Cluster connectivity: BFS within each cluster from its head must
		// reach every member.
		member := make([]bool, n)
		for _, h := range a.Heads() {
			ms := a.Members(h)
			for _, u := range ms {
				member[u] = true
			}
			dist := g.DistancesWithin(h, member)
			for _, u := range ms {
				if dist[u] < 0 {
					return fmt.Errorf("cluster %d: member %d unreachable inside cluster", h, u)
				}
			}
			for _, u := range ms {
				member[u] = false
			}
		}
		return nil
	}
	// Fusion: heads pairwise >= 3 hops apart.
	heads := a.Heads()
	isHead := make([]bool, n)
	for _, h := range heads {
		isHead[h] = true
	}
	for _, h := range heads {
		for _, x := range g.Neighbors(h) {
			for _, v := range g.Neighbors(x) {
				if v != h && isHead[v] {
					return fmt.Errorf("fusion violated: heads %d and %d within 2 hops", h, v)
				}
			}
		}
	}
	return nil
}
