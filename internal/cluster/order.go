// Package cluster implements the paper's core contribution: density-driven
// cluster-head selection and cluster formation (Section 3), the total
// orders ≺ that drive it (Sections 4.2 and 4.3), the improved head
// stickiness and 2-hop fusion rules, cluster statistics, and the max-min
// d-cluster baseline.
package cluster

// Order is the family of total orders ≺ used to rank nodes. max≺ wins:
// a node joins its ≺-maximal neighbor and locally ≺-maximal nodes elect
// themselves cluster-heads.
type Order int

const (
	// OrderBasic is Section 4.2's order: p ≺ q iff d_p < d_q, or densities
	// are equal and q has the smaller identifier.
	OrderBasic Order = iota + 1
	// OrderSticky is Section 4.3's refinement: on density ties an incumbent
	// cluster-head beats a non-head, and only then does the smaller
	// identifier win. (The paper's clause list leaves two incumbent heads
	// with equal density incomparable; we fall back to the identifier there
	// so ≺ stays total — see DESIGN.md.)
	OrderSticky
)

// String implements fmt.Stringer for experiment labels.
func (o Order) String() string {
	switch o {
	case OrderBasic:
		return "basic"
	case OrderSticky:
		return "sticky"
	default:
		return "order?"
	}
}

// Rank is the information ≺ compares: a metric value, the tie-breaking
// identifier (either the application identifier or the DAG color), whether
// the node is currently a cluster-head (for OrderSticky), and the globally
// unique application identifier as the final tie-break.
//
// The final AppID comparison matters with the DAG: colors are only locally
// unique, so two non-adjacent neighbors of the same node can carry equal
// (density, color) pairs — without a global tie-break the "maximal
// neighbor" would be ill-defined and the join decision could oscillate.
// Because adjacent nodes always have distinct colors, edge orientations
// never reach the AppID clause, so the constant DAG-height bound of
// Section 4.1 is unaffected.
type Rank struct {
	Value  float64
	TieID  int64
	IsHead bool
	AppID  int64
}

// Less reports p ≺ q under order o. It is a strict total order provided
// AppIDs are globally unique.
func (o Order) Less(p, q Rank) bool {
	if p.Value != q.Value {
		return p.Value < q.Value
	}
	if o == OrderSticky && p.IsHead != q.IsHead {
		// The incumbent head is the greater node.
		return q.IsHead
	}
	// Smaller identifier wins: p ≺ q iff Id_q < Id_p.
	if p.TieID != q.TieID {
		return q.TieID < p.TieID
	}
	return q.AppID < p.AppID
}

// Max returns the ≺-maximal rank of the two.
func (o Order) Max(p, q Rank) Rank {
	if o.Less(p, q) {
		return q
	}
	return p
}
