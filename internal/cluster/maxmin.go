package cluster

import (
	"fmt"

	"selfstab/internal/topology"
)

// MaxMinResult is the outcome of the max-min d-cluster heuristic (Amis,
// Prakash, Vuong, Huynh — INFOCOM 2000), the baseline the paper compares
// density against for stability. Max-min elects heads by 2d flooding
// rounds rather than a local metric, so it has its own result shape:
// cluster membership is by head identifier, without a parent forest.
type MaxMinResult struct {
	// Head holds, for every node, the index of its elected cluster-head.
	Head []int
	// Rounds is the number of flooding rounds executed (always 2d).
	Rounds int
}

// IsHead reports whether u elected itself.
func (r *MaxMinResult) IsHead(u int) bool { return r.Head[u] == u }

// NumClusters returns the number of distinct heads.
func (r *MaxMinResult) NumClusters() int {
	seen := make(map[int]bool, 8)
	for _, h := range r.Head {
		seen[h] = true
	}
	return len(seen)
}

// MaxMin runs the max-min d-cluster heuristic on g with the given unique
// identifiers. d is the cluster radius parameter (d >= 1).
//
// The heuristic: d synchronous rounds of floodmax (every node adopts the
// largest identifier heard so far), then d rounds of floodmin over the
// floodmax result. Each node then applies the original selection rules:
//
//  1. if it heard its own identifier during floodmin, it is a head;
//  2. otherwise, if some identifier appears in both its floodmax and
//     floodmin round logs ("node pairs"), the smallest such identifier is
//     its head;
//  3. otherwise the maximum identifier from the floodmax phase is its head.
func MaxMin(g *topology.Graph, ids []int64, d int) (*MaxMinResult, error) {
	n := g.N()
	if n == 0 {
		return nil, ErrNoNodes
	}
	if len(ids) != n {
		return nil, fmt.Errorf("cluster: %d ids for %d nodes", len(ids), n)
	}
	if d < 1 {
		return nil, fmt.Errorf("cluster: max-min needs d >= 1, got %d", d)
	}
	idx := make(map[int64]int, n)
	for u, id := range ids {
		if v, dup := idx[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate id %d on nodes %d and %d", id, v, u)
		}
		idx[id] = u
	}

	// Round logs: maxLog[r][u] is u's value after floodmax round r
	// (round 0 = own id); minLog likewise for the floodmin phase.
	maxLog := make([][]int64, d+1)
	maxLog[0] = append([]int64(nil), ids...)
	for r := 1; r <= d; r++ {
		maxLog[r] = flood(g, maxLog[r-1], func(a, b int64) bool { return a < b })
	}
	minLog := make([][]int64, d+1)
	minLog[0] = maxLog[d]
	for r := 1; r <= d; r++ {
		minLog[r] = flood(g, minLog[r-1], func(a, b int64) bool { return a > b })
	}

	res := &MaxMinResult{Head: make([]int, n), Rounds: 2 * d}
	for u := 0; u < n; u++ {
		res.Head[u] = idx[electMaxMin(u, ids[u], maxLog, minLog)]
	}
	return res, nil
}

// flood performs one synchronous round: every node replaces its value with
// the extremum (under worse) of its own and its neighbors' previous values.
func flood(g *topology.Graph, prev []int64, worse func(a, b int64) bool) []int64 {
	next := make([]int64, len(prev))
	for u := range prev {
		best := prev[u]
		for _, v := range g.Neighbors(u) {
			if worse(best, prev[v]) {
				best = prev[v]
			}
		}
		next[u] = best
	}
	return next
}

// electMaxMin applies the three max-min selection rules for node u.
func electMaxMin(u int, own int64, maxLog, minLog [][]int64) int64 {
	d := len(maxLog) - 1
	// Rule 1: own id seen during the floodmin phase.
	for r := 1; r <= d; r++ {
		if minLog[r][u] == own {
			return own
		}
	}
	// Rule 2: smallest "node pair" — an id logged in both phases.
	inMax := make(map[int64]bool, d)
	for r := 1; r <= d; r++ {
		inMax[maxLog[r][u]] = true
	}
	var best int64
	found := false
	for r := 1; r <= d; r++ {
		v := minLog[r][u]
		if inMax[v] && (!found || v < best) {
			best, found = v, true
		}
	}
	if found {
		return best
	}
	// Rule 3: the floodmax maximum.
	return maxLog[d][u]
}
