package cluster

import (
	"testing"
	"testing/quick"

	"selfstab/internal/metric"
	"selfstab/internal/rng"
)

// TestOrderTransitivityQuick: ≺ is transitive for arbitrary rank triples
// (quick-generated), for both order variants.
func TestOrderTransitivityQuick(t *testing.T) {
	gen := func(seed int64) [3]Rank {
		src := rng.New(seed)
		var rs [3]Rank
		for i := range rs {
			rs[i] = Rank{
				Value:  float64(src.Intn(4)), // small domain to force ties
				TieID:  int64(src.Intn(4)),
				IsHead: src.Intn(2) == 0,
				AppID:  src.Int63() % 100,
			}
		}
		return rs
	}
	for _, order := range []Order{OrderBasic, OrderSticky} {
		f := func(seed int64) bool {
			rs := gen(seed)
			a, b, c := rs[0], rs[1], rs[2]
			if order.Less(a, b) && order.Less(b, c) && !order.Less(a, c) {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("order %v: %v", order, err)
		}
	}
}

// TestOrderAntisymmetryQuick: never both a ≺ b and b ≺ a.
func TestOrderAntisymmetryQuick(t *testing.T) {
	f := func(v1, v2 float64, t1, t2, a1, a2 int64, h1, h2 bool) bool {
		a := Rank{Value: v1, TieID: t1, IsHead: h1, AppID: a1}
		b := Rank{Value: v2, TieID: t2, IsHead: h2, AppID: a2}
		for _, order := range []Order{OrderBasic, OrderSticky} {
			if order.Less(a, b) && order.Less(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOrderTotalityQuick: distinct AppIDs make ≺ total.
func TestOrderTotalityQuick(t *testing.T) {
	f := func(v1, v2 float64, t1, t2 int64, h1, h2 bool) bool {
		a := Rank{Value: v1, TieID: t1, IsHead: h1, AppID: 1}
		b := Rank{Value: v2, TieID: t2, IsHead: h2, AppID: 2}
		for _, order := range []Order{OrderBasic, OrderSticky} {
			if !order.Less(a, b) && !order.Less(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPartitionProperty: every node belongs to exactly one cluster whose
// head is a head, on random instances, with and without fusion.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		fusion := seed%2 == 0
		extra := int(seed % 41)
		if extra < 0 {
			extra = -extra
		}
		g, cfg := randomInstance(seed, 40+extra, 0.15, OrderBasic, fusion)
		a, err := Compute(g, cfg)
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			h := a.Head[u]
			if h < 0 || h >= g.N() || a.Head[h] != h {
				return false
			}
			if (a.Parent[u] == u) != (h == u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFixpointIdempotence: recomputing with PrevHead = the previous result
// converges in 0 extra rounds and returns the identical assignment (the
// legitimate configuration is a fixpoint).
func TestFixpointIdempotence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		fusion := seed%2 == 0
		order := OrderBasic
		if seed%3 == 0 {
			order = OrderSticky
		}
		g, cfg := randomInstance(seed, 80, 0.14, order, fusion)
		a, err := Compute(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.PrevHead = a.Head
		b, err := Compute(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			if a.Head[u] != b.Head[u] {
				t.Errorf("seed %d: node %d head changed on recompute: %d -> %d",
					seed, u, a.Head[u], b.Head[u])
			}
		}
		if b.Rounds > 1 {
			t.Errorf("seed %d: fixpoint took %d rounds to confirm", seed, b.Rounds)
		}
	}
}

// TestHeadsAreLocalMaxima: without fusion, the head set is exactly the set
// of ≺-local maxima.
func TestHeadsAreLocalMaxima(t *testing.T) {
	f := func(seed int64) bool {
		g, cfg := randomInstance(seed, 60, 0.15, OrderBasic, false)
		a, err := Compute(g, cfg)
		if err != nil {
			return false
		}
		rank := func(u int) Rank {
			return Rank{Value: cfg.Values[u], TieID: cfg.TieIDs[u], AppID: cfg.TieIDs[u]}
		}
		for u := 0; u < g.N(); u++ {
			isMax := true
			for _, v := range g.Neighbors(u) {
				if cfg.Order.Less(rank(u), rank(v)) {
					isMax = false
					break
				}
			}
			if isMax != a.IsHead(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRoundsBoundedByChainLength: the fixpoint converges within
// MaxTreeLength + small-constant rounds (Lemma 2's structure).
func TestRoundsBoundedByChainLength(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, cfg := randomInstance(seed, 100, 0.12, OrderBasic, false)
		a, err := Compute(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := a.ComputeStats(g)
		if a.Rounds > s.MaxTreeLength+2 {
			t.Errorf("seed %d: %d rounds for max chain %d", seed, a.Rounds, s.MaxTreeLength)
		}
	}
}

// TestDensityTiesResolveDeterministically: cloned configs give identical
// assignments (no hidden map-order dependence).
func TestDensityTiesResolveDeterministically(t *testing.T) {
	g, cfg := randomInstance(3, 80, 0.14, OrderBasic, true)
	a, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b, err := Compute(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			if a.Head[u] != b.Head[u] || a.Parent[u] != b.Parent[u] {
				t.Fatal("nondeterministic assignment")
			}
		}
	}
}

// TestStatsSizesSumToN: cluster sizes always partition the node count.
func TestStatsSizesSumToN(t *testing.T) {
	f := func(seed int64) bool {
		g, cfg := randomInstance(seed, 50, 0.18, OrderBasic, false)
		a, err := Compute(g, cfg)
		if err != nil {
			return false
		}
		s := a.ComputeStats(g)
		total := 0
		for _, sz := range s.Sizes {
			total += sz
		}
		return total == g.N() && s.NumClusters == len(s.Sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMetricValuesDriveElection: raising one node's value to the global
// maximum makes it a head.
func TestMetricValuesDriveElection(t *testing.T) {
	g, cfg := randomInstance(7, 60, 0.15, OrderBasic, false)
	cfg.Values = metric.Degree{}.Values(g) // any metric works
	boost := 17 % g.N()
	cfg.Values[boost] = 1e9
	a, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsHead(boost) {
		t.Error("globally maximal node not elected")
	}
	for _, v := range g.Neighbors(boost) {
		if a.Head[v] != boost {
			t.Errorf("neighbor %d of the global max joined %d", v, a.Head[v])
		}
	}
}
