package cluster

import (
	"testing"

	"selfstab/internal/topology"
)

func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func seqIDs(n int) []int64 {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}

func TestMaxMinValidation(t *testing.T) {
	g := lineGraph(t, 3)
	if _, err := MaxMin(topology.New(0), nil, 1); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := MaxMin(g, seqIDs(2), 1); err == nil {
		t.Error("short ids accepted")
	}
	if _, err := MaxMin(g, []int64{1, 1, 2}, 1); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := MaxMin(g, seqIDs(3), 0); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestMaxMinSingleNode(t *testing.T) {
	g := topology.New(1)
	r, err := MaxMin(g, []int64{42}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsHead(0) || r.NumClusters() != 1 {
		t.Error("isolated node must head itself")
	}
}

// TestMaxMinStarGraph: the center of a star with the largest id must win
// everything for d = 1.
func TestMaxMinStarGraph(t *testing.T) {
	g := topology.New(5)
	for v := 1; v < 5; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int64{100, 1, 2, 3, 4} // center has the max id
	r, err := MaxMin(g, ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		if r.Head[u] != 0 {
			t.Errorf("node %d head = %d, want 0", u, r.Head[u])
		}
	}
	if r.NumClusters() != 1 {
		t.Errorf("clusters = %d", r.NumClusters())
	}
}

// TestMaxMinLine: on a long line with d=1, heads must be spaced out —
// every node's head is within d hops... max-min guarantees heads within d
// hops of members for rules 1/2; rule 3 can stretch it. We check the basic
// sanity: every head that is referenced elects itself.
func TestMaxMinHeadsSelfConsistent(t *testing.T) {
	g := lineGraph(t, 20)
	r, err := MaxMin(g, seqIDs(20), 2)
	if err != nil {
		t.Fatal(err)
	}
	for u, h := range r.Head {
		if r.Head[h] != h {
			t.Errorf("node %d elected %d, which itself elected %d", u, h, r.Head[h])
		}
	}
	if r.Rounds != 4 {
		t.Errorf("rounds = %d, want 2d = 4", r.Rounds)
	}
}

// TestMaxMinLargerDFewerClusters: growing d cannot increase cluster count
// on a line (floods reach further).
func TestMaxMinLargerDFewerClusters(t *testing.T) {
	g := lineGraph(t, 40)
	ids := seqIDs(40)
	prev := -1
	for _, d := range []int{1, 2, 4} {
		r, err := MaxMin(g, ids, d)
		if err != nil {
			t.Fatal(err)
		}
		n := r.NumClusters()
		if prev >= 0 && n > prev {
			t.Errorf("d=%d produced %d clusters, more than smaller d's %d", d, n, prev)
		}
		prev = n
	}
}

// TestMaxMinRule1: a node that hears its own id back in floodmin is a head.
// The global maximum always satisfies this.
func TestMaxMinGlobalMaxIsHead(t *testing.T) {
	g := lineGraph(t, 9)
	ids := []int64{3, 1, 4, 15, 9, 2, 6, 5, 8} // max 15 at node 3
	r, err := MaxMin(g, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsHead(3) {
		t.Error("global max id node must be a head")
	}
}

func TestMaxMinDeterministic(t *testing.T) {
	g := lineGraph(t, 15)
	ids := seqIDs(15)
	a, err := MaxMin(g, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxMin(g, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Head {
		if a.Head[u] != b.Head[u] {
			t.Fatal("max-min not deterministic")
		}
	}
}
