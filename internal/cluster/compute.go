package cluster

import (
	"errors"
	"fmt"

	"selfstab/internal/topology"
)

// Config parameterizes a clustering computation.
type Config struct {
	// Values holds the metric value of every node (e.g. its density).
	Values []float64
	// TieIDs holds the identifier used to break metric ties: the
	// application identifier for the plain algorithm, or the DAG color for
	// the constant-height variant. TieIDs need only be locally unique.
	TieIDs []int64
	// AppIDs holds the globally unique application identifiers used as the
	// final tie-break (see Rank). Nil means TieIDs are already globally
	// unique and double as AppIDs.
	AppIDs []int64
	// Order selects the ≺ variant (basic or sticky).
	Order Order
	// Fusion enables the Section 4.3 two-hop rule: a node is a head only
	// if no ≺-greater node in its 2-neighborhood claims headship; the
	// lesser of two nearby heads dissolves its cluster into the greater's.
	Fusion bool
	// PrevHead optionally carries the previous configuration's head of
	// each node (index, -1 when unknown). It seeds the fixpoint iteration
	// and, under OrderSticky, defines incumbency.
	PrevHead []int
}

func (c *Config) validate(n int) error {
	if len(c.Values) != n {
		return fmt.Errorf("cluster: %d values for %d nodes", len(c.Values), n)
	}
	if len(c.TieIDs) != n {
		return fmt.Errorf("cluster: %d tie ids for %d nodes", len(c.TieIDs), n)
	}
	if c.Order != OrderBasic && c.Order != OrderSticky {
		return fmt.Errorf("cluster: invalid order %d", int(c.Order))
	}
	if c.AppIDs != nil && len(c.AppIDs) != n {
		return fmt.Errorf("cluster: %d app ids for %d nodes", len(c.AppIDs), n)
	}
	if c.PrevHead != nil && len(c.PrevHead) != n {
		return fmt.Errorf("cluster: %d prev heads for %d nodes", len(c.PrevHead), n)
	}
	return nil
}

// Assignment is the result of a clustering computation: the parent relation
// F and the cluster-head relation H, both as node indices. A node p is a
// cluster-head iff Head[p] == p (equivalently Parent[p] == p).
type Assignment struct {
	Parent []int
	Head   []int
	// Rounds is the number of synchronous update rounds the fixpoint
	// iteration needed. It is the oracle's proxy for stabilization time
	// and is proportional to the height of the DAG≺ (Lemma 2).
	Rounds int
	// Demotions counts nodes that are locally ≺-maximal yet not heads —
	// clusters dissolved by the fusion rule (0 without fusion).
	Demotions int
}

// ErrNoNodes is returned when clustering an empty graph.
var ErrNoNodes = errors.New("cluster: empty graph")

// errDiverged signals that the fixpoint iteration did not converge, which
// indicates a bug (the update rule is proven to converge).
var errDiverged = errors.New("cluster: fixpoint iteration diverged")

// Compute runs the clustering heuristic to its fixpoint on a static graph
// by synchronous iteration of the per-node update rule R2 — exactly the
// dynamics of the distributed protocol under a synchronous daemon with
// perfect caches (the runtime package executes the lossy message-passing
// version and is checked against this oracle):
//
//   - a node whose closed neighborhood it ≺-dominates claims headship
//     (with Fusion: unless a ≺-greater node two hops away currently claims
//     headship, in which case it adopts that head directly — the lesser
//     cluster fuses into the greater one);
//   - any other node adopts the head of its ≺-maximal neighbor.
//
// Iteration converges because branch-3 chains are strictly ≺-ascending and
// headship claims settle top-down in ≺ order.
func Compute(g *topology.Graph, cfg Config) (*Assignment, error) {
	n := g.N()
	if n == 0 {
		return nil, ErrNoNodes
	}
	if err := cfg.validate(n); err != nil {
		return nil, err
	}

	appIDs := cfg.AppIDs
	if appIDs == nil {
		appIDs = cfg.TieIDs
	}
	rank := make([]Rank, n)
	for u := 0; u < n; u++ {
		isHead := cfg.PrevHead != nil && cfg.PrevHead[u] == u
		rank[u] = Rank{
			Value:  cfg.Values[u],
			TieID:  cfg.TieIDs[u],
			IsHead: isHead,
			AppID:  appIDs[u],
		}
	}

	// localMax[u]: u ≺-dominates all its neighbors.
	localMax := make([]bool, n)
	// bestNbr[u]: the ≺-maximal neighbor (meaningful when !localMax[u]).
	bestNbr := make([]int, n)
	for u := 0; u < n; u++ {
		best := u
		for _, v := range g.Neighbors(u) {
			if cfg.Order.Less(rank[best], rank[v]) {
				best = v
			}
		}
		localMax[u] = best == u
		bestNbr[u] = best
	}

	// Two-hop sets, needed only for the fusion guard.
	var twoHop [][]int
	if cfg.Fusion {
		twoHop = make([][]int, n)
		for u := 0; u < n; u++ {
			seen := map[int]bool{u: true}
			for _, v := range g.Neighbors(u) {
				seen[v] = true
			}
			for _, v := range g.Neighbors(u) {
				for _, w := range g.Neighbors(v) {
					if !seen[w] {
						seen[w] = true
						twoHop[u] = append(twoHop[u], w)
					}
				}
			}
		}
	}

	// Head state: seed from PrevHead when provided, else every node
	// initially claims itself (cold boot).
	h := make([]int, n)
	for u := 0; u < n; u++ {
		if cfg.PrevHead != nil && cfg.PrevHead[u] >= 0 && cfg.PrevHead[u] < n {
			h[u] = cfg.PrevHead[u]
		} else {
			h[u] = u
		}
	}

	next := make([]int, n)
	maxRounds := 2*n + 10
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		changed := false
		for u := 0; u < n; u++ {
			next[u] = updateHead(u, h, rank, localMax, bestNbr, twoHop, cfg)
			if next[u] != h[u] {
				changed = true
			}
		}
		h, next = next, h
		if !changed {
			break
		}
	}
	if rounds == maxRounds {
		return nil, errDiverged
	}

	a := &Assignment{Head: h, Rounds: rounds}
	a.Parent = deriveParents(g, cfg.Order, rank, localMax, bestNbr, h)
	for u := 0; u < n; u++ {
		if localMax[u] && h[u] != u {
			a.Demotions++
		}
	}
	return a, nil
}

// updateHead is the per-node guarded assignment R2.
func updateHead(u int, h []int, rank []Rank, localMax []bool, bestNbr []int, twoHop [][]int, cfg Config) int {
	if !localMax[u] {
		return h[bestNbr[u]]
	}
	if cfg.Fusion {
		// Fusion guard: adopt the ≺-greatest current head claimant two
		// hops away that beats u, if any.
		best := -1
		for _, s := range twoHop[u] {
			if h[s] != s || !cfg.Order.Less(rank[u], rank[s]) {
				continue
			}
			if best < 0 || cfg.Order.Less(rank[best], rank[s]) {
				best = s
			}
		}
		if best >= 0 {
			return best
		}
	}
	return u
}

// deriveParents reconstructs the parent forest F from the converged heads:
// a head is its own parent; an ordinary node hangs off its ≺-maximal
// neighbor; a fusion-demoted head hangs off the ≺-maximal common neighbor
// toward its adopted head (that neighbor's own parent outranks the adopted
// head, so parent chains cannot cycle back through the demoted node: along
// any chain the ranks of demoted nodes are strictly increasing).
func deriveParents(g *topology.Graph, order Order, rank []Rank, localMax []bool, bestNbr []int, h []int) []int {
	n := g.N()
	parent := make([]int, n)
	for u := 0; u < n; u++ {
		switch {
		case h[u] == u:
			parent[u] = u
		case !localMax[u]:
			parent[u] = bestNbr[u]
		default:
			// Fusion-demoted head: relay through a common neighbor of u
			// and the adopted head (one exists: the adopted head was found
			// at distance exactly two).
			best := -1
			for _, x := range g.Neighbors(u) {
				if !g.HasEdge(x, h[u]) {
					continue
				}
				if best < 0 || order.Less(rank[best], rank[x]) {
					best = x
				}
			}
			if best < 0 {
				// Unreachable for converged states; keep the node a root
				// rather than fabricate a bogus edge.
				best = u
			}
			parent[u] = best
		}
	}
	return parent
}
