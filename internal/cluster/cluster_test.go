package cluster

import (
	"math"
	"testing"

	"selfstab/internal/metric"
	"selfstab/internal/paperex"
	"selfstab/internal/topology"
)

// paperConfig returns the basic-order configuration for the Figure 1
// fixture.
func paperConfig() (*topology.Graph, Config) {
	g := paperex.Graph()
	return g, Config{
		Values: metric.Density{}.Values(g),
		TieIDs: paperex.IDs(),
		Order:  OrderBasic,
	}
}

// TestPaperExampleClustering replays the worked example end to end: parents
// and heads must match the paper's narrative (two clusters, heads h and j).
func TestPaperExampleClustering(t *testing.T) {
	g, cfg := paperConfig()
	a, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u, want := range paperex.WantParent {
		if a.Parent[u] != want {
			t.Errorf("F(%s) = %s, want %s",
				paperex.Names[u], paperex.Names[a.Parent[u]], paperex.Names[want])
		}
	}
	for u, want := range paperex.WantHead {
		if a.Head[u] != want {
			t.Errorf("H(%s) = %s, want %s",
				paperex.Names[u], paperex.Names[a.Head[u]], paperex.Names[want])
		}
	}
	if got := len(a.Heads()); got != 2 {
		t.Errorf("clusters = %d, want 2", got)
	}
	if err := CheckInvariants(g, a, false); err != nil {
		t.Error(err)
	}
}

func TestComputeEmptyGraph(t *testing.T) {
	if _, err := Compute(topology.New(0), Config{Order: OrderBasic}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestComputeValidation(t *testing.T) {
	g := paperex.Graph()
	base := Config{
		Values: metric.Density{}.Values(g),
		TieIDs: paperex.IDs(),
		Order:  OrderBasic,
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"short values", func(c *Config) { c.Values = c.Values[:2] }},
		{"short tie ids", func(c *Config) { c.TieIDs = c.TieIDs[:2] }},
		{"bad order", func(c *Config) { c.Order = 0 }},
		{"short prev heads", func(c *Config) { c.PrevHead = []int{1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Compute(g, cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestSingleNodeIsOwnHead(t *testing.T) {
	g := topology.New(1)
	a, err := Compute(g, Config{Values: []float64{0}, TieIDs: []int64{7}, Order: OrderBasic})
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsHead(0) || a.Head[0] != 0 {
		t.Error("isolated node must head itself")
	}
}

func TestOrderBasicTotality(t *testing.T) {
	ranks := []Rank{
		{Value: 1.0, TieID: 3},
		{Value: 1.0, TieID: 5},
		{Value: 2.0, TieID: 1},
	}
	for i, p := range ranks {
		if OrderBasic.Less(p, p) {
			t.Errorf("rank %d: p ≺ p (irreflexivity violated)", i)
		}
		for j, q := range ranks {
			if i == j {
				continue
			}
			less := OrderBasic.Less(p, q)
			greater := OrderBasic.Less(q, p)
			if less == greater {
				t.Errorf("ranks %d,%d: totality/antisymmetry violated (%v, %v)", i, j, less, greater)
			}
		}
	}
}

func TestOrderSmallerIDWinsTies(t *testing.T) {
	p := Rank{Value: 1.5, TieID: 9}
	q := Rank{Value: 1.5, TieID: 2}
	if !OrderBasic.Less(p, q) {
		t.Error("equal densities: the node with the smaller id must win")
	}
}

func TestOrderStickyHeadWinsTies(t *testing.T) {
	incumbent := Rank{Value: 1.5, TieID: 9, IsHead: true}
	challenger := Rank{Value: 1.5, TieID: 2, IsHead: false}
	if !OrderSticky.Less(challenger, incumbent) {
		t.Error("sticky order: incumbent head must beat lower-id challenger on ties")
	}
	// Density still dominates headness.
	denser := Rank{Value: 1.6, TieID: 2, IsHead: false}
	if OrderSticky.Less(denser, incumbent) {
		t.Error("sticky order: higher density must beat incumbency")
	}
	// Two incumbents fall back to the identifier.
	other := Rank{Value: 1.5, TieID: 2, IsHead: true}
	if !OrderSticky.Less(incumbent, other) {
		t.Error("two incumbents: smaller id must win")
	}
}

func TestOrderMax(t *testing.T) {
	p := Rank{Value: 1, TieID: 1}
	q := Rank{Value: 2, TieID: 2}
	if OrderBasic.Max(p, q) != q || OrderBasic.Max(q, p) != q {
		t.Error("Max should return the ≺-greater rank")
	}
}

func TestOrderString(t *testing.T) {
	if OrderBasic.String() != "basic" || OrderSticky.String() != "sticky" {
		t.Error("order labels wrong")
	}
	if Order(0).String() != "order?" {
		t.Error("unknown order label")
	}
}

// TestNoAdjacentHeads is the paper's Section 3 claim on arbitrary graphs.
func TestNoAdjacentHeads(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, cfg := randomInstance(seed, 60, 0.2, OrderBasic, false)
		a, err := Compute(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckInvariants(g, a, false); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestParentIsMaxNeighbor verifies the join rule directly: every non-head's
// parent must be its ≺-maximal neighbor, and every head must dominate its
// whole neighborhood.
func TestParentIsMaxNeighbor(t *testing.T) {
	g, cfg := randomInstance(3, 80, 0.15, OrderBasic, false)
	a, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rank := func(u int) Rank { return Rank{Value: cfg.Values[u], TieID: cfg.TieIDs[u]} }
	for u := 0; u < g.N(); u++ {
		best := u
		for _, v := range g.Neighbors(u) {
			if cfg.Order.Less(rank(best), rank(v)) {
				best = v
			}
		}
		if a.Parent[u] != best {
			t.Errorf("node %d: parent %d, want ≺-max %d", u, a.Parent[u], best)
		}
	}
}

func TestFusionHeadSeparation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, cfg := randomInstance(seed, 80, 0.12, OrderBasic, true)
		a, err := Compute(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckInvariants(g, a, true); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestFusionNeverIncreasesClusters(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, cfg := randomInstance(seed, 80, 0.12, OrderBasic, false)
		plain, err := Compute(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fusion = true
		fused, err := Compute(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(fused.Heads()) > len(plain.Heads()) {
			t.Errorf("seed %d: fusion grew head count %d -> %d",
				seed, len(plain.Heads()), len(fused.Heads()))
		}
		if fused.Demotions != len(plain.Heads())-len(fused.Heads()) {
			t.Errorf("seed %d: demotions %d inconsistent with head delta %d",
				seed, fused.Demotions, len(plain.Heads())-len(fused.Heads()))
		}
	}
}

// TestFusionPathExample exercises the exact Section 4.3 scenario: two heads
// u, v at distance two sharing neighbor p; the lesser head must dissolve.
func TestFusionPathExample(t *testing.T) {
	// Path u - p - v plus a pendant on each head so the heads have higher
	// degree-metric value than p.
	g := topology.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 3}, {2, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{
		Values: metric.Degree{}.Values(g), // u and v have degree 2, p has 2 too
		TieIDs: []int64{5, 9, 1, 7, 8},    // v (node 2) has the smallest id
		Order:  OrderBasic,
	}
	plain, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without fusion: node 2 wins its neighborhood (id 1); node 0 vs node 1:
	// equal degree, id 5 < 9 so node 0 wins locally => two heads at distance 2.
	if !plain.IsHead(0) || !plain.IsHead(2) {
		t.Fatalf("setup broken: heads = %v", plain.Heads())
	}
	cfg.Fusion = true
	fused, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Heads()) != 1 || !fused.IsHead(2) {
		t.Errorf("fusion: heads = %v, want just node 2", fused.Heads())
	}
	if err := CheckInvariants(g, fused, true); err != nil {
		t.Error(err)
	}
	// The dissolved head u=0 must reach v=2 through the common neighbor.
	if fused.Parent[0] != 1 || fused.Parent[1] != 2 {
		t.Errorf("re-rooting wrong: F(0)=%d F(1)=%d", fused.Parent[0], fused.Parent[1])
	}
}

func TestStickyPreservesIncumbent(t *testing.T) {
	// Two adjacent nodes with equal density; ids favor node 1, but node 0
	// is the incumbent head.
	g := topology.New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Values:   []float64{1, 1},
		TieIDs:   []int64{9, 2},
		Order:    OrderSticky,
		PrevHead: []int{0, 0},
	}
	a, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsHead(0) {
		t.Error("incumbent head lost despite sticky order")
	}
	// Under the basic order node 1 (smaller id) would win instead.
	cfg.Order = OrderBasic
	b, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsHead(1) {
		t.Error("basic order should elect the smaller id")
	}
}

func TestStatsPaperExample(t *testing.T) {
	g, cfg := paperConfig()
	a, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := a.ComputeStats(g)
	if s.NumClusters != 2 {
		t.Fatalf("NumClusters = %d", s.NumClusters)
	}
	// Cluster of h: {h, b, c, i, e}; ecc(h) within it: h-b-c = 2, h-i-e = 2.
	// Cluster of j: {j, f, d, a}; ecc(j): j-d-a = 2.
	if s.MaxHeadEccentricity != 2 || math.Abs(s.MeanHeadEccentricity-2) > 1e-12 {
		t.Errorf("head eccentricity = %v/%v, want 2/2",
			s.MeanHeadEccentricity, s.MaxHeadEccentricity)
	}
	// Tree lengths: c is 2 hops from h via b; a is 2 hops from j via d;
	// e is 2 via i. Max chain = 2.
	if s.MaxTreeLength != 2 {
		t.Errorf("MaxTreeLength = %d, want 2", s.MaxTreeLength)
	}
	// Sizes: 5 and 4.
	if len(s.Sizes) != 2 || s.Sizes[0] != 5 || s.Sizes[1] != 4 {
		t.Errorf("Sizes = %v, want [5 4]", s.Sizes)
	}
	// Non-head nodes: a,b,c,d,e,f,i => chains 2,1,2,1,2,1,1 -> mean 10/7.
	if math.Abs(s.MeanTreeLength-10.0/7.0) > 1e-12 {
		t.Errorf("MeanTreeLength = %v, want %v", s.MeanTreeLength, 10.0/7.0)
	}
}

func TestStatsEmpty(t *testing.T) {
	a := &Assignment{}
	s := a.ComputeStats(topology.New(0))
	if s.NumClusters != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestMembersAndHeads(t *testing.T) {
	g, cfg := paperConfig()
	a, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, h := range a.Heads() {
		ms := a.Members(h)
		total += len(ms)
		for _, u := range ms {
			if a.Head[u] != h {
				t.Errorf("member %d of %d has head %d", u, h, a.Head[u])
			}
		}
	}
	if total != g.N() {
		t.Errorf("clusters cover %d of %d nodes", total, g.N())
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	g, cfg := paperConfig()
	a, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Assignment)
	}{
		{"parent out of range", func(a *Assignment) { a.Parent[0] = 99 }},
		{"head out of range", func(a *Assignment) { a.Head[0] = -1 }},
		{"parent not neighbor", func(a *Assignment) { a.Parent[paperex.C] = paperex.E }},
		{"head inconsistent", func(a *Assignment) { a.Head[paperex.C] = paperex.J }},
		{"adjacent heads", func(a *Assignment) {
			a.Parent[paperex.B] = paperex.B
			a.Head[paperex.B] = paperex.B
			a.Head[paperex.C] = paperex.B
		}},
		{"cycle", func(a *Assignment) {
			a.Parent[paperex.B] = paperex.C
			a.Parent[paperex.C] = paperex.B
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := &Assignment{
				Parent: append([]int(nil), a.Parent...),
				Head:   append([]int(nil), a.Head...),
			}
			tt.mutate(b)
			if err := CheckInvariants(g, b, false); err == nil {
				t.Error("corruption not detected")
			}
		})
	}
}
