package traffic

import (
	"strings"
	"testing"
)

// headLineHooks is lineHooks plus a head predicate backed by *headIdx, so
// tests can move the head (e.g. across a compaction remap) mid-run.
func headLineHooks(headIdx *int) Hooks {
	h := lineHooks()
	h.IsHead = func(i int) bool { return i == *headIdx }
	return h
}

// TestSourceCapRateLimit: a CBR source offering 3 packets per step under
// SourceCap 1 has exactly two refused at the NIC every step, accounted
// DropsRateLimit — never silently vanished.
func TestSourceCapRateLimit(t *testing.T) {
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 1, Rate: 3}}}
	e := mustEngine(t, 2, cfg, lineHooks(), 1)
	if err := e.SetDefense(Defense{SourceCap: 1}); err != nil {
		t.Fatal(err)
	}
	runSteps(t, e, 50)
	s := e.Stats()
	checkLedger(t, s)
	if s.Offered != 150 {
		t.Errorf("offered %d, want 150 (the workload still generates, the NIC refuses)", s.Offered)
	}
	if s.DropsRateLimit != 100 {
		t.Errorf("rate-limit drops %d, want 100 (2 of 3 per step)", s.DropsRateLimit)
	}
}

// TestHeadAdmissionFinalHop: a flood addressed TO a head is gated by the
// head's bucket at delivery, not just in transit — the head sheds the
// excess as DropsAdmission instead of absorbing it.
func TestHeadAdmissionFinalHop(t *testing.T) {
	head := 1
	// Budget 4 so the link carries the whole flood each step; the bucket
	// refilling 1/step is then the binding constraint.
	cfg := Config{Budget: 4, Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 1, Rate: 2}}}
	e := mustEngine(t, 2, cfg, headLineHooks(&head), 1)
	if err := e.SetDefense(Defense{HeadTokens: true, HeadRate: 1, HeadBurst: 1}); err != nil {
		t.Fatal(err)
	}
	runSteps(t, e, 60)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsAdmission == 0 {
		t.Fatal("no admission drops: the final hop bypassed the bucket")
	}
	// One token refills per step, so deliveries are capped near one per
	// step; without the gate all 120 offered packets would deliver.
	if s.Delivered > 65 {
		t.Errorf("delivered %d of %d, want the bucket to cap near 60", s.Delivered, s.Offered)
	}
}

// TestHeadAdmissionTransit: a head on the transit path applies the same
// bucket to packets entering its queue.
func TestHeadAdmissionTransit(t *testing.T) {
	head := 1
	cfg := Config{Budget: 4, Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 2, Rate: 2}}}
	e := mustEngine(t, 3, cfg, headLineHooks(&head), 1)
	if err := e.SetDefense(Defense{HeadTokens: true, HeadRate: 1, HeadBurst: 1}); err != nil {
		t.Fatal(err)
	}
	runSteps(t, e, 60)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsAdmission == 0 {
		t.Fatal("no admission drops at the transit head")
	}
	if s.Delivered > 65 {
		t.Errorf("delivered %d, want the transit bucket to cap near 60", s.Delivered)
	}
}

// TestDefenseUndefendedBaseline: with no defense installed the new drop
// reasons stay zero even with a head predicate present.
func TestDefenseUndefendedBaseline(t *testing.T) {
	head := 1
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 1, Rate: 2}}}
	e := mustEngine(t, 2, cfg, headLineHooks(&head), 1)
	runSteps(t, e, 40)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsAdmission != 0 || s.DropsRateLimit != 0 {
		t.Errorf("undefended run recorded defense drops: %+v", s)
	}
}

// TestSetDefenseValidation: a bad config is refused and the installed
// defense is untouched.
func TestSetDefenseValidation(t *testing.T) {
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 1, Rate: 1}}}
	e := mustEngine(t, 2, cfg, lineHooks(), 1)
	good := Defense{SourceCap: 2}
	if err := e.SetDefense(good); err != nil {
		t.Fatal(err)
	}
	if err := e.SetDefense(Defense{HeadTokens: true}); err == nil {
		t.Error("head admission without rate/burst accepted")
	} else if !strings.Contains(err.Error(), "rate") {
		t.Errorf("error %v does not explain the missing rate", err)
	}
	if err := e.SetDefense(Defense{SourceCap: -1}); err == nil {
		t.Error("negative source cap accepted")
	}
	if e.Defense() != good {
		t.Errorf("failed SetDefense mutated the installed defense: %+v", e.Defense())
	}
}

// TestDefenseAcrossResizeAndCompact: the per-node defense arrays follow
// the slot lifecycle — Resize gives newcomers fresh buckets and counters,
// Compact remaps survivors — with the ledger identity intact throughout.
func TestDefenseAcrossResizeAndCompact(t *testing.T) {
	head := 2
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 1, Dst: 2, Rate: 2}}}
	e := mustEngine(t, 3, cfg, headLineHooks(&head), 1)
	if err := e.SetDefense(Defense{HeadTokens: true, HeadRate: 1, HeadBurst: 1, SourceCap: 1}); err != nil {
		t.Fatal(err)
	}
	runSteps(t, e, 10)

	// A newcomer joins and starts its own flow at the head: both defenses
	// must apply to the fresh slot.
	e.Resize(5)
	if err := e.AddFlows([]FlowSpec{{Kind: CBR, Src: 4, Dst: 2, Rate: 2}}); err != nil {
		t.Fatal(err)
	}
	for s := 11; s <= 30; s++ {
		if err := e.Step(s); err != nil {
			t.Fatal(err)
		}
	}
	mid := e.Stats()
	checkLedger(t, mid)
	if mid.DropsRateLimit == 0 || mid.DropsAdmission == 0 {
		t.Fatalf("defenses silent before compaction: %+v", mid)
	}

	// Drop the never-used slot 0; every survivor shifts down one, the head
	// included.
	if err := e.Compact([]int32{-1, 0, 1, 2, 3}, 4); err != nil {
		t.Fatal(err)
	}
	head = 1
	for s := 31; s <= 60; s++ {
		if err := e.Step(s); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsRateLimit <= mid.DropsRateLimit {
		t.Errorf("rate limit stopped firing after compaction: %d -> %d", mid.DropsRateLimit, s.DropsRateLimit)
	}
	if s.DropsAdmission <= mid.DropsAdmission {
		t.Errorf("admission stopped firing after compaction: %d -> %d", mid.DropsAdmission, s.DropsAdmission)
	}
}
