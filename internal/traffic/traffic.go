// Package traffic is the packet-level data plane that runs inside the
// simulator's Δ(τ) step loop. The clustering exists so hierarchical
// routing scales; this package makes that claim falsifiable end to end:
// flow generators inject packets, a per-node forwarding engine moves them
// one hop per step through bounded queues over whatever routing the caller
// provides, and a metrics sink accounts for every packet — delivered,
// dropped (queue overflow, no route, TTL, dead endpoint) or still in
// flight. The data plane survives churn: Resize grows it when nodes
// join, FlushNode accounts for queues lost to crashes and departures,
// and the Alive hook turns packets addressed to dead or sleeping
// endpoints into accounted drops instead of routing errors.
//
// The engine is deterministic: all randomness (Poisson inter-arrivals,
// endpoint sampling) is drawn from the caller's rng stream in flow order,
// and forwarding is a sequential pass in node-index order with staged
// arrivals, so a fixed seed reproduces the same packet trajectories
// regardless of how many workers the protocol engine itself uses.
//
// The hot path is allocation-free at steady state: queues are fixed-size
// rings, staged arrival buffers are reused every step, and the latency
// histogram grows only to the maximum observed latency.
package traffic

import (
	"fmt"

	"selfstab/internal/rng"
)

// Discipline selects what a full queue does with new arrivals.
type Discipline int

const (
	// DropTail rejects the arriving packet (the classic FIFO tail drop).
	DropTail Discipline = iota
	// DropHead evicts the oldest queued packet to admit the new one —
	// fresher packets are worth more under congestion.
	DropHead
)

// Hooks connects the data plane to the control plane it routes over. All
// three are required.
type Hooks struct {
	// NextHop returns the neighbor a packet at cur takes toward dst, or
	// false when the routing layer has no route. Called once per forwarded
	// packet per hop; must not allocate on the happy path.
	NextHop func(cur, dst int) (int, bool)
	// Dist returns the flat shortest-path hop count between two nodes
	// (-1 when disconnected) — the baseline for path stretch. Called only
	// when TopoEpoch changes, so it may BFS.
	Dist func(src, dst int) int
	// TopoEpoch identifies the current topology version; cached flat
	// distances are reused while it is unchanged.
	TopoEpoch func() uint64
	// Alive reports whether node i is currently an operating endpoint
	// (powered on and awake). nil means every node is always alive. A flow
	// whose source is not alive pauses (nothing offered, no rng draws,
	// no CBR credit); packets addressed to a not-alive destination become
	// DropsDeadEndpoint, at injection and at every forwarding hop.
	Alive func(i int) bool
}

// Config parameterizes the data plane.
type Config struct {
	// QueueCap bounds each node's packet queue. Default 64.
	QueueCap int
	// Discipline is the overflow policy. Default DropTail.
	Discipline Discipline
	// Budget is how many packets one node forwards per step (the link
	// capacity abstraction — one Δ(τ) step carries Budget transmissions
	// per node). Default 1.
	Budget int
	// TTL drops packets that exceed this many hops (routing loops under a
	// churning assignment must not circulate forever). Default 64.
	TTL int
	// Flows are the workloads injecting packets.
	Flows []FlowSpec
}

func (c *Config) fillDefaults() {
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.Budget == 0 {
		c.Budget = 1
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
}

func (c *Config) validate(n int) error {
	if c.QueueCap < 1 {
		return fmt.Errorf("traffic: queue capacity %d < 1", c.QueueCap)
	}
	if c.Discipline != DropTail && c.Discipline != DropHead {
		return fmt.Errorf("traffic: invalid discipline %d", int(c.Discipline))
	}
	if c.Budget < 1 {
		return fmt.Errorf("traffic: per-node budget %d < 1", c.Budget)
	}
	if c.TTL < 1 {
		return fmt.Errorf("traffic: ttl %d < 1", c.TTL)
	}
	if len(c.Flows) == 0 {
		return fmt.Errorf("traffic: no flows")
	}
	for i := range c.Flows {
		if err := c.Flows[i].validate(n); err != nil {
			return fmt.Errorf("traffic: flow %d: %w", i, err)
		}
	}
	return nil
}

// packet is one in-flight datagram. Packets live in ring buffers and
// staged-arrival slices, never on the heap individually.
type packet struct {
	flow int32 // index into Engine.flows
	dst  int32
	hops int32
	born int32 // step index at injection
}

// ring is a fixed-capacity FIFO of packets.
type ring struct {
	buf   []packet
	head  int
	count int
}

func (r *ring) init(cap int) { r.buf = make([]packet, cap) }

func (r *ring) full() bool { return r.count == len(r.buf) }

func (r *ring) push(p packet) bool {
	if r.full() {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = p
	r.count++
	return true
}

func (r *ring) pop() packet {
	p := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return p
}

// Engine is the per-network data plane. It is not goroutine-safe; the
// protocol engine invokes Step from its post-guard hook, on one goroutine.
type Engine struct {
	cfg   Config
	hooks Hooks
	src   *rng.Source
	n     int

	queues   []ring
	arrivals [][]packet // staged one-hop moves, merged after the pass
	flows    []flowState
	load     []int64 // forwarding events per node (transmissions)
	recv     []int64 // reception events per node (one per transmission, at the receiver)

	acc      acc
	step     int // the protocol's absolute completed-step count
	stepsRun int // how many steps this data plane itself has run
}

// New builds a data plane for n nodes. The rng source feeds all workload
// randomness; pass a dedicated Split so traffic draws never perturb the
// protocol's streams.
func New(n int, cfg Config, hooks Hooks, src *rng.Source) (*Engine, error) {
	if n < 1 {
		return nil, fmt.Errorf("traffic: %d nodes", n)
	}
	if hooks.NextHop == nil || hooks.Dist == nil || hooks.TopoEpoch == nil {
		return nil, fmt.Errorf("traffic: all hooks are required")
	}
	if src == nil {
		return nil, fmt.Errorf("traffic: nil rng source")
	}
	cfg.fillDefaults()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		hooks:    hooks,
		src:      src,
		n:        n,
		queues:   make([]ring, n),
		arrivals: make([][]packet, n),
		load:     make([]int64, n),
		recv:     make([]int64, n),
		flows:    make([]flowState, len(cfg.Flows)),
	}
	for i := range e.queues {
		e.queues[i].init(cfg.QueueCap)
	}
	for i := range e.flows {
		e.flows[i] = flowState{spec: cfg.Flows[i], flatDist: -2}
	}
	return e, nil
}

// Step advances the data plane by one Δ(τ) step: flows inject, every node
// forwards up to Budget queued packets one hop, staged arrivals merge into
// the destination queues. step is the protocol's completed-step count.
func (e *Engine) Step(step int) error {
	e.step = step
	e.stepsRun++

	// Phase 1: injection, in flow order (all randomness drawn here, on one
	// stream, so trajectories are worker-count independent). Flows with a
	// dead or sleeping source are paused entirely.
	for fi := range e.flows {
		f := &e.flows[fi]
		if !e.alive(f.spec.Src) {
			continue
		}
		for range f.arrivalsThisStep(step, e.src) {
			e.inject(fi, f)
		}
	}

	// Phase 2: forwarding, in node-index order. Moves are staged so a
	// packet advances exactly one hop per step no matter the node order.
	// Dead nodes' queues were flushed when they died; a sleeping node's
	// queue is frozen until it wakes.
	for u := 0; u < e.n; u++ {
		if !e.alive(u) {
			continue
		}
		q := &e.queues[u]
		for b := e.cfg.Budget; b > 0 && q.count > 0; b-- {
			p := q.pop()
			if !e.alive(int(p.dst)) {
				// The endpoint died or went to sleep while the packet was
				// in flight: an accounted drop, never a routing panic.
				e.acc.dropsDeadEndpoint++
				e.flows[p.flow].dropped++
				continue
			}
			next, ok := e.hooks.NextHop(u, int(p.dst))
			if !ok || next == u {
				e.acc.dropsNoRoute++
				e.flows[p.flow].dropped++
				continue
			}
			p.hops++
			if int(p.hops) > e.cfg.TTL {
				e.acc.dropsTTL++
				e.flows[p.flow].dropped++
				continue
			}
			// Only actual transmissions count as forwarding load; packets
			// dropped above never left the node. Every transmission has
			// exactly one receiver (next — the destination itself on the
			// final hop), which pays the radio reception: the tx/rx pair
			// the energy subsystem charges per packet.
			e.load[u]++
			e.recv[next]++
			if next == int(p.dst) {
				e.deliver(p)
				continue
			}
			e.arrivals[next] = append(e.arrivals[next], p)
		}
	}

	// Phase 3: merge staged arrivals, in node-index order.
	for v := 0; v < e.n; v++ {
		staged := e.arrivals[v]
		if len(staged) == 0 {
			continue
		}
		q := &e.queues[v]
		for _, p := range staged {
			e.admit(q, p)
		}
		e.arrivals[v] = staged[:0]
	}
	return nil
}

// alive applies the optional liveness hook (nil: everything is alive).
func (e *Engine) alive(i int) bool {
	return e.hooks.Alive == nil || e.hooks.Alive(i)
}

// inject creates one packet on flow fi and enqueues it at the source.
func (e *Engine) inject(fi int, f *flowState) {
	e.acc.offered++
	f.offered++
	src, dst := f.spec.Src, f.spec.Dst
	if !e.alive(dst) {
		// Addressed to a dead or sleeping endpoint: accounted and dropped
		// at the source, it never consumes queue space or forwarding.
		e.acc.dropsDeadEndpoint++
		f.dropped++
		return
	}
	if src == dst {
		// Degenerate self-flow: delivered instantly, zero hops (the
		// regression contract for Src == Dst flow specs — see validate).
		p := packet{flow: int32(fi), dst: int32(dst), born: int32(e.step)}
		e.deliver(p)
		return
	}
	f.refreshFlatDist(e.hooks)
	e.admit(&e.queues[src], packet{flow: int32(fi), dst: int32(dst), born: int32(e.step)})
}

// admit pushes p onto q, applying the overflow discipline. Exactly one
// packet dies on overflow: the arrival under DropTail, the oldest queued
// packet under DropHead (per-flow drop accounting follows the casualty).
func (e *Engine) admit(q *ring, p packet) {
	if q.push(p) {
		return
	}
	e.acc.dropsQueue++
	if e.cfg.Discipline == DropHead {
		victim := q.pop()
		q.push(p)
		e.flows[victim.flow].dropped++
		return
	}
	e.flows[p.flow].dropped++
}

// deliver finalizes a packet at its destination.
func (e *Engine) deliver(p packet) {
	f := &e.flows[p.flow]
	e.acc.delivered++
	f.delivered++
	e.acc.hopTotal += int64(p.hops)
	// Latency counts the steps the packet spent in the network, injection
	// step included, so an uncongested h-hop path has latency exactly h
	// and queueing shows up as the excess over MeanHops.
	latency := 0
	if p.hops > 0 {
		latency = e.step - int(p.born) + 1
	}
	e.acc.observeLatency(latency)
	if p.hops > 0 && f.flatDist > 0 {
		e.acc.stretchSum += float64(p.hops) / float64(f.flatDist)
		e.acc.stretchCount++
	}
}

// Resize grows the data plane to n nodes (new arrivals under churn get
// empty queues). Shrinking is not supported — node slots are never
// recycled, dead nodes just stop being routed to.
func (e *Engine) Resize(n int) {
	for len(e.queues) < n {
		e.queues = append(e.queues, ring{})
		e.queues[len(e.queues)-1].init(e.cfg.QueueCap)
		e.arrivals = append(e.arrivals, nil)
		e.load = append(e.load, 0)
		e.recv = append(e.recv, 0)
	}
	if n > e.n {
		e.n = n
	}
}

// FlushNode drops every packet queued at node i, accounting each as a
// dead-endpoint drop — the fate of a queue lost to a crash or a permanent
// departure. (A sleeping node's queue is not flushed; it is frozen until
// the node wakes.)
func (e *Engine) FlushNode(i int) {
	if i < 0 || i >= len(e.queues) {
		return
	}
	q := &e.queues[i]
	for q.count > 0 {
		p := q.pop()
		e.acc.dropsDeadEndpoint++
		e.flows[p.flow].dropped++
	}
}

// InFlight returns how many packets are currently queued.
func (e *Engine) InFlight() int64 {
	total := int64(0)
	for i := range e.queues {
		total += int64(e.queues[i].count)
	}
	return total
}

// Load returns a copy of the per-node forwarding-event counts.
func (e *Engine) Load() []int64 {
	return append([]int64(nil), e.load...)
}

// Recv returns a copy of the per-node reception-event counts. Every
// forwarding event charged to a sender in Load has exactly one matching
// reception here, so the totals of the two vectors are always equal.
func (e *Engine) Recv() []int64 {
	return append([]int64(nil), e.recv...)
}

// LoadAt returns node i's cumulative transmission count without copying —
// the allocation-free per-step hook the energy subsystem charges tx costs
// from (0 for out-of-range indices, so callers racing a Resize stay safe).
func (e *Engine) LoadAt(i int) int64 {
	if i < 0 || i >= len(e.load) {
		return 0
	}
	return e.load[i]
}

// RecvAt returns node i's cumulative reception count without copying (0
// for out-of-range indices).
func (e *Engine) RecvAt(i int) int64 {
	if i < 0 || i >= len(e.recv) {
		return 0
	}
	return e.recv[i]
}
