// Package traffic is the packet-level data plane that runs inside the
// simulator's Δ(τ) step loop. The clustering exists so hierarchical
// routing scales; this package makes that claim falsifiable end to end:
// flow generators inject packets, a per-node forwarding engine moves them
// one hop per step through bounded queues over whatever routing the caller
// provides, and a metrics sink accounts for every packet — delivered,
// dropped (queue overflow, no route, TTL, dead endpoint, or refused by a
// defense: head admission control, source rate limit) or still in
// flight. The data plane survives churn: Resize grows it when nodes
// join, FlushNode accounts for queues lost to crashes and departures,
// and the Alive hook turns packets addressed to dead or sleeping
// endpoints into accounted drops instead of routing errors.
//
// The engine is deterministic: all randomness (Poisson inter-arrivals,
// endpoint sampling) is drawn from the caller's rng stream in flow order,
// and forwarding is a sequential pass in node-index order with staged
// arrivals, so a fixed seed reproduces the same packet trajectories
// regardless of how many workers the protocol engine itself uses.
//
// The hot path is allocation-free at steady state: queues are fixed-size
// rings, staged arrival buffers are reused every step, and the latency
// histogram grows only to the maximum observed latency.
package traffic

import (
	"fmt"
	"slices"

	"selfstab/internal/obs"
	"selfstab/internal/rng"
)

// Discipline selects what a full queue does with new arrivals.
type Discipline int

const (
	// DropTail rejects the arriving packet (the classic FIFO tail drop).
	DropTail Discipline = iota
	// DropHead evicts the oldest queued packet to admit the new one —
	// fresher packets are worth more under congestion.
	DropHead
)

// Hooks connects the data plane to the control plane it routes over. All
// three are required.
type Hooks struct {
	// NextHop returns the neighbor a packet at cur takes toward dst, or
	// false when the routing layer has no route. Called once per forwarded
	// packet per hop; must not allocate on the happy path.
	NextHop func(cur, dst int) (int, bool)
	// Dist returns the flat shortest-path hop count between two nodes
	// (-1 when disconnected) — the baseline for path stretch. Called only
	// when TopoEpoch changes, so it may BFS.
	Dist func(src, dst int) int
	// TopoEpoch identifies the current topology version; cached flat
	// distances are reused while it is unchanged.
	TopoEpoch func() uint64
	// Alive reports whether node i is currently an operating endpoint
	// (powered on and awake). nil means every node is always alive. A flow
	// whose source is not alive pauses (nothing offered, no rng draws,
	// no CBR credit); packets addressed to a not-alive destination become
	// DropsDeadEndpoint, at injection and at every forwarding hop.
	Alive func(i int) bool
	// IsHead reports whether node i is currently a cluster-head — the
	// admission-control defense guards head queues only. nil means no node
	// is ever a head (admission control never fires). Only consulted while
	// a Defense with HeadTokens is installed.
	IsHead func(i int) bool
}

// Defense parameterizes the data plane's attack mitigations. The zero
// value disables everything; install with Engine.SetDefense. Defense
// drops are accounted separately from congestion (DropsAdmission,
// DropsRateLimit), so attack-vs-defense deltas are measurable in the
// ledger.
type Defense struct {
	// HeadTokens enables per-head token-bucket admission control: a packet
	// — injected or forwarded — enters a cluster-head's queue only if the
	// head's bucket holds a token. Buckets hold up to HeadBurst tokens and
	// refill at HeadRate tokens per step (lazily, so an idle head pays
	// nothing); a packet refused by an empty bucket is a DropsAdmission.
	// This caps the rate at which a flood can occupy a head's queue,
	// forwarding budget and radio, at the cost of also shedding legitimate
	// head-bound traffic beyond the rate.
	HeadTokens bool
	// HeadRate is the bucket refill rate in tokens (packets) per step.
	HeadRate float64
	// HeadBurst is the bucket capacity in tokens.
	HeadBurst float64
	// SourceCap caps how many packets any single source may inject per
	// step; the excess is refused at the source NIC and accounted
	// DropsRateLimit. 0 disables the cap.
	SourceCap int
}

func (d *Defense) validate() error {
	if d.HeadTokens && (d.HeadRate <= 0 || d.HeadBurst < 1) {
		return fmt.Errorf("traffic: head admission needs rate > 0 and burst >= 1 (got rate %v, burst %v)", d.HeadRate, d.HeadBurst)
	}
	if d.SourceCap < 0 {
		return fmt.Errorf("traffic: negative source cap %d", d.SourceCap)
	}
	return nil
}

// Config parameterizes the data plane.
type Config struct {
	// QueueCap bounds each node's packet queue. Default 64.
	QueueCap int
	// Discipline is the overflow policy. Default DropTail.
	Discipline Discipline
	// Budget is how many packets one node forwards per step (the link
	// capacity abstraction — one Δ(τ) step carries Budget transmissions
	// per node). Default 1.
	Budget int
	// TTL drops packets that exceed this many hops (routing loops under a
	// churning assignment must not circulate forever). Default 64.
	TTL int
	// Flows are the workloads injecting packets.
	Flows []FlowSpec
}

func (c *Config) fillDefaults() {
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.Budget == 0 {
		c.Budget = 1
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
}

func (c *Config) validate(n int) error {
	if c.QueueCap < 1 {
		return fmt.Errorf("traffic: queue capacity %d < 1", c.QueueCap)
	}
	if c.Discipline != DropTail && c.Discipline != DropHead {
		return fmt.Errorf("traffic: invalid discipline %d", int(c.Discipline))
	}
	if c.Budget < 1 {
		return fmt.Errorf("traffic: per-node budget %d < 1", c.Budget)
	}
	if c.TTL < 1 {
		return fmt.Errorf("traffic: ttl %d < 1", c.TTL)
	}
	if len(c.Flows) == 0 {
		return fmt.Errorf("traffic: no flows")
	}
	for i := range c.Flows {
		if err := c.Flows[i].validate(n); err != nil {
			return fmt.Errorf("traffic: flow %d: %w", i, err)
		}
	}
	return nil
}

// packet is one in-flight datagram. Packets live in ring buffers and
// staged-arrival slices, never on the heap individually.
type packet struct {
	flow int32 // index into Engine.flows
	dst  int32
	hops int32
	born int32 // step index at injection
}

// ring is a fixed-capacity FIFO of packets.
type ring struct {
	buf   []packet
	head  int
	count int
}

func (r *ring) init(cap int) { r.buf = make([]packet, cap) }

func (r *ring) full() bool { return r.count == len(r.buf) }

func (r *ring) push(p packet) bool {
	if r.full() {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = p
	r.count++
	return true
}

func (r *ring) pop() packet {
	p := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return p
}

// Engine is the per-network data plane. It is not goroutine-safe; the
// protocol engine invokes Step from its post-guard hook, on one goroutine.
type Engine struct {
	cfg   Config
	hooks Hooks
	src   *rng.Source
	n     int

	queues   []ring
	arrivals [][]packet // staged one-hop moves, merged after the pass
	flows    []flowState
	load     []int64 // forwarding events per node (transmissions)
	recv     []int64 // reception events per node (one per transmission, at the receiver)

	// busy is the forwarding worklist: the ascending indices of nodes
	// whose queue held packets at last sight (emptied entries are culled
	// lazily at the next pass). The forwarding phase walks it instead of
	// all n nodes, so an idle 100k-node network pays for its traffic, not
	// its size — and because the list is visited sorted, the visit order
	// (and hence every queue interleaving) is bit-identical to the
	// historical full scan. New members are appended out of place (O(1)
	// amortized; the old sorted insert shifted O(busy) per newcomer, which
	// at hotspot onset turned quadratic) and busyDirty triggers one sort
	// at the next forwarding pass; culls preserve sortedness. arrList
	// collects the receivers with staged arrivals for the merge phase the
	// same way (no sort needed there — receivers are independent).
	busy      []int32
	busyFlag  []bool
	busyDirty bool
	arrList   []int32
	arrFlag   []bool

	// Defense state (nil slices while no defense is installed — the
	// undefended hot path pays one zero-compare per packet). tokens and
	// tokensAt are the per-head buckets, refilled lazily against the step
	// clock (tokensAt -1: untouched, the bucket starts full). injCount and
	// injAt implement the per-source per-step injection cap without an
	// O(N) per-step reset: a stale injAt stamp means "nothing injected
	// this step yet".
	defense  Defense
	tokens   []float64
	tokensAt []int32
	injCount []int32
	injAt    []int32

	// Retired accounting: per-node counters of slots dropped by Compact,
	// folded into Stats totals so the ledger is invariant across a
	// compaction (a dead node's forwarding history doesn't vanish with
	// its slot).
	retiredLoad    int64
	retiredRecv    int64
	retiredMaxLoad int64

	acc      acc
	step     int // the protocol's absolute completed-step count
	stepsRun int // how many steps this data plane itself has run

	// probe, when set, receives per-step forwarding and occupancy
	// counters; nil costs one branch per Step (see internal/obs).
	probe obs.Probe
}

// New builds a data plane for n nodes. The rng source feeds all workload
// randomness; pass a dedicated Split so traffic draws never perturb the
// protocol's streams.
func New(n int, cfg Config, hooks Hooks, src *rng.Source) (*Engine, error) {
	if n < 1 {
		return nil, fmt.Errorf("traffic: %d nodes", n)
	}
	if hooks.NextHop == nil || hooks.Dist == nil || hooks.TopoEpoch == nil {
		return nil, fmt.Errorf("traffic: all hooks are required")
	}
	if src == nil {
		return nil, fmt.Errorf("traffic: nil rng source")
	}
	cfg.fillDefaults()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		hooks:    hooks,
		src:      src,
		n:        n,
		queues:   make([]ring, n),
		arrivals: make([][]packet, n),
		load:     make([]int64, n),
		recv:     make([]int64, n),
		busyFlag: make([]bool, n),
		arrFlag:  make([]bool, n),
		flows:    make([]flowState, len(cfg.Flows)),
	}
	for i := range e.queues {
		e.queues[i].init(cfg.QueueCap)
	}
	for i := range e.flows {
		e.flows[i] = flowState{spec: cfg.Flows[i], flatDist: -2}
	}
	return e, nil
}

// SetProbe attaches an instrumentation probe (nil detaches it). The
// probe is a pure observer — see internal/obs — so trajectories are
// bit-identical attached or not. Call only between steps.
func (e *Engine) SetProbe(p obs.Probe) { e.probe = p }

// SetDefense installs (or, with the zero value, removes) the attack
// mitigations. Buckets and injection counters reset: heads start with a
// full bucket. Call only between steps. A failed validation mutates
// nothing.
//
//selfstab:mutator
func (e *Engine) SetDefense(d Defense) error {
	if err := d.validate(); err != nil {
		return err
	}
	e.defense = d
	e.tokens, e.tokensAt = nil, nil
	e.injCount, e.injAt = nil, nil
	if d.HeadTokens {
		e.tokens = make([]float64, len(e.queues))
		e.tokensAt = make([]int32, len(e.queues))
		for i := range e.tokensAt {
			e.tokensAt[i] = -1
		}
	}
	if d.SourceCap > 0 {
		e.injCount = make([]int32, len(e.queues))
		e.injAt = make([]int32, len(e.queues))
		for i := range e.injAt {
			e.injAt[i] = -1
		}
	}
	return nil
}

// Defense returns the installed mitigations (zero value: none).
func (e *Engine) Defense() Defense { return e.defense }

// AddFlows appends workloads to the running data plane. Queues, the
// ledger and every existing flow's accumulators are untouched — unlike a
// re-attach, the delivery history across the append stays continuous,
// which is what makes "delivery ratio before vs during a flood"
// measurable in one run. All specs are validated against the current
// node count first, so a failed call mutates nothing.
//
//selfstab:mutator
func (e *Engine) AddFlows(specs []FlowSpec) error {
	for i := range specs {
		if err := specs[i].validate(len(e.queues)); err != nil {
			return fmt.Errorf("traffic: flow %d: %w", i, err)
		}
	}
	for _, s := range specs {
		e.flows = append(e.flows, flowState{spec: s, flatDist: -2})
	}
	e.cfg.Flows = append(e.cfg.Flows, specs...)
	return nil
}

// takeToken refills head v's bucket against the step clock and consumes
// one token if available. Per-node arithmetic on one goroutine:
// deterministic at any parallelism.
//
//selfstab:hotpath
func (e *Engine) takeToken(v int) bool {
	if e.tokensAt[v] < 0 {
		e.tokens[v] = e.defense.HeadBurst
		e.tokensAt[v] = int32(e.step)
	} else if dt := e.step - int(e.tokensAt[v]); dt > 0 {
		e.tokens[v] = min(e.defense.HeadBurst, e.tokens[v]+e.defense.HeadRate*float64(dt))
		e.tokensAt[v] = int32(e.step)
	}
	if e.tokens[v] >= 1 {
		e.tokens[v]--
		return true
	}
	return false
}

// headRefuses reports whether head v's admission bucket refuses one
// arriving packet. It gates every arrival at a head — transit packets
// entering the queue AND packets addressed to the head itself — so a
// flood aimed at a head exhausts the bucket instead of the head. False
// whenever the HeadTokens defense is off or v is not currently a head.
//
//selfstab:hotpath
func (e *Engine) headRefuses(v int) bool {
	return e.tokens != nil && e.hooks.IsHead != nil && e.hooks.IsHead(v) && !e.takeToken(v)
}

// Step advances the data plane by one Δ(τ) step: flows inject, every node
// forwards up to Budget queued packets one hop, staged arrivals merge into
// the destination queues. step is the protocol's completed-step count.
//
//selfstab:mutator
//selfstab:hotpath
func (e *Engine) Step(step int) error {
	e.step = step
	e.stepsRun++
	var forwarded int64
	rejects0 := e.acc.dropsAdmission + e.acc.dropsRateLimit

	// Phase 1: injection, in flow order (all randomness drawn here, on one
	// stream, so trajectories are worker-count independent). Flows with a
	// dead or sleeping source are paused entirely.
	for fi := range e.flows {
		f := &e.flows[fi]
		if !e.alive(f.spec.Src) {
			continue
		}
		for range f.arrivalsThisStep(step, e.src) {
			e.inject(fi, f)
		}
	}

	// Phase 2: forwarding, over the busy worklist in node-index order —
	// the same visit sequence as a full scan over non-empty queues, at
	// O(busy) instead of O(n). Moves are staged so a packet advances
	// exactly one hop per step no matter the node order. Dead nodes'
	// queues were flushed when they died; a sleeping node's queue is
	// frozen until it wakes (its worklist entry idles with it). Entries
	// whose queue emptied since the last pass are culled here. The
	// worklist is sorted lazily: appends since the last pass set
	// busyDirty, and one sort here restores index order (culling keeps a
	// sorted list sorted, so a steady-state step skips the sort too).
	if e.busyDirty {
		slices.Sort(e.busy)
		e.busyDirty = false
	}
	w := 0
	for _, bu := range e.busy {
		u := int(bu)
		q := &e.queues[u]
		if q.count == 0 {
			e.busyFlag[u] = false
			continue
		}
		e.busy[w] = bu
		w++
		if !e.alive(u) {
			continue
		}
		for b := e.cfg.Budget; b > 0 && q.count > 0; b-- {
			p := q.pop()
			if !e.alive(int(p.dst)) {
				// The endpoint died or went to sleep while the packet was
				// in flight: an accounted drop, never a routing panic.
				e.acc.dropsDeadEndpoint++
				e.flows[p.flow].dropped++
				continue
			}
			next, ok := e.hooks.NextHop(u, int(p.dst))
			if !ok || next == u {
				e.acc.dropsNoRoute++
				e.flows[p.flow].dropped++
				continue
			}
			p.hops++
			if int(p.hops) > e.cfg.TTL {
				e.acc.dropsTTL++
				e.flows[p.flow].dropped++
				continue
			}
			// Only actual transmissions count as forwarding load; packets
			// dropped above never left the node. Every transmission has
			// exactly one receiver (next — the destination itself on the
			// final hop), which pays the radio reception: the tx/rx pair
			// the energy subsystem charges per packet.
			e.load[u]++
			e.recv[next]++
			forwarded++
			if next == int(p.dst) {
				if e.headRefuses(next) {
					// Admission applies to the final hop too: a head whose
					// bucket is dry sheds the load instead of absorbing it.
					e.acc.dropsAdmission++
					e.flows[p.flow].dropped++
					continue
				}
				e.deliver(p)
				continue
			}
			if len(e.arrivals[next]) == 0 && !e.arrFlag[next] {
				e.arrFlag[next] = true
				e.arrList = append(e.arrList, int32(next))
			}
			e.arrivals[next] = append(e.arrivals[next], p)
		}
	}
	e.busy = e.busy[:w]

	// Phase 3: merge staged arrivals. Only the order of packets within
	// one receiver's staging buffer matters (it decides the FIFO and the
	// overflow casualties), and that order was fixed in phase 2; the
	// receivers themselves are independent, so the worklist needs no
	// sort.
	for _, av := range e.arrList {
		v := int(av)
		staged := e.arrivals[v]
		for _, p := range staged {
			e.admit(v, p)
		}
		e.arrivals[v] = staged[:0]
		e.arrFlag[v] = false
	}
	e.arrList = e.arrList[:0]
	if p := e.probe; p != nil {
		p.Counter(obs.CtrTrafficForwarded, forwarded)
		p.Counter(obs.CtrQueueOccupancy, e.InFlight())
		if d := e.acc.dropsAdmission + e.acc.dropsRateLimit - rejects0; d > 0 {
			p.Counter(obs.CtrAdmissionRejects, d)
		}
	}
	return nil
}

// alive applies the optional liveness hook (nil: everything is alive).
// Negative indices — the post-compaction sentinel for a recycled
// endpoint — are never alive.
func (e *Engine) alive(i int) bool {
	if i < 0 {
		return false
	}
	return e.hooks.Alive == nil || e.hooks.Alive(i)
}

// markBusy puts node v on the forwarding worklist. The append is O(1);
// the worklist is re-sorted once per forwarding pass when anything was
// added (steady-state flows re-use their membership, so the common step
// neither appends nor sorts).
//
//selfstab:hotpath
func (e *Engine) markBusy(v int) {
	if e.busyFlag[v] {
		return
	}
	e.busyFlag[v] = true
	e.busy = append(e.busy, int32(v))
	e.busyDirty = true
}

// inject creates one packet on flow fi and enqueues it at the source.
//
//selfstab:hotpath
func (e *Engine) inject(fi int, f *flowState) {
	e.acc.offered++
	f.offered++
	src, dst := f.spec.Src, f.spec.Dst
	if e.injCount != nil {
		// Per-source rate limit: the source NIC refuses the packet before
		// it is addressed. Counted offered (the workload generated it) and
		// dropped under the defense's own reason.
		if e.injAt[src] != int32(e.step) {
			e.injAt[src] = int32(e.step)
			e.injCount[src] = 0
		}
		if int(e.injCount[src]) >= e.defense.SourceCap {
			e.acc.dropsRateLimit++
			f.dropped++
			return
		}
		e.injCount[src]++
	}
	if !e.alive(dst) {
		// Addressed to a dead or sleeping endpoint: accounted and dropped
		// at the source, it never consumes queue space or forwarding.
		e.acc.dropsDeadEndpoint++
		f.dropped++
		return
	}
	if src == dst {
		// Degenerate self-flow: delivered instantly, zero hops (the
		// regression contract for Src == Dst flow specs — see validate).
		p := packet{flow: int32(fi), dst: int32(dst), born: int32(e.step)}
		e.deliver(p)
		return
	}
	f.refreshFlatDist(e.hooks)
	e.admit(src, packet{flow: int32(fi), dst: int32(dst), born: int32(e.step)})
}

// admit pushes p onto node v's queue, applying the overflow discipline,
// and keeps v on the forwarding worklist. Exactly one packet dies on
// overflow: the arrival under DropTail, the oldest queued packet under
// DropHead (per-flow drop accounting follows the casualty).
//
//selfstab:hotpath
func (e *Engine) admit(v int, p packet) {
	if e.headRefuses(v) {
		// Head admission control: the bucket is dry, the head refuses the
		// packet before it occupies queue space or forwarding budget.
		e.acc.dropsAdmission++
		e.flows[p.flow].dropped++
		return
	}
	q := &e.queues[v]
	if q.push(p) {
		e.markBusy(v)
		return
	}
	e.acc.dropsQueue++
	if e.cfg.Discipline == DropHead {
		victim := q.pop()
		q.push(p)
		e.flows[victim.flow].dropped++
		return
	}
	e.flows[p.flow].dropped++
}

// deliver finalizes a packet at its destination.
//
//selfstab:hotpath
func (e *Engine) deliver(p packet) {
	f := &e.flows[p.flow]
	e.acc.delivered++
	f.delivered++
	e.acc.hopTotal += int64(p.hops)
	// Latency counts the steps the packet spent in the network, injection
	// step included, so an uncongested h-hop path has latency exactly h
	// and queueing shows up as the excess over MeanHops.
	latency := 0
	if p.hops > 0 {
		latency = e.step - int(p.born) + 1
	}
	e.acc.observeLatency(latency)
	if p.hops > 0 && f.flatDist > 0 {
		e.acc.stretchSum += float64(p.hops) / float64(f.flatDist)
		e.acc.stretchCount++
	}
}

// Resize grows the data plane to n nodes (new arrivals under churn get
// empty queues). Shrinking is not supported — node slots are never
// recycled, dead nodes just stop being routed to.
//
//selfstab:mutator
func (e *Engine) Resize(n int) {
	for len(e.queues) < n {
		e.queues = append(e.queues, ring{})
		e.queues[len(e.queues)-1].init(e.cfg.QueueCap)
		e.arrivals = append(e.arrivals, nil)
		e.load = append(e.load, 0)
		e.recv = append(e.recv, 0)
		e.busyFlag = append(e.busyFlag, false)
		e.arrFlag = append(e.arrFlag, false)
		if e.tokens != nil {
			e.tokens = append(e.tokens, 0)
			e.tokensAt = append(e.tokensAt, -1) // newcomers start with a full bucket
		}
		if e.injCount != nil {
			e.injCount = append(e.injCount, 0)
			e.injAt = append(e.injAt, -1)
		}
	}
	if n > e.n {
		e.n = n
	}
}

// Compact applies the engine-wide dead-slot recycling remap (see
// runtime.Engine.CompactionRemap): per-node state moves to the
// survivors' new indices, in-flight packets have their destination
// renumbered (a destination whose slot was dropped becomes the negative
// never-alive sentinel and is accounted a dead-endpoint drop when it is
// next popped, exactly as before the compaction), and flow endpoints are
// renumbered the same way. The forwarding history of dropped slots folds
// into retired counters so the ledger is invariant across the call.
// Dropped slots' queues must already be empty — the churn layer flushes
// a queue at its node's death. Call only between steps.
//
//selfstab:mutator
func (e *Engine) Compact(remap []int32, newN int) error {
	if len(remap) != len(e.queues) {
		return fmt.Errorf("traffic: remap of %d entries for %d nodes", len(remap), len(e.queues))
	}
	for old, nw := range remap {
		if nw >= 0 {
			continue
		}
		if e.queues[old].count != 0 {
			return fmt.Errorf("traffic: compacting node %d with %d queued packets (flush it first)", old, e.queues[old].count)
		}
		e.retiredLoad += e.load[old]
		e.retiredRecv += e.recv[old]
		if e.load[old] > e.retiredMaxLoad {
			e.retiredMaxLoad = e.load[old]
		}
	}
	for old, nw := range remap {
		if nw < 0 {
			continue
		}
		i := int(nw)
		e.queues[i] = e.queues[old]
		e.arrivals[i] = e.arrivals[old]
		e.load[i] = e.load[old]
		e.recv[i] = e.recv[old]
		if e.tokens != nil {
			e.tokens[i] = e.tokens[old]
			e.tokensAt[i] = e.tokensAt[old]
		}
		if e.injCount != nil {
			e.injCount[i] = e.injCount[old]
			e.injAt[i] = e.injAt[old]
		}
	}
	e.queues = e.queues[:newN]
	e.arrivals = e.arrivals[:newN]
	e.load = e.load[:newN]
	e.recv = e.recv[:newN]
	if e.tokens != nil {
		e.tokens = e.tokens[:newN]
		e.tokensAt = e.tokensAt[:newN]
	}
	if e.injCount != nil {
		e.injCount = e.injCount[:newN]
		e.injAt = e.injAt[:newN]
	}
	e.arrFlag = e.arrFlag[:newN]
	for i := range e.busyFlag {
		e.busyFlag[i] = false
	}
	e.busyFlag = e.busyFlag[:newN]
	kept := e.busy[:0]
	for _, bu := range e.busy {
		if nw := remap[bu]; nw >= 0 {
			kept = append(kept, nw) // monotone remap keeps the sort
			e.busyFlag[nw] = true
		}
	}
	e.busy = kept
	for i := range e.queues {
		q := &e.queues[i]
		for k := 0; k < q.count; k++ {
			p := &q.buf[(q.head+k)%len(q.buf)]
			if p.dst >= 0 {
				p.dst = remap[p.dst] // -1 for a dropped destination
			}
		}
	}
	for i := range e.flows {
		f := &e.flows[i]
		if f.spec.Src >= 0 {
			// A dropped source pauses the flow forever — exactly its
			// behavior while the source slot was dead.
			f.spec.Src = int(remap[f.spec.Src])
		}
		if f.spec.Dst >= 0 {
			// A dropped destination turns every injection into a
			// dead-endpoint drop, as it already did.
			f.spec.Dst = int(remap[f.spec.Dst])
		}
		// The cached flat distance stays: compaction relabels the graph
		// isomorphically, so the value is exactly as (in)valid as it was,
		// and in-flight deliveries must keep sampling stretch against it
		// just like an uncompacted run. The caller's topology-epoch bump
		// triggers the (value-identical) recompute at the next injection.
	}
	e.n = newN
	return nil
}

// RetiredLoad returns the total forwarding events of slots dropped by
// Compact — callers summing Load() for a share denominator must add it
// so ratios stay invariant across compactions.
func (e *Engine) RetiredLoad() int64 { return e.retiredLoad }

// FlushNode drops every packet queued at node i, accounting each as a
// dead-endpoint drop — the fate of a queue lost to a crash or a permanent
// departure. (A sleeping node's queue is not flushed; it is frozen until
// the node wakes.)
//
//selfstab:mutator
func (e *Engine) FlushNode(i int) {
	if i < 0 || i >= len(e.queues) {
		return
	}
	q := &e.queues[i]
	for q.count > 0 {
		p := q.pop()
		e.acc.dropsDeadEndpoint++
		e.flows[p.flow].dropped++
	}
}

// InFlight returns how many packets are currently queued.
func (e *Engine) InFlight() int64 {
	total := int64(0)
	for i := range e.queues {
		total += int64(e.queues[i].count)
	}
	return total
}

// Load returns a copy of the per-node forwarding-event counts.
func (e *Engine) Load() []int64 {
	return append([]int64(nil), e.load...)
}

// Recv returns a copy of the per-node reception-event counts. Every
// forwarding event charged to a sender in Load has exactly one matching
// reception here, so the totals of the two vectors are always equal.
func (e *Engine) Recv() []int64 {
	return append([]int64(nil), e.recv...)
}

// LoadAt returns node i's cumulative transmission count without copying —
// the allocation-free per-step hook the energy subsystem charges tx costs
// from (0 for out-of-range indices, so callers racing a Resize stay safe).
func (e *Engine) LoadAt(i int) int64 {
	if i < 0 || i >= len(e.load) {
		return 0
	}
	return e.load[i]
}

// RecvAt returns node i's cumulative reception count without copying (0
// for out-of-range indices).
func (e *Engine) RecvAt(i int) int64 {
	if i < 0 || i >= len(e.recv) {
		return 0
	}
	return e.recv[i]
}
