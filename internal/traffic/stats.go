package traffic

// acc accumulates the running counters the hot path touches. Latencies go
// into a histogram indexed by step count, so percentile extraction at
// Stats time is exact and the steady-state step path never allocates
// (the histogram only grows to the maximum observed latency).
type acc struct {
	offered           int64
	delivered         int64
	dropsQueue        int64
	dropsNoRoute      int64
	dropsTTL          int64
	dropsDeadEndpoint int64
	dropsAdmission    int64
	dropsRateLimit    int64
	hopTotal          int64
	stretchSum        float64
	stretchCount      int64
	latHist           []int64
}

func (a *acc) observeLatency(l int) {
	if l < 0 {
		l = 0
	}
	for len(a.latHist) <= l {
		a.latHist = append(a.latHist, 0)
	}
	a.latHist[l]++
}

// percentile returns the smallest latency whose cumulative count reaches
// p (0 < p <= 1) of delivered packets; -1 when nothing was delivered.
func (a *acc) percentile(p float64) int {
	if a.delivered == 0 {
		return -1
	}
	threshold := int64(p * float64(a.delivered))
	if threshold < 1 {
		threshold = 1
	}
	cum := int64(0)
	for l, c := range a.latHist {
		cum += c
		if cum >= threshold {
			return l
		}
	}
	return len(a.latHist) - 1
}

// FlowStats is the per-flow slice of the ledger.
type FlowStats struct {
	Src, Dst  int
	Offered   int64
	Delivered int64
	Dropped   int64
}

// Stats is the data plane's ledger at a point in time. The accounting
// identity Offered == Delivered + DropsQueue + DropsNoRoute + DropsTTL +
// DropsDeadEndpoint + DropsAdmission + DropsRateLimit + InFlight holds
// at every step boundary.
type Stats struct {
	Steps int // steps the data plane itself has run (not the protocol's lifetime count)

	Offered   int64
	Delivered int64
	InFlight  int64

	DropsQueue   int64 // queue overflow (either discipline)
	DropsNoRoute int64 // routing had no next hop
	DropsTTL     int64 // hop budget exceeded
	// DropsDeadEndpoint counts packets addressed to a dead or sleeping
	// node (at injection or mid-flight) plus packets lost with the queue
	// of a crashed or departed node.
	DropsDeadEndpoint int64
	// DropsAdmission and DropsRateLimit are the defense drops (see
	// Defense): packets a head's token bucket refused, and packets the
	// per-source injection cap refused. Separate from the congestion
	// reasons above so an attack-vs-defense delta is measurable.
	DropsAdmission int64
	DropsRateLimit int64

	// DeliveryRatio is Delivered / (Offered - InFlight): the fraction of
	// packets with a decided fate that made it. 0 when nothing decided.
	DeliveryRatio float64

	// MeanHops averages hop counts over delivered packets.
	MeanHops float64
	// MeanStretch averages (hierarchical hops / flat shortest-path hops)
	// over delivered packets — the path-stretch cost of the hierarchy the
	// paper's scalability argument accepts. 0 when nothing qualified.
	MeanStretch float64

	// Latency percentiles in steps over delivered packets (-1 when none).
	LatencyP50 int
	LatencyP90 int
	LatencyP99 int
	LatencyMax int

	// MeanLoad / MaxLoad summarize per-node forwarding events — MaxLoad
	// far above MeanLoad is the head/gateway hotspot the hierarchy
	// concentrates.
	MeanLoad float64
	MaxLoad  int64

	Flows []FlowStats
}

// Stats snapshots the ledger.
func (e *Engine) Stats() Stats {
	s := Stats{
		Steps:             e.stepsRun,
		Offered:           e.acc.offered,
		Delivered:         e.acc.delivered,
		InFlight:          e.InFlight(),
		DropsQueue:        e.acc.dropsQueue,
		DropsNoRoute:      e.acc.dropsNoRoute,
		DropsTTL:          e.acc.dropsTTL,
		DropsDeadEndpoint: e.acc.dropsDeadEndpoint,
		DropsAdmission:    e.acc.dropsAdmission,
		DropsRateLimit:    e.acc.dropsRateLimit,
		LatencyP50:        e.acc.percentile(0.50),
		LatencyP90:        e.acc.percentile(0.90),
		LatencyP99:        e.acc.percentile(0.99),
		LatencyMax:        -1,
	}
	if decided := s.Offered - s.InFlight; decided > 0 {
		s.DeliveryRatio = float64(s.Delivered) / float64(decided)
	}
	if s.Delivered > 0 {
		s.MeanHops = float64(e.acc.hopTotal) / float64(s.Delivered)
		for l := len(e.acc.latHist) - 1; l >= 0; l-- {
			if e.acc.latHist[l] > 0 {
				s.LatencyMax = l
				break
			}
		}
	}
	if e.acc.stretchCount > 0 {
		s.MeanStretch = e.acc.stretchSum / float64(e.acc.stretchCount)
	}
	// MeanLoad averages over the operating population: dead slots would
	// silently dilute the baseline the MaxLoad-vs-MeanLoad hotspot
	// comparison rests on. Slots recycled by Compact contribute through
	// the retired carry so the ledger is invariant across a compaction.
	total := e.retiredLoad
	s.MaxLoad = e.retiredMaxLoad
	operating := 0
	for i, l := range e.load {
		total += l
		if l > s.MaxLoad {
			s.MaxLoad = l
		}
		if e.alive(i) {
			operating++
		}
	}
	if operating > 0 {
		s.MeanLoad = float64(total) / float64(operating)
	}
	s.Flows = make([]FlowStats, len(e.flows))
	for i := range e.flows {
		f := &e.flows[i]
		s.Flows[i] = FlowStats{
			Src: f.spec.Src, Dst: f.spec.Dst,
			Offered: f.offered, Delivered: f.delivered, Dropped: f.dropped,
		}
	}
	return s
}
