package traffic

import (
	"fmt"

	"selfstab/internal/rng"
)

// FlowKind selects the inter-arrival process of a flow.
type FlowKind int

const (
	// CBR injects at a constant bit rate: Rate packets per step, with a
	// fractional-credit accumulator so non-integer rates average out
	// exactly (0.25 means one packet every fourth step).
	CBR FlowKind = iota
	// Poisson injects a Poisson-distributed number of packets per step
	// with mean Rate — the classic memoryless workload.
	Poisson
)

// FlowSpec is one unicast workload between fixed endpoints (node indices).
// Many-to-one hotspot workloads are expressed as one spec per source
// sharing a sink; the caller-facing API does that expansion.
type FlowSpec struct {
	Kind     FlowKind
	Src, Dst int
	// Rate is the mean injection rate in packets per step. Must be > 0.
	Rate float64
	// Start is the first step (1-based, matching the engine's completed-
	// step count) at which the flow injects; 0 means immediately.
	Start int
	// Stop is the last step the flow injects; 0 means never stops.
	Stop int
}

// validate checks the spec against an n-node network. Src == Dst is
// deliberately legal: a self-flow never enters the forwarding loop — each
// packet is delivered at injection with zero hops and appears in the
// ledger as offered and delivered (a loopback measurement workload, and
// the safe degenerate case of randomly sampled endpoint pairs).
func (s *FlowSpec) validate(n int) error {
	if s.Kind != CBR && s.Kind != Poisson {
		return fmt.Errorf("invalid kind %d", int(s.Kind))
	}
	if s.Src < 0 || s.Src >= n || s.Dst < 0 || s.Dst >= n {
		return fmt.Errorf("endpoints (%d, %d) out of range [0, %d)", s.Src, s.Dst, n)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("rate %v must be positive", s.Rate)
	}
	if s.Stop != 0 && s.Stop < s.Start {
		return fmt.Errorf("stop %d before start %d", s.Stop, s.Start)
	}
	return nil
}

// flowState is a FlowSpec plus its runtime accumulators.
type flowState struct {
	spec   FlowSpec
	credit float64 // CBR fractional-packet accumulator

	// flatDist caches the flat shortest-path hop count Src→Dst (-1 when
	// disconnected, -2 when never computed), valid while flatEpoch matches
	// the hooks' TopoEpoch. It is the per-packet stretch baseline; one BFS
	// per flow per topology change instead of one per packet.
	flatDist  int
	flatEpoch uint64

	offered   int64
	delivered int64
	dropped   int64
}

// active reports whether the flow injects at the given step.
func (f *flowState) active(step int) bool {
	return step >= f.spec.Start && (f.spec.Stop == 0 || step <= f.spec.Stop)
}

// arrivalsThisStep draws how many packets the flow injects this step. All
// randomness comes from src, consumed in deterministic flow order.
func (f *flowState) arrivalsThisStep(step int, src *rng.Source) int {
	if !f.active(step) {
		return 0
	}
	switch f.spec.Kind {
	case Poisson:
		return src.Poisson(f.spec.Rate)
	default: // CBR
		f.credit += f.spec.Rate
		k := int(f.credit)
		f.credit -= float64(k)
		return k
	}
}

// refreshFlatDist recomputes the cached flat distance when the topology
// epoch moved.
func (f *flowState) refreshFlatDist(hooks Hooks) {
	if ep := hooks.TopoEpoch(); f.flatDist == -2 || f.flatEpoch != ep {
		f.flatDist = hooks.Dist(f.spec.Src, f.spec.Dst)
		f.flatEpoch = ep
	}
}
