package traffic

import (
	"reflect"
	"testing"

	"selfstab/internal/rng"
)

// lineHooks routes along the path 0-1-2-...-(n-1): next hop toward dst is
// cur±1. Dist is the exact hop count, TopoEpoch never moves.
func lineHooks() Hooks {
	return Hooks{
		NextHop: func(cur, dst int) (int, bool) {
			if dst > cur {
				return cur + 1, true
			}
			if dst < cur {
				return cur - 1, true
			}
			return cur, true
		},
		Dist: func(src, dst int) int {
			if d := dst - src; d < 0 {
				return -d
			} else {
				return d
			}
		},
		TopoEpoch: func() uint64 { return 0 },
	}
}

func mustEngine(t *testing.T, n int, cfg Config, hooks Hooks, seed int64) *Engine {
	t.Helper()
	e, err := New(n, cfg, hooks, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func runSteps(t *testing.T, e *Engine, steps int) {
	t.Helper()
	for s := 1; s <= steps; s++ {
		if err := e.Step(s); err != nil {
			t.Fatal(err)
		}
	}
}

// checkLedger asserts the accounting identity that every packet has
// exactly one fate.
func checkLedger(t *testing.T, s Stats) {
	t.Helper()
	if got := s.Delivered + s.DropsQueue + s.DropsNoRoute + s.DropsTTL + s.DropsDeadEndpoint + s.DropsAdmission + s.DropsRateLimit + s.InFlight; got != s.Offered {
		t.Fatalf("ledger broken: delivered %d + dropsQ %d + dropsNR %d + dropsTTL %d + dropsDead %d + dropsAdm %d + dropsRL %d + inflight %d = %d, offered %d",
			s.Delivered, s.DropsQueue, s.DropsNoRoute, s.DropsTTL, s.DropsDeadEndpoint, s.DropsAdmission, s.DropsRateLimit, s.InFlight, got, s.Offered)
	}
}

func TestCBRLineDelivery(t *testing.T) {
	// One packet per step across a 5-node line: 4 hops, so after warmup a
	// packet is delivered every step with latency 4.
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 4, Rate: 1}}}
	e := mustEngine(t, 5, cfg, lineHooks(), 1)
	runSteps(t, e, 100)
	s := e.Stats()
	checkLedger(t, s)
	if s.Offered != 100 {
		t.Errorf("offered %d, want 100", s.Offered)
	}
	if s.Delivered < 90 {
		t.Errorf("delivered %d, want >= 90 (pipeline depth 4)", s.Delivered)
	}
	if s.MeanHops != 4 {
		t.Errorf("mean hops %v, want 4", s.MeanHops)
	}
	if s.MeanStretch != 1 {
		t.Errorf("mean stretch %v, want 1 on the line", s.MeanStretch)
	}
	if s.LatencyP50 != 4 || s.LatencyMax != 4 {
		t.Errorf("latency p50 %d max %d, want 4/4 on an uncongested line", s.LatencyP50, s.LatencyMax)
	}
	// Interior nodes forward everything; endpoints 0 forwards, 4 receives.
	load := e.Load()
	if load[4] != 0 {
		t.Errorf("sink forwarded %d packets, want 0 (delivery on arrival)", load[4])
	}
	if load[1] == 0 || load[2] == 0 || load[3] == 0 {
		t.Errorf("interior load %v, want all positive", load[1:4])
	}
}

func TestFractionalCBRRate(t *testing.T) {
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 1, Rate: 0.25}}}
	e := mustEngine(t, 2, cfg, lineHooks(), 1)
	runSteps(t, e, 400)
	if s := e.Stats(); s.Offered != 100 {
		t.Errorf("offered %d over 400 steps at rate 0.25, want exactly 100", s.Offered)
	}
}

func TestPoissonRateAndDeterminism(t *testing.T) {
	cfg := Config{Flows: []FlowSpec{{Kind: Poisson, Src: 0, Dst: 3, Rate: 2}}}
	a := mustEngine(t, 4, cfg, lineHooks(), 7)
	b := mustEngine(t, 4, cfg, lineHooks(), 7)
	runSteps(t, a, 500)
	runSteps(t, b, 500)
	sa, sb := a.Stats(), b.Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("same seed diverged: %+v vs %+v", sa, sb)
	}
	if sa.Offered < 800 || sa.Offered > 1200 {
		t.Errorf("offered %d over 500 steps at mean 2/step, want ~1000", sa.Offered)
	}
	checkLedger(t, sa)
}

func TestQueueOverflowDropTail(t *testing.T) {
	// Rate 5 into a capacity-2 queue draining 1/step: steady state drops
	// 4 packets per step at the source queue, and every drop is counted.
	cfg := Config{
		QueueCap: 2,
		Flows:    []FlowSpec{{Kind: CBR, Src: 0, Dst: 2, Rate: 5}},
	}
	e := mustEngine(t, 3, cfg, lineHooks(), 1)
	runSteps(t, e, 50)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsQueue == 0 {
		t.Fatal("no queue drops under 5x overload of a 2-slot queue")
	}
	if s.Offered != 250 {
		t.Errorf("offered %d, want 250", s.Offered)
	}
	// All drops are attributed to the single flow.
	if got := s.Flows[0].Dropped; got != s.DropsQueue {
		t.Errorf("flow dropped %d, engine counted %d", got, s.DropsQueue)
	}
}

func TestQueueOverflowDropHead(t *testing.T) {
	cfg := Config{
		QueueCap:   2,
		Discipline: DropHead,
		Flows:      []FlowSpec{{Kind: CBR, Src: 0, Dst: 2, Rate: 5}},
	}
	e := mustEngine(t, 3, cfg, lineHooks(), 1)
	runSteps(t, e, 50)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsQueue == 0 {
		t.Fatal("no queue drops under overload with DropHead")
	}
	if got := s.Flows[0].Dropped; got != s.DropsQueue {
		t.Errorf("flow dropped %d, engine counted %d", got, s.DropsQueue)
	}
}

func TestNoRouteDrops(t *testing.T) {
	hooks := lineHooks()
	hooks.NextHop = func(cur, dst int) (int, bool) { return -1, false }
	hooks.Dist = func(src, dst int) int { return -1 }
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 1, Rate: 1}}}
	e := mustEngine(t, 2, cfg, hooks, 1)
	runSteps(t, e, 10)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsNoRoute == 0 || s.Delivered != 0 {
		t.Errorf("want only no-route drops, got %+v", s)
	}
	if s.DeliveryRatio != 0 {
		t.Errorf("delivery ratio %v, want 0", s.DeliveryRatio)
	}
}

func TestTTLDrops(t *testing.T) {
	// A two-node routing loop that never reaches dst 3.
	hooks := lineHooks()
	hooks.NextHop = func(cur, dst int) (int, bool) {
		if cur == 0 {
			return 1, true
		}
		return 0, true
	}
	cfg := Config{TTL: 5, Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 3, Rate: 1}}}
	e := mustEngine(t, 4, cfg, hooks, 1)
	runSteps(t, e, 40)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsTTL == 0 {
		t.Fatal("routing loop produced no TTL drops")
	}
	if s.Delivered != 0 {
		t.Errorf("loop delivered %d packets", s.Delivered)
	}
}

func TestSelfFlowDeliversInstantly(t *testing.T) {
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 1, Dst: 1, Rate: 1}}}
	e := mustEngine(t, 3, cfg, lineHooks(), 1)
	runSteps(t, e, 10)
	s := e.Stats()
	checkLedger(t, s)
	if s.Delivered != 10 || s.MeanHops != 0 || s.LatencyMax != 0 {
		t.Errorf("self-flow: %+v", s)
	}
}

func TestFlowWindow(t *testing.T) {
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 1, Rate: 1, Start: 5, Stop: 8}}}
	e := mustEngine(t, 2, cfg, lineHooks(), 1)
	runSteps(t, e, 20)
	if s := e.Stats(); s.Offered != 4 {
		t.Errorf("offered %d, want 4 (steps 5-8 inclusive)", s.Offered)
	}
}

func TestConfigValidation(t *testing.T) {
	hooks := lineHooks()
	src := rng.New(1)
	bad := []Config{
		{}, // no flows
		{Flows: []FlowSpec{{Src: -1, Dst: 0, Rate: 1}}},                   // src range
		{Flows: []FlowSpec{{Src: 0, Dst: 9, Rate: 1}}},                    // dst range
		{Flows: []FlowSpec{{Src: 0, Dst: 1, Rate: 0}}},                    // rate
		{Flows: []FlowSpec{{Src: 0, Dst: 1, Rate: 1, Start: 5, Stop: 2}}}, // window
		{QueueCap: -1, Flows: []FlowSpec{{Src: 0, Dst: 1, Rate: 1}}},
		{TTL: -3, Flows: []FlowSpec{{Src: 0, Dst: 1, Rate: 1}}},
		{Budget: -2, Flows: []FlowSpec{{Src: 0, Dst: 1, Rate: 1}}},
	}
	for i, cfg := range bad {
		if _, err := New(3, cfg, hooks, src); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(3, Config{Flows: []FlowSpec{{Src: 0, Dst: 1, Rate: 1}}}, Hooks{}, src); err == nil {
		t.Error("missing hooks accepted")
	}
	if _, err := New(0, Config{}, hooks, src); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestBudgetControlsDrainRate(t *testing.T) {
	// Two packets per step into budget-1 forwarding congests; budget 2
	// keeps up.
	mk := func(budget int) Stats {
		cfg := Config{
			Budget:   budget,
			QueueCap: 4,
			Flows:    []FlowSpec{{Kind: CBR, Src: 0, Dst: 2, Rate: 2}},
		}
		e := mustEngine(t, 3, cfg, lineHooks(), 1)
		runSteps(t, e, 60)
		return e.Stats()
	}
	s1, s2 := mk(1), mk(2)
	checkLedger(t, s1)
	checkLedger(t, s2)
	if s1.DropsQueue == 0 {
		t.Error("budget 1 under 2x load produced no queue drops")
	}
	if s2.DropsQueue != 0 {
		t.Errorf("budget 2 dropped %d packets at matched load", s2.DropsQueue)
	}
	if s2.DeliveryRatio <= s1.DeliveryRatio {
		t.Errorf("delivery ratio budget2 %v <= budget1 %v", s2.DeliveryRatio, s1.DeliveryRatio)
	}
}

// TestSelfFlowCountsInLedger is the Src == Dst regression contract in
// full: every packet of a self-flow is offered AND delivered in the same
// step, never queued, with zero hops, zero latency, and no stretch
// sample — and the per-flow ledger agrees with the totals.
func TestSelfFlowCountsInLedger(t *testing.T) {
	cfg := Config{Flows: []FlowSpec{
		{Kind: CBR, Src: 1, Dst: 1, Rate: 1},
		{Kind: CBR, Src: 0, Dst: 2, Rate: 1}, // a real flow alongside
	}}
	e := mustEngine(t, 3, cfg, lineHooks(), 7)
	runSteps(t, e, 50)
	s := e.Stats()
	checkLedger(t, s)
	self := s.Flows[0]
	if self.Offered != 50 || self.Delivered != 50 || self.Dropped != 0 {
		t.Errorf("self-flow ledger: %+v", self)
	}
	if s.LatencyP50 != 0 {
		t.Errorf("latency p50 %d: self-flow latencies must register as 0", s.LatencyP50)
	}
	if s.MeanStretch != 1 {
		t.Errorf("mean stretch %v: self-flows must not contribute stretch samples", s.MeanStretch)
	}
	// Every self-flow packet was decided at injection: the only in-flight
	// packets can belong to the real flow.
	if s.InFlight > s.Flows[1].Offered-s.Flows[1].Delivered {
		t.Errorf("self-flow packets entered the forwarding queues: %+v", s)
	}
}

// aliveHooks is lineHooks plus a mutable liveness mask.
func aliveHooks(alive []bool) Hooks {
	h := lineHooks()
	h.Alive = func(i int) bool { return alive[i] }
	return h
}

// TestDeadEndpointDrops: packets addressed to a dead node are accounted
// DropsDeadEndpoint at injection; packets already in flight when the
// endpoint dies are accounted at the next forwarding hop; flows from a
// dead source pause without offering.
func TestDeadEndpointDrops(t *testing.T) {
	alive := []bool{true, true, true, true, true}
	cfg := Config{Flows: []FlowSpec{
		{Kind: CBR, Src: 0, Dst: 4, Rate: 1},
		{Kind: CBR, Src: 3, Dst: 0, Rate: 1},
	}}
	e := mustEngine(t, 5, cfg, aliveHooks(alive), 9)
	runSteps(t, e, 10)
	before := e.Stats()
	checkLedger(t, before)
	if before.DropsDeadEndpoint != 0 {
		t.Fatalf("dead-endpoint drops with everyone alive: %+v", before)
	}

	// Kill node 4 (destination of flow 0) and node 3 (source of flow 1).
	alive[4] = false
	alive[3] = false
	e.FlushNode(4)
	e.FlushNode(3)
	runSteps(t, e, 10)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsDeadEndpoint == 0 {
		t.Fatalf("no dead-endpoint drops after killing the sink: %+v", s)
	}
	if got := s.Flows[1].Offered - before.Flows[1].Offered; got != 0 {
		t.Errorf("dead source kept offering %d packets", got)
	}
	if got := s.Flows[0].Offered - before.Flows[0].Offered; got != 10 {
		t.Errorf("live source offered %d, want 10", got)
	}
	// Everything flow 0 offered since the kill must have died as
	// dead-endpoint drops once in-flight packets drained.
	if s.InFlight != 0 {
		t.Errorf("in-flight %d, want 0 (everything addressed to a corpse)", s.InFlight)
	}

	// Revive the sink: delivery resumes.
	alive[4] = true
	alive[3] = true
	runSteps(t, e, 10)
	s2 := e.Stats()
	checkLedger(t, s2)
	if s2.Flows[0].Delivered <= s.Flows[0].Delivered {
		t.Errorf("delivery did not resume after wake: %+v", s2.Flows[0])
	}
}

// TestResizeAndFlush: growing the plane under churn gives new nodes
// working queues, and FlushNode accounts a lost queue exactly.
func TestResizeAndFlush(t *testing.T) {
	cfg := Config{QueueCap: 8, Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 3, Rate: 1}}}
	e := mustEngine(t, 4, cfg, lineHooks(), 11)
	runSteps(t, e, 2) // two packets in flight along the line
	e.Resize(6)       // two new arrivals
	if len(e.Load()) != 6 {
		t.Fatalf("load vector has %d entries after Resize(6)", len(e.Load()))
	}
	inFlight := e.InFlight()
	if inFlight == 0 {
		t.Fatal("expected packets in flight before the flush")
	}
	// Node 1 crashes: its queued packets become dead-endpoint drops.
	q1 := int64(e.queues[1].count)
	e.FlushNode(1)
	s := e.Stats()
	checkLedger(t, s)
	if s.DropsDeadEndpoint != q1 {
		t.Errorf("flush accounted %d drops, want %d", s.DropsDeadEndpoint, q1)
	}
	e.FlushNode(99) // out of range: safe no-op
}

// TestRecvCountersMatchLoad pins the tx/rx pairing the energy subsystem
// charges from: every forwarding event in Load has exactly one matching
// reception in Recv, receptions land on the receivers (relays and the
// destination, never the source), and the allocation-free accessors agree
// with the copying ones.
func TestRecvCountersMatchLoad(t *testing.T) {
	cfg := Config{Flows: []FlowSpec{{Kind: CBR, Src: 0, Dst: 3, Rate: 1}}}
	e := mustEngine(t, 4, cfg, lineHooks(), 1)
	runSteps(t, e, 50)
	load, recv := e.Load(), e.Recv()
	var txTotal, rxTotal int64
	for i := range load {
		txTotal += load[i]
		rxTotal += recv[i]
		if load[i] != e.LoadAt(i) || recv[i] != e.RecvAt(i) {
			t.Fatalf("node %d: accessors disagree with copies", i)
		}
	}
	if txTotal == 0 || txTotal != rxTotal {
		t.Fatalf("tx total %d != rx total %d", txTotal, rxTotal)
	}
	if recv[0] != 0 {
		t.Errorf("source received %d packets on a one-way line", recv[0])
	}
	// On the 0→3 line every transmission by node i is received by i+1.
	for i := 0; i < 3; i++ {
		if load[i] != recv[i+1] {
			t.Errorf("hop %d→%d: %d transmissions, %d receptions", i, i+1, load[i], recv[i+1])
		}
	}
	if e.LoadAt(-1) != 0 || e.RecvAt(99) != 0 {
		t.Error("out-of-range accessors not zero")
	}
}
