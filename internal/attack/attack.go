// Package attack is the adversarial evaluation harness: it runs the
// same attack scenario against two bit-identically constructed worlds —
// one undefended, one with the defenses on — and reports the deltas
// that make the defenses measurable. Everything is scored by the
// simulator's existing ledgers: floods by the traffic ledger (legit-flow
// delivery ratio, defense drop counters), byzantine headship capture by
// the hierarchy itself (fraction of liars holding headship) and the
// convergence ledger (steps to restabilize after eviction), and every
// scenario by the energy ledger's drain during the attack window.
//
// Both worlds share one seed, so before the attack diverges them they
// are the same world; every reported difference is attributable to the
// attack and the defense, not to sampling noise. Runs are deterministic
// at any worker or tile count — the determinism tests pin the harness
// itself.
package attack

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"selfstab"
)

// Scenario names accepted by Config.Scenario.
const (
	// ScenarioFlood: Bots compromised nodes each aim a CBR flood of
	// FloodRate packets per step at a current cluster-head. Defense:
	// per-head token-bucket admission plus per-source rate limiting.
	ScenarioFlood = "flood"
	// ScenarioByzantine: Byzantine nodes advertise densities inflated by
	// Scale, capturing headship of their neighborhoods. Defense:
	// periodic density-plausibility detection and eviction.
	ScenarioByzantine = "byzantine"
	// ScenarioSybil: Sybils fake identities join on a ring around a
	// current cluster-head, distorting local densities. Defense: the
	// operator response — removing the sybil identities after detection.
	ScenarioSybil = "sybil"
)

// Config parameterizes one twin-world attack evaluation. The zero value
// is not runnable; start from DefaultConfig.
type Config struct {
	Nodes   int     // network size
	Seed    int64   // master seed, shared by both worlds
	Range   float64 // radio range
	Tiles   int     // spatial tiles (0: untiled)
	Workers int     // step parallelism (0: single-threaded)

	Scenario    string // flood, byzantine or sybil
	Warmup      int    // steps of legitimate traffic before the attack
	AttackSteps int    // steps under attack

	Flows    int     // legitimate unicast flows carried throughout
	FlowRate float64 // per-flow injection rate (packets per step)

	Bots      int     // flood: compromised nodes
	FloodRate float64 // flood: per-bot injection rate

	Byzantine int     // byzantine: lying nodes
	Scale     float64 // byzantine: density inflation factor

	Sybils      int     // sybil: fake identities per burst
	SybilSpread float64 // sybil: ring radius around the target

	// Defenses (applied only to the defended world).
	HeadRate    float64 // token-bucket refill per head per step
	HeadBurst   float64 // token-bucket capacity
	SourceCap   int     // max injections per source per step
	PlausFactor float64 // density-plausibility detection margin
	EvictEvery  int     // steps between detection sweeps
}

// DefaultConfig returns a CI-sized evaluation: a few hundred nodes,
// attack windows long enough for the deltas to be decisive, defenses
// tuned so legitimate traffic passes untouched.
func DefaultConfig() Config {
	return Config{
		Nodes:       200,
		Seed:        1,
		Range:       0.12,
		Scenario:    ScenarioFlood,
		Warmup:      40,
		AttackSteps: 80,
		Flows:       8,
		FlowRate:    0.25,
		Bots:        12,
		FloodRate:   4,
		Byzantine:   5,
		Scale:       4,
		Sybils:      12,
		SybilSpread: 0.05,
		HeadRate:    0.75,
		HeadBurst:   3,
		SourceCap:   1,
		PlausFactor: 1.2,
		EvictEvery:  10,
	}
}

func (c *Config) validate() error {
	switch c.Scenario {
	case ScenarioFlood, ScenarioByzantine, ScenarioSybil:
	default:
		return fmt.Errorf("attack: unknown scenario %q (want %s, %s or %s)",
			c.Scenario, ScenarioFlood, ScenarioByzantine, ScenarioSybil)
	}
	if c.Nodes < 8 {
		return fmt.Errorf("attack: %d nodes is too small to attack", c.Nodes)
	}
	if c.Warmup < 1 || c.AttackSteps < 1 {
		return fmt.Errorf("attack: warmup %d and attack window %d must be positive", c.Warmup, c.AttackSteps)
	}
	if c.Flows < 1 {
		return fmt.Errorf("attack: need at least one legitimate flow to measure")
	}
	if c.EvictEvery < 1 {
		return fmt.Errorf("attack: eviction sweep interval %d must be positive", c.EvictEvery)
	}
	return nil
}

// WorldStats is one world's outcome: the attack-window slice of the
// ledgers, plus the scenario-specific score.
type WorldStats struct {
	// LegitBaseline and LegitAttack are the legitimate flows' delivery
	// ratio (delivered over decided-fate) during warmup and during the
	// attack window. Their gap is the attack's damage; the defended
	// world's recovery is the defense's worth.
	LegitBaseline float64
	LegitAttack   float64

	// DropsAdmission and DropsRateLimit are the defense drops during the
	// attack window (zero in the undefended world).
	DropsAdmission int64
	DropsRateLimit int64

	// CaptureRate is the fraction of byzantine nodes holding headship at
	// the end of the attack window (byzantine scenario).
	CaptureRate float64
	// Evictions counts nodes expelled by the plausibility defense (or
	// sybils removed, in the sybil scenario).
	Evictions int
	// StepsToRestabilize is the longest attack-kind disruption episode
	// in the convergence ledger — how long the clustering took to heal.
	StepsToRestabilize int

	// EnergyDrain is the total battery drain during the attack window —
	// the resource-exhaustion cost of the attack (and of defending).
	EnergyDrain float64
}

// Report is the twin-world comparison Run returns.
type Report struct {
	Config     Config
	Undefended WorldStats
	Defended   WorldStats
}

// Run evaluates cfg: the same scenario against an undefended and a
// defended world built from the same seed.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	und, err := runWorld(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("attack: undefended world: %w", err)
	}
	def, err := runWorld(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("attack: defended world: %w", err)
	}
	return &Report{Config: cfg, Undefended: *und, Defended: *def}, nil
}

// runWorld builds one world, carries legitimate traffic through warmup,
// launches the scenario (with defenses first when defended), and scores
// the attack window.
func runWorld(cfg Config, defended bool) (*WorldStats, error) {
	opts := []selfstab.Option{
		selfstab.WithSeed(cfg.Seed),
		selfstab.WithRange(cfg.Range),
		selfstab.WithCacheTTL(8),
		selfstab.WithStableWindow(10),
	}
	if cfg.Tiles > 0 {
		opts = append(opts, selfstab.WithTiles(cfg.Tiles))
	}
	net, err := selfstab.NewRandomNetwork(cfg.Nodes, opts...)
	if err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		net.SetParallelism(cfg.Workers)
	}
	if _, err := net.Stabilize(5000); err != nil {
		return nil, err
	}

	// Legitimate flows between tail-of-population endpoints: FloodHeads
	// conscripts its bots from the head of the index order, so the two
	// populations never overlap and the per-source rate limit can bind on
	// bots without touching legitimate sources.
	ids := net.IDs()
	flows := make([]selfstab.Flow, cfg.Flows)
	for i := range flows {
		src := ids[len(ids)-1-i]
		dst := ids[len(ids)/2+i]
		flows[i] = selfstab.CBRFlow(src, dst, cfg.FlowRate)
	}
	if err := net.AttachTraffic(selfstab.TrafficConfig{QueueCap: 32, Flows: flows}); err != nil {
		return nil, err
	}
	// The battery ledger prices the attack; capacity is generous so no
	// battery depletes inside a CI-sized window, and rotation stays off —
	// it would overwrite the byzantine density scales.
	if err := net.AttachEnergy(selfstab.EnergyConfig{Capacity: 1000}); err != nil {
		return nil, err
	}

	if err := net.Run(cfg.Warmup); err != nil {
		return nil, err
	}
	base, err := net.TrafficStats()
	if err != nil {
		return nil, err
	}
	ebase, err := net.EnergyStats()
	if err != nil {
		return nil, err
	}

	var ws WorldStats
	ws.LegitBaseline = legitRatio(base, nil, cfg.Flows)

	if defended && cfg.Scenario == ScenarioFlood {
		err := net.SetTrafficDefense(selfstab.DefenseConfig{
			HeadAdmission: true, HeadRate: cfg.HeadRate, HeadBurst: cfg.HeadBurst,
			SourceCap: cfg.SourceCap,
		})
		if err != nil {
			return nil, err
		}
	}

	var byz []int64
	switch cfg.Scenario {
	case ScenarioFlood:
		if _, err := net.FloodHeads(cfg.Bots, cfg.FloodRate); err != nil {
			return nil, err
		}
	case ScenarioByzantine:
		if byz = nonHeads(net, cfg.Byzantine); len(byz) < cfg.Byzantine {
			return nil, fmt.Errorf("only %d non-head nodes for %d byzantine", len(byz), cfg.Byzantine)
		}
		if err := net.InflateDensity(cfg.Scale, byz...); err != nil {
			return nil, err
		}
	case ScenarioSybil:
		target, ok := firstHead(net)
		if !ok {
			return nil, fmt.Errorf("no cluster-head to target")
		}
		if byz, err = net.SybilJoin(target, cfg.Sybils, cfg.SybilSpread); err != nil {
			return nil, err
		}
	}

	// The attack window, with periodic defense sweeps when defended.
	for left := cfg.AttackSteps; left > 0; {
		chunk := min(cfg.EvictEvery, left)
		if err := net.Run(chunk); err != nil {
			return nil, err
		}
		left -= chunk
		if !defended {
			continue
		}
		switch cfg.Scenario {
		case ScenarioByzantine:
			if bad := net.ImplausibleNodes(cfg.PlausFactor); len(bad) > 0 {
				if err := net.EvictNodes(bad...); err != nil {
					return nil, err
				}
				ws.Evictions += len(bad)
			}
		case ScenarioSybil:
			if len(byz) > 0 { // the operator response: expel the fakes
				if err := net.RemoveNodes(byz...); err != nil {
					return nil, err
				}
				ws.Evictions += len(byz)
				byz = nil
			}
		}
	}

	after, err := net.TrafficStats()
	if err != nil {
		return nil, err
	}
	eafter, err := net.EnergyStats()
	if err != nil {
		return nil, err
	}
	ws.LegitAttack = legitRatio(after, &base, cfg.Flows)
	ws.DropsAdmission = after.DropsAdmission - base.DropsAdmission
	ws.DropsRateLimit = after.DropsRateLimit - base.DropsRateLimit
	ws.EnergyDrain = eafter.TotalDrain - ebase.TotalDrain
	if cfg.Scenario == ScenarioByzantine {
		ws.CaptureRate = captureRate(net, byz)
	}

	// Let the episode close so the convergence ledger scores the attack.
	if _, err := net.Stabilize(20000); err != nil {
		return nil, err
	}
	for _, d := range net.ConvergenceStats().Disruptions {
		if d.Kinds&selfstab.ChurnAttack != 0 && d.StepsToStabilize > ws.StepsToRestabilize {
			ws.StepsToRestabilize = d.StepsToStabilize
		}
	}
	return &ws, nil
}

// legitRatio computes the legitimate flows' delivery ratio — delivered
// over decided-fate packets of the first n flows — as a delta from base
// (nil: since attach). The first n flows are the legitimate ones: spawned
// flood flows append after them.
func legitRatio(ts selfstab.TrafficStats, base *selfstab.TrafficStats, n int) float64 {
	var delivered, decided int64
	for i := 0; i < n && i < len(ts.PerFlow); i++ {
		f := ts.PerFlow[i]
		delivered += f.Delivered
		decided += f.Delivered + f.Dropped
		if base != nil && i < len(base.PerFlow) {
			delivered -= base.PerFlow[i].Delivered
			decided -= base.PerFlow[i].Delivered + base.PerFlow[i].Dropped
		}
	}
	if decided == 0 {
		return 0
	}
	return float64(delivered) / float64(decided)
}

// nonHeads returns the identifiers of the first count alive non-head
// nodes in index order — the deterministic byzantine (and bot) pick.
func nonHeads(net *selfstab.Network, count int) []int64 {
	var ids []int64
	for i := 0; i < net.N() && len(ids) < count; i++ {
		st, err := net.State(i)
		if err != nil {
			continue
		}
		if st.Status == selfstab.NodeAlive && !st.IsHead {
			ids = append(ids, st.ID)
		}
	}
	return ids
}

// firstHead returns the identifier of the first alive cluster-head in
// index order.
func firstHead(net *selfstab.Network) (int64, bool) {
	for i := 0; i < net.N(); i++ {
		st, err := net.State(i)
		if err != nil {
			continue
		}
		if st.Status == selfstab.NodeAlive && st.IsHead {
			return st.ID, true
		}
	}
	return 0, false
}

// captureRate returns the fraction of the given nodes currently holding
// headship.
func captureRate(net *selfstab.Network, ids []int64) float64 {
	if len(ids) == 0 {
		return 0
	}
	want := make(map[int64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	heads := 0
	for i := 0; i < net.N(); i++ {
		st, err := net.State(i)
		if err != nil {
			continue
		}
		if want[st.ID] && st.Status == selfstab.NodeAlive && st.IsHead {
			heads++
		}
	}
	return float64(heads) / float64(len(ids))
}

// Render writes the report as a human-readable comparison table.
func (r *Report) Render(out io.Writer) {
	fmt.Fprintf(out, "attack %s: %d nodes, seed %d, %d warmup + %d attack steps\n",
		r.Config.Scenario, r.Config.Nodes, r.Config.Seed, r.Config.Warmup, r.Config.AttackSteps)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  \tundefended\tdefended\n")
	fmt.Fprintf(w, "  legit delivery (baseline)\t%.3f\t%.3f\n",
		r.Undefended.LegitBaseline, r.Defended.LegitBaseline)
	fmt.Fprintf(w, "  legit delivery (under attack)\t%.3f\t%.3f\n",
		r.Undefended.LegitAttack, r.Defended.LegitAttack)
	if r.Config.Scenario == ScenarioFlood {
		fmt.Fprintf(w, "  admission drops\t%d\t%d\n",
			r.Undefended.DropsAdmission, r.Defended.DropsAdmission)
		fmt.Fprintf(w, "  rate-limit drops\t%d\t%d\n",
			r.Undefended.DropsRateLimit, r.Defended.DropsRateLimit)
	}
	if r.Config.Scenario == ScenarioByzantine {
		fmt.Fprintf(w, "  headship capture rate\t%.2f\t%.2f\n",
			r.Undefended.CaptureRate, r.Defended.CaptureRate)
	}
	if r.Config.Scenario != ScenarioFlood {
		fmt.Fprintf(w, "  evictions\t%d\t%d\n",
			r.Undefended.Evictions, r.Defended.Evictions)
		fmt.Fprintf(w, "  steps to restabilize\t%d\t%d\n",
			r.Undefended.StepsToRestabilize, r.Defended.StepsToRestabilize)
	}
	fmt.Fprintf(w, "  energy drain (attack window)\t%.2f\t%.2f\n",
		r.Undefended.EnergyDrain, r.Defended.EnergyDrain)
	w.Flush()
	if r.Config.Scenario == ScenarioFlood {
		delta := r.Defended.LegitAttack - r.Undefended.LegitAttack
		fmt.Fprintf(out, "defense recovered %+.3f legit delivery ratio under flood\n", delta)
	}
}

// RenderString renders the report to a string (convenience for tests
// and the smoke script).
func (r *Report) RenderString() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}
