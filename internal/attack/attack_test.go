package attack

import (
	"reflect"
	"strings"
	"testing"
)

// ciConfig selects a scenario on the default (already CI-sized) config.
func ciConfig(scenario string) Config {
	cfg := DefaultConfig()
	cfg.Scenario = scenario
	return cfg
}

// TestFloodDefenseRecovers: under a botnet flood, the defended world's
// legitimate delivery ratio must beat the undefended one, and the
// defense drop counters must show the defenses actually firing.
func TestFloodDefenseRecovers(t *testing.T) {
	r, err := Run(ciConfig(ScenarioFlood))
	if err != nil {
		t.Fatal(err)
	}
	u, d := r.Undefended, r.Defended
	t.Logf("legit delivery: baseline %.3f, undefended %.3f, defended %.3f",
		u.LegitBaseline, u.LegitAttack, d.LegitAttack)
	if u.LegitAttack >= u.LegitBaseline {
		t.Errorf("flood did no damage: attack ratio %.3f >= baseline %.3f", u.LegitAttack, u.LegitBaseline)
	}
	if d.LegitAttack <= u.LegitAttack {
		t.Errorf("defense did not recover delivery: defended %.3f <= undefended %.3f", d.LegitAttack, u.LegitAttack)
	}
	if u.DropsAdmission != 0 || u.DropsRateLimit != 0 {
		t.Errorf("undefended world recorded defense drops: admission %d, ratelimit %d", u.DropsAdmission, u.DropsRateLimit)
	}
	if d.DropsAdmission+d.DropsRateLimit == 0 {
		t.Error("defended world recorded no defense drops — defenses never fired")
	}
}

// TestByzantineCaptureAndEviction: density inflation must capture
// headship in the undefended world; the plausibility sweep must detect
// and evict the liars and end with less captured headship.
func TestByzantineCaptureAndEviction(t *testing.T) {
	r, err := Run(ciConfig(ScenarioByzantine))
	if err != nil {
		t.Fatal(err)
	}
	u, d := r.Undefended, r.Defended
	t.Logf("capture: undefended %.2f, defended %.2f (%d evictions, restab %d steps)",
		u.CaptureRate, d.CaptureRate, d.Evictions, d.StepsToRestabilize)
	if u.CaptureRate == 0 {
		t.Error("inflated densities captured no headship — the attack is a no-op")
	}
	if d.Evictions == 0 {
		t.Error("plausibility sweep evicted nobody")
	}
	if d.CaptureRate >= u.CaptureRate {
		t.Errorf("eviction did not reduce capture: defended %.2f >= undefended %.2f", d.CaptureRate, u.CaptureRate)
	}
	if d.StepsToRestabilize == 0 {
		t.Error("no attack-kind episode in the defended convergence ledger")
	}
}

// TestSybilBurst: the sybil join must disrupt the clustering (an
// episode in the ledger), and the operator removal must restabilize.
func TestSybilBurst(t *testing.T) {
	cfg := ciConfig(ScenarioSybil)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Defended.Evictions != cfg.Sybils {
		t.Errorf("removed %d sybils, joined %d", r.Defended.Evictions, cfg.Sybils)
	}
}

// TestHarnessDeterminism: the same config produces the same report,
// bit for bit — the twin-world comparison is free of sampling noise.
func TestHarnessDeterminism(t *testing.T) {
	cfg := ciConfig(ScenarioFlood)
	cfg.AttackSteps = 40
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ across identical runs:\n%+v\n%+v", a, b)
	}
}

// TestRenderMentionsScenario: the rendered report names the scenario
// and both columns.
func TestRenderMentionsScenario(t *testing.T) {
	cfg := ciConfig(ScenarioFlood)
	cfg.AttackSteps = 40
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := r.RenderString()
	for _, want := range []string{"flood", "undefended", "defended", "legit delivery"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered report missing %q:\n%s", want, s)
		}
	}
}

// TestConfigValidation: bad configs fail fast with clear errors.
func TestConfigValidation(t *testing.T) {
	for _, tt := range []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"bad scenario", func(c *Config) { c.Scenario = "zerg" }, "unknown scenario"},
		{"tiny network", func(c *Config) { c.Nodes = 3 }, "too small"},
		{"no warmup", func(c *Config) { c.Warmup = 0 }, "must be positive"},
		{"no flows", func(c *Config) { c.Flows = 0 }, "legitimate flow"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			_, err := Run(cfg)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %v does not mention %q", err, tt.want)
			}
		})
	}
}
