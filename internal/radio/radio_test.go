package radio

import (
	"math"
	"testing"

	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

func star(t *testing.T, leaves int) *topology.Graph {
	t.Helper()
	g := topology.New(leaves + 1)
	for v := 1; v <= leaves; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// allBut returns an active mask with the given nodes silenced.
func allBut(n int, silent ...int) []bool {
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	for _, s := range silent {
		active[s] = false
	}
	return active
}

func deliver(t *testing.T, m Medium, g *topology.Graph, active []bool) *Inbox {
	t.Helper()
	var in Inbox
	if err := m.Deliver(g, active, &in); err != nil {
		t.Fatal(err)
	}
	return &in
}

func TestPerfectDeliversAll(t *testing.T) {
	g := star(t, 4)
	in := deliver(t, Perfect{}, g, nil)
	if len(in.Senders(0)) != 4 {
		t.Errorf("center received %d frames, want 4", len(in.Senders(0)))
	}
	for v := 1; v < 5; v++ {
		row := in.Senders(v)
		if len(row) != 1 || row[0] != 0 {
			t.Errorf("leaf %d inbox: %v", v, row)
		}
	}
	if in.N() != 5 || in.Total() != 8 {
		t.Errorf("inbox shape N=%d total=%d, want 5/8", in.N(), in.Total())
	}
}

func TestPerfectSendersAscending(t *testing.T) {
	g := star(t, 4)
	in := deliver(t, Perfect{}, g, nil)
	row := in.Senders(0)
	for i := 1; i < len(row); i++ {
		if row[i-1] >= row[i] {
			t.Fatalf("senders not ascending: %v", row)
		}
	}
}

func TestPerfectSilentNode(t *testing.T) {
	g := star(t, 2)
	in := deliver(t, Perfect{}, g, allBut(3, 0))
	for v := 1; v <= 2; v++ {
		if len(in.Senders(v)) != 0 {
			t.Errorf("leaf %d heard silent center: %v", v, in.Senders(v))
		}
	}
	if len(in.Senders(0)) != 2 {
		t.Errorf("center inbox: %v", in.Senders(0))
	}
}

func TestPerfectActiveSizeMismatch(t *testing.T) {
	g := star(t, 2)
	var in Inbox
	if err := (Perfect{}).Deliver(g, make([]bool, 2), &in); err == nil {
		t.Error("active size mismatch accepted")
	}
}

// TestInboxReuseAcrossSteps: delivering into the same inbox twice reuses the
// backing arrays and yields the same (deterministic) result.
func TestInboxReuseAcrossSteps(t *testing.T) {
	g := star(t, 4)
	var in Inbox
	for step := 0; step < 3; step++ {
		if err := (Perfect{}).Deliver(g, nil, &in); err != nil {
			t.Fatal(err)
		}
		if len(in.Senders(0)) != 4 || in.Total() != 8 {
			t.Fatalf("step %d: inbox corrupted on reuse", step)
		}
	}
}

func TestBernoulliValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := NewBernoulli(0, src); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := NewBernoulli(1.5, src); err == nil {
		t.Error("tau>1 accepted")
	}
	if _, err := NewBernoulli(0.5, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestBernoulliTauOneIsPerfect(t *testing.T) {
	g := star(t, 5)
	m, err := NewBernoulli(1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	in := deliver(t, m, g, nil)
	if len(in.Senders(0)) != 5 {
		t.Errorf("tau=1 dropped frames: %d/5", len(in.Senders(0)))
	}
}

func TestBernoulliDeliveryRate(t *testing.T) {
	g := star(t, 1)
	const tau = 0.3
	m, err := NewBernoulli(tau, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	const trials = 5000
	var in Inbox
	for i := 0; i < trials; i++ {
		if err := m.Deliver(g, nil, &in); err != nil {
			t.Fatal(err)
		}
		delivered += len(in.Senders(1))
	}
	rate := float64(delivered) / trials
	if math.Abs(rate-tau) > 0.03 {
		t.Errorf("delivery rate = %v, want ~%v", rate, tau)
	}
}

// TestBernoulliMatchesLegacyOrder pins the rng consumption order: draws are
// sender-major over directed edges, so a fixed seed yields the same losses
// as the historical Broadcast loop regardless of the CSR representation.
func TestBernoulliMatchesLegacyOrder(t *testing.T) {
	g := star(t, 3)
	m, err := NewBernoulli(0.5, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	in := deliver(t, m, g, nil)

	// Replay the draws the way the legacy sender-major loop did.
	src := rng.New(9)
	want := make(map[int][]int32)
	for s := 0; s < g.N(); s++ {
		for _, r := range g.Neighbors(s) {
			if src.Float64() < 0.5 {
				want[r] = append(want[r], int32(s))
			}
		}
	}
	for r := 0; r < g.N(); r++ {
		got := in.Senders(r)
		if len(got) != len(want[r]) {
			t.Fatalf("receiver %d: got %v want %v", r, got, want[r])
		}
		for i := range got {
			if got[i] != want[r][i] {
				t.Fatalf("receiver %d: got %v want %v", r, got, want[r])
			}
		}
	}
}

func TestSlottedValidation(t *testing.T) {
	if _, err := NewSlotted(0, rng.New(1)); err == nil {
		t.Error("0 slots accepted")
	}
	if _, err := NewSlotted(4, nil); err == nil {
		t.Error("nil source accepted")
	}
}

// TestSlottedSingleSlotAlwaysCollides: with one slot and two competing
// neighbors, the receiver can never decode either frame.
func TestSlottedSingleSlotAlwaysCollides(t *testing.T) {
	g := star(t, 2) // center 0 hears leaves 1 and 2
	m, err := NewSlotted(1, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	active := allBut(3, 0) // center silent, leaves compete
	var in Inbox
	for i := 0; i < 20; i++ {
		if err := m.Deliver(g, active, &in); err != nil {
			t.Fatal(err)
		}
		if len(in.Senders(0)) != 0 {
			t.Fatalf("collision not enforced: %v", in.Senders(0))
		}
	}
}

// TestSlottedIsolatedLinkAlwaysDelivers: a single sender to a silent
// receiver always succeeds (no competitors, no half-duplex conflict).
func TestSlottedIsolatedLinkAlwaysDelivers(t *testing.T) {
	g := star(t, 1)
	m, err := NewSlotted(4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	active := allBut(2, 0)
	var in Inbox
	for i := 0; i < 20; i++ {
		if err := m.Deliver(g, active, &in); err != nil {
			t.Fatal(err)
		}
		if len(in.Senders(0)) != 1 {
			t.Fatal("lossless single link dropped a frame")
		}
	}
}

// TestSlottedEmergentTau measures the realized delivery probability on a
// clique; we only require it to sit strictly between 0 and 1 and grow
// with the slot count.
func TestSlottedEmergentTau(t *testing.T) {
	// Clique of 5: every broadcast competes with 3 other senders at each
	// receiver plus the receiver's own transmission.
	g := topology.New(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	rate := func(slots int) float64 {
		m, err := NewSlotted(slots, rng.New(6))
		if err != nil {
			t.Fatal(err)
		}
		delivered, possible := 0, 0
		var in Inbox
		for i := 0; i < 2000; i++ {
			if err := m.Deliver(g, nil, &in); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < g.N(); r++ {
				delivered += len(in.Senders(r))
				possible += g.Degree(r)
			}
		}
		return float64(delivered) / float64(possible)
	}
	few := rate(4)
	many := rate(64)
	if few <= 0 || few >= 1 {
		t.Errorf("4-slot tau = %v, want in (0,1)", few)
	}
	if many <= few {
		t.Errorf("more slots should raise tau: %v vs %v", many, few)
	}
	if many < 0.9 {
		t.Errorf("64 slots over degree 4 should deliver >90%%, got %v", many)
	}
}

func TestSlottedHalfDuplex(t *testing.T) {
	// Two nodes, one slot, both transmitting: neither can hear the other.
	g := star(t, 1)
	m, err := NewSlotted(1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	in := deliver(t, m, g, nil)
	if len(in.Senders(0)) != 0 || len(in.Senders(1)) != 0 {
		t.Errorf("half-duplex violated: %v / %v", in.Senders(0), in.Senders(1))
	}
}

func TestMediumNames(t *testing.T) {
	if (Perfect{}).Name() != "perfect" {
		t.Error("perfect name")
	}
	b, err := NewBernoulli(0.25, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "bernoulli(tau=0.25)" {
		t.Errorf("bernoulli name = %q", b.Name())
	}
	s, err := NewSlotted(8, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "slotted(8)" {
		t.Errorf("slotted name = %q", s.Name())
	}
}

// TestInboxFromPairsEmpty: zero pairs must still produce valid empty rows.
func TestInboxFromPairsEmpty(t *testing.T) {
	var in Inbox
	in.FromPairs(3, nil, nil)
	if in.N() != 3 || in.Total() != 0 {
		t.Fatalf("empty FromPairs: N=%d total=%d", in.N(), in.Total())
	}
	for r := 0; r < 3; r++ {
		if len(in.Senders(r)) != 0 {
			t.Fatalf("receiver %d not empty", r)
		}
	}
}
