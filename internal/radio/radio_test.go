package radio

import (
	"math"
	"testing"

	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

func star(t *testing.T, leaves int) *topology.Graph {
	t.Helper()
	g := topology.New(leaves + 1)
	for v := 1; v <= leaves; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func payloads(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestPerfectDeliversAll(t *testing.T) {
	g := star(t, 4)
	in, err := Perfect{}.Broadcast(g, payloads(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(in[0]) != 4 {
		t.Errorf("center received %d frames, want 4", len(in[0]))
	}
	for v := 1; v < 5; v++ {
		if len(in[v]) != 1 || in[v][0].From != 0 {
			t.Errorf("leaf %d inbox: %v", v, in[v])
		}
	}
}

func TestPerfectPayloadIntact(t *testing.T) {
	g := star(t, 1)
	out := []any{"hello", nil}
	in, err := Perfect{}.Broadcast(g, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(in[1]) != 1 {
		t.Fatalf("inbox: %v", in[1])
	}
	got, ok := in[1][0].Payload.(string)
	if !ok || got != "hello" {
		t.Errorf("payload = %v", in[1][0].Payload)
	}
}

func TestPerfectSilentNode(t *testing.T) {
	g := star(t, 2)
	out := []any{nil, 1, 2}
	in, err := Perfect{}.Broadcast(g, out)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 2; v++ {
		if len(in[v]) != 0 {
			t.Errorf("leaf %d heard silent center: %v", v, in[v])
		}
	}
	if len(in[0]) != 2 {
		t.Errorf("center inbox: %v", in[0])
	}
}

func TestPerfectSizeMismatch(t *testing.T) {
	g := star(t, 2)
	if _, err := (Perfect{}).Broadcast(g, payloads(2)); err == nil {
		t.Error("payload size mismatch accepted")
	}
}

func TestBernoulliValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := NewBernoulli(0, src); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := NewBernoulli(1.5, src); err == nil {
		t.Error("tau>1 accepted")
	}
	if _, err := NewBernoulli(0.5, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestBernoulliTauOneIsPerfect(t *testing.T) {
	g := star(t, 5)
	m, err := NewBernoulli(1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	in, err := m.Broadcast(g, payloads(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(in[0]) != 5 {
		t.Errorf("tau=1 dropped frames: %d/5", len(in[0]))
	}
}

func TestBernoulliDeliveryRate(t *testing.T) {
	g := star(t, 1)
	const tau = 0.3
	m, err := NewBernoulli(tau, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		in, err := m.Broadcast(g, payloads(2))
		if err != nil {
			t.Fatal(err)
		}
		delivered += len(in[1])
	}
	rate := float64(delivered) / trials
	if math.Abs(rate-tau) > 0.03 {
		t.Errorf("delivery rate = %v, want ~%v", rate, tau)
	}
}

func TestBernoulliSizeMismatch(t *testing.T) {
	g := star(t, 2)
	m, err := NewBernoulli(0.5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Broadcast(g, payloads(1)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestSlottedValidation(t *testing.T) {
	if _, err := NewSlotted(0, rng.New(1)); err == nil {
		t.Error("0 slots accepted")
	}
	if _, err := NewSlotted(4, nil); err == nil {
		t.Error("nil source accepted")
	}
}

// TestSlottedSingleSlotAlwaysCollides: with one slot and two competing
// neighbors, the receiver can never decode either frame.
func TestSlottedSingleSlotAlwaysCollides(t *testing.T) {
	g := star(t, 2) // center 0 hears leaves 1 and 2
	m, err := NewSlotted(1, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	out := []any{nil, 1, 2} // center silent, leaves compete
	for i := 0; i < 20; i++ {
		in, err := m.Broadcast(g, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(in[0]) != 0 {
			t.Fatalf("collision not enforced: %v", in[0])
		}
	}
}

// TestSlottedIsolatedLinkNeedsFreeSlot: a single sender to a silent
// receiver always succeeds (no competitors, no half-duplex conflict).
func TestSlottedIsolatedLinkAlwaysDelivers(t *testing.T) {
	g := star(t, 1)
	m, err := NewSlotted(4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	out := []any{nil, "x"}
	for i := 0; i < 20; i++ {
		in, err := m.Broadcast(g, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(in[0]) != 1 {
			t.Fatal("lossless single link dropped a frame")
		}
	}
}

// TestSlottedEmergentTau measures the realized delivery probability on a
// clique and compares it to the analytical ((S-1)/S)^(d) * order-of
// estimate; we only require it to sit strictly between 0 and 1 and grow
// with the slot count.
func TestSlottedEmergentTau(t *testing.T) {
	// Clique of 5: every broadcast competes with 3 other senders at each
	// receiver plus the receiver's own transmission.
	g := topology.New(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	rate := func(slots int) float64 {
		m, err := NewSlotted(slots, rng.New(6))
		if err != nil {
			t.Fatal(err)
		}
		delivered, possible := 0, 0
		for i := 0; i < 2000; i++ {
			in, err := m.Broadcast(g, payloads(5))
			if err != nil {
				t.Fatal(err)
			}
			for r := range in {
				delivered += len(in[r])
				possible += g.Degree(r)
			}
		}
		return float64(delivered) / float64(possible)
	}
	few := rate(4)
	many := rate(64)
	if few <= 0 || few >= 1 {
		t.Errorf("4-slot tau = %v, want in (0,1)", few)
	}
	if many <= few {
		t.Errorf("more slots should raise tau: %v vs %v", many, few)
	}
	if many < 0.9 {
		t.Errorf("64 slots over degree 4 should deliver >90%%, got %v", many)
	}
}

func TestSlottedHalfDuplex(t *testing.T) {
	// Two nodes, one slot, both transmitting: neither can hear the other.
	g := star(t, 1)
	m, err := NewSlotted(1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	in, err := m.Broadcast(g, payloads(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(in[0]) != 0 || len(in[1]) != 0 {
		t.Errorf("half-duplex violated: %v / %v", in[0], in[1])
	}
}

func TestMediumNames(t *testing.T) {
	if (Perfect{}).Name() != "perfect" {
		t.Error("perfect name")
	}
	b, err := NewBernoulli(0.25, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "bernoulli(tau=0.25)" {
		t.Errorf("bernoulli name = %q", b.Name())
	}
	s, err := NewSlotted(8, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "slotted(8)" {
		t.Errorf("slotted name = %q", s.Name())
	}
}
