// Package radio models the wireless medium at the abstraction level the
// paper uses: time is divided into steps Δ(τ); in each step every node
// locally broadcasts one frame and each neighbor receives it with some
// probability at least τ > 0 (the CSMA/CA collision abstraction of
// Section 4). Three media are provided:
//
//   - Perfect: τ = 1 — every broadcast reaches every neighbor (the step
//     semantics of Section 5 / Table 2);
//   - Bernoulli: each (sender, receiver) delivery succeeds independently
//     with probability τ — the paper's analytical assumption;
//   - Slotted: an explicit slotted-CSMA model in which each node picks a
//     random slot and a receiver loses every frame whose slot collides in
//     its own neighborhood; τ becomes emergent instead of assumed.
//
// A medium never sees frame contents. It decides which (sender, receiver)
// pairs deliver this step and records them in an Inbox — a CSR-style flat
// structure of sender indices per receiver. The protocol layer keeps one
// typed frame per sender and resolves the indices itself, so a step costs
// no per-frame boxing or per-edge allocation.
package radio

import (
	"fmt"

	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// Inbox is one step's delivery outcome in CSR form: the senders heard by
// receiver r are Senders(r), ascending. All backing arrays are reused
// across steps — after the first few steps a Deliver call allocates
// nothing. An Inbox must only be read until the next Deliver into it.
type Inbox struct {
	off     []int32
	senders []int32
	cur     []int32 // scratch cursor for FromPairs
}

// Reset prepares the inbox for n receivers whose rows will be appended in
// receiver order via Append/FinishRow.
func (in *Inbox) Reset(n int) {
	if cap(in.off) < n+1 {
		in.off = make([]int32, 1, n+1)
	} else {
		in.off = in.off[:1]
	}
	in.off[0] = 0
	in.senders = in.senders[:0]
}

// Append records that the receiver whose row is currently open hears
// sender s. Rows open implicitly: after Reset the row of receiver 0 is
// open; FinishRow closes it and opens the next.
func (in *Inbox) Append(s int) { in.senders = append(in.senders, int32(s)) }

// FinishRow closes the current receiver's row.
func (in *Inbox) FinishRow() { in.off = append(in.off, int32(len(in.senders))) }

// FromPairs fills the inbox from parallel (receiver, sender) pair lists in
// any order, using a stable counting sort by receiver. Media whose random
// draws happen in sender-major order (Bernoulli) use this so the rng
// stream stays identical to the historical sender-major broadcast loop.
func (in *Inbox) FromPairs(n int, recv, send []int32) {
	if cap(in.off) < n+1 {
		in.off = make([]int32, n+1)
	} else {
		in.off = in.off[:n+1]
	}
	for i := range in.off {
		in.off[i] = 0
	}
	for _, r := range recv {
		in.off[r+1]++
	}
	for i := 1; i <= n; i++ {
		in.off[i] += in.off[i-1]
	}
	if cap(in.cur) < n {
		in.cur = make([]int32, n)
	} else {
		in.cur = in.cur[:n]
	}
	copy(in.cur, in.off[:n])
	if cap(in.senders) < len(send) {
		in.senders = make([]int32, len(send))
	} else {
		in.senders = in.senders[:len(send)]
	}
	for i, r := range recv {
		in.senders[in.cur[r]] = send[i]
		in.cur[r]++
	}
}

// N returns the number of receiver rows.
func (in *Inbox) N() int { return len(in.off) - 1 }

// Senders returns the sender indices heard by receiver r this step,
// ascending. The slice aliases the inbox; do not retain it across steps.
func (in *Inbox) Senders(r int) []int32 { return in.senders[in.off[r]:in.off[r+1]] }

// Total returns the number of delivered frames across all receivers.
func (in *Inbox) Total() int { return len(in.senders) }

// Medium decides one step of local broadcast outcomes.
type Medium interface {
	// Name identifies the medium in experiment output.
	Name() string
	// Deliver computes which sender→receiver deliveries succeed this step
	// and writes them into in (reusing its backing arrays). active[s]
	// false means node s stays silent this step; a nil active slice means
	// every node broadcasts. Deliver must be called from a single
	// goroutine — it owns the medium's rng stream.
	Deliver(g *topology.Graph, active []bool, in *Inbox) error
}

func sending(active []bool, s int) bool { return active == nil || active[s] }

// Perfect is the lossless medium: every frame reaches every neighbor.
type Perfect struct{}

var _ Medium = Perfect{}

// Name implements Medium.
func (Perfect) Name() string { return "perfect" }

// Deliver implements Medium.
func (Perfect) Deliver(g *topology.Graph, active []bool, in *Inbox) error {
	n := g.N()
	if active != nil && len(active) != n {
		return fmt.Errorf("radio: %d active flags for %d nodes", len(active), n)
	}
	in.Reset(n)
	for r := 0; r < n; r++ {
		for _, s := range g.Neighbors(r) {
			if sending(active, s) {
				in.Append(s)
			}
		}
		in.FinishRow()
	}
	return nil
}

// Bernoulli delivers each (sender, receiver) pair independently with
// probability Tau. It realizes the paper's hypothesis "there exists a
// constant τ > 0 such that the probability of a frame transmission without
// collision is at least τ" with a memoryless distribution.
type Bernoulli struct {
	Tau float64
	Src *rng.Source

	recv, send []int32 // scratch pair lists, reused across steps
}

var _ Medium = (*Bernoulli)(nil)

// NewBernoulli validates tau and returns the medium.
func NewBernoulli(tau float64, src *rng.Source) (*Bernoulli, error) {
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("radio: tau must be in (0, 1], got %v", tau)
	}
	if src == nil {
		return nil, fmt.Errorf("radio: nil rng source")
	}
	return &Bernoulli{Tau: tau, Src: src}, nil
}

// Name implements Medium.
func (m *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(tau=%.2f)", m.Tau) }

// Deliver implements Medium. Loss draws happen in sender-major order (one
// per directed edge with an active sender), then the pairs are
// counting-sorted into receiver rows.
func (m *Bernoulli) Deliver(g *topology.Graph, active []bool, in *Inbox) error {
	n := g.N()
	if active != nil && len(active) != n {
		return fmt.Errorf("radio: %d active flags for %d nodes", len(active), n)
	}
	m.recv, m.send = m.recv[:0], m.send[:0]
	for s := 0; s < n; s++ {
		if !sending(active, s) {
			continue
		}
		for _, r := range g.Neighbors(s) {
			if m.Tau >= 1 || m.Src.Float64() < m.Tau {
				m.recv = append(m.recv, int32(r))
				m.send = append(m.send, int32(s))
			}
		}
	}
	in.FromPairs(n, m.recv, m.send)
	return nil
}

// Slotted is an explicit slotted-CSMA abstraction: each step has Slots
// transmission slots, every sender picks one uniformly, and a receiver
// successfully decodes a frame iff exactly one of its neighbors transmitted
// in that slot and the receiver itself did not transmit in it (half-duplex).
// The per-link success probability is then emergent:
// roughly ((Slots-1)/Slots)^deg — the τ of the paper's hypothesis.
type Slotted struct {
	Slots int
	Src   *rng.Source

	slot []int // scratch, reused across steps
}

var _ Medium = (*Slotted)(nil)

// NewSlotted validates the slot count and returns the medium.
func NewSlotted(slots int, src *rng.Source) (*Slotted, error) {
	if slots < 1 {
		return nil, fmt.Errorf("radio: need at least 1 slot, got %d", slots)
	}
	if src == nil {
		return nil, fmt.Errorf("radio: nil rng source")
	}
	return &Slotted{Slots: slots, Src: src}, nil
}

// Name implements Medium.
func (m *Slotted) Name() string { return fmt.Sprintf("slotted(%d)", m.Slots) }

// Deliver implements Medium.
func (m *Slotted) Deliver(g *topology.Graph, active []bool, in *Inbox) error {
	n := g.N()
	if active != nil && len(active) != n {
		return fmt.Errorf("radio: %d active flags for %d nodes", len(active), n)
	}
	if cap(m.slot) < n {
		m.slot = make([]int, n)
	} else {
		m.slot = m.slot[:n]
	}
	for s := range m.slot {
		m.slot[s] = m.Src.Intn(m.Slots)
	}
	in.Reset(n)
	for r := 0; r < n; r++ {
		for _, s := range g.Neighbors(r) {
			if !sending(active, s) {
				continue
			}
			if m.slot[s] == m.slot[r] && sending(active, r) {
				continue // r was transmitting in that slot (half-duplex)
			}
			collided := false
			for _, s2 := range g.Neighbors(r) {
				if s2 != s && sending(active, s2) && m.slot[s2] == m.slot[s] {
					collided = true
					break
				}
			}
			if !collided {
				in.Append(s)
			}
		}
		in.FinishRow()
	}
	return nil
}
