// Package radio models the wireless medium at the abstraction level the
// paper uses: time is divided into steps Δ(τ); in each step every node
// locally broadcasts one frame and each neighbor receives it with some
// probability at least τ > 0 (the CSMA/CA collision abstraction of
// Section 4). Three media are provided:
//
//   - Perfect: τ = 1 — every broadcast reaches every neighbor (the step
//     semantics of Section 5 / Table 2);
//   - Bernoulli: each (sender, receiver) delivery succeeds independently
//     with probability τ — the paper's analytical assumption;
//   - Slotted: an explicit slotted-CSMA model in which each node picks a
//     random slot and a receiver loses every frame whose slot collides in
//     its own neighborhood; τ becomes emergent instead of assumed.
package radio

import (
	"fmt"

	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// Frame is one received broadcast: the sender's node index plus an opaque
// payload supplied by the protocol layer.
type Frame struct {
	From    int
	Payload any
}

// Medium delivers one step of local broadcasts.
type Medium interface {
	// Name identifies the medium in experiment output.
	Name() string
	// Broadcast takes the topology and one outgoing payload per node and
	// returns, for each node, the frames it received this step. A nil
	// payload means the node stays silent.
	Broadcast(g *topology.Graph, out []any) ([][]Frame, error)
}

// Perfect is the lossless medium: every frame reaches every neighbor.
type Perfect struct{}

var _ Medium = Perfect{}

// Name implements Medium.
func (Perfect) Name() string { return "perfect" }

// Broadcast implements Medium.
func (Perfect) Broadcast(g *topology.Graph, out []any) ([][]Frame, error) {
	if len(out) != g.N() {
		return nil, fmt.Errorf("radio: %d payloads for %d nodes", len(out), g.N())
	}
	in := make([][]Frame, g.N())
	for s, payload := range out {
		if payload == nil {
			continue
		}
		for _, r := range g.Neighbors(s) {
			in[r] = append(in[r], Frame{From: s, Payload: payload})
		}
	}
	return in, nil
}

// Bernoulli delivers each (sender, receiver) pair independently with
// probability Tau. It realizes the paper's hypothesis "there exists a
// constant τ > 0 such that the probability of a frame transmission without
// collision is at least τ" with a memoryless distribution.
type Bernoulli struct {
	Tau float64
	Src *rng.Source
}

var _ Medium = (*Bernoulli)(nil)

// NewBernoulli validates tau and returns the medium.
func NewBernoulli(tau float64, src *rng.Source) (*Bernoulli, error) {
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("radio: tau must be in (0, 1], got %v", tau)
	}
	if src == nil {
		return nil, fmt.Errorf("radio: nil rng source")
	}
	return &Bernoulli{Tau: tau, Src: src}, nil
}

// Name implements Medium.
func (m *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(tau=%.2f)", m.Tau) }

// Broadcast implements Medium.
func (m *Bernoulli) Broadcast(g *topology.Graph, out []any) ([][]Frame, error) {
	if len(out) != g.N() {
		return nil, fmt.Errorf("radio: %d payloads for %d nodes", len(out), g.N())
	}
	in := make([][]Frame, g.N())
	for s, payload := range out {
		if payload == nil {
			continue
		}
		for _, r := range g.Neighbors(s) {
			if m.Tau >= 1 || m.Src.Float64() < m.Tau {
				in[r] = append(in[r], Frame{From: s, Payload: payload})
			}
		}
	}
	return in, nil
}

// Slotted is an explicit slotted-CSMA abstraction: each step has Slots
// transmission slots, every sender picks one uniformly, and a receiver
// successfully decodes a frame iff exactly one of its neighbors transmitted
// in that slot and the receiver itself did not transmit in it (half-duplex).
// The per-link success probability is then emergent:
// roughly ((Slots-1)/Slots)^deg — the τ of the paper's hypothesis.
type Slotted struct {
	Slots int
	Src   *rng.Source
}

var _ Medium = (*Slotted)(nil)

// NewSlotted validates the slot count and returns the medium.
func NewSlotted(slots int, src *rng.Source) (*Slotted, error) {
	if slots < 1 {
		return nil, fmt.Errorf("radio: need at least 1 slot, got %d", slots)
	}
	if src == nil {
		return nil, fmt.Errorf("radio: nil rng source")
	}
	return &Slotted{Slots: slots, Src: src}, nil
}

// Name implements Medium.
func (m *Slotted) Name() string { return fmt.Sprintf("slotted(%d)", m.Slots) }

// Broadcast implements Medium.
func (m *Slotted) Broadcast(g *topology.Graph, out []any) ([][]Frame, error) {
	n := g.N()
	if len(out) != n {
		return nil, fmt.Errorf("radio: %d payloads for %d nodes", len(out), n)
	}
	slot := make([]int, n)
	for s := range slot {
		slot[s] = m.Src.Intn(m.Slots)
	}
	in := make([][]Frame, n)
	for r := 0; r < n; r++ {
		for _, s := range g.Neighbors(r) {
			if out[s] == nil {
				continue
			}
			if slot[s] == slot[r] && out[r] != nil {
				continue // r was transmitting in that slot (half-duplex)
			}
			collided := false
			for _, s2 := range g.Neighbors(r) {
				if s2 != s && out[s2] != nil && slot[s2] == slot[s] {
					collided = true
					break
				}
			}
			if !collided {
				in[r] = append(in[r], Frame{From: s, Payload: out[s]})
			}
		}
	}
	return in, nil
}
