// Package energy is the per-node battery model that runs inside the
// simulator's Δ(τ) step loop, closing the loop the paper's Section 6
// leaves as future work: traffic load drains batteries, depletion kills
// nodes through the churn machinery (so every death is a disruption
// episode in the convergence ledger), and a quantized remaining-energy
// fraction can scale the shared density online so cluster-head burden
// rotates toward well-charged nodes while the network keeps running.
//
// Each step, every operating node pays a role-dependent idle cost (heads
// aggregate and forward their members' traffic, so they idle hotter than
// members), per-packet transmission and reception costs driven by the
// actual data-plane counters, and a reduced cost while duty-cycled — the
// whole point of SleepNodes-style scheduling. The accounting commits in a
// sequential node-index-order pass over preallocated arrays (large
// populations precompute the per-node hook reads on a worker pool first;
// see stepParallel): it is allocation-free at steady state and
// bit-identical for a fixed seed at any parallelism, because the commit
// order — float accumulation, kills, rotation rescales — never varies and
// every input it reads (roles, statuses, traffic counters) is itself
// deterministic.
package energy

import (
	"fmt"
	"math"
	goruntime "runtime"
	"sync"

	"selfstab/internal/obs"
)

// Costs is the per-step drain schedule, shared by the live subsystem and
// the offline epoch-level experiment (internal/experiment) so the two
// cannot drift. All costs are in battery units (a full default battery
// holds 1.0).
type Costs struct {
	// IdleHead is the per-step cost of operating as a cluster-head:
	// beaconing for the cluster, aggregating member state, staying
	// receive-ready for the whole cluster.
	IdleHead float64
	// IdleMember is the per-step cost of an ordinary awake node.
	IdleMember float64
	// Sleep is the per-step cost of a duty-cycled node (radio off); it is
	// what SleepNodes-style scheduling actually saves.
	Sleep float64
	// Tx is the cost per transmitted data packet (one forwarding event in
	// the traffic plane).
	Tx float64
	// Rx is the cost per received data packet.
	Rx float64
}

// DefaultCosts is the reference schedule: heads idle 10x hotter than
// members (they carry the cluster's control burden), sleep is 10x cheaper
// than member idle, and moving one packet costs more at the transmitter
// than at the receiver — the usual WSN radio asymmetry.
func DefaultCosts() Costs {
	return Costs{
		IdleHead:   0.002,
		IdleMember: 0.0002,
		Sleep:      0.00002,
		Tx:         0.0005,
		Rx:         0.0002,
	}
}

// EpochSteps maps one epoch of the offline re-clustering experiment
// (internal/experiment.Energy) onto this many Δ(τ) steps, so its per-epoch
// role costs derive from the same Costs schedule the live subsystem
// charges per step.
const EpochSteps = 10

// validate rejects negative costs (zero is legal: it disables that term).
func (c Costs) validate() error {
	if c.IdleHead < 0 || c.IdleMember < 0 || c.Sleep < 0 || c.Tx < 0 || c.Rx < 0 {
		return fmt.Errorf("energy: negative cost in %+v", c)
	}
	return nil
}

// Config parameterizes the battery model.
type Config struct {
	// Capacity is every node's initial battery in energy units. Default 1.
	Capacity float64
	// Costs is the drain schedule, taken as a whole: an all-zero value
	// takes DefaultCosts; any non-zero field means the caller specified
	// the schedule and the remaining zero fields genuinely cost zero.
	Costs Costs
	// Rotation enables energy-aware head rotation: the node's shared
	// density is scaled by its quantized remaining-energy fraction (via
	// Hooks.Scale), so draining heads lose elections online.
	Rotation bool
	// Levels is the quantization of the rotation scale: the battery
	// fraction is rounded up to a multiple of 1/Levels, so the shared
	// density only changes — and the clustering only re-elects — when a
	// battery crosses a level boundary, not every step. Must be in
	// [2, 1024] (finer makes every step a re-election trigger, defeating
	// the quantization). Default 8.
	Levels int
}

func (c *Config) fillDefaults() {
	if c.Capacity == 0 {
		c.Capacity = 1
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
	if c.Levels == 0 {
		c.Levels = 8
	}
}

func (c *Config) validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("energy: capacity %v must be positive", c.Capacity)
	}
	if err := c.Costs.validate(); err != nil {
		return err
	}
	if c.Rotation && (c.Levels < 2 || c.Levels > maxLevels) {
		return fmt.Errorf("energy: rotation levels %d outside [2, %d]", c.Levels, maxLevels)
	}
	return nil
}

// Hooks connects the battery model to the engine it instruments. Alive,
// Sleeping and IsHead are required; the rest are optional.
type Hooks struct {
	// Alive reports whether node i is powered on and awake.
	Alive func(i int) bool
	// Sleeping reports whether node i is duty-cycled off (a node that is
	// neither alive nor sleeping is dead and drains nothing).
	Sleeping func(i int) bool
	// IsHead reports whether node i currently claims cluster headship.
	IsHead func(i int) bool
	// Tx and Rx return node i's cumulative data-plane transmission and
	// reception counts; the model charges per-step deltas. nil means no
	// data plane (idle costs only). A counter that moved backwards (the
	// data plane was re-attached) re-baselines without charging.
	Tx func(i int) int64
	Rx func(i int) int64
	// Kill permanently removes a node whose battery crossed zero. Routing
	// it through the churn machinery makes depletion a first-class
	// disruption episode. nil leaves depleted nodes running at zero.
	Kill func(i int) error
	// Scale installs node i's quantized remaining-energy fraction as its
	// density multiplier. Required when Config.Rotation is set.
	Scale func(i int, s float64) error
}

// maxLevels bounds the rotation quantization: anything finer than 1024
// bands re-elects on practically every step, defeating the quantization.
const maxLevels = 1024

// acc accumulates the drain ledger the hot path touches; reads are done
// at Stats time.
type acc struct {
	drainHead, drainMember, drainSleep float64
	drainTx, drainRx                   float64
	headSteps, memberSteps, sleepSteps int64
}

// Engine is the per-network battery model. It is not goroutine-safe; the
// protocol engine invokes Step from its post-guard hook, on one
// goroutine, after the traffic phase of the same step.
type Engine struct {
	cfg   Config
	hooks Hooks
	n     int

	battery  []float64
	depleted []bool
	level    []int16 // current rotation level (only meaningful with Rotation)
	lastTx   []int64
	lastRx   []int64

	acc        acc
	firstDeath int // step of the first depletion, -1 while everyone lives
	deaths     int
	stepsRun   int

	// Parallel drain-pass scratch (see stepParallel): per-node role class
	// and traffic-counter reads, precomputed concurrently, committed
	// sequentially. Lazily sized on first parallel step.
	workers  int // 0 = GOMAXPROCS; <= 1 forces the inline pass
	classBuf []int8
	txBuf    []int64
	rxBuf    []int64

	// probe, when set, receives the depletion gauge each step; nil costs
	// one branch per Step (see internal/obs).
	probe obs.Probe
}

// Role classes the parallel precompute hands to the sequential commit.
const (
	roleSkip int8 = iota // depleted, or dead by churn
	roleSleep
	roleHead
	roleMember
)

// SetParallelism fixes the worker count of the drain pass's hook-reading
// precompute. 0 (the default) sizes it to GOMAXPROCS; results are
// bit-identical for any value (the commit stays sequential). Small
// populations always run inline regardless.
func (e *Engine) SetParallelism(workers int) { e.workers = workers }

// parallelThreshold is the population below which the drain pass always
// runs inline: goroutine fan-out costs more than the hooks it would
// spread, and the inline pass stays allocation-free.
const parallelThreshold = 4096

// New builds a battery model for n nodes with full batteries.
func New(n int, cfg Config, hooks Hooks) (*Engine, error) {
	if n < 1 {
		return nil, fmt.Errorf("energy: %d nodes", n)
	}
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if hooks.Alive == nil || hooks.Sleeping == nil || hooks.IsHead == nil {
		return nil, fmt.Errorf("energy: Alive, Sleeping and IsHead hooks are required")
	}
	if cfg.Rotation && hooks.Scale == nil {
		return nil, fmt.Errorf("energy: rotation requires the Scale hook")
	}
	e := &Engine{
		cfg:        cfg,
		hooks:      hooks,
		n:          n,
		battery:    make([]float64, n),
		depleted:   make([]bool, n),
		level:      make([]int16, n),
		lastTx:     make([]int64, n),
		lastRx:     make([]int64, n),
		firstDeath: -1,
	}
	for i := range e.battery {
		e.battery[i] = cfg.Capacity
		e.level[i] = int16(cfg.Levels)
		// Baseline the traffic counters at attach time: the data plane may
		// have been running for many steps already, and history before the
		// batteries existed must not be charged as one giant first-step
		// drain.
		if hooks.Tx != nil {
			e.lastTx[i] = hooks.Tx(i)
		}
		if hooks.Rx != nil {
			e.lastRx[i] = hooks.Rx(i)
		}
	}
	return e, nil
}

// SetProbe attaches an instrumentation probe (nil detaches it). The
// probe is a pure observer — see internal/obs — so drain trajectories
// are bit-identical attached or not. Call only between steps.
func (e *Engine) SetProbe(p obs.Probe) { e.probe = p }

// Step advances the battery model by one Δ(τ) step: every operating node
// pays its role idle cost plus the tx/rx cost of the data-plane activity
// since the previous step, sleepers pay the sleep cost, and batteries
// that crossed zero are killed through the churn hook. step is the
// protocol's completed-step count. The pass is allocation-free (the
// parallel variant reuses its scratch after the first sizing).
//
//selfstab:mutator
//selfstab:hotpath
func (e *Engine) Step(step int) error {
	e.stepsRun++
	if workers := e.resolveWorkers(); workers > 1 && e.n >= parallelThreshold {
		err := e.stepParallel(step, workers)
		if p := e.probe; p != nil {
			p.Counter(obs.CtrDepletions, int64(e.deaths))
		}
		return err
	}
	c := &e.cfg.Costs
	for i := 0; i < e.n; i++ {
		if e.depleted[i] {
			continue
		}
		alive := e.hooks.Alive(i)
		sleeping := !alive && e.hooks.Sleeping(i)
		if !alive && !sleeping {
			continue // dead by churn: the battery outlives the node, untouched
		}
		var drain float64
		if sleeping {
			drain = c.Sleep
			e.acc.drainSleep += c.Sleep
			e.acc.sleepSteps++
		} else {
			if e.hooks.IsHead(i) {
				drain = c.IdleHead
				e.acc.drainHead += c.IdleHead
				e.acc.headSteps++
			} else {
				drain = c.IdleMember
				e.acc.drainMember += c.IdleMember
				e.acc.memberSteps++
			}
			if e.hooks.Tx != nil {
				tx := e.hooks.Tx(i)
				if d := tx - e.lastTx[i]; d > 0 {
					cost := float64(d) * c.Tx
					drain += cost
					e.acc.drainTx += cost
				}
				e.lastTx[i] = tx
			}
			if e.hooks.Rx != nil {
				rx := e.hooks.Rx(i)
				if d := rx - e.lastRx[i]; d > 0 {
					cost := float64(d) * c.Rx
					drain += cost
					e.acc.drainRx += cost
				}
				e.lastRx[i] = rx
			}
		}
		b := e.battery[i] - drain
		if b <= 0 {
			e.battery[i] = 0
			e.depleted[i] = true
			e.deaths++
			if e.firstDeath < 0 {
				e.firstDeath = step
			}
			if e.hooks.Kill != nil {
				if err := e.hooks.Kill(i); err != nil {
					return killErr(i, err)
				}
			}
			continue
		}
		e.battery[i] = b
		if e.cfg.Rotation {
			if lvl := e.quantize(b); lvl != e.level[i] {
				e.level[i] = lvl
				if err := e.hooks.Scale(i, float64(lvl)/float64(e.cfg.Levels)); err != nil {
					return scaleErr(i, err)
				}
			}
		}
	}
	if p := e.probe; p != nil {
		p.Counter(obs.CtrDepletions, int64(e.deaths))
	}
	return nil
}

// killErr and scaleErr build the hook-failure errors off the hot path:
// Step is a declared hot path, and error construction is the one
// allocation its body would otherwise contain.
func killErr(i int, err error) error {
	return fmt.Errorf("energy: depletion kill of node %d: %w", i, err)
}

func scaleErr(i int, err error) error {
	return fmt.Errorf("energy: rotation scale of node %d: %w", i, err)
}

func (e *Engine) resolveWorkers() int {
	if e.workers == 0 {
		return goruntime.GOMAXPROCS(0)
	}
	return e.workers
}

// stepParallel is Step's large-population variant: the per-node hook
// reads (lifecycle, role, traffic counters — the bulk of the pass, five
// indirect calls per node) run on a worker pool into per-node scratch,
// and a sequential index-order commit replays exactly the inline pass's
// arithmetic over those reads. Float accumulation order, battery updates
// and hook invocation order (Kill, Scale) are therefore unchanged, which
// keeps the parallel pass bit-identical to the inline one. Safe because
// the precompute only reads protocol/traffic state, and because a commit-
// time Kill or Scale of node i never changes another node's hook answers.
func (e *Engine) stepParallel(step int, workers int) error {
	n := e.n
	if cap(e.classBuf) < n {
		e.classBuf = make([]int8, n)
		e.txBuf = make([]int64, n)
		e.rxBuf = make([]int64, n)
	}
	class := e.classBuf[:n]
	txB := e.txBuf[:n]
	rxB := e.rxBuf[:n]
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if e.depleted[i] {
					class[i] = roleSkip
					continue
				}
				alive := e.hooks.Alive(i)
				sleeping := !alive && e.hooks.Sleeping(i)
				switch {
				case !alive && !sleeping:
					class[i] = roleSkip
				case sleeping:
					class[i] = roleSleep
				default:
					if e.hooks.IsHead(i) {
						class[i] = roleHead
					} else {
						class[i] = roleMember
					}
					if e.hooks.Tx != nil {
						txB[i] = e.hooks.Tx(i)
					}
					if e.hooks.Rx != nil {
						rxB[i] = e.hooks.Rx(i)
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	c := &e.cfg.Costs
	for i := 0; i < n; i++ {
		var drain float64
		switch class[i] {
		case roleSkip:
			continue
		case roleSleep:
			drain = c.Sleep
			e.acc.drainSleep += c.Sleep
			e.acc.sleepSteps++
		default:
			if class[i] == roleHead {
				drain = c.IdleHead
				e.acc.drainHead += c.IdleHead
				e.acc.headSteps++
			} else {
				drain = c.IdleMember
				e.acc.drainMember += c.IdleMember
				e.acc.memberSteps++
			}
			if e.hooks.Tx != nil {
				tx := txB[i]
				if d := tx - e.lastTx[i]; d > 0 {
					cost := float64(d) * c.Tx
					drain += cost
					e.acc.drainTx += cost
				}
				e.lastTx[i] = tx
			}
			if e.hooks.Rx != nil {
				rx := rxB[i]
				if d := rx - e.lastRx[i]; d > 0 {
					cost := float64(d) * c.Rx
					drain += cost
					e.acc.drainRx += cost
				}
				e.lastRx[i] = rx
			}
		}
		b := e.battery[i] - drain
		if b <= 0 {
			e.battery[i] = 0
			e.depleted[i] = true
			e.deaths++
			if e.firstDeath < 0 {
				e.firstDeath = step
			}
			if e.hooks.Kill != nil {
				if err := e.hooks.Kill(i); err != nil {
					return killErr(i, err)
				}
			}
			continue
		}
		e.battery[i] = b
		if e.cfg.Rotation {
			if lvl := e.quantize(b); lvl != e.level[i] {
				e.level[i] = lvl
				if err := e.hooks.Scale(i, float64(lvl)/float64(e.cfg.Levels)); err != nil {
					return scaleErr(i, err)
				}
			}
		}
	}
	return nil
}

// quantize rounds a positive battery value up to its level in
// [1, Levels]: a full battery is Levels, and the level only drops when
// the battery crosses a 1/Levels boundary of the capacity.
func (e *Engine) quantize(b float64) int16 {
	levels := e.cfg.Levels
	lvl := int(math.Ceil(b / e.cfg.Capacity * float64(levels)))
	if lvl < 1 {
		lvl = 1
	}
	if lvl > levels {
		lvl = levels
	}
	return int16(lvl)
}

// Resize grows the model to n nodes; new arrivals under churn start with
// a full battery. Shrinking is not supported — node slots are never
// recycled.
//
//selfstab:mutator
func (e *Engine) Resize(n int) {
	for len(e.battery) < n {
		e.battery = append(e.battery, e.cfg.Capacity)
		e.depleted = append(e.depleted, false)
		e.level = append(e.level, int16(e.cfg.Levels))
		e.lastTx = append(e.lastTx, 0)
		e.lastRx = append(e.lastRx, 0)
	}
	if n > e.n {
		e.n = n
	}
}

// Compact applies the engine-wide dead-slot recycling remap (see
// runtime.Engine.CompactionRemap): batteries and counter baselines move
// to the survivors' new indices and dropped slots vanish. The drain
// ledger, depletion counters and first-death step are aggregates and
// carry over untouched, so EnergyStats is invariant across the call —
// a dropped slot was dead and had stopped draining anyway. Call only
// between steps.
//
//selfstab:mutator
func (e *Engine) Compact(remap []int32, newN int) error {
	if len(remap) != len(e.battery) {
		return fmt.Errorf("energy: remap of %d entries for %d nodes", len(remap), len(e.battery))
	}
	for old, nw := range remap {
		if nw < 0 {
			continue
		}
		i := int(nw)
		e.battery[i] = e.battery[old]
		e.depleted[i] = e.depleted[old]
		e.level[i] = e.level[old]
		e.lastTx[i] = e.lastTx[old]
		e.lastRx[i] = e.lastRx[old]
	}
	e.battery = e.battery[:newN]
	e.depleted = e.depleted[:newN]
	e.level = e.level[:newN]
	e.lastTx = e.lastTx[:newN]
	e.lastRx = e.lastRx[:newN]
	e.n = newN
	return nil
}

// Remaining returns node i's battery in energy units (0 once depleted).
func (e *Engine) Remaining(i int) float64 {
	if i < 0 || i >= len(e.battery) {
		return 0
	}
	return e.battery[i]
}

// Depleted reports whether node i's battery crossed zero.
func (e *Engine) Depleted(i int) bool {
	return i >= 0 && i < len(e.depleted) && e.depleted[i]
}

// RotationScale returns the density multiplier rotation currently applies
// to node i (1 when rotation is off) — the value Verify-style oracles
// must scale their expected densities by.
func (e *Engine) RotationScale(i int) float64 {
	if !e.cfg.Rotation || i < 0 || i >= len(e.level) {
		return 1
	}
	return float64(e.level[i]) / float64(e.cfg.Levels)
}

// Rotation reports whether energy-aware head rotation is enabled.
func (e *Engine) Rotation() bool { return e.cfg.Rotation }

// Capacity returns the configured initial battery.
func (e *Engine) Capacity() float64 { return e.cfg.Capacity }
