package energy

import (
	"math"
	"testing"
)

// fixture is a hand-driven network of n nodes backing the hooks: tests
// flip roles, statuses and counters directly.
type fixture struct {
	alive    []bool
	sleeping []bool
	head     []bool
	tx, rx   []int64
	killed   []int
	scales   map[int]float64
}

func newFixture(n int) *fixture {
	f := &fixture{
		alive:    make([]bool, n),
		sleeping: make([]bool, n),
		head:     make([]bool, n),
		tx:       make([]int64, n),
		rx:       make([]int64, n),
		scales:   map[int]float64{},
	}
	for i := range f.alive {
		f.alive[i] = true
	}
	return f
}

func (f *fixture) hooks(withTraffic bool) Hooks {
	h := Hooks{
		Alive:    func(i int) bool { return f.alive[i] },
		Sleeping: func(i int) bool { return f.sleeping[i] },
		IsHead:   func(i int) bool { return f.head[i] },
		Kill: func(i int) error {
			f.killed = append(f.killed, i)
			f.alive[i] = false
			f.sleeping[i] = false
			return nil
		},
		Scale: func(i int, s float64) error {
			f.scales[i] = s
			return nil
		},
	}
	if withTraffic {
		h.Tx = func(i int) int64 { return f.tx[i] }
		h.Rx = func(i int) int64 { return f.rx[i] }
	}
	return h
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDrainByRole(t *testing.T) {
	f := newFixture(3)
	f.head[0] = true
	f.sleeping[2] = true
	f.alive[2] = false
	c := Costs{IdleHead: 0.01, IdleMember: 0.001, Sleep: 0.0001, Tx: 0.1, Rx: 0.05}
	e, err := New(3, Config{Capacity: 1, Costs: c}, f.hooks(true))
	if err != nil {
		t.Fatal(err)
	}
	f.tx[0] = 2 // the head transmitted twice this step
	f.rx[1] = 3 // the member received three packets
	if err := e.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := e.Remaining(0); !almost(got, 1-0.01-2*0.1) {
		t.Errorf("head battery %v, want %v", got, 1-0.01-2*0.1)
	}
	if got := e.Remaining(1); !almost(got, 1-0.001-3*0.05) {
		t.Errorf("member battery %v, want %v", got, 1-0.001-3*0.05)
	}
	if got := e.Remaining(2); !almost(got, 1-0.0001) {
		t.Errorf("sleeper battery %v, want %v", got, 1-0.0001)
	}
	s := e.Stats()
	if s.HeadSteps != 1 || s.MemberSteps != 1 || s.SleepSteps != 1 {
		t.Errorf("role exposure: %+v", s)
	}
	if !almost(s.DrainTx, 0.2) || !almost(s.DrainRx, 0.15) {
		t.Errorf("traffic drain: %+v", s)
	}
	if !almost(s.TotalDrain, s.DrainHead+s.DrainMember+s.DrainSleep+s.DrainTx+s.DrainRx) {
		t.Errorf("drain identity broken: %+v", s)
	}
	// Deltas, not totals: an unchanged counter charges nothing more.
	if err := e.Step(2); err != nil {
		t.Fatal(err)
	}
	if s2 := e.Stats(); !almost(s2.DrainTx, 0.2) {
		t.Errorf("unchanged tx counter charged again: %v", s2.DrainTx)
	}
}

func TestDepletionKillsInNodeOrder(t *testing.T) {
	f := newFixture(3)
	e, err := New(3, Config{Capacity: 0.005, Costs: Costs{IdleMember: 0.002}}, f.hooks(false))
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 3; step++ {
		if err := e.Step(step); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Depletions != 3 || s.FirstDeathStep != 3 {
		t.Fatalf("depletions %d first death %d, want 3 at step 3", s.Depletions, s.FirstDeathStep)
	}
	if len(f.killed) != 3 || f.killed[0] != 0 || f.killed[1] != 1 || f.killed[2] != 2 {
		t.Fatalf("kill order %v, want [0 1 2]", f.killed)
	}
	// Depleted nodes are inert: no further drain, battery pinned at zero.
	if err := e.Step(4); err != nil {
		t.Fatal(err)
	}
	if e.Remaining(0) != 0 || !e.Depleted(0) {
		t.Errorf("depleted node not pinned at zero")
	}
	if s2 := e.Stats(); s2.TotalDrain != s.TotalDrain {
		t.Errorf("dead slots kept draining: %v -> %v", s.TotalDrain, s2.TotalDrain)
	}
}

func TestDeadByChurnStopsDraining(t *testing.T) {
	f := newFixture(2)
	e, err := New(2, Config{Costs: Costs{IdleMember: 0.1}}, f.hooks(false))
	if err != nil {
		t.Fatal(err)
	}
	f.alive[1] = false // churn killed it outside the battery model
	if err := e.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := e.Remaining(1); got != 1 {
		t.Errorf("churn-dead node drained to %v", got)
	}
	if e.Depleted(1) {
		t.Error("churn death misreported as depletion")
	}
}

func TestRotationQuantization(t *testing.T) {
	f := newFixture(1)
	e, err := New(1, Config{
		Capacity: 1,
		Costs:    Costs{IdleMember: 0.06},
		Rotation: true,
		Levels:   4,
	}, f.hooks(false))
	if err != nil {
		t.Fatal(err)
	}
	// Battery walks 1.0 → 0.94 → ... in 0.06 steps; with 4 levels the
	// scale must only change when a 0.25 boundary is crossed: at 0.70
	// (step 5), 0.46 (step 9) and 0.22 (step 13).
	want := map[int]float64{5: 0.75, 9: 0.5, 13: 0.25}
	for step := 1; step <= 14; step++ {
		prev := f.scales[0]
		if err := e.Step(step); err != nil {
			t.Fatal(err)
		}
		if w, ok := want[step]; ok {
			if !almost(f.scales[0], w) {
				t.Errorf("step %d: scale %v, want %v", step, f.scales[0], w)
			}
		} else if f.scales[0] != prev {
			t.Errorf("step %d: scale moved to %v without a boundary crossing", step, f.scales[0])
		}
	}
	if got := e.RotationScale(0); !almost(got, 0.25) {
		t.Errorf("RotationScale %v, want 0.25", got)
	}
}

func TestCounterResetRebaselines(t *testing.T) {
	f := newFixture(1)
	e, err := New(1, Config{Capacity: 10, Costs: Costs{IdleMember: 0.0001, Tx: 0.1, Rx: 0.1}}, f.hooks(true))
	if err != nil {
		t.Fatal(err)
	}
	f.tx[0], f.rx[0] = 10, 10
	if err := e.Step(1); err != nil {
		t.Fatal(err)
	}
	drained := e.Stats().TotalDrain
	f.tx[0], f.rx[0] = 2, 2 // a re-attached data plane restarts its counters
	if err := e.Step(2); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if got := s.TotalDrain - drained; !almost(got, 0.0001) {
		t.Errorf("counter reset charged %v beyond idle", got-0.0001)
	}
	f.tx[0] = 3 // one transmission after the re-baseline
	if err := e.Step(3); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().DrainTx - s.DrainTx; !almost(got, 0.1) {
		t.Errorf("post-reset delta charged %v, want 0.1", got)
	}
}

func TestResizeGivesFullBatteries(t *testing.T) {
	f := newFixture(2)
	e, err := New(2, Config{Capacity: 0.5, Costs: Costs{IdleMember: 0.1}}, f.hooks(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(1); err != nil {
		t.Fatal(err)
	}
	f.alive = append(f.alive, true)
	f.sleeping = append(f.sleeping, false)
	f.head = append(f.head, false)
	e.Resize(3)
	if got := e.Remaining(2); got != 0.5 {
		t.Errorf("arrival battery %v, want full 0.5", got)
	}
	if err := e.Step(2); err != nil {
		t.Fatal(err)
	}
	if got := e.Remaining(2); !almost(got, 0.4) {
		t.Errorf("arrival drained to %v, want 0.4", got)
	}
}

func TestStatsHistogramAndRemaining(t *testing.T) {
	f := newFixture(4)
	e, err := New(4, Config{Capacity: 1, Costs: Costs{IdleMember: 0.3}}, f.hooks(false))
	if err != nil {
		t.Fatal(err)
	}
	f.head[0] = true // heads pay 0 here (IdleHead zero): battery stays full
	if err := e.Step(1); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	// Node 0 at 1.0 (clamped into the top decile), nodes 1-3 at 0.7.
	if s.Histogram[9] != 1 || s.Histogram[7] != 3 {
		t.Errorf("histogram %v", s.Histogram)
	}
	if !almost(s.MinRemaining, 0.7) || !almost(s.MeanRemaining, (1+3*0.7)/4) {
		t.Errorf("remaining summary %+v", s)
	}
}

func TestValidation(t *testing.T) {
	f := newFixture(1)
	if _, err := New(0, Config{}, f.hooks(false)); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(1, Config{Capacity: -1}, f.hooks(false)); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(1, Config{Costs: Costs{Tx: -1}}, f.hooks(false)); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := New(1, Config{Rotation: true, Levels: 1}, f.hooks(false)); err == nil {
		t.Error("single rotation level accepted")
	}
	if _, err := New(1, Config{Rotation: true, Levels: 4096}, f.hooks(false)); err == nil {
		t.Error("out-of-range rotation levels accepted")
	}
	if _, err := New(1, Config{}, Hooks{}); err == nil {
		t.Error("missing hooks accepted")
	}
	h := f.hooks(false)
	h.Scale = nil
	if _, err := New(1, Config{Rotation: true}, h); err == nil {
		t.Error("rotation without a Scale hook accepted")
	}
}

func TestStepIsAllocationFree(t *testing.T) {
	f := newFixture(64)
	for i := range f.head {
		f.head[i] = i%8 == 0
	}
	e, err := New(64, Config{Rotation: true}, f.hooks(true))
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	allocs := testing.AllocsPerRun(200, func() {
		step++
		for i := range f.tx {
			f.tx[i]++
			f.rx[i]++
		}
		if err := e.Step(step); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("energy step allocates %.2f/op, want 0", allocs)
	}
}
