package energy

// Stats is the battery ledger at a point in time. The drain identity
// DrainHead + DrainMember + DrainSleep + DrainTx + DrainRx == TotalDrain
// holds at every step boundary, and every unit drained came out of some
// battery: sum(initial capacities) - sum(Remaining over non-depleted
// slots) - (depleted batteries, fully spent) == TotalDrain.
type Stats struct {
	// Steps is how many steps the battery model itself has run.
	Steps int

	// FirstDeathStep is the completed-step count at which the first
	// battery depleted — the classic "network lifetime" metric. -1 while
	// every battery is above zero.
	FirstDeathStep int
	// Depletions counts batteries that crossed zero (each one killed the
	// node when the churn hook is wired).
	Depletions int

	// Per-cause drain breakdown, in energy units summed over all nodes.
	DrainHead   float64 // idle cost paid while serving as cluster-head
	DrainMember float64 // idle cost paid as an ordinary awake node
	DrainSleep  float64 // cost paid while duty-cycled
	DrainTx     float64 // per-packet transmission cost
	DrainRx     float64 // per-packet reception cost
	TotalDrain  float64

	// Node-step role exposure: how many (node, step) pairs were spent in
	// each role. HeadShare is HeadSteps over the awake total — the head
	// burden the rotation policy spreads.
	HeadSteps   int64
	MemberSteps int64
	SleepSteps  int64
	HeadShare   float64

	// Remaining-energy summary over the operating (alive or sleeping)
	// population, as fractions of capacity. MeanRemaining/MinRemaining
	// are 0 when no node is operating.
	MeanRemaining float64
	MinRemaining  float64
	// Histogram buckets the operating population by remaining fraction
	// into 10 deciles: Histogram[k] counts fractions in [k/10, (k+1)/10),
	// with a full battery clamped into Histogram[9]. The alive-energy
	// histogram of the lifetime experiments.
	Histogram [10]int64

	// Rotation reports whether energy-aware head rotation was active.
	Rotation bool
}

// Stats snapshots the ledger. The remaining-energy summary spans the
// operating population only: depleted and churn-killed slots would drag
// the mean toward zero forever.
func (e *Engine) Stats() Stats {
	s := Stats{
		Steps:          e.stepsRun,
		FirstDeathStep: e.firstDeath,
		Depletions:     e.deaths,
		DrainHead:      e.acc.drainHead,
		DrainMember:    e.acc.drainMember,
		DrainSleep:     e.acc.drainSleep,
		DrainTx:        e.acc.drainTx,
		DrainRx:        e.acc.drainRx,
		HeadSteps:      e.acc.headSteps,
		MemberSteps:    e.acc.memberSteps,
		SleepSteps:     e.acc.sleepSteps,
		Rotation:       e.cfg.Rotation,
		MinRemaining:   0,
	}
	s.TotalDrain = s.DrainHead + s.DrainMember + s.DrainSleep + s.DrainTx + s.DrainRx
	if awake := s.HeadSteps + s.MemberSteps; awake > 0 {
		s.HeadShare = float64(s.HeadSteps) / float64(awake)
	}
	sum := 0.0
	min := -1.0
	operating := 0
	for i := 0; i < e.n; i++ {
		if e.depleted[i] || !(e.hooks.Alive(i) || e.hooks.Sleeping(i)) {
			continue
		}
		frac := e.battery[i] / e.cfg.Capacity
		sum += frac
		if min < 0 || frac < min {
			min = frac
		}
		bucket := int(frac * 10)
		if bucket > 9 {
			bucket = 9
		}
		if bucket < 0 {
			bucket = 0
		}
		s.Histogram[bucket]++
		operating++
	}
	if operating > 0 {
		s.MeanRemaining = sum / float64(operating)
		s.MinRemaining = min
	}
	return s
}
