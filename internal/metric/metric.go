// Package metric implements the node-importance metrics that drive
// cluster-head selection: the paper's density criterion (Definition 1) and
// the baseline criteria it is compared against in the literature — node
// degree and lowest identifier. A metric assigns every node a value; the
// clustering layer then elects local maxima of (value, tie-break) as heads.
package metric

import (
	"fmt"

	"selfstab/internal/topology"
)

// Metric computes a per-node selection value from the topology. Larger is
// better: the clustering layer joins the neighbor with the largest value.
type Metric interface {
	// Name identifies the metric in experiment output.
	Name() string
	// Values returns one value per node of g.
	Values(g *topology.Graph) []float64
}

// Density is the paper's metric (Definition 1): the ratio between the
// number of links in a node's closed 1-neighborhood and its number of
// 1-neighbors. It smooths microscopic topology changes: a single node
// moving in or out of N(p) shifts the ratio only slightly, which is the
// source of the protocol's robustness under mobility.
type Density struct{}

var _ Metric = Density{}

// Name implements Metric.
func (Density) Name() string { return "density" }

// Values implements Metric. Isolated nodes (|Np| = 0) get value 0: they
// trivially elect themselves and the value never competes with anyone.
func (Density) Values(g *topology.Graph) []float64 {
	vals := make([]float64, g.N())
	for u := range vals {
		deg := g.Degree(u)
		if deg == 0 {
			continue
		}
		vals[u] = float64(g.ClosedNeighborhoodLinks(u)) / float64(deg)
	}
	return vals
}

// ValueOf returns the density of a single node, for callers that do not
// need the full vector.
func (Density) ValueOf(g *topology.Graph, u int) float64 {
	deg := g.Degree(u)
	if deg == 0 {
		return 0
	}
	return float64(g.ClosedNeighborhoodLinks(u)) / float64(deg)
}

// DensityFromTables computes a node's density from neighbor-list knowledge
// only, the way a protocol node does after two steps of information
// exchange: own is the node's 1-neighbor set and nbrLists maps each
// neighbor to its own 1-neighbor set (possibly stale). The count follows
// Definition 1 exactly: edges (v, w) with v in N(p) and w in {p} ∪ N(p).
func DensityFromTables(self int64, own []int64, nbrLists map[int64][]int64) float64 {
	if len(own) == 0 {
		return 0
	}
	inN := make(map[int64]bool, len(own))
	for _, q := range own {
		inN[q] = true
	}
	links := len(own) // the |Np| edges p-q
	// Count edges among neighbors once: v < w, both in N(p), adjacent
	// according to v's advertised list.
	for _, v := range own {
		for _, w := range nbrLists[v] {
			if w > v && inN[w] {
				links++
			}
		}
	}
	return float64(links) / float64(len(own))
}

// Degree is the classical highest-degree baseline (e.g. Chen-Stojmenovic):
// the node with the most 1-neighbors wins.
type Degree struct{}

var _ Metric = Degree{}

// Name implements Metric.
func (Degree) Name() string { return "degree" }

// Values implements Metric.
func (Degree) Values(g *topology.Graph) []float64 {
	vals := make([]float64, g.N())
	for u := range vals {
		vals[u] = float64(g.Degree(u))
	}
	return vals
}

// Constant gives every node the same value, reducing head election to the
// pure identifier tie-break. Combined with a smallest-id-wins order this is
// the classical lowest-ID clustering baseline (Baker-Ephremides / CBRP).
type Constant struct{}

var _ Metric = Constant{}

// Name implements Metric.
func (Constant) Name() string { return "lowest-id" }

// Values implements Metric.
func (Constant) Values(g *topology.Graph) []float64 {
	return make([]float64, g.N())
}

// EnergyAware scales an underlying metric by each node's remaining energy
// fraction, implementing the paper's Section 6 future-work direction
// ("consider energy constraints in the stabilization algorithm"): depleted
// nodes lose head elections and the cluster-head burden rotates toward
// well-charged nodes, without changing the stabilization machinery — the
// product is just another metric value driving the same ≺ order.
type EnergyAware struct {
	// Base is the underlying topological metric (typically Density).
	Base Metric
	// Energy holds each node's remaining energy fraction in [0, 1].
	Energy []float64
}

var _ Metric = EnergyAware{}

// Name implements Metric.
func (m EnergyAware) Name() string { return "energy-" + m.Base.Name() }

// Values implements Metric. It returns an error-free result by clamping
// energies into [0, 1]; a mismatched Energy length is a programming error
// reported by Validate.
func (m EnergyAware) Values(g *topology.Graph) []float64 {
	base := m.Base.Values(g)
	for u := range base {
		e := 1.0
		if u < len(m.Energy) {
			e = clamp01(m.Energy[u])
		}
		base[u] *= e
	}
	return base
}

// Validate checks that the energy vector matches the node count.
func (m EnergyAware) Validate(n int) error {
	if m.Base == nil {
		return fmt.Errorf("metric: energy-aware metric needs a base metric")
	}
	if len(m.Energy) != n {
		return fmt.Errorf("metric: %d energy values for %d nodes", len(m.Energy), n)
	}
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ByName returns the metric registered under name. It supports the CLI's
// -metric flag.
func ByName(name string) (Metric, error) {
	switch name {
	case "density":
		return Density{}, nil
	case "degree":
		return Degree{}, nil
	case "lowest-id":
		return Constant{}, nil
	default:
		return nil, fmt.Errorf("unknown metric %q (want density, degree or lowest-id)", name)
	}
}
