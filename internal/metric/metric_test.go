package metric

import (
	"math"
	"testing"
	"testing/quick"

	"selfstab/internal/geom"
	"selfstab/internal/paperex"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// TestPaperExampleDensities validates Definition 1 against every row of the
// paper's Table 1.
func TestPaperExampleDensities(t *testing.T) {
	g := paperex.Graph()
	// Neighbor counts first (Table 1 row 1).
	for u, want := range paperex.WantNeighbors {
		if got := g.Degree(u); got != want {
			t.Errorf("node %s: degree = %d, want %d", paperex.Names[u], got, want)
		}
	}
	// Link counts (Table 1 row 2).
	for u, want := range paperex.WantLinks {
		if got := g.ClosedNeighborhoodLinks(u); got != want {
			t.Errorf("node %s: links = %d, want %d", paperex.Names[u], got, want)
		}
	}
	// Densities (Table 1 row 3).
	vals := Density{}.Values(g)
	for u, want := range paperex.WantDensity {
		if math.Abs(vals[u]-want) > 1e-12 {
			t.Errorf("node %s: density = %v, want %v", paperex.Names[u], vals[u], want)
		}
	}
}

func TestDensityIsolatedNode(t *testing.T) {
	g := topology.New(1)
	if got := (Density{}).Values(g)[0]; got != 0 {
		t.Errorf("isolated density = %v, want 0", got)
	}
}

func TestDensityValueOfMatchesValues(t *testing.T) {
	g := paperex.Graph()
	vals := Density{}.Values(g)
	for u := 0; u < g.N(); u++ {
		if got := (Density{}).ValueOf(g, u); got != vals[u] {
			t.Errorf("ValueOf(%d) = %v, Values = %v", u, got, vals[u])
		}
	}
}

// Property: density is always >= 1 on non-isolated nodes (every neighbor
// contributes at least its own edge to p) and <= (deg + deg*(deg-1)/2)/deg.
func TestDensityBounds(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := 5 + src.Intn(60)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
		}
		g := topology.FromPoints(pts, 0.2)
		for u, d := range (Density{}).Values(g) {
			deg := float64(g.Degree(u))
			if deg == 0 {
				if d != 0 {
					return false
				}
				continue
			}
			upper := (deg + deg*(deg-1)/2) / deg
			if d < 1 || d > upper+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the density of a node in a clique of size k is k(k+1)/2 / k...
// concretely every node sees deg = k-1 neighbors and all C(k-1,2) edges
// among them plus its own k-1 edges.
func TestDensityClique(t *testing.T) {
	for k := 2; k <= 8; k++ {
		g := topology.New(k)
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		deg := float64(k - 1)
		want := (deg + deg*(deg-1)/2) / deg
		for _, d := range (Density{}).Values(g) {
			if math.Abs(d-want) > 1e-12 {
				t.Errorf("clique K%d: density = %v, want %v", k, d, want)
			}
		}
	}
}

// TestDensitySmoothness demonstrates the paper's motivating claim: removing
// one node from a dense neighborhood changes the density much less
// (relatively) than it changes the degree.
func TestDensitySmoothness(t *testing.T) {
	// Clique of 10 plus center node 10 connected to all.
	g := topology.New(11)
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for u := 0; u < 10; u++ {
		if err := g.AddEdge(10, u); err != nil {
			t.Fatal(err)
		}
	}
	before := (Density{}).ValueOf(g, 10)
	degBefore := g.Degree(10)
	g.RemoveNode(0)
	after := (Density{}).ValueOf(g, 10)
	degAfter := g.Degree(10)

	degChange := math.Abs(float64(degBefore-degAfter)) / float64(degBefore)
	densChange := math.Abs(before-after) / before
	if densChange >= degChange {
		t.Errorf("density change %.3f not smoother than degree change %.3f", densChange, degChange)
	}
}

func TestDensityFromTablesMatchesOracle(t *testing.T) {
	g := paperex.Graph()
	ids := paperex.IDs()
	// Build per-node advertised neighbor lists.
	lists := make(map[int64][]int64, g.N())
	for u := 0; u < g.N(); u++ {
		var l []int64
		for _, v := range g.Neighbors(u) {
			l = append(l, ids[v])
		}
		lists[ids[u]] = l
	}
	oracle := Density{}.Values(g)
	for u := 0; u < g.N(); u++ {
		got := DensityFromTables(ids[u], lists[ids[u]], lists)
		if math.Abs(got-oracle[u]) > 1e-12 {
			t.Errorf("node %s: table density %v, oracle %v", paperex.Names[u], got, oracle[u])
		}
	}
}

func TestDensityFromTablesEmpty(t *testing.T) {
	if got := DensityFromTables(0, nil, nil); got != 0 {
		t.Errorf("empty tables density = %v", got)
	}
}

func TestDensityFromTablesMissingNeighborList(t *testing.T) {
	// Neighbor 2's list is unknown (not yet heard): its edges are simply
	// not counted; the p-q edges still are.
	got := DensityFromTables(1, []int64{2, 3}, map[int64][]int64{3: {1}})
	if got != 1.0 { // 2 links / 2 neighbors
		t.Errorf("density = %v, want 1.0", got)
	}
}

func TestDegreeValues(t *testing.T) {
	g := paperex.Graph()
	vals := Degree{}.Values(g)
	for u, want := range paperex.WantNeighbors {
		if vals[u] != float64(want) {
			t.Errorf("node %s: degree value = %v, want %d", paperex.Names[u], vals[u], want)
		}
	}
}

func TestConstantValues(t *testing.T) {
	g := paperex.Graph()
	for _, v := range (Constant{}).Values(g) {
		if v != 0 {
			t.Errorf("constant metric produced %v", v)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"density", "degree", "lowest-id"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown metric accepted")
	}
}
