package metric

import (
	"math"
	"testing"

	"selfstab/internal/paperex"
	"selfstab/internal/topology"
)

func TestEnergyAwareFullBatteryMatchesBase(t *testing.T) {
	g := paperex.Graph()
	energy := make([]float64, g.N())
	for i := range energy {
		energy[i] = 1
	}
	m := EnergyAware{Base: Density{}, Energy: energy}
	base := Density{}.Values(g)
	for u, v := range m.Values(g) {
		if math.Abs(v-base[u]) > 1e-12 {
			t.Errorf("node %d: full battery changed value %v -> %v", u, base[u], v)
		}
	}
	if m.Name() != "energy-density" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestEnergyAwareScales(t *testing.T) {
	g := paperex.Graph()
	energy := make([]float64, g.N())
	for i := range energy {
		energy[i] = 1
	}
	energy[paperex.H] = 0.5 // h at half battery
	m := EnergyAware{Base: Density{}, Energy: energy}
	vals := m.Values(g)
	if math.Abs(vals[paperex.H]-0.75) > 1e-12 { // 1.5 * 0.5
		t.Errorf("half-battery h value = %v, want 0.75", vals[paperex.H])
	}
}

func TestEnergyAwareClamps(t *testing.T) {
	g := topology.New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	m := EnergyAware{Base: Density{}, Energy: []float64{-1, 5}}
	vals := m.Values(g)
	if vals[0] != 0 {
		t.Errorf("negative energy not clamped: %v", vals[0])
	}
	if vals[1] != 1 { // density 1 * clamp(5)=1
		t.Errorf("oversized energy not clamped: %v", vals[1])
	}
}

func TestEnergyAwareShortVectorDefaultsFull(t *testing.T) {
	g := paperex.Graph()
	m := EnergyAware{Base: Density{}, Energy: []float64{0.5}} // only node 0
	vals := m.Values(g)
	base := Density{}.Values(g)
	if math.Abs(vals[0]-base[0]*0.5) > 1e-12 {
		t.Error("covered node not scaled")
	}
	for u := 1; u < g.N(); u++ {
		if math.Abs(vals[u]-base[u]) > 1e-12 {
			t.Errorf("uncovered node %d scaled", u)
		}
	}
}

func TestEnergyAwareValidate(t *testing.T) {
	if err := (EnergyAware{Base: Density{}, Energy: []float64{1, 1}}).Validate(2); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (EnergyAware{Base: Density{}, Energy: []float64{1}}).Validate(2); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (EnergyAware{Energy: []float64{1, 1}}).Validate(2); err == nil {
		t.Error("nil base accepted")
	}
}

// TestEnergyAwareRotatesHeads: the functional point — a depleted head
// loses its election to a charged rival.
func TestEnergyAwareRotatesHeads(t *testing.T) {
	g := paperex.Graph()
	energy := make([]float64, g.N())
	for i := range energy {
		energy[i] = 1
	}
	// Deplete h severely: its energy-scaled density (1.5 -> 0.15) drops
	// below its neighbors b and i (1.25 each).
	energy[paperex.H] = 0.1
	m := EnergyAware{Base: Density{}, Energy: energy}
	vals := m.Values(g)
	best := paperex.H
	for _, v := range g.Neighbors(paperex.H) {
		if vals[v] > vals[best] {
			best = v
		}
	}
	if best == paperex.H {
		t.Error("depleted h still dominates its neighborhood")
	}
}
