package dag

import (
	"testing"

	"selfstab/internal/deploy"
	"selfstab/internal/geom"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

func randomGeometric(seed int64, n int, r float64) (*topology.Graph, []int64) {
	src := rng.New(seed)
	d := deploy.Uniform(n, geom.UnitSquare(), deploy.IDRandom, src)
	return topology.FromPoints(d.Points, r), d.IDs
}

func TestBuildProducesLocallyUniqueColors(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, ids := randomGeometric(seed, 100, 0.15)
		gamma := int64(g.MaxDegree()*g.MaxDegree() + 1)
		res, err := Build(g, ids, gamma, 100, rng.New(seed+1000))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !LocallyUnique(g, res.Colors) {
			t.Errorf("seed %d: colors not locally unique", seed)
		}
		for u, c := range res.Colors {
			if c < 0 || c >= gamma {
				t.Errorf("seed %d: color %d of node %d outside gamma", seed, c, u)
			}
		}
	}
}

// TestBuildStepsSmall reproduces the shape of Table 3: the expected number
// of steps is a small constant (the paper reports ~2 on 1000-node
// deployments).
func TestBuildStepsSmall(t *testing.T) {
	total := 0
	const runs = 30
	for seed := int64(0); seed < runs; seed++ {
		g, ids := randomGeometric(seed, 200, 0.1)
		gamma := int64(g.MaxDegree()*g.MaxDegree() + 1)
		res, err := Build(g, ids, gamma, 100, rng.New(seed+2000))
		if err != nil {
			t.Fatal(err)
		}
		total += res.Steps
	}
	mean := float64(total) / runs
	if mean < 1 || mean > 4 {
		t.Errorf("mean DAG construction steps = %v, want a small constant (~2)", mean)
	}
}

func TestBuildValidation(t *testing.T) {
	g := topology.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, []int64{1, 2}, 10, 100, rng.New(1)); err == nil {
		t.Error("short ids accepted")
	}
	if _, err := Build(g, []int64{1, 2, 3}, 1, 100, rng.New(1)); err == nil {
		t.Error("gamma <= max degree accepted")
	}
}

func TestBuildSingleNode(t *testing.T) {
	g := topology.New(1)
	res, err := Build(g, []int64{0}, 1, 10, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Errorf("isolated node should finish in 1 step, got %d", res.Steps)
	}
}

// TestBuildTinyGammaStillConverges: gamma = delta + 1 is the minimum that
// guarantees a free color; convergence should still happen (more slowly).
func TestBuildTinyGammaStillConverges(t *testing.T) {
	g, ids := randomGeometric(3, 80, 0.15)
	gamma := int64(g.MaxDegree() + 1)
	res, err := Build(g, ids, gamma, 10000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !LocallyUnique(g, res.Colors) {
		t.Error("not locally unique")
	}
}

// TestGammaTradeoff is the Section 4.1 tuning claim: a larger gamma
// converges in fewer (or equal) steps on average, but yields a taller DAG
// bound. We check the convergence side empirically.
func TestGammaTradeoff(t *testing.T) {
	const runs = 25
	stepsFor := func(mult int) float64 {
		total := 0
		for seed := int64(0); seed < runs; seed++ {
			g, ids := randomGeometric(seed, 150, 0.12)
			delta := g.MaxDegree()
			gamma := int64(delta*mult + 1)
			res, err := Build(g, ids, gamma, 10000, rng.New(seed+500))
			if err != nil {
				t.Fatal(err)
			}
			total += res.Steps
		}
		return float64(total) / runs
	}
	small := stepsFor(1)  // gamma ~ delta
	large := stepsFor(20) // gamma ~ 20*delta
	if large > small+0.5 {
		t.Errorf("larger gamma converged slower: %v steps vs %v", large, small)
	}
}

func TestHeightEmptyAndSingle(t *testing.T) {
	if h := Height(topology.New(0), func(u, v int) bool { return u < v }); h != 0 {
		t.Errorf("empty height = %d", h)
	}
	if h := Height(topology.New(1), func(u, v int) bool { return u < v }); h != 1 {
		t.Errorf("single height = %d", h)
	}
}

func TestHeightPath(t *testing.T) {
	// Path 0-1-2-3 with identity order: the whole path descends.
	g := topology.New(4)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if h := Height(g, func(u, v int) bool { return u < v }); h != 4 {
		t.Errorf("monotone path height = %d, want 4", h)
	}
	// Alternating order 0<2, 1>0, 1>2...: colors 0,1,0,1 -> height 2.
	colors := []int64{0, 1, 0, 1}
	ids := []int64{0, 1, 2, 3}
	if h := Height(g, ColorLess(colors, ids)); h != 2 {
		t.Errorf("alternating path height = %d, want 2", h)
	}
}

// TestHeightBoundedByGamma is Theorem 1's height bound: with colors from a
// space of size gamma, the DAG height is at most gamma (in nodes; the
// paper states |gamma|+1 counting both endpoints of boundary edges).
func TestHeightBoundedByGamma(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, ids := randomGeometric(seed, 120, 0.15)
		gamma := int64(g.MaxDegree() + 5)
		res, err := Build(g, ids, gamma, 10000, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		h := Height(g, ColorLess(res.Colors, ids))
		if int64(h) > gamma+1 {
			t.Errorf("seed %d: height %d exceeds gamma+1 = %d", seed, h, gamma+1)
		}
	}
}

// TestHeightShrinksWithGamma: the flip side of the Section 4.1 trade-off —
// a smaller name-space caps the DAG height lower.
func TestHeightShrinksWithGamma(t *testing.T) {
	heightFor := func(extra int) float64 {
		total := 0
		const runs = 15
		for seed := int64(0); seed < runs; seed++ {
			g, ids := randomGeometric(seed, 150, 0.15)
			gamma := int64(g.MaxDegree() + 1 + extra)
			res, err := Build(g, ids, gamma, 10000, rng.New(seed+300))
			if err != nil {
				t.Fatal(err)
			}
			total += Height(g, ColorLess(res.Colors, ids))
		}
		return float64(total) / runs
	}
	small := heightFor(1)
	large := heightFor(2000)
	if small > large {
		t.Errorf("smaller gamma produced taller DAG: %v vs %v", small, large)
	}
}

func TestBuildDeterministic(t *testing.T) {
	g, ids := randomGeometric(7, 100, 0.15)
	gamma := int64(g.MaxDegree()*2 + 1)
	a, err := Build(g, ids, gamma, 100, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, ids, gamma, 100, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatal("steps differ for same seed")
	}
	for u := range a.Colors {
		if a.Colors[u] != b.Colors[u] {
			t.Fatal("colors differ for same seed")
		}
	}
}
