// Package dag implements the paper's constant-height DAG construction
// (Algorithm N1, Section 4.1): every node draws a name ("color") from a
// small constant name-space gamma and redraws until its color differs from
// all of its 1-neighbors'. Orienting every edge from the higher color to
// the lower yields a DAG whose height is at most |gamma|+1 — a constant —
// so algorithms whose stabilization time is proportional to the height of
// the DAG induced by their comparison order stabilize in constant time,
// independent of the network diameter.
package dag

import (
	"errors"
	"fmt"
	"sort"

	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

// ErrGammaTooSmall is returned when the name-space cannot accommodate the
// neighborhood: a node with degree d needs |gamma| > d free colors.
var ErrGammaTooSmall = errors.New("dag: gamma must exceed the maximum degree")

// Result is the outcome of a DAG construction.
type Result struct {
	// Colors holds the final locally-unique color of every node.
	Colors []int64
	// Steps is the number of synchronized exchange steps used, counted the
	// way the paper's Section 5 does: each step every node broadcasts its
	// color and conflicted nodes redraw; construction ends with the first
	// step in which nobody redraws. (Table 3 reports ~2 steps.)
	Steps int
}

// Build runs the synchronized color-assignment protocol on a static graph.
// ids are the globally-unique application identifiers: when two neighbors
// collide, the one with the smaller identifier redraws (the paper's
// simulation rule), drawing uniformly from gamma minus its neighbors'
// current colors.
//
// maxSteps bounds the construction defensively; the expected number of
// steps is constant (Theorem 1), so hitting the bound signals a bug or an
// absurdly small gamma.
func Build(g *topology.Graph, ids []int64, gamma int64, maxSteps int, src *rng.Source) (*Result, error) {
	n := g.N()
	if len(ids) != n {
		return nil, fmt.Errorf("dag: %d ids for %d nodes", len(ids), n)
	}
	if gamma <= int64(g.MaxDegree()) {
		return nil, fmt.Errorf("%w: gamma=%d, max degree=%d", ErrGammaTooSmall, gamma, g.MaxDegree())
	}
	if maxSteps < 1 {
		maxSteps = 1
	}

	colors := make([]int64, n)
	for u := range colors {
		colors[u] = src.Int63() % gamma
	}

	res := &Result{Colors: colors}
	for step := 1; step <= maxSteps; step++ {
		res.Steps = step
		// Synchronous semantics: conflicts are evaluated against the
		// colors broadcast this step; all redraws happen together.
		redraw := make([]int, 0, 8)
		for u := 0; u < n; u++ {
			if mustRedraw(g, ids, colors, u) {
				redraw = append(redraw, u)
			}
		}
		if len(redraw) == 0 {
			return res, nil
		}
		for _, u := range redraw {
			colors[u] = drawFresh(g, colors, u, gamma, src)
		}
	}
	return nil, fmt.Errorf("dag: not locally unique after %d steps (gamma=%d)", maxSteps, gamma)
}

// mustRedraw reports whether u collides with some neighbor and loses the
// tie (smaller identifier redraws).
func mustRedraw(g *topology.Graph, ids []int64, colors []int64, u int) bool {
	for _, v := range g.Neighbors(u) {
		if colors[v] == colors[u] && ids[u] < ids[v] {
			return true
		}
	}
	return false
}

// drawFresh implements newId's random(gamma \ Cids_p): a uniform color
// excluding the node's current view of its neighbors' colors.
func drawFresh(g *topology.Graph, colors []int64, u int, gamma int64, src *rng.Source) int64 {
	taken := make(map[int64]bool, g.Degree(u))
	for _, v := range g.Neighbors(u) {
		taken[colors[v]] = true
	}
	// Rejection sampling: free fraction is at least 1 - delta/gamma > 0.
	for {
		c := src.Int63() % gamma
		if !taken[c] {
			return c
		}
	}
}

// LocallyUnique reports whether no two adjacent nodes share a color.
func LocallyUnique(g *topology.Graph, colors []int64) bool {
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v > u && colors[v] == colors[u] {
				return false
			}
		}
	}
	return true
}

// Height returns the height, in nodes, of the DAG obtained by orienting
// every edge of g from the node ranked greater to the node ranked lower
// under less (less(u, v) meaning u ≺ v). less must be a strict total order
// on adjacent nodes — exactly what locally-unique colors (or the clustering
// order ≺) provide. The height is the number of nodes on the longest
// directed path; stabilization time of the clustering layer is proportional
// to it (Lemma 2).
func Height(g *topology.Graph, less func(u, v int) bool) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	// Process nodes in ascending order; L(u) = longest descending path
	// starting at u = 1 + max L(v) over neighbors v ≺ u.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return less(order[a], order[b]) })
	l := make([]int, n)
	height := 1
	for _, u := range order {
		l[u] = 1
		for _, v := range g.Neighbors(u) {
			if less(v, u) && l[v]+1 > l[u] {
				l[u] = l[v] + 1
			}
		}
		if l[u] > height {
			height = l[u]
		}
	}
	return height
}

// ColorLess returns a strict order on adjacent nodes from colors, breaking
// (impossible, once stabilized) color ties by identifier so Height is
// well-defined even on transient states.
func ColorLess(colors, ids []int64) func(u, v int) bool {
	return func(u, v int) bool {
		if colors[u] != colors[v] {
			return colors[u] < colors[v]
		}
		return ids[u] < ids[v]
	}
}
