// Package hierarchy implements the paper's stated future work
// ("hierarchical self-stabilization algorithms", Section 6): the
// density-driven clustering applied recursively. Level-0 is the physical
// network; level-k+1 clusters the overlay graph whose vertices are the
// level-k cluster-heads, two heads being overlay-adjacent when their
// clusters touch (some member of one neighbors some member of the other —
// the standard cluster-adjacency used by hierarchical routing).
//
// Each level reuses the exact same self-stabilizing machinery (density
// metric + ≺ order + fixpoint), so the stabilization argument composes:
// once level k is legitimate, level k+1 stabilizes in the constant time
// of a single layer, giving O(levels) total.
package hierarchy

import (
	"errors"
	"fmt"

	"selfstab/internal/cluster"
	"selfstab/internal/metric"
	"selfstab/internal/topology"
)

// Level is one tier of the hierarchy.
type Level struct {
	// Graph is the overlay graph of this level (level 0: the physical
	// topology).
	Graph *topology.Graph
	// NodeOf maps this level's vertex index to the underlying physical
	// node index (level 0: identity).
	NodeOf []int
	// Assignment is the clustering computed on this level.
	Assignment *cluster.Assignment
}

// Heads returns the physical node indices of this level's cluster-heads.
func (l *Level) Heads() []int {
	var out []int
	for _, h := range l.Assignment.Heads() {
		out = append(out, l.NodeOf[h])
	}
	return out
}

// Hierarchy is a stack of levels; Levels[0] is the physical clustering.
type Hierarchy struct {
	Levels []Level
}

// Depth returns the number of levels built.
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// TopHeads returns the physical indices of the topmost level's heads —
// the roots of the whole hierarchy.
func (h *Hierarchy) TopHeads() []int {
	if len(h.Levels) == 0 {
		return nil
	}
	return h.Levels[len(h.Levels)-1].Heads()
}

// HeadOf returns the level-k cluster-head of physical node u, resolving
// through the hierarchy (k = 0 is u's ordinary cluster-head).
func (h *Hierarchy) HeadOf(u, k int) (int, error) {
	if k < 0 || k >= len(h.Levels) {
		return 0, fmt.Errorf("hierarchy: level %d outside [0, %d)", k, len(h.Levels))
	}
	cur := u
	for lvl := 0; lvl <= k; lvl++ {
		l := &h.Levels[lvl]
		// Find cur's vertex at this level.
		idx := -1
		for vi, phys := range l.NodeOf {
			if phys == cur {
				idx = vi
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("hierarchy: node %d is not a level-%d vertex", cur, lvl)
		}
		cur = l.NodeOf[l.Assignment.Head[idx]]
	}
	return cur, nil
}

// Options configures hierarchy construction.
type Options struct {
	// MaxLevels caps the stack height (safety and application choice).
	MaxLevels int
	// Order is the ≺ variant used at every level.
	Order cluster.Order
	// Fusion applies the 2-hop head separation rule at every level.
	Fusion bool
	// Level0Scale, when non-nil, multiplies each level-0 vertex's density
	// before the election — the battery-weighted metric of an energy-aware
	// network, so the offline fixpoint matches what the live rotating
	// protocol stabilizes to. Upper levels cluster the overlay by plain
	// density (the live protocol does not run them). Length must match
	// g.N().
	Level0Scale []float64
}

// Build constructs the hierarchy bottom-up on a static topology with the
// given unique identifiers. Construction stops when a level has a single
// cluster per connected component (clustering higher changes nothing) or
// MaxLevels is reached.
func Build(g *topology.Graph, ids []int64, opts Options) (*Hierarchy, error) {
	if g.N() == 0 {
		return nil, errors.New("hierarchy: empty graph")
	}
	if len(ids) != g.N() {
		return nil, fmt.Errorf("hierarchy: %d ids for %d nodes", len(ids), g.N())
	}
	if opts.MaxLevels < 1 {
		opts.MaxLevels = 1
	}
	if opts.Order == 0 {
		opts.Order = cluster.OrderBasic
	}

	h := &Hierarchy{}
	curG := g
	nodeOf := make([]int, g.N())
	for i := range nodeOf {
		nodeOf[i] = i
	}
	if opts.Level0Scale != nil && len(opts.Level0Scale) != g.N() {
		return nil, fmt.Errorf("hierarchy: %d level-0 scales for %d nodes", len(opts.Level0Scale), g.N())
	}
	for lvl := 0; lvl < opts.MaxLevels; lvl++ {
		levelIDs := make([]int64, curG.N())
		for i, phys := range nodeOf {
			levelIDs[i] = ids[phys]
		}
		values := metric.Density{}.Values(curG)
		if lvl == 0 && opts.Level0Scale != nil {
			for i := range values {
				values[i] *= opts.Level0Scale[i]
			}
		}
		a, err := cluster.Compute(curG, cluster.Config{
			Values: values,
			TieIDs: levelIDs,
			Order:  opts.Order,
			Fusion: opts.Fusion,
		})
		if err != nil {
			return nil, fmt.Errorf("hierarchy level %d: %w", lvl, err)
		}
		h.Levels = append(h.Levels, Level{Graph: curG, NodeOf: nodeOf, Assignment: a})

		heads := a.Heads()
		_, comps := curG.Components()
		if len(heads) <= comps {
			break // one head per component: the hierarchy has converged
		}
		nextG, nextNodeOf := overlay(curG, a, nodeOf)
		curG, nodeOf = nextG, nextNodeOf
	}
	return h, nil
}

// overlay builds the next level's graph: one vertex per cluster-head; two
// heads adjacent iff their clusters touch (a member of one is a physical
// neighbor of a member of the other).
func overlay(g *topology.Graph, a *cluster.Assignment, nodeOf []int) (*topology.Graph, []int) {
	heads := a.Heads()
	vertexOf := make(map[int]int, len(heads)) // head (this level's index) -> next level vertex
	nextNodeOf := make([]int, len(heads))
	for vi, hIdx := range heads {
		vertexOf[hIdx] = vi
		nextNodeOf[vi] = nodeOf[hIdx]
	}
	next := topology.New(len(heads))
	for u := 0; u < g.N(); u++ {
		hu := a.Head[u]
		for _, v := range g.Neighbors(u) {
			hv := a.Head[v]
			if hu == hv {
				continue
			}
			a1, ok1 := vertexOf[hu]
			b1, ok2 := vertexOf[hv]
			if !ok1 || !ok2 || next.HasEdge(a1, b1) {
				continue
			}
			// AddEdge only fails on duplicates/self-loops, both excluded.
			_ = next.AddEdge(a1, b1)
		}
	}
	return next, nextNodeOf
}
