package hierarchy

import (
	"testing"

	"selfstab/internal/cluster"
	"selfstab/internal/deploy"
	"selfstab/internal/geom"
	"selfstab/internal/rng"
	"selfstab/internal/topology"
)

func randomInstance(seed int64, n int, r float64) (*topology.Graph, []int64) {
	src := rng.New(seed)
	d := deploy.Uniform(n, geom.UnitSquare(), deploy.IDRandom, src)
	return topology.FromPoints(d.Points, r), d.IDs
}

func TestBuildValidation(t *testing.T) {
	g, ids := randomInstance(1, 20, 0.3)
	if _, err := Build(topology.New(0), nil, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Build(g, ids[:3], Options{}); err == nil {
		t.Error("short ids accepted")
	}
}

func TestSingleLevel(t *testing.T) {
	g, ids := randomInstance(2, 100, 0.15)
	h, err := Build(g, ids, Options{MaxLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 1 {
		t.Fatalf("depth = %d", h.Depth())
	}
	// Level 0 must match a direct clustering.
	if err := cluster.CheckInvariants(g, h.Levels[0].Assignment, false); err != nil {
		t.Error(err)
	}
}

func TestHierarchyShrinksPerLevel(t *testing.T) {
	g, ids := randomInstance(3, 300, 0.08)
	h, err := Build(g, ids, Options{MaxLevels: 5})
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() < 2 {
		t.Skipf("instance converged in one level (%d heads)", len(h.Levels[0].Heads()))
	}
	for lvl := 1; lvl < h.Depth(); lvl++ {
		prev := len(h.Levels[lvl-1].Heads())
		cur := h.Levels[lvl].Graph.N()
		if cur != prev {
			t.Errorf("level %d has %d vertices, previous level had %d heads", lvl, cur, prev)
		}
		if len(h.Levels[lvl].Heads()) > prev {
			t.Errorf("level %d grew the head count", lvl)
		}
	}
}

func TestTopHeadsPerComponent(t *testing.T) {
	g, ids := randomInstance(4, 250, 0.12)
	_, comps := g.Components()
	h, err := Build(g, ids, Options{MaxLevels: 10})
	if err != nil {
		t.Fatal(err)
	}
	top := h.TopHeads()
	if len(top) < comps {
		t.Errorf("%d top heads for %d components", len(top), comps)
	}
	// With enough levels, the hierarchy reduces each component to very few
	// clusters; we require convergence (last level's heads == its
	// component count) because Build stops exactly there.
	last := h.Levels[h.Depth()-1]
	_, lastComps := last.Graph.Components()
	if len(last.Assignment.Heads()) != lastComps && h.Depth() == 10 {
		t.Logf("hierarchy hit the level cap before converging (acceptable)")
	}
}

func TestHeadOfResolvesThroughLevels(t *testing.T) {
	g, ids := randomInstance(5, 200, 0.1)
	h, err := Build(g, ids, Options{MaxLevels: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Level 0: HeadOf must agree with the assignment.
	for u := 0; u < g.N(); u += 17 {
		got, err := h.HeadOf(u, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := h.Levels[0].Assignment.Head[u]; got != want {
			t.Errorf("HeadOf(%d, 0) = %d, want %d", u, got, want)
		}
	}
	if h.Depth() > 1 {
		// The level-1 head of any node must be a level-1 head.
		tops := make(map[int]bool)
		for _, x := range h.Levels[1].Heads() {
			tops[x] = true
		}
		for u := 0; u < g.N(); u += 23 {
			got, err := h.HeadOf(u, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !tops[got] {
				t.Errorf("HeadOf(%d, 1) = %d is not a level-1 head", u, got)
			}
		}
	}
	if _, err := h.HeadOf(0, 99); err == nil {
		t.Error("absurd level accepted")
	}
	if _, err := h.HeadOf(0, -1); err == nil {
		t.Error("negative level accepted")
	}
}

// TestHeadOfNonVertex: asking for level-1 resolution of a node that is not
// a level-0 head must error at the level-1 lookup... actually HeadOf
// resolves from level 0 upward, so any physical node works; asking about a
// node index that never existed fails at level 0.
func TestHeadOfUnknownNode(t *testing.T) {
	g, ids := randomInstance(6, 50, 0.2)
	h, err := Build(g, ids, Options{MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.HeadOf(9999, 0); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestOverlayAdjacency(t *testing.T) {
	// Two touching clusters on a path: 0-1-2-3-4-5 with values forcing
	// heads at 1 and 4.
	g := topology.New(6)
	for i := 0; i < 5; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int64{5, 0, 6, 7, 1, 8} // heads: smallest ids win ties (1 and 4)
	h, err := Build(g, ids, Options{MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	l0Heads := h.Levels[0].Heads()
	if len(l0Heads) != 2 {
		t.Fatalf("level 0 heads = %v, want 2 heads", l0Heads)
	}
	if h.Depth() < 2 {
		t.Fatal("expected a second level for two touching clusters")
	}
	// The two heads' clusters touch (edge 2-3), so the overlay must have
	// exactly one edge and level 1 must merge them into one cluster.
	if got := h.Levels[1].Graph.Edges(); got != 1 {
		t.Errorf("overlay edges = %d, want 1", got)
	}
	if got := len(h.Levels[1].Heads()); got != 1 {
		t.Errorf("level 1 heads = %d, want 1", got)
	}
}

func TestFusionPropagatesToAllLevels(t *testing.T) {
	g, ids := randomInstance(7, 250, 0.09)
	h, err := Build(g, ids, Options{MaxLevels: 3, Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	for lvl, l := range h.Levels {
		if err := cluster.CheckInvariants(l.Graph, l.Assignment, true); err != nil {
			t.Errorf("level %d: %v", lvl, err)
		}
	}
}

func TestDeterministic(t *testing.T) {
	g, ids := randomInstance(8, 150, 0.12)
	a, err := Build(g, ids, Options{MaxLevels: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, ids, Options{MaxLevels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Depth() != b.Depth() {
		t.Fatal("depths differ")
	}
	for lvl := range a.Levels {
		ah, bh := a.Levels[lvl].Heads(), b.Levels[lvl].Heads()
		if len(ah) != len(bh) {
			t.Fatal("head counts differ")
		}
		for i := range ah {
			if ah[i] != bh[i] {
				t.Fatal("heads differ")
			}
		}
	}
}
