// Package geom provides the minimal planar geometry used by the wireless
// network simulator: points in the unit square, Euclidean distances, and
// axis-aligned rectangles for deployment regions.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. The paper deploys all nodes in a
// 1x1 square, but nothing in this package assumes unit coordinates.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on the hot path of unit-disk neighborhood construction.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point {
	return Point{X: p.X + q.X, Y: p.Y + q.Y}
}

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point {
	return Point{X: p.X - q.X, Y: p.Y - q.Y}
}

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point {
	return Point{X: p.X * k, Y: p.Y * k}
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 {
	return math.Hypot(p.X, p.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y)
}

// Rect is an axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// UnitSquare is the 1x1 deployment region used throughout the paper's
// evaluation section.
func UnitSquare() Rect {
	return Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (borders included).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// Valid reports whether r has non-negative extent on both axes.
func (r Rect) Valid() bool {
	return r.MaxX >= r.MinX && r.MaxY >= r.MinY
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Reflect bounces p off the borders of r, reflecting the direction vector
// dir in place. It is the standard "billiard" boundary handling used by the
// random-walk mobility model: a node that would leave the region is mirrored
// back inside and its heading is flipped on the offending axis.
//
// Reflect assumes the displacement is smaller than the rectangle extent; for
// the paper's speeds (<= 10 m/s scaled into the unit square) this holds.
func (r Rect) Reflect(p Point, dir Point) (Point, Point) {
	if p.X < r.MinX {
		p.X = 2*r.MinX - p.X
		dir.X = -dir.X
	} else if p.X > r.MaxX {
		p.X = 2*r.MaxX - p.X
		dir.X = -dir.X
	}
	if p.Y < r.MinY {
		p.Y = 2*r.MinY - p.Y
		dir.Y = -dir.Y
	} else if p.Y > r.MaxY {
		p.Y = 2*r.MaxY - p.Y
		dir.Y = -dir.Y
	}
	// A very large step can still be outside after one reflection; clamp as
	// a last resort so callers always receive an in-region point.
	if !r.Contains(p) {
		p = r.Clamp(p)
	}
	return p, dir
}
