package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-12
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{0.5, 0.5}, Point{0.5, 0.5}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p := Point{normalize(ax), normalize(ay)}
		q := Point{normalize(bx), normalize(by)}
		return almostEqual(p.Dist(q), q.Dist(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p := Point{normalize(ax), normalize(ay)}
		q := Point{normalize(bx), normalize(by)}
		d := p.Dist(q)
		return math.Abs(p.Dist2(q)-d*d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{normalize(ax), normalize(ay)}
		b := Point{normalize(bx), normalize(by)}
		c := Point{normalize(cx), normalize(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// normalize maps arbitrary float64 inputs (including NaN/Inf from
// testing/quick) into [0,1] so geometric identities are numerically testable.
func normalize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(x, 1))
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v, want (4,1)", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v, want (-2,3)", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestPointString(t *testing.T) {
	got := Point{0.12345, 0.5}.String()
	want := "(0.1235, 0.5000)" // %.4f rounds
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestUnitSquare(t *testing.T) {
	r := UnitSquare()
	if r.Width() != 1 || r.Height() != 1 || r.Area() != 1 {
		t.Errorf("UnitSquare dims: w=%v h=%v area=%v", r.Width(), r.Height(), r.Area())
	}
	if c := r.Center(); c != (Point{0.5, 0.5}) {
		t.Errorf("Center = %v", c)
	}
	if !r.Valid() {
		t.Error("UnitSquare should be valid")
	}
}

func TestRectContains(t *testing.T) {
	r := UnitSquare()
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Point{0.5, 0.5}, true},
		{"corner min", Point{0, 0}, true},
		{"corner max", Point{1, 1}, true},
		{"left of", Point{-0.01, 0.5}, false},
		{"right of", Point{1.01, 0.5}, false},
		{"below", Point{0.5, -0.01}, false},
		{"above", Point{0.5, 1.01}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestRectClamp(t *testing.T) {
	r := UnitSquare()
	tests := []struct {
		p, want Point
	}{
		{Point{-1, 0.5}, Point{0, 0.5}},
		{Point{2, 0.5}, Point{1, 0.5}},
		{Point{0.5, -1}, Point{0.5, 0}},
		{Point{0.5, 2}, Point{0.5, 1}},
		{Point{0.3, 0.7}, Point{0.3, 0.7}},
		{Point{-1, 2}, Point{0, 1}},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.p); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectValid(t *testing.T) {
	if (Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}).Valid() {
		t.Error("inverted-x rect should be invalid")
	}
	if (Rect{MinX: 0, MaxX: 1, MinY: 1, MaxY: 0}).Valid() {
		t.Error("inverted-y rect should be invalid")
	}
}

func TestReflectInside(t *testing.T) {
	r := UnitSquare()
	p, dir := r.Reflect(Point{0.5, 0.5}, Point{1, 1})
	if p != (Point{0.5, 0.5}) || dir != (Point{1, 1}) {
		t.Errorf("Reflect of interior point changed it: p=%v dir=%v", p, dir)
	}
}

func TestReflectBounces(t *testing.T) {
	r := UnitSquare()
	tests := []struct {
		name          string
		p, dir        Point
		wantP, wantDr Point
	}{
		{"left wall", Point{-0.1, 0.5}, Point{-1, 0}, Point{0.1, 0.5}, Point{1, 0}},
		{"right wall", Point{1.1, 0.5}, Point{1, 0}, Point{0.9, 0.5}, Point{-1, 0}},
		{"floor", Point{0.5, -0.2}, Point{0, -1}, Point{0.5, 0.2}, Point{0, 1}},
		{"ceiling", Point{0.5, 1.2}, Point{0, 1}, Point{0.5, 0.8}, Point{0, -1}},
		{"corner", Point{-0.1, -0.1}, Point{-1, -1}, Point{0.1, 0.1}, Point{1, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, dir := r.Reflect(tt.p, tt.dir)
			if !almostEqual(p.X, tt.wantP.X) || !almostEqual(p.Y, tt.wantP.Y) {
				t.Errorf("point = %v, want %v", p, tt.wantP)
			}
			if dir != tt.wantDr {
				t.Errorf("dir = %v, want %v", dir, tt.wantDr)
			}
		})
	}
}

func TestReflectAlwaysInRegion(t *testing.T) {
	r := UnitSquare()
	f := func(px, py, dx, dy float64) bool {
		// Displacements up to 2x the region size, centered near the region.
		p := Point{4*normalize(px) - 1.5, 4*normalize(py) - 1.5}
		p2, _ := r.Reflect(p, Point{normalize(dx), normalize(dy)})
		return r.Contains(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
