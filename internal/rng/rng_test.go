package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split("radio")
	b := New(7).Split("radio")
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("Split with same label from same parent seed diverged")
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Split("radio")
	// Re-derive from a fresh parent so the parent draw count matches.
	b := New(7).Split("deploy")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different labels produced %d/100 identical draws", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 50; i++ {
		s := New(3).SplitN("run", i)
		v := s.Int63()
		if seen[v] {
			t.Fatalf("SplitN stream %d collided on first draw", i)
		}
		seen[v] = true
	}
}

func TestSplitNDeterministic(t *testing.T) {
	a := New(9).SplitN("node", 17)
	b := New(9).SplitN("node", 17)
	if a.Int63() != b.Int63() {
		t.Error("SplitN with same index diverged")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d in 1000 draws", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(1)
	if got := s.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d, want 0", got)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(123)
	const mean = 4.0
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.1 {
		t.Errorf("Poisson(%v) sample mean = %v", mean, got)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	s := New(123)
	const mean = 1000.0 // the paper's deployment intensity
	const n = 2000
	sum := 0
	sumSq := 0.0
	for i := 0; i < n; i++ {
		v := s.Poisson(mean)
		sum += v
		sumSq += float64(v) * float64(v)
	}
	gotMean := float64(sum) / n
	gotVar := sumSq/n - gotMean*gotMean
	if math.Abs(gotMean-mean) > 5 {
		t.Errorf("Poisson(1000) sample mean = %v", gotMean)
	}
	// Poisson variance equals the mean; allow generous slack for n=2000.
	if gotVar < 800 || gotVar > 1200 {
		t.Errorf("Poisson(1000) sample variance = %v, want ~1000", gotVar)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func TestExpFloat64Positive(t *testing.T) {
	s := New(2)
	for i := 0; i < 100; i++ {
		if v := s.ExpFloat64(); v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
	}
}
