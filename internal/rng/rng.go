// Package rng provides deterministic random-number plumbing for the
// simulator. Every experiment receives a single master seed; independent
// subsystems (deployment, radio losses, daemon scheduling, mobility, DAG
// color draws) derive their own streams with Split so that changing the
// number of draws in one subsystem never perturbs another. This is what
// makes the per-table experiments reproducible run-to-run.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic stream of pseudo-random numbers. It wraps
// math/rand.Rand so downstream packages depend on this narrow type rather
// than on global rand state (the simulator never touches the global source).
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream identified by label. Two Splits
// of the same parent with different labels yield uncorrelated streams; the
// same label always yields the same stream for a given parent seed.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	// Mix the label hash with a draw from the parent so distinct parents
	// with the same label also diverge.
	return New(int64(h.Sum64()) ^ s.r.Int63())
}

// SplitN derives the i-th child stream of a labeled family, e.g. one stream
// per simulation run or per node.
func (s *Source) SplitN(label string, i int) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	for b := 0; b < 8; b++ {
		buf[b] = byte(i >> (8 * b))
	}
	_, _ = h.Write(buf[:])
	return New(int64(h.Sum64()) ^ s.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0, n). n must be > 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (s *Source) ExpFloat64() float64 { return s.r.ExpFloat64() }

// NormFloat64 returns a standard normal value.
func (s *Source) NormFloat64() float64 { return s.r.NormFloat64() }

// Poisson draws a Poisson-distributed integer with the given mean. For small
// means it uses Knuth's product method; for large means (as with the paper's
// lambda = 1000 deployments) it switches to the normal approximation, which
// is accurate to well under one node at that scale.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth: multiply uniforms until the product drops below e^-mean.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction.
	v := mean + s.NormFloat64()*math.Sqrt(mean) + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}
