package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(5)
	if w.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if w.Variance() != 0 {
		t.Errorf("Variance of one sample = %v, want 0", w.Variance())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic dataset is 32/7.
	if got := w.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitude so naive two-pass arithmetic is stable.
			xs = append(xs, math.Mod(x, 1000))
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Variance()-wantVar) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var whole, left, right Welford
	for i, x := range xs {
		whole.Add(x)
		if i < 4 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged Mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-12 {
		t.Errorf("merged Variance = %v, want %v", left.Variance(), whole.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty changes nothing
	if a != before {
		t.Error("merge of empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Errorf("merge into empty: mean=%v n=%d", b.Mean(), b.N())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Welford
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestStdDevConstant(t *testing.T) {
	if got := StdDev([]float64{3, 3, 3, 3}); got != 0 {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{-10, 15},
		{110, 50},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); math.Abs(got-5) > 1e-9 {
		t.Errorf("Percentile(50) of {0,10} = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X: demo", "R", "clusters", "ecc")
	tb.AddRowf(0.05, 61.0, 2.6)
	tb.AddRowf(0.08, 19.2, 3.1)
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "61.00") {
		t.Errorf("missing formatted float cell:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// All non-title lines share the same width (alignment check).
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Errorf("ragged table rows:\n%s", out)
		}
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")
	out := tb.String()
	if !strings.Contains(out, "1") {
		t.Errorf("row missing: %s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "col")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}
