// Package stats provides the small statistics toolkit used by the
// experiment harness: streaming mean/variance (Welford), percentiles, and
// plain-text table rendering in the style of the paper's Tables 3-5.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a stream of observations and exposes their running
// mean and variance without storing the samples. The zero value is ready to
// use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of an approximate 95% confidence interval for
// the mean (normal approximation, appropriate for the hundreds of runs the
// experiments average over).
func (w *Welford) CI95() float64 { return 1.96 * w.StdErr() }

// Merge combines another accumulator into w (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.StdDev()
}

// Percentile returns the p-th percentile of xs (p in [0, 100]) using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Table renders aligned plain-text tables for experiment output, in the
// visual style of the paper's result tables.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row of already-formatted cells. Short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row, formatting each cell with %v except float64 values,
// which render with two decimals like the paper's tables.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// String renders the table with a title line, a header row, a separator and
// the data rows, each column padded to its widest cell.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var out []byte
	if t.title != "" {
		out = append(out, t.title...)
		out = append(out, '\n')
	}
	appendRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				out = append(out, ' ', ' ')
			}
			out = append(out, c...)
			for pad := len(c); pad < widths[i]; pad++ {
				out = append(out, ' ')
			}
		}
		out = append(out, '\n')
	}
	appendRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = repeat('-', widths[i])
	}
	appendRow(sep)
	for _, row := range t.rows {
		appendRow(row)
	}
	return string(out)
}

func repeat(b byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return string(s)
}
