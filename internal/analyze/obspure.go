package analyze

import (
	"go/ast"
	"go/types"
)

// ObsPureConfig parameterizes the obspure analyzer; production code uses
// DefaultObsPureConfig.
type ObsPureConfig struct {
	// ObsPkg is the instrumentation package declaring the probe
	// interface.
	ObsPkg string
	// Iface is the probe interface name within ObsPkg. Its method set
	// defines the callbacks whose bodies must be pure observers.
	Iface string
	// Core lists the deterministic engine packages: probe callbacks must
	// never call into them or store to their package-level state, and
	// their step-path code must never read observation state back.
	Core []string
}

// DefaultObsPureConfig pins this repo's observation contract: obs.Probe
// implementations observe the engine core, never steer it.
func DefaultObsPureConfig() ObsPureConfig {
	return ObsPureConfig{
		ObsPkg: "selfstab/internal/obs",
		Iface:  "Probe",
		Core: []string{
			"selfstab",
			"selfstab/internal/runtime",
			"selfstab/internal/traffic",
			"selfstab/internal/energy",
		},
	}
}

// NewObsPure returns the probe-purity analyzer for cfg.
//
// The instrumentation layer's determinism contract (obs package doc) has
// two directions, and this analyzer enforces both statically:
//
//  1. Probes are pure observers. A probe callback runs inside the step
//     path with the world mid-mutation; if it calls back into an engine
//     package, or stores to engine package-level state, the traced run's
//     trajectory can diverge from the untraced twin — precisely the bug
//     the tracing-determinism oracle exists to catch, found at review
//     time instead. Every method of a type implementing the probe
//     interface that belongs to the interface's method set is checked.
//
//  2. The engine is write-only toward the probe. Step-path code
//     (functions reachable from a //selfstab:mutator or
//     //selfstab:hotpath annotation within a core package) may emit
//     observations but must never read them back: a value-returning call
//     into the obs package from the step path means observation state is
//     feeding the trajectory. Constructors and export paths (serve, the
//     CLI, Network.WriteTrace) read collectors freely — they are not
//     step-path code.
func NewObsPure(cfg ObsPureConfig) *Analyzer {
	a := &Analyzer{
		Name: "obspure",
		Doc: "require probe implementations to be pure observers of the engine core " +
			"(no calls into core packages, no stores to core package state from callbacks) " +
			"and the core's step path to be write-only toward the obs package, " +
			"so tracing on vs off stays bit-identical.",
	}
	core := make(map[string]bool, len(cfg.Core))
	for _, p := range cfg.Core {
		core[p] = true
	}
	a.Run = func(pass *Pass) error {
		anns := scanAnnotations(pass)
		checkProbeCallbacks(pass, cfg, core)
		if core[pass.Pkg.Path()] {
			checkStepPathReads(pass, cfg, anns)
		}
		return nil
	}
	return a
}

// probeIface resolves the probe interface as seen from pass's package:
// its own scope when it is the obs package, the imported scope otherwise
// (a probe implementation necessarily imports the interface's package to
// name the callback parameter types).
func probeIface(pass *Pass, cfg ObsPureConfig) *types.Interface {
	scope := func() *types.Scope {
		if pass.Pkg.Path() == cfg.ObsPkg {
			return pass.Pkg.Scope()
		}
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == cfg.ObsPkg {
				return imp.Scope()
			}
		}
		return nil
	}()
	if scope == nil {
		return nil
	}
	obj := scope.Lookup(cfg.Iface)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// checkProbeCallbacks enforces direction 1: for every declared method
// that is part of a probe implementation's interface method set, the
// body must not call into a core package nor store to core package-level
// variables.
func checkProbeCallbacks(pass *Pass, cfg ObsPureConfig, core map[string]bool) {
	iface := probeIface(pass, cfg)
	if iface == nil {
		return
	}
	callbacks := map[string]bool{}
	for i := 0; i < iface.NumMethods(); i++ {
		callbacks[iface.Method(i).Name()] = true
	}
	forEachFuncDecl(pass, func(decl *ast.FuncDecl, fn *types.Func) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !callbacks[fn.Name()] || decl.Body == nil {
			return
		}
		recv := sig.Recv().Type()
		if !types.Implements(recv, iface) && !types.Implements(types.NewPointer(recv), iface) {
			return
		}
		recvName := recv
		if p, ok := recvName.(*types.Pointer); ok {
			recvName = p.Elem()
		}
		label := recvName.String()
		if named, ok := recvName.(*types.Named); ok {
			label = named.Obj().Name()
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if callee, ok := pass.Info.Uses[n].(*types.Func); ok && callee.Pkg() != nil && core[callee.Pkg().Path()] {
					pass.Reportf(n.Pos(),
						"probe callback (%s).%s calls %s in engine package %s: probe callbacks must be pure observers and never feed back into the engine",
						label, fn.Name(), callee.Name(), callee.Pkg().Path())
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportCoreStore(pass, lhs, core, label, fn.Name())
				}
			case *ast.IncDecStmt:
				reportCoreStore(pass, n.X, core, label, fn.Name())
			}
			return true
		})
	})
}

// reportCoreStore flags an assignment target that resolves (through
// selector/index/deref chains) to a package-level variable of a core
// package.
func reportCoreStore(pass *Pass, lhs ast.Expr, core map[string]bool, label, method string) {
	var obj types.Object
	switch e := unwrapExpr(lhs).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[e.Sel]
	default:
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !core[v.Pkg().Path()] {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return // local or field, not package state
	}
	pass.Reportf(lhs.Pos(),
		"probe callback (%s).%s stores to %s.%s: probe callbacks must be pure observers and never mutate engine package state",
		label, method, v.Pkg().Path(), v.Name())
}

// unwrapExpr strips parens, derefs and index hops down to the root
// identifier or selector of an assignment target.
func unwrapExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return e
		}
	}
}

// checkStepPathReads enforces direction 2 inside one core package: walk
// the intra-package call graph from every //selfstab:mutator or
// //selfstab:hotpath annotated function and flag any reachable call to a
// value-returning function or method declared in the obs package.
func checkStepPathReads(pass *Pass, cfg ObsPureConfig, anns *annotations) {
	type obsRead struct {
		pos  ast.Node
		name string
	}
	type summary struct {
		callees []*types.Func
		reads   []obsRead
	}
	sums := map[*types.Func]*summary{}
	var roots []*types.Func
	forEachFuncDecl(pass, func(decl *ast.FuncDecl, fn *types.Func) {
		s := &summary{}
		sums[fn] = s
		if anns.fn(decl, "mutator") != nil || anns.fn(decl, "hotpath") != nil {
			roots = append(roots, fn)
		}
		if decl.Body == nil {
			return
		}
		seen := map[*types.Func]bool{}
		record := func(callee *types.Func, n ast.Node) {
			if callee == nil {
				return
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == cfg.ObsPkg {
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Results().Len() > 0 {
					s.reads = append(s.reads, obsRead{pos: n, name: callee.Name()})
				}
			}
			if callee.Pkg() == pass.Pkg && !seen[callee] {
				seen[callee] = true
				s.callees = append(s.callees, callee)
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if callee, ok := pass.Info.Uses[n].(*types.Func); ok {
					record(callee, n)
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[n]; ok {
					if callee, ok := sel.Obj().(*types.Func); ok {
						record(callee, n)
					}
				}
			}
			return true
		})
	})

	// Reachability from the union of step-path roots; one report per
	// offending call site.
	reachable := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		reachable[r] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		s := sums[cur]
		if s == nil {
			continue
		}
		for _, callee := range s.callees {
			if !reachable[callee] {
				reachable[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	forEachFuncDecl(pass, func(_ *ast.FuncDecl, fn *types.Func) {
		if !reachable[fn] {
			return
		}
		for _, r := range sums[fn].reads {
			pass.Reportf(r.pos.Pos(),
				"step-path function %s reads observation state via %s.%s: the engine must be write-only toward the probe, or tracing on vs off diverges",
				fn.Name(), pathBase(cfg.ObsPkg), r.name)
		}
	})
}
