package analyze

import (
	"go/ast"
	"go/types"
)

// MapOrderConfig parameterizes the maporder analyzer; production code
// uses the detrand package set (the rule guards the same replay
// contract).
type MapOrderConfig struct {
	// Packages lists the package paths the rule applies to.
	Packages []string
	// RNGImport extends the rule to seeded-stream consumers, exactly as
	// in DetRandConfig.
	RNGImport string
}

// DefaultMapOrderConfig applies the rule to the same packages detrand
// treats as deterministic.
func DefaultMapOrderConfig() MapOrderConfig {
	d := DefaultDetRandConfig()
	return MapOrderConfig{Packages: d.Core, RNGImport: d.RNGImport}
}

// NewMapOrder returns the map-iteration-order analyzer for cfg.
//
// `for range` over a map is the canonical replay-divergence source: the
// iteration order differs run to run by language design, so any map
// range in a step or apply path can reorder guard evaluations, ledger
// accumulation or journal writes between two runs of the same seed. The
// analyzer flags every map range in the deterministic packages except:
//
//   - loops that only collect keys into a slice (the order is then
//     fixed by the sort that must follow before use);
//   - bare `for range m` loops that bind neither key nor value (the
//     body cannot observe the order);
//   - loops annotated //selfstab:orderinvariant <why>.
func NewMapOrder(cfg MapOrderConfig) *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc: "flag `for range` over maps in deterministic packages unless the loop " +
			"provably ignores order (key collection, bare range) or carries a " +
			"//selfstab:orderinvariant annotation.",
	}
	pkgs := make(map[string]bool, len(cfg.Packages))
	for _, p := range cfg.Packages {
		pkgs[p] = true
	}
	a.Run = func(pass *Pass) error {
		apply := pkgs[pass.Pkg.Path()]
		if !apply {
			for _, imp := range pass.Pkg.Imports() {
				if imp.Path() == cfg.RNGImport {
					apply = true
					break
				}
			}
		}
		if !apply {
			return nil
		}
		anns := scanAnnotations(pass)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Info.Types[rs.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if rs.Key == nil && rs.Value == nil {
					return true // body cannot see the iteration order
				}
				if anns.stmtAllowed(pass.Fset, rs.Pos()) {
					return true
				}
				if isKeyCollectionLoop(pass, rs) {
					return true
				}
				pass.Reportf(rs.Pos(), "map iteration order is nondeterministic in deterministic package %s; sort the keys before use or annotate //selfstab:orderinvariant <why>", pass.Pkg.Path())
				return true
			})
		}
		return nil
	}
	return a
}

// isKeyCollectionLoop recognizes the one loop shape that is safe without
// an annotation: a body that only appends the key to a slice
// (`keys = append(keys, k)`), because any use of that slice must sort it
// first — and maporder still guards the use sites.
func isKeyCollectionLoop(pass *Pass, rs *ast.RangeStmt) bool {
	if rs.Value != nil || rs.Key == nil {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || arg.Name != keyID.Name {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	return ok && lhs.Name == dst.Name
}
