package analyze

import (
	"go/ast"
	"go/types"
)

// NewHotPath returns the allocation-site analyzer.
//
// Functions annotated //selfstab:hotpath are the step-path leaves the
// allocation benchmarks pin at 0 allocs/op steady state (frontier
// ingest/guards, traffic forward, energy commit, halo merge). The
// analyzer statically rejects the incidental allocation sites inside
// them — the constructs that allocate on every execution regardless of
// state:
//
//   - any call into package fmt (formatting always allocates);
//   - map or slice composite literals;
//   - function literals (an unhoisted closure is an allocation the
//     moment it captures state and escapes; hoist it to a named
//     method);
//   - conversions of concrete values to interface types, explicit or
//     implicit (boxing allocates for non-pointer kinds).
//
// Deliberate, state-gated allocations (publish-on-change `make`, arena
// growth) stay legal: the benchmarks own amortized cost, the analyzer
// owns per-call cost. Cold error paths belong in small unannotated
// helper functions — the rule is intentionally not transitive, so a
// hot function may call a cold one, and the call is visible in review.
func NewHotPath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc: "forbid obvious per-call allocation sites (fmt calls, map/slice literals, " +
			"closures, interface boxing) inside functions annotated //selfstab:hotpath.",
	}
	a.Run = func(pass *Pass) error {
		anns := scanAnnotations(pass)
		forEachFuncDecl(pass, func(decl *ast.FuncDecl, fn *types.Func) {
			if anns.fn(decl, "hotpath") == nil || decl.Body == nil {
				return
			}
			checkHotBody(pass, fn.Name(), decl.Body)
		})
		return nil
	}
	return a
}

func checkHotBody(pass *Pass, name string, body *ast.BlockStmt) {
	report := func(n ast.Node, format string, args ...any) {
		pass.Reportf(n.Pos(), "hotpath function %s: "+format, append([]any{name}, args...)...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure literal allocates when it escapes; hoist it to a named method")
			return false // its body is cold by definition once hoisting is required
		case *ast.CompositeLit:
			t := pass.Info.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n, "map literal allocates on every execution")
			case *types.Slice:
				report(n, "slice literal allocates on every execution")
			}
		case *ast.CallExpr:
			checkHotCall(pass, report, n)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					lt := pass.Info.Types[n.Lhs[i]].Type
					checkBoxing(pass, report, n.Rhs[i], lt)
				}
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls, explicit interface conversions, and
// implicit concrete-to-interface argument boxing.
func checkHotCall(pass *Pass, report func(ast.Node, string, ...any), call *ast.CallExpr) {
	// Explicit conversion: T(x) where T is an interface type.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(pass, report, call.Args[0], tv.Type)
		}
		return
	}
	if fn := calleeFunc(pass, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call, "call to fmt.%s allocates; move error/formatting to a cold helper", fn.Name())
			return
		}
	}
	// Implicit boxing at the call boundary.
	sig := calleeSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, report, arg, pt)
	}
}

// checkBoxing reports expr if it is a concrete (non-interface, typed,
// non-nil) value being placed into an interface-typed slot.
func checkBoxing(pass *Pass, report func(ast.Node, string, ...any), expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if isBasic && b.Info()&types.IsUntyped != 0 {
		return
	}
	report(expr, "%s value converted to interface %s allocates (boxing)", tv.Type.String(), dst.String())
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls
// and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeSignature returns the signature of the called function or
// method, including dynamic calls through func values; nil for builtins
// and conversions.
func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
