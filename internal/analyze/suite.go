package analyze

// Suite returns the repo's production analyzer set, configured for this
// module's packages and contracts. cmd/selfstab-lint runs exactly this
// suite; the analyzer tests run the same constructors against fixture
// configurations.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewDetRand(DefaultDetRandConfig()),
		NewMapOrder(DefaultMapOrderConfig()),
		NewJournalChoke(DefaultJournalChokeConfig()),
		NewHotPath(),
		NewObsPure(DefaultObsPureConfig()),
	}
}
